// Ablation: the paper's candidate-triple kernel vs the modern warp-per-
// edge intersection kernel (cuGraph/Gunrock style), both on the simulated
// C1060, plus the Harish-Narayanan-style GPU BFS that the paper's
// Algorithm 1 preprocessing would use if it too moved on-device.
//
// This quantifies how much of the paper's GPU cost is the ALGORITHM
// (testing C(level,3) candidates) rather than the memory system: the
// intersection kernel does work proportional to Σ min-degree instead.
#include <iostream>

#include "core/bfs_gpu.hpp"
#include "core/intersect_gpu.hpp"
#include "core/triangle_gpu.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

int main() {
  using namespace lgg;
  std::cout << "=== Ablation: candidate-test kernel (paper) vs intersection "
               "kernel (modern baseline) ===\n\n";

  struct Workload {
    const char* name;
    graph::Graph g;
  };
  const Workload workloads[] = {
      {"G(1200, 0.05)", graph::erdos_renyi(1200, 0.05, 2200)},
      {"community 5k", graph::layered_random(5000, 300, 0.012, 0.006, 9000)},
      {"BA(5000, 6)", graph::barabasi_albert(5000, 6, 4)},
  };

  TextTable table({"Workload", "Kernel", "Work items", "Transactions",
                   "Kernel model_s", "End-to-end model_s"});
  for (const auto& w : workloads) {
    core::GpuTriangleOptions copts;
    copts.layout = core::GpuLayout::kCoalescedAntiCamping;
    copts.max_simulated_tests = 1000000;
    const auto cand = core::count_triangles_gpu(w.g, copts);
    table.new_row()
        .add(w.name)
        .add("candidate tests (paper)")
        .add(cand.total_tests)
        .add(cand.kernel.transactions)
        .add(cand.kernel.kernel_time_s, 4)
        .add(cand.total_time_s, 4);

    core::GpuIntersectOptions iopts;
    iopts.max_simulated_edges = 200000;
    const auto inter = core::count_triangles_gpu_intersect(w.g, iopts);
    table.new_row()
        .add("")
        .add("edge intersection (modern)")
        .add(inter.total_edges)
        .add(inter.kernel.transactions)
        .add(inter.kernel.kernel_time_s, 4)
        .add(inter.total_time_s, 4);
  }
  table.print(std::cout);

  std::cout << "\n--- GPU BFS (Harish-Narayanan [8] pattern) on the same "
               "workloads ---\n";
  TextTable bfs_table({"Workload", "Levels", "Transactions",
                       "Kernel model_s"});
  for (const auto& w : workloads) {
    const auto r = core::bfs_gpu(w.g, 0);
    bfs_table.new_row()
        .add(w.name)
        .add(std::uint64_t{r.iterations})
        .add(r.transactions)
        .add(r.kernel_time_s, 5);
  }
  bfs_table.print(std::cout);

  std::cout << "\nExpected shape: the intersection kernel wins by orders of "
               "magnitude on sparse graphs — the candidate space C(level,3) "
               "is the dominant cost in the paper's design, not the global-"
               "memory tuning.  GPU BFS cost scales with depth (one launch "
               "per level).\n";
  return 0;
}

// Ablation of Section VIII: the four combination-generation strategies.
// Measures per-thread work imbalance, auxiliary storage, and wall time of
// enumerating all C(n,3) combinations on this machine.
#include <iostream>

#include "combi/binomial.hpp"
#include "combi/strategies.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main() {
  using namespace lgg;
  using combi::Strategy;
  std::cout << "=== Ablation: combination-generation strategies "
               "(Section VIII; n=160, k=3, 64 threads) ===\n\n";

  const std::uint32_t n = 160, k = 3, threads = 64;
  TextTable table({"Strategy", "Combinations", "Imbalance (max/mean)",
                   "Aux storage", "wall_s"});
  for (const Strategy s :
       {Strategy::kPrecomputed, Strategy::kSequential, Strategy::kSplitByStart,
        Strategy::kEqualDivision}) {
    Stopwatch wall;
    std::uint64_t checksum = 0;
    const auto stats = combi::enumerate_combinations(
        s, n, k, threads,
        [&](std::uint32_t, std::span<const std::uint32_t> combo) {
          checksum += combo[0] + combo[k - 1];
        });
    const double wall_s = wall.elapsed_s();
    table.new_row()
        .add(combi::strategy_name(s))
        .add(stats.total_combinations)
        .add(stats.imbalance(), 3)
        .add(format_bytes(stats.storage_bits / 8))
        .add(wall_s, 3);
    if (checksum == 0) std::cerr << "";  // keep the enumeration observable
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: A needs combinatorially large storage; "
               "B is serial (all work on thread 0); C splits by start "
               "vertex but is badly imbalanced; D (combinadic equal "
               "division — the paper's choice) is balanced with per-thread "
               "constant storage.\n";
  return 0;
}

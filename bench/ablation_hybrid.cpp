// Ablation of the Section V/VI execution pipeline: hybrid shared/global
// chunk execution vs the all-global kernel, across scheduler choices,
// with the paper's Eq. (6) analytic estimate alongside.
#include <iostream>

#include "core/hybrid.hpp"
#include "core/triangle_gpu.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

int main() {
  using namespace lgg;
  std::cout << "=== Ablation: hybrid shared/global chunk pipeline "
               "(Sections V-VI) ===\n\n";

  struct Workload {
    const char* name;
    graph::Graph g;
  };
  Workload workloads[] = {
      {"narrow communities (all chunks fit shared)",
       graph::layered_random(2000, 120, 0.05, 0.025, 1)},
      {"wide communities (mixed residency)",
       graph::layered_random(2400, 300, 0.03, 0.015, 2)},
      {"G(n,p) small-diameter (one global chunk)",
       graph::erdos_renyi(900, 0.05, 3)},
  };

  TextTable table({"Workload", "Chunks sh/gl", "Scheduler", "Makespan",
                   "Eq.6 est.", "All-global kernel"});
  for (auto& w : workloads) {
    // All-global reference: the Fig. 12 improved kernel.
    core::GpuTriangleOptions gopts;
    gopts.max_simulated_tests = 500000;
    const auto global_run = core::count_triangles_gpu(w.g, gopts);

    for (const core::SchedulerKind sched :
         {core::SchedulerKind::kList, core::SchedulerKind::kLpt,
          core::SchedulerKind::kMultifit}) {
      core::HybridOptions opts;
      opts.scheduler = sched;
      opts.max_simulated_tests_per_chunk = 50000;
      const auto r = core::count_triangles_hybrid(w.g, opts);
      table.new_row()
          .add(sched == core::SchedulerKind::kList ? w.name : "")
          .add(std::to_string(r.shared_chunks) + "/" +
               std::to_string(r.global_chunks))
          .add(core::scheduler_name(sched))
          .add(format_seconds(r.makespan_s))
          .add(format_seconds(r.eq6_time_s))
          .add(sched == core::SchedulerKind::kList
                   ? format_seconds(global_run.kernel.kernel_time_s)
                   : "");
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: LPT/MULTIFIT <= arrival-order makespan, "
               "and Eq. (6) tracks the scheduled time.  The comparison "
               "against the all-global flat kernel also exposes the "
               "chunk-per-SM model's weakness the paper's Section VI "
               "implies: one oversized global chunk pins a single SM "
               "(makespan >> the equal-division kernel), so chunking pays "
               "only when chunks are small enough to spread — Eq. (5)'s "
               "minimisation objective.\n";
  return 0;
}

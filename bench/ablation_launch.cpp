// Ablation: kernel launch geometry (occupancy) for the triangle kernel.
// The paper's Eq. (6)/Section VI discussion hinges on keeping all 30 SMs
// busy; this sweep shows the modelled cost of under- and over-subscribing
// the device.
#include <iostream>

#include "core/triangle_gpu.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

int main() {
  using namespace lgg;
  std::cout << "=== Ablation: launch geometry (blocks x threads) for the "
               "triangle kernel ===\n\n";

  const graph::Graph g = graph::erdos_renyi(600, 0.05, 1600);
  TextTable table({"blocks", "threads/block", "warps", "kernel model_s",
                   "camping", "txn/slot"});
  struct Shape {
    std::uint32_t blocks, tpb;
  };
  const Shape shapes[] = {{1, 128},  {8, 128},  {30, 128},
                          {60, 128}, {60, 256}, {120, 256}};
  for (const Shape& s : shapes) {
    core::GpuTriangleOptions opts;
    opts.layout = core::GpuLayout::kCoalescedAntiCamping;
    opts.blocks = s.blocks;
    opts.threads_per_block = s.tpb;
    opts.max_simulated_tests = 800000;
    const auto r = core::count_triangles_gpu(g, opts);
    table.new_row()
        .add(std::uint64_t{s.blocks})
        .add(std::uint64_t{s.tpb})
        .add(r.kernel.warps)
        .add(r.kernel.kernel_time_s, 4)
        .add(r.kernel.camping_factor, 2)
        .add(r.kernel.transactions_per_slot(), 2);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: one block leaves 29 SMs idle (~30x "
               "slower); beyond ~2 blocks per SM the returns flatten.\n";
  return 0;
}

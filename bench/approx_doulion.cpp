// Extension bench: DOULION (paper reference [16]) and wedge sampling —
// accuracy vs work on a power-law graph.  Reproduces the KDD'09 shape:
// error grows gently as the keep-probability p falls, while the work
// (surviving edges) falls linearly.
#include <cmath>
#include <iostream>

#include "core/approx.hpp"
#include "core/triangle_cpu.hpp"
#include "graph/generators.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main() {
  using namespace lgg;
  std::cout << "=== Extension: approximate triangle counting (DOULION "
               "[16], wedge sampling) ===\n\n";

  const graph::Graph g = graph::barabasi_albert(20000, 6, 42);
  Stopwatch wall;
  const auto truth = static_cast<double>(core::count_triangles_forward(g));
  std::cout << "graph: BA(20000, 6), " << g.num_edges() << " edges, "
            << static_cast<std::uint64_t>(truth) << " triangles (exact in "
            << format_seconds(wall.elapsed_s()) << ")\n\n";

  TextTable doulion({"p", "kept edges", "estimate", "rel. error %",
                     "wall_s"});
  for (const double p : {1.0, 0.7, 0.5, 0.3, 0.2, 0.1}) {
    wall.reset();
    const auto r = core::doulion_estimate(g, p, 7);
    doulion.new_row()
        .add(p, 2)
        .add(r.kept_edges)
        .add(r.estimate, 0)
        .add(100.0 * std::abs(r.estimate - truth) / truth, 1)
        .add(wall.elapsed_s(), 3);
  }
  std::cout << "DOULION (count / p^3 on the sparsified graph):\n";
  doulion.print(std::cout);

  TextTable wedges({"samples", "estimate", "rel. error %", "wall_s"});
  for (const std::uint64_t samples : {1000ull, 10000ull, 100000ull,
                                      1000000ull}) {
    wall.reset();
    const auto r = core::wedge_sampling_estimate(g, samples, 11);
    wedges.new_row()
        .add(samples)
        .add(r.estimate, 0)
        .add(100.0 * std::abs(r.estimate - truth) / truth, 1)
        .add(wall.elapsed_s(), 3);
  }
  std::cout << "\nWedge sampling (closed-fraction x wedges / 3):\n";
  wedges.print(std::cout);

  std::cout << "\nExpected shape: error rises as p (or the sample count) "
               "falls, roughly like 1/sqrt(work) — the trade the paper's "
               "Section II positions exact GPU counting against.\n";
  return 0;
}

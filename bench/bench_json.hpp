// Machine-readable benchmark output (DESIGN.md §4).
//
// Each bench row is emitted as one JSON object on its own stdout line,
// prefixed with "BENCHJSON " so `bench/run_all.sh` can grep it out of the
// human-readable tables.  If $LGG_BENCH_JSON names a file, the bare JSON
// line is also appended there so results survive pipelines that eat stdout.
//
// The schema is flat on purpose: {"name": ..., "wall_ms": ..., fields...,
// "config": {...}} with `config` the only nested object.  No external JSON
// dependency — the emitter writes the handful of types the benches need.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace lgg::bench {

inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Builder for one flat JSON object; `name` is always the first field.
class JsonRecord {
 public:
  explicit JsonRecord(std::string_view name) {
    os_ << "{\"name\":\"" << json_escape(name) << '"';
  }

  JsonRecord& field(std::string_view key, std::string_view value) {
    key_(key) << '"' << json_escape(value) << '"';
    return *this;
  }
  JsonRecord& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  JsonRecord& field(std::string_view key, double value) {
    key_(key).precision(10);
    os_ << value;
    return *this;
  }
  JsonRecord& field(std::string_view key, std::uint64_t value) {
    key_(key) << value;
    return *this;
  }
  JsonRecord& field(std::string_view key, std::int64_t value) {
    key_(key) << value;
    return *this;
  }
  JsonRecord& field(std::string_view key, bool value) {
    key_(key) << (value ? "true" : "false");
    return *this;
  }
  /// Splice a pre-rendered JSON value (e.g. a nested config object).
  JsonRecord& raw(std::string_view key, std::string_view json) {
    key_(key) << json;
    return *this;
  }

  std::string str() const { return os_.str() + "}"; }

 private:
  std::ostream& key_(std::string_view key) {
    os_ << ",\"" << json_escape(key) << "\":";
    return os_;
  }
  std::ostringstream os_;
};

/// Print the record on stdout (BENCHJSON-prefixed) and append the bare
/// line to $LGG_BENCH_JSON when that variable names a writable file.
inline void emit(const JsonRecord& rec) {
  const std::string line = rec.str();
  std::cout << "BENCHJSON " << line << '\n';
  if (const char* path = std::getenv("LGG_BENCH_JSON")) {
    std::ofstream f(path, std::ios::app);
    if (f) f << line << '\n';
  }
}

}  // namespace lgg::bench

// Evaluates Eq. (6): tau_t = mu * tau_s + psi_g * tau_g — total time when
// psi_s chunk computations run from shared memory (30 at a time, mu =
// ceil(psi_s / 30) rounds) and psi_g run serially from global memory.
// tau_s and tau_g are measured from the simulator: the same per-chunk
// workload priced against shared-memory vs global-memory residency.
#include <iostream>

#include "gpusim/calibration.hpp"
#include "gpusim/executor.hpp"
#include "util/table.hpp"

namespace {

using namespace lgg;
using namespace lgg::gpusim;

/// Time one chunk's worth of work with data in shared memory.
double measure_tau_s(const DeviceSpec& dev, std::uint32_t accesses) {
  const Simulator sim(dev);
  const KernelReport r = sim.run(
      [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
        for (std::uint32_t i = 0; i < accesses; ++i) {
          rec.shared_access(4ull * ((ctx.lane + i) % 512));
          rec.compute(2);
        }
      },
      {"tau_s", 1, 128});
  return r.kernel_time_s;
}

/// The same work with data in global memory (coalesced but uncached).
double measure_tau_g(const DeviceSpec& dev, std::uint32_t accesses) {
  const Simulator sim(dev);
  DeviceMemory mem(dev);
  const Buffer buf = mem.alloc(1 << 22);
  const KernelReport r = sim.run(
      [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
        const std::uint64_t warp = ctx.global_id / 32;
        for (std::uint32_t i = 0; i < accesses; ++i) {
          rec.global_read(buf, ((warp * accesses + i) * 128 + 4ull * ctx.lane) %
                                   (1 << 22),
                          4);
          rec.compute(2);
        }
      },
      {"tau_g", 1, 128});
  return r.kernel_time_s;
}

}  // namespace

int main() {
  std::cout << "=== Eq. (6): tau_t = mu * tau_s + psi_g * tau_g ===\n\n";
  const DeviceSpec& dev = tesla_c1060();
  const std::uint32_t accesses = 2048;
  const double tau_s = measure_tau_s(dev, accesses);
  const double tau_g = measure_tau_g(dev, accesses);
  std::cout << "measured per-chunk times: tau_s = " << format_seconds(tau_s)
            << ", tau_g = " << format_seconds(tau_g)
            << "  (ratio " << tau_g / tau_s << "x)\n\n";

  TextTable table({"psi_s (shared chunks)", "psi_g (global chunks)", "mu",
                   "tau_t model"});
  const std::uint32_t psi_total = 60;
  for (std::uint32_t psi_g = 0; psi_g <= psi_total; psi_g += 10) {
    const std::uint32_t psi_s = psi_total - psi_g;
    const std::uint64_t mu = (psi_s + 29) / 30;  // ceil(psi_s / 30)
    const double tau_t = static_cast<double>(mu) * tau_s +
                         static_cast<double>(psi_g) * tau_g;
    table.new_row()
        .add(std::uint64_t{psi_s})
        .add(std::uint64_t{psi_g})
        .add(mu)
        .add(format_seconds(tau_t));
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: tau_t is dominated by the serial global "
               "chunks (psi_g * tau_g); Algorithm 1's objective (Eq. 5 — "
               "minimise the number of chunks that do not fit shared "
               "memory) follows directly.\n";
  return 0;
}

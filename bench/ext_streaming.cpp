// Extension bench (the paper's Section XII future work): triangle
// counting over an on-disk edge stream with bounded memory.  Sweeps the
// memory budget and reports the passes/memory/time trade-off, plus the
// single-pass streaming DOULION estimate.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/triangle_cpu.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "stream/streaming_triangles.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main() {
  using namespace lgg;
  std::cout << "=== Extension: external-memory triangle counting "
               "(Section XII future work) ===\n\n";

  const graph::Graph g = graph::layered_random(20000, 400, 0.01, 0.005, 77);
  const std::string path = "/tmp/lgg_bench_stream.txt";
  graph::write_snap_edge_list_file(path, g, "streaming bench workload");
  const std::uint64_t truth = core::count_triangles_forward(g);
  std::cout << "graph: " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges, " << truth
            << " triangles, stored at " << path << "\n\n";

  const stream::EdgeStream es(path);
  TextTable table({"Budget (edges)", "Intervals", "Passes",
                   "Peak edges in memory", "Triangles", "wall_s"});
  for (const std::uint64_t budget :
       {std::uint64_t{10000}, std::uint64_t{50000}, std::uint64_t{1} << 20}) {
    Stopwatch wall;
    const auto r = stream::count_triangles_external(es, budget);
    table.new_row()
        .add(budget)
        .add(std::uint64_t{r.intervals})
        .add(r.passes)
        .add(r.peak_edges)
        .add(r.triangles)
        .add(wall.elapsed_s(), 2);
    if (r.triangles != truth)
      std::cout << "!! mismatch at budget " << budget << "\n";
  }
  table.print(std::cout);

  std::cout << "\nSingle-pass streaming DOULION:\n";
  TextTable doulion({"p", "kept edges", "estimate", "rel. error %"});
  for (const double p : {1.0, 0.5, 0.25}) {
    const auto r = stream::doulion_stream(es, p, 5);
    doulion.new_row()
        .add(p, 2)
        .add(r.kept_edges)
        .add(r.estimate, 0)
        .add(100.0 * std::abs(r.estimate - static_cast<double>(truth)) /
                 static_cast<double>(truth),
             1);
  }
  doulion.print(std::cout);
  std::remove(path.c_str());

  std::cout << "\nExpected shape: smaller budgets trade passes for memory "
               "(P ~ 3*sqrt(m/B), passes ~ P^3/6) while the count stays "
               "exact; streaming DOULION is one pass with sampling error.\n";
  return 0;
}

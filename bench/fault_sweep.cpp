// Recovery overhead vs injected fault rate (DESIGN.md §11-12).
//
// Sweeps a uniform per-site fault rate through the resilient runner on a
// fixed workload and reports what recovery costs: retries, backoff,
// failovers, and the modelled-time overhead relative to the fault-free
// baseline.  The per-run numbers come straight from the observability
// metrics registry (the same series `lgg_cli --metrics` scrapes), so this
// bench doubles as an end-to-end check that the registry agrees with the
// runner's own RecoveryStats.
#include <iostream>

#include "bench_json.hpp"
#include "graph/generators.hpp"
#include "obs/obs.hpp"
#include "resilience/fault.hpp"
#include "resilience/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace lgg;
  std::cout << "=== Recovery overhead vs injected fault rate ===\n\n";

  // Many-chunk workload: twelve disjoint communities, one chunk each (a
  // component that fits shared memory becomes exactly one chunk), so
  // faults land on some chunks and spare others — retry AND failover get
  // exercised at high rates while each chunk's full (unsampled)
  // simulation stays cheap.
  graph::Graph g(0);
  for (std::uint64_t c = 0; c < 12; ++c)
    g = graph::disjoint_union(g, graph::erdos_renyi(150, 0.08, 100 + c));
  const double rates[] = {0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4};

  TextTable table({"Fault rate", "Faults", "Retries", "Failovers",
                   "Backoff", "Total time", "Overhead", "Certified"});
  double baseline_s = 0.0;
  for (const double rate : rates) {
    resilience::FaultInjector injector(7, resilience::FaultRates::uniform(rate));
    obs::Session session;
    resilience::RunnerOptions opts;
    opts.faults = rate > 0 ? &injector : nullptr;
    opts.obs = &session;
    const auto r = resilience::run_resilient(g, opts);
    if (rate == 0.0) baseline_s = r.total_time_s;
    const double overhead = r.total_time_s / baseline_s - 1.0;

    // Registry cross-check: the scraped counters must agree with the
    // runner's own recovery accounting.
    const auto& m = session.metrics;
    const std::uint64_t retries = m.counter_value("lgg_resilience_retries_total");
    const std::uint64_t failovers =
        m.counter_value("lgg_resilience_failovers_total", "kind=\"cpu\"") +
        m.counter_value("lgg_resilience_failovers_total", "kind=\"stream\"");
    if (retries != r.recovery.retries) {
      std::cerr << "registry/report retry mismatch: " << retries << " vs "
                << r.recovery.retries << "\n";
      return 1;
    }

    table.new_row()
        .add(std::to_string(rate))
        .add(std::to_string(r.recovery.faults))
        .add(std::to_string(retries))
        .add(std::to_string(failovers))
        .add(format_seconds(r.recovery.backoff_s))
        .add(format_seconds(r.total_time_s))
        .add(std::to_string(static_cast<int>(overhead * 100.0 + 0.5)) + "%")
        .add(r.certified ? "yes" : "no");

    bench::JsonRecord rec("fault_sweep");
    rec.field("fault_rate", rate)
        .field("triangles", r.triangles)
        .field("certified", r.certified)
        .field("faults", r.recovery.faults)
        .field("retries", retries)
        .field("failovers", failovers)
        .field("corruptions_detected",
               m.counter_value("lgg_resilience_corruptions_detected_total"))
        .field("backoff_s", m.counter_f_value("lgg_resilience_backoff_seconds_total"))
        .field("launches", m.counter_value("lgg_gpusim_launches_total"))
        .field("total_time_s", r.total_time_s)
        .field("overhead_vs_faultfree", overhead)
        .raw("config", "{\"seed\":7,\"vertices\":500}");
    bench::emit(rec);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: overhead grows with the fault rate "
               "(retries dominate at low rates, failovers take over once "
               "chunks exhaust their retry budget), while the count stays "
               "exact and certified at every rate.\n";
  return 0;
}

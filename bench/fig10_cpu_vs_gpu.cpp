// Reproduces Fig. 10: "Comparing timings for counting triangles using CPU
// and GPU", n = 200..1200.
//
// Both columns are modelled paper-era seconds (DESIGN.md §2/§6): the CPU
// column prices the single-thread Xeon running Algorithms 1+2 over the
// exact ALS test counts; the GPU column is the simulated C1060 running the
// global-memory kernel (naive layout — the paper's base implementation;
// Fig. 12 compares layouts).  wall_s is this machine's real time for the
// exact triangle count (forward algorithm), printed for scale only.
#include <iostream>
#include <string>

#include "bench_json.hpp"
#include "core/timing_model.hpp"
#include "core/triangle_cpu.hpp"
#include "core/triangle_gpu.hpp"
#include "graph/generators.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main() {
  using namespace lgg;
  std::cout << "=== Fig. 10: counting triangles, CPU vs GPU (n = 200..1200, "
               "G(n, p=0.05)) ===\n\n";

  TextTable table({"n", "edges", "triangles", "tests", "CPU model_s",
                   "GPU model_s", "speedup", "wall_s(count)"});
  for (std::size_t n = 200; n <= 1200; n += 200) {
    const graph::Graph g = graph::erdos_renyi(n, 0.05, 1000 + n);

    Stopwatch wall;
    const std::uint64_t triangles = core::count_triangles_forward(g);
    const double wall_s = wall.elapsed_s();

    const core::AlsPlan plan = core::build_als_plan(g);
    const double cpu_s = core::cpu_model_time_s(plan);

    core::GpuTriangleOptions opts;
    opts.layout = core::GpuLayout::kNaive;
    opts.max_simulated_tests = 1500000;
    Stopwatch sim_wall;
    const auto gpu = core::count_triangles_gpu(g, opts);
    const double sim_ms = sim_wall.elapsed_ms();

    bench::emit(
        bench::JsonRecord("fig10_cpu_vs_gpu/n" + std::to_string(n))
            .field("wall_ms", sim_ms)
            .field("triangles", triangles)
            .field("cpu_model_s", cpu_s)
            .field("gpu_model_s", gpu.total_time_s)
            .raw("config",
                 "{\"layout\":\"naive\",\"p\":0.05,"
                 "\"max_simulated_tests\":1500000}"));

    table.new_row()
        .add(std::uint64_t{n})
        .add(std::uint64_t{g.num_edges()})
        .add(triangles)
        .add(plan.total_tests)
        .add(cpu_s, 3)
        .add(gpu.total_time_s, 3)
        .add(cpu_s / gpu.total_time_s, 1)
        .add(wall_s, 3);
  }
  table.print(std::cout);
  std::cout << "\nPaper shape (Fig. 10): CPU and GPU comparable at small n "
               "(transfer overhead), GPU pulling ahead as n grows, 5-6x by "
               "n >= 1000; CPU reaching ~45-50 s at n = 1200.\n";
  return 0;
}

// Reproduces Fig. 11: "Comparing timings for larger graphs" — SNAP-scale
// community graphs of 5k..25k vertices, plus the paper's 100k-vertex
// GPU-only data point ("about 170-180 seconds").
//
// The SNAP datasets themselves are not redistributable here; the workload
// is the layered community generator (DESIGN.md §2) which reproduces the
// deep-and-wide BFS level structure of the SNAP community graphs [11].
// Pass a SNAP edge-list file as argv[1] to run on real data instead.
//
// Besides the modelled paper-era seconds, each row emits a BENCHJSON
// record with this machine's wall time for the simulated GPU run.  At the
// largest size the simulation is run twice — serial and parallel host
// execution (same KernelReport by construction) — so the host-side
// simulator speedup is computable from the JSON output.
#include <cstddef>
#include <iostream>
#include <string>

#include "bench_json.hpp"
#include "core/timing_model.hpp"
#include "core/triangle_cpu.hpp"
#include "core/triangle_gpu.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

lgg::graph::Graph workload(std::size_t n) {
  // Width ~300 gives ~n/300 BFS levels with ~600-vertex adjacent level
  // sets; the resulting candidate-test counts put the modelled CPU curve
  // in the paper's reported range (~100 s at 5k to ~600 s at 25k).
  return lgg::graph::layered_random(n, 300, 0.012, 0.006, 4000 + n);
}

std::string config_json(const lgg::core::GpuTriangleOptions& opts,
                        const lgg::gpusim::ExecPolicy& exec) {
  std::ostringstream os;
  os << "{\"layout\":\"naive\",\"max_simulated_tests\":"
     << opts.max_simulated_tests << ",\"exec\":\""
     << (exec.mode == lgg::gpusim::ExecPolicy::Mode::kSerial ? "serial"
                                                             : "parallel")
     << "\"}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lgg;
  std::cout << "=== Fig. 11: counting triangles on larger graphs "
               "(community-structured, 5k..25k) ===\n\n";

  TextTable table({"n", "edges", "triangles", "tests", "CPU model_s",
                   "GPU model_s", "speedup", "sim wall_ms"});

  auto add_row = [&](const graph::Graph& g, bool include_cpu,
                     bool compare_serial) {
    const std::uint64_t triangles = core::count_triangles_forward(g);
    const core::AlsPlan plan = core::build_als_plan(g);
    const double cpu_s = core::cpu_model_time_s(plan);

    core::GpuTriangleOptions opts;
    opts.layout = core::GpuLayout::kNaive;
    // The serial/parallel comparison point simulates more tests so warp
    // replay (the parallelised part) dominates the fixed plan/layout cost.
    opts.max_simulated_tests = compare_serial ? 4000000 : 1000000;

    Stopwatch wall;
    const auto gpu = core::count_triangles_gpu(g, opts);
    const double wall_ms = wall.elapsed_ms();

    bench::emit(bench::JsonRecord("fig11_large_graphs/n" +
                                  std::to_string(g.num_vertices()))
                    .field("wall_ms", wall_ms)
                    .field("triangles", triangles)
                    .field("gpu_model_s", gpu.total_time_s)
                    .raw("config", config_json(opts, opts.exec)));

    if (compare_serial) {
      // Same simulation, serial host execution: the report is bit-identical
      // (tests/executor_parallel_test.cpp); only the wall time differs.
      core::GpuTriangleOptions serial_opts = opts;
      serial_opts.exec = gpusim::ExecPolicy::serial();
      Stopwatch serial_wall;
      const auto serial_gpu = core::count_triangles_gpu(g, serial_opts);
      const double serial_ms = serial_wall.elapsed_ms();
      bench::emit(bench::JsonRecord("fig11_large_graphs/n" +
                                    std::to_string(g.num_vertices()) +
                                    "/serial-host")
                      .field("wall_ms", serial_ms)
                      .field("triangles", triangles)
                      .field("gpu_model_s", serial_gpu.total_time_s)
                      .raw("config", config_json(serial_opts,
                                                 serial_opts.exec)));
      std::cout << "(host simulator wall: serial " << serial_ms
                << " ms, parallel " << wall_ms << " ms, speedup "
                << serial_ms / wall_ms << "x)\n";
    }

    table.new_row()
        .add(std::uint64_t{g.num_vertices()})
        .add(std::uint64_t{g.num_edges()})
        .add(triangles)
        .add(plan.total_tests);
    if (include_cpu)
      table.add(cpu_s, 1);
    else
      table.add("(not run in paper)");
    table.add(gpu.total_time_s, 1)
        .add(cpu_s / gpu.total_time_s, 1)
        .add(wall_ms, 1);
  };

  if (argc > 1) {
    std::cout << "(loading SNAP edge list: " << argv[1] << ")\n";
    add_row(graph::read_snap_edge_list_file(argv[1]).graph, true, true);
  } else {
    for (std::size_t n = 5000; n <= 25000; n += 5000)
      add_row(workload(n), true, false);
    // The paper's 100k-node observation, GPU timing only; this is the
    // largest simulation, so it carries the serial-vs-parallel comparison.
    add_row(workload(100000), false, true);
  }

  table.print(std::cout);
  std::cout << "\nPaper shape (Fig. 11): ~10x GPU speedup across 5k-25k; "
               "GPU time for 100k nodes about 170-180 s.\n";
  return 0;
}

// Reproduces Fig. 11: "Comparing timings for larger graphs" — SNAP-scale
// community graphs of 5k..25k vertices, plus the paper's 100k-vertex
// GPU-only data point ("about 170-180 seconds").
//
// The SNAP datasets themselves are not redistributable here; the workload
// is the layered community generator (DESIGN.md §2) which reproduces the
// deep-and-wide BFS level structure of the SNAP community graphs [11].
// Pass a SNAP edge-list file as argv[1] to run on real data instead.
#include <iostream>

#include "core/timing_model.hpp"
#include "core/triangle_cpu.hpp"
#include "core/triangle_gpu.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/table.hpp"

namespace {

lgg::graph::Graph workload(std::size_t n) {
  // Width ~300 gives ~n/300 BFS levels with ~600-vertex adjacent level
  // sets; the resulting candidate-test counts put the modelled CPU curve
  // in the paper's reported range (~100 s at 5k to ~600 s at 25k).
  return lgg::graph::layered_random(n, 300, 0.012, 0.006, 4000 + n);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lgg;
  std::cout << "=== Fig. 11: counting triangles on larger graphs "
               "(community-structured, 5k..25k) ===\n\n";

  TextTable table({"n", "edges", "triangles", "tests", "CPU model_s",
                   "GPU model_s", "speedup"});

  auto add_row = [&](const graph::Graph& g, bool include_cpu) {
    const std::uint64_t triangles = core::count_triangles_forward(g);
    const core::AlsPlan plan = core::build_als_plan(g);
    const double cpu_s = core::cpu_model_time_s(plan);

    core::GpuTriangleOptions opts;
    opts.layout = core::GpuLayout::kNaive;
    opts.max_simulated_tests = 1000000;
    const auto gpu = core::count_triangles_gpu(g, opts);

    table.new_row()
        .add(std::uint64_t{g.num_vertices()})
        .add(std::uint64_t{g.num_edges()})
        .add(triangles)
        .add(plan.total_tests);
    if (include_cpu)
      table.add(cpu_s, 1);
    else
      table.add("(not run in paper)");
    table.add(gpu.total_time_s, 1).add(cpu_s / gpu.total_time_s, 1);
  };

  if (argc > 1) {
    std::cout << "(loading SNAP edge list: " << argv[1] << ")\n";
    add_row(graph::read_snap_edge_list_file(argv[1]).graph, true);
  } else {
    for (std::size_t n = 5000; n <= 25000; n += 5000) add_row(workload(n), true);
    // The paper's 100k-node observation, GPU timing only.
    add_row(workload(100000), false);
  }

  table.print(std::cout);
  std::cout << "\nPaper shape (Fig. 11): ~10x GPU speedup across 5k-25k; "
               "GPU time for 100k nodes about 170-180 s.\n";
  return 0;
}

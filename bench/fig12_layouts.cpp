// Reproduces Fig. 12: "Counting triangles using global memory with memory
// access coalescing and avoiding partition camping" — the naive GPU
// implementation against the improved data structures, n = 200..1200.
//
// Three points per n (the ablation ladder of DESIGN.md §5):
//   naive                — per-thread contiguous work + single matrix
//   coalesced            — warp-interleaved work + single matrix
//   coalesced+anti-camp  — warp-interleaved + redundant per-ALS layout
//
// The workload is the community-structured family (multiple adjacent
// level sets per graph): that is the regime where neighbouring ALS share
// boundary-level data and the single-matrix layout camps (Section X-A).
// The paper's "naive vs improved" 6-8% corresponds to the layout-only
// step (coalesced -> improved, kernel time); the warp-interleaving step
// is larger in our simulator because the paper's baseline was already
// partially coalesced.
#include <iostream>
#include <string>

#include "bench_json.hpp"
#include "core/triangle_gpu.hpp"
#include "graph/generators.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main() {
  using namespace lgg;
  using core::GpuLayout;
  std::cout << "=== Fig. 12: naive vs improved GPU data structures "
               "(n = 200..1200, community graphs) ===\n\n";

  TextTable table({"n", "naive_s", "coalesced_s", "improved_s",
                   "kernel naive_s", "kernel coal_s", "kernel impr_s",
                   "kernel gain coal->impr %"});
  for (std::size_t n = 200; n <= 1200; n += 200) {
    const graph::Graph g =
        graph::layered_random(n, 100, 0.06, 0.03, 1000 + n);
    double total[3] = {0, 0, 0};
    double kernel[3] = {0, 0, 0};
    const GpuLayout layouts[3] = {GpuLayout::kNaive, GpuLayout::kCoalesced,
                                  GpuLayout::kCoalescedAntiCamping};
    const char* layout_names[3] = {"naive", "coalesced",
                                   "coalesced_anti_camping"};
    for (int i = 0; i < 3; ++i) {
      core::GpuTriangleOptions opts;
      opts.layout = layouts[i];
      opts.max_simulated_tests = 4000000;
      Stopwatch sim_wall;
      const auto r = core::count_triangles_gpu(g, opts);
      const double sim_ms = sim_wall.elapsed_ms();
      total[i] = r.total_time_s;
      kernel[i] = r.kernel.kernel_time_s;
      bench::emit(
          bench::JsonRecord("fig12_layouts/n" + std::to_string(n) + "/" +
                            layout_names[i])
              .field("wall_ms", sim_ms)
              .field("triangles", r.triangles)
              .field("gpu_model_s", r.total_time_s)
              .field("kernel_model_s", r.kernel.kernel_time_s)
              .raw("config", std::string("{\"layout\":\"") + layout_names[i] +
                                 "\",\"max_simulated_tests\":4000000}"));
    }
    table.new_row()
        .add(std::uint64_t{n})
        .add(total[0], 4)
        .add(total[1], 4)
        .add(total[2], 4)
        .add(kernel[0], 4)
        .add(kernel[1], 4)
        .add(kernel[2], 4)
        .add(100.0 * (kernel[1] - kernel[2]) / kernel[1], 1);
  }
  table.print(std::cout);
  std::cout << "\nPaper shape (Fig. 12): improved beats naive at every n; "
               "the layout-only kernel gain should sit near the paper's "
               "6-8% band on these multi-ALS graphs.\n";
  return 0;
}

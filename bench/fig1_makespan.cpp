// Reproduces Fig. 1 ("Executing chunks on GPU cores: Makespan scheduling")
// and ablates the scheduler choice (Section VI): list vs LPT vs MULTIFIT
// vs exact, on the figure's 7-chunk example and on real chunk sets
// produced by Algorithm 1.
#include <iostream>

#include "graph/chunking.hpp"
#include "graph/generators.hpp"
#include "gpusim/device.hpp"
#include "sched/makespan.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

namespace {

using namespace lgg;

void report(const char* name, const std::vector<std::uint64_t>& jobs,
            std::uint32_t machines, bool include_exact, TextTable& table) {
  const auto list = sched::list_schedule(jobs, machines);
  const auto lpt = sched::lpt_schedule(jobs, machines);
  const auto mf = sched::multifit_schedule(jobs, machines);
  const std::uint64_t lb = sched::makespan_lower_bound(jobs, machines);
  table.new_row()
      .add(name)
      .add(std::uint64_t{jobs.size()})
      .add(std::uint64_t{machines})
      .add(lb)
      .add(list.makespan)
      .add(lpt.makespan)
      .add(mf.makespan);
  if (include_exact)
    table.add(sched::exact_schedule(jobs, machines).makespan);
  else
    table.add("n/a (>24 jobs)");
}

}  // namespace

int main() {
  std::cout << "=== Fig. 1: Makespan scheduling of chunk computations on "
               "streaming multiprocessors ===\n\n";

  TextTable table({"Instance", "Jobs", "Machines", "LowerBound", "List",
                   "LPT", "MULTIFIT", "Exact"});

  // The figure's illustration: 7 chunks on 4 SMs; machine M1 runs chunks
  // 1, 5, 7 while M2..M4 run the rest in parallel.
  report("Fig.1 example (7 chunks / 4 SMs)", {8, 7, 6, 5, 4, 3, 2}, 4, true,
         table);

  // Random chunk sets at the C1060's 30 SMs.
  Xoshiro256 rng(17);
  for (const std::size_t jobs_n : {12, 20}) {
    std::vector<std::uint64_t> jobs(jobs_n);
    for (auto& j : jobs) j = 50 + rng.uniform(500);
    report(jobs_n == 12 ? "random 12 chunks / 8 SMs" : "random 20 chunks / 8 SMs",
           jobs, 8, true, table);
  }

  // Real Algorithm 1 output: chunk the Fig. 11-style community graph
  // against the C1060 shared-memory budget and schedule on its 30 SMs.
  const graph::Graph g = graph::layered_random(20000, 150, 0.02, 0.01, 3);
  graph::ChunkingOptions copts;
  copts.shared_mem_bits = gpusim::tesla_c1060().shared_mem_bits();
  const auto chunks = graph::split_into_chunks(g, copts);
  std::vector<std::uint64_t> chunk_jobs;
  for (const auto& c : chunks.chunks) chunk_jobs.push_back(c.bits);
  report("Algorithm 1 chunks (20k community graph) / 30 SMs", chunk_jobs,
         gpusim::tesla_c1060().sm_count, chunk_jobs.size() <= 24, table);

  table.print(std::cout);
  std::cout << "\nExpected shape: List >= LPT >= Exact >= LowerBound, with "
               "LPT within 4/3 of optimal (Graham) — scheduling the chunks "
               "well is what keeps the Eq. (6) total time low.\n";
  return 0;
}

// Reproduces Figs. 6-7: partition camping.  Thirty warps (one per C1060
// SM) read global memory; in the camped variant every warp's transactions
// land in Partition 1 (Fig. 6), in the avoided variant warp i reads from
// partition i % p (Fig. 7, Eq. 11).  The DRAM-bound cycles differ by the
// camping factor; on a CC 2.0 device the cache neutralises the effect
// (Section X).
#include <iostream>

#include "gpusim/executor.hpp"
#include "util/table.hpp"

namespace {

using namespace lgg;
using namespace lgg::gpusim;

struct Variant {
  const char* name;
  bool spread;
};

KernelReport run_variant(const DeviceSpec& dev, bool spread,
                         std::uint32_t reads_per_thread) {
  const Simulator sim(dev);
  DeviceMemory mem(dev);
  const Buffer buf = mem.alloc(64ull << 20);
  const std::uint64_t period =
      static_cast<std::uint64_t>(dev.partitions) * dev.partition_width_bytes;

  KernelConfig cfg{"camping", dev.sm_count, 32};
  return sim.run(
      [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
        const std::uint64_t warp_id = ctx.global_id / 32;
        for (std::uint32_t r = 0; r < reads_per_thread; ++r) {
          // Each warp reads a 128-byte run; camped variant places every
          // run at partition offset 0, spread variant at warp_id % p.
          const std::uint64_t partition_offset =
              spread ? (warp_id % dev.partitions) *
                           dev.partition_width_bytes
                     : 0;
          const std::uint64_t row = warp_id * 64 + r;
          rec.global_read(buf, row * period + partition_offset + 4ull * ctx.lane,
                          4);
        }
      },
      cfg);
}

}  // namespace

int main() {
  std::cout << "=== Figs. 6-7: partition camping vs distributed warps "
               "===\n(30 warps, 64 coalesced reads each)\n\n";

  TextTable table({"Device", "Warp placement", "Transactions",
                   "Camping factor", "DRAM cycles", "Kernel time"});
  for (const DeviceSpec* dev : {&tesla_c1060(), &tesla_c2050()}) {
    for (const bool spread : {false, true}) {
      const KernelReport r = run_variant(*dev, spread, 64);
      table.new_row()
          .add(std::string(dev->name))
          .add(spread ? "warp i -> partition i%p (Fig. 7)"
                      : "all warps -> partition 1 (Fig. 6)")
          .add(r.transactions)
          .add(r.camping_factor, 2)
          .add(r.dram_cycles, 0)
          .add(format_seconds(r.kernel_time_s));
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: on the C1060 (CC 1.3) the camped variant "
               "costs ~8x the DRAM cycles (8 partitions serialised); on the "
               "C2050 (CC 2.0) cached reads neutralise camping, matching "
               "Section X's remark.\n";
  return 0;
}

// Reproduces the Figs. 8-9 comparison at the data-structure level: the
// single whole-graph adjacency matrix (Fig. 8, camping-prone) versus the
// redundant per-ALS blocks pinned to partitions (Fig. 9).  Reports the
// memory-system statistics of the triangle kernel under each layout,
// including the redundancy cost in device bytes.
#include <iostream>

#include "core/triangle_gpu.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

int main() {
  using namespace lgg;
  using core::GpuLayout;

  std::cout << "=== Figs. 8-9: single adjacency matrix vs redundant "
               "per-ALS layout ===\n\n";

  // A community-structured graph with several ALS per component — the
  // regime where neighbouring level sets share data (Section X-A).
  const graph::Graph g = graph::layered_random(3000, 250, 0.03, 0.015, 5);

  TextTable table({"Layout", "Device bytes", "Txn/slot", "Camping",
                   "DRAM cycles", "Kernel model_s"});
  for (const GpuLayout layout :
       {GpuLayout::kNaive, GpuLayout::kCoalesced,
        GpuLayout::kCoalescedAntiCamping}) {
    core::GpuTriangleOptions opts;
    opts.layout = layout;
    opts.max_simulated_tests = 400000;
    const auto r = core::count_triangles_gpu(g, opts);
    table.new_row()
        .add(core::gpu_layout_name(layout))
        .add(format_bytes(r.device_bytes))
        .add(r.kernel.transactions_per_slot(), 2)
        .add(r.kernel.camping_factor, 2)
        .add(r.kernel.dram_cycles, 0)
        .add(format_seconds(r.kernel.kernel_time_s));
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the Fig. 9 layout spends extra device "
               "memory (duplicated boundary levels + partition padding) to "
               "cut transactions per access slot and push the camping "
               "factor toward 1.0.\n";
  return 0;
}

// Ingest throughput: serial reference loader vs the parallel pipeline
// (DESIGN.md §13).
//
// Builds a large synthetic SNAP file (10M edges by default; override with
// $LGG_BENCH_INGEST_EDGES), then loads it with the serial
// graph::read_snap_edge_list_file reference and with ingest::load_snap_file
// at 1/2/4/8 threads.  Each parallel row reports edges/sec, the speedup
// over the serial loader, and digest_match — the determinism contract
// (byte-identical LoadedGraph at any thread count) checked on the real
// artefact, not a toy.
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_json.hpp"
#include "graph/digest.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "ingest/ingest.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

/// SNAP writer tuned for bench setup: to_chars into one big buffer, no
/// ostream formatting.  The file is what both loaders read, so the exact
/// writer does not affect the comparison.
void write_snap_fast(const std::string& path, const lgg::graph::Graph& g) {
  std::string buf;
  buf.reserve(g.num_edges() * 16 + 64);
  buf += "# Nodes: " + std::to_string(g.num_vertices()) +
         " Edges: " + std::to_string(g.num_edges()) + "\n";
  char digits[32];
  for (lgg::graph::Vertex u = 0; u < g.num_vertices(); ++u) {
    for (const lgg::graph::Vertex v : g.neighbors(u)) {
      if (v <= u) continue;
      auto [p, ec] = std::to_chars(digits, digits + sizeof digits, u);
      buf.append(digits, p);
      buf += ' ';
      auto [q, ec2] = std::to_chars(digits, digits + sizeof digits, v);
      buf.append(digits, q);
      buf += '\n';
    }
  }
  std::ofstream out(path, std::ios::binary);
  out << buf;
}

}  // namespace

int main() {
  using namespace lgg;
  std::size_t edges = 10'000'000;
  if (const char* env = std::getenv("LGG_BENCH_INGEST_EDGES"))
    edges = std::strtoull(env, nullptr, 10);
  const std::size_t vertices = edges / 5;

  std::cout << "=== Ingest throughput: serial loader vs parallel pipeline ("
            << edges << " edges) ===\n\n";
  const graph::Graph g = graph::gnm(vertices, edges, 42);
  const std::string path = "/tmp/lgg_bench_ingest.txt";
  write_snap_fast(path, g);

  Stopwatch serial_watch;
  const graph::LoadedGraph serial = graph::read_snap_edge_list_file(path);
  const double serial_ms = serial_watch.elapsed_ms();
  const std::uint64_t want_digest = graph::loaded_graph_digest(serial);
  const double serial_eps =
      static_cast<double>(serial.graph.num_edges()) / (serial_ms / 1000.0);

  TextTable table({"loader", "threads", "wall ms", "edges/sec", "speedup",
                   "digest match"});
  table.new_row()
      .add("serial")
      .add(std::uint64_t{1})
      .add(serial_ms, 1)
      .add(serial_eps, 0)
      .add(1.0, 2)
      .add("yes");
  bench::emit(bench::JsonRecord("ingest_serial")
                  .field("edges", std::uint64_t{g.num_edges()})
                  .field("wall_ms", serial_ms)
                  .field("edges_per_sec", serial_eps)
                  .field("speedup", 1.0)
                  .field("digest_match", true));

  for (const std::size_t threads : {1, 2, 4, 8}) {
    ingest::IngestOptions opts;
    opts.threads = threads;
    Stopwatch watch;
    const ingest::IngestResult r = ingest::load_snap_file(path, opts);
    const double ms = watch.elapsed_ms();
    const bool match = graph::loaded_graph_digest(r.loaded) == want_digest;
    const double eps =
        static_cast<double>(r.loaded.graph.num_edges()) / (ms / 1000.0);
    table.new_row()
        .add("parallel")
        .add(std::uint64_t{threads})
        .add(ms, 1)
        .add(eps, 0)
        .add(serial_ms / ms, 2)
        .add(match ? "yes" : "NO");
    bench::emit(bench::JsonRecord("ingest_parallel")
                    .field("threads", std::uint64_t{threads})
                    .field("edges", std::uint64_t{r.loaded.graph.num_edges()})
                    .field("wall_ms", ms)
                    .field("edges_per_sec", eps)
                    .field("speedup", serial_ms / ms)
                    .field("parse_ms", r.stats.parse_s * 1000.0)
                    .field("compact_ms", r.stats.compact_s * 1000.0)
                    .field("build_ms", r.stats.build_s * 1000.0)
                    .field("digest_match", match));
    if (!match) {
      std::cerr << "DIGEST MISMATCH at threads=" << threads << "\n";
      return 1;
    }
  }
  std::cout << "\n";
  table.print(std::cout);
  std::remove(path.c_str());
  return 0;
}

// Google-benchmark microbenchmarks of the hot primitives underneath the
// paper's pipeline: combinadic unranking, ALS test decoding, adjacency
// probes, coalescing, and the reference counters.
#include <benchmark/benchmark.h>

#include "combi/binomial.hpp"
#include "combi/combinadic.hpp"
#include "core/als_plan.hpp"
#include "core/triangle_cpu.hpp"
#include "graph/bit_matrix.hpp"
#include "graph/generators.hpp"
#include "gpusim/banks.hpp"
#include "gpusim/coalescing.hpp"
#include "util/prng.hpp"

namespace {

using namespace lgg;

void BM_Binomial(benchmark::State& state) {
  std::uint64_t n = 100000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(combi::binomial(n, 3));
    n += 7;  // defeat constant folding
  }
}
BENCHMARK(BM_Binomial);

void BM_CombinationUnrank(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint64_t total = combi::binomial(n, 3);
  Xoshiro256 rng(1);
  std::uint32_t buf[3];
  for (auto _ : state) {
    combi::combination_from_index(rng.uniform(total), n, 3,
                                  std::span<std::uint32_t>(buf, 3));
    benchmark::DoNotOptimize(buf[2]);
  }
}
BENCHMARK(BM_CombinationUnrank)->Arg(1000)->Arg(100000);

void BM_AlsDecode(benchmark::State& state) {
  core::AlsJob job;
  job.s = static_cast<std::uint32_t>(state.range(0));
  job.a = job.s / 2;
  job.x_max = job.a;
  job.tests = core::als_total_tests(job.s, job.x_max);
  Xoshiro256 rng(2);
  for (auto _ : state) {
    const auto t = core::als_decode_test(job, rng.uniform(job.tests));
    benchmark::DoNotOptimize(t.z);
  }
}
BENCHMARK(BM_AlsDecode)->Arg(1000)->Arg(50000);

void BM_HasEdgeCsr(benchmark::State& state) {
  const graph::Graph g = graph::erdos_renyi(2000, 0.01, 3);
  Xoshiro256 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g.has_edge(static_cast<graph::Vertex>(rng.uniform(2000)),
                   static_cast<graph::Vertex>(rng.uniform(2000))));
  }
}
BENCHMARK(BM_HasEdgeCsr);

void BM_BitMatrixProbe(benchmark::State& state) {
  const graph::BitMatrix m =
      graph::BitMatrix::from_graph(graph::erdos_renyi(2000, 0.01, 3));
  Xoshiro256 rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.get(rng.uniform(2000), rng.uniform(2000)));
  }
}
BENCHMARK(BM_BitMatrixProbe);

void BM_CoalesceWarp(benchmark::State& state) {
  Xoshiro256 rng(5);
  std::vector<gpusim::LaneAccess> accesses(32);
  for (std::uint32_t l = 0; l < 32; ++l)
    accesses[l] = {l, rng.uniform(1 << 16) * 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gpusim::coalesce_warp(gpusim::ComputeCapability::k13, accesses, 4)
            .count());
  }
}
BENCHMARK(BM_CoalesceWarp);

void BM_BankConflict(benchmark::State& state) {
  std::vector<std::uint64_t> addrs(16);
  for (std::uint32_t l = 0; l < 16; ++l) addrs[l] = 8ull * l;
  for (auto _ : state)
    benchmark::DoNotOptimize(gpusim::bank_conflict_degree(addrs, 16));
}
BENCHMARK(BM_BankConflict);

void BM_TriangleForward(benchmark::State& state) {
  const graph::Graph g =
      graph::barabasi_albert(static_cast<std::size_t>(state.range(0)), 4, 6);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::count_triangles_forward(g));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_TriangleForward)->Arg(1000)->Arg(10000);

void BM_TriangleAlsCpu(benchmark::State& state) {
  const graph::Graph g = graph::erdos_renyi(120, 0.1, 7);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::count_triangles_cpu_als(g).triangles);
}
BENCHMARK(BM_TriangleAlsCpu);

void BM_BuildAlsPlan(benchmark::State& state) {
  const graph::Graph g = graph::layered_random(
      static_cast<std::size_t>(state.range(0)), 200, 0.02, 0.01, 8);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::build_als_plan(g).total_tests);
}
BENCHMARK(BM_BuildAlsPlan)->Arg(2000)->Arg(20000);

}  // namespace

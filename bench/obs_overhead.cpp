// Tracer overhead: traced vs untraced triangle runs (DESIGN.md §12).
//
// The observability layer's contract is that it is free when off (a null
// Session pointer short-circuits every Scope and counter call) and cheap
// when on (all calls sit in host-serial driver code, never in warp
// replay).  This bench measures both claims on the Fig. 11 community
// workloads: wall time untraced, with a null session, and with tracing
// armed.  The interesting number is overhead_off_pct — it should be noise
// (< 5%); overhead_on_pct bounds the cost of actually collecting spans.
#include <algorithm>
#include <cstddef>
#include <iostream>
#include <string>

#include "bench_json.hpp"
#include "core/triangle_gpu.hpp"
#include "graph/generators.hpp"
#include "obs/obs.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main() {
  using namespace lgg;
  std::cout << "=== Observability overhead: traced vs untraced "
               "gpu/triangle ===\n\n";

  TextTable table({"n", "tests", "untraced ms", "off ms", "on ms",
                   "off overhead", "on overhead", "spans"});
  for (std::size_t n = 5000; n <= 15000; n += 5000) {
    // Fig. 11 workload shape (see fig11_large_graphs.cpp).
    const graph::Graph g =
        graph::layered_random(n, 300, 0.012, 0.006, 4000 + n);
    core::GpuTriangleOptions opts;
    opts.layout = core::GpuLayout::kNaive;
    opts.max_simulated_tests = 1000000;

    // Warm-up run so allocator and page-cache effects don't land on the
    // first timed variant; then best-of-3 per variant so scheduler jitter
    // doesn't masquerade as tracer overhead.
    core::count_triangles_gpu(g, opts);
    constexpr int kReps = 3;
    const auto best_of = [&](core::GpuTriangleOptions& o, double& best_ms) {
      core::GpuTriangleResult r;
      best_ms = 1e300;
      for (int rep = 0; rep < kReps; ++rep) {
        Stopwatch w;
        r = core::count_triangles_gpu(g, o);
        best_ms = std::min(best_ms, w.elapsed_ms());
      }
      return r;
    };

    double untraced_ms = 0.0, off_ms = 0.0, on_ms = 0.0;
    const auto untraced = best_of(opts, untraced_ms);

    // "Off": the obs pointer is null (the default) — same code path as
    // untraced; any difference is measurement noise.
    opts.obs = nullptr;
    const auto off = best_of(opts, off_ms);

    obs::Session session;
    opts.obs = &session;
    const auto on = best_of(opts, on_ms);

    if (untraced.triangles != on.triangles || off.triangles != on.triangles) {
      std::cerr << "tracing changed the count!\n";
      return 1;
    }

    const double off_pct = (off_ms / untraced_ms - 1.0) * 100.0;
    const double on_pct = (on_ms / untraced_ms - 1.0) * 100.0;
    // The session accumulated kReps runs' spans; report one run's worth.
    const auto spans =
        static_cast<std::uint64_t>(session.tracer.spans().size() / kReps);
    table.new_row()
        .add(std::uint64_t{n})
        .add(on.simulated_tests)
        .add(untraced_ms, 1)
        .add(off_ms, 1)
        .add(on_ms, 1)
        .add(std::to_string(static_cast<int>(off_pct)) + "%")
        .add(std::to_string(static_cast<int>(on_pct)) + "%")
        .add(spans);

    bench::emit(bench::JsonRecord("obs_overhead/n" + std::to_string(n))
                    .field("wall_ms", on_ms)
                    .field("untraced_ms", untraced_ms)
                    .field("traced_off_ms", off_ms)
                    .field("traced_on_ms", on_ms)
                    .field("overhead_off_pct", off_pct)
                    .field("overhead_on_pct", on_pct)
                    .field("spans", spans)
                    .field("triangles", on.triangles)
                    .raw("config",
                         "{\"layout\":\"naive\",\"max_simulated_tests\":"
                         "1000000}"));
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the off column tracks untraced within "
               "noise (the null-session fast path costs one pointer test "
               "per driver phase), and even armed tracing stays in the "
               "low single digits — spans are per-phase, not per-test, so "
               "the span count is constant while the work grows.\n";
  return 0;
}

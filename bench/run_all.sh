#!/usr/bin/env bash
# Run the full benchmark suite and collect machine-readable results.
#
# Usage:  bench/run_all.sh [build_dir] [out.json]
#
# Every bench binary prints its human-readable tables to
# <out>.d/<bench>.log; lines prefixed "BENCHJSON " (see bench_json.hpp)
# are stripped of the prefix and concatenated into <out.json>, one JSON
# object per line.  Benches that are intentionally skipped (interactive,
# needs-external-data, or not yet instrumented for JSON) are logged so a
# silent gap in the output is never mistaken for coverage.
set -u

BUILD_DIR="${1:-build}"
OUT="${2:-bench_results.json}"
BENCH_DIR="${BUILD_DIR}/bench"

if [ ! -d "${BENCH_DIR}" ]; then
  echo "error: ${BENCH_DIR} not found — build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

# Intentionally skipped binaries, with the reason printed below:
#   bench_micro_primitives — google-benchmark harness with its own JSON
#                            reporter (--benchmark_format=json); not part
#                            of the paper-figure schema.
SKIP="bench_micro_primitives"

LOG_DIR="${OUT}.d"
mkdir -p "${LOG_DIR}"
: > "${OUT}"

ran=0
failed=0
for bin in "${BENCH_DIR}"/bench_*; do
  [ -x "${bin}" ] || continue
  name="$(basename "${bin}")"
  case " ${SKIP} " in
    *" ${name} "*)
      echo "SKIP ${name} (see SKIP list in bench/run_all.sh)"
      continue
      ;;
  esac
  echo "RUN  ${name}"
  if ! "${bin}" > "${LOG_DIR}/${name}.log" 2>&1; then
    echo "FAIL ${name} (log: ${LOG_DIR}/${name}.log)" >&2
    failed=$((failed + 1))
    continue
  fi
  sed -n 's/^BENCHJSON //p' "${LOG_DIR}/${name}.log" >> "${OUT}"
  ran=$((ran + 1))
done

rows="$(wc -l < "${OUT}")"
echo
echo "ran ${ran} benches (${failed} failed); ${rows} JSON rows in ${OUT}"
echo "per-bench logs under ${LOG_DIR}/"
[ "${failed}" -eq 0 ]

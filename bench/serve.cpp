// Serving economics (DESIGN.md §15): what residency and batching buy.
//
// Row 1 — cold vs resident latency.  A cold triangle query pays the full
// pipeline every time: admission preprocessing (ALS plan + DODG
// orientation) plus the count.  A resident query reuses the catalog's
// artifacts and, once the result cache is warm, answers without touching
// any backend at all.  The acceptance bar is a >= 5x latency drop for a
// repeated triangle query on a resident graph ($LGG_BENCH_SERVE_EDGES
// edges, 1M by default).
//
// Row 2 — batched vs unbatched throughput.  The same request set (many
// cc queries + repeated triangle queries, cache off so merging is what's
// measured) served with batching on (one pass per (graph, pass key))
// versus off (one pass per request).
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "graph/generators.hpp"
#include "serve/catalog.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

lgg::serve::Request triangle_req(std::uint64_t id) {
  lgg::serve::Request r;
  r.id = id;
  r.tenant = "bench";
  r.graph = "g";
  r.kind = lgg::serve::QueryKind::kTriangles;
  return r;
}

}  // namespace

int main() {
  using namespace lgg;
  std::size_t edges = 1'000'000;
  if (const char* env = std::getenv("LGG_BENCH_SERVE_EDGES"))
    edges = std::strtoull(env, nullptr, 10);
  const std::size_t vertices = edges / 5;

  std::cout << "=== Serving: residency + batching economics (" << edges
            << " edges) ===\n\n";
  const graph::Graph g = graph::gnm(vertices, edges, 42);

  // -- cold latency: admission preprocessing + query, every time --------
  const int kColdRuns = 3;
  double cold_ms = 0.0;
  std::string backend;
  for (int run = 0; run < kColdRuns; ++run) {
    Stopwatch watch;
    serve::Catalog catalog;
    catalog.add("g", g);
    serve::Service service(catalog);
    service.submit(triangle_req(0));
    const std::vector<serve::Response> resp = service.drain();
    cold_ms += watch.elapsed_ms() / kColdRuns;
    const std::string& body = resp.front().body;
    backend = body.substr(body.rfind('=') + 1);
  }

  // -- resident latency: admitted once, the query repeated -------------
  serve::Catalog catalog;
  catalog.add("g", g);
  serve::Service service(catalog);
  const int kResidentRuns = 20;
  double resident_ms = 0.0;
  for (int run = 0; run < kResidentRuns; ++run) {
    Stopwatch watch;
    service.submit(triangle_req(static_cast<std::uint64_t>(run)));
    service.drain();
    // The first repeat is a cache miss on prepared artifacts; the rest
    // are cache hits.  Average over all of them — the steady state a
    // server actually sees.
    resident_ms += watch.elapsed_ms() / kResidentRuns;
  }
  const double latency_speedup = cold_ms / resident_ms;

  TextTable latency({"path", "wall ms/query", "speedup", "backend"});
  latency.new_row().add("cold").add(cold_ms, 3).add(1.0, 1).add(backend);
  latency.new_row()
      .add("resident")
      .add(resident_ms, 3)
      .add(latency_speedup, 1)
      .add("cache");
  latency.print(std::cout);
  bench::emit(bench::JsonRecord("serve_cold_vs_resident")
                  .field("edges", std::uint64_t{g.num_edges()})
                  .field("cold_ms", cold_ms)
                  .field("resident_ms", resident_ms)
                  .field("speedup", latency_speedup)
                  .field("backend", backend)
                  .field("meets_5x", latency_speedup >= 5.0));

  // -- batched vs unbatched throughput (cache off) ----------------------
  const std::size_t kCcQueries = 64;
  const std::size_t kTriQueries = 8;
  const auto request_set = [&] {
    std::vector<serve::Request> reqs;
    std::uint64_t id = 0;
    for (std::size_t i = 0; i < kCcQueries; ++i) {
      serve::Request r;
      r.id = id++;
      r.tenant = "bench";
      r.graph = "g";
      r.kind = serve::QueryKind::kCc;
      r.vertex = static_cast<graph::Vertex>(i);
      reqs.push_back(std::move(r));
    }
    for (std::size_t i = 0; i < kTriQueries; ++i)
      reqs.push_back(triangle_req(id++));
    return reqs;
  };

  TextTable throughput({"mode", "requests", "wall ms", "req/sec"});
  double batched_ms = 0.0, unbatched_ms = 0.0;
  for (const bool batching : {true, false}) {
    serve::Catalog cat;
    cat.add("g", g);
    serve::ServeOptions sopts;
    sopts.batching = batching;
    sopts.cache_capacity = 0;
    serve::Service svc(cat, sopts);
    // cc memoization would hide the per-pass cost; clear it per mode by
    // using a fresh catalog (done above) and measuring the drain only.
    std::vector<serve::Request> reqs = request_set();
    const std::size_t n = reqs.size();
    for (auto& r : reqs) svc.submit(std::move(r));
    Stopwatch watch;
    svc.drain();
    const double ms = watch.elapsed_ms();
    (batching ? batched_ms : unbatched_ms) = ms;
    throughput.new_row()
        .add(batching ? "batched" : "unbatched")
        .add(std::uint64_t{n})
        .add(ms, 2)
        .add(static_cast<double>(n) / (ms / 1000.0), 0);
  }
  std::cout << "\n";
  throughput.print(std::cout);
  bench::emit(bench::JsonRecord("serve_batching")
                  .field("requests", std::uint64_t{kCcQueries + kTriQueries})
                  .field("batched_ms", batched_ms)
                  .field("unbatched_ms", unbatched_ms)
                  .field("speedup", unbatched_ms / batched_ms));

  if (latency_speedup < 5.0) {
    std::cerr << "resident latency speedup " << latency_speedup
              << "x is below the 5x acceptance bar\n";
    return 1;
  }
  return 0;
}

// bench_smoke — the CI perf-regression workload (DESIGN.md §17).
//
// A fast, fixed sweep over the modelled pipeline: the three Fig. 12
// layouts on one community graph plus a hybrid run, each emitting only
// modelled, deterministic metrics (kernel cycles, transaction mix,
// camping, occupancy, makespan) as BENCHJSON rows.  ci/bench_diff
// compares the rows against the committed baseline
// ci/golden/bench_smoke.json with a small rtol and fails CI when a
// modelled metric drifts — the wall_ms field is emitted for humans but
// always ignored by the gate.  Everything here is a pure function of
// the workload, so a clean run diffs exactly; the rtol only absorbs
// deliberate model recalibrations small enough to not need a new
// baseline.
#include <iostream>
#include <string>

#include "bench_json.hpp"
#include "core/hybrid.hpp"
#include "core/triangle_gpu.hpp"
#include "graph/generators.hpp"
#include "obs/obs.hpp"
#include "prof/profiler.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace lgg;
  std::cout << "=== bench_smoke: CI perf-regression workload ===\n";

  const graph::Graph g = graph::layered_random(400, 60, 0.08, 0.04, 17);

  const core::GpuLayout layouts[3] = {core::GpuLayout::kNaive,
                                      core::GpuLayout::kCoalesced,
                                      core::GpuLayout::kCoalescedAntiCamping};
  const char* layout_names[3] = {"naive", "coalesced", "improved"};
  for (int i = 0; i < 3; ++i) {
    obs::Session sess;
    prof::Profiler profiler(&sess);
    core::GpuTriangleOptions opts;
    opts.layout = layouts[i];
    opts.obs = &sess;
    opts.prof = &profiler;
    opts.max_simulated_tests = 2000000;
    Stopwatch wall;
    const auto r = core::count_triangles_gpu(g, opts);
    const double wall_ms = wall.elapsed_ms();
    const prof::KernelProfile& p = profiler.profiles().front();
    bench::emit(bench::JsonRecord(std::string("bench_smoke/gpu_") +
                                  layout_names[i])
                    .field("wall_ms", wall_ms)
                    .field("triangles", r.triangles)
                    .field("kernel_model_s", r.kernel.kernel_time_s)
                    .field("gpu_model_s", r.total_time_s)
                    .field("transactions", p.transactions)
                    .field("coalesced_transactions", p.coalesced_transactions)
                    .field("uncoalesced_transactions",
                           p.uncoalesced_transactions)
                    .field("memory_replays", p.memory_replays)
                    .field("bank_conflict_steps", p.bank_conflict_steps)
                    .field("divergent_warps", p.divergent_warps)
                    .field("camping_factor", p.camping_factor)
                    .field("occupancy", p.occupancy)
                    .field("roofline", roofline_name(p.roofline)));
    std::cout << "gpu_" << layout_names[i] << ": kernel "
              << r.kernel.kernel_time_s << " s, " << p.transactions
              << " txns (" << wall_ms << " ms wall)\n";
  }

  {
    core::HybridOptions opts;
    opts.max_simulated_tests_per_chunk = 100000;
    Stopwatch wall;
    const auto r = core::count_triangles_hybrid(g, opts);
    bench::emit(bench::JsonRecord("bench_smoke/hybrid")
                    .field("wall_ms", wall.elapsed_ms())
                    .field("triangles", r.triangles)
                    .field("makespan_model_s", r.makespan_s)
                    .field("total_model_s", r.total_time_s)
                    .field("shared_chunks",
                           static_cast<std::uint64_t>(r.shared_chunks))
                    .field("global_chunks",
                           static_cast<std::uint64_t>(r.global_chunks)));
    std::cout << "hybrid: makespan " << r.makespan_s << " s, "
              << r.shared_chunks << "+" << r.global_chunks << " chunks\n";
  }
  return 0;
}

// Reproduces Table I: "Architecture comparison of different Nvidia GPUs".
#include <iostream>

#include "gpusim/device.hpp"
#include "util/table.hpp"

int main() {
  using namespace lgg;
  std::cout << "=== Table I: Architecture comparison of different Nvidia "
               "GPUs ===\n\n";
  TextTable table({"Model", "Cores", "Global Mem (GB)", "Sh. Mem (KB)",
                   "# Mem Banks", "Comp. Cap.", "SMs", "Partitions"});
  for (const gpusim::DeviceSpec& d : gpusim::known_devices()) {
    table.new_row()
        .add(d.name)
        .add(std::uint64_t{d.cores})
        .add(static_cast<double>(d.global_mem_bytes) / (1 << 30), 0)
        .add(std::uint64_t{d.shared_mem_bytes / 1024})
        .add(std::uint64_t{d.shared_banks})
        .add(to_string(d.cc))
        .add(std::uint64_t{d.sm_count})
        .add(std::uint64_t{d.partitions});
  }
  table.print(std::cout);
  std::cout << "\nPaper values (Table I): C1060 240/4/16/16/1.3, "
               "C2050 448/3/48/32/2.0, C2070 448/6/48/32/2.0 -- exact match "
               "is expected (this table is the device database).\n";
  return 0;
}

// Reproduces Table II: "Maximum size of graphs on different GPUs" —
// the largest vertex count whose adjacency data fits each memory level
// under the full-matrix (Eq. 1) and S-UTM (Eq. 2 + diagonal) encodings.
#include <iostream>

#include "graph/bit_matrix.hpp"
#include "gpusim/device.hpp"
#include "util/table.hpp"

int main() {
  using namespace lgg;
  std::cout << "=== Table II: Maximum size of graphs on different GPUs "
               "===\n\n";
  TextTable table({"Model", "Shared AdjMat", "Shared S-UTM", "Global AdjMat",
                   "Global S-UTM"});
  for (const gpusim::DeviceSpec& d : gpusim::known_devices()) {
    table.new_row()
        .add(d.name)
        .add(graph::BitMatrix::max_vertices_for(d.shared_mem_bits()))
        .add(graph::SutMatrix::max_vertices_for(d.shared_mem_bits()))
        .add(graph::BitMatrix::max_vertices_for(d.global_mem_bits()))
        .add(graph::SutMatrix::max_vertices_for(d.global_mem_bits()));
  }
  table.print(std::cout);
  std::cout <<
      "\nPaper values (Table II):\n"
      "  C1060  362  512  185363  262144\n"
      "  C2050  627  887  160529  227023\n"
      "  C2070  627  887  227023  321060\n"
      "Every cell is computed from Eqs. (1)-(2) (S-UTM = UTM bound + 1 for\n"
      "the dropped diagonal); expected to match the paper exactly.\n";
  return 0;
}

// Reproduces Table III ("Memory transactions and compute capability") and
// the Figs. 4-5 access-pattern examples: the number of memory transactions
// a warp's 128-byte access costs under each compute capability's
// coalescing rules.
#include <iostream>
#include <vector>

#include "gpusim/coalescing.hpp"
#include "util/table.hpp"

namespace {

using namespace lgg::gpusim;

std::vector<std::uint64_t> sequential(std::uint64_t base) {
  std::vector<std::uint64_t> addrs(32);
  for (std::uint32_t l = 0; l < 32; ++l) addrs[l] = base + 4ull * l;
  return addrs;
}

std::vector<std::uint64_t> permuted(std::uint64_t base) {
  auto addrs = sequential(base);
  for (std::uint32_t l = 0; l + 1 < 16; l += 2) std::swap(addrs[l], addrs[l + 1]);
  for (std::uint32_t l = 16; l + 1 < 32; l += 2)
    std::swap(addrs[l], addrs[l + 1]);
  return addrs;
}

std::vector<std::uint64_t> scattered() {
  // Fig. 4: every lane in a different segment — the maximum-transaction
  // pattern.
  std::vector<std::uint64_t> addrs(32);
  for (std::uint32_t l = 0; l < 32; ++l) addrs[l] = 512ull * l;
  return addrs;
}

}  // namespace

int main() {
  using lgg::TextTable;
  std::cout << "=== Table III: Memory transactions and compute capability "
               "===\n(128 bytes per warp: 32 lanes x 4-byte words)\n\n";

  const ComputeCapability ccs[] = {
      ComputeCapability::k10, ComputeCapability::k11, ComputeCapability::k12,
      ComputeCapability::k13, ComputeCapability::k20};
  const std::size_t paper_seq[] = {2, 2, 2, 2, 1};
  const std::size_t paper_nonseq[] = {32, 32, 2, 2, 1};

  TextTable table({"Comp. Cap.", "Access Pattern", "Data Size (B)",
                   "Transactions", "Paper"});
  for (std::size_t i = 0; i < 5; ++i) {
    table.new_row()
        .add(to_string(ccs[i]))
        .add("Sequential")
        .add(std::uint64_t{128})
        .add(warp_transaction_count(ccs[i], sequential(0), 4))
        .add(paper_seq[i]);
  }
  for (std::size_t i = 0; i < 5; ++i) {
    table.new_row()
        .add(to_string(ccs[i]))
        .add("Non-sequential")
        .add(std::uint64_t{128})
        .add(warp_transaction_count(ccs[i], permuted(0), 4))
        .add(paper_nonseq[i]);
  }
  table.print(std::cout);

  std::cout << "\n--- Fig. 4/5 access-pattern examples (transactions per "
               "warp) ---\n";
  TextTable fig({"Pattern", "CC 1.0", "CC 1.3", "CC 2.0"});
  struct Pattern {
    const char* name;
    std::vector<std::uint64_t> addrs;
  };
  const Pattern patterns[] = {
      {"Fig.5 coalesced: one segment per half-warp", sequential(0)},
      {"misaligned sequential (base + 4)", sequential(4)},
      {"Fig.4 scattered: one segment per lane", scattered()},
  };
  for (const auto& p : patterns) {
    fig.new_row()
        .add(p.name)
        .add(warp_transaction_count(ComputeCapability::k10, p.addrs, 4))
        .add(warp_transaction_count(ComputeCapability::k13, p.addrs, 4))
        .add(warp_transaction_count(ComputeCapability::k20, p.addrs, 4));
  }
  fig.print(std::cout);
  std::cout << "\nExpected: CC >= 1.2 treats permuted (non-sequential) data "
               "like sequential data, the paper's Section IX observation.\n";
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_combgen.dir/ablation_combgen.cpp.o"
  "CMakeFiles/bench_ablation_combgen.dir/ablation_combgen.cpp.o.d"
  "bench_ablation_combgen"
  "bench_ablation_combgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_combgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_combgen.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_launch.dir/ablation_launch.cpp.o"
  "CMakeFiles/bench_ablation_launch.dir/ablation_launch.cpp.o.d"
  "bench_ablation_launch"
  "bench_ablation_launch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_approx_doulion.dir/approx_doulion.cpp.o"
  "CMakeFiles/bench_approx_doulion.dir/approx_doulion.cpp.o.d"
  "bench_approx_doulion"
  "bench_approx_doulion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_approx_doulion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_approx_doulion.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_eq6_chunktime.dir/eq6_chunktime.cpp.o"
  "CMakeFiles/bench_eq6_chunktime.dir/eq6_chunktime.cpp.o.d"
  "bench_eq6_chunktime"
  "bench_eq6_chunktime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq6_chunktime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

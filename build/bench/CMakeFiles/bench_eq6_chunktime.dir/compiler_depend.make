# Empty compiler generated dependencies file for bench_eq6_chunktime.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_large_graphs.dir/fig11_large_graphs.cpp.o"
  "CMakeFiles/bench_fig11_large_graphs.dir/fig11_large_graphs.cpp.o.d"
  "bench_fig11_large_graphs"
  "bench_fig11_large_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_large_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig11_large_graphs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_layouts.dir/fig12_layouts.cpp.o"
  "CMakeFiles/bench_fig12_layouts.dir/fig12_layouts.cpp.o.d"
  "bench_fig12_layouts"
  "bench_fig12_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

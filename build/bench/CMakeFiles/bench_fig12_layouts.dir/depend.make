# Empty dependencies file for bench_fig12_layouts.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_makespan.dir/fig1_makespan.cpp.o"
  "CMakeFiles/bench_fig1_makespan.dir/fig1_makespan.cpp.o.d"
  "bench_fig1_makespan"
  "bench_fig1_makespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig1_makespan.
# This may be replaced when dependencies are built.

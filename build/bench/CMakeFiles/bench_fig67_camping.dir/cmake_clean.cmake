file(REMOVE_RECURSE
  "CMakeFiles/bench_fig67_camping.dir/fig67_camping.cpp.o"
  "CMakeFiles/bench_fig67_camping.dir/fig67_camping.cpp.o.d"
  "bench_fig67_camping"
  "bench_fig67_camping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig67_camping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

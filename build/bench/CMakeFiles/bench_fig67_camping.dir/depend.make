# Empty dependencies file for bench_fig67_camping.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig89_layout_stats.dir/fig89_layout_stats.cpp.o"
  "CMakeFiles/bench_fig89_layout_stats.dir/fig89_layout_stats.cpp.o.d"
  "bench_fig89_layout_stats"
  "bench_fig89_layout_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig89_layout_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

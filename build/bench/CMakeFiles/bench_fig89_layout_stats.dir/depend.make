# Empty dependencies file for bench_fig89_layout_stats.
# This may be replaced when dependencies are built.

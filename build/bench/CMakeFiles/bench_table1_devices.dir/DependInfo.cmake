
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_devices.cpp" "bench/CMakeFiles/bench_table1_devices.dir/table1_devices.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_devices.dir/table1_devices.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stream/CMakeFiles/lgg_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lgg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/lgg_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/lgg_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/combi/CMakeFiles/lgg_combi.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lgg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lgg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

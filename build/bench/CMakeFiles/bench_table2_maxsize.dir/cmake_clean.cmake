file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_maxsize.dir/table2_maxsize.cpp.o"
  "CMakeFiles/bench_table2_maxsize.dir/table2_maxsize.cpp.o.d"
  "bench_table2_maxsize"
  "bench_table2_maxsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_maxsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

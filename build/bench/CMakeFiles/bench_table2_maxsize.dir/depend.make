# Empty dependencies file for bench_table2_maxsize.
# This may be replaced when dependencies are built.

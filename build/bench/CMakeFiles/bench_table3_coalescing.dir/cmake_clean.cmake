file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_coalescing.dir/table3_coalescing.cpp.o"
  "CMakeFiles/bench_table3_coalescing.dir/table3_coalescing.cpp.o.d"
  "bench_table3_coalescing"
  "bench_table3_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

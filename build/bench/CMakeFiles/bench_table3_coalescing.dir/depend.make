# Empty dependencies file for bench_table3_coalescing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chunked_large_graph.dir/chunked_large_graph.cpp.o"
  "CMakeFiles/chunked_large_graph.dir/chunked_large_graph.cpp.o.d"
  "chunked_large_graph"
  "chunked_large_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chunked_large_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for chunked_large_graph.
# This may be replaced when dependencies are built.

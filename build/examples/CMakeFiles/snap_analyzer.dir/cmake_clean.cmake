file(REMOVE_RECURSE
  "CMakeFiles/snap_analyzer.dir/snap_analyzer.cpp.o"
  "CMakeFiles/snap_analyzer.dir/snap_analyzer.cpp.o.d"
  "snap_analyzer"
  "snap_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for snap_analyzer.
# This may be replaced when dependencies are built.

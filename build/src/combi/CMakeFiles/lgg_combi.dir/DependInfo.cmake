
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/combi/binomial.cpp" "src/combi/CMakeFiles/lgg_combi.dir/binomial.cpp.o" "gcc" "src/combi/CMakeFiles/lgg_combi.dir/binomial.cpp.o.d"
  "/root/repo/src/combi/combinadic.cpp" "src/combi/CMakeFiles/lgg_combi.dir/combinadic.cpp.o" "gcc" "src/combi/CMakeFiles/lgg_combi.dir/combinadic.cpp.o.d"
  "/root/repo/src/combi/gray.cpp" "src/combi/CMakeFiles/lgg_combi.dir/gray.cpp.o" "gcc" "src/combi/CMakeFiles/lgg_combi.dir/gray.cpp.o.d"
  "/root/repo/src/combi/strategies.cpp" "src/combi/CMakeFiles/lgg_combi.dir/strategies.cpp.o" "gcc" "src/combi/CMakeFiles/lgg_combi.dir/strategies.cpp.o.d"
  "/root/repo/src/combi/stratified.cpp" "src/combi/CMakeFiles/lgg_combi.dir/stratified.cpp.o" "gcc" "src/combi/CMakeFiles/lgg_combi.dir/stratified.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lgg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/lgg_combi.dir/binomial.cpp.o"
  "CMakeFiles/lgg_combi.dir/binomial.cpp.o.d"
  "CMakeFiles/lgg_combi.dir/combinadic.cpp.o"
  "CMakeFiles/lgg_combi.dir/combinadic.cpp.o.d"
  "CMakeFiles/lgg_combi.dir/gray.cpp.o"
  "CMakeFiles/lgg_combi.dir/gray.cpp.o.d"
  "CMakeFiles/lgg_combi.dir/strategies.cpp.o"
  "CMakeFiles/lgg_combi.dir/strategies.cpp.o.d"
  "CMakeFiles/lgg_combi.dir/stratified.cpp.o"
  "CMakeFiles/lgg_combi.dir/stratified.cpp.o.d"
  "liblgg_combi.a"
  "liblgg_combi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgg_combi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblgg_combi.a"
)

# Empty dependencies file for lgg_combi.
# This may be replaced when dependencies are built.

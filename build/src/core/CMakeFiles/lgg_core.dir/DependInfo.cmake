
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/als_plan.cpp" "src/core/CMakeFiles/lgg_core.dir/als_plan.cpp.o" "gcc" "src/core/CMakeFiles/lgg_core.dir/als_plan.cpp.o.d"
  "/root/repo/src/core/approx.cpp" "src/core/CMakeFiles/lgg_core.dir/approx.cpp.o" "gcc" "src/core/CMakeFiles/lgg_core.dir/approx.cpp.o.d"
  "/root/repo/src/core/bfs_gpu.cpp" "src/core/CMakeFiles/lgg_core.dir/bfs_gpu.cpp.o" "gcc" "src/core/CMakeFiles/lgg_core.dir/bfs_gpu.cpp.o.d"
  "/root/repo/src/core/hybrid.cpp" "src/core/CMakeFiles/lgg_core.dir/hybrid.cpp.o" "gcc" "src/core/CMakeFiles/lgg_core.dir/hybrid.cpp.o.d"
  "/root/repo/src/core/intersect_gpu.cpp" "src/core/CMakeFiles/lgg_core.dir/intersect_gpu.cpp.o" "gcc" "src/core/CMakeFiles/lgg_core.dir/intersect_gpu.cpp.o.d"
  "/root/repo/src/core/kcount.cpp" "src/core/CMakeFiles/lgg_core.dir/kcount.cpp.o" "gcc" "src/core/CMakeFiles/lgg_core.dir/kcount.cpp.o.d"
  "/root/repo/src/core/social.cpp" "src/core/CMakeFiles/lgg_core.dir/social.cpp.o" "gcc" "src/core/CMakeFiles/lgg_core.dir/social.cpp.o.d"
  "/root/repo/src/core/subgraph_gpu.cpp" "src/core/CMakeFiles/lgg_core.dir/subgraph_gpu.cpp.o" "gcc" "src/core/CMakeFiles/lgg_core.dir/subgraph_gpu.cpp.o.d"
  "/root/repo/src/core/timing_model.cpp" "src/core/CMakeFiles/lgg_core.dir/timing_model.cpp.o" "gcc" "src/core/CMakeFiles/lgg_core.dir/timing_model.cpp.o.d"
  "/root/repo/src/core/triangle_cpu.cpp" "src/core/CMakeFiles/lgg_core.dir/triangle_cpu.cpp.o" "gcc" "src/core/CMakeFiles/lgg_core.dir/triangle_cpu.cpp.o.d"
  "/root/repo/src/core/triangle_gpu.cpp" "src/core/CMakeFiles/lgg_core.dir/triangle_gpu.cpp.o" "gcc" "src/core/CMakeFiles/lgg_core.dir/triangle_gpu.cpp.o.d"
  "/root/repo/src/core/truss.cpp" "src/core/CMakeFiles/lgg_core.dir/truss.cpp.o" "gcc" "src/core/CMakeFiles/lgg_core.dir/truss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/lgg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/combi/CMakeFiles/lgg_combi.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/lgg_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/lgg_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lgg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/lgg_core.dir/als_plan.cpp.o"
  "CMakeFiles/lgg_core.dir/als_plan.cpp.o.d"
  "CMakeFiles/lgg_core.dir/approx.cpp.o"
  "CMakeFiles/lgg_core.dir/approx.cpp.o.d"
  "CMakeFiles/lgg_core.dir/bfs_gpu.cpp.o"
  "CMakeFiles/lgg_core.dir/bfs_gpu.cpp.o.d"
  "CMakeFiles/lgg_core.dir/hybrid.cpp.o"
  "CMakeFiles/lgg_core.dir/hybrid.cpp.o.d"
  "CMakeFiles/lgg_core.dir/intersect_gpu.cpp.o"
  "CMakeFiles/lgg_core.dir/intersect_gpu.cpp.o.d"
  "CMakeFiles/lgg_core.dir/kcount.cpp.o"
  "CMakeFiles/lgg_core.dir/kcount.cpp.o.d"
  "CMakeFiles/lgg_core.dir/social.cpp.o"
  "CMakeFiles/lgg_core.dir/social.cpp.o.d"
  "CMakeFiles/lgg_core.dir/subgraph_gpu.cpp.o"
  "CMakeFiles/lgg_core.dir/subgraph_gpu.cpp.o.d"
  "CMakeFiles/lgg_core.dir/timing_model.cpp.o"
  "CMakeFiles/lgg_core.dir/timing_model.cpp.o.d"
  "CMakeFiles/lgg_core.dir/triangle_cpu.cpp.o"
  "CMakeFiles/lgg_core.dir/triangle_cpu.cpp.o.d"
  "CMakeFiles/lgg_core.dir/triangle_gpu.cpp.o"
  "CMakeFiles/lgg_core.dir/triangle_gpu.cpp.o.d"
  "CMakeFiles/lgg_core.dir/truss.cpp.o"
  "CMakeFiles/lgg_core.dir/truss.cpp.o.d"
  "liblgg_core.a"
  "liblgg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

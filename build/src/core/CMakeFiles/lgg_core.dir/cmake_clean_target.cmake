file(REMOVE_RECURSE
  "liblgg_core.a"
)

# Empty dependencies file for lgg_core.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/banks.cpp" "src/gpusim/CMakeFiles/lgg_gpusim.dir/banks.cpp.o" "gcc" "src/gpusim/CMakeFiles/lgg_gpusim.dir/banks.cpp.o.d"
  "/root/repo/src/gpusim/coalescing.cpp" "src/gpusim/CMakeFiles/lgg_gpusim.dir/coalescing.cpp.o" "gcc" "src/gpusim/CMakeFiles/lgg_gpusim.dir/coalescing.cpp.o.d"
  "/root/repo/src/gpusim/device.cpp" "src/gpusim/CMakeFiles/lgg_gpusim.dir/device.cpp.o" "gcc" "src/gpusim/CMakeFiles/lgg_gpusim.dir/device.cpp.o.d"
  "/root/repo/src/gpusim/executor.cpp" "src/gpusim/CMakeFiles/lgg_gpusim.dir/executor.cpp.o" "gcc" "src/gpusim/CMakeFiles/lgg_gpusim.dir/executor.cpp.o.d"
  "/root/repo/src/gpusim/memory.cpp" "src/gpusim/CMakeFiles/lgg_gpusim.dir/memory.cpp.o" "gcc" "src/gpusim/CMakeFiles/lgg_gpusim.dir/memory.cpp.o.d"
  "/root/repo/src/gpusim/occupancy.cpp" "src/gpusim/CMakeFiles/lgg_gpusim.dir/occupancy.cpp.o" "gcc" "src/gpusim/CMakeFiles/lgg_gpusim.dir/occupancy.cpp.o.d"
  "/root/repo/src/gpusim/partition.cpp" "src/gpusim/CMakeFiles/lgg_gpusim.dir/partition.cpp.o" "gcc" "src/gpusim/CMakeFiles/lgg_gpusim.dir/partition.cpp.o.d"
  "/root/repo/src/gpusim/report.cpp" "src/gpusim/CMakeFiles/lgg_gpusim.dir/report.cpp.o" "gcc" "src/gpusim/CMakeFiles/lgg_gpusim.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lgg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

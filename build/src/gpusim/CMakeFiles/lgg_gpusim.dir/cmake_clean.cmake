file(REMOVE_RECURSE
  "CMakeFiles/lgg_gpusim.dir/banks.cpp.o"
  "CMakeFiles/lgg_gpusim.dir/banks.cpp.o.d"
  "CMakeFiles/lgg_gpusim.dir/coalescing.cpp.o"
  "CMakeFiles/lgg_gpusim.dir/coalescing.cpp.o.d"
  "CMakeFiles/lgg_gpusim.dir/device.cpp.o"
  "CMakeFiles/lgg_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/lgg_gpusim.dir/executor.cpp.o"
  "CMakeFiles/lgg_gpusim.dir/executor.cpp.o.d"
  "CMakeFiles/lgg_gpusim.dir/memory.cpp.o"
  "CMakeFiles/lgg_gpusim.dir/memory.cpp.o.d"
  "CMakeFiles/lgg_gpusim.dir/occupancy.cpp.o"
  "CMakeFiles/lgg_gpusim.dir/occupancy.cpp.o.d"
  "CMakeFiles/lgg_gpusim.dir/partition.cpp.o"
  "CMakeFiles/lgg_gpusim.dir/partition.cpp.o.d"
  "CMakeFiles/lgg_gpusim.dir/report.cpp.o"
  "CMakeFiles/lgg_gpusim.dir/report.cpp.o.d"
  "liblgg_gpusim.a"
  "liblgg_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgg_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblgg_gpusim.a"
)

# Empty dependencies file for lgg_gpusim.
# This may be replaced when dependencies are built.

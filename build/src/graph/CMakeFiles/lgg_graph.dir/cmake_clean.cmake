file(REMOVE_RECURSE
  "CMakeFiles/lgg_graph.dir/bfs.cpp.o"
  "CMakeFiles/lgg_graph.dir/bfs.cpp.o.d"
  "CMakeFiles/lgg_graph.dir/bit_matrix.cpp.o"
  "CMakeFiles/lgg_graph.dir/bit_matrix.cpp.o.d"
  "CMakeFiles/lgg_graph.dir/chunking.cpp.o"
  "CMakeFiles/lgg_graph.dir/chunking.cpp.o.d"
  "CMakeFiles/lgg_graph.dir/formats.cpp.o"
  "CMakeFiles/lgg_graph.dir/formats.cpp.o.d"
  "CMakeFiles/lgg_graph.dir/generators.cpp.o"
  "CMakeFiles/lgg_graph.dir/generators.cpp.o.d"
  "CMakeFiles/lgg_graph.dir/graph.cpp.o"
  "CMakeFiles/lgg_graph.dir/graph.cpp.o.d"
  "CMakeFiles/lgg_graph.dir/io.cpp.o"
  "CMakeFiles/lgg_graph.dir/io.cpp.o.d"
  "CMakeFiles/lgg_graph.dir/metrics.cpp.o"
  "CMakeFiles/lgg_graph.dir/metrics.cpp.o.d"
  "liblgg_graph.a"
  "liblgg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

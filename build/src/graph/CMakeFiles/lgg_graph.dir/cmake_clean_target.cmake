file(REMOVE_RECURSE
  "liblgg_graph.a"
)

# Empty compiler generated dependencies file for lgg_graph.
# This may be replaced when dependencies are built.

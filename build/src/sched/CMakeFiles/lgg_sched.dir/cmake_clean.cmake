file(REMOVE_RECURSE
  "CMakeFiles/lgg_sched.dir/makespan.cpp.o"
  "CMakeFiles/lgg_sched.dir/makespan.cpp.o.d"
  "liblgg_sched.a"
  "liblgg_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgg_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

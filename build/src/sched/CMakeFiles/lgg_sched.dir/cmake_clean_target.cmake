file(REMOVE_RECURSE
  "liblgg_sched.a"
)

# Empty compiler generated dependencies file for lgg_sched.
# This may be replaced when dependencies are built.

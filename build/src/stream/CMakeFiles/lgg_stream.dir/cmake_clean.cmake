file(REMOVE_RECURSE
  "CMakeFiles/lgg_stream.dir/edge_stream.cpp.o"
  "CMakeFiles/lgg_stream.dir/edge_stream.cpp.o.d"
  "CMakeFiles/lgg_stream.dir/streaming_triangles.cpp.o"
  "CMakeFiles/lgg_stream.dir/streaming_triangles.cpp.o.d"
  "liblgg_stream.a"
  "liblgg_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgg_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblgg_stream.a"
)

# Empty dependencies file for lgg_stream.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lgg_util.dir/prng.cpp.o"
  "CMakeFiles/lgg_util.dir/prng.cpp.o.d"
  "CMakeFiles/lgg_util.dir/table.cpp.o"
  "CMakeFiles/lgg_util.dir/table.cpp.o.d"
  "CMakeFiles/lgg_util.dir/thread_pool.cpp.o"
  "CMakeFiles/lgg_util.dir/thread_pool.cpp.o.d"
  "liblgg_util.a"
  "liblgg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblgg_util.a"
)

# Empty dependencies file for lgg_util.
# This may be replaced when dependencies are built.

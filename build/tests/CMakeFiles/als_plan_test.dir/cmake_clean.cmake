file(REMOVE_RECURSE
  "CMakeFiles/als_plan_test.dir/als_plan_test.cpp.o"
  "CMakeFiles/als_plan_test.dir/als_plan_test.cpp.o.d"
  "als_plan_test"
  "als_plan_test.pdb"
  "als_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/als_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

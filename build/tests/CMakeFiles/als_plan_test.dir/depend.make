# Empty dependencies file for als_plan_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bfs_gpu_test.dir/bfs_gpu_test.cpp.o"
  "CMakeFiles/bfs_gpu_test.dir/bfs_gpu_test.cpp.o.d"
  "bfs_gpu_test"
  "bfs_gpu_test.pdb"
  "bfs_gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfs_gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

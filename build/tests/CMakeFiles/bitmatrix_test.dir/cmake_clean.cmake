file(REMOVE_RECURSE
  "CMakeFiles/bitmatrix_test.dir/bitmatrix_test.cpp.o"
  "CMakeFiles/bitmatrix_test.dir/bitmatrix_test.cpp.o.d"
  "bitmatrix_test"
  "bitmatrix_test.pdb"
  "bitmatrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitmatrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

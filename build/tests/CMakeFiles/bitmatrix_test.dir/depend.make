# Empty dependencies file for bitmatrix_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/combinadic_test.dir/combinadic_test.cpp.o"
  "CMakeFiles/combinadic_test.dir/combinadic_test.cpp.o.d"
  "combinadic_test"
  "combinadic_test.pdb"
  "combinadic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combinadic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

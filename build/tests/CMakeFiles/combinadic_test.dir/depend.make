# Empty dependencies file for combinadic_test.
# This may be replaced when dependencies are built.

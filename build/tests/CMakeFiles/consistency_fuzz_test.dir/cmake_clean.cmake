file(REMOVE_RECURSE
  "CMakeFiles/consistency_fuzz_test.dir/consistency_fuzz_test.cpp.o"
  "CMakeFiles/consistency_fuzz_test.dir/consistency_fuzz_test.cpp.o.d"
  "consistency_fuzz_test"
  "consistency_fuzz_test.pdb"
  "consistency_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

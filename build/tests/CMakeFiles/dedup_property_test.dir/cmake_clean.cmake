file(REMOVE_RECURSE
  "CMakeFiles/dedup_property_test.dir/dedup_property_test.cpp.o"
  "CMakeFiles/dedup_property_test.dir/dedup_property_test.cpp.o.d"
  "dedup_property_test"
  "dedup_property_test.pdb"
  "dedup_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

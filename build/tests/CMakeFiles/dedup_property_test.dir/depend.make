# Empty dependencies file for dedup_property_test.
# This may be replaced when dependencies are built.

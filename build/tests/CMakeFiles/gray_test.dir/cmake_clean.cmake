file(REMOVE_RECURSE
  "CMakeFiles/gray_test.dir/gray_test.cpp.o"
  "CMakeFiles/gray_test.dir/gray_test.cpp.o.d"
  "gray_test"
  "gray_test.pdb"
  "gray_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gray_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for gray_test.
# This may be replaced when dependencies are built.

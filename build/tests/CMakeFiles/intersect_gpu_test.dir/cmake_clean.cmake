file(REMOVE_RECURSE
  "CMakeFiles/intersect_gpu_test.dir/intersect_gpu_test.cpp.o"
  "CMakeFiles/intersect_gpu_test.dir/intersect_gpu_test.cpp.o.d"
  "intersect_gpu_test"
  "intersect_gpu_test.pdb"
  "intersect_gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intersect_gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

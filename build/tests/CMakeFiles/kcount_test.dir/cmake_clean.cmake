file(REMOVE_RECURSE
  "CMakeFiles/kcount_test.dir/kcount_test.cpp.o"
  "CMakeFiles/kcount_test.dir/kcount_test.cpp.o.d"
  "kcount_test"
  "kcount_test.pdb"
  "kcount_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcount_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

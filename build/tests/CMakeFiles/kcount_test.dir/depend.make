# Empty dependencies file for kcount_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/makespan_test.dir/makespan_test.cpp.o"
  "CMakeFiles/makespan_test.dir/makespan_test.cpp.o.d"
  "makespan_test"
  "makespan_test.pdb"
  "makespan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/makespan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

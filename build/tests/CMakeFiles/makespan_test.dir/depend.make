# Empty dependencies file for makespan_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/subgraph_gpu_test.dir/subgraph_gpu_test.cpp.o"
  "CMakeFiles/subgraph_gpu_test.dir/subgraph_gpu_test.cpp.o.d"
  "subgraph_gpu_test"
  "subgraph_gpu_test.pdb"
  "subgraph_gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subgraph_gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for subgraph_gpu_test.
# This may be replaced when dependencies are built.

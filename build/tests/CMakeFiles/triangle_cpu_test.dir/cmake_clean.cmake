file(REMOVE_RECURSE
  "CMakeFiles/triangle_cpu_test.dir/triangle_cpu_test.cpp.o"
  "CMakeFiles/triangle_cpu_test.dir/triangle_cpu_test.cpp.o.d"
  "triangle_cpu_test"
  "triangle_cpu_test.pdb"
  "triangle_cpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triangle_cpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

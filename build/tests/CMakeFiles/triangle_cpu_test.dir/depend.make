# Empty dependencies file for triangle_cpu_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/triangle_gpu_test.dir/triangle_gpu_test.cpp.o"
  "CMakeFiles/triangle_gpu_test.dir/triangle_gpu_test.cpp.o.d"
  "triangle_gpu_test"
  "triangle_gpu_test.pdb"
  "triangle_gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triangle_gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for triangle_gpu_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lgg_cli.dir/lgg_cli.cpp.o"
  "CMakeFiles/lgg_cli.dir/lgg_cli.cpp.o.d"
  "lgg_cli"
  "lgg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lgg_cli.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_generate_and_stats "sh" "-c" "/root/repo/build/tools/lgg_cli generate ba /root/repo/build/cli_smoke.txt 200 3 7 && /root/repo/build/tools/lgg_cli stats /root/repo/build/cli_smoke.txt")
set_tests_properties(cli_generate_and_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_count_matches "sh" "-c" "/root/repo/build/tools/lgg_cli count /root/repo/build/cli_smoke.txt forward && /root/repo/build/tools/lgg_cli count /root/repo/build/cli_smoke.txt external 2000")
set_tests_properties(cli_count_matches PROPERTIES  DEPENDS "cli_generate_and_stats" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_gpu_and_hybrid "sh" "-c" "/root/repo/build/tools/lgg_cli gpu /root/repo/build/cli_smoke.txt improved C1060 && /root/repo/build/tools/lgg_cli hybrid /root/repo/build/cli_smoke.txt")
set_tests_properties(cli_gpu_and_hybrid PROPERTIES  DEPENDS "cli_generate_and_stats" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_usage "/root/repo/build/tools/lgg_cli" "frobnicate")
set_tests_properties(cli_rejects_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")

#!/usr/bin/env bash
# One-command local CI: configure/build/test the default preset, a
# time-boxed deterministic fuzz smoke campaign, the serve stage (serving
# suites + golden + thread-count byte-identity), the prof stage (profiler
# suites + golden profile-tree + lgg_prof diff gate), the bench stage
# (bench_smoke vs the committed baseline via ci/bench_diff), the
# address+UB-sanitized preset, the thread-sanitized preset (concurrency
# label only -- TSan is too slow for the full suite), and finally the
# lint stage: lgg_lint's
# determinism source lint + whole-pipeline plan verification (always), and
# clang-tidy on top when installed.
#
# Usage: ci/check.sh [extra ctest args, e.g. -j8]
set -euo pipefail

cd "$(dirname "$0")/.."
CTEST_ARGS=("$@")
JOBS="$(nproc 2>/dev/null || echo 4)"

step() { printf '\n=== %s ===\n' "$*"; }

step "default: configure + build"
cmake --preset default
cmake --build --preset default -j "$JOBS"

step "default: full test suite"
ctest --test-dir build --output-on-failure "${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}"

step "fuzz: 30s deterministic differential smoke campaign"
# Fixed master seed: any finding here is reproducible from the emitted
# repro file (see DESIGN.md section 10 for the triage workflow).  The
# iteration cap is a backstop so the stage is time-boxed either way.
build/tools/lgg_fuzz campaign --seconds 30 --iterations 100000 --seed 20130520

step "resilience: fault-injection + recovery suites"
# The resilience-labelled tests (ctest -L resilience) pin the DESIGN.md
# section 11 contract: exact counts under injected faults, FaultPlan /
# RunReport accounting, and thread-count-independent fault campaigns.
ctest --test-dir build -L resilience --output-on-failure \
      "${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}"

step "resilience: 15s fault-campaign smoke (10% fault rate)"
build/tools/lgg_fuzz campaign --seconds 15 --iterations 100000 \
      --seed 20130520 --faults=0.1,7

step "obs: tracing/metrics suites"
# The obs-labelled tests (ctest -L obs) pin the DESIGN.md section 12
# contract: modelled-time span trees and Prometheus dumps byte-identical
# across host thread counts, and counters that match the driver reports.
ctest --test-dir build -L obs --output-on-failure \
      "${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}"

step "obs: trace determinism + golden span tree (lgg_cli triangle)"
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
build/tools/lgg_cli triangle tests/corpus/single-triangle.txt \
      --trace="$OBS_TMP/t1.json" --trace-tree="$OBS_TMP/t1.spans" \
      --metrics="$OBS_TMP/t1.prom" --threads 1 > /dev/null
build/tools/lgg_cli triangle tests/corpus/single-triangle.txt \
      --trace="$OBS_TMP/t4.json" --trace-tree="$OBS_TMP/t4.spans" \
      --metrics="$OBS_TMP/t4.prom" --threads 4 > /dev/null
cmp "$OBS_TMP/t1.json" "$OBS_TMP/t4.json"
cmp "$OBS_TMP/t1.prom" "$OBS_TMP/t4.prom"
if command -v jq > /dev/null; then
  jq -e '.traceEvents | length > 0' "$OBS_TMP/t1.json" > /dev/null
elif command -v python3 > /dev/null; then
  python3 -c "import json,sys; \
assert json.load(open(sys.argv[1]))['traceEvents']" "$OBS_TMP/t1.json"
fi
diff -u ci/golden/single-triangle.spans.txt "$OBS_TMP/t1.spans"

step "ingest: determinism suites"
# The ingest-labelled tests (ctest -L ingest) pin the DESIGN.md section 13
# contract: the parallel loader's LoadedGraph is byte-identical to the
# serial reference at any thread count and chunk size.
ctest --test-dir build -L ingest --output-on-failure \
      "${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}"

step "ingest: serial-vs-parallel digest on a 1M-edge graph (lgg_cli)"
# The same contract end to end through the CLI, at a size where the
# parallel pipeline actually fans out (many chunks, skewed buckets).
build/tools/lgg_cli generate gnm "$OBS_TMP/ingest-1m.txt" 200000 1000000 7 \
      > /dev/null
SERIAL_DIGEST="$(build/tools/lgg_cli ingest "$OBS_TMP/ingest-1m.txt" --serial \
      | awk '$1 == "digest:" { print $2 }')"
for T in 1 8; do
  PAR_DIGEST="$(build/tools/lgg_cli ingest "$OBS_TMP/ingest-1m.txt" \
        --threads "$T" | awk '$1 == "digest:" { print $2 }')"
  if [ "$SERIAL_DIGEST" != "$PAR_DIGEST" ]; then
    echo "ingest digest mismatch at --threads $T:" \
         "serial=$SERIAL_DIGEST parallel=$PAR_DIGEST" >&2
    exit 1
  fi
done
echo "digest $SERIAL_DIGEST identical for --serial, --threads 1, --threads 8"

step "serve: serving-layer suites"
# The serve-labelled tests (ctest -L serve) pin the DESIGN.md section 15
# contract: concurrent submission byte-identical to serial, exact-match
# result cache transparent under eviction, batching that never changes
# per-query results, and cache hits that bypass the device entirely.
ctest --test-dir build -L serve --output-on-failure \
      "${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}"

step "serve: golden responses + span tree + metrics (batching + cache)"
build/tools/lgg_serve run ci/serve-single-triangle.script \
      --trace-tree - --metrics - > "$OBS_TMP/serve-golden.txt"
diff -u ci/golden/serve-single-triangle.txt "$OBS_TMP/serve-golden.txt"
# The golden run must have actually merged a pass and hit the cache.
grep -q '^lgg_serve_batch_merges_total 1$' "$OBS_TMP/serve-golden.txt"
grep -q '^lgg_serve_cache_hits_total 1$' "$OBS_TMP/serve-golden.txt"

step "serve: threads-1-vs-8 byte-identity on a 100k-edge catalog"
# The full serving determinism contract at a size where device passes,
# the DODG counter and the estimate backends all fan out on the host.
cat > "$OBS_TMP/serve-big.script" <<'EOF'
gen big gnm 20000 100000 7
gen small gnm 200 600 9
alice big triangles
bob small triangles
carol big doulion 0.25 3
alice small wedges 500 4
bob big bfs 0
carol small cc 7
alice big triangles
drain
bob big triangles
alice small kclique 4
drain
EOF
build/tools/lgg_serve run "$OBS_TMP/serve-big.script" --threads 1 \
      --log "$OBS_TMP/serve-big-t1.log" --metrics "$OBS_TMP/serve-big-t1.prom" \
      > "$OBS_TMP/serve-big-t1.out"
build/tools/lgg_serve run "$OBS_TMP/serve-big.script" --threads 8 \
      --log "$OBS_TMP/serve-big-t8.log" --metrics "$OBS_TMP/serve-big-t8.prom" \
      > "$OBS_TMP/serve-big-t8.out"
cmp "$OBS_TMP/serve-big-t1.out" "$OBS_TMP/serve-big-t8.out"
cmp "$OBS_TMP/serve-big-t1.log" "$OBS_TMP/serve-big-t8.log"
cmp "$OBS_TMP/serve-big-t1.prom" "$OBS_TMP/serve-big-t8.prom"
echo "serve responses, log and metrics identical at --threads 1 and 8"

step "chaos: kill/resume suites (ctest -L chaos)"
# The chaos-labelled tests really kill a process (_Exit) mid-run and
# resume it from its checkpoint, then require every artifact — report,
# log, trace, span tree, metrics — byte-identical to an uninterrupted
# reference (DESIGN.md section 16).
ctest --test-dir build -L chaos --output-on-failure \
      "${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}"

step "chaos: kill-after-2-chunks resume smoke (faults armed)"
# Belt and braces outside ctest: one end-to-end kill/resume cycle with
# fault injection on.  lgg_chaos byte-compares the artifact pairs
# itself; prom_diff re-checks the metrics pair at zero tolerance, and
# with --rtol demonstrates the tolerant mode used for cross-host runs.
build/tools/lgg_chaos resilient --dir "$OBS_TMP/chaos" --faults 0.05,7 \
      --kill-after 2
ci/prom_diff "$OBS_TMP/chaos/ref.prom" "$OBS_TMP/chaos/run.prom"
echo "resumed metrics identical to uninterrupted reference (prom_diff)"

step "prof: profiler suites (ctest -L prof)"
# The prof-labelled tests pin the DESIGN.md section 17 contract: the
# modelled counters reproduce the driver KernelReport exactly, every
# export (profile, profile-tree, flamegraph, trace counter tracks) is
# byte-identical across ExecPolicy/thread counts, and lgg_prof diff
# honours the prom_diff tolerance contract.
ctest --test-dir build -L prof --output-on-failure \
      "${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}"

step "prof: golden profile-tree + threads-1-vs-8 byte-identity"
build/tools/lgg_cli triangle tests/corpus/single-triangle.txt \
      --profile="$OBS_TMP/p1.prof" --profile-tree="$OBS_TMP/p1.tree" \
      --flamegraph="$OBS_TMP/p1.flame" --threads 1 > /dev/null
build/tools/lgg_cli triangle tests/corpus/single-triangle.txt \
      --profile="$OBS_TMP/p8.prof" --profile-tree="$OBS_TMP/p8.tree" \
      --flamegraph="$OBS_TMP/p8.flame" --threads 8 > /dev/null
cmp "$OBS_TMP/p1.prof" "$OBS_TMP/p8.prof"
cmp "$OBS_TMP/p1.tree" "$OBS_TMP/p8.tree"
cmp "$OBS_TMP/p1.flame" "$OBS_TMP/p8.flame"
diff -u ci/golden/single-triangle.profile-tree.txt "$OBS_TMP/p1.tree"

step "prof: lgg_prof diff gate (clean exits 0, tampered exits 1)"
build/tools/lgg_prof diff "$OBS_TMP/p1.prof" "$OBS_TMP/p8.prof"
sed '/^lgg_prof_transactions{/s/ / 9/' "$OBS_TMP/p1.prof" \
      > "$OBS_TMP/p1-tampered.prof"
if build/tools/lgg_prof diff "$OBS_TMP/p1.prof" "$OBS_TMP/p1-tampered.prof" \
      > /dev/null; then
  echo "lgg_prof diff failed to flag a tampered profile" >&2
  exit 1
fi
echo "profiles identical at --threads 1 and 8; tampered profile flagged"

step "bench: perf-regression gate (bench_smoke vs committed baseline)"
# Modelled metrics only — wall-clock fields are always ignored by
# ci/bench_diff.  The 2% rtol absorbs deliberate small recalibrations;
# anything larger needs a reviewed baseline refresh (DESIGN.md s17).
build/bench/bench_smoke | grep '^BENCHJSON ' | sed 's/^BENCHJSON //' \
      > "$OBS_TMP/bench_smoke.json"
ci/bench_diff ci/golden/bench_smoke.json "$OBS_TMP/bench_smoke.json" \
      --rtol 0.02
echo "bench_smoke modelled metrics within 2% of the committed baseline"

step "asan: configure + build (LGG_SANITIZE=address, LGG_WERROR=ON)"
cmake --preset asan
cmake --build --preset asan -j "$JOBS"

step "asan: full test suite"
ctest --preset asan-full "${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}"

step "tsan: configure + build (LGG_SANITIZE=thread, LGG_WERROR=ON)"
cmake --preset tsan
cmake --build --preset tsan -j "$JOBS"

step "tsan: concurrency-labelled tests"
ctest --preset tsan-concurrency "${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}"

step "lint: determinism + plan-safety suites (ctest -L lint)"
# The lint-labelled tests pin the DESIGN.md section 14 contract: every
# rule catches its seeded fixture at the exact line, the allowlist stays
# non-stale, and the footprint/schedule-repair proofs hold.
ctest --test-dir build -L lint --output-on-failure \
      "${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}"

step "lint: rule catalog matches the reviewed golden"
build/tools/lgg_lint --list-rules > "$OBS_TMP/lint-rules.txt"
diff -u ci/golden/lint-rules.txt "$OBS_TMP/lint-rules.txt"

step "lint: source tree clean through ci/lint_allow.txt"
build/tools/lgg_lint --allowlist=ci/lint_allow.txt src tools bench

step "lint: whole-pipeline plan verification (loss-k=2)"
build/tools/lgg_lint --verify-plans --loss-k=2

step "lint: lgg_lint + clang-tidy via the CMake target"
cmake --build build --target lint

step "all checks passed"

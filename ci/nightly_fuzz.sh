#!/usr/bin/env bash
# Nightly extended fuzz + fault campaign.
#
# Runs a long differential campaign (10 minutes by default) with the
# fault-injection path armed at a 10% per-site rate.  The master seed is
# derived from the date, so each night explores a fresh deterministic
# slice of the input space while any finding stays reproducible from the
# printed seed alone.  Repro files land in tests/corpus/incoming/ for
# triage, where the fuzz_corpus_incoming_replay ctest entry keeps
# replaying them — an unresolved finding fails CI until it is fixed and
# promoted into tests/corpus/ (the permanent regression set replayed by
# fuzz_corpus_replay).  See tests/corpus/incoming/README.md.
#
# Usage: ci/nightly_fuzz.sh [seconds] [fault-rate]
set -euo pipefail

cd "$(dirname "$0")/.."
SECONDS_BUDGET="${1:-600}"
FAULT_RATE="${2:-0.1}"
SEED="$(date +%Y%m%d)"
INCOMING="tests/corpus/incoming"
JOBS="$(nproc 2>/dev/null || echo 4)"

step() { printf '\n=== %s ===\n' "$*"; }

step "build (default preset)"
cmake --preset default
cmake --build --preset default -j "$JOBS"

mkdir -p "$INCOMING"

step "nightly campaign: seed=$SEED budget=${SECONDS_BUDGET}s faults=$FAULT_RATE"
# Findings stream to stdout and repros to $INCOMING as they occur, so a
# killed run loses nothing.  The iteration cap is a backstop only.
if build/tools/lgg_fuzz campaign \
      --seconds "$SECONDS_BUDGET" --iterations 100000000 \
      --seed "$SEED" --max-findings 64 \
      --faults="$FAULT_RATE,$SEED" \
      --corpus "$INCOMING"; then
  step "campaign clean (seed=$SEED)"
else
  step "FINDINGS recorded under $INCOMING (replay: build/tools/lgg_fuzz corpus $INCOMING)"
  exit 1
fi

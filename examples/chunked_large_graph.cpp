// Large-graph scenario: the full paper pipeline at 100k vertices — the
// scale Section III says motivated the move to global memory.
//
// Algorithm 1 splits the graph into BFS-level chunks against the C1060's
// 16 KiB shared memory; the chunk jobs are makespan-scheduled onto its 30
// SMs (Section VI); the triangle count runs on the simulated GPU with the
// Fig. 9 layout, test-sampled for timing.
//
//   ./chunked_large_graph [n]
#include <cstdlib>
#include <iostream>

#include "lgg.hpp"

int main(int argc, char** argv) {
  using namespace lgg;
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;

  std::cout << "Building a community-structured graph with " << n
            << " vertices...\n";
  const graph::Graph g = graph::layered_random(n, 300, 0.012, 0.006, 99);
  std::cout << "  " << g.num_edges() << " edges\n\n";

  const gpusim::DeviceSpec& dev = gpusim::tesla_c1060();

  // --- Algorithm 1: chunk against shared memory ---
  graph::ChunkingOptions copts;
  copts.shared_mem_bits = dev.shared_mem_bits();
  Stopwatch wall;
  const graph::ChunkingResult chunks = graph::split_into_chunks(g, copts);
  std::cout << "Algorithm 1: " << chunks.chunks.size() << " chunks in "
            << format_seconds(wall.elapsed_s()) << " wall; "
            << chunks.oversized_chunks
            << " exceed shared memory and go to global memory\n";

  std::uint64_t shared_bits = 0, global_bits = 0;
  for (const auto& c : chunks.chunks)
    (c.fits_shared ? shared_bits : global_bits) += c.bits;
  std::cout << "  shared-resident data " << format_bytes(shared_bits / 8)
            << ", global-resident data " << format_bytes(global_bits / 8)
            << "\n\n";

  // --- Section VI: makespan-schedule the chunk jobs on 30 SMs ---
  std::vector<std::uint64_t> jobs;
  for (const auto& c : chunks.chunks) jobs.push_back(c.bits);
  const auto lpt = sched::lpt_schedule(jobs, dev.sm_count);
  const auto naive = sched::list_schedule(jobs, dev.sm_count);
  std::cout << "chunk scheduling on " << dev.sm_count
            << " SMs: makespan LPT = " << lpt.makespan
            << " (arrival-order " << naive.makespan << ", lower bound "
            << sched::makespan_lower_bound(jobs, dev.sm_count) << ")\n\n";

  // --- Algorithm 2 on the simulated GPU ---
  const std::uint64_t triangles = core::count_triangles_forward(g);
  core::GpuTriangleOptions opts;
  opts.layout = core::GpuLayout::kCoalescedAntiCamping;
  opts.max_simulated_tests = 1000000;
  const auto gpu = core::count_triangles_gpu(g, opts);
  const core::AlsPlan plan = core::build_als_plan(g);

  std::cout << "triangles (exact, host oracle): " << triangles << "\n";
  std::cout << "candidate tests over ALS plan:  " << plan.total_tests << " ("
            << plan.jobs.size() << " adjacent level sets)\n";
  std::cout << "device adjacency footprint:     "
            << format_bytes(gpu.device_bytes) << " of "
            << format_bytes(dev.global_mem_bytes) << "\n";
  std::cout << "modelled GPU end-to-end:        "
            << format_seconds(gpu.total_time_s)
            << " (paper reports 170-180 s at this scale)\n";
  std::cout << "modelled single-thread CPU:     "
            << format_seconds(core::cpu_model_time_s(plan)) << "\n";
  return 0;
}

// Device explorer: what does the same triangle workload cost on each of
// the paper's three boards (Table I), and what do the coalescing and
// partition models say about why?
//
//   ./device_explorer [n]
#include <cstdlib>
#include <iostream>

#include "lgg.hpp"

int main(int argc, char** argv) {
  using namespace lgg;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3000;

  const graph::Graph g = graph::layered_random(n, 250, 0.03, 0.015, 11);
  std::cout << "workload: community graph, " << g.num_vertices()
            << " vertices, " << g.num_edges() << " edges\n\n";

  TextTable table({"Device", "CC", "Max n (S-UTM, global)", "Kernel model_s",
                   "Camping", "Txn/slot", "Transfer"});
  for (const gpusim::DeviceSpec& dev : gpusim::known_devices()) {
    core::GpuTriangleOptions opts;
    opts.device = &dev;
    opts.layout = core::GpuLayout::kCoalesced;
    opts.max_simulated_tests = 500000;
    const auto r = core::count_triangles_gpu(g, opts);
    table.new_row()
        .add(std::string(dev.name))
        .add(to_string(dev.cc))
        .add(graph::SutMatrix::max_vertices_for(dev.global_mem_bits()))
        .add(r.kernel.kernel_time_s, 4)
        .add(r.kernel.camping_factor, 2)
        .add(r.kernel.transactions_per_slot(), 2)
        .add(format_seconds(r.transfer.time_s));
  }
  table.print(std::cout);

  std::cout << "\nWhy the Fermi boards behave differently:\n"
               "  * CC 2.0 coalesces a full warp through 128-byte cache\n"
               "    lines (Table III row '2.0': 1 transaction vs 2).\n"
               "  * Cached global reads absorb partition camping, so the\n"
               "    Fig. 9 redundant layout only pays off on CC 1.x.\n";
  return 0;
}

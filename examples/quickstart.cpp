// Quickstart: count triangles in a graph three ways — a CPU oracle, the
// paper's BFS-level CPU algorithm, and the simulated-GPU global-memory
// kernel — and print the memory-system report the simulator produces.
//
//   ./quickstart [n] [p] [seed]
#include <cstdlib>
#include <iostream>

#include "lgg.hpp"

int main(int argc, char** argv) {
  using namespace lgg;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500;
  const double p = argc > 2 ? std::strtod(argv[2], nullptr) : 0.05;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  std::cout << "Generating G(" << n << ", " << p << ") with seed " << seed
            << "...\n";
  const graph::Graph g = graph::erdos_renyi(n, p, seed);
  std::cout << "  " << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges, max degree " << g.max_degree() << "\n\n";

  // 1. Fast exact oracle.
  Stopwatch wall;
  const std::uint64_t oracle = core::count_triangles_forward(g);
  std::cout << "forward algorithm (oracle):   " << oracle << " triangles in "
            << format_seconds(wall.elapsed_s()) << " wall\n";

  // 2. The paper's Algorithm 1 + Algorithm 2 on the CPU.
  wall.reset();
  const core::CpuAlsResult cpu = core::count_triangles_cpu_als(g);
  std::cout << "BFS-level CPU (Algorithm 2):  " << cpu.triangles
            << " triangles, " << cpu.tests << " candidate tests, "
            << format_seconds(wall.elapsed_s()) << " wall, "
            << format_seconds(core::cpu_model_time_s(cpu))
            << " modelled on the paper's Xeon\n";

  // 3. The simulated GPU with the improved (Fig. 9) layout.
  core::GpuTriangleOptions opts;
  opts.layout = core::GpuLayout::kCoalescedAntiCamping;
  opts.max_simulated_tests = 2000000;  // sample large test spaces
  const core::GpuTriangleResult gpu = core::count_triangles_gpu(g, opts);
  std::cout << "simulated C1060 GPU kernel:   ";
  if (gpu.exact)
    std::cout << gpu.triangles << " triangles (exact functional run), ";
  else
    std::cout << "(timing-sampled run; count from oracle above), ";
  std::cout << format_seconds(gpu.total_time_s)
            << " modelled end-to-end\n\n";

  std::cout << "kernel report:\n  " << gpu.kernel << "\n\n";
  std::cout << "clustering: transitivity = " << core::transitivity(g)
            << ", triangle-free = " << (core::is_triangle_free(g) ? "yes" : "no")
            << "\n";
  return 0;
}

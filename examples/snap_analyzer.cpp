// SNAP file analyzer: run the paper's pipeline on a real SNAP edge list
// (https://snap.stanford.edu/data/) — or, without an argument, on a
// bundled synthetic stand-in written to a temp file to demonstrate the
// IO path end to end.
//
//   ./snap_analyzer [edge-list.txt]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "lgg.hpp"

int main(int argc, char** argv) {
  using namespace lgg;

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "/tmp/lgg_snap_demo.txt";
    std::cout << "(no file given: writing a synthetic community graph to "
              << path << ")\n";
    graph::write_snap_edge_list_file(
        path, graph::layered_random(5000, 300, 0.012, 0.006, 123),
        "synthetic stand-in for a SNAP community graph");
  }

  Stopwatch wall;
  const graph::LoadedGraph loaded = graph::read_snap_edge_list_file(path);
  const graph::Graph& g = loaded.graph;
  std::cout << "loaded " << path << ": " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges in "
            << format_seconds(wall.elapsed_s()) << "\n\n";

  const graph::Components comps = graph::connected_components(g);
  std::cout << "connected components: " << comps.count << "\n";

  const core::AlsPlan plan = core::build_als_plan(g);
  std::cout << "ALS plan: " << plan.jobs.size() << " adjacent level sets, "
            << plan.total_tests << " candidate tests\n";

  wall.reset();
  const std::uint64_t triangles = core::count_triangles_forward(g);
  std::cout << "triangles: " << triangles << " ("
            << format_seconds(wall.elapsed_s()) << " wall)\n";
  std::cout << "transitivity: " << core::transitivity(g) << "\n\n";

  core::GpuTriangleOptions opts;
  opts.max_simulated_tests = 1000000;
  const auto gpu = core::count_triangles_gpu(g, opts);
  std::cout << "modelled C1060 end-to-end: " << format_seconds(gpu.total_time_s)
            << "   modelled Xeon single-thread: "
            << format_seconds(core::cpu_model_time_s(plan)) << "\n";
  std::cout << "device footprint (" << core::gpu_layout_name(opts.layout)
            << " layout): " << format_bytes(gpu.device_bytes) << "\n";
  return 0;
}

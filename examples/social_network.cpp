// Social-network scenario (the paper's Fig. 2 motivation): build a
// power-law friendship graph, measure its triangle statistics, and
// produce friend suggestions from open triads — "friends of friends tend
// to be friends".
//
//   ./social_network [n] [attach] [seed]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "lgg.hpp"

int main(int argc, char** argv) {
  using namespace lgg;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  const std::size_t attach =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  std::cout << "Building a Barabasi-Albert friendship network: " << n
            << " people, " << attach << " links per newcomer...\n";
  const graph::Graph g = graph::barabasi_albert(n, attach, seed);
  std::cout << "  " << g.num_edges() << " friendships, max degree "
            << g.max_degree() << "\n\n";

  // Triangle statistics.
  const std::uint64_t triangles = core::count_triangles_forward(g);
  const double trans = core::transitivity(g);
  std::cout << "triangles: " << triangles << ", transitivity ratio "
            << std::fixed << std::setprecision(4) << trans << "\n";

  const auto cc = core::clustering_coefficients(g);
  const auto tri_per_vertex = core::triangles_per_vertex(g);
  graph::Vertex most_clustered = 0;
  for (graph::Vertex v = 1; v < g.num_vertices(); ++v)
    if (tri_per_vertex[v] > tri_per_vertex[most_clustered])
      most_clustered = v;
  std::cout << "most embedded person: #" << most_clustered << " with "
            << tri_per_vertex[most_clustered]
            << " triangles (local clustering "
            << cc[most_clustered] << ")\n\n";

  // Fig. 2: friend suggestion for the most embedded person.
  std::cout << "friend suggestions for #" << most_clustered
            << " (by mutual friends):\n";
  TextTable suggestions({"candidate", "mutual friends"});
  for (const auto& s : core::suggest_friends(g, most_clustered, 5))
    suggestions.new_row()
        .add(std::uint64_t{s.candidate})
        .add(s.mutual_friends);
  suggestions.print(std::cout);

  // Strongest open triads in the whole network: the pairs a recommender
  // should close first.
  std::cout << "\nstrongest open triads network-wide:\n";
  TextTable triads({"u", "v", "common friends"});
  for (const auto& t : core::top_open_triads(g, 5))
    triads.new_row()
        .add(std::uint64_t{t.u})
        .add(std::uint64_t{t.v})
        .add(t.common);
  triads.print(std::cout);

  // Spam/anomaly angle from the paper's Section VII: vertices whose degree
  // is high but clustering is near zero look like broadcast accounts.
  std::cout << "\npossible broadcast/spam accounts (degree >= 30, local "
               "clustering < 0.02):\n";
  std::size_t flagged = 0;
  for (graph::Vertex v = 0; v < g.num_vertices() && flagged < 5; ++v) {
    if (g.degree(v) >= 30 && cc[v] < 0.02) {
      std::cout << "  #" << v << ": degree " << g.degree(v)
                << ", clustering " << cc[v] << "\n";
      ++flagged;
    }
  }
  if (flagged == 0) std::cout << "  (none at these thresholds)\n";
  return 0;
}

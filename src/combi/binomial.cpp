#include "combi/binomial.hpp"

#include <bit>

namespace lgg::combi {

namespace {
// 128-bit intermediates keep the running products exact; the __extension__
// marker silences -Wpedantic (GNU extension, available on every supported
// compiler).
__extension__ typedef unsigned __int128 U128;
}  // namespace

std::uint64_t binomial(std::uint64_t n, std::uint64_t k) noexcept {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  if (k == 0) return 1;

  // result = prod_{i=1..k} (n - k + i) / i, keeping the running value exact:
  // after the i-th step the value is C(n-k+i, i), an integer.
  U128 result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    result = result * (n - k + i);
    result /= i;
    if (result >= kBinomialOverflow) return kBinomialOverflow;
  }
  return static_cast<std::uint64_t>(result);
}

std::optional<std::uint64_t> binomial_checked(std::uint64_t n,
                                              std::uint64_t k) noexcept {
  const std::uint64_t value = binomial(n, k);
  if (value == kBinomialOverflow) return std::nullopt;
  return value;
}

std::uint64_t precomputed_storage_bits(std::uint64_t n,
                                       std::uint64_t k) noexcept {
  const std::uint64_t combos = binomial(n, k);
  if (combos == kBinomialOverflow) return kBinomialOverflow;
  const std::uint64_t id_bits =
      n <= 1 ? 1 : static_cast<std::uint64_t>(std::bit_width(n - 1));
  const U128 total = static_cast<U128>(combos) * k * id_bits;
  if (total >= kBinomialOverflow) return kBinomialOverflow;
  return static_cast<std::uint64_t>(total);
}

}  // namespace lgg::combi

#include "combi/binomial.hpp"

#include <bit>

namespace lgg::combi {

std::uint64_t binomial(std::uint64_t n, std::uint64_t k) noexcept {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  if (k == 0) return 1;

  // result = prod_{i=1..k} (n - k + i) / i, keeping the running value exact:
  // after the i-th step the value is C(n-k+i, i), an integer.
  unsigned __int128 result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    result = result * (n - k + i);
    result /= i;
    if (result >= kBinomialOverflow) return kBinomialOverflow;
  }
  return static_cast<std::uint64_t>(result);
}

std::optional<std::uint64_t> binomial_checked(std::uint64_t n,
                                              std::uint64_t k) noexcept {
  const std::uint64_t value = binomial(n, k);
  if (value == kBinomialOverflow) return std::nullopt;
  return value;
}

std::uint64_t precomputed_storage_bits(std::uint64_t n,
                                       std::uint64_t k) noexcept {
  const std::uint64_t combos = binomial(n, k);
  if (combos == kBinomialOverflow) return kBinomialOverflow;
  const std::uint64_t id_bits =
      n <= 1 ? 1 : static_cast<std::uint64_t>(std::bit_width(n - 1));
  const unsigned __int128 total =
      static_cast<unsigned __int128>(combos) * k * id_bits;
  if (total >= kBinomialOverflow) return kBinomialOverflow;
  return static_cast<std::uint64_t>(total);
}

}  // namespace lgg::combi

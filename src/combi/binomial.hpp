// Binomial coefficients with explicit overflow behaviour.
//
// Combination counts drive work division across simulated GPU threads
// (Section VIII-D); for n ~ 100,000 and k = 3 the counts approach 1.7e14,
// so 64-bit arithmetic with overflow *detection* (not silent wraparound)
// is required.
#pragma once

#include <cstdint>
#include <optional>

namespace lgg::combi {

/// Sentinel returned by binomial() when C(n, k) does not fit in 64 bits.
inline constexpr std::uint64_t kBinomialOverflow = ~std::uint64_t{0};

/// C(n, k), or kBinomialOverflow if the exact value exceeds 2^64 - 2.
/// C(n, 0) == 1; k > n yields 0.  O(min(k, n-k)) multiplications with
/// 128-bit intermediates, exact at every step.
std::uint64_t binomial(std::uint64_t n, std::uint64_t k) noexcept;

/// Checked variant: std::nullopt on overflow.
std::optional<std::uint64_t> binomial_checked(std::uint64_t n,
                                              std::uint64_t k) noexcept;

/// Storage cost, in bits, of precomputing all C(n, k) combinations of
/// k * log2ceil(n)-bit node ids — the paper's Section VIII-A accounting
/// (n C k * k * log n bits).  Saturates to kBinomialOverflow.
std::uint64_t precomputed_storage_bits(std::uint64_t n,
                                       std::uint64_t k) noexcept;

}  // namespace lgg::combi

#include "combi/combinadic.hpp"

#include "combi/binomial.hpp"
#include "util/error.hpp"

namespace lgg::combi {

void combination_from_index(std::uint64_t index, std::uint32_t n,
                            std::uint32_t k, std::span<std::uint32_t> out) {
  LGG_CHECK(out.size() == k, "output buffer size " << out.size()
                                                   << " != k=" << k);
  const std::uint64_t total = binomial(n, k);
  LGG_CHECK(total != kBinomialOverflow, "C(" << n << "," << k
                                             << ") overflows 64 bits");
  LGG_CHECK(index < total,
            "combination index " << index << " >= C(" << n << "," << k
                                 << ")=" << total);

  // Walk candidate first elements: element v is the first of
  // C(n - 1 - v, k - 1) combinations; subtract blocks until the index
  // lands inside one, then recurse on the suffix.  O(n) per combination.
  std::uint32_t v = 0;
  for (std::uint32_t slot = 0; slot < k; ++slot) {
    for (;;) {
      const std::uint64_t block = binomial(n - 1 - v, k - 1 - slot);
      LGG_ASSERT(block != kBinomialOverflow);
      if (index < block) break;
      index -= block;
      ++v;
    }
    out[slot] = v;
    ++v;
  }
}

std::vector<std::uint32_t> combination_from_index(std::uint64_t index,
                                                  std::uint32_t n,
                                                  std::uint32_t k) {
  std::vector<std::uint32_t> out(k);
  combination_from_index(index, n, k, out);
  return out;
}

std::uint64_t index_from_combination(std::span<const std::uint32_t> combo,
                                     std::uint32_t n) {
  const auto k = static_cast<std::uint32_t>(combo.size());
  std::uint64_t index = 0;
  std::uint32_t prev = 0;  // first candidate value for this slot
  for (std::uint32_t slot = 0; slot < k; ++slot) {
    const std::uint32_t v = combo[slot];
    LGG_CHECK(v < n, "combination element " << v << " out of range n=" << n);
    LGG_CHECK(slot == 0 || v > combo[slot - 1],
              "combination not strictly increasing");
    for (std::uint32_t skipped = prev; skipped < v; ++skipped) {
      const std::uint64_t block = binomial(n - 1 - skipped, k - 1 - slot);
      LGG_ASSERT(block != kBinomialOverflow);
      index += block;
    }
    prev = v + 1;
  }
  return index;
}

bool next_combination(std::span<std::uint32_t> combo, std::uint32_t n) {
  const auto k = static_cast<std::uint32_t>(combo.size());
  if (k == 0) return false;
  // Find the rightmost element that can still be incremented: element at
  // slot i may grow up to n - k + i.
  std::uint32_t i = k;
  while (i > 0) {
    --i;
    if (combo[i] < n - k + i) {
      ++combo[i];
      for (std::uint32_t j = i + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
      return true;
    }
  }
  return false;
}

}  // namespace lgg::combi

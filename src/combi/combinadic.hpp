// Combinadics: the bijection between lexicographic indices and
// k-combinations (paper Section VIII-D; Buckles & Lybanon, ACM TOMS
// Algorithm 515; Mifsud, CACM Algorithm 154).
//
// This is what lets every simulated GPU thread compute *its own* first
// combination directly from its flat work index, with no shared state and
// no precomputed combination table — the paper's "equal work division
// among all available threads".
//
// Convention: combinations are over [0, n), emitted as strictly increasing
// k-tuples, ordered lexicographically.  Index 0 is {0, 1, ..., k-1}.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lgg::combi {

/// Unrank: the `index`-th (0-based) k-combination of [0, n) in
/// lexicographic order.  Throws lgg::Error if index >= C(n, k).
std::vector<std::uint32_t> combination_from_index(std::uint64_t index,
                                                  std::uint32_t n,
                                                  std::uint32_t k);

/// In-place unrank into a caller-provided buffer of size k (no allocation;
/// this is the form the simulated kernels use).
void combination_from_index(std::uint64_t index, std::uint32_t n,
                            std::uint32_t k, std::span<std::uint32_t> out);

/// Rank: lexicographic index of a strictly increasing combination over
/// [0, n).  Inverse of combination_from_index.
std::uint64_t index_from_combination(std::span<const std::uint32_t> combo,
                                     std::uint32_t n);

/// Advance `combo` (strictly increasing over [0, n)) to its lexicographic
/// successor (Mifsud's Algorithm 154).  Returns false when `combo` was the
/// last combination (it is left unchanged).  This is the paper's
/// Section VIII-B "generate on the fly, one by one" strategy.
bool next_combination(std::span<std::uint32_t> combo, std::uint32_t n);

}  // namespace lgg::combi

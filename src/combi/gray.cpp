#include "combi/gray.hpp"

#include <algorithm>

#include "combi/binomial.hpp"
#include "util/error.hpp"

namespace lgg::combi {

namespace {

/// Emit the k-subsets of [0, m) in Gray order (forward or reversed),
/// appending `suffix` (elements >= m) to every emitted combination.
/// Recursion: G(m, k) = G(m-1, k) ++ [S + {m-1} : S in rev(G(m-1, k-1))].
void gen(std::uint32_t m, std::uint32_t k, bool forward,
         std::vector<std::uint32_t>& suffix,
         std::vector<std::uint32_t>& scratch,
         const std::function<void(std::span<const std::uint32_t>)>& fn) {
  if (k > m) return;
  if (k == 0) {
    scratch.assign(suffix.rbegin(), suffix.rend());
    fn(scratch);
    return;
  }
  if (k == m) {
    scratch.clear();
    for (std::uint32_t i = 0; i < m; ++i) scratch.push_back(i);
    scratch.insert(scratch.end(), suffix.rbegin(), suffix.rend());
    fn(scratch);
    return;
  }
  if (forward) {
    gen(m - 1, k, true, suffix, scratch, fn);
    suffix.push_back(m - 1);
    gen(m - 1, k - 1, false, suffix, scratch, fn);
    suffix.pop_back();
  } else {
    suffix.push_back(m - 1);
    gen(m - 1, k - 1, true, suffix, scratch, fn);
    suffix.pop_back();
    gen(m - 1, k, false, suffix, scratch, fn);
  }
}

}  // namespace

void for_each_gray_combination(
    std::uint32_t n, std::uint32_t k,
    const std::function<void(std::span<const std::uint32_t>)>& fn) {
  LGG_CHECK(static_cast<bool>(fn), "for_each_gray_combination: empty callback");
  LGG_CHECK(binomial(n, k) != kBinomialOverflow,
            "C(n,k) overflows 64 bits");
  if (k > n) return;
  std::vector<std::uint32_t> suffix;   // descending (pushed high-to-low)
  std::vector<std::uint32_t> scratch;  // assembled ascending combination
  gen(n, k, true, suffix, scratch, fn);
}

std::vector<std::vector<std::uint32_t>> gray_combinations(std::uint32_t n,
                                                          std::uint32_t k) {
  std::vector<std::vector<std::uint32_t>> out;
  const std::uint64_t total = binomial(n, k);
  LGG_CHECK(total != kBinomialOverflow && total <= (1u << 24),
            "gray_combinations: refusing to materialise " << total
                                                          << " combinations");
  out.reserve(static_cast<std::size_t>(total));
  for_each_gray_combination(n, k, [&](std::span<const std::uint32_t> combo) {
    out.emplace_back(combo.begin(), combo.end());
  });
  return out;
}

std::uint32_t combination_distance(std::span<const std::uint32_t> a,
                                   std::span<const std::uint32_t> b) {
  LGG_CHECK(a.size() == b.size(), "combination_distance: size mismatch");
  std::uint32_t only_in_a = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++only_in_a;
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  only_in_a += static_cast<std::uint32_t>(a.size() - i);
  return only_in_a;
}

}  // namespace lgg::combi

// Revolving-door (Gray-code) combination enumeration — "strategy E" for
// the Section VIII ablation.  Successive combinations differ by exactly
// one element swapped in and one out, so a shared-memory tester can update
// its candidate incrementally (two bit flips) instead of rebuilding it,
// the classic trick for subset testing on SIMD hardware.
//
// Construction (Nijenhuis–Wilf / Knuth 7.2.1.3): G(n, k) is G(n-1, k)
// followed by reverse(G(n-1, k-1)) with n-1 appended — each block and the
// seam differ by a single swap, by induction.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace lgg::combi {

/// All C(n, k) combinations in revolving-door Gray order, materialised.
/// Combination elements are emitted in increasing order.
std::vector<std::vector<std::uint32_t>> gray_combinations(std::uint32_t n,
                                                          std::uint32_t k);

/// Streaming variant: invokes `fn` once per combination, in Gray order,
/// without materialising the list (O(k) state per recursion level).
void for_each_gray_combination(
    std::uint32_t n, std::uint32_t k,
    const std::function<void(std::span<const std::uint32_t>)>& fn);

/// Number of elements that differ between two equally sized sorted
/// combinations (test helper; 1 for adjacent Gray combinations).
std::uint32_t combination_distance(std::span<const std::uint32_t> a,
                                   std::span<const std::uint32_t> b);

}  // namespace lgg::combi

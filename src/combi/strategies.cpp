#include "combi/strategies.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <span>

#include "combi/binomial.hpp"
#include "combi/combinadic.hpp"
#include "util/error.hpp"

namespace lgg::combi {

const char* strategy_name(Strategy s) noexcept {
  switch (s) {
    case Strategy::kPrecomputed:
      return "A:precomputed";
    case Strategy::kSequential:
      return "B:sequential";
    case Strategy::kSplitByStart:
      return "C:split-by-start";
    case Strategy::kEqualDivision:
      return "D:equal-division";
  }
  return "?";
}

double StrategyStats::imbalance() const noexcept {
  if (per_thread.empty() || total_combinations == 0) return 1.0;
  const std::uint64_t peak =
      *std::max_element(per_thread.begin(), per_thread.end());
  const double mean = static_cast<double>(total_combinations) /
                      static_cast<double>(per_thread.size());
  return mean > 0 ? static_cast<double>(peak) / mean : 1.0;
}

std::vector<WorkRange> divide_work(std::uint64_t total,
                                   std::uint32_t threads) {
  LGG_CHECK(threads > 0, "divide_work: threads must be positive");
  std::vector<WorkRange> ranges(threads);
  const std::uint64_t base = total / threads;
  const std::uint64_t extra = total % threads;
  std::uint64_t cursor = 0;
  for (std::uint32_t t = 0; t < threads; ++t) {
    ranges[t].begin = cursor;
    cursor += base + (t < extra ? 1 : 0);
    ranges[t].end = cursor;
  }
  LGG_ASSERT(cursor == total);
  return ranges;
}

namespace {

std::uint64_t id_bits(std::uint32_t n) {
  return n <= 1 ? 1 : static_cast<std::uint64_t>(std::bit_width(n - 1u));
}

void emit(const CombinationSink& sink, std::uint32_t thread,
          std::span<const std::uint32_t> combo) {
  if (sink) sink(thread, combo);
}

}  // namespace

StrategyStats enumerate_combinations(Strategy strategy, std::uint32_t n,
                                     std::uint32_t k, std::uint32_t threads,
                                     const CombinationSink& sink) {
  LGG_CHECK(threads > 0, "enumerate_combinations: threads must be positive");
  LGG_CHECK(k >= 1 && k <= n,
            "enumerate_combinations: need 1 <= k <= n, got k=" << k
                                                               << " n=" << n);
  const std::uint64_t total = binomial(n, k);
  LGG_CHECK(total != kBinomialOverflow, "C(n,k) overflows 64 bits");

  StrategyStats stats;
  stats.total_combinations = total;
  stats.per_thread.assign(threads, 0);

  std::vector<std::uint32_t> combo(k);

  switch (strategy) {
    case Strategy::kPrecomputed: {
      // Materialise the full table, then hand out equal contiguous slices —
      // the table is the cost, the division is trivial.
      stats.storage_bits = precomputed_storage_bits(n, k);
      LGG_CHECK(stats.storage_bits != kBinomialOverflow,
                "precomputed table overflows 64-bit size accounting");
      std::vector<std::uint32_t> table;
      table.reserve(static_cast<std::size_t>(total) * k);
      std::iota(combo.begin(), combo.end(), 0u);
      do {
        table.insert(table.end(), combo.begin(), combo.end());
      } while (next_combination(combo, n));

      const auto ranges = divide_work(total, threads);
      for (std::uint32_t t = 0; t < threads; ++t) {
        for (std::uint64_t i = ranges[t].begin; i < ranges[t].end; ++i) {
          emit(sink, t,
               std::span<const std::uint32_t>(
                   table.data() + static_cast<std::size_t>(i) * k, k));
          ++stats.per_thread[t];
        }
      }
      break;
    }

    case Strategy::kSequential: {
      // One logical worker walks the whole chain; storage is the previous
      // combination plus the next (2 k log n bits).
      stats.storage_bits = 2 * k * id_bits(n);
      std::iota(combo.begin(), combo.end(), 0u);
      do {
        emit(sink, 0, combo);
        ++stats.per_thread[0];
      } while (next_combination(combo, n));
      break;
    }

    case Strategy::kSplitByStart: {
      // Thread t enumerates combinations whose first element ≡ t (mod
      // threads) — the paper's "split by starting node" with n - k + 1
      // start values folded onto the available threads.
      stats.storage_bits =
          static_cast<std::uint64_t>(threads) * k * id_bits(n);
      for (std::uint32_t start = 0; start + k <= n; ++start) {
        const std::uint32_t t = start % threads;
        combo[0] = start;
        std::iota(combo.begin() + 1, combo.end(), start + 1);
        for (;;) {
          emit(sink, t, combo);
          ++stats.per_thread[t];
          if (k == 1) break;
          // Successor within the fixed-first-element block: advance the
          // suffix only.  All suffix combinations lexicographically >= the
          // initial (start+1, ..., start+k-1) have every element > start,
          // so the plain successor enumerates exactly this block.
          std::span<std::uint32_t> suffix(combo.data() + 1, k - 1);
          if (!next_combination(suffix, n)) break;
        }
      }
      break;
    }

    case Strategy::kEqualDivision: {
      // Combinadic unranking of each thread's range start, then successor
      // chaining — exactly what the simulated kernels do.
      stats.storage_bits =
          static_cast<std::uint64_t>(threads) * k * id_bits(n);
      const auto ranges = divide_work(total, threads);
      for (std::uint32_t t = 0; t < threads; ++t) {
        if (ranges[t].size() == 0) continue;
        combination_from_index(ranges[t].begin, n, k, combo);
        for (std::uint64_t i = ranges[t].begin; i < ranges[t].end; ++i) {
          emit(sink, t, combo);
          ++stats.per_thread[t];
          if (i + 1 < ranges[t].end) {
            const bool ok = next_combination(combo, n);
            LGG_ASSERT(ok);
          }
        }
      }
      break;
    }
  }
  return stats;
}

}  // namespace lgg::combi

// The four combination-generation strategies of paper Section VIII, kept
// side-by-side for the ablation benchmark:
//
//   A  Precomputed table         (VIII-A): materialise every combination up
//      front; costs nCk * k * log n bits of storage.
//   B  Sequential on-the-fly     (VIII-B): lexicographic successor chain;
//      2 * k * log n bits of state but inherently serial.
//   C  Split by starting vertex  (VIII-C): thread i enumerates combinations
//      whose first element is i; parallel but badly imbalanced (early
//      threads own far more combinations).
//   D  Combinadic equal division (VIII-D): flat index space divided evenly;
//      each thread unranks its own start.  The paper's (and our) default.
//
// Each strategy enumerates all C(n, k) combinations partitioned across
// `threads` workers and reports per-thread work counts, so tests can prove
// all four cover the same set and the ablation can measure imbalance.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace lgg::combi {

enum class Strategy : int {
  kPrecomputed = 0,    // VIII-A
  kSequential = 1,     // VIII-B
  kSplitByStart = 2,   // VIII-C
  kEqualDivision = 3,  // VIII-D
};

[[nodiscard]] const char* strategy_name(Strategy s) noexcept;

/// Callback receives (thread_id, combination of size k).
using CombinationSink =
    std::function<void(std::uint32_t, std::span<const std::uint32_t>)>;

struct StrategyStats {
  std::uint64_t total_combinations = 0;
  std::vector<std::uint64_t> per_thread;  // work handled by each thread
  /// Peak auxiliary storage in bits (the paper's space accounting):
  /// A: nCk*k*logn, B: 2*k*logn, C/D: threads * k * logn.
  std::uint64_t storage_bits = 0;

  /// max(per_thread) / mean(per_thread); 1.0 == perfectly balanced.
  [[nodiscard]] double imbalance() const noexcept;
};

/// Enumerate all k-combinations of [0, n) using `strategy`, partitioned
/// across `threads` logical workers.  `sink` may be empty when only the
/// statistics are wanted.  Throws lgg::Error if strategy A's table or the
/// total count would overflow.
StrategyStats enumerate_combinations(Strategy strategy, std::uint32_t n,
                                     std::uint32_t k, std::uint32_t threads,
                                     const CombinationSink& sink = {});

/// Equal split of [0, total) into `threads` contiguous ranges; range i is
/// [begin(i), begin(i+1)).  The first (total % threads) ranges get one
/// extra item — the paper's "some threads might have to do a single test
/// more".
struct WorkRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  [[nodiscard]] std::uint64_t size() const noexcept { return end - begin; }
};
std::vector<WorkRange> divide_work(std::uint64_t total, std::uint32_t threads);

}  // namespace lgg::combi

#include "combi/stratified.hpp"

#include <algorithm>

#include "combi/binomial.hpp"
#include "combi/combinadic.hpp"
#include "util/error.hpp"

namespace lgg::combi {

std::uint64_t count_with_first_set(std::uint32_t a, std::uint32_t b,
                                   std::uint32_t k) {
  const std::uint64_t all = binomial(a + b, k);
  const std::uint64_t without_a = binomial(b, k);
  LGG_CHECK(all != kBinomialOverflow,
            "combination count overflows: C(" << a + b << "," << k << ")");
  return all - without_a;
}

StratifiedChooser::StratifiedChooser(std::uint32_t a, std::uint32_t b,
                                     std::uint32_t k)
    : a_(a), b_(b), k_(k) {
  LGG_CHECK(k >= 1, "StratifiedChooser: k must be >= 1");
  t_min_ = k > b ? k - b : 1;
  t_max_ = std::min(k, a);
  // Record the cumulative start of each stratum t in [t_min_, t_max_].
  if (t_min_ <= t_max_) {
    strata_.reserve(t_max_ - t_min_ + 2);
    std::uint64_t cumulative = 0;
    for (std::uint32_t t = t_min_; t <= t_max_; ++t) {
      strata_.push_back(cumulative);
      const std::uint64_t in_a = binomial(a_, t);
      const std::uint64_t in_b = binomial(b_, k_ - t);
      LGG_CHECK(in_a != kBinomialOverflow && in_b != kBinomialOverflow,
                "stratum size overflows 64 bits");
      __extension__ typedef unsigned __int128 U128;  // silences -Wpedantic
      const U128 size = static_cast<U128>(in_a) * in_b;
      const U128 next = cumulative + size;
      LGG_CHECK(next < kBinomialOverflow,
                "total combination count overflows 64 bits");
      cumulative = static_cast<std::uint64_t>(next);
    }
    strata_.push_back(cumulative);
    total_ = cumulative;
  }
}

StratifiedChooser::Parts StratifiedChooser::unrank(
    std::uint64_t index, std::span<std::uint32_t> from_a,
    std::span<std::uint32_t> from_b) const {
  LGG_CHECK(index < total_, "unrank index " << index << " >= count "
                                            << total_);
  // Locate the stratum by binary search over cumulative starts.
  const auto it =
      std::upper_bound(strata_.begin(), strata_.end(), index) - 1;
  const auto stratum = static_cast<std::uint32_t>(it - strata_.begin());
  const std::uint32_t t = t_min_ + stratum;
  std::uint64_t local = index - *it;

  // Within the stratum, ordering is A-part-major: local = a_index * n_b +
  // b_index where n_b = C(b, k-t).
  const std::uint64_t n_b = binomial(b_, k_ - t);
  const std::uint64_t a_index = local / n_b;
  const std::uint64_t b_index = local % n_b;

  combination_from_index(a_index, a_, t, from_a.subspan(0, t));
  combination_from_index(b_index, b_, k_ - t, from_b.subspan(0, k_ - t));
  return {t, k_ - t};
}

void StratifiedChooser::unrank_vertices(std::uint64_t index,
                                        std::span<const std::uint32_t> set_a,
                                        std::span<const std::uint32_t> set_b,
                                        std::span<std::uint32_t> out) const {
  LGG_CHECK(set_a.size() == a_ && set_b.size() == b_,
            "unrank_vertices: set sizes (" << set_a.size() << ","
                                           << set_b.size()
                                           << ") do not match chooser ("
                                           << a_ << "," << b_ << ")");
  LGG_CHECK(out.size() == k_, "unrank_vertices: out size != k");
  std::uint32_t ia[16], ib[16];
  LGG_CHECK(k_ <= 16, "unrank_vertices supports k <= 16");
  const Parts parts = unrank(index, std::span<std::uint32_t>(ia, k_),
                             std::span<std::uint32_t>(ib, k_));
  for (std::uint32_t i = 0; i < parts.a_count; ++i) out[i] = set_a[ia[i]];
  for (std::uint32_t i = 0; i < parts.b_count; ++i)
    out[parts.a_count + i] = set_b[ib[i]];
}

std::uint64_t StratifiedChooser::rank(
    std::span<const std::uint32_t> from_a,
    std::span<const std::uint32_t> from_b) const {
  const auto t = static_cast<std::uint32_t>(from_a.size());
  LGG_CHECK(t >= t_min_ && t <= t_max_,
            "rank: stratum t=" << t << " outside [" << t_min_ << "," << t_max_
                               << "]");
  LGG_CHECK(from_a.size() + from_b.size() == k_,
            "rank: parts do not sum to k");
  const std::uint64_t a_index = index_from_combination(from_a, a_);
  const std::uint64_t b_index = index_from_combination(from_b, b_);
  const std::uint64_t n_b = binomial(b_, k_ - t);
  return strata_[t - t_min_] + a_index * n_b + b_index;
}

}  // namespace lgg::combi

// Constrained combination generation over two vertex sets (paper
// Sections VII–VIII): choose k nodes from A ∪ B with AT LEAST ONE from A.
//
// In Algorithm 2, A is the first level of an adjacent level set and B the
// second; the ≥1-from-A constraint is exactly what "eliminates duplicate
// checking for any combination of nodes" across overlapping level sets.
//
// The family is stratified by t = |combination ∩ A| ∈ [max(1, k-|B|),
// min(k, |A|)]; stratum t holds C(|A|, t) * C(|B|, k-t) combinations,
// ordered (t ascending, then A-part index-major over B-part).  This gives
// O(k · (|A|+|B|)) unranking, which is what lets every simulated thread
// jump straight to its slice of the work.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lgg::combi {

class StratifiedChooser {
 public:
  /// a = |A|, b = |B|, k = combination size.  Throws lgg::Error if the
  /// total count overflows 64 bits.
  StratifiedChooser(std::uint32_t a, std::uint32_t b, std::uint32_t k);

  /// Total number of k-combinations of A ∪ B with >= 1 element of A.
  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }

  [[nodiscard]] std::uint32_t a() const noexcept { return a_; }
  [[nodiscard]] std::uint32_t b() const noexcept { return b_; }
  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }

  /// Unrank combination `index` into local indices: `from_a` receives
  /// t strictly-increasing indices into A, `from_b` the k-t indices into B.
  /// Buffers must have capacity k; sizes are returned.
  struct Parts {
    std::uint32_t a_count = 0;  // t
    std::uint32_t b_count = 0;  // k - t
  };
  Parts unrank(std::uint64_t index, std::span<std::uint32_t> from_a,
               std::span<std::uint32_t> from_b) const;

  /// Convenience: unrank directly to vertex ids given the two level
  /// vectors (out must have size k; A-part first, then B-part).
  void unrank_vertices(std::uint64_t index,
                       std::span<const std::uint32_t> set_a,
                       std::span<const std::uint32_t> set_b,
                       std::span<std::uint32_t> out) const;

  /// Inverse of unrank (used by property tests).
  [[nodiscard]] std::uint64_t rank(std::span<const std::uint32_t> from_a,
                                   std::span<const std::uint32_t> from_b) const;

 private:
  std::uint32_t a_;
  std::uint32_t b_;
  std::uint32_t k_;
  std::uint32_t t_min_;
  std::uint32_t t_max_;               // strata t_min_..t_max_ (may be empty)
  std::vector<std::uint64_t> strata_; // cumulative start index per stratum
  std::uint64_t total_ = 0;
};

/// Closed-form count used by tests and the work scheduler:
/// sum_t C(a,t) C(b,k-t) for t >= 1 — equivalently C(a+b,k) - C(b,k).
std::uint64_t count_with_first_set(std::uint32_t a, std::uint32_t b,
                                   std::uint32_t k);

}  // namespace lgg::combi

#include "core/als_plan.hpp"

#include <algorithm>
#include <cmath>

#include "combi/binomial.hpp"
#include "util/error.hpp"

namespace lgg::core {

using combi::binomial;

std::uint64_t als_tests_for_x(std::uint32_t s, std::uint32_t x) noexcept {
  return binomial(s - 1 - x, 2);
}

std::uint64_t als_total_tests(std::uint32_t s, std::uint32_t x_max) noexcept {
  // Hockey stick: sum_{x=0}^{x_max-1} C(s-1-x, 2) = C(s,3) - C(s-x_max,3).
  return binomial(s, 3) - binomial(s - x_max, 3);
}

AlsPlan build_als_plan(const graph::Graph& g) {
  AlsPlan plan;
  const graph::Components comps = graph::connected_components(g);
  plan.num_components = comps.count;

  for (std::uint32_t c = 0; c < comps.count; ++c) {
    const std::vector<graph::Vertex> members = comps.vertices_of(c);
    const graph::BfsTree tree = graph::bfs(g, members.front());
    // BFS touches each component edge twice plus each vertex once.
    for (const graph::Vertex v : members)
      plan.bfs_edges_visited += g.degree(v);
    const graph::LevelDecomposition levels(tree);
    for (const graph::AdjacentLevelSet& als :
         graph::adjacent_level_sets(levels)) {
      AlsJob job;
      job.component = c;
      job.first_level = als.first_level_index;
      job.local_to_global.reserve(als.size());
      job.local_to_global.insert(job.local_to_global.end(), als.first.begin(),
                                 als.first.end());
      job.local_to_global.insert(job.local_to_global.end(),
                                 als.second.begin(), als.second.end());
      job.a = static_cast<std::uint32_t>(als.first.size());
      job.s = static_cast<std::uint32_t>(als.size());
      if (job.s >= 3) {
        job.x_max = als.is_last ? job.s - 2
                                : std::min(job.a, job.s - 2);
        job.tests = als_total_tests(job.s, job.x_max);
      }
      job.test_offset = plan.total_tests;
      LGG_CHECK(job.tests != combi::kBinomialOverflow &&
                    plan.total_tests <= ~std::uint64_t{0} - job.tests,
                "ALS test count overflows 64 bits");
      plan.total_tests += job.tests;
      plan.jobs.push_back(std::move(job));
    }
  }
  return plan;
}

namespace {

/// Unrank a 2-combination of [0, m) from its lexicographic index:
/// pairs with first element f occupy a block of (m - 1 - f) indices.
/// Closed-form via the quadratic formula, with integer fix-up.
void unrank_pair(std::uint64_t index, std::uint32_t m, std::uint32_t& first,
                 std::uint32_t& second) {
  // cumulative(f) = sum_{t<f} (m-1-t) = f*m - f(f+1)/2; find the largest f
  // with cumulative(f) <= index.
  const double mf = static_cast<double>(m);
  const double disc = (2.0 * mf - 1.0) * (2.0 * mf - 1.0) -
                      8.0 * static_cast<double>(index);
  auto f = static_cast<std::int64_t>(
      (2.0 * mf - 1.0 - std::sqrt(std::max(disc, 0.0))) / 2.0);
  f = std::max<std::int64_t>(f - 2, 0);
  auto cumulative = [m](std::uint64_t t) {
    return t * m - t * (t + 1) / 2;
  };
  while (f + 1 < m && cumulative(static_cast<std::uint64_t>(f + 1)) <= index)
    ++f;
  first = static_cast<std::uint32_t>(f);
  second = static_cast<std::uint32_t>(
      f + 1 +
      (index - cumulative(static_cast<std::uint64_t>(f))));
}

}  // namespace

TestTriple als_decode_test(const AlsJob& job, std::uint64_t local_index) {
  LGG_CHECK(local_index < job.tests,
            "als_decode_test: index " << local_index << " >= " << job.tests);
  // cumulative(x) = C(s,3) - C(s-x,3); binary search the largest x with
  // cumulative(x) <= local_index.
  const std::uint64_t c_s3 = binomial(job.s, 3);
  std::uint32_t lo = 0, hi = job.x_max;  // invariant: cum(lo) <= idx < cum(hi)
  while (hi - lo > 1) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const std::uint64_t cum = c_s3 - binomial(job.s - mid, 3);
    if (cum <= local_index)
      lo = mid;
    else
      hi = mid;
  }
  TestTriple t;
  t.x = lo;
  const std::uint64_t before = c_s3 - binomial(job.s - lo, 3);
  const std::uint64_t pair_index = local_index - before;

  // (y, z) is the pair_index-th 2-combination of (x, s) — shift by x+1.
  std::uint32_t first = 0, second = 0;
  unrank_pair(pair_index, job.s - 1 - t.x, first, second);
  t.y = t.x + 1 + first;
  t.z = t.x + 1 + second;
  return t;
}

std::uint64_t als_test_index(const AlsJob& job, const TestTriple& t) {
  LGG_CHECK(t.x < t.y && t.y < t.z && t.z < job.s && t.x < job.x_max,
            "als_test_index: invalid triple (" << t.x << "," << t.y << ","
                                               << t.z << ") for s=" << job.s
                                               << " x_max=" << job.x_max);
  const std::uint64_t before = binomial(job.s, 3) - binomial(job.s - t.x, 3);
  const std::uint32_t m = job.s - 1 - t.x;  // pair domain size
  const std::uint64_t f = t.y - t.x - 1;
  const std::uint64_t pair_index =
      f * m - f * (f + 1) / 2 + (t.z - t.y - 1);
  return before + pair_index;
}

bool als_advance_test(const AlsJob& job, TestTriple& t) noexcept {
  if (t.z + 1 < job.s) {
    ++t.z;
    return true;
  }
  if (t.y + 2 < job.s) {
    ++t.y;
    t.z = t.y + 1;
    return true;
  }
  if (t.x + 1 < job.x_max && t.x + 3 < job.s + 0u) {
    ++t.x;
    t.y = t.x + 1;
    t.z = t.x + 2;
    return true;
  }
  return false;
}

}  // namespace lgg::core

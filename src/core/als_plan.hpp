// The adjacent-level-set (ALS) work plan shared by the CPU and GPU
// triangle counters (paper Algorithm 2 + Section VIII).
//
// Test-space construction.  For one ALS with first level A (|A| = a) and
// second level B (|B| = b), put the vertices in local order A then B,
// s = a + b.  A combination {x < y < z} of local ids contains >= 1 vertex
// of A exactly when x < a, so Algorithm 2's three GenNxtComb families
// (firstLvl / bothLvls / secondLvl-on-last) collapse into one clean space:
//
//     tests = { (x, y, z) : 0 <= x < x_max, x < y < z < s }
//     x_max = s - 2              for the component's last ALS
//           = min(a, s - 2)      otherwise
//
// Every triangle of G is counted exactly once: a triangle's lowest BFS
// level i puts it in ALS_i with its minimum local id inside A, except
// triangles entirely inside the last level, which the widened x_max of the
// final ALS picks up.  Index <-> (x, y, z) conversion is closed-form
// (hockey-stick identity), which is what lets simulated GPU threads jump
// straight to their work range — the Section VIII-D strategy.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace lgg::core {

/// One ALS turned into a flat triangle-test space.
struct AlsJob {
  std::uint32_t component = 0;
  std::uint32_t first_level = 0;
  std::vector<graph::Vertex> local_to_global;  // A's vertices, then B's
  std::uint32_t a = 0;      // |A|
  std::uint32_t s = 0;      // |A| + |B|
  std::uint32_t x_max = 0;  // first-element bound (see header comment)
  std::uint64_t tests = 0;  // total tests in this job
  std::uint64_t test_offset = 0;  // prefix sum over the whole plan
};

/// The full plan: every ALS of every connected component.
struct AlsPlan {
  std::vector<AlsJob> jobs;
  std::uint64_t total_tests = 0;
  std::size_t num_components = 0;
  std::uint64_t bfs_edges_visited = 0;  // preprocessing cost (Algorithm 1)
};

/// Build the plan: BFS each component from its smallest vertex, form the
/// ALS sequence, compute test counts and offsets.  Jobs with fewer than
/// three vertices are kept (tests == 0) so job indices match ALS indices.
AlsPlan build_als_plan(const graph::Graph& g);

/// Number of tests with first local id x: C(s-1-x, 2).
std::uint64_t als_tests_for_x(std::uint32_t s, std::uint32_t x) noexcept;

/// Total tests for bounds (s, x_max): C(s,3) - C(s-x_max,3).
std::uint64_t als_total_tests(std::uint32_t s, std::uint32_t x_max) noexcept;

/// Decode a flat local test index into (x, y, z), 0-based local ids,
/// x < y < z < s, using binary search on x plus a closed-form pair unrank.
/// O(log s).  Inverse of als_test_index.
struct TestTriple {
  std::uint32_t x = 0, y = 0, z = 0;
};
TestTriple als_decode_test(const AlsJob& job, std::uint64_t local_index);

/// Encode (x, y, z) back to the flat local index (property-test inverse).
std::uint64_t als_test_index(const AlsJob& job, const TestTriple& t);

/// Advance a decoded triple to the next test in index order without a full
/// decode (z, then y, then x).  Returns false past the last test.
bool als_advance_test(const AlsJob& job, TestTriple& t) noexcept;

}  // namespace lgg::core

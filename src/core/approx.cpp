#include "core/approx.hpp"

#include <algorithm>
#include <limits>

#include "core/triangle_cpu.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace lgg::core {

using graph::Graph;
using graph::Vertex;

DoulionResult doulion_estimate(const Graph& g, double p, std::uint64_t seed) {
  LGG_CHECK(p > 0.0 && p <= 1.0, "doulion: p=" << p << " not in (0,1]");
  Xoshiro256 rng(seed);

  std::vector<graph::Edge> kept;
  kept.reserve(static_cast<std::size_t>(
      p * static_cast<double>(g.num_edges()) * 1.1));
  for (const auto& e : g.edges())
    if (rng.bernoulli(p)) kept.push_back(e);

  const Graph sparse = Graph::from_edges(g.num_vertices(), kept);
  DoulionResult result;
  result.p = p;
  result.kept_edges = kept.size();
  result.sparsified_count = count_triangles_forward(sparse);
  result.estimate =
      static_cast<double>(result.sparsified_count) / (p * p * p);
  return result;
}

WedgeSampleResult wedge_sampling_estimate(const Graph& g,
                                          std::uint64_t samples,
                                          std::uint64_t seed) {
  LGG_CHECK(samples > 0, "wedge_sampling: need at least one sample");
  Xoshiro256 rng(seed);

  // Wedge count per centre v: C(deg(v), 2); cumulative table for sampling
  // centres proportionally.
  std::vector<std::uint64_t> cumulative(g.num_vertices() + 1, 0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t d = g.degree(v);
    cumulative[v + 1] = cumulative[v] + d * (d - 1) / 2;
  }
  WedgeSampleResult result;
  result.samples = samples;
  result.total_wedges = cumulative.back();
  if (result.total_wedges == 0) return result;

  std::uint64_t closed = 0;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const std::uint64_t target = rng.uniform(result.total_wedges);
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), target);
    const auto v = static_cast<Vertex>(it - cumulative.begin() - 1);
    const auto nbrs = g.neighbors(v);
    // Uniform unordered pair of distinct neighbours.
    const std::uint64_t d = nbrs.size();
    std::uint64_t i = rng.uniform(d);
    std::uint64_t j = rng.uniform(d - 1);
    if (j >= i) ++j;
    if (g.has_edge(nbrs[i], nbrs[j])) ++closed;
  }
  result.closed_fraction =
      static_cast<double>(closed) / static_cast<double>(samples);
  result.estimate = result.closed_fraction *
                    static_cast<double>(result.total_wedges) / 3.0;
  return result;
}

std::vector<double> local_triangles_minhash(const Graph& g,
                                            std::uint32_t hashes,
                                            std::uint64_t seed) {
  LGG_CHECK(hashes >= 1, "local_triangles_minhash: need >= 1 hash");
  const std::size_t n = g.num_vertices();

  // signatures[h][v] = min over u in N(v) of hash_h(u).
  // One pass over the edge set per hash function — the semi-streaming
  // access pattern of Becchetti et al.
  std::vector<std::vector<std::uint64_t>> signature(
      hashes, std::vector<std::uint64_t>(
                  n, std::numeric_limits<std::uint64_t>::max()));
  std::vector<std::uint64_t> hash_seed(hashes);
  {
    SplitMix64 sm(seed);
    for (auto& hs : hash_seed) hs = sm.next();
  }
  auto hash_vertex = [](std::uint64_t hs, Vertex v) {
    SplitMix64 sm(hs ^ (0x9E3779B97F4A7C15ull * (v + 1)));
    return sm.next();
  };
  for (std::uint32_t h = 0; h < hashes; ++h) {
    for (Vertex u = 0; u < n; ++u) {
      const std::uint64_t hu = hash_vertex(hash_seed[h], u);
      for (const Vertex v : g.neighbors(u))
        signature[h][v] = std::min(signature[h][v], hu);
    }
  }

  // For each edge (u, v): estimate the Jaccard similarity of N(u), N(v)
  // as the fraction of matching min-hashes, convert to an intersection
  // estimate, and credit both endpoints.  tri(v) = 1/2 sum_{u in N(v)}
  // |N(u) ∩ N(v)|.
  std::vector<double> shared_sum(n, 0.0);
  for (Vertex u = 0; u < n; ++u) {
    for (const Vertex v : g.neighbors(u)) {
      if (v <= u) continue;
      std::uint32_t match = 0;
      for (std::uint32_t h = 0; h < hashes; ++h)
        if (signature[h][u] == signature[h][v] &&
            signature[h][u] != std::numeric_limits<std::uint64_t>::max())
          ++match;
      const double jaccard =
          static_cast<double>(match) / static_cast<double>(hashes);
      const double union_upper =
          static_cast<double>(g.degree(u) + g.degree(v));
      // |A ∩ B| = J/(1+J) * (|A| + |B|).
      const double inter = jaccard / (1.0 + jaccard) * union_upper;
      shared_sum[u] += inter;
      shared_sum[v] += inter;
    }
  }
  std::vector<double> result(n);
  for (Vertex v = 0; v < n; ++v) result[v] = shared_sum[v] / 2.0;
  return result;
}

}  // namespace lgg::core

// Approximate triangle counting — the techniques the paper builds on and
// cites for context, implemented as extensions:
//
//  * DOULION (Tsourakakis et al., KDD'09 — paper reference [16]):
//    keep each edge with probability p, count triangles exactly in the
//    sparsified graph, return count / p^3.  Unbiased; variance shrinks
//    as p^3 * triangle count grows.
//
//  * Wedge sampling: sample wedges (paths of length 2) uniformly, measure
//    the closed fraction, scale by the wedge count / 3.
//
//  * Semi-streaming local triangle counts (Becchetti et al., KDD'08 —
//    paper reference [1]): approximate per-vertex triangle counts from
//    min-wise-hash signatures of neighbourhoods, touching each edge a
//    constant number of times per hash function.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace lgg::core {

struct DoulionResult {
  double estimate = 0.0;            // unbiased estimate of the count
  std::uint64_t sparsified_count = 0;  // triangles in the sampled graph
  std::uint64_t kept_edges = 0;
  double p = 1.0;
};

/// DOULION: sparsify with keep-probability p (0 < p <= 1), then count
/// exactly (forward algorithm) and rescale by 1/p^3.
DoulionResult doulion_estimate(const graph::Graph& g, double p,
                               std::uint64_t seed);

struct WedgeSampleResult {
  double estimate = 0.0;      // estimated triangle count
  double closed_fraction = 0.0;
  std::uint64_t total_wedges = 0;
  std::uint64_t samples = 0;
};

/// Uniform wedge sampling: triangles ≈ (closed wedges) / 3 =
/// wedge_count * closed_fraction / 3.
WedgeSampleResult wedge_sampling_estimate(const graph::Graph& g,
                                          std::uint64_t samples,
                                          std::uint64_t seed);

/// Becchetti-style min-wise estimation of per-vertex triangle counts.
/// `hashes` min-hash functions per neighbourhood; error shrinks like
/// 1/sqrt(hashes).  Exact for hashes == 0 is NOT provided — use
/// triangles_per_vertex for ground truth.
std::vector<double> local_triangles_minhash(const graph::Graph& g,
                                            std::uint32_t hashes,
                                            std::uint64_t seed);

}  // namespace lgg::core

#include "core/bfs_gpu.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "gpusim/calibration.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/memory.hpp"
#include "util/error.hpp"

namespace lgg::core {

namespace cal = gpusim::calibration;
using graph::Graph;
using graph::Vertex;

GpuBfsResult bfs_gpu(const Graph& g, Vertex source,
                     const GpuBfsOptions& opts) {
  LGG_CHECK(source < g.num_vertices(), "bfs_gpu: source out of range");
  const gpusim::DeviceSpec& dev =
      opts.device ? *opts.device : gpusim::tesla_c1060();
  const std::uint32_t tpb = opts.threads_per_block;
  LGG_CHECK(tpb >= dev.warp_size && tpb % dev.warp_size == 0,
            "threads_per_block must be a positive multiple of the warp size");

  const std::uint64_t n = g.num_vertices();
  gpusim::DeviceMemory mem(dev, opts.faults);
  const gpusim::Buffer levels_buf = mem.alloc(std::max<std::uint64_t>(n, 1) * 4);
  const gpusim::Buffer offsets_buf =
      mem.alloc(std::max<std::uint64_t>((n + 1) * 8, 8));
  const gpusim::Buffer adj_buf = mem.alloc(
      std::max<std::uint64_t>(g.raw_adjacency().size() * 4, 4));
  const gpusim::Simulator sim(dev, opts.faults);

  GpuBfsResult result;
  result.tree.source = source;
  result.tree.parent.assign(n, graph::kUnreached);
  result.tree.level.assign(n, graph::kUnreached);
  result.tree.parent[source] = source;
  result.tree.level[source] = 0;

  obs::Scope driver(opts.obs, "gpu/bfs", "driver");
  if (driver) {
    driver.arg("vertices", n);
    driver.arg("source", static_cast<std::uint64_t>(source));
  }

  gpusim::TransferReport transfer;
  {
    obs::Scope span(opts.obs, "transfer/h2d", "transfer");
    transfer = sim.transfer(levels_buf.bytes + offsets_buf.bytes +
                            adj_buf.bytes);
    span.model_s(transfer.time_s);
    if (span) span.arg("bytes", transfer.bytes);
  }
  obs::record_transfer(opts.obs, transfer);

  const auto blocks = static_cast<std::uint32_t>((n + tpb - 1) / tpb);
  auto& tree = result.tree;

  // Sancheck wiring: levels, offsets and adjacency are all staged before
  // the first launch; one analyzer serves every level launch.
  std::optional<sancheck::TapeAnalyzer> analyzer;
  if (opts.sancheck != sancheck::SancheckMode::kOff) {
    sancheck::SancheckConfig sc;
    sc.mode = opts.sancheck;
    sc.staged = {levels_buf, offsets_buf, adj_buf};
    analyzer.emplace(std::move(sc), mem);
  }

  bool advanced = true;
  std::uint32_t current = 0;
  while (advanced) {
    advanced = false;
    // Thread-safe under the simulator's parallel replay: the kernel only
    // reads `tree` (frozen for the duration of the launch — the level
    // update below runs strictly after sim.run returns) and records
    // through its per-thread recorder.
    const gpusim::KernelFn kernel = [&](const gpusim::ThreadCtx& ctx,
                                        gpusim::ThreadRecorder& rec) {
      const std::uint64_t v = ctx.global_id;
      if (v >= n) return;
      // Coalesced frontier-flag read (thread v -> word v).
      rec.global_read(levels_buf, v * 4, 4);
      rec.compute(2);
      if (tree.level[v] != current) return;

      // Frontier vertex: fetch its CSR slice, then walk neighbours —
      // serial, scattered reads (the HN'07 pattern).
      rec.global_read(offsets_buf, v * 8, 8);
      const auto nbrs = g.neighbors(static_cast<Vertex>(v));
      const std::uint64_t begin = g.raw_offsets()[v];
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        rec.global_read(adj_buf, (begin + i) * 4, 4);
        rec.global_read(levels_buf, static_cast<std::uint64_t>(nbrs[i]) * 4,
                        4);
        rec.compute(3);
        if (tree.level[nbrs[i]] == graph::kUnreached) {
          // Functional update applied after the pass below; traffic is
          // charged here.  Recorded as an atomic (atomicMin in HN'07-style
          // codes): several frontier threads may discover one vertex in
          // the same level, and that race is benign by construction.
          rec.global_atomic(levels_buf,
                            static_cast<std::uint64_t>(nbrs[i]) * 4, 4);
        }
      }
    };

    gpusim::KernelConfig config;
    config.name = "bfs/level" + std::to_string(current);
    config.blocks = std::max<std::uint32_t>(blocks, 1);
    config.threads_per_block = tpb;
    obs::Scope span(opts.obs, config.name, "launch");
    const gpusim::KernelReport report =
        sim.run(kernel, config, 1, opts.exec,
                analyzer ? &*analyzer : nullptr);
    span.model_s(report.kernel_time_s);
    if (span) span.arg("transactions", report.transactions);
    span.close();
    obs::record_kernel(opts.obs, report);
    result.kernel_time_s += report.kernel_time_s;
    result.transactions += report.transactions;
    result.bytes += report.bytes;
    result.hazards.merge(report.hazards);
    ++result.iterations;

    // Apply the level-synchronous update on the host side (the kernel
    // recorded the corresponding write traffic above).
    for (Vertex v = 0; v < n; ++v) {
      if (tree.level[v] != current) continue;
      for (const Vertex w : g.neighbors(v)) {
        if (tree.level[w] == graph::kUnreached) {
          tree.level[w] = current + 1;
          tree.parent[w] = v;
          advanced = true;
        }
      }
    }
    if (advanced) tree.depth = ++current;
  }

  driver.model_s(cal::kDispatchOverheadS + cal::kDeviceInitOverheadS);
  result.total_time_s = transfer.time_s + cal::kDispatchOverheadS +
                        cal::kDeviceInitOverheadS + result.kernel_time_s;
  return result;
}

sancheck::FootprintSpec bfs_footprint_spec(const Graph& g,
                                           const GpuBfsOptions& opts) {
  const gpusim::DeviceSpec& dev =
      opts.device ? *opts.device : gpusim::tesla_c1060();
  const std::uint32_t tpb = opts.threads_per_block;
  LGG_CHECK(tpb >= dev.warp_size && tpb % dev.warp_size == 0,
            "threads_per_block must be a positive multiple of the warp size");

  const std::uint64_t n = g.num_vertices();
  gpusim::DeviceMemory mem(dev);  // scratch: only the addresses matter
  const gpusim::Buffer levels_buf =
      mem.alloc(std::max<std::uint64_t>(n, 1) * 4);
  const gpusim::Buffer offsets_buf =
      mem.alloc(std::max<std::uint64_t>((n + 1) * 8, 8));
  const gpusim::Buffer adj_buf =
      mem.alloc(std::max<std::uint64_t>(g.raw_adjacency().size() * 4, 4));

  sancheck::FootprintSpec spec;
  spec.name = "gpu/bfs";
  spec.total_tests = n;  // one item per vertex, every level
  spec.warp_size = dev.warp_size;
  spec.warp_interleaved = false;
  spec.division = sancheck::WorkDivision::kThreadPerItem;
  const auto launch_blocks =
      std::max<std::uint32_t>(static_cast<std::uint32_t>((n + tpb - 1) / tpb), 1);
  spec.workers = static_cast<std::uint64_t>(launch_blocks) * tpb;
  spec.blocks.push_back({levels_buf.base, levels_buf.bytes, 4});
  spec.blocks.push_back({offsets_buf.base, offsets_buf.bytes, 8});
  spec.blocks.push_back({adj_buf.base, adj_buf.bytes, 4});
  // Frontier flags are read per own-vertex and per-neighbour (and updated
  // via atomics at the same addresses); offsets per frontier vertex;
  // adjacency by CSR position.  All three are vertex/position-indexed.
  spec.accesses.push_back({n, 4, 4, 0, "level flags"});
  spec.accesses.push_back({n, 8, 8, 1, "csr offsets"});
  spec.accesses.push_back(
      {g.raw_adjacency().size(), 4, 4, 2, "csr neighbours"});
  return spec;
}

}  // namespace lgg::core

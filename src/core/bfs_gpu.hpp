// Level-synchronous BFS on the simulated GPU, after Harish & Narayanan
// (HiPC 2007) — the paper's reference [8] and the natural companion to
// Algorithm 1: one kernel launch per BFS level, one thread per vertex,
// CSR adjacency in global memory.
//
// The design's signature behaviour (and known weakness) is modelled
// faithfully: every thread reads its own frontier flag (perfectly
// coalesced), but frontier threads then walk their neighbour lists
// serially, producing scattered global reads whose cost the coalescing
// model charges per compute capability.
#pragma once

#include <cstdint>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/report.hpp"
#include "obs/obs.hpp"
#include "sancheck/footprint.hpp"
#include "sancheck/sancheck.hpp"

namespace lgg::core {

struct GpuBfsOptions {
  const gpusim::DeviceSpec* device = nullptr;  // nullptr -> C1060
  std::uint32_t threads_per_block = 256;
  /// Host-side simulator execution policy (parallel by default;
  /// bit-identical to serial).
  gpusim::ExecPolicy exec;
  /// Hazard analysis of every level launch (sancheck/sancheck.hpp).
  sancheck::SancheckMode sancheck = sancheck::SancheckMode::kOff;
  /// Optional fault hook (non-owning) installed on the driver's
  /// DeviceMemory and Simulator; fired faults surface as
  /// gpusim::DeviceFault (DESIGN.md §11).
  gpusim::FaultHook* faults = nullptr;
  /// Optional observability session: one launch span per BFS level plus
  /// aggregated gpusim counters (DESIGN.md §12).
  obs::Session* obs = nullptr;
};

struct GpuBfsResult {
  graph::BfsTree tree;            // functional result (matches host bfs)
  std::uint32_t iterations = 0;   // kernel launches (= depth + 1)
  double kernel_time_s = 0.0;     // sum over launches
  std::uint64_t transactions = 0;
  std::uint64_t bytes = 0;
  double total_time_s = 0.0;      // transfer + init + kernels
  /// Merged over all level launches (kReport mode; empty when off).
  /// Frontier updates are recorded as atomics — two threads discovering
  /// one vertex in the same level is the algorithm's benign race — so a
  /// clean run stays clean under kStrict too.
  gpusim::HazardReport hazards;
};

/// Run BFS from `source` on the simulated device.  The returned tree's
/// levels equal graph::bfs(g, source); parents may differ (any valid BFS
/// parent is acceptable, and the GPU visits in vertex-id order).
GpuBfsResult bfs_gpu(const graph::Graph& g, graph::Vertex source,
                     const GpuBfsOptions& opts = {});

/// Static footprint spec of one BFS level launch (every level touches the
/// same three arrays with the same bounds, so one spec covers the whole
/// run): level flags and offset words indexed by vertex id, neighbour
/// words by CSR position, one thread per vertex.
sancheck::FootprintSpec bfs_footprint_spec(const graph::Graph& g,
                                           const GpuBfsOptions& opts = {});

}  // namespace lgg::core

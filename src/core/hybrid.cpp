#include "core/hybrid.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "core/als_plan.hpp"
#include "graph/bfs.hpp"
#include "gpusim/calibration.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/memory.hpp"
#include "util/error.hpp"

namespace lgg::core {

namespace cal = gpusim::calibration;

const char* scheduler_name(SchedulerKind kind) noexcept {
  switch (kind) {
    case SchedulerKind::kList:
      return "list";
    case SchedulerKind::kLpt:
      return "LPT";
    case SchedulerKind::kMultifit:
      return "MULTIFIT";
  }
  return "?";
}

ChunkWork build_chunk_work(const graph::Chunk& chunk,
                           const graph::LevelDecomposition& levels) {
  ChunkWork work;
  const std::size_t depth = levels.num_levels();  // d + 1 levels
  LGG_ASSERT(depth > 0);

  auto push_als = [&](std::uint32_t first_level, bool is_last) {
    AlsJob job;
    job.component = chunk.component;
    job.first_level = first_level;
    const auto& first = levels.levels()[first_level];
    job.local_to_global.assign(first.begin(), first.end());
    if (first_level + 1 < depth) {
      const auto& second = levels.levels()[first_level + 1];
      job.local_to_global.insert(job.local_to_global.end(), second.begin(),
                                 second.end());
    }
    job.a = static_cast<std::uint32_t>(first.size());
    job.s = static_cast<std::uint32_t>(job.local_to_global.size());
    if (job.s >= 3) {
      job.x_max =
          is_last ? job.s - 2 : std::min(job.a, job.s - 2);
      job.tests = als_total_tests(job.s, job.x_max);
    }
    job.test_offset = work.tests;
    work.tests += job.tests;
    work.jobs.push_back(std::move(job));
  };

  if (chunk.first_level == chunk.last_level) {
    // Single-level chunk == single-level component: one trailing ALS.
    push_als(chunk.first_level, /*is_last=*/true);
    return work;
  }
  for (std::uint32_t l = chunk.first_level; l < chunk.last_level; ++l) {
    const bool component_last = (l + 2 == depth);
    push_als(l, component_last);
  }
  return work;
}

std::uint64_t chunk_device_bytes(const graph::Chunk& chunk) {
  const std::uint64_t local_n = chunk.vertices.size();
  const std::uint64_t row_bytes = ((local_n + 31) / 32) * 4;
  return std::max<std::uint64_t>(local_n * row_bytes, 4);
}

std::uint64_t count_chunk_cpu(const graph::Graph& g, const ChunkWork& work) {
  std::uint64_t found = 0;
  for (const AlsJob& job : work.jobs) {
    for (std::uint32_t x = 0; x < job.x_max; ++x) {
      const graph::Vertex u = job.local_to_global[x];
      for (std::uint32_t y = x + 1; y < job.s; ++y) {
        const graph::Vertex v = job.local_to_global[y];
        if (!g.has_edge(u, v)) continue;  // no (u,v) edge: no triangle uvz
        for (std::uint32_t z = y + 1; z < job.s; ++z) {
          const graph::Vertex w = job.local_to_global[z];
          if (g.has_edge(v, w) && g.has_edge(u, w)) ++found;
        }
      }
    }
  }
  return found;
}

namespace {

/// Locate the ALS job covering chunk-relative flat index `flat`.
const AlsJob& job_for(const ChunkWork& work, std::uint64_t flat) {
  auto it = std::upper_bound(
      work.jobs.begin(), work.jobs.end(), flat,
      [](std::uint64_t f, const AlsJob& j) { return f < j.test_offset; });
  LGG_ASSERT(it != work.jobs.begin());
  --it;
  LGG_ASSERT(flat - it->test_offset < it->tests);
  return *it;
}

/// Linear rescale of a kernel report by `factor` (> 1 when sampled); the
/// same transformation count_triangles_gpu applies.
void rescale(gpusim::KernelReport& k, double factor,
             const gpusim::DeviceSpec& dev) {
  if (factor <= 1.0) return;
  auto scale_u64 = [factor](std::uint64_t v) {
    return static_cast<std::uint64_t>(static_cast<double>(v) * factor);
  };
  k.global_slots = scale_u64(k.global_slots);
  k.transactions = scale_u64(k.transactions);
  k.bytes = scale_u64(k.bytes);
  k.shared_slots = scale_u64(k.shared_slots);
  k.bank_conflict_steps = scale_u64(k.bank_conflict_steps);
  k.warp_instructions *= factor;
  for (auto& c : k.partition_histogram.count) c = scale_u64(c);
  k.partition_histogram.total = scale_u64(k.partition_histogram.total);
  k.camping_factor = k.partition_histogram.camping_factor();
  k.compute_cycles *= factor;
  k.latency_cycles *= factor;
  k.dram_cycles *= factor;
  const double cycles =
      std::max({k.compute_cycles, k.latency_cycles, k.dram_cycles});
  k.kernel_time_s =
      cycles / (dev.core_clock_ghz * 1e9) + cal::kKernelLaunchOverheadS;
  k.sample_fraction = 1.0 / factor;
}

}  // namespace

ChunkLaunch run_chunk_kernel(const graph::Graph& g, const graph::Chunk& chunk,
                             const ChunkWork& work,
                             const gpusim::Simulator& sim,
                             gpusim::DeviceMemory& mem,
                             const HybridOptions& opts,
                             ChunkSalvage* salvage) {
  const gpusim::DeviceSpec& dev = sim.spec();
  const std::uint32_t tpb = opts.threads_per_block;
  LGG_CHECK(tpb >= dev.warp_size && tpb % dev.warp_size == 0,
            "threads_per_block must be a positive multiple of the warp size");
  LGG_CHECK(work.tests > 0, "run_chunk_kernel: chunk owns no tests");

  // Global-resident chunks keep their local adjacency matrix in device
  // global memory (packed rows); shared chunks only pay the staging copy.
  const std::uint64_t local_n = chunk.vertices.size();
  const std::uint64_t row_bytes = ((local_n + 31) / 32) * 4;
  gpusim::Buffer buffer{};
  if (!chunk.fits_shared) buffer = mem.alloc(chunk_device_bytes(chunk));

  // Map a chunk-local vertex id: AlsJob locals index into
  // job.local_to_global (component ids); the chunk matrix is indexed by
  // position within chunk.vertices (sorted), found by binary search.
  const auto& chunk_vs = chunk.vertices;
  auto chunk_local = [&](graph::Vertex v) {
    const auto it = std::lower_bound(chunk_vs.begin(), chunk_vs.end(), v);
    LGG_ASSERT(it != chunk_vs.end() && *it == v);
    return static_cast<std::uint64_t>(it - chunk_vs.begin());
  };

  // Per-thread budget (test sampling).
  const std::uint64_t threads = tpb;  // one block == one SM job
  std::uint64_t per_thread = (work.tests + threads - 1) / threads;
  if (opts.max_simulated_tests_per_chunk > 0) {
    per_thread = std::min(
        per_thread,
        std::max<std::uint64_t>(1,
                                opts.max_simulated_tests_per_chunk / threads));
  }

  // Per-warp functional output slots (simulator thread-safety contract:
  // warps replay concurrently; everything else captured is read-only).
  const std::uint64_t chunk_warps = tpb / dev.warp_size;  // one block
  std::vector<std::uint64_t> warp_simulated(chunk_warps, 0);
  std::vector<std::uint64_t> warp_found(chunk_warps, 0);
  // Shared-resident chunks stage the S-UTM into shared memory first:
  // every thread writes a strided slice of the packed words, then the
  // block barriers (the simulated __syncthreads), and only then probes.
  // The sync annotation is what tells sancheck the write and read
  // phases are ordered — without it every probe would race the staging.
  const std::uint64_t utm_words = (local_n * (local_n - 1) / 2 + 31) / 32;
  const gpusim::KernelFn kernel = [&](const gpusim::ThreadCtx& ctx,
                                      gpusim::ThreadRecorder& rec) {
    if (chunk.fits_shared) {
      for (std::uint64_t w = ctx.thread; w < utm_words; w += threads) {
        rec.shared_write(w * 4);
        rec.compute(1);
      }
      rec.sync();
    }
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      // Cyclic mapping: consecutive lanes take consecutive flat
      // indices, giving z-runs within a warp (coalescing / low bank
      // conflict), exactly like the improved global kernel.
      const std::uint64_t flat = ctx.global_id + i * threads;
      if (flat >= work.tests) break;
      const AlsJob& job = job_for(work, flat);
      const TestTriple t = als_decode_test(job, flat - job.test_offset);
      const graph::Vertex u = job.local_to_global[t.x];
      const graph::Vertex v = job.local_to_global[t.y];
      const graph::Vertex w = job.local_to_global[t.z];

      rec.compute(cal::kGpuInstructionsPerTest);
      const std::uint64_t lu = chunk_local(u), lv = chunk_local(v),
                          lw = chunk_local(w);
      if (chunk.fits_shared) {
        // S-UTM layout in shared memory: word of pair (i < j), bit
        // index i*(2n - i - 1)/2 + (j - i - 1).
        const auto word = [&](std::uint64_t a, std::uint64_t b) {
          if (a > b) std::swap(a, b);
          const std::uint64_t bit =
              a * (2 * local_n - a - 1) / 2 + (b - a - 1);
          return (bit / 32) * 4;
        };
        rec.shared_read(word(lu, lv));
        rec.shared_read(word(lv, lw));
        rec.shared_read(word(lu, lw));
      } else {
        const auto word = [&](std::uint64_t a, std::uint64_t b) {
          return a * row_bytes + (b >> 5) * 4;
        };
        rec.global_read(buffer, word(lu, lv), 4);
        rec.global_read(buffer, word(lv, lw), 4);
        rec.global_read(buffer, word(lu, lw), 4);
      }
      if (g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w))
        ++warp_found[ctx.global_warp];
      ++warp_simulated[ctx.global_warp];
    }
  };

  gpusim::KernelConfig config;
  config.name = chunk.fits_shared ? "chunk/shared" : "chunk/global";
  config.blocks = 1;
  config.threads_per_block = tpb;

  // Sancheck wiring: global-resident chunks read a host-staged matrix;
  // shared chunks only touch shared memory (race-checked via epochs).
  std::optional<sancheck::TapeAnalyzer> analyzer;
  if (opts.sancheck != sancheck::SancheckMode::kOff) {
    sancheck::SancheckConfig sc;
    sc.mode = opts.sancheck;
    if (!chunk.fits_shared) sc.staged = {buffer};
    analyzer.emplace(std::move(sc), mem);
  }

  ChunkLaunch out;
  {
    obs::Scope span(opts.obs, config.name, "launch");
    try {
      out.report = sim.run(kernel, config, 1, opts.exec,
                           analyzer ? &*analyzer : nullptr, opts.prof);
    } catch (const gpusim::SmAbortFault& f) {
      // Harvest the completed warps' output slots before rethrowing: the
      // chunk runs as one block, so SM 0's abort boundary partitions the
      // warps into completed (slots exact — warp replay is pure) and
      // never-run.  Only untruncated chunks are salvageable: a sampled
      // chunk's slots cover a subset of the owned tests.
      if (salvage != nullptr && !f.aborts().empty() &&
          opts.max_simulated_tests_per_chunk == 0) {
        const gpusim::SmAbortInfo& info = f.aborts().front();
        LGG_ASSERT(info.sm == 0);
        salvage->warps_total = chunk_warps;
        salvage->warps_completed =
            std::min<std::uint64_t>(info.warps_completed, chunk_warps);
        salvage->warp_done.assign(chunk_warps, 0);
        salvage->simulated = 0;
        salvage->triangles = 0;
        for (std::uint64_t w = 0; w < salvage->warps_completed; ++w) {
          salvage->warp_done[w] = 1;
          salvage->simulated += warp_simulated[w];
          salvage->triangles += warp_found[w];
        }
      }
      throw;
    }

    // Deterministic reduction: fold per-warp slots in warp order.
    for (std::uint64_t wid = 0; wid < chunk_warps; ++wid) {
      out.simulated += warp_simulated[wid];
      out.triangles += warp_found[wid];
    }
    if (out.simulated < work.tests) {
      const double f = static_cast<double>(work.tests) /
                       static_cast<double>(
                           std::max<std::uint64_t>(out.simulated, 1));
      rescale(out.report, f, dev);
      // Keep the recorded profile matching the caller-visible report.
      if (opts.prof) opts.prof->rescale_last(f);
    }
    // Span duration and counters use the final (post-rescale) report.
    span.model_s(out.report.kernel_time_s);
    if (span) {
      span.arg("tests", work.tests);
      span.arg("transactions", out.report.transactions);
    }
  }
  obs::record_kernel(opts.obs, out.report);
  return out;
}

AlsPrecomputed precompute_als(const graph::Graph& g,
                              const HybridOptions& opts) {
  const gpusim::DeviceSpec& dev =
      opts.device ? *opts.device : gpusim::tesla_c1060();
  AlsPrecomputed plan;
  plan.shared_mem_bits = dev.shared_mem_bits();
  plan.metric = opts.metric;

  graph::ChunkingOptions copts;
  copts.shared_mem_bits = plan.shared_mem_bits;
  copts.metric = opts.metric;
  plan.chunking = graph::split_into_chunks(g, copts);
  plan.levels.reserve(plan.chunking.trees.size());
  for (const auto& tree : plan.chunking.trees) plan.levels.emplace_back(tree);

  plan.works.reserve(plan.chunking.chunks.size());
  plan.chunk_tests.reserve(plan.chunking.chunks.size());
  for (const graph::Chunk& chunk : plan.chunking.chunks) {
    plan.works.push_back(build_chunk_work(chunk, plan.levels[chunk.component]));
    plan.chunk_tests.push_back(plan.works.back().tests);
    plan.total_tests += plan.works.back().tests;
  }
  plan.preprocessing_s = 2.0 * static_cast<double>(g.num_edges()) *
                         cal::kCpuCyclesPerBfsEdge /
                         (cal::kCpuClockGhz * 1e9);
  return plan;
}

HybridFootprint hybrid_footprint_spec(const graph::Graph& g,
                                      const HybridOptions& opts) {
  const gpusim::DeviceSpec& dev =
      opts.device ? *opts.device : gpusim::tesla_c1060();
  const std::uint32_t tpb = opts.threads_per_block;
  LGG_CHECK(tpb >= dev.warp_size && tpb % dev.warp_size == 0,
            "threads_per_block must be a positive multiple of the warp size");

  // Replay Algorithm 1's planning exactly as count_triangles_hybrid does.
  graph::ChunkingOptions copts;
  copts.shared_mem_bits = dev.shared_mem_bits();
  copts.metric = opts.metric;
  const graph::ChunkingResult chunking = graph::split_into_chunks(g, copts);
  std::vector<graph::LevelDecomposition> levels;
  levels.reserve(chunking.trees.size());
  for (const auto& tree : chunking.trees) levels.emplace_back(tree);

  HybridFootprint fp;
  fp.sm_count = dev.sm_count;
  gpusim::DeviceMemory mem(dev);  // scratch: only the addresses matter
  const std::uint64_t shared_bytes = dev.shared_mem_bits() / 8;

  for (std::size_t ci = 0; ci < chunking.chunks.size(); ++ci) {
    const graph::Chunk& chunk = chunking.chunks[ci];
    const ChunkWork work = build_chunk_work(chunk, levels[chunk.component]);
    fp.chunk_tests.push_back(work.tests);
    if (work.tests == 0) continue;  // never launched, nothing to prove

    const std::uint64_t local_n = chunk.vertices.size();
    sancheck::FootprintSpec spec;
    spec.name = "hybrid/chunk[" + std::to_string(ci) +
                (chunk.fits_shared ? "]/shared" : "]/global");
    spec.total_tests = work.tests;
    spec.warp_size = dev.warp_size;
    spec.warp_interleaved = true;
    spec.division = sancheck::WorkDivision::kCyclic;
    spec.workers = tpb;  // one block == one SM job

    std::size_t job_block = 0;
    if (chunk.fits_shared) {
      // The triangular S-UTM packs into utm_words shared words; the word
      // index is bounded by the last pair's word, so one LinearAccess over
      // the flat word array bounds both the staging loop and every probe.
      const std::uint64_t utm_words =
          (local_n * (local_n - 1) / 2 + 31) / 32;
      spec.blocks.push_back({0, shared_bytes, 4});
      spec.accesses.push_back(
          {std::max<std::uint64_t>(utm_words, 1), 4, 4, 0, "s-utm words"});
      job_block = sancheck::kNoBlock;  // matrix covered by the access above
    } else {
      const std::uint64_t row_bytes = ((local_n + 31) / 32) * 4;
      const gpusim::Buffer buffer = mem.alloc(chunk_device_bytes(chunk));
      spec.blocks.push_back({buffer.base, buffer.bytes, row_bytes});
    }
    for (const AlsJob& job : work.jobs) {
      sancheck::FootprintJob fj;
      fj.test_offset = job.test_offset;
      fj.tests = job.tests;
      fj.s = job.s;
      fj.x_max = job.x_max;
      fj.k = 3;
      // The kernel probes by chunk-local position (chunk_local), bounded
      // by the chunk's vertex count, a superset of any job's two levels.
      fj.index_bound = local_n;
      fj.block = job_block;
      spec.jobs.push_back(fj);
    }
    fp.chunk_specs.push_back(std::move(spec));
  }
  return fp;
}

HybridResult count_triangles_hybrid(const graph::Graph& g,
                                    const HybridOptions& opts) {
  const gpusim::DeviceSpec& dev =
      opts.device ? *opts.device : gpusim::tesla_c1060();
  const std::uint32_t tpb = opts.threads_per_block;
  LGG_CHECK(tpb >= dev.warp_size && tpb % dev.warp_size == 0,
            "threads_per_block must be a positive multiple of the warp size");

  obs::Scope driver(opts.obs, "gpu/hybrid", "driver");
  if (driver) {
    driver.arg("scheduler", scheduler_name(opts.scheduler));
    driver.arg("threads_per_block", static_cast<std::uint64_t>(tpb));
  }
  // --- Algorithm 1 (or a catalog-resident plan of it) ---
  AlsPrecomputed local_plan;
  obs::Scope plan_span(opts.obs, "plan/chunking", "plan");
  if (opts.prepared == nullptr) local_plan = precompute_als(g, opts);
  const AlsPrecomputed& plan =
      opts.prepared != nullptr ? *opts.prepared : local_plan;
  LGG_CHECK(plan.shared_mem_bits == dev.shared_mem_bits() &&
                plan.metric == opts.metric,
            "prepared ALS plan was built for a different device budget or "
            "size metric");
  const graph::ChunkingResult& chunking = plan.chunking;
  // Resident plans amortize Algorithm 1: charge zero preprocessing.
  const double preprocessing =
      opts.prepared != nullptr ? 0.0 : plan.preprocessing_s;
  plan_span.model_s(preprocessing);
  if (plan_span) {
    plan_span.arg("chunks", static_cast<std::uint64_t>(chunking.chunks.size()));
    plan_span.arg("components",
                  static_cast<std::uint64_t>(chunking.trees.size()));
    if (opts.prepared != nullptr) plan_span.arg("prepared", true);
  }
  plan_span.close();

  HybridResult result;
  const gpusim::Simulator sim(dev, opts.faults);
  gpusim::DeviceMemory mem(dev, opts.faults);

  std::uint64_t device_bytes = 0;
  std::vector<std::uint64_t> job_times_ns;
  double tau_s_sum = 0.0, tau_g_sum = 0.0;

  for (std::size_t ci = 0; ci < chunking.chunks.size(); ++ci) {
    const graph::Chunk& chunk = chunking.chunks[ci];
    const ChunkWork& work = plan.works[ci];

    ChunkExecution exec;
    exec.chunk = static_cast<std::uint32_t>(ci);
    exec.shared_resident = chunk.fits_shared;
    exec.tests = work.tests;
    result.total_tests += work.tests;

    if (work.tests == 0) {
      result.chunks.push_back(exec);
      job_times_ns.push_back(0);
      (chunk.fits_shared ? result.shared_chunks : result.global_chunks)++;
      continue;
    }

    // Data always crosses PCIe once, for shared and global chunks alike.
    device_bytes += chunk_device_bytes(chunk);

    obs::Scope chunk_span(opts.obs, "chunk[" + std::to_string(ci) + "]",
                          "chunk");
    if (chunk_span) {
      chunk_span.arg("shared_resident", chunk.fits_shared);
      chunk_span.arg("tests", work.tests);
    }
    const ChunkLaunch launch = run_chunk_kernel(g, chunk, work, sim, mem, opts);
    chunk_span.close();
    result.hazards.merge(launch.report.hazards);

    if (launch.simulated < work.tests) {
      result.exact = false;
    } else {
      exec.triangles = launch.triangles;
    }
    result.triangles += launch.triangles;

    exec.time_s = launch.report.kernel_time_s;
    (chunk.fits_shared ? tau_s_sum : tau_g_sum) += exec.time_s;
    (chunk.fits_shared ? result.shared_chunks : result.global_chunks)++;
    job_times_ns.push_back(
        static_cast<std::uint64_t>(exec.time_s * 1e9));
    result.chunks.push_back(std::move(exec));
  }

  // --- Section VI: schedule chunk jobs onto the SMs ---
  obs::Scope sched_span(opts.obs,
                        std::string("schedule/") +
                            scheduler_name(opts.scheduler),
                        "schedule");
  switch (opts.scheduler) {
    case SchedulerKind::kList:
      result.schedule = sched::list_schedule(job_times_ns, dev.sm_count);
      break;
    case SchedulerKind::kLpt:
      result.schedule = sched::lpt_schedule(job_times_ns, dev.sm_count);
      break;
    case SchedulerKind::kMultifit:
      result.schedule = sched::multifit_schedule(job_times_ns, dev.sm_count);
      break;
  }
  for (std::size_t ci = 0; ci < result.chunks.size(); ++ci)
    result.chunks[ci].sm = result.schedule.machine_of[ci];
  result.makespan_s = static_cast<double>(result.schedule.makespan) * 1e-9;
  if (sched_span) {
    sched_span.arg("jobs", static_cast<std::uint64_t>(job_times_ns.size()));
    sched_span.arg("machines", static_cast<std::uint64_t>(dev.sm_count));
    sched_span.arg("makespan_s", result.makespan_s);
  }
  sched_span.close();

  // --- Eq. (6) analytic comparison ---
  const double tau_s =
      result.shared_chunks ? tau_s_sum / static_cast<double>(result.shared_chunks)
                           : 0.0;
  const double tau_g =
      result.global_chunks ? tau_g_sum / static_cast<double>(result.global_chunks)
                           : 0.0;
  const double mu = std::ceil(static_cast<double>(result.shared_chunks) /
                              static_cast<double>(dev.sm_count));
  result.eq6_time_s =
      mu * tau_s + static_cast<double>(result.global_chunks) * tau_g;

  // --- end-to-end ---
  const double transfer_s = gpusim::transfer_time_s(dev, device_bytes);
  {
    obs::Scope span(opts.obs, "transfer/h2d", "transfer");
    span.model_s(transfer_s);
    if (span) span.arg("bytes", device_bytes);
  }
  if (opts.obs != nullptr) {
    gpusim::TransferReport tr;
    tr.bytes = device_bytes;
    tr.time_s = transfer_s;
    obs::record_transfer(opts.obs, tr);
  }
  driver.model_s(cal::kDispatchOverheadS + cal::kDeviceInitOverheadS);
  result.total_time_s = preprocessing + transfer_s + cal::kDispatchOverheadS +
                        cal::kDeviceInitOverheadS + result.makespan_s;
  return result;
}

}  // namespace lgg::core

// The Section V/VI execution pipeline: Algorithm 1 splits the graph into
// chunks of consecutive BFS levels; chunks whose adjacency data fits one
// SM's shared memory run as shared-memory-resident jobs (the predecessor
// paper's regime, with bank-conflict costs), the rest run against global
// memory (with coalescing + partition costs); chunk jobs are then
// makespan-scheduled onto the device's streaming multiprocessors
// (Section VI) and the total is compared against the paper's analytic
// Eq. (6): tau_t = mu * tau_s + psi_g * tau_g.
//
// Semantics: every triangle is counted exactly once.  Chunks overlap by
// one BFS level, and each adjacent level set (= each unit of Algorithm 2
// work) is owned by the unique chunk in which its first level is interior
// (plus the trailing set for the component's last chunk), so the chunk
// decomposition partitions the ALS plan.
#pragma once

#include <cstdint>
#include <vector>

#include "core/als_plan.hpp"
#include "graph/bfs.hpp"
#include "graph/chunking.hpp"
#include "graph/graph.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "obs/obs.hpp"
#include "sancheck/footprint.hpp"
#include "sancheck/sancheck.hpp"
#include "sched/makespan.hpp"

namespace lgg::core {

enum class SchedulerKind : int { kList = 0, kLpt = 1, kMultifit = 2 };

[[nodiscard]] const char* scheduler_name(SchedulerKind kind) noexcept;

struct AlsPrecomputed;

struct HybridOptions {
  /// Device to simulate; nullptr selects the paper's C1060.
  const gpusim::DeviceSpec* device = nullptr;
  graph::SizeMetric metric = graph::SizeMetric::kSutm;
  std::uint32_t threads_per_block = 128;
  SchedulerKind scheduler = SchedulerKind::kLpt;
  /// Cap on candidate triples simulated per chunk (0 = all); statistics
  /// of truncated chunks are rescaled exactly as in count_triangles_gpu.
  std::uint64_t max_simulated_tests_per_chunk = 0;
  /// Host-side simulator execution policy (parallel by default;
  /// bit-identical to serial).
  gpusim::ExecPolicy exec;
  /// Hazard analysis of every chunk launch (sancheck/sancheck.hpp).
  sancheck::SancheckMode sancheck = sancheck::SancheckMode::kOff;
  /// Optional fault hook (non-owning) installed on the DeviceMemory and
  /// Simulator the pipeline constructs: chunk allocations and launches can
  /// then throw gpusim::DeviceFault (DESIGN.md §11).  The plain hybrid
  /// pipeline does NOT recover — use resilience::run_resilient for
  /// retry/failover semantics.
  gpusim::FaultHook* faults = nullptr;
  /// Optional observability session: chunk/schedule/launch spans plus
  /// gpusim counters (DESIGN.md §12).  run_chunk_kernel reads it too, so
  /// the resilient runner inherits launch spans by forwarding it here.
  obs::Session* obs = nullptr;
  /// Optional profiler hook (non-owning): every chunk launch deposits
  /// modelled hardware counters (DESIGN.md §17).  run_chunk_kernel reads
  /// it too, so the resilient runner forwards it the same way as `obs`.
  gpusim::ProfilerHook* prof = nullptr;
  /// Optional precomputed Algorithm 1 plan (non-owning; see
  /// precompute_als).  When set, the pipeline skips chunking / level
  /// decomposition / per-chunk ALS work and charges ZERO modelled
  /// preprocessing — the amortization a resident-graph catalog buys
  /// (DESIGN.md §15).  The plan must have been built for the same graph,
  /// shared-memory budget and metric (budget/metric are checked; the
  /// graph is the caller's contract).
  const AlsPrecomputed* prepared = nullptr;
};

/// Per-chunk execution record.
struct ChunkExecution {
  std::uint32_t chunk = 0;           // index into the ChunkingResult
  bool shared_resident = false;      // fit the SM's shared memory?
  std::uint64_t tests = 0;           // candidate triples owned by the chunk
  std::uint64_t triangles = 0;       // found in this chunk (exact runs)
  double time_s = 0.0;               // modelled single-SM job time
  std::uint32_t sm = 0;              // machine assigned by the scheduler
};

struct HybridResult {
  std::uint64_t triangles = 0;
  bool exact = true;
  std::uint64_t total_tests = 0;

  std::size_t shared_chunks = 0;  // psi_s
  std::size_t global_chunks = 0;  // psi_g

  std::vector<ChunkExecution> chunks;
  sched::Assignment schedule;  // over chunks, machines = SMs

  /// Modelled end-to-end: preprocessing + transfer + scheduled makespan.
  double total_time_s = 0.0;
  /// The scheduled parallel part only (max SM load, seconds).
  double makespan_s = 0.0;
  /// The paper's Eq. (6) estimate with tau_s/tau_g = mean measured chunk
  /// times: mu * tau_s + psi_g * tau_g, where mu = ceil(psi_s / #SM).
  double eq6_time_s = 0.0;

  /// Merged over all chunk launches (kReport mode; empty when off).
  gpusim::HazardReport hazards;
};

/// Run the full hybrid pipeline on the simulated device.
HybridResult count_triangles_hybrid(const graph::Graph& g,
                                    const HybridOptions& opts = {});

// ---- chunk-level building blocks -------------------------------------
// The pieces count_triangles_hybrid is made of, exposed so a recovery
// layer (resilience::run_resilient) can execute chunks as independently
// retryable units: rebuild a chunk's work, launch it on a fresh
// simulator/memory, and recount its test space on the CPU to certify the
// device result.

/// The ALS work owned by one chunk (ownership partitions the component's
/// ALS sequence across its chunks; see the header comment above).
struct ChunkWork {
  std::vector<AlsJob> jobs;  // test_offset is chunk-relative
  std::uint64_t tests = 0;
};

/// Build the chunk's ALS jobs from its component's level decomposition.
ChunkWork build_chunk_work(const graph::Chunk& chunk,
                           const graph::LevelDecomposition& levels);

/// Everything Algorithm 1 produces for one graph, computed once and
/// reusable across any number of hybrid / resilient runs: the chunk
/// decomposition, per-component BFS level decompositions, and each
/// chunk's ALS work (the chunk schedule's job weights are
/// works[i].tests).  A pure function of (graph, shared-memory budget,
/// metric), so reusing it is unobservable in results — only the
/// preprocessing cost disappears.  This is the artifact the serving
/// catalog keeps resident per graph (DESIGN.md §15).
struct AlsPrecomputed {
  graph::ChunkingResult chunking;
  std::vector<graph::LevelDecomposition> levels;  // per component
  std::vector<ChunkWork> works;                   // per chunk
  std::vector<std::uint64_t> chunk_tests;         // works[i].tests
  std::uint64_t total_tests = 0;
  /// Plan inputs, recorded so consumers can check compatibility.
  std::uint64_t shared_mem_bits = 0;
  graph::SizeMetric metric = graph::SizeMetric::kSutm;
  /// Modelled BFS/levelling cost the plan amortizes (charged by cold
  /// runs, skipped by prepared ones).
  double preprocessing_s = 0.0;
};

/// Run Algorithm 1 once: chunking, level decompositions and per-chunk ALS
/// work for the device/metric named by `opts` (device and metric are the
/// only fields read).
AlsPrecomputed precompute_als(const graph::Graph& g,
                              const HybridOptions& opts = {});

/// Simulated-device footprint of one chunk's packed local adjacency
/// matrix (what a global-resident chunk allocates; what either kind ships
/// across PCIe).
std::uint64_t chunk_device_bytes(const graph::Chunk& chunk);

/// Result of one chunk's kernel launch.
struct ChunkLaunch {
  std::uint64_t simulated = 0;  // tests actually run (== tests when exact)
  std::uint64_t triangles = 0;  // found among the simulated tests
  gpusim::KernelReport report;  // rescaled to the full chunk if truncated
};

/// What an SM abort left behind in one chunk launch: the per-warp output
/// slots of the warps that completed before the abort boundary
/// (gpusim::SmAbortFault::aborts).  Because each warp's replay is a pure
/// function of (graph, chunk work, launch config), a completed warp's
/// slots hold exactly what a fault-free launch writes — so `triangles`
/// over `simulated` tests can be trusted, and only the tests owned by the
/// warps past the boundary need a host recount (DESIGN.md §16).
struct ChunkSalvage {
  std::uint64_t warps_total = 0;      // warps in the chunk's single block
  std::uint64_t warps_completed = 0;  // completed before the abort
  std::uint64_t simulated = 0;        // tests run by completed warps
  std::uint64_t triangles = 0;        // found by completed warps
  /// warp_done[w] != 0 iff warp w completed (size warps_total).
  std::vector<std::uint8_t> warp_done;
};

/// Launch one chunk's 1-block kernel on `sim`, allocating any
/// global-resident matrix from `mem`.  Requires work.tests > 0.  Faults
/// installed on sim/mem surface as gpusim::DeviceFault from here.  When
/// `salvage` is non-null and the launch dies with an SM abort (and the
/// chunk is untruncated), the completed warps' outputs are harvested into
/// it before the fault is rethrown; all other faulted launches leave
/// outputs that must be treated as garbage — retry with a fresh attempt.
ChunkLaunch run_chunk_kernel(const graph::Graph& g, const graph::Chunk& chunk,
                             const ChunkWork& work,
                             const gpusim::Simulator& sim,
                             gpusim::DeviceMemory& mem,
                             const HybridOptions& opts,
                             ChunkSalvage* salvage = nullptr);

/// Exact CPU recount of the chunk's test space (the oracle the resilient
/// runner verifies device results against, and its CPU failover path).
std::uint64_t count_chunk_cpu(const graph::Graph& g, const ChunkWork& work);

// ---- static plan verification (lint/plan_verify.hpp drives this) -----

/// The whole hybrid pipeline's static footprint: one FootprintSpec per
/// non-empty chunk launch (shared chunks prove S-UTM containment against
/// the SM's shared memory, global chunks against their device matrix)
/// plus the inputs the Section VI scheduler sees, so schedule-repair
/// proofs can run without simulating a single test.
struct HybridFootprint {
  /// One spec per chunk OWNING tests, in chunk order
  /// ("hybrid/chunk[i]/shared" or ".../global").
  std::vector<sancheck::FootprintSpec> chunk_specs;
  /// Static schedule weights: tests owned per chunk, ALL chunks (empty
  /// ones included) — index-compatible with HybridResult::chunks.
  std::vector<std::uint64_t> chunk_tests;
  /// Machines the scheduler assigns onto (the device's SM count).
  std::uint32_t sm_count = 0;
};

/// Build the pipeline footprint by replaying the planning half of
/// count_triangles_hybrid (chunking, level decomposition, per-chunk ALS
/// work) without launching anything.
HybridFootprint hybrid_footprint_spec(const graph::Graph& g,
                                      const HybridOptions& opts = {});

}  // namespace lgg::core

#include "core/intersect_gpu.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <utility>

#include "combi/strategies.hpp"
#include "gpusim/calibration.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/memory.hpp"
#include "util/error.hpp"

namespace lgg::core {

namespace cal = gpusim::calibration;
using graph::Graph;
using graph::Vertex;

namespace {

/// Low-degree orientation (same ranking as count_triangles_forward): every
/// triangle appears exactly once as u -> v -> w with rank(u) < rank(v) <
/// rank(w).
struct Oriented {
  std::vector<std::uint64_t> offsets;  // n + 1
  std::vector<Vertex> out;             // sorted by id within each list
  std::vector<std::pair<Vertex, Vertex>> edges;  // all oriented edges
};

Oriented orient(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<std::uint32_t> rank(n);
  {
    std::vector<Vertex> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](Vertex x, Vertex y) {
      const auto dx = g.degree(x), dy = g.degree(y);
      return dx != dy ? dx < dy : x < y;
    });
    for (std::uint32_t r = 0; r < n; ++r) rank[order[r]] = r;
  }
  Oriented result;
  result.offsets.assign(n + 1, 0);
  for (Vertex u = 0; u < n; ++u)
    for (const Vertex v : g.neighbors(u))
      if (rank[u] < rank[v]) ++result.offsets[u + 1];
  for (std::size_t v = 0; v < n; ++v)
    result.offsets[v + 1] += result.offsets[v];
  result.out.resize(result.offsets[n]);
  result.edges.reserve(result.offsets[n]);
  std::vector<std::uint64_t> cursor(result.offsets.begin(),
                                    result.offsets.end() - 1);
  for (Vertex u = 0; u < n; ++u)
    for (const Vertex v : g.neighbors(u))
      if (rank[u] < rank[v]) {
        result.out[cursor[u]++] = v;
        result.edges.emplace_back(u, v);
      }
  return result;
}

std::uint64_t merge_count(std::span<const Vertex> a,
                          std::span<const Vertex> b) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j])
      ++i;
    else if (b[j] < a[i])
      ++j;
    else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

GpuIntersectResult count_triangles_gpu_intersect(
    const Graph& g, const GpuIntersectOptions& opts) {
  const gpusim::DeviceSpec& dev =
      opts.device ? *opts.device : gpusim::tesla_c1060();
  const std::uint32_t blocks = opts.blocks ? opts.blocks : 2 * dev.sm_count;
  const std::uint32_t tpb = opts.threads_per_block;
  LGG_CHECK(tpb >= dev.warp_size && tpb % dev.warp_size == 0,
            "threads_per_block must be a positive multiple of the warp size");

  const Oriented oriented = orient(g);
  const std::uint64_t n = g.num_vertices();

  GpuIntersectResult result;
  result.total_edges = oriented.edges.size();

  gpusim::DeviceMemory mem(dev, opts.faults);
  const gpusim::Buffer offsets_buf =
      mem.alloc(std::max<std::uint64_t>((n + 1) * 8, 8));
  const gpusim::Buffer adj_buf =
      mem.alloc(std::max<std::uint64_t>(oriented.out.size() * 4, 4));
  result.device_bytes = offsets_buf.bytes + adj_buf.bytes;
  const gpusim::Simulator sim(dev, opts.faults);
  obs::Scope driver(opts.obs, "gpu/intersect", "driver");
  if (driver) driver.arg("edges", result.total_edges);
  {
    obs::Scope span(opts.obs, "transfer/h2d", "transfer");
    result.transfer = sim.transfer(result.device_bytes);
    span.model_s(result.transfer.time_s);
    if (span) span.arg("bytes", result.transfer.bytes);
  }
  obs::record_transfer(opts.obs, result.transfer);

  if (oriented.edges.empty()) {
    result.total_time_s = result.transfer.time_s + cal::kDispatchOverheadS +
                          cal::kDeviceInitOverheadS;
    driver.model_s(cal::kDispatchOverheadS + cal::kDeviceInitOverheadS);
    return result;
  }

  const std::uint64_t warps =
      static_cast<std::uint64_t>(blocks) * tpb / dev.warp_size;
  const auto ranges = combi::divide_work(oriented.edges.size(), warps);

  std::uint64_t per_warp_budget = ~std::uint64_t{0};
  if (opts.max_simulated_edges > 0 &&
      opts.max_simulated_edges < oriented.edges.size())
    per_warp_budget =
        std::max<std::uint64_t>(1, opts.max_simulated_edges / warps);

  std::uint64_t total_work = 0;
  for (const auto& [u, v] : oriented.edges)
    total_work += (oriented.offsets[u + 1] - oriented.offsets[u]) +
                  (oriented.offsets[v + 1] - oriented.offsets[v]);

  // Per-warp functional output slots (simulator thread-safety contract:
  // warps may replay concurrently; lane 0 of each warp owns its slot, all
  // other captures below are read-only for the launch).
  std::vector<std::uint64_t> warp_triangles(warps, 0);
  std::vector<std::uint64_t> warp_edges(warps, 0);
  std::vector<std::uint64_t> warp_work(warps, 0);

  const gpusim::KernelFn kernel = [&](const gpusim::ThreadCtx& ctx,
                                      gpusim::ThreadRecorder& rec) {
    const std::uint64_t warp_id = ctx.global_id / dev.warp_size;
    const auto& range = ranges[warp_id];
    const std::uint64_t count =
        std::min<std::uint64_t>(range.size(), per_warp_budget);
    for (std::uint64_t e = 0; e < count; ++e) {
      const auto [u, v] = oriented.edges[range.begin + e];

      // Every lane reads the two offset words (same address: a broadcast,
      // one transaction on CC >= 1.2).
      rec.global_read(offsets_buf, static_cast<std::uint64_t>(u) * 8, 8);
      rec.global_read(offsets_buf, static_cast<std::uint64_t>(v) * 8, 8);

      // Lane-parallel coalesced streaming of both adjacency lists: lane l
      // reads elements l, l+32, ...; trailing lanes clamp to the last
      // element (same segment) so the warp tapes stay slot-aligned.
      for (const Vertex x : {u, v}) {
        const std::uint64_t begin = oriented.offsets[x];
        const std::uint64_t len = oriented.offsets[x + 1] - begin;
        const std::uint64_t slots = (len + dev.warp_size - 1) / dev.warp_size;
        for (std::uint64_t s = 0; s < slots; ++s) {
          std::uint64_t idx = begin + s * dev.warp_size + ctx.lane;
          if (idx >= begin + len) idx = begin + len - 1;  // clamp
          rec.global_read(adj_buf, idx * 4, 4);
        }
        rec.compute(static_cast<double>(slots));  // merge-step issue cost
      }

      if (ctx.lane == 0) {
        const std::span<const Vertex> lu(
            oriented.out.data() + oriented.offsets[u],
            oriented.offsets[u + 1] - oriented.offsets[u]);
        const std::span<const Vertex> lv(
            oriented.out.data() + oriented.offsets[v],
            oriented.offsets[v + 1] - oriented.offsets[v]);
        warp_triangles[ctx.global_warp] += merge_count(lu, lv);
        ++warp_edges[ctx.global_warp];
        warp_work[ctx.global_warp] += lu.size() + lv.size();
      }
    }
  };

  gpusim::KernelConfig config;
  config.name = "triangles/intersect";
  config.blocks = blocks;
  config.threads_per_block = tpb;

  // Sancheck wiring: the CSR (offsets + neighbours) is staged by the host.
  std::optional<sancheck::TapeAnalyzer> analyzer;
  if (opts.sancheck != sancheck::SancheckMode::kOff) {
    sancheck::SancheckConfig sc;
    sc.mode = opts.sancheck;
    sc.staged = {offsets_buf, adj_buf};
    analyzer.emplace(std::move(sc), mem);
  }
  obs::Scope launch_span(opts.obs, config.name, "launch");
  result.kernel =
      sim.run(kernel, config, 1, opts.exec, analyzer ? &*analyzer : nullptr);

  // Deterministic reduction: fold per-warp slots in warp order.
  std::uint64_t triangles = 0, simulated_edges = 0, simulated_work = 0;
  for (std::uint64_t wid = 0; wid < warps; ++wid) {
    triangles += warp_triangles[wid];
    simulated_edges += warp_edges[wid];
    simulated_work += warp_work[wid];
  }
  result.simulated_edges = simulated_edges;
  result.triangles = triangles;
  result.exact = simulated_edges == oriented.edges.size();

  if (!result.exact && simulated_work > 0) {
    const double f = static_cast<double>(total_work) /
                     static_cast<double>(simulated_work);
    auto scale_u64 = [f](std::uint64_t x) {
      return static_cast<std::uint64_t>(static_cast<double>(x) * f);
    };
    gpusim::KernelReport& k = result.kernel;
    k.global_slots = scale_u64(k.global_slots);
    k.transactions = scale_u64(k.transactions);
    k.bytes = scale_u64(k.bytes);
    k.warp_instructions *= f;
    for (auto& c : k.partition_histogram.count) c = scale_u64(c);
    k.partition_histogram.total = scale_u64(k.partition_histogram.total);
    k.camping_factor = k.partition_histogram.camping_factor();
    k.compute_cycles *= f;
    k.latency_cycles *= f;
    k.dram_cycles *= f;
    const double cycles =
        std::max({k.compute_cycles, k.latency_cycles, k.dram_cycles});
    k.kernel_time_s =
        cycles / (dev.core_clock_ghz * 1e9) + cal::kKernelLaunchOverheadS;
    k.sample_fraction = 1.0 / f;
  }

  // Span duration and counters use the final (post-rescale) report.
  launch_span.model_s(result.kernel.kernel_time_s);
  if (launch_span)
    launch_span.arg("transactions", result.kernel.transactions);
  launch_span.close();
  obs::record_kernel(opts.obs, result.kernel);
  driver.model_s(cal::kDispatchOverheadS + cal::kDeviceInitOverheadS);

  result.total_time_s = result.transfer.time_s + cal::kDispatchOverheadS +
                        cal::kDeviceInitOverheadS +
                        result.kernel.kernel_time_s;
  return result;
}

sancheck::FootprintSpec intersect_footprint_spec(
    const Graph& g, const GpuIntersectOptions& opts) {
  const gpusim::DeviceSpec& dev =
      opts.device ? *opts.device : gpusim::tesla_c1060();
  const std::uint32_t blocks = opts.blocks ? opts.blocks : 2 * dev.sm_count;
  const std::uint32_t tpb = opts.threads_per_block;
  LGG_CHECK(tpb >= dev.warp_size && tpb % dev.warp_size == 0,
            "threads_per_block must be a positive multiple of the warp size");

  const Oriented oriented = orient(g);
  const std::uint64_t n = g.num_vertices();
  gpusim::DeviceMemory mem(dev);  // scratch: only the addresses matter
  const gpusim::Buffer offsets_buf =
      mem.alloc(std::max<std::uint64_t>((n + 1) * 8, 8));
  const gpusim::Buffer adj_buf =
      mem.alloc(std::max<std::uint64_t>(oriented.out.size() * 4, 4));

  sancheck::FootprintSpec spec;
  spec.name = "gpu/intersect";
  spec.total_tests = oriented.edges.size();
  spec.warp_size = dev.warp_size;
  spec.warp_interleaved = true;
  spec.division = sancheck::WorkDivision::kDivideWork;
  spec.workers = static_cast<std::uint64_t>(blocks) * tpb / dev.warp_size;
  spec.blocks.push_back({offsets_buf.base, offsets_buf.bytes, 8});
  spec.blocks.push_back({adj_buf.base, adj_buf.bytes, 4});
  // Offset reads: the kernel touches words u * 8 and v * 8 for oriented
  // edge endpoints, all < n.  Neighbour reads (including the trailing-lane
  // clamp) stay below the CSR length.
  spec.accesses.push_back({n, 8, 8, 0, "csr offsets"});
  spec.accesses.push_back({oriented.out.size(), 4, 4, 1, "csr neighbours"});
  return spec;
}

}  // namespace lgg::core

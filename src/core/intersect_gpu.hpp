// The modern GPU triangle-counting baseline: one warp per (oriented)
// edge, intersecting sorted CSR adjacency lists in device global memory.
//
// The paper predates this design (it tests candidate vertex triples
// against an adjacency matrix); cuGraph/Gunrock-era counters instead do
// work proportional to Σ_(u,v)∈E (deg u + deg v) over the low-degree
// orientation.  Implementing both on the same simulator lets the benches
// quantify how much of the paper's GPU time is the algorithm rather than
// the memory system (bench_ablation_algorithm).
//
// Device layout: CSR offsets (8-byte words) and neighbour array (4-byte
// words) in global memory; a warp assigned edge (u, v) streams both
// out-neighbour lists through coalesced lane-parallel reads and merges
// them. Functional counting reuses the host CSR.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/report.hpp"
#include "obs/obs.hpp"
#include "sancheck/footprint.hpp"
#include "sancheck/sancheck.hpp"

namespace lgg::core {

struct GpuIntersectOptions {
  const gpusim::DeviceSpec* device = nullptr;  // nullptr -> C1060
  std::uint32_t blocks = 0;                    // 0 = 2 x SM count
  std::uint32_t threads_per_block = 128;
  /// Cap on edges simulated (0 = all); statistics rescale when truncated.
  std::uint64_t max_simulated_edges = 0;
  /// Host-side simulator execution policy (parallel by default;
  /// bit-identical to serial).
  gpusim::ExecPolicy exec;
  /// Hazard analysis of the launch (sancheck/sancheck.hpp).
  sancheck::SancheckMode sancheck = sancheck::SancheckMode::kOff;
  /// Optional fault hook (non-owning) installed on the driver's
  /// DeviceMemory and Simulator; fired faults surface as
  /// gpusim::DeviceFault (DESIGN.md §11).
  gpusim::FaultHook* faults = nullptr;
  /// Optional observability session: transfer/launch spans plus gpusim
  /// counters (DESIGN.md §12).
  obs::Session* obs = nullptr;
};

struct GpuIntersectResult {
  std::uint64_t triangles = 0;  // valid when exact
  bool exact = true;
  std::uint64_t total_edges = 0;      // oriented work items
  std::uint64_t simulated_edges = 0;
  std::uint64_t device_bytes = 0;     // CSR footprint
  gpusim::TransferReport transfer;
  gpusim::KernelReport kernel;
  double total_time_s = 0.0;
};

/// Count triangles with the warp-per-edge intersection kernel on the
/// simulated device.  Exact runs agree with count_triangles_forward.
GpuIntersectResult count_triangles_gpu_intersect(
    const graph::Graph& g, const GpuIntersectOptions& opts = {});

/// Static footprint spec of the intersection launch: the CSR offset and
/// neighbour arrays as LinearAccess patterns (offset words indexed by
/// vertex id, neighbour words by CSR position), with divide_work handing
/// the oriented edge list to the warps.  lint_footprint proves every
/// access of every schedule in bounds without running the kernel.
sancheck::FootprintSpec intersect_footprint_spec(
    const graph::Graph& g, const GpuIntersectOptions& opts = {});

}  // namespace lgg::core

#include "core/kcount.hpp"

#include <algorithm>
#include <functional>
#include <vector>

#include "combi/combinadic.hpp"
#include "core/als_plan.hpp"
#include "graph/bfs.hpp"
#include "util/error.hpp"

namespace lgg::core {

using graph::Graph;
using graph::Vertex;

namespace {

std::uint64_t cliques_rec(const Graph& g, const std::vector<Vertex>& cands,
                          std::uint32_t need) {
  if (need == 0) return 1;
  if (cands.size() < need) return 0;
  if (need == 1) return cands.size();
  std::uint64_t total = 0;
  std::vector<Vertex> next;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    next.clear();
    for (std::size_t j = i + 1; j < cands.size(); ++j)
      if (g.has_edge(cands[i], cands[j])) next.push_back(cands[j]);
    total += cliques_rec(g, next, need - 1);
  }
  return total;
}

std::uint64_t indep_rec(const Graph& g, const std::vector<Vertex>& cands,
                        std::uint32_t need) {
  if (need == 0) return 1;
  if (cands.size() < need) return 0;
  if (need == 1) return cands.size();
  std::uint64_t total = 0;
  std::vector<Vertex> next;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    next.clear();
    for (std::size_t j = i + 1; j < cands.size(); ++j)
      if (!g.has_edge(cands[i], cands[j])) next.push_back(cands[j]);
    total += indep_rec(g, next, need - 1);
  }
  return total;
}

/// Enumerate, for every component and every window of `window_levels`
/// consecutive BFS levels, each k-combination of window vertices whose
/// minimum element lies in the window's first level; invoke `test` with
/// the global vertex ids.  This is the generic Section VIII machinery
/// behind both paper-style counters.
void for_each_window_combination(
    const Graph& g, std::uint32_t window_levels, std::uint32_t k,
    const std::function<void(std::span<const Vertex>)>& test) {
  const graph::Components comps = graph::connected_components(g);
  for (std::uint32_t c = 0; c < comps.count; ++c) {
    const auto members = comps.vertices_of(c);
    const graph::BfsTree tree = graph::bfs(g, members.front());
    const graph::LevelDecomposition levels(tree);
    const std::size_t d = levels.num_levels();

    std::vector<Vertex> window;
    std::vector<std::uint32_t> suffix(k > 0 ? k - 1 : 0);
    std::vector<Vertex> combo(k);
    for (std::size_t i = 0; i < d; ++i) {
      window.clear();
      const std::size_t last = std::min(d - 1, i + window_levels - 1);
      for (std::size_t l = i; l <= last; ++l) {
        const auto lvl = levels.level(l);
        window.insert(window.end(), lvl.begin(), lvl.end());
      }
      const auto s = static_cast<std::uint32_t>(window.size());
      if (s < k) continue;
      const auto a = static_cast<std::uint32_t>(levels.level(i).size());
      const std::uint32_t x_max = std::min(a, s - k + 1);

      for (std::uint32_t x = 0; x < x_max; ++x) {
        if (k == 1) {
          combo[0] = window[x];
          test(combo);
          continue;
        }
        // (k-1)-combinations of (x, s), walked by successor over [0, s):
        // start at (x+1, ..., x+k-1); all successors stay above x.
        for (std::uint32_t j = 0; j + 1 < k; ++j) suffix[j] = x + 1 + j;
        for (;;) {
          combo[0] = window[x];
          for (std::uint32_t j = 0; j + 1 < k; ++j)
            combo[j + 1] = window[suffix[j]];
          test(combo);
          if (!combi::next_combination(suffix, s)) break;
        }
      }
    }
  }
}

bool is_clique(const Graph& g, std::span<const Vertex> vs) {
  for (std::size_t i = 0; i < vs.size(); ++i)
    for (std::size_t j = i + 1; j < vs.size(); ++j)
      if (!g.has_edge(vs[i], vs[j])) return false;
  return true;
}

bool induced_connected(const Graph& g, std::span<const Vertex> vs) {
  const std::size_t k = vs.size();
  if (k <= 1) return true;
  // BFS over the induced subgraph (k is small).
  std::vector<bool> seen(k, false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const std::size_t i = stack.back();
    stack.pop_back();
    for (std::size_t j = 0; j < k; ++j) {
      if (!seen[j] && g.has_edge(vs[i], vs[j])) {
        seen[j] = true;
        ++reached;
        stack.push_back(j);
      }
    }
  }
  return reached == k;
}

}  // namespace

std::uint64_t count_kcliques(const Graph& g, std::uint32_t k) {
  LGG_CHECK(k >= 1, "count_kcliques: k must be >= 1");
  if (k == 1) return g.num_vertices();
  std::uint64_t total = 0;
  std::vector<Vertex> cands;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    cands.clear();
    for (const Vertex u : g.neighbors(v))
      if (u > v) cands.push_back(u);
    total += cliques_rec(g, cands, k - 1);
  }
  return total;
}

std::uint64_t count_kcliques_als(const Graph& g, std::uint32_t k) {
  LGG_CHECK(k >= 1, "count_kcliques_als: k must be >= 1");
  std::uint64_t total = 0;
  // Cliques span at most two adjacent levels -> window of 2.
  for_each_window_combination(g, 2, k, [&](std::span<const Vertex> vs) {
    if (is_clique(g, vs)) ++total;
  });
  return total;
}

std::uint64_t count_independent_sets(const Graph& g, std::uint32_t k) {
  LGG_CHECK(k >= 1, "count_independent_sets: k must be >= 1");
  if (k == 1) return g.num_vertices();
  std::uint64_t total = 0;
  std::vector<Vertex> cands;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    cands.clear();
    for (Vertex u = v + 1; u < g.num_vertices(); ++u)
      if (!g.has_edge(v, u)) cands.push_back(u);
    total += indep_rec(g, cands, k - 1);
  }
  return total;
}

namespace {

struct EsuState {
  const Graph* g = nullptr;
  std::uint32_t k = 0;
  Vertex root = 0;
  std::uint64_t count = 0;
  std::vector<bool> marked;  // in subgraph or adjacent to it
  std::vector<Vertex> sub;

  void extend(std::vector<Vertex>& ext) {
    if (sub.size() == k) {
      ++count;
      return;
    }
    while (!ext.empty()) {
      const Vertex w = ext.back();
      ext.pop_back();

      // Exclusive neighbourhood of w (not yet in sub ∪ N(sub)).
      std::vector<Vertex> newly;
      for (const Vertex u : g->neighbors(w))
        if (u > root && !marked[u]) {
          marked[u] = true;
          newly.push_back(u);
        }
      std::vector<Vertex> next_ext = ext;
      next_ext.insert(next_ext.end(), newly.begin(), newly.end());

      sub.push_back(w);
      extend(next_ext);
      sub.pop_back();
      for (const Vertex u : newly) marked[u] = false;
    }
  }
};

}  // namespace

std::uint64_t count_connected_subgraphs(const Graph& g, std::uint32_t k) {
  LGG_CHECK(k >= 1, "count_connected_subgraphs: k must be >= 1");
  if (k == 1) return g.num_vertices();
  EsuState state;
  state.g = &g;
  state.k = k;
  state.marked.assign(g.num_vertices(), false);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    state.root = v;
    state.sub.assign(1, v);
    state.marked[v] = true;
    std::vector<Vertex> ext;
    for (const Vertex u : g.neighbors(v))
      if (u > v) {
        state.marked[u] = true;
        ext.push_back(u);
      }
    state.extend(ext);
    // Unmark for the next root.
    state.marked[v] = false;
    for (const Vertex u : g.neighbors(v))
      if (u > v) state.marked[u] = false;
  }
  return state.count;
}

std::uint64_t count_connected_subgraphs_als(const Graph& g,
                                            std::uint32_t k) {
  LGG_CHECK(k >= 1, "count_connected_subgraphs_als: k must be >= 1");
  std::uint64_t total = 0;
  // Connected k-subgraphs span at most k consecutive levels.
  for_each_window_combination(g, k, k, [&](std::span<const Vertex> vs) {
    if (induced_connected(g, vs)) ++total;
  });
  return total;
}

}  // namespace lgg::core

// Counting problems of size k (paper Section III, extending [5]):
// k-cliques, independent sets of size k, and connected induced subgraphs
// of size k.  Each problem has an efficient direct oracle plus a
// paper-style counter that walks BFS-level windows with combination
// generation, so tests can prove the level-restriction arguments:
//
//  * a k-clique spans at most TWO adjacent BFS levels (mutually adjacent
//    vertices differ by at most one level) — same windowing as triangles;
//  * a connected subgraph of size k spans at most k consecutive levels;
//  * independent sets have NO level locality, so the paper-style counter
//    for them is the direct one (documented substitution — see DESIGN.md).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace lgg::core {

/// Number of k-cliques, by ordered backtracking over sorted neighbour
/// lists (exact, efficient oracle).  k >= 1; k == 3 equals the triangle
/// count.
std::uint64_t count_kcliques(const graph::Graph& g, std::uint32_t k);

/// Paper-style k-clique counter: per component, per adjacent level set,
/// enumerate k-combinations with >= 1 vertex in the first level (plus the
/// within-last-level combinations), testing all C(k,2) edges.
/// Exponential in window size — intended for the correctness argument and
/// modest graphs.
std::uint64_t count_kcliques_als(const graph::Graph& g, std::uint32_t k);

/// Number of independent sets of exactly k vertices (no edge inside),
/// by backtracking with vertex ordering.
std::uint64_t count_independent_sets(const graph::Graph& g, std::uint32_t k);

/// Number of connected induced subgraphs on exactly k vertices, via the
/// ESU (FANMOD) enumeration — exact oracle.
std::uint64_t count_connected_subgraphs(const graph::Graph& g,
                                        std::uint32_t k);

/// Paper-style connected-subgraph counter: enumerate k-combinations inside
/// every window of k consecutive BFS levels whose minimum-level vertex
/// lies in the window's first level, then test connectivity of the induced
/// subgraph.  Exponential in window size.
std::uint64_t count_connected_subgraphs_als(const graph::Graph& g,
                                            std::uint32_t k);

}  // namespace lgg::core

#include "core/social.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/error.hpp"

namespace lgg::core {

using graph::Graph;
using graph::Vertex;

std::uint64_t common_neighbors(const Graph& g, Vertex u, Vertex v) {
  LGG_CHECK(u < g.num_vertices() && v < g.num_vertices(),
            "common_neighbors: vertex out of range");
  const auto a = g.neighbors(u);
  const auto b = g.neighbors(v);
  std::uint64_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib)
      ++ia;
    else if (*ib < *ia)
      ++ib;
    else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

std::vector<FriendSuggestion> suggest_friends(const Graph& g, Vertex v,
                                              std::size_t limit) {
  LGG_CHECK(v < g.num_vertices(), "suggest_friends: vertex out of range");
  // Count 2-hop paths: mutual friends with each distance-2 vertex.
  std::unordered_map<Vertex, std::uint64_t> mutual;
  for (const Vertex friend_v : g.neighbors(v))
    for (const Vertex fof : g.neighbors(friend_v))
      if (fof != v && !g.has_edge(v, fof)) ++mutual[fof];

  std::vector<FriendSuggestion> out;
  out.reserve(mutual.size());
  for (const auto& [candidate, count] : mutual)
    out.push_back({candidate, count});
  std::sort(out.begin(), out.end(),
            [](const FriendSuggestion& x, const FriendSuggestion& y) {
              return x.mutual_friends != y.mutual_friends
                         ? x.mutual_friends > y.mutual_friends
                         : x.candidate < y.candidate;
            });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<OpenTriad> top_open_triads(const Graph& g, std::size_t limit) {
  // For every wedge u - w - v with u < v and (u, v) not an edge, credit
  // the pair; then rank.
  std::unordered_map<std::uint64_t, std::uint64_t> pair_count;
  for (Vertex w = 0; w < g.num_vertices(); ++w) {
    const auto nbrs = g.neighbors(w);
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        const Vertex u = nbrs[i], v = nbrs[j];
        if (!g.has_edge(u, v)) {
          const std::uint64_t key =
              (static_cast<std::uint64_t>(u) << 32) | v;
          ++pair_count[key];
        }
      }
  }
  std::vector<OpenTriad> out;
  out.reserve(pair_count.size());
  for (const auto& [key, count] : pair_count)
    out.push_back({static_cast<Vertex>(key >> 32),
                   static_cast<Vertex>(key & 0xFFFFFFFFu), count});
  std::sort(out.begin(), out.end(), [](const OpenTriad& x, const OpenTriad& y) {
    if (x.common != y.common) return x.common > y.common;
    if (x.u != y.u) return x.u < y.u;
    return x.v < y.v;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace lgg::core

// Social-network analyses built on the triangle machinery (paper Fig. 2:
// "friends of friends tend to be friends").
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace lgg::core {

/// Number of common neighbours of u and v (sorted-list intersection).
std::uint64_t common_neighbors(const graph::Graph& g, graph::Vertex u,
                               graph::Vertex v);

struct FriendSuggestion {
  graph::Vertex candidate = 0;
  std::uint64_t mutual_friends = 0;
};

/// Friend suggestions for `v`: non-neighbours at distance two, ranked by
/// the number of mutual friends (descending, ties by id), truncated to
/// `limit`.  This is the paper's Fig. 2 use case.
std::vector<FriendSuggestion> suggest_friends(const graph::Graph& g,
                                              graph::Vertex v,
                                              std::size_t limit = 10);

struct OpenTriad {
  graph::Vertex u = 0;
  graph::Vertex v = 0;
  std::uint64_t common = 0;
};

/// The strongest open triads in the graph: non-adjacent pairs with the
/// most common neighbours (the pairs most likely to close into triangles).
std::vector<OpenTriad> top_open_triads(const graph::Graph& g,
                                       std::size_t limit = 10);

}  // namespace lgg::core

#include "core/subgraph_gpu.hpp"

#include <algorithm>
#include <bit>
#include <optional>
#include <span>
#include <utility>

#include "combi/binomial.hpp"
#include "combi/combinadic.hpp"
#include "combi/strategies.hpp"
#include "graph/bfs.hpp"
#include "gpusim/calibration.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/memory.hpp"
#include "util/error.hpp"

namespace lgg::core {

namespace cal = gpusim::calibration;
using combi::binomial;
using graph::Graph;
using graph::Vertex;

namespace {

/// One BFS-level window turned into a flat candidate space: choose the
/// first (minimum) local id x < x_max, then a (k-1)-combination above it.
struct WindowJob {
  std::vector<Vertex> locals;  // window levels concatenated, level-major
  std::uint32_t s = 0;
  std::uint32_t x_max = 0;
  std::uint64_t tests = 0;
  std::uint64_t offset = 0;  // prefix sum over all windows
};

std::uint64_t window_tests(std::uint32_t s, std::uint32_t x_max,
                           std::uint32_t k) {
  // Hockey stick: sum_{x < x_max} C(s-1-x, k-1) = C(s, k) - C(s-x_max, k).
  const std::uint64_t all = binomial(s, k);
  LGG_CHECK(all != combi::kBinomialOverflow,
            "window candidate count overflows 64 bits");
  return all - binomial(s - x_max, k);
}

std::vector<WindowJob> build_windows(const Graph& g,
                                     std::uint32_t window_levels,
                                     std::uint32_t k,
                                     std::uint64_t& total_tests) {
  std::vector<WindowJob> windows;
  total_tests = 0;
  const graph::Components comps = graph::connected_components(g);
  for (std::uint32_t c = 0; c < comps.count; ++c) {
    const auto members = comps.vertices_of(c);
    const graph::BfsTree tree = graph::bfs(g, members.front());
    const graph::LevelDecomposition levels(tree);
    const std::size_t d = levels.num_levels();
    for (std::size_t i = 0; i < d; ++i) {
      WindowJob w;
      const std::size_t last = std::min(d - 1, i + window_levels - 1);
      for (std::size_t l = i; l <= last; ++l) {
        const auto lvl = levels.level(l);
        w.locals.insert(w.locals.end(), lvl.begin(), lvl.end());
      }
      w.s = static_cast<std::uint32_t>(w.locals.size());
      if (w.s >= k) {
        const auto a = static_cast<std::uint32_t>(levels.level(i).size());
        w.x_max = std::min(a, w.s - k + 1);
        w.tests = window_tests(w.s, w.x_max, k);
      }
      w.offset = total_tests;
      total_tests += w.tests;
      windows.push_back(std::move(w));
    }
  }
  return windows;
}

/// Decode a window-local candidate index into k strictly increasing local
/// ids (combo[0] < x_max).
void decode_candidate(const WindowJob& w, std::uint32_t k,
                      std::uint64_t index,
                      std::span<std::uint32_t> combo) {
  LGG_ASSERT(index < w.tests);
  const std::uint64_t c_sk = binomial(w.s, k);
  std::uint32_t lo = 0, hi = w.x_max;  // cum(lo) <= index < cum(hi)
  while (hi - lo > 1) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const std::uint64_t cum = c_sk - binomial(w.s - mid, k);
    if (cum <= index)
      lo = mid;
    else
      hi = mid;
  }
  combo[0] = lo;
  const std::uint64_t before = c_sk - binomial(w.s - lo, k);
  combi::combination_from_index(index - before, w.s - 1 - lo, k - 1,
                                combo.subspan(1));
  for (std::uint32_t j = 1; j < k; ++j) combo[j] += lo + 1;
}

const WindowJob& window_for(const std::vector<WindowJob>& windows,
                            std::uint64_t flat) {
  auto it = std::upper_bound(
      windows.begin(), windows.end(), flat,
      [](std::uint64_t f, const WindowJob& w) { return f < w.offset; });
  LGG_ASSERT(it != windows.begin());
  --it;
  LGG_ASSERT(flat - it->offset < it->tests);
  return *it;
}

bool induced_connected(const Graph& g, std::span<const Vertex> vs) {
  const std::size_t k = vs.size();
  if (k <= 1) return true;
  std::uint32_t seen_mask = 1;  // k <= 16 in practice; assert below
  LGG_ASSERT(k <= 16);
  std::uint32_t stack_mask = 1;
  std::size_t reached = 1;
  while (stack_mask != 0) {
    const auto i = static_cast<std::size_t>(
        std::countr_zero(stack_mask));
    stack_mask &= stack_mask - 1;
    for (std::size_t j = 0; j < k; ++j) {
      if (!(seen_mask >> j & 1) && g.has_edge(vs[i], vs[j])) {
        seen_mask |= 1u << j;
        stack_mask |= 1u << j;
        ++reached;
      }
    }
  }
  return reached == k;
}

/// Linear rescale when the candidate budget truncated the simulation.
void rescale(gpusim::KernelReport& k, double factor,
             const gpusim::DeviceSpec& dev) {
  if (factor <= 1.0) return;
  auto scale_u64 = [factor](std::uint64_t v) {
    return static_cast<std::uint64_t>(static_cast<double>(v) * factor);
  };
  k.global_slots = scale_u64(k.global_slots);
  k.transactions = scale_u64(k.transactions);
  k.bytes = scale_u64(k.bytes);
  k.warp_instructions *= factor;
  for (auto& c : k.partition_histogram.count) c = scale_u64(c);
  k.partition_histogram.total = scale_u64(k.partition_histogram.total);
  k.camping_factor = k.partition_histogram.camping_factor();
  k.compute_cycles *= factor;
  k.latency_cycles *= factor;
  k.dram_cycles *= factor;
  const double cycles =
      std::max({k.compute_cycles, k.latency_cycles, k.dram_cycles});
  k.kernel_time_s =
      cycles / (dev.core_clock_ghz * 1e9) + cal::kKernelLaunchOverheadS;
  k.sample_fraction = 1.0 / factor;
}

/// Shared implementation: enumerate window candidates on the simulator,
/// probing all C(k,2) pairs; `accept(candidate, global_warp)` decides
/// whether a candidate counts.  The simulator replays warps concurrently,
/// so accept hooks must only read shared state and write to per-warp
/// slots indexed by the passed warp id.
template <typename Accept>
GpuKCountResult run_kcount(const Graph& g, std::uint32_t k,
                           std::uint32_t window_levels,
                           const GpuKCountOptions& opts,
                           const Accept& accept) {
  LGG_CHECK(k >= 1 && k <= 16, "GPU k-count supports 1 <= k <= 16");
  const gpusim::DeviceSpec& dev =
      opts.device ? *opts.device : gpusim::tesla_c1060();
  const std::uint32_t blocks = opts.blocks ? opts.blocks : 2 * dev.sm_count;
  const std::uint32_t tpb = opts.threads_per_block;
  LGG_CHECK(tpb >= dev.warp_size && tpb % dev.warp_size == 0,
            "threads_per_block must be a positive multiple of the warp size");

  GpuKCountResult result;
  std::uint64_t total = 0;
  const std::vector<WindowJob> windows =
      build_windows(g, window_levels, k, total);
  result.total_tests = total;

  // Single whole-graph matrix in device memory (global vertex ids).
  gpusim::DeviceMemory mem(dev, opts.faults);
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t row_bytes = ((n + 31) / 32) * 4;
  const gpusim::Buffer matrix =
      mem.alloc(std::max<std::uint64_t>(n * row_bytes, 4));
  const gpusim::Simulator sim(dev, opts.faults);
  obs::Scope driver(opts.obs, "gpu/subgraph", "driver");
  if (driver) {
    driver.arg("k", static_cast<std::uint64_t>(k));
    driver.arg("total_tests", total);
  }
  {
    obs::Scope span(opts.obs, "transfer/h2d", "transfer");
    result.transfer = sim.transfer(matrix.bytes);
    span.model_s(result.transfer.time_s);
    if (span) span.arg("bytes", result.transfer.bytes);
  }
  obs::record_transfer(opts.obs, result.transfer);

  if (total == 0) {
    result.total_time_s = result.transfer.time_s + cal::kDispatchOverheadS +
                          cal::kDeviceInitOverheadS;
    driver.model_s(cal::kDispatchOverheadS + cal::kDeviceInitOverheadS);
    return result;
  }

  const std::uint64_t warps =
      static_cast<std::uint64_t>(blocks) * tpb / dev.warp_size;
  const auto ranges = combi::divide_work(total, warps);
  std::uint64_t budget_per_thread = ~std::uint64_t{0};
  if (opts.max_simulated_tests > 0 && opts.max_simulated_tests < total)
    budget_per_thread = std::max<std::uint64_t>(
        1, opts.max_simulated_tests /
               (static_cast<std::uint64_t>(blocks) * tpb));

  // Per-warp functional output slots (simulator thread-safety contract).
  std::vector<std::uint64_t> warp_found(warps, 0);
  std::vector<std::uint64_t> warp_simulated(warps, 0);
  const double instr_per_test =
      cal::kGpuInstructionsPerTest * (static_cast<double>(k) *
                                      static_cast<double>(k - 1) / 6.0);

  const gpusim::KernelFn kernel = [&](const gpusim::ThreadCtx& ctx,
                                      gpusim::ThreadRecorder& rec) {
    const std::uint64_t warp_id = ctx.global_id / dev.warp_size;
    const auto& range = ranges[warp_id];
    const std::uint64_t warp_budget =
        budget_per_thread == ~std::uint64_t{0}
            ? range.size()
            : std::min<std::uint64_t>(range.size(),
                                      budget_per_thread * dev.warp_size);

    std::uint32_t combo[16];
    Vertex verts[16];
    for (std::uint64_t pos = ctx.lane; pos < warp_budget;
         pos += dev.warp_size) {
      const std::uint64_t flat = range.begin + pos;
      const WindowJob& w = window_for(windows, flat);
      decode_candidate(w, k, flat - w.offset,
                       std::span<std::uint32_t>(combo, k));
      for (std::uint32_t j = 0; j < k; ++j) verts[j] = w.locals[combo[j]];

      rec.compute(instr_per_test);
      for (std::uint32_t a = 0; a < k; ++a)
        for (std::uint32_t b = a + 1; b < k; ++b)
          rec.global_read(
              matrix,
              static_cast<std::uint64_t>(verts[a]) * row_bytes +
                  (static_cast<std::uint64_t>(verts[b]) >> 5) * 4,
              4);
      if (accept(std::span<const Vertex>(verts, k), ctx.global_warp))
        ++warp_found[ctx.global_warp];
      ++warp_simulated[ctx.global_warp];
    }
  };

  gpusim::KernelConfig config;
  config.name = "kcount";
  config.blocks = blocks;
  config.threads_per_block = tpb;

  // Sancheck wiring: the adjacency matrix is staged by the host.
  std::optional<sancheck::TapeAnalyzer> analyzer;
  if (opts.sancheck != sancheck::SancheckMode::kOff) {
    sancheck::SancheckConfig sc;
    sc.mode = opts.sancheck;
    sc.staged = {matrix};
    analyzer.emplace(std::move(sc), mem);
  }
  {
    obs::Scope span(opts.obs, config.name, "launch");
    result.kernel = sim.run(kernel, config, 1, opts.exec,
                            analyzer ? &*analyzer : nullptr);

    // Deterministic reduction: fold per-warp slots in warp order.
    std::uint64_t found = 0, simulated = 0;
    for (std::uint64_t wid = 0; wid < warps; ++wid) {
      found += warp_found[wid];
      simulated += warp_simulated[wid];
    }
    result.simulated_tests = simulated;
    result.count = found;
    result.exact = simulated == total;
    if (!result.exact && simulated > 0)
      rescale(result.kernel,
              static_cast<double>(total) / static_cast<double>(simulated),
              dev);

    // Span duration and counters use the final (post-rescale) report.
    span.model_s(result.kernel.kernel_time_s);
    if (span) span.arg("transactions", result.kernel.transactions);
  }
  obs::record_kernel(opts.obs, result.kernel);
  driver.model_s(cal::kDispatchOverheadS + cal::kDeviceInitOverheadS);

  result.total_time_s = result.transfer.time_s + cal::kDispatchOverheadS +
                        cal::kDeviceInitOverheadS +
                        result.kernel.kernel_time_s;
  return result;
}

}  // namespace

sancheck::FootprintSpec subgraph_footprint_spec(
    const Graph& g, std::uint32_t k, std::uint32_t window_levels,
    const GpuKCountOptions& opts) {
  LGG_CHECK(k >= 1 && k <= 16, "GPU k-count supports 1 <= k <= 16");
  LGG_CHECK(window_levels >= 1, "window_levels must be positive");
  const gpusim::DeviceSpec& dev =
      opts.device ? *opts.device : gpusim::tesla_c1060();
  const std::uint32_t blocks = opts.blocks ? opts.blocks : 2 * dev.sm_count;
  const std::uint32_t tpb = opts.threads_per_block;
  LGG_CHECK(tpb >= dev.warp_size && tpb % dev.warp_size == 0,
            "threads_per_block must be a positive multiple of the warp size");

  std::uint64_t total = 0;
  const std::vector<WindowJob> windows =
      build_windows(g, window_levels, k, total);

  gpusim::DeviceMemory mem(dev);  // scratch: only the addresses matter
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t row_bytes = ((n + 31) / 32) * 4;
  const gpusim::Buffer matrix =
      mem.alloc(std::max<std::uint64_t>(n * row_bytes, 4));

  sancheck::FootprintSpec spec;
  spec.name = "gpu/subgraph";
  spec.total_tests = total;
  spec.warp_size = dev.warp_size;
  spec.warp_interleaved = true;
  spec.division = sancheck::WorkDivision::kDivideWork;
  spec.workers = static_cast<std::uint64_t>(blocks) * tpb / dev.warp_size;
  spec.blocks.push_back({matrix.base, matrix.bytes, row_bytes});
  spec.jobs.reserve(windows.size());
  for (const WindowJob& w : windows) {
    sancheck::FootprintJob fj;
    fj.test_offset = w.offset;
    fj.tests = w.tests;
    fj.s = w.s;
    fj.x_max = w.x_max;
    fj.k = k;
    // The C(k,2) pair probes use GLOBAL vertex ids against the shared
    // matrix, so the whole-graph vertex count bounds the addressing.
    fj.index_bound = n;
    fj.block = 0;
    spec.jobs.push_back(fj);
  }
  return spec;
}

GpuKCountResult count_kcliques_gpu(const Graph& g, std::uint32_t k,
                                   const GpuKCountOptions& opts) {
  return run_kcount(g, k, /*window_levels=*/2, opts,
                    [&](std::span<const Vertex> vs, std::uint64_t) {
                      for (std::size_t a = 0; a < vs.size(); ++a)
                        for (std::size_t b = a + 1; b < vs.size(); ++b)
                          if (!g.has_edge(vs[a], vs[b])) return false;
                      return true;
                    });
}

GpuKCountResult count_connected_subgraphs_gpu(const Graph& g,
                                              std::uint32_t k,
                                              const GpuKCountOptions& opts) {
  return run_kcount(g, k, /*window_levels=*/k, opts,
                    [&](std::span<const Vertex> vs, std::uint64_t) {
                      return induced_connected(g, vs);
                    });
}

GpuTriangleListing list_triangles_gpu(const Graph& g,
                                      const GpuKCountOptions& opts) {
  const gpusim::DeviceSpec& dev =
      opts.device ? *opts.device : gpusim::tesla_c1060();

  GpuTriangleListing listing;
  std::vector<std::array<Vertex, 3>> out;

  // Reuse the k-count machinery with k = 3 and an accept hook that also
  // records the output write traffic.  The output buffer is allocated
  // address space only; appends go to consecutive 12-byte slots, which
  // coalesce well when neighbouring lanes find triangles together.
  gpusim::DeviceMemory scratch(dev);
  const std::uint64_t out_capacity = 64ull << 20;  // 64 MiB listing buffer
  // Reserve the matrix region first so the output buffer's addresses do
  // not alias it (mirrors the real allocation order in run_kcount).
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t row_bytes = ((n + 31) / 32) * 4;
  (void)scratch.alloc(std::max<std::uint64_t>(n * row_bytes, 4));
  const gpusim::Buffer out_buffer = scratch.alloc(out_capacity);

  GpuKCountOptions inner = opts;
  GpuKCountResult base;
  {
    // The accept hook needs per-thread recorders; easiest faithful
    // approach: run the counting kernel, then account the output writes
    // analytically (3 coalesced 4-byte writes per found triangle; one
    // 64-byte transaction per half-warp-worth of finds).
    //
    // The hook appends into a per-warp listing slot (warps replay
    // concurrently); the slots are concatenated in warp order below,
    // which reproduces the serial append order exactly.
    const std::uint32_t list_blocks =
        inner.blocks ? inner.blocks : 2 * dev.sm_count;
    const std::uint64_t list_warps =
        static_cast<std::uint64_t>(list_blocks) * inner.threads_per_block /
        dev.warp_size;
    std::vector<std::vector<std::array<Vertex, 3>>> warp_out(list_warps);
    base = run_kcount(
        g, 3, 2, inner,
        [&](std::span<const Vertex> vs, std::uint64_t global_warp) {
          if (g.has_edge(vs[0], vs[1]) && g.has_edge(vs[1], vs[2]) &&
              g.has_edge(vs[0], vs[2])) {
            std::array<Vertex, 3> tri{vs[0], vs[1], vs[2]};
            std::sort(tri.begin(), tri.end());
            warp_out[global_warp].push_back(tri);
            return true;
          }
          return false;
        });
    for (const auto& w : warp_out)
      out.insert(out.end(), w.begin(), w.end());
  }

  listing.exact = base.exact;
  listing.total_tests = base.total_tests;
  listing.transfer = base.transfer;
  listing.kernel = base.kernel;
  listing.output_bytes = static_cast<std::uint64_t>(out.size()) * 12;
  LGG_CHECK(listing.output_bytes <= out_capacity,
            "triangle listing exceeds the 64 MiB output buffer");

  // Charge the append traffic: 12 bytes per triangle, written through
  // 64-byte coalesced transactions.
  const std::uint64_t extra_txns = (listing.output_bytes + 63) / 64;
  listing.kernel.transactions += extra_txns;
  listing.kernel.bytes += listing.output_bytes;
  const gpusim::PartitionModel pm(dev);
  for (std::uint64_t t = 0; t < extra_txns; ++t)
    listing.kernel.partition_histogram.add(pm, out_buffer.base + t * 64);
  listing.kernel.camping_factor =
      listing.kernel.partition_histogram.camping_factor();
  const std::uint64_t dram_steps =
      dev.has_cached_global()
          ? listing.kernel.partition_histogram.ideal_steps()
          : listing.kernel.partition_histogram.serialized_steps();
  listing.kernel.dram_cycles =
      static_cast<double>(dram_steps) * cal::kTransactionServiceCycles;
  const double cycles =
      std::max({listing.kernel.compute_cycles, listing.kernel.latency_cycles,
                listing.kernel.dram_cycles});
  listing.kernel.kernel_time_s =
      cycles / (dev.core_clock_ghz * 1e9) + cal::kKernelLaunchOverheadS;

  if (base.exact) {
    std::sort(out.begin(), out.end());
    listing.triangles = std::move(out);
  }
  listing.total_time_s = listing.transfer.time_s + cal::kDispatchOverheadS +
                         cal::kDeviceInitOverheadS +
                         listing.kernel.kernel_time_s;
  return listing;
}

}  // namespace lgg::core

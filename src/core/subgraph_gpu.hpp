// Generalised size-k subgraph counting and triangle LISTING on the
// simulated GPU — the Section III/VII extensions of the triangle kernel:
//
//  * k-cliques span at most two adjacent BFS levels, so the clique kernel
//    reuses the two-level window machinery with C(k,2) adjacency probes
//    per candidate;
//  * connected induced subgraphs of size k span at most k consecutive
//    levels; the kernel probes all C(k,2) pairs and the host predicate
//    checks induced connectivity;
//  * listing (Section VII's second flavour) augments the triangle kernel
//    with coalesced writes of each found triangle to a device output
//    buffer.
//
// Work division follows Section VIII-D exactly: a flat index space over
// all (window, first-vertex, suffix-combination) candidates, unranked
// per-thread via the hockey-stick identity plus combinadic decoding.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/report.hpp"
#include "obs/obs.hpp"
#include "sancheck/footprint.hpp"
#include "sancheck/sancheck.hpp"

namespace lgg::core {

struct GpuKCountOptions {
  /// Device to simulate; nullptr selects the paper's C1060.
  const gpusim::DeviceSpec* device = nullptr;
  std::uint32_t blocks = 0;  // 0 = 2 x SM count
  std::uint32_t threads_per_block = 128;
  /// Cap on candidates simulated (0 = all); statistics rescale, `exact`
  /// clears, as in count_triangles_gpu.
  std::uint64_t max_simulated_tests = 0;
  /// Host-side simulator execution policy (parallel by default;
  /// bit-identical to serial).
  gpusim::ExecPolicy exec;
  /// Hazard analysis of the launch (sancheck/sancheck.hpp).
  sancheck::SancheckMode sancheck = sancheck::SancheckMode::kOff;
  /// Optional fault hook (non-owning) installed on the driver's
  /// DeviceMemory and Simulator; fired faults surface as
  /// gpusim::DeviceFault (DESIGN.md §11).
  gpusim::FaultHook* faults = nullptr;
  /// Optional observability session: transfer/launch spans plus gpusim
  /// counters (DESIGN.md §12).
  obs::Session* obs = nullptr;
};

struct GpuKCountResult {
  std::uint64_t count = 0;  // valid only when exact
  bool exact = true;
  std::uint64_t total_tests = 0;
  std::uint64_t simulated_tests = 0;
  gpusim::TransferReport transfer;
  gpusim::KernelReport kernel;
  double total_time_s = 0.0;
};

/// Count k-cliques on the simulated GPU (k >= 1).  Agrees with
/// count_kcliques / count_kcliques_als on exact runs.
GpuKCountResult count_kcliques_gpu(const graph::Graph& g, std::uint32_t k,
                                   const GpuKCountOptions& opts = {});

/// Count connected induced k-subgraphs on the simulated GPU.  Agrees with
/// count_connected_subgraphs on exact runs.
GpuKCountResult count_connected_subgraphs_gpu(
    const graph::Graph& g, std::uint32_t k, const GpuKCountOptions& opts = {});

struct GpuTriangleListing {
  std::vector<std::array<graph::Vertex, 3>> triangles;  // exact runs only
  bool exact = true;
  std::uint64_t total_tests = 0;
  std::uint64_t output_bytes = 0;  // device buffer traffic for the listing
  gpusim::TransferReport transfer;
  gpusim::KernelReport kernel;
  double total_time_s = 0.0;
};

/// Triangle LISTING (Section VII): like the counting kernel, but every
/// found triangle is appended to a device output buffer (three 4-byte
/// writes), which shows up in the transaction/bandwidth accounting.
GpuTriangleListing list_triangles_gpu(const graph::Graph& g,
                                      const GpuKCountOptions& opts = {});

/// Static footprint spec of the k-count launch shared by
/// count_kcliques_gpu (window_levels = 2) and
/// count_connected_subgraphs_gpu (window_levels = k): one combinadic job
/// per BFS-level window with the generalised hockey-stick accounting
/// C(s,k) - C(s-x_max,k), all probing the shared whole-graph matrix by
/// global vertex id.
sancheck::FootprintSpec subgraph_footprint_spec(
    const graph::Graph& g, std::uint32_t k, std::uint32_t window_levels,
    const GpuKCountOptions& opts = {});

}  // namespace lgg::core

#include "core/timing_model.hpp"

#include "gpusim/calibration.hpp"

namespace lgg::core {

namespace cal = gpusim::calibration;

double cpu_model_time_s(const CpuAlsResult& result) {
  const double cycles =
      static_cast<double>(result.tests) * cal::kCpuCyclesPerTest +
      static_cast<double>(result.bfs_edges) * cal::kCpuCyclesPerBfsEdge;
  return cycles / (cal::kCpuClockGhz * 1e9);
}

double cpu_model_time_s(const AlsPlan& plan) {
  const double cycles =
      static_cast<double>(plan.total_tests) * cal::kCpuCyclesPerTest +
      static_cast<double>(plan.bfs_edges_visited) * cal::kCpuCyclesPerBfsEdge;
  return cycles / (cal::kCpuClockGhz * 1e9);
}

}  // namespace lgg::core

// Paper-era CPU time model.
//
// The Fig. 10/11 benches compare "modelled seconds" on the paper's two
// machines: a single 2.27 GHz Xeon thread and the simulated C1060.  The
// GPU side is priced by gpusim; this header prices the CPU side from the
// operation counts of the actual Algorithm 1 + Algorithm 2 run (or, for
// graphs too large to execute the quadratic test loop here, from the
// combinatorial test counts of the ALS plan).
#pragma once

#include <cstdint>

#include "core/als_plan.hpp"
#include "core/triangle_cpu.hpp"

namespace lgg::core {

/// Modelled single-thread CPU seconds for a measured ALS run.
double cpu_model_time_s(const CpuAlsResult& result);

/// Modelled CPU seconds from an ALS plan alone (no execution): assumes
/// every candidate triple costs the calibrated per-test cycles, using the
/// plan's exact test counts.  Used when executing the test loop host-side
/// would take hours (Fig. 11's 25k–100k-node graphs).
double cpu_model_time_s(const AlsPlan& plan);

}  // namespace lgg::core

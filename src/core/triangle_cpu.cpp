#include "core/triangle_cpu.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "util/bits.hpp"
#include "util/error.hpp"

namespace lgg::core {

using graph::Graph;
using graph::Vertex;

namespace {

/// Size of the intersection of two sorted vertex lists.
std::uint64_t intersection_size(std::span<const Vertex> a,
                                std::span<const Vertex> b) {
  std::uint64_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib)
      ++ia;
    else if (*ib < *ia)
      ++ib;
    else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

}  // namespace

std::uint64_t count_triangles_edge_iterator(const Graph& g) {
  std::uint64_t total = 0;
  for (Vertex u = 0; u < g.num_vertices(); ++u)
    for (const Vertex v : g.neighbors(u))
      if (u < v) total += intersection_size(g.neighbors(u), g.neighbors(v));
  // Each triangle {u,v,w} is found once per edge: 3 times.
  return total / 3;
}

std::uint64_t count_triangles_forward(const Graph& g) {
  const std::size_t n = g.num_vertices();
  // Rank vertices by (degree, id); orient every edge toward higher rank.
  std::vector<std::uint32_t> rank(n);
  {
    std::vector<Vertex> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](Vertex x, Vertex y) {
      const auto dx = g.degree(x), dy = g.degree(y);
      return dx != dy ? dx < dy : x < y;
    });
    for (std::uint32_t r = 0; r < n; ++r) rank[order[r]] = r;
  }

  std::vector<std::vector<Vertex>> out(n);
  for (Vertex u = 0; u < n; ++u)
    for (const Vertex v : g.neighbors(u))
      if (rank[u] < rank[v]) out[u].push_back(v);
  // Neighbour lists are sorted by id already; keep that order for merging.

  std::uint64_t total = 0;
  for (Vertex u = 0; u < n; ++u)
    for (const Vertex v : out[u])
      total += intersection_size(out[u], out[v]);
  return total;
}

std::uint64_t count_triangles_bitmatrix(const graph::BitMatrix& m) {
  std::uint64_t total = 0;
  const std::size_t n = m.size();
  for (std::size_t u = 0; u < n; ++u) {
    const auto row_u = m.row(u);
    for_each_set_bit(row_u, [&](std::size_t v) {
      if (v > u) total += and_popcount(row_u, m.row(v));
    });
  }
  // Each triangle counted once per edge (u < v), and the AND picks up both
  // w < u and w > v etc.: every triangle appears 3 times in total.
  return total / 3;
}

CpuAlsResult count_triangles_cpu_als(const Graph& g) {
  CpuAlsResult result;
  const AlsPlan plan = build_als_plan(g);
  result.bfs_edges = plan.bfs_edges_visited;

  for (const AlsJob& job : plan.jobs) {
    if (job.tests == 0) continue;
    TestTriple t{0, 1, 2};
    // Walk the whole local test space in index order, short-circuiting the
    // second and third probes — the natural scalar implementation.
    bool more = true;
    while (more) {
      ++result.tests;
      const Vertex u = job.local_to_global[t.x];
      const Vertex v = job.local_to_global[t.y];
      const Vertex w = job.local_to_global[t.z];
      ++result.adjacency_probes;
      if (g.has_edge(u, v)) {
        ++result.adjacency_probes;
        if (g.has_edge(v, w)) {
          ++result.adjacency_probes;
          if (g.has_edge(u, w)) ++result.triangles;
        }
      }
      more = als_advance_test(job, t);
    }
  }
  return result;
}

std::vector<std::array<Vertex, 3>> list_triangles(const Graph& g) {
  std::vector<std::array<Vertex, 3>> out;
  const AlsPlan plan = build_als_plan(g);
  for (const AlsJob& job : plan.jobs) {
    if (job.tests == 0) continue;
    TestTriple t{0, 1, 2};
    bool more = true;
    while (more) {
      const Vertex u = job.local_to_global[t.x];
      const Vertex v = job.local_to_global[t.y];
      const Vertex w = job.local_to_global[t.z];
      if (g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w)) {
        std::array<Vertex, 3> tri{u, v, w};
        std::sort(tri.begin(), tri.end());
        out.push_back(tri);
      }
      more = als_advance_test(job, t);
    }
  }
  return out;
}

bool is_triangle_free(const Graph& g) {
  for (Vertex u = 0; u < g.num_vertices(); ++u)
    for (const Vertex v : g.neighbors(u))
      if (u < v && intersection_size(g.neighbors(u), g.neighbors(v)) > 0)
        return false;
  return true;
}

std::vector<std::uint64_t> triangles_per_vertex(const Graph& g) {
  std::vector<std::uint64_t> count(g.num_vertices(), 0);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const auto nu = g.neighbors(u);
    for (const Vertex v : nu) {
      if (v <= u) continue;
      const auto nv = g.neighbors(v);
      auto ia = nu.begin();
      auto ib = nv.begin();
      while (ia != nu.end() && ib != nv.end()) {
        if (*ia < *ib)
          ++ia;
        else if (*ib < *ia)
          ++ib;
        else {
          const Vertex w = *ia;
          if (w > v) {  // count each triangle once, at its lowest edge
            ++count[u];
            ++count[v];
            ++count[w];
          }
          ++ia;
          ++ib;
        }
      }
    }
  }
  return count;
}

std::vector<double> clustering_coefficients(const Graph& g) {
  const std::vector<std::uint64_t> tri = triangles_per_vertex(g);
  std::vector<double> cc(g.num_vertices(), 0.0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t d = g.degree(v);
    if (d >= 2)
      cc[v] = 2.0 * static_cast<double>(tri[v]) /
              (static_cast<double>(d) * static_cast<double>(d - 1));
  }
  return cc;
}

double transitivity(const Graph& g) {
  std::uint64_t wedges = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t d = g.degree(v);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(count_triangles_forward(g)) /
         static_cast<double>(wedges);
}

}  // namespace lgg::core

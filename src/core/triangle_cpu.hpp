// CPU triangle counting: the paper's single-thread reference (Algorithm 2
// run on the host) plus standard exact baselines used as oracles and as
// the fast counter for large-graph benches.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/als_plan.hpp"
#include "graph/bit_matrix.hpp"
#include "graph/graph.hpp"

namespace lgg::core {

/// Edge-iterator algorithm: for every edge (u, v), count common neighbours
/// by sorted-list intersection.  O(sum_deg^2 / ...) — simple oracle.
std::uint64_t count_triangles_edge_iterator(const graph::Graph& g);

/// Forward / oriented algorithm: orient edges low->high degree (ties by
/// id), intersect out-neighbourhoods.  O(m^(3/2)) — the fast exact counter
/// used to report true counts on the large Fig. 11 graphs.
std::uint64_t count_triangles_forward(const graph::Graph& g);

/// Dense bit-matrix algorithm: ϑ = (1/3) Σ_{(u,v)∈E} |row_u AND row_v|
/// over the packed adjacency matrix.  O(n·m/64) — oracle for small n and
/// the S-UTM representation check.
std::uint64_t count_triangles_bitmatrix(const graph::BitMatrix& m);

/// The paper's CPU implementation: Algorithm 1 preprocessing (BFS + level
/// split) followed by Algorithm 2 over adjacent level sets, single thread,
/// testing each candidate triple with three adjacency probes
/// (short-circuiting).  Also returns the operation counts the calibrated
/// timing model prices (see core/timing_model.hpp).
struct CpuAlsResult {
  std::uint64_t triangles = 0;
  std::uint64_t tests = 0;          // candidate triples examined
  std::uint64_t adjacency_probes = 0;
  std::uint64_t bfs_edges = 0;      // Algorithm 1 work
};
CpuAlsResult count_triangles_cpu_als(const graph::Graph& g);

/// Triangle listing (paper Section VII "listing" flavour): returns each
/// triangle once as an ordered triple u < v < w.  Order of triangles
/// follows the ALS plan.
std::vector<std::array<graph::Vertex, 3>> list_triangles(
    const graph::Graph& g);

/// True iff the graph has no triangle (clique number <= 2, girth >= 4).
bool is_triangle_free(const graph::Graph& g);

/// Per-vertex local clustering coefficient: 2*tri(v) / (deg(v)(deg(v)-1));
/// 0 for degree < 2.  (One of the paper's motivating statistics.)
std::vector<double> clustering_coefficients(const graph::Graph& g);

/// Transitivity ratio: 3 * triangles / number-of-connected-triples.
double transitivity(const graph::Graph& g);

/// Number of triangles through each vertex.
std::vector<std::uint64_t> triangles_per_vertex(const graph::Graph& g);

}  // namespace lgg::core

#include "core/triangle_gpu.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "combi/strategies.hpp"
#include "gpusim/calibration.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/occupancy.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace lgg::core {

namespace cal = gpusim::calibration;
using combi::divide_work;
using gpusim::Buffer;

const char* gpu_layout_name(GpuLayout layout) noexcept {
  switch (layout) {
    case GpuLayout::kNaive:
      return "naive";
    case GpuLayout::kCoalesced:
      return "coalesced";
    case GpuLayout::kCoalescedAntiCamping:
      return "coalesced+anti-camping";
  }
  return "?";
}

namespace {

/// Device data placement for one run.
struct Layout {
  bool per_job = false;        // true for kCoalescedAntiCamping
  Buffer matrix;               // single whole-graph matrix (shared layouts)
  std::uint64_t row_bytes = 0; // stride of the single matrix
  std::vector<Buffer> blocks;  // per-ALS blocks
  std::vector<std::uint64_t> strides;  // per-ALS row strides
  std::uint64_t total_bytes = 0;

  /// Address of the 4-byte word holding adjacency bit (i, j) for job r.
  /// Shared layouts use global vertex ids; per-job layouts use local ids.
  [[nodiscard]] std::uint64_t word_addr(std::size_t r, std::uint32_t i,
                                        std::uint32_t j) const {
    if (per_job)
      return blocks[r].addr(static_cast<std::uint64_t>(i) * strides[r] +
                            (static_cast<std::uint64_t>(j) >> 5) * 4);
    return matrix.addr(static_cast<std::uint64_t>(i) * row_bytes +
                       (static_cast<std::uint64_t>(j) >> 5) * 4);
  }
};

Layout build_layout(const graph::Graph& g, const AlsPlan& plan,
                    GpuLayout kind, gpusim::DeviceMemory& mem) {
  Layout layout;
  if (kind == GpuLayout::kCoalescedAntiCamping) {
    layout.per_job = true;
    layout.blocks.reserve(plan.jobs.size());
    layout.strides.reserve(plan.jobs.size());
    const std::uint32_t partitions = mem.spec().partitions;
    for (std::size_t r = 0; r < plan.jobs.size(); ++r) {
      const AlsJob& job = plan.jobs[r];
      // Fig. 9 layout: pad each row to a 256-byte (partition-width)
      // multiple, then add a 32-byte stagger so successive rows rotate
      // through the partitions (the matrix-transpose padding trick the
      // paper cites).  This is the "redundant information" cost the paper
      // accepts in exchange for camping-free access.
      const std::uint64_t natural = ((job.s + 31) / 32) * 4;
      const std::uint64_t stride =
          lgg::round_up_pow2(std::max<std::uint64_t>(natural, 4), 256) + 32;
      const std::uint64_t bytes =
          std::max<std::uint64_t>(static_cast<std::uint64_t>(job.s) * stride, 4);
      layout.blocks.push_back(mem.alloc_in_partition(
          bytes, static_cast<std::uint32_t>(r % partitions)));
      layout.strides.push_back(stride);
      layout.total_bytes += bytes;
    }
  } else {
    const std::uint64_t n = g.num_vertices();
    layout.row_bytes = ((n + 31) / 32) * 4;
    const std::uint64_t bytes = std::max<std::uint64_t>(n * layout.row_bytes, 4);
    layout.matrix = mem.alloc(bytes);
    layout.total_bytes = bytes;
  }
  return layout;
}

/// Incremental position in the flat test space: resolves a flat index to
/// (job, x, y, z), exploiting that consecutive queries usually advance z
/// within the same job.
class TestCursor {
 public:
  explicit TestCursor(const AlsPlan& plan) : plan_(&plan) {}

  void seek(std::uint64_t flat) {
    LGG_ASSERT(flat < plan_->total_tests);
    if (has_pos_ && flat >= flat_) {
      const AlsJob& j = plan_->jobs[job_];
      const std::uint64_t local = flat - j.test_offset;
      if (local < j.tests) {
        const std::uint64_t delta = flat - flat_;
        if (delta > 0 && triple_.z + delta < j.s) {
          triple_.z += static_cast<std::uint32_t>(delta);
        } else if (delta > 0) {
          triple_ = als_decode_test(j, local);
        }
        flat_ = flat;
        return;
      }
    }
    // Locate the covering job: last job with test_offset <= flat (zero-test
    // jobs have empty intervals and never cover anything).
    auto it = std::upper_bound(
        plan_->jobs.begin(), plan_->jobs.end(), flat,
        [](std::uint64_t f, const AlsJob& j) { return f < j.test_offset; });
    LGG_ASSERT(it != plan_->jobs.begin());
    --it;
    job_ = static_cast<std::size_t>(it - plan_->jobs.begin());
    LGG_ASSERT(flat - it->test_offset < it->tests);
    triple_ = als_decode_test(*it, flat - it->test_offset);
    flat_ = flat;
    has_pos_ = true;
  }

  [[nodiscard]] std::size_t job_index() const noexcept { return job_; }
  [[nodiscard]] const AlsJob& job() const noexcept {
    return plan_->jobs[job_];
  }
  [[nodiscard]] const TestTriple& triple() const noexcept { return triple_; }

 private:
  const AlsPlan* plan_;
  std::size_t job_ = 0;
  TestTriple triple_{};
  std::uint64_t flat_ = 0;
  bool has_pos_ = false;
};

}  // namespace

GpuTriangleResult count_triangles_gpu(const graph::Graph& g,
                                      const GpuTriangleOptions& opts) {
  const gpusim::DeviceSpec& dev =
      opts.device ? *opts.device : gpusim::tesla_c1060();
  const std::uint32_t blocks =
      opts.blocks ? opts.blocks : 2 * dev.sm_count;
  const std::uint32_t tpb = opts.threads_per_block;
  LGG_CHECK(tpb >= dev.warp_size && tpb % dev.warp_size == 0,
            "threads_per_block must be a positive multiple of the warp size");

  obs::Scope driver(opts.obs, "gpu/triangle", "driver");
  if (driver) {
    driver.arg("layout", gpu_layout_name(opts.layout));
    driver.arg("blocks", static_cast<std::uint64_t>(blocks));
    driver.arg("threads_per_block", static_cast<std::uint64_t>(tpb));
  }

  GpuTriangleResult result;
  AlsPlan plan;
  {
    obs::Scope span(opts.obs, "plan/bfs+als", "plan");
    plan = build_als_plan(g);
    result.total_tests = plan.total_tests;
    result.preprocessing_s = static_cast<double>(plan.bfs_edges_visited) *
                             cal::kCpuCyclesPerBfsEdge /
                             (cal::kCpuClockGhz * 1e9);
    span.model_s(result.preprocessing_s);
    if (span) {
      span.arg("jobs", static_cast<std::uint64_t>(plan.jobs.size()));
      span.arg("total_tests", plan.total_tests);
      span.arg("bfs_edges", plan.bfs_edges_visited);
    }
  }

  gpusim::DeviceMemory mem(dev, opts.faults);
  const Layout layout = build_layout(g, plan, opts.layout, mem);
  result.device_bytes = layout.total_bytes;

  const gpusim::Simulator sim(dev, opts.faults);
  {
    obs::Scope span(opts.obs, "transfer/h2d", "transfer");
    result.transfer = sim.transfer(layout.total_bytes);
    span.model_s(result.transfer.time_s);
    if (span) span.arg("bytes", result.transfer.bytes);
  }
  obs::record_transfer(opts.obs, result.transfer);
  if (opts.obs != nullptr) {
    const gpusim::OccupancyResult occ = gpusim::occupancy(dev, {tpb});
    obs::record_occupancy(opts.obs, occ.occupancy);
  }

  if (plan.total_tests == 0) {
    result.total_time_s = result.preprocessing_s + result.transfer.time_s +
                          cal::kDispatchOverheadS +
                          cal::kDeviceInitOverheadS;
    driver.model_s(cal::kDispatchOverheadS + cal::kDeviceInitOverheadS);
    return result;
  }

  // Per-thread simulation budget (test sampling for large graphs).
  const std::uint64_t threads = static_cast<std::uint64_t>(blocks) * tpb;
  const std::uint64_t warps = threads / dev.warp_size;
  std::uint64_t budget_per_thread = ~std::uint64_t{0};
  if (opts.max_simulated_tests > 0 &&
      opts.max_simulated_tests < plan.total_tests) {
    budget_per_thread =
        std::max<std::uint64_t>(1, opts.max_simulated_tests / threads);
  }

  const bool warp_interleaved = opts.layout != GpuLayout::kNaive;
  obs::Scope sched(opts.obs, "schedule/work-division", "schedule");
  const auto thread_ranges = warp_interleaved
                                 ? divide_work(plan.total_tests, warps)
                                 : divide_work(plan.total_tests, threads);
  if (sched) {
    sched.arg("workers", static_cast<std::uint64_t>(thread_ranges.size()));
    sched.arg("warp_interleaved", warp_interleaved);
  }
  sched.close();

  // Per-warp functional output slots: the simulator may replay warps
  // concurrently, so every mutable capture below is indexed by
  // ctx.global_warp (lanes of one warp run sequentially on one host
  // thread).  All other captures are read-only for the launch.
  std::vector<std::uint64_t> warp_triangles(warps, 0);
  std::vector<std::uint64_t> warp_simulated(warps, 0);

  const gpusim::KernelFn kernel = [&](const gpusim::ThreadCtx& ctx,
                                      gpusim::ThreadRecorder& rec) {
    TestCursor cursor(plan);

    std::uint64_t first = 0, count = 0, stride = 1;
    if (warp_interleaved) {
      const std::uint64_t warp_id = ctx.global_id / dev.warp_size;
      const auto& range = thread_ranges[warp_id];
      // Lane l takes indices begin+l, begin+l+32, ... within the warp's
      // (possibly budget-truncated) range.
      const std::uint64_t warp_budget =
          budget_per_thread == ~std::uint64_t{0}
              ? range.size()
              : std::min<std::uint64_t>(range.size(),
                                        budget_per_thread * dev.warp_size);
      first = range.begin + ctx.lane;
      stride = dev.warp_size;
      count = warp_budget > ctx.lane
                  ? (warp_budget - ctx.lane + stride - 1) / stride
                  : 0;
    } else {
      const auto& range = thread_ranges[ctx.global_id];
      first = range.begin;
      stride = 1;
      count = std::min<std::uint64_t>(range.size(), budget_per_thread);
    }

    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t flat = first + i * stride;
      cursor.seek(flat);
      const AlsJob& job = cursor.job();
      const TestTriple& t = cursor.triple();
      const std::size_t r = cursor.job_index();

      // Charge the index arithmetic and issue the three adjacency reads.
      rec.compute(cal::kGpuInstructionsPerTest);
      if (layout.per_job) {
        rec.global_read({layout.blocks[r].base, layout.blocks[r].bytes},
                        layout.word_addr(r, t.x, t.y) - layout.blocks[r].base,
                        4);
        rec.global_read({layout.blocks[r].base, layout.blocks[r].bytes},
                        layout.word_addr(r, t.y, t.z) - layout.blocks[r].base,
                        4);
        rec.global_read({layout.blocks[r].base, layout.blocks[r].bytes},
                        layout.word_addr(r, t.x, t.z) - layout.blocks[r].base,
                        4);
      } else {
        const graph::Vertex u = job.local_to_global[t.x];
        const graph::Vertex v = job.local_to_global[t.y];
        const graph::Vertex w = job.local_to_global[t.z];
        rec.global_read(layout.matrix,
                        layout.word_addr(r, u, v) - layout.matrix.base, 4);
        rec.global_read(layout.matrix,
                        layout.word_addr(r, v, w) - layout.matrix.base, 4);
        rec.global_read(layout.matrix,
                        layout.word_addr(r, u, w) - layout.matrix.base, 4);
      }

      // Functional result (host-side probes, short-circuit).
      const graph::Vertex u = job.local_to_global[t.x];
      const graph::Vertex v = job.local_to_global[t.y];
      const graph::Vertex w = job.local_to_global[t.z];
      if (g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w))
        ++warp_triangles[ctx.global_warp];
      ++warp_simulated[ctx.global_warp];
    }
  };

  gpusim::KernelConfig config;
  config.name = std::string("triangles/") + gpu_layout_name(opts.layout);
  config.blocks = blocks;
  config.threads_per_block = tpb;

  // Sancheck wiring: the host stages the whole adjacency layout before the
  // launch, so every read from it is initialised by definition.
  std::optional<sancheck::TapeAnalyzer> analyzer;
  if (opts.sancheck != sancheck::SancheckMode::kOff) {
    sancheck::SancheckConfig sc;
    sc.mode = opts.sancheck;
    sc.staged = layout.per_job ? layout.blocks
                               : std::vector<Buffer>{layout.matrix};
    analyzer.emplace(std::move(sc), mem);
  }
  {
    obs::Scope span(opts.obs, config.name, "launch");
    result.kernel = sim.run(kernel, config, 1, opts.exec,
                            analyzer ? &*analyzer : nullptr, opts.prof);

    // Deterministic reduction: fold per-warp slots in warp order.
    std::uint64_t triangles = 0;
    std::uint64_t simulated = 0;
    for (std::uint64_t wid = 0; wid < warps; ++wid) {
      triangles += warp_triangles[wid];
      simulated += warp_simulated[wid];
    }

    result.simulated_tests = simulated;
    result.triangles = triangles;
    result.exact = simulated == plan.total_tests;

    // Rescale traffic/timing when the budget truncated the simulation:
    // every charge scales linearly with the number of tests, so the cycle
    // terms and the DRAM histogram scale by the same factor.
    if (!result.exact && simulated > 0) {
      const double f = static_cast<double>(plan.total_tests) /
                       static_cast<double>(simulated);
      auto scale_u64 = [f](std::uint64_t v) {
        return static_cast<std::uint64_t>(static_cast<double>(v) * f);
      };
      gpusim::KernelReport& k = result.kernel;
      k.global_slots = scale_u64(k.global_slots);
      k.transactions = scale_u64(k.transactions);
      k.bytes = scale_u64(k.bytes);
      k.shared_slots = scale_u64(k.shared_slots);
      k.bank_conflict_steps = scale_u64(k.bank_conflict_steps);
      k.warp_instructions *= f;
      for (auto& c : k.partition_histogram.count) c = scale_u64(c);
      k.partition_histogram.total = scale_u64(k.partition_histogram.total);
      k.camping_factor = k.partition_histogram.camping_factor();
      k.compute_cycles *= f;
      k.latency_cycles *= f;
      k.dram_cycles *= f;
      const double cycles =
          std::max({k.compute_cycles, k.latency_cycles, k.dram_cycles});
      k.kernel_time_s =
          cycles / (dev.core_clock_ghz * 1e9) + cal::kKernelLaunchOverheadS;
      k.sample_fraction = 1.0 / f;
      // Keep the recorded profile matching the caller-visible report.
      if (opts.prof) opts.prof->rescale_last(f);
    }

    // Span duration and counters use the FINAL (post-rescale) report so
    // the exported metrics match the KernelReport the caller sees.
    span.model_s(result.kernel.kernel_time_s);
    if (span) {
      span.arg("transactions", result.kernel.transactions);
      span.arg("camping_factor", result.kernel.camping_factor);
      span.arg("sample_fraction", result.kernel.sample_fraction);
    }
  }
  obs::record_kernel(opts.obs, result.kernel);

  result.total_time_s = result.preprocessing_s + result.transfer.time_s +
                        cal::kDispatchOverheadS + cal::kDeviceInitOverheadS +
                        result.kernel.kernel_time_s;
  driver.model_s(cal::kDispatchOverheadS + cal::kDeviceInitOverheadS);
  return result;
}

sancheck::FootprintSpec als_footprint_spec(const graph::Graph& g,
                                           const GpuTriangleOptions& opts) {
  const gpusim::DeviceSpec& dev =
      opts.device ? *opts.device : gpusim::tesla_c1060();
  const std::uint32_t blocks =
      opts.blocks ? opts.blocks : 2 * dev.sm_count;
  const std::uint32_t tpb = opts.threads_per_block;
  LGG_CHECK(tpb >= dev.warp_size && tpb % dev.warp_size == 0,
            "threads_per_block must be a positive multiple of the warp size");

  const AlsPlan plan = build_als_plan(g);
  gpusim::DeviceMemory mem(dev);  // scratch: only the addresses matter
  const Layout layout = build_layout(g, plan, opts.layout, mem);

  sancheck::FootprintSpec spec;
  spec.name = std::string("gpu/triangle/") + gpu_layout_name(opts.layout);
  spec.total_tests = plan.total_tests;
  spec.warp_size = dev.warp_size;
  spec.warp_interleaved = opts.layout != GpuLayout::kNaive;
  const std::uint64_t threads = static_cast<std::uint64_t>(blocks) * tpb;
  spec.workers =
      spec.warp_interleaved ? threads / dev.warp_size : threads;

  if (layout.per_job) {
    spec.blocks.reserve(layout.blocks.size());
    for (std::size_t r = 0; r < layout.blocks.size(); ++r)
      spec.blocks.push_back({layout.blocks[r].base, layout.blocks[r].bytes,
                             layout.strides[r]});
  } else {
    spec.blocks.push_back(
        {layout.matrix.base, layout.matrix.bytes, layout.row_bytes});
  }

  spec.jobs.reserve(plan.jobs.size());
  for (std::size_t r = 0; r < plan.jobs.size(); ++r) {
    const AlsJob& job = plan.jobs[r];
    sancheck::FootprintJob fj;
    fj.test_offset = job.test_offset;
    fj.tests = job.tests;
    fj.s = job.s;
    fj.x_max = job.x_max;
    // Per-job blocks are addressed by local ids (< s); the shared matrix
    // by global vertex ids (< n).
    fj.index_bound = layout.per_job ? job.s : g.num_vertices();
    fj.block = layout.per_job ? r : 0;
    spec.jobs.push_back(fj);
  }
  return spec;
}

}  // namespace lgg::core

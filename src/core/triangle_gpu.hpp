// Triangle counting on the simulated GPU (paper Sections VII–X):
// Algorithm 2 over the ALS plan, with the adjacency data in simulated
// global memory, under three data layouts:
//
//  kNaive
//      One adjacency bit-matrix over ALL vertices (Fig. 8); each thread
//      owns a contiguous range of the flat test space (Section VIII-D) and
//      walks it sequentially.  Lanes of a warp therefore sit in distant
//      regions of the combination space and their simultaneous reads
//      scatter across the matrix — poor coalescing.
//
//  kCoalesced
//      Same single matrix, but work is assigned per WARP and lanes
//      interleave within the warp's range (lane l takes indices
//      begin+l, begin+l+32, ...).  Consecutive flat indices share (x, y)
//      and have consecutive z, so the three reads of a warp slot touch
//      one broadcast word plus two short word-runs — the memory-access-
//      coalescing discipline of Section IX.
//
//  kCoalescedAntiCamping
//      Warp-interleaved work PLUS the redundant layout of Fig. 9: each ALS
//      gets its own compact local matrix (boundary level duplicated
//      between neighbouring ALS blocks), row stride padded by one word so
//      successive rows start in different partitions, and each block's
//      base address pinned to partition (job mod P) — Section X's
//      partition-camping avoidance.
//
// The simulated kernel always issues three 4-byte reads per candidate
// triple (branchless SIMT; avoids divergence), while the functional count
// uses short-circuit host probes — both choices are documented in
// DESIGN.md.  For large graphs the simulation is *test-sampled*: each
// thread simulates only a prefix of its range, statistics are rescaled,
// and `exact` is false (pair with count_triangles_forward for the value).
#pragma once

#include <cstdint>

#include "core/als_plan.hpp"
#include "graph/graph.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/report.hpp"
#include "obs/obs.hpp"
#include "sancheck/footprint.hpp"
#include "sancheck/sancheck.hpp"

namespace lgg::core {

enum class GpuLayout : int {
  kNaive = 0,
  kCoalesced = 1,
  kCoalescedAntiCamping = 2,
};

[[nodiscard]] const char* gpu_layout_name(GpuLayout layout) noexcept;

struct GpuTriangleOptions {
  GpuLayout layout = GpuLayout::kCoalescedAntiCamping;
  /// Device to simulate; nullptr selects the paper's C1060.
  const gpusim::DeviceSpec* device = nullptr;
  std::uint32_t blocks = 0;  // 0 = 2 x SM count
  std::uint32_t threads_per_block = 128;
  /// Cap on candidate triples actually simulated (0 = simulate all).
  /// When the cap truncates, traffic/timing statistics are rescaled by
  /// total/simulated and `exact` is false.
  std::uint64_t max_simulated_tests = 0;
  /// Host-side execution policy for the simulator (default: parallel
  /// across host cores; results are bit-identical to serial).
  gpusim::ExecPolicy exec;
  /// Hazard analysis of the launch (sancheck/sancheck.hpp): kReport
  /// attaches a HazardReport to `kernel.hazards`, kStrict throws
  /// lgg::Error on the first hazard.
  sancheck::SancheckMode sancheck = sancheck::SancheckMode::kOff;
  /// Optional fault hook (non-owning) installed on the driver's
  /// DeviceMemory and Simulator; fired faults surface as
  /// gpusim::DeviceFault (DESIGN.md §11).
  gpusim::FaultHook* faults = nullptr;
  /// Optional observability session (non-owning): plan/transfer/launch
  /// spans on the modelled timeline plus gpusim counters (DESIGN.md §12).
  obs::Session* obs = nullptr;
  /// Optional profiler hook (non-owning): every launch deposits modelled
  /// hardware counters, rescaled alongside the KernelReport when the
  /// test-sampling cap truncates (DESIGN.md §17).
  gpusim::ProfilerHook* prof = nullptr;
};

struct GpuTriangleResult {
  std::uint64_t triangles = 0;  // full count only when exact
  bool exact = true;
  std::uint64_t total_tests = 0;
  std::uint64_t simulated_tests = 0;
  std::uint64_t device_bytes = 0;  // adjacency footprint (shows redundancy)

  double preprocessing_s = 0.0;  // Algorithm 1 on the modelled host CPU
  gpusim::TransferReport transfer;
  gpusim::KernelReport kernel;
  /// preprocessing + transfer + dispatch overhead + kernel — the number
  /// the paper plots as "GPU timing" (it includes Algorithms 1 and 2).
  double total_time_s = 0.0;
};

GpuTriangleResult count_triangles_gpu(const graph::Graph& g,
                                      const GpuTriangleOptions& opts = {});

/// Build the symbolic footprint of the launch count_triangles_gpu(g, opts)
/// would perform — same plan, same layout math, same work division — for
/// the static sancheck lint (sancheck::lint_footprint), which proves chunk
/// containment and slot disjointness without simulating a single test.
sancheck::FootprintSpec als_footprint_spec(const graph::Graph& g,
                                           const GpuTriangleOptions& opts = {});

}  // namespace lgg::core

#include "core/truss.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace lgg::core {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

namespace {

/// Sorted-list intersection emitting common neighbours.
template <typename Fn>
void for_each_common(std::span<const Vertex> a, std::span<const Vertex> b,
                     Fn&& fn) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j])
      ++i;
    else if (b[j] < a[i])
      ++j;
    else {
      fn(a[i]);
      ++i;
      ++j;
    }
  }
}

}  // namespace

TrussDecomposition truss_decomposition(const Graph& g) {
  TrussDecomposition result;
  result.edges = g.edges();
  const std::size_t m = result.edges.size();
  result.truss.assign(m, 2);
  if (m == 0) return result;

  // Edge index lookup (u < v).
  std::map<Edge, std::uint32_t> edge_id;
  for (std::uint32_t i = 0; i < m; ++i) edge_id.emplace(result.edges[i], i);
  auto id_of = [&](Vertex a, Vertex b) {
    if (a > b) std::swap(a, b);
    const auto it = edge_id.find({a, b});
    LGG_ASSERT(it != edge_id.end());
    return it->second;
  };

  // Initial supports.
  std::vector<std::uint32_t> support(m, 0);
  for (std::uint32_t i = 0; i < m; ++i) {
    const auto [u, v] = result.edges[i];
    for_each_common(g.neighbors(u), g.neighbors(v),
                    [&](Vertex) { ++support[i]; });
  }

  // Peel in non-decreasing support order with a bucket queue.
  const std::uint32_t max_support =
      m ? *std::max_element(support.begin(), support.end()) : 0;
  std::vector<std::vector<std::uint32_t>> bucket(max_support + 1);
  for (std::uint32_t i = 0; i < m; ++i) bucket[support[i]].push_back(i);

  std::vector<bool> removed(m, false);
  std::size_t cursor = 0;
  std::uint32_t current = 2;
  std::size_t processed = 0;
  while (processed < m) {
    while (cursor <= max_support && bucket[cursor].empty()) ++cursor;
    LGG_ASSERT(cursor <= max_support);
    const std::uint32_t e = bucket[cursor].back();
    bucket[cursor].pop_back();
    if (removed[e] || support[e] != cursor) continue;  // stale entry

    current = std::max<std::uint32_t>(current, support[e] + 2);
    result.truss[e] = current;
    removed[e] = true;
    ++processed;

    // Removing e = (u, v) lowers the support of the other two edges of
    // every surviving triangle through e.
    const auto [u, v] = result.edges[e];
    for_each_common(g.neighbors(u), g.neighbors(v), [&](Vertex w) {
      const std::uint32_t e1 = id_of(u, w);
      const std::uint32_t e2 = id_of(v, w);
      if (removed[e1] || removed[e2]) return;
      for (const std::uint32_t other : {e1, e2}) {
        if (support[other] > support[e]) {
          --support[other];
          bucket[support[other]].push_back(other);
          if (support[other] < cursor) cursor = support[other];
        }
      }
    });
  }
  result.max_truss = current;
  return result;
}

Graph ktruss_subgraph(const Graph& g, std::uint32_t k) {
  LGG_CHECK(k >= 2, "ktruss_subgraph: k must be >= 2");
  const TrussDecomposition d = truss_decomposition(g);
  std::vector<Edge> kept;
  for (std::size_t i = 0; i < d.edges.size(); ++i)
    if (d.truss[i] >= k) kept.push_back(d.edges[i]);
  return Graph::from_edges(g.num_vertices(), kept);
}

}  // namespace lgg::core

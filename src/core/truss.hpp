// k-truss decomposition — the edge-level analogue of k-cores built on
// triangle support, a natural extension of the paper's triangle machinery
// (the truss number of an edge is how deeply it is embedded in triangles;
// spam edges from the paper's Section VII motivation have low truss).
//
// The k-truss of G is the maximal subgraph in which every edge lies in at
// least k-2 triangles of the subgraph.  truss(e) is the largest k whose
// k-truss contains e.  Peeling runs in O(m^1.5) like triangle counting.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace lgg::core {

struct TrussDecomposition {
  /// Edges in the same (u < v, lexicographic) order as Graph::edges().
  std::vector<graph::Edge> edges;
  /// truss[i] = truss number of edges[i]; >= 2 for every edge (every edge
  /// is trivially in the 2-truss).
  std::vector<std::uint32_t> truss;
  std::uint32_t max_truss = 0;  // 0 for edgeless graphs
};

TrussDecomposition truss_decomposition(const graph::Graph& g);

/// The k-truss as a subgraph of g (same vertex ids; only edges with truss
/// number >= k survive).
graph::Graph ktruss_subgraph(const graph::Graph& g, std::uint32_t k);

}  // namespace lgg::core

#include "fuzz/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "graph/io.hpp"
#include "util/error.hpp"

namespace lgg::fuzz {

namespace {

// Metadata values live on single comment lines; newlines would silently
// truncate the field on read-back.
std::string one_line(std::string s) {
  std::replace(s.begin(), s.end(), '\n', ' ');
  std::replace(s.begin(), s.end(), '\r', ' ');
  return s;
}

// "key: value" comment lookup (first match wins).
bool lookup(const std::vector<std::string>& comments, const std::string& key,
            std::string& value) {
  const std::string prefix = key + ": ";
  for (const auto& c : comments) {
    if (c.rfind(prefix, 0) == 0) {
      value = c.substr(prefix.size());
      return true;
    }
  }
  return false;
}

}  // namespace

void write_repro(std::ostream& out, const Repro& repro) {
  out << "# " << kReproMagic << '\n';
  if (!repro.name.empty()) out << "# name: " << one_line(repro.name) << '\n';
  if (!repro.spec.empty()) out << "# spec: " << one_line(repro.spec) << '\n';
  if (!repro.note.empty()) out << "# note: " << one_line(repro.note) << '\n';
  out << "# oracle: " << repro.oracle << '\n';
  graph::write_snap_edge_list(out, repro.graph);
}

void write_repro_file(const std::string& path, const Repro& repro) {
  std::ofstream out(path);
  LGG_CHECK(out.good(), "cannot open repro file for writing: " << path);
  write_repro(out, repro);
  LGG_CHECK(out.good(), "error while writing repro file: " << path);
}

Repro read_repro(std::istream& in) {
  graph::SnapReadOptions opts;
  opts.pad_to_declared_nodes = true;
  auto loaded = graph::read_snap_edge_list(in, opts);
  LGG_CHECK(std::find(loaded.comments.begin(), loaded.comments.end(),
                      kReproMagic) != loaded.comments.end(),
            "not an lgg-fuzz repro (missing '" << kReproMagic
                                               << "' header comment)");
  Repro repro;
  repro.graph = std::move(loaded.graph);
  lookup(loaded.comments, "name", repro.name);
  lookup(loaded.comments, "spec", repro.spec);
  lookup(loaded.comments, "note", repro.note);
  if (std::string oracle; lookup(loaded.comments, "oracle", oracle)) {
    std::istringstream os(oracle);
    LGG_CHECK(static_cast<bool>(os >> repro.oracle),
              "repro 'oracle:' field is not a number: '" << oracle << "'");
  }
  return repro;
}

Repro read_repro_file(const std::string& path) {
  std::ifstream in(path);
  LGG_CHECK(in.good(), "cannot open repro file: " << path);
  auto repro = read_repro(in);
  if (repro.name.empty())
    repro.name = std::filesystem::path(path).stem().string();
  return repro;
}

std::vector<std::string> list_repro_files(const std::string& dir) {
  LGG_CHECK(std::filesystem::is_directory(dir),
            "corpus path is not a directory: " << dir);
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.is_regular_file() && entry.path().extension() == ".txt")
      files.push_back(entry.path().string());
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace lgg::fuzz

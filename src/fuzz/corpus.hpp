// Self-contained fuzz repro files and the regression corpus.
//
// A repro is a plain SNAP edge list (readable by every lgg tool and by
// graph::read_snap_edge_list) whose comment header carries the fuzz
// metadata as "key: value" lines:
//
//   # lgg-fuzz-repro v1
//   # name: gnp-naive-mismatch
//   # spec: gnp 60 0.05 seed=7701          <- provenance, informational
//   # note: mismatch path=gpu/... oracle=5 got=6
//   # oracle: 5                            <- triangle count at capture
//   # SNAP-format undirected edge list
//   # Nodes: 9 Edges: 14
//   0  1
//   ...
//
// The edge list is authoritative: replay rebuilds the graph from it (with
// isolated vertices restored from the Nodes header), never from the spec,
// so corpus files stay valid across generator changes.  Checked-in repros
// under tests/corpus/ are replayed through every counting path by
// tests/fuzz_corpus_test.cpp — the permanent regression net.  See
// DESIGN.md §10 for the triage workflow.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace lgg::fuzz {

inline constexpr const char* kReproMagic = "lgg-fuzz-repro v1";

struct Repro {
  std::string name;   // short slug, becomes the file stem
  std::string spec;   // GraphSpec::to_string() provenance (may be empty)
  std::string note;   // human description of the original finding
  std::uint64_t oracle = 0;  // forward-oracle triangle count at capture
  graph::Graph graph{0};
};

void write_repro(std::ostream& out, const Repro& repro);
void write_repro_file(const std::string& path, const Repro& repro);

/// Parse a repro.  Throws lgg::Error if the magic header is missing or
/// the edge list is malformed.
Repro read_repro(std::istream& in);
Repro read_repro_file(const std::string& path);

/// All "*.txt" repro files directly under `dir`, lexicographically sorted
/// (deterministic replay order).  Throws lgg::Error if dir is not a
/// directory.
std::vector<std::string> list_repro_files(const std::string& dir);

}  // namespace lgg::fuzz

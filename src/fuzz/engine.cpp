#include "fuzz/engine.hpp"

#include <cmath>
#include <filesystem>
#include <optional>
#include <sstream>

#include "fuzz/corpus.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"
#include "util/stopwatch.hpp"

namespace lgg::fuzz {

namespace {

struct ResolvedPolicy {
  gpusim::ExecPolicy exec;
  /// Label used in finding/path names.  Deliberately omits the thread
  /// count: the log must be bit-identical across host thread counts.
  std::string label;
};

std::vector<ResolvedPolicy> resolve_policies(const EngineOptions& opts) {
  std::vector<ResolvedPolicy> policies;
  if (opts.policies.empty()) {
    policies.push_back({gpusim::ExecPolicy::serial(), "serial"});
    policies.push_back({gpusim::ExecPolicy::parallel(), "parallel"});
  } else {
    for (const auto& p : opts.policies)
      policies.push_back(
          {p, p.mode == gpusim::ExecPolicy::Mode::kSerial ? "serial"
                                                          : "parallel"});
  }
  return policies;
}

/// Seed for iteration i of a campaign — a SplitMix64 stream indexed by
/// iteration, so iterations are replayable in isolation.
std::uint64_t iteration_seed(std::uint64_t master, std::uint64_t iteration) {
  return SplitMix64(master + iteration * 0x9E3779B97F4A7C15ull).next();
}

bool outcome_fails(PathKind kind, const PathOutcome& out,
                   std::uint64_t oracle) {
  switch (kind) {
    case PathKind::kExact:
      return out.value != static_cast<double>(oracle);
    case PathKind::kEstimate:
      return std::abs(out.value - static_cast<double>(oracle)) >
             out.tolerance;
    case PathKind::kInvariant:
      return out.value != 0.0;
  }
  return false;
}

std::optional<Finding> run_path_once(const CountingPath& path,
                                     const ResolvedPolicy& policy,
                                     const EngineOptions& opts,
                                     const graph::Graph& g,
                                     std::uint64_t oracle,
                                     std::uint64_t iteration,
                                     const std::string& spec,
                                     std::uint64_t seed) {
  Finding finding;
  finding.iteration = iteration;
  finding.path = path.policy_sensitive ? path.name + "[" + policy.label + "]"
                                       : path.name;
  finding.spec = spec;
  finding.oracle = oracle;

  const PathContext ctx{policy.exec, opts.sancheck, seed};
  try {
    const PathOutcome out = path.run(g, ctx);
    if (!outcome_fails(path.kind, out, oracle)) return std::nullopt;
    finding.kind = path.kind == PathKind::kInvariant ? FindingKind::kInvariant
                                                     : FindingKind::kMismatch;
    finding.got = out.value;
    finding.tolerance = out.tolerance;
    finding.detail = out.detail;
  } catch (const std::exception& e) {
    finding.kind = FindingKind::kException;
    finding.detail = e.what();
  }
  finding.graph = g;
  finding.shrunk = g;
  return finding;
}

FailurePredicate make_predicate(const CountingPath& path,
                                const ResolvedPolicy& policy,
                                const EngineOptions& opts,
                                FindingKind original_kind,
                                std::uint64_t seed) {
  return [&path, policy, sancheck = opts.sancheck, original_kind,
          seed](const graph::Graph& candidate) -> bool {
    if (path.applicable && !path.applicable(candidate)) return false;
    std::uint64_t oracle = 0;
    try {
      oracle = oracle_triangles(candidate);
    } catch (...) {
      return false;  // the oracle must stay runnable on a valid repro
    }
    const PathContext ctx{policy.exec, sancheck, seed};
    try {
      const PathOutcome out = path.run(candidate, ctx);
      return original_kind != FindingKind::kException &&
             outcome_fails(path.kind, out, oracle);
    } catch (...) {
      return original_kind == FindingKind::kException;
    }
  };
}

/// The path set actually under test: the caller's (or the defaults), plus
/// the resilient/chunked fault path when fault-campaign mode is armed.
std::vector<CountingPath> effective_paths(const EngineOptions& opts) {
  std::vector<CountingPath> paths =
      opts.paths.empty() ? default_paths() : opts.paths;
  if (opts.fault_rate > 0)
    paths.push_back(resilient_fault_path(opts.fault_rate, opts.fault_seed,
                                         opts.fault_max_retries,
                                         opts.fault_failover));
  return paths;
}

std::string path_slug(std::string name) {
  for (auto& c : name)
    if (c == '/' || c == '[' || c == ']' || c == ':' || c == ' ') c = '-';
  while (!name.empty() && name.back() == '-') name.pop_back();
  return name;
}

}  // namespace

const char* finding_kind_name(FindingKind kind) noexcept {
  switch (kind) {
    case FindingKind::kMismatch:
      return "mismatch";
    case FindingKind::kException:
      return "exception";
    case FindingKind::kInvariant:
      return "invariant";
  }
  return "?";
}

std::string describe(const Finding& f) {
  std::ostringstream os;
  os << "FINDING " << finding_kind_name(f.kind) << " iter=" << f.iteration
     << " path=" << f.path << " spec=\"" << f.spec << "\""
     << " oracle=" << f.oracle;
  if (f.kind != FindingKind::kException) {
    os << " got=" << f.got;
    if (f.tolerance > 0) os << " tolerance=" << f.tolerance;
  }
  if (!f.detail.empty()) os << " detail=\"" << f.detail << "\"";
  os << " graph=" << f.graph.num_vertices() << "v/" << f.graph.num_edges()
     << "e";
  if (f.shrunk.num_vertices() != f.graph.num_vertices() ||
      f.shrunk.num_edges() != f.graph.num_edges())
    os << " shrunk=" << f.shrunk.num_vertices() << "v/"
       << f.shrunk.num_edges() << "e"
       << (f.shrunk_minimal ? " (1-minimal)" : " (budget)");
  return os.str();
}

std::vector<Finding> check_graph(const graph::Graph& g,
                                 const std::string& spec,
                                 const EngineOptions& opts,
                                 std::uint64_t iteration) {
  const std::vector<CountingPath> paths = effective_paths(opts);
  const auto policies = resolve_policies(opts);
  const std::uint64_t seed = iteration_seed(opts.master_seed, iteration);

  std::uint64_t oracle = 0;
  std::vector<Finding> findings;
  try {
    oracle = oracle_triangles(g);
  } catch (const std::exception& e) {
    Finding f;
    f.kind = FindingKind::kException;
    f.iteration = iteration;
    f.path = "oracle/forward";
    f.spec = spec;
    f.detail = e.what();
    f.graph = g;
    f.shrunk = g;
    findings.push_back(std::move(f));
    return findings;
  }

  for (const auto& path : paths) {
    if (path.applicable && !path.applicable(g)) continue;
    const std::size_t policy_count = path.policy_sensitive ? policies.size()
                                                           : std::size_t{1};
    for (std::size_t p = 0; p < policy_count; ++p) {
      if (auto f = run_path_once(path, policies[p], opts, g, oracle,
                                 iteration, spec, seed))
        findings.push_back(std::move(*f));
    }
  }
  return findings;
}

CampaignResult run_campaign(const EngineOptions& opts) {
  const std::vector<CountingPath> paths = effective_paths(opts);
  const auto policies = resolve_policies(opts);

  CampaignResult result;
  std::ostringstream log;
  Stopwatch wall;

  // Streaming emission: every log line and finding leaves the engine the
  // moment it exists (repros already stream via write_repro_file), so a
  // long campaign never has to buffer its history in memory.
  auto emit_line = [&](const std::string& line) {
    if (opts.buffer_log) log << line << '\n';
    if (opts.on_log_line) opts.on_log_line(line);
  };
  auto emit_finding = [&](Finding&& f) {
    emit_line(describe(f));
    if (opts.on_finding) opts.on_finding(f);
    ++result.findings_count;
    if (opts.obs != nullptr)
      opts.obs->metrics.count(
          "lgg_fuzz_findings_total", 1,
          std::string("kind=\"") + finding_kind_name(f.kind) + "\"");
    if (opts.keep_findings) result.findings.push_back(std::move(f));
  };

  obs::Scope campaign_span(opts.obs, "fuzz/campaign", "driver");
  if (campaign_span) {
    campaign_span.arg("master_seed", opts.master_seed);
    campaign_span.arg("max_iterations", opts.max_iterations);
  }

  for (std::uint64_t iter = 0; iter < opts.max_iterations; ++iter) {
    if (opts.time_budget_s > 0 && wall.elapsed_s() >= opts.time_budget_s)
      break;
    if (result.findings_count >= opts.max_findings) break;
    ++result.iterations;
    if (opts.obs != nullptr)
      opts.obs->metrics.count("lgg_fuzz_iterations_total");
    obs::Scope iter_span(opts.obs,
                         opts.obs != nullptr
                             ? "iter[" + std::to_string(iter) + "]"
                             : std::string(),
                         "iter");

    const std::uint64_t seed = iteration_seed(opts.master_seed, iter);
    Xoshiro256 rng(seed);
    const GraphSpec spec = sample_spec(rng, opts.limits);
    graph::Graph g(0);
    try {
      g = spec.build();
    } catch (const std::exception& e) {
      Finding f;
      f.kind = FindingKind::kException;
      f.iteration = iter;
      f.path = "sampler/build";
      f.spec = spec.to_string();
      f.detail = e.what();
      emit_finding(std::move(f));
      continue;
    }

    const std::string spec_str = spec.to_string();
    std::uint64_t oracle = 0;
    try {
      oracle = oracle_triangles(g);
    } catch (const std::exception& e) {
      Finding f;
      f.kind = FindingKind::kException;
      f.iteration = iter;
      f.path = "oracle/forward";
      f.spec = spec_str;
      f.detail = e.what();
      f.graph = g;
      f.shrunk = g;
      emit_finding(std::move(f));
      continue;
    }

    for (const auto& path : paths) {
      if (path.applicable && !path.applicable(g)) continue;
      const std::size_t policy_count =
          path.policy_sensitive ? policies.size() : std::size_t{1};
      for (std::size_t p = 0; p < policy_count; ++p) {
        auto found = run_path_once(path, policies[p], opts, g, oracle, iter,
                                   spec_str, seed);
        if (!found) continue;
        Finding& f = *found;

        if (opts.shrink) {
          obs::Scope shrink_span(opts.obs, "shrink/ddmin", "shrink");
          const auto pred =
              make_predicate(path, policies[p], opts, f.kind, seed);
          const ShrinkResult shrunk =
              shrink_graph(f.graph, pred, opts.shrink_options);
          f.shrunk = shrunk.graph;
          f.shrunk_minimal = shrunk.minimal;
          if (shrink_span)
            shrink_span.arg("minimal", shrunk.minimal);
        }

        if (!opts.corpus_dir.empty()) {
          std::filesystem::create_directories(opts.corpus_dir);
          std::ostringstream name;
          name << "repro-s" << opts.master_seed << "-i" << iter << "-"
               << path_slug(f.path);
          Repro repro;
          repro.name = name.str();
          repro.spec = f.spec;
          repro.note = std::string(finding_kind_name(f.kind)) +
                       " path=" + f.path +
                       (f.detail.empty() ? "" : " detail=" + f.detail);
          repro.oracle = oracle_triangles(f.shrunk);
          repro.graph = f.shrunk;
          f.repro_path = (std::filesystem::path(opts.corpus_dir) /
                          (name.str() + ".txt"))
                             .string();
          write_repro_file(f.repro_path, repro);
        }

        emit_finding(std::move(f));
        if (result.findings_count >= opts.max_findings) break;
      }
      if (result.findings_count >= opts.max_findings) break;
    }
  }

  std::ostringstream summary;
  summary << "campaign seed=" << opts.master_seed
          << " iterations=" << result.iterations
          << " findings=" << result.findings_count;
  emit_line(summary.str());
  result.log = log.str();
  return result;
}

}  // namespace lgg::fuzz

// The differential fuzzing engine.
//
// A campaign is a deterministic loop driven by one master seed: each
// iteration derives its own seed, samples a GraphSpec (fuzz/spec.hpp),
// materialises the graph, and runs the full counting-path cross-product
// (fuzz/paths.hpp) under every configured ExecPolicy with sancheck armed.
// Any exact-path disagreement with the forward oracle, estimator outside
// its statistical tolerance, broken invariant, sancheck hazard (strict
// mode throws) or other exception is classified as a Finding.
//
// Findings are delta-debugged (fuzz/shrink.hpp) against a predicate that
// re-runs exactly the failing path/policy/seed on each candidate, then
// written as self-contained repro files (fuzz/corpus.hpp) into the
// campaign's corpus directory.
//
// Determinism contract: with a fixed master seed, iteration count and
// path set, the findings log is bit-identical regardless of the host
// thread counts inside the ExecPolicies (the simulator's DESIGN.md §8
// guarantee) — the property tools/lgg_fuzz's smoke test pins.  Timing
// never enters the log; the time budget only truncates the iteration
// loop.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/paths.hpp"
#include "fuzz/shrink.hpp"
#include "fuzz/spec.hpp"
#include "gpusim/executor.hpp"
#include "graph/graph.hpp"
#include "resilience/runner.hpp"
#include "sancheck/sancheck.hpp"

namespace lgg::fuzz {

enum class FindingKind : int {
  kMismatch = 0,   // exact path != oracle, or estimator out of tolerance
  kException = 1,  // path threw (includes strict-sancheck hazards)
  kInvariant = 2,  // invariant path reported nonzero
};

[[nodiscard]] const char* finding_kind_name(FindingKind kind) noexcept;

struct Finding {
  FindingKind kind = FindingKind::kMismatch;
  std::uint64_t iteration = 0;
  std::string path;   // "gpu/triangle-naive[parallel]"
  std::string spec;   // provenance of the offending graph
  std::uint64_t oracle = 0;
  double got = 0.0;
  double tolerance = 0.0;
  std::string detail;         // exception text / invariant description
  graph::Graph graph{0};      // the offending graph as sampled
  graph::Graph shrunk{0};     // minimized repro (== graph when not shrunk)
  bool shrunk_minimal = false;
  std::string repro_path;     // corpus file written, if any
};

/// One deterministic log line per finding (no timing, no addresses).
[[nodiscard]] std::string describe(const Finding& finding);

struct EngineOptions {
  std::uint64_t master_seed = 1;
  std::uint64_t max_iterations = 100;
  /// > 0: stop sampling after this much wall time (log stays per-iteration
  /// deterministic; only the number of iterations becomes time-dependent).
  double time_budget_s = 0.0;
  /// Stop the campaign after this many findings.
  std::size_t max_findings = 16;
  SamplerLimits limits;
  /// Paths under test; empty selects default_paths().
  std::vector<CountingPath> paths;
  /// Policies for policy-sensitive paths; empty selects serial + parallel.
  std::vector<gpusim::ExecPolicy> policies;
  sancheck::SancheckMode sancheck = sancheck::SancheckMode::kStrict;
  bool shrink = true;
  ShrinkOptions shrink_options;
  /// Directory for repro files ("" = do not write; created if missing).
  std::string corpus_dir;

  // -- fault-campaign mode (DESIGN.md §11) --
  /// > 0 adds the resilient/chunked path with this per-site fault rate:
  /// every iteration then also asserts that the fault-recovering runner
  /// still produces the exact count.  Fault decisions derive from
  /// (iteration seed, fault_seed), so the campaign — including its fault
  /// pattern — stays byte-identical across host thread counts.
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 0;
  std::uint32_t fault_max_retries = 3;
  resilience::Failover fault_failover = resilience::Failover::kCpu;

  // -- streaming emission (repros already stream to corpus_dir as they
  //    occur; these hooks let callers stream the log too instead of
  //    buffering the whole campaign in memory) --
  /// Called with each deterministic log line (no trailing newline) the
  /// moment it is produced, including the trailing summary line.
  std::function<void(const std::string&)> on_log_line;
  /// Called with each finding after shrinking and any repro write.
  std::function<void(const Finding&)> on_finding;
  /// false: CampaignResult.findings stays empty (use on_finding +
  /// findings_count); graphs of findings then never accumulate in memory.
  bool keep_findings = true;
  /// false: CampaignResult.log stays empty (use on_log_line).
  bool buffer_log = true;

  /// Optional observability session: campaign/iteration/shrink spans plus
  /// fuzz counters (DESIGN.md §12).  Surfaced as lgg_fuzz --trace-dir.
  obs::Session* obs = nullptr;
};

struct CampaignResult {
  std::uint64_t iterations = 0;
  /// Total findings, whether or not `findings` retained them.
  std::uint64_t findings_count = 0;
  std::vector<Finding> findings;  // empty when keep_findings == false
  /// The deterministic findings log: one describe() line per finding plus
  /// a trailing summary line.  Empty when buffer_log == false.
  std::string log;
};

/// Run a fuzzing campaign.
CampaignResult run_campaign(const EngineOptions& opts);

/// Differentially check ONE graph through the configured path
/// cross-product (no sampling, no shrinking, no corpus writes).  This is
/// what corpus replay and the consistency test suite are built on;
/// `spec` is carried into the findings for reporting.
std::vector<Finding> check_graph(const graph::Graph& g,
                                 const std::string& spec,
                                 const EngineOptions& opts,
                                 std::uint64_t iteration = 0);

}  // namespace lgg::fuzz

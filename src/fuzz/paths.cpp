#include "fuzz/paths.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "combi/binomial.hpp"
#include "combi/strategies.hpp"
#include "core/approx.hpp"
#include "core/bfs_gpu.hpp"
#include "core/hybrid.hpp"
#include "core/intersect_gpu.hpp"
#include "core/kcount.hpp"
#include "core/subgraph_gpu.hpp"
#include "core/triangle_cpu.hpp"
#include "core/triangle_gpu.hpp"
#include "core/truss.hpp"
#include "graph/bfs.hpp"
#include "graph/bit_matrix.hpp"
#include "graph/io.hpp"
#include "resilience/fault.hpp"
#include "resilience/runner.hpp"
#include "stream/edge_stream.hpp"
#include "stream/streaming_triangles.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace lgg::fuzz {

namespace {

// Launch geometry shared by all simulator paths: small enough to keep a
// campaign iteration fast, large enough that work division, warp
// interleaving and the scheduler all have something to do.
constexpr std::uint32_t kBlocks = 4;
constexpr std::uint32_t kThreadsPerBlock = 64;

PathOutcome exact(std::uint64_t count) {
  return {static_cast<double>(count), 0.0, {}};
}

bool combi_cost_ok(const graph::Graph& g) {
  // The Section VIII strategies enumerate all C(n,3) combinations; keep
  // the per-strategy walk under ~200k emissions.
  if (g.num_vertices() < 3) return true;  // counted as 0 without enumerating
  const std::uint64_t total = combi::binomial(g.num_vertices(), 3);
  return total != combi::kBinomialOverflow && total <= 200000;
}

// Count triangles by enumerating every 3-combination of vertices under
// one Section VIII strategy and probing the three edges — deliberately
// naive, so it exercises the strategy machinery end to end and agrees
// with the oracle only if the strategy covers each combination exactly
// once.
PathOutcome count_via_strategy(const graph::Graph& g, combi::Strategy s) {
  const auto n = static_cast<std::uint32_t>(g.num_vertices());
  if (n < 3) return exact(0);
  std::uint64_t triangles = 0;
  combi::enumerate_combinations(
      s, n, 3, /*threads=*/7,
      [&](std::uint32_t, std::span<const std::uint32_t> c) {
        if (g.has_edge(c[0], c[1]) && g.has_edge(c[0], c[2]) &&
            g.has_edge(c[1], c[2]))
          ++triangles;
      });
  return exact(triangles);
}

// RAII temp file for the external-memory streaming path.
struct TempGraphFile {
  std::string path;
  explicit TempGraphFile(const graph::Graph& g, std::uint64_t tag) {
    static std::atomic<std::uint64_t> sequence{0};
    std::ostringstream name;
    name << "lgg-fuzz-" << tag << '-' << sequence.fetch_add(1) << ".txt";
    path = (std::filesystem::temp_directory_path() / name.str()).string();
    graph::write_snap_edge_list_file(path, g, "fuzz streaming path");
  }
  ~TempGraphFile() { std::remove(path.c_str()); }
  TempGraphFile(const TempGraphFile&) = delete;
  TempGraphFile& operator=(const TempGraphFile&) = delete;
};

PathOutcome doulion_path(const graph::Graph& g, const PathContext& ctx) {
  // Average independent DOULION runs so the standard error is measurable
  // from the sample itself; flag only a gross departure (a broken 1/p^3
  // rescale or sampler) — 8 standard errors plus absolute slack for
  // near-zero counts.
  constexpr int kReps = 24;
  constexpr double kP = 0.5;
  SplitMix64 seeds(ctx.seed);
  double sum = 0.0, sumsq = 0.0;
  for (int r = 0; r < kReps; ++r) {
    const double e = core::doulion_estimate(g, kP, seeds.next()).estimate;
    sum += e;
    sumsq += e * e;
  }
  const double mean = sum / kReps;
  const double var = std::max(0.0, sumsq / kReps - mean * mean);
  const double se = std::sqrt(var / kReps);
  PathOutcome out;
  out.value = mean;
  out.tolerance = 8.0 * se + 4.0;
  return out;
}

PathOutcome wedge_path(const graph::Graph& g, const PathContext& ctx) {
  constexpr std::uint64_t kSamples = 4096;
  const auto r = core::wedge_sampling_estimate(g, kSamples, ctx.seed);
  PathOutcome out;
  out.value = r.estimate;
  const double phat = r.closed_fraction;
  const double se = static_cast<double>(r.total_wedges) *
                    std::sqrt(std::max(phat * (1.0 - phat), 1e-9) /
                              static_cast<double>(kSamples)) /
                    3.0;
  out.tolerance = 8.0 * se + 4.0;
  return out;
}

PathOutcome bfs_gpu_path(const graph::Graph& g, const PathContext& ctx) {
  core::GpuBfsOptions opts;
  opts.threads_per_block = kThreadsPerBlock;
  opts.exec = ctx.exec;
  opts.sancheck = ctx.sancheck;
  const auto got = core::bfs_gpu(g, 0, opts);
  const auto want = graph::bfs(g, 0);
  std::uint64_t mismatches = 0;
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v)
    if (got.tree.level[v] != want.level[v]) ++mismatches;
  if (got.tree.depth != want.depth) ++mismatches;
  PathOutcome out;
  out.value = static_cast<double>(mismatches);
  if (mismatches)
    out.detail = "GPU BFS levels disagree with host BFS from source 0";
  return out;
}

}  // namespace

const char* path_kind_name(PathKind kind) noexcept {
  switch (kind) {
    case PathKind::kExact:
      return "exact";
    case PathKind::kEstimate:
      return "estimate";
    case PathKind::kInvariant:
      return "invariant";
  }
  return "?";
}

std::uint64_t oracle_triangles(const graph::Graph& g) {
  return core::count_triangles_forward(g);
}

std::vector<CountingPath> default_paths() {
  std::vector<CountingPath> paths;
  auto add = [&](CountingPath p) { paths.push_back(std::move(p)); };

  // --- CPU oracles -------------------------------------------------------
  add({"cpu/edge-iterator", PathKind::kExact, false, {},
       [](const graph::Graph& g, const PathContext&) {
         return exact(core::count_triangles_edge_iterator(g));
       }});
  add({"cpu/bitmatrix", PathKind::kExact, false, {},
       [](const graph::Graph& g, const PathContext&) {
         return exact(
             core::count_triangles_bitmatrix(graph::BitMatrix::from_graph(g)));
       }});
  add({"cpu/als", PathKind::kExact, false, {},
       [](const graph::Graph& g, const PathContext&) {
         return exact(core::count_triangles_cpu_als(g).triangles);
       }});
  add({"cpu/list-size", PathKind::kExact, false, {},
       [](const graph::Graph& g, const PathContext&) {
         return exact(core::list_triangles(g).size());
       }});
  add({"cpu/per-vertex-sum", PathKind::kExact, false, {},
       [](const graph::Graph& g, const PathContext&) {
         std::uint64_t sum = 0;
         for (const auto t : core::triangles_per_vertex(g)) sum += t;
         PathOutcome out = exact(sum / 3);
         if (sum % 3 != 0) {
           out.value = -1.0;
           out.detail = "per-vertex triangle counts do not sum to 3x";
         }
         return out;
       }});
  add({"cpu/kclique3", PathKind::kExact, false, {},
       [](const graph::Graph& g, const PathContext&) {
         return exact(core::count_kcliques(g, 3));
       }});
  add({"cpu/kclique3-als", PathKind::kExact, false, {},
       [](const graph::Graph& g, const PathContext&) {
         return exact(core::count_kcliques_als(g, 3));
       }});
  add({"cpu/truss-closure", PathKind::kExact, false, {},
       [](const graph::Graph& g, const PathContext&) {
         // Every triangle survives 3-truss peeling and the truss adds none.
         return exact(core::count_triangles_forward(
             core::ktruss_subgraph(g, 3)));
       }});

  // --- Section VIII combination-generation strategies --------------------
  for (const auto s :
       {combi::Strategy::kPrecomputed, combi::Strategy::kSequential,
        combi::Strategy::kSplitByStart, combi::Strategy::kEqualDivision}) {
    add({std::string("combi/") + combi::strategy_name(s), PathKind::kExact,
         false, combi_cost_ok,
         [s](const graph::Graph& g, const PathContext&) {
           return count_via_strategy(g, s);
         }});
  }

  // --- Simulated-GPU kernels (policy- and sancheck-sensitive) ------------
  for (const auto layout :
       {core::GpuLayout::kNaive, core::GpuLayout::kCoalesced,
        core::GpuLayout::kCoalescedAntiCamping}) {
    add({std::string("gpu/triangle-") + core::gpu_layout_name(layout),
         PathKind::kExact, true, {},
         [layout](const graph::Graph& g, const PathContext& ctx) {
           core::GpuTriangleOptions opts;
           opts.layout = layout;
           opts.blocks = kBlocks;
           opts.threads_per_block = kThreadsPerBlock;
           opts.exec = ctx.exec;
           opts.sancheck = ctx.sancheck;
           return exact(core::count_triangles_gpu(g, opts).triangles);
         }});
  }
  add({"gpu/intersect", PathKind::kExact, true, {},
       [](const graph::Graph& g, const PathContext& ctx) {
         core::GpuIntersectOptions opts;
         opts.blocks = kBlocks;
         opts.threads_per_block = kThreadsPerBlock;
         opts.exec = ctx.exec;
         opts.sancheck = ctx.sancheck;
         return exact(core::count_triangles_gpu_intersect(g, opts).triangles);
       }});
  add({"gpu/kclique3", PathKind::kExact, true, {},
       [](const graph::Graph& g, const PathContext& ctx) {
         core::GpuKCountOptions opts;
         opts.blocks = kBlocks;
         opts.threads_per_block = kThreadsPerBlock;
         opts.exec = ctx.exec;
         opts.sancheck = ctx.sancheck;
         return exact(core::count_kcliques_gpu(g, 3, opts).count);
       }});
  add({"gpu/list-size", PathKind::kExact, true, {},
       [](const graph::Graph& g, const PathContext& ctx) {
         core::GpuKCountOptions opts;
         opts.blocks = kBlocks;
         opts.threads_per_block = kThreadsPerBlock;
         opts.exec = ctx.exec;
         opts.sancheck = ctx.sancheck;
         return exact(core::list_triangles_gpu(g, opts).triangles.size());
       }});
  add({"hybrid", PathKind::kExact, true, {},
       [](const graph::Graph& g, const PathContext& ctx) {
         core::HybridOptions opts;
         opts.threads_per_block = kThreadsPerBlock;
         opts.exec = ctx.exec;
         opts.sancheck = ctx.sancheck;
         return exact(core::count_triangles_hybrid(g, opts).triangles);
       }});
  add({"gpu/bfs-levels", PathKind::kInvariant, true,
       [](const graph::Graph& g) { return g.num_vertices() > 0; },
       bfs_gpu_path});

  // --- External-memory streaming -----------------------------------------
  add({"stream/external", PathKind::kExact, false,
       [](const graph::Graph& g) { return g.num_edges() >= 1; },
       [](const graph::Graph& g, const PathContext& ctx) {
         const TempGraphFile file(g, ctx.seed);
         const stream::EdgeStream es(file.path);
         const std::uint64_t budget =
             std::max<std::uint64_t>(3, g.num_edges() / 2);
         return exact(stream::count_triangles_external(es, budget).triangles);
       }});

  // --- Randomized estimators (statistical bounds) ------------------------
  add({"approx/doulion", PathKind::kEstimate, false, {}, doulion_path});
  add({"approx/wedges", PathKind::kEstimate, false,
       [](const graph::Graph& g) { return g.max_degree() >= 2; }, wedge_path});

  return paths;
}

CountingPath resilient_fault_path(double rate, std::uint64_t salt,
                                  std::uint32_t max_retries,
                                  resilience::Failover failover) {
  CountingPath path;
  path.name = "resilient/chunked";
  path.kind = PathKind::kExact;
  path.policy_sensitive = true;
  path.run = [rate, salt, max_retries, failover](
                 const graph::Graph& g, const PathContext& ctx) {
    // The injector is rebuilt per run from (iteration seed, salt): the
    // fault pattern is a pure function of the campaign seed, and since
    // all hook consultations are host-serial it is also identical under
    // every ExecPolicy — which is what keeps fault-campaign logs
    // byte-identical across host thread counts.
    resilience::FaultInjector injector(
        SplitMix64(ctx.seed ^ salt).next(),
        resilience::FaultRates::uniform(rate));
    resilience::RunnerOptions opts;
    opts.threads_per_block = kThreadsPerBlock;
    opts.exec = ctx.exec;
    opts.sancheck = ctx.sancheck;
    opts.faults = &injector;
    opts.retry.max_retries = max_retries;
    opts.failover = failover;
    const resilience::RunnerReport report = resilience::run_resilient(g, opts);
    PathOutcome out;
    out.value = static_cast<double>(report.triangles);
    if (!report.certified) {
      std::ostringstream detail;
      detail << "uncertified: faults=" << report.recovery.faults
             << " failed=" << report.recovery.failed_chunks;
      out.detail = detail.str();
    }
    return out;
  };
  return path;
}

}  // namespace lgg::fuzz

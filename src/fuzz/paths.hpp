// The registry of independently-engineered counting paths that the
// differential fuzzer cross-checks (cf. Wang et al., "A Comparative Study
// on Exact Triangle Counting Algorithms on the GPU" — the same
// many-implementations-one-answer structure).
//
// A path computes the triangle count (or an estimate, or a self-checked
// invariant) of a graph through one engineering route:
//
//   exact      CPU oracles, the four Section VIII combination strategies,
//              the simulated-GPU kernels under every layout, the hybrid
//              Sections V-VI pipeline, k-count(k=3), external streaming —
//              all must equal the forward-algorithm oracle bit-for-bit;
//   estimate   DOULION-style randomized estimators — must land within the
//              statistical tolerance the path itself reports;
//   invariant  paths whose result is not a count (GPU BFS vs host BFS,
//              3-truss closure) — report 0 when the invariant holds.
//
// Paths marked policy_sensitive run once per ExecPolicy under test, which
// is how the engine checks the serial/parallel bit-identical contract of
// DESIGN.md §8; GPU paths run with the configured SancheckMode armed, so
// a hazard surfaces as a finding even when the count happens to be right.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gpusim/executor.hpp"
#include "graph/graph.hpp"
#include "resilience/runner.hpp"
#include "sancheck/sancheck.hpp"

namespace lgg::fuzz {

enum class PathKind : int { kExact = 0, kEstimate = 1, kInvariant = 2 };

[[nodiscard]] const char* path_kind_name(PathKind kind) noexcept;

struct PathContext {
  /// Host execution policy for simulator-backed paths.
  gpusim::ExecPolicy exec = gpusim::ExecPolicy::serial();
  /// Hazard analysis mode armed on simulator-backed paths.  kStrict makes
  /// any hazard throw, which the engine classifies as a finding.
  sancheck::SancheckMode sancheck = sancheck::SancheckMode::kStrict;
  /// Deterministic per-iteration seed for randomized paths (DOULION).
  std::uint64_t seed = 0;
};

struct PathOutcome {
  /// The count / estimate (kExact, kEstimate) or 0-means-ok (kInvariant).
  double value = 0.0;
  /// kEstimate only: |value - oracle| beyond this is a finding.
  double tolerance = 0.0;
  /// Extra context attached to a finding (e.g. which invariant broke).
  std::string detail;
};

struct CountingPath {
  std::string name;  // e.g. "gpu/triangle-naive"
  PathKind kind = PathKind::kExact;
  /// Run under every ExecPolicy the engine tests (simulator paths).
  bool policy_sensitive = false;
  /// Guard for paths with cost or precondition limits; empty = always.
  std::function<bool(const graph::Graph&)> applicable;
  std::function<PathOutcome(const graph::Graph&, const PathContext&)> run;
};

/// The reference value every exact path must reproduce: the forward
/// (oriented) CPU algorithm, the best-tested counter in the library.
[[nodiscard]] std::uint64_t oracle_triangles(const graph::Graph& g);

/// The full default cross-product (~20 paths; see the file comment).
[[nodiscard]] std::vector<CountingPath> default_paths();

/// The fault-campaign path (DESIGN.md §11): runs resilience::run_resilient
/// with a FaultInjector at per-site rate `rate`, seeded from
/// (ctx.seed, salt) so the fault pattern is deterministic per iteration
/// and identical across ExecPolicies.  kExact — recovery must reproduce
/// the oracle count despite the injected faults; an uncertified run
/// surfaces in the finding detail.
[[nodiscard]] CountingPath resilient_fault_path(
    double rate, std::uint64_t salt, std::uint32_t max_retries,
    resilience::Failover failover);

}  // namespace lgg::fuzz

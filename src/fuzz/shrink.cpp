#include "fuzz/shrink.hpp"

#include <algorithm>
#include <vector>

namespace lgg::fuzz {

namespace {

struct Budget {
  const FailurePredicate& fails;
  std::size_t probes = 0;
  std::size_t max_probes;

  bool exhausted() const { return probes >= max_probes; }
  bool check(const graph::Graph& g) {
    if (exhausted()) return false;
    ++probes;
    return fails(g);
  }
};

// One ddmin sweep over the vertex set: try dropping chunks of `current`'s
// vertices, halving the chunk size; whenever a drop keeps the failure,
// adopt the smaller graph and retry at the same granularity.  Returns
// true if anything was removed.
bool vertex_pass(graph::Graph& current, Budget& budget) {
  bool shrunk_any = false;
  std::size_t chunk = (current.num_vertices() + 1) / 2;
  while (chunk >= 1 && !budget.exhausted()) {
    bool removed = false;
    const std::size_t n = current.num_vertices();
    for (std::size_t start = 0; start < n && !budget.exhausted();
         start += chunk) {
      const std::size_t stop = std::min(n, start + chunk);
      std::vector<graph::Vertex> keep;
      keep.reserve(n - (stop - start));
      for (std::size_t v = 0; v < n; ++v)
        if (v < start || v >= stop) keep.push_back(static_cast<graph::Vertex>(v));
      graph::Graph candidate = current.induced_subgraph(keep).graph;
      if (budget.check(candidate)) {
        current = std::move(candidate);
        shrunk_any = removed = true;
        break;  // indices shifted; rescan at this granularity
      }
    }
    if (!removed) chunk = (chunk == 1) ? 0 : chunk / 2;
  }
  return shrunk_any;
}

// The same sweep over the edge list; vertex count is preserved so the
// predicate sees the same vertex ids, and a later vertex pass removes any
// vertices the edge removals isolated.
bool edge_pass(graph::Graph& current, Budget& budget) {
  bool shrunk_any = false;
  std::size_t chunk = (current.num_edges() + 1) / 2;
  while (chunk >= 1 && !budget.exhausted()) {
    bool removed = false;
    const auto edges = current.edges();
    for (std::size_t start = 0; start < edges.size() && !budget.exhausted();
         start += chunk) {
      const std::size_t stop = std::min(edges.size(), start + chunk);
      std::vector<graph::Edge> keep;
      keep.reserve(edges.size() - (stop - start));
      for (std::size_t i = 0; i < edges.size(); ++i)
        if (i < start || i >= stop) keep.push_back(edges[i]);
      graph::Graph candidate =
          graph::Graph::from_edges(current.num_vertices(), keep);
      if (budget.check(candidate)) {
        current = std::move(candidate);
        shrunk_any = removed = true;
        break;
      }
    }
    if (!removed) chunk = (chunk == 1) ? 0 : chunk / 2;
  }
  return shrunk_any;
}

}  // namespace

ShrinkResult shrink_graph(const graph::Graph& g,
                          const FailurePredicate& still_fails,
                          const ShrinkOptions& opts) {
  ShrinkResult result;
  result.graph = g;
  Budget budget{still_fails, 0, opts.max_probes};
  if (!budget.check(g)) {
    // Not failing (or no budget): nothing we can safely shrink.
    result.probes = budget.probes;
    return result;
  }
  for (std::size_t round = 0; round < opts.max_rounds; ++round) {
    result.rounds = round + 1;
    const bool v = vertex_pass(result.graph, budget);
    const bool e = edge_pass(result.graph, budget);
    if (!v && !e) {
      result.minimal = !budget.exhausted();
      break;
    }
  }
  result.probes = budget.probes;
  return result;
}

}  // namespace lgg::fuzz

// Delta-debugging shrinker for graphs (Zeller & Hildebrandt's ddmin,
// adapted to two nested structures): given a graph on which a failure
// predicate holds, alternate
//
//   vertex passes  remove chunks of vertices (induced subgraph on the
//                  complement), halving the chunk size down to single
//                  vertices, restarting whenever a removal keeps failing;
//   edge passes    the same over the edge list (vertex count preserved,
//                  so a follow-up vertex pass sweeps stranded isolates);
//
// until a fixpoint: no single vertex and no single edge can be removed
// without the failure disappearing (1-minimality), or the probe budget
// runs out.  The predicate is typically "this counting path still
// disagrees with the oracle on the candidate", rebuilt per candidate by
// the engine — so a shrunk repro is self-contained evidence.
#pragma once

#include <cstddef>
#include <functional>

#include "graph/graph.hpp"

namespace lgg::fuzz {

/// Must return true iff the candidate graph still exhibits the failure.
/// Called many times; should be deterministic and exception-free (the
/// engine folds path exceptions into the predicate result).
using FailurePredicate = std::function<bool(const graph::Graph&)>;

struct ShrinkOptions {
  /// Full vertex+edge sweep pairs before giving up on a fixpoint.
  std::size_t max_rounds = 24;
  /// Cap on predicate evaluations (the expensive part).
  std::size_t max_probes = 50000;
};

struct ShrinkResult {
  graph::Graph graph{0};     // the minimized failing graph
  std::size_t probes = 0;    // predicate evaluations spent
  std::size_t rounds = 0;    // sweep pairs performed
  bool minimal = false;      // true when 1-minimality was reached in budget
};

/// Shrink `g` while `still_fails` holds.  Precondition: still_fails(g) is
/// true (otherwise g is returned unchanged with minimal == false).
ShrinkResult shrink_graph(const graph::Graph& g,
                          const FailurePredicate& still_fails,
                          const ShrinkOptions& opts = {});

}  // namespace lgg::fuzz

#include "fuzz/spec.hpp"

#include <algorithm>
#include <sstream>

#include "graph/generators.hpp"
#include "util/error.hpp"

namespace lgg::fuzz {

namespace {

std::uint64_t ip(const GraphSpec& s, std::size_t i) {
  LGG_CHECK(i < s.iparams.size(), "spec '" << s.family
                                           << "': missing integer param " << i);
  return s.iparams[i];
}

double fp(const GraphSpec& s, std::size_t i) {
  LGG_CHECK(i < s.fparams.size(),
            "spec '" << s.family << "': missing real param " << i);
  return s.fparams[i];
}

}  // namespace

graph::Graph GraphSpec::build() const {
  const GraphSpec& s = *this;
  if (family == "empty") return graph::Graph(ip(s, 0));
  if (family == "gnp") return graph::erdos_renyi(ip(s, 0), fp(s, 0), seed);
  if (family == "gnm") return graph::gnm(ip(s, 0), ip(s, 1), seed);
  if (family == "ba")
    return graph::barabasi_albert(ip(s, 0), ip(s, 1), seed);
  if (family == "rmat")
    return graph::rmat(static_cast<unsigned>(ip(s, 0)), ip(s, 1), seed);
  if (family == "layered")
    return graph::layered_random(ip(s, 0), ip(s, 1), fp(s, 0), fp(s, 1),
                                 seed);
  if (family == "complete") return graph::complete(ip(s, 0));
  if (family == "cycle") return graph::cycle(ip(s, 0));
  if (family == "star") return graph::star(ip(s, 0));
  if (family == "path") return graph::path(ip(s, 0));
  if (family == "grid") return graph::grid2d(ip(s, 0), ip(s, 1));
  if (family == "bipartite")
    return graph::complete_bipartite(ip(s, 0), ip(s, 1));
  if (family == "union")
    return graph::disjoint_union(graph::erdos_renyi(ip(s, 0), fp(s, 0), seed),
                                 graph::complete(ip(s, 1)));
  LGG_THROW("unknown graph spec family: '" << family << "'");
}

std::string GraphSpec::to_string() const {
  std::ostringstream os;
  os << family;
  for (const auto v : iparams) os << ' ' << v;
  for (const auto f : fparams) os << ' ' << f;
  os << " seed=" << seed;
  return os.str();
}

const std::vector<std::string>& spec_families() {
  static const std::vector<std::string> kFamilies = {
      "empty", "gnp",  "gnm",  "ba",   "rmat",      "layered", "complete",
      "cycle", "star", "path", "grid", "bipartite", "union"};
  return kFamilies;
}

GraphSpec sample_spec(Xoshiro256& rng, const SamplerLimits& limits) {
  const auto& families = spec_families();
  const std::size_t max_n = std::max<std::size_t>(limits.max_vertices, 2);

  GraphSpec s;
  s.family = families[rng.uniform(families.size())];
  s.seed = rng.next();
  // Bias toward small graphs (shrinking lands there anyway) while still
  // reaching the ceiling: half the draws re-roll under a tighter cap.
  auto draw_n = [&](std::size_t cap) -> std::uint64_t {
    std::uint64_t n = rng.uniform(cap + 1);
    if (rng.uniform(2) == 0) n = rng.uniform(std::min<std::uint64_t>(n, 16) + 1);
    return n;
  };

  if (s.family == "empty" || s.family == "star" || s.family == "path") {
    s.iparams = {draw_n(max_n)};
  } else if (s.family == "gnp") {
    s.iparams = {draw_n(max_n)};
    s.fparams = {rng.uniform01() * limits.max_density};
  } else if (s.family == "gnm") {
    const std::uint64_t n = draw_n(max_n);
    const std::uint64_t pairs = n * (n - (n > 0 ? 1 : 0)) / 2;
    s.iparams = {n, rng.uniform(std::min<std::uint64_t>(pairs, 4 * n) + 1)};
  } else if (s.family == "ba") {
    const std::uint64_t n = std::max<std::uint64_t>(draw_n(max_n), 2);
    s.iparams = {n, 1 + rng.uniform(std::min<std::uint64_t>(4, n - 1))};
  } else if (s.family == "rmat") {
    // 2^scale vertices: keep scale under both the 2^6 sampler cap and
    // max_n (scale_min drops to fit when max_n < 4).
    std::uint64_t scale_max = 1;
    while ((std::size_t{1} << (scale_max + 1)) <= max_n && scale_max < 6)
      ++scale_max;
    const std::uint64_t scale_min = std::min<std::uint64_t>(2, scale_max);
    s.iparams = {scale_min + rng.uniform(scale_max - scale_min + 1),
                 1 + rng.uniform(6)};
  } else if (s.family == "layered") {
    const std::uint64_t n = std::max<std::uint64_t>(draw_n(max_n), 1);
    s.iparams = {n, 1 + rng.uniform(std::max<std::uint64_t>(n / 4, 1))};
    s.fparams = {rng.uniform01() * limits.max_density,
                 rng.uniform01() * limits.max_density * 0.5};
  } else if (s.family == "complete") {
    s.iparams = {rng.uniform(std::min<std::uint64_t>(max_n, 20) + 1)};
  } else if (s.family == "cycle") {
    const std::uint64_t n = draw_n(max_n);
    s.iparams = {n < 3 ? 0 : n};
  } else if (s.family == "grid") {
    // rows <= max_n and cols <= max_n / rows, so rows * cols <= max_n is
    // a hard invariant (the old 1 + uniform(8) overshot small limits).
    const std::uint64_t rows =
        1 + rng.uniform(std::min<std::uint64_t>(8, max_n));
    s.iparams = {rows,
                 1 + rng.uniform(std::max<std::uint64_t>(max_n / rows, 1))};
  } else if (s.family == "bipartite") {
    // a <= max_n - 1 leaves room for b >= 1 with a + b <= max_n.
    const std::uint64_t a =
        1 + rng.uniform(std::min<std::uint64_t>(12, max_n - 1));
    s.iparams = {a, 1 + rng.uniform(max_n - a)};
  } else if (s.family == "union") {
    s.iparams = {draw_n(max_n / 2),
                 rng.uniform(std::min<std::uint64_t>(max_n / 2, 12) + 1)};
    s.fparams = {rng.uniform01() * limits.max_density};
  } else {
    LGG_THROW("sample_spec: family '" << s.family << "' has no sampler");
  }
  return s;
}

}  // namespace lgg::fuzz

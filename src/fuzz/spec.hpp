// Randomized graph specifications for the differential fuzzer.
//
// A GraphSpec is a fully deterministic recipe — generator family,
// parameters, seed — that materialises to a graph via the generators in
// graph/generators.hpp.  The engine samples specs across EVERY family so
// a campaign exercises sparse/dense G(n,p), power-law (BA, R-MAT),
// banded-community (layered), the degenerate closed forms (complete,
// cycle, star, path, grid, bipartite, empty) and disjoint unions, with
// sizes biased toward small graphs (bugs shrink there anyway) but
// reaching the configured ceiling.
//
// Specs print as a single human-readable token line which repro files
// keep as provenance; the repro itself always carries the explicit edge
// list, so replay never depends on generator stability.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/prng.hpp"

namespace lgg::fuzz {

struct SamplerLimits {
  /// Inclusive vertex-count ceiling for sampled graphs.  The default is
  /// sized so the full path cross-product (including the four Section
  /// VIII enumeration strategies at C(n,3) combinations each) stays
  /// in the tens-of-milliseconds range per iteration.
  std::size_t max_vertices = 72;
  /// Probability ceiling for the G(n,p)-style density parameters.
  double max_density = 0.5;
};

struct GraphSpec {
  std::string family;                  // e.g. "gnp", "rmat", "union"
  std::vector<std::uint64_t> iparams;  // family-specific integer params
  std::vector<double> fparams;         // family-specific real params
  std::uint64_t seed = 0;

  /// Materialise the graph.  Throws lgg::Error on an unknown family or
  /// parameter-count mismatch.
  [[nodiscard]] graph::Graph build() const;

  /// One-line form, e.g. "gnp n=60 p=0.05 seed=7701".
  [[nodiscard]] std::string to_string() const;
};

/// All family names the sampler draws from.
[[nodiscard]] const std::vector<std::string>& spec_families();

/// Draw a random spec.  Consumes a deterministic number of rng values per
/// call for a given draw sequence, so campaigns are replayable from the
/// master seed alone.
GraphSpec sample_spec(Xoshiro256& rng, const SamplerLimits& limits = {});

}  // namespace lgg::fuzz

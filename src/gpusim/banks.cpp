#include "gpusim/banks.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace lgg::gpusim {

std::uint32_t bank_conflict_degree(std::span<const std::uint64_t> addrs,
                                   std::uint32_t banks) {
  LGG_CHECK(banks > 0, "bank_conflict_degree: banks must be positive");
  if (addrs.empty()) return 0;

  // Distinct words per bank; same word from many lanes broadcasts.
  std::vector<std::vector<std::uint64_t>> words_per_bank(banks);
  for (const std::uint64_t addr : addrs)
    words_per_bank[bank_of(addr, banks)].push_back(addr / 4);

  std::uint32_t degree = 1;
  for (auto& words : words_per_bank) {
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
    degree = std::max(degree, static_cast<std::uint32_t>(words.size()));
  }
  return degree;
}

}  // namespace lgg::gpusim

// Shared-memory bank-conflict model (paper Sections III–IV, Eq. 9).
//
// Shared memory is split into 16 (CC 1.x) or 32 (CC 2.x) banks of 32-bit
// words; successive words live in successive banks.  A half-warp's access
// is serialised by the maximum number of DISTINCT words requested from one
// bank; all lanes reading the SAME word is a broadcast and costs one step.
#pragma once

#include <cstdint>
#include <span>

namespace lgg::gpusim {

/// Bank serving byte address `addr` with `banks` 4-byte-wide banks.
[[nodiscard]] constexpr std::uint32_t bank_of(std::uint64_t addr,
                                              std::uint32_t banks) noexcept {
  return static_cast<std::uint32_t>((addr / 4) % banks);
}

/// Serialisation degree of one half-warp's shared-memory access: the
/// maximum over banks of the number of distinct words requested from that
/// bank.  Returns 1 for conflict-free or pure-broadcast patterns, and 0
/// when no lane accesses shared memory.
std::uint32_t bank_conflict_degree(std::span<const std::uint64_t> addrs,
                                   std::uint32_t banks);

}  // namespace lgg::gpusim

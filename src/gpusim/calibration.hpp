// Timing-model calibration (see DESIGN.md §6).
//
// Everything the simulator charges time for is parameterised here, in one
// place, so EXPERIMENTS.md can state exactly what "modelled seconds" mean.
// The GPU-side constants come from the DeviceSpec (clocks, bandwidths,
// latencies); this header holds the remaining knobs:
//
//  * how many core cycles one "combination test" costs on each side, and
//  * the host (CPU) reference machine of the paper: a single thread of a
//    2.27 GHz Xeon (Section XI).
//
// None of these constants encodes a GPU/CPU *ratio*; speedups in the
// benches emerge from parallelism and transaction accounting.
#pragma once

#include <cstdint>

namespace lgg::gpusim::calibration {

/// Paper's host: quad-core 2.27 GHz Intel Xeon, single thread used.
inline constexpr double kCpuClockGhz = 2.27;

/// CPU cycles for one candidate-triple test: up to three adjacency probes
/// plus the combination-generation arithmetic (the paper's implementation
/// derives each combination lexicographically, which is division-heavy).
/// 350 cycles reproduces the paper's own Fig. 10 CPU curve: ~45-50 s for
/// the n = 1200 sweep's ~2.8e8 candidate tests on the 2.27 GHz Xeon.
inline constexpr double kCpuCyclesPerTest = 350.0;

/// CPU cycles per vertex+edge visited by the BFS/preprocessing pass
/// (Algorithm 1 runs on the CPU in both implementations).
inline constexpr double kCpuCyclesPerBfsEdge = 12.0;

/// GPU warp-instructions issued per combination test, beyond the memory
/// slots the executor counts explicitly: combinadic/index arithmetic and
/// the three adjacency-bit extractions.  A CC 1.x SM issues one warp
/// instruction per 4 cycles (8 cores, 32 lanes).
inline constexpr double kGpuInstructionsPerTest = 24.0;

/// Cycles an SM needs to issue one warp instruction (CC 1.x: 32 lanes on
/// 8 cores -> 4 cycles).
inline constexpr double kCyclesPerWarpInstruction = 4.0;

/// Fixed kernel-launch overhead charged once per kernel (seconds).
inline constexpr double kKernelLaunchOverheadS = 8e-6;

/// Host-side per-kernel driver/dispatch overhead (seconds).
inline constexpr double kDispatchOverheadS = 35e-6;

/// One-time CUDA context / device initialisation charged per GPU run
/// (seconds).  Real CUDA context creation on Tesla-era driver stacks costs
/// hundreds of milliseconds; it is what makes the paper's small-graph
/// timings "almost similar" between CPU and GPU (Fig. 10, Section XI).
inline constexpr double kDeviceInitOverheadS = 0.35;

/// DRAM cycles (at core clock) that one 64-byte-class transaction occupies
/// its partition's pipe.  partition service rate = partition_width share of
/// the aggregate bandwidth; this constant folds command overhead in.
inline constexpr double kTransactionServiceCycles = 36.0;

}  // namespace lgg::gpusim::calibration

#include "gpusim/coalescing.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace lgg::gpusim {

namespace {

constexpr bool valid_word_bytes(std::uint32_t wb) {
  return wb == 1 || wb == 2 || wb == 4 || wb == 8 || wb == 16;
}

/// CC 1.0/1.1 half-warp rule: strict in-order aligned access or bust.
void coalesce_cc10(std::span<const LaneAccess> half, std::uint32_t word_bytes,
                   std::uint32_t lane_base, CoalesceResult& out) {
  if (half.empty()) return;
  const std::uint64_t segment_bytes = 16ull * word_bytes;

  // Candidate segment base from any lane: base = addr - (lane-in-half)*wb.
  const std::uint64_t base =
      half.front().addr -
      static_cast<std::uint64_t>(half.front().lane - lane_base) * word_bytes;
  bool coalesced = (base % segment_bytes) == 0;
  if (coalesced) {
    for (const LaneAccess& a : half) {
      const std::uint64_t expect =
          base + static_cast<std::uint64_t>(a.lane - lane_base) * word_bytes;
      if (a.addr != expect) {
        coalesced = false;
        break;
      }
    }
  }

  if (coalesced) {
    out.transactions.push_back(
        {base, static_cast<std::uint32_t>(segment_bytes)});
  } else {
    // Serialised: one transaction per active lane.  Tesla-era hardware
    // issues minimum 32-byte transfers for isolated words.
    const std::uint32_t txn_bytes = std::max<std::uint32_t>(word_bytes, 32);
    for (const LaneAccess& a : half)
      out.transactions.push_back({a.addr - a.addr % txn_bytes, txn_bytes});
  }
}

/// CC 1.2/1.3 half-warp rule: minimal covering aligned segments with
/// narrowing.  Base segment granularity is 128 bytes for 4/8/16-byte
/// words, 64 for 2-byte, 32 for 1-byte (Programming Guide G.3.2.2).
void coalesce_cc12(std::span<const LaneAccess> half, std::uint32_t word_bytes,
                   CoalesceResult& out) {
  if (half.empty()) return;
  const std::uint64_t seg = word_bytes >= 4 ? 128 : (word_bytes == 2 ? 64 : 32);

  // Bucket the accessed words by base segment.
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> segments;
  for (const LaneAccess& a : half) {
    const std::uint64_t s = a.addr / seg;
    auto [it, inserted] = segments.try_emplace(s, a.addr, a.addr);
    if (!inserted) {
      it->second.first = std::min(it->second.first, a.addr);
      it->second.second = std::max(it->second.second, a.addr);
    }
  }

  for (const auto& [s, span] : segments) {
    const std::uint64_t base = s * seg;
    std::uint64_t size = seg;
    std::uint64_t lo = span.first, hi = span.second + word_bytes - 1;
    // Narrow while both extremes sit in the same half of the segment.
    std::uint64_t b = base;
    while (size > 32) {
      const std::uint64_t half_size = size / 2;
      if (hi < b + half_size) {
        size = half_size;
      } else if (lo >= b + half_size) {
        b += half_size;
        size = half_size;
      } else {
        break;
      }
    }
    out.transactions.push_back({b, static_cast<std::uint32_t>(size)});
  }
}

/// CC 2.0 warp rule: one transaction per distinct 128-byte L1 line.
void coalesce_cc20(std::span<const LaneAccess> warp, std::uint32_t word_bytes,
                   CoalesceResult& out) {
  std::vector<std::uint64_t> lines;
  lines.reserve(warp.size());
  for (const LaneAccess& a : warp) {
    lines.push_back(a.addr / 128);
    // A word straddling a line boundary touches the next line too.
    if ((a.addr % 128) + word_bytes > 128) lines.push_back(a.addr / 128 + 1);
  }
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  for (const std::uint64_t line : lines)
    out.transactions.push_back({line * 128, 128});
}

}  // namespace

CoalesceResult coalesce_warp(ComputeCapability cc,
                             std::span<const LaneAccess> accesses,
                             std::uint32_t word_bytes) {
  LGG_CHECK(valid_word_bytes(word_bytes),
            "coalesce_warp: invalid word size " << word_bytes);
  for (const LaneAccess& a : accesses) {
    LGG_CHECK(a.lane < 32, "coalesce_warp: lane " << a.lane << " out of range");
    LGG_CHECK(a.addr % word_bytes == 0,
              "coalesce_warp: address " << a.addr
                                        << " misaligned for word size "
                                        << word_bytes);
  }

  CoalesceResult result;
  if (cc >= ComputeCapability::k20) {
    coalesce_cc20(accesses, word_bytes, result);
    return result;
  }

  // Split into half-warps (lanes 0-15, 16-31), preserving lane order.
  std::vector<LaneAccess> low, high;
  for (const LaneAccess& a : accesses)
    (a.lane < 16 ? low : high).push_back(a);
  auto by_lane = [](const LaneAccess& x, const LaneAccess& y) {
    return x.lane < y.lane;
  };
  std::sort(low.begin(), low.end(), by_lane);
  std::sort(high.begin(), high.end(), by_lane);

  if (cc <= ComputeCapability::k11) {
    coalesce_cc10(low, word_bytes, 0, result);
    coalesce_cc10(high, word_bytes, 16, result);
  } else {
    coalesce_cc12(low, word_bytes, result);
    coalesce_cc12(high, word_bytes, result);
  }
  return result;
}

std::size_t warp_transaction_count(ComputeCapability cc,
                                   std::span<const std::uint64_t> lane_addrs,
                                   std::uint32_t word_bytes) {
  std::vector<LaneAccess> accesses;
  accesses.reserve(lane_addrs.size());
  for (std::uint32_t lane = 0; lane < lane_addrs.size(); ++lane)
    accesses.push_back({lane, lane_addrs[lane]});
  return coalesce_warp(cc, accesses, word_bytes).count();
}

}  // namespace lgg::gpusim

// Global-memory access coalescing rules (paper Section IX, Table III),
// implemented per CUDA C Programming Guide v3.2, Appendix G:
//
//  * CC 1.0/1.1 — per HALF-warp.  One transaction iff the k-th active lane
//    reads the k-th word of a naturally aligned segment (16 * word_bytes);
//    lanes may be inactive, but no permutation.  Otherwise the half-warp
//    is serialised: one transaction per active lane.
//  * CC 1.2/1.3 — per HALF-warp.  Hardware finds the minimal set of
//    aligned segments covering the requested words; a 128-byte segment is
//    narrowed to 64/32 bytes when only one half/quarter is touched.
//    Permutations within a segment cost nothing.
//  * CC 2.0   — per WARP, through the L1 cache: one transaction per
//    distinct 128-byte line.
//
// These rules reproduce the paper's Table III exactly (see
// bench_table3_coalescing and the unit tests).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device.hpp"

namespace lgg::gpusim {

/// One lane's memory request: which lane issued it and the byte address.
/// Inactive lanes are simply absent from the span.
struct LaneAccess {
  std::uint32_t lane = 0;  // 0..31 within the warp
  std::uint64_t addr = 0;  // simulated global byte address
};

/// One memory transaction produced by the coalescer.
struct Transaction {
  std::uint64_t base = 0;   // segment base address
  std::uint32_t bytes = 0;  // segment size actually transferred
};

struct CoalesceResult {
  std::vector<Transaction> transactions;

  [[nodiscard]] std::size_t count() const noexcept {
    return transactions.size();
  }
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& t : transactions) total += t.bytes;
    return total;
  }
};

/// Coalesce one warp's simultaneous accesses of `word_bytes`-sized words.
/// For CC < 2.0 the warp is processed as two independent half-warps
/// (lanes 0-15 and 16-31), matching the hardware.  `word_bytes` must be
/// 1, 2, 4, 8 or 16.
CoalesceResult coalesce_warp(ComputeCapability cc,
                             std::span<const LaneAccess> accesses,
                             std::uint32_t word_bytes);

/// Convenience for tests/benches: transaction count for a full 32-lane
/// warp reading `word_bytes` words at the given per-lane addresses.
std::size_t warp_transaction_count(ComputeCapability cc,
                                   std::span<const std::uint64_t> lane_addrs,
                                   std::uint32_t word_bytes);

}  // namespace lgg::gpusim

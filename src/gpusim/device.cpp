#include "gpusim/device.hpp"

#include <algorithm>
#include <array>
#include <cctype>

#include "util/error.hpp"

namespace lgg::gpusim {

namespace {

DeviceSpec make_c1060() {
  DeviceSpec d;
  d.name = "C1060";
  d.cores = 240;                                 // Table I
  d.global_mem_bytes = 4ull * 1024 * 1024 * 1024;
  d.shared_mem_bytes = 16 * 1024;
  d.shared_banks = 16;
  d.cc = ComputeCapability::k13;
  d.sm_count = 30;
  d.max_warps_per_sm = 32;
  d.max_blocks_per_sm = 8;
  d.max_threads_per_sm = 1024;
  d.registers_per_sm = 16384;
  d.partitions = 8;  // GT200 (200-series): 8 partitions of 256 B
  d.partition_width_bytes = 256;
  d.core_clock_ghz = 1.296;
  d.mem_bandwidth_gbps = 102.0;
  d.global_latency_cycles = 550;
  d.shared_latency_cycles = 4;
  return d;
}

DeviceSpec make_c2050() {
  DeviceSpec d;
  d.name = "C2050";
  d.cores = 448;                                 // Table I
  d.global_mem_bytes = 3ull * 1024 * 1024 * 1024;
  d.shared_mem_bytes = 48 * 1024;
  d.shared_banks = 32;
  d.cc = ComputeCapability::k20;
  d.sm_count = 14;
  d.max_warps_per_sm = 48;
  d.max_blocks_per_sm = 8;
  d.max_threads_per_sm = 1536;
  d.registers_per_sm = 32768;
  d.partitions = 6;  // Fermi: camping absorbed by caches anyway
  d.partition_width_bytes = 256;
  d.core_clock_ghz = 1.15;
  d.mem_bandwidth_gbps = 144.0;
  d.global_latency_cycles = 400;
  d.shared_latency_cycles = 4;
  return d;
}

DeviceSpec make_c2070() {
  DeviceSpec d = make_c2050();
  d.name = "C2070";
  d.global_mem_bytes = 6ull * 1024 * 1024 * 1024;
  return d;
}

const std::array<DeviceSpec, 3>& registry() {
  static const std::array<DeviceSpec, 3> devices = {
      make_c1060(), make_c2050(), make_c2070()};
  return devices;
}

}  // namespace

const DeviceSpec& tesla_c1060() { return registry()[0]; }
const DeviceSpec& tesla_c2050() { return registry()[1]; }
const DeviceSpec& tesla_c2070() { return registry()[2]; }

std::span<const DeviceSpec> known_devices() { return registry(); }

const DeviceSpec& device_by_name(std::string_view name) {
  auto lower = [](std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    return out;
  };
  const std::string want = lower(name);
  for (const DeviceSpec& d : registry())
    if (lower(d.name) == want) return d;
  LGG_THROW("unknown device '" << name << "' (known: C1060, C2050, C2070)");
}

}  // namespace lgg::gpusim

// Device descriptions for the simulated CUDA substrate.
//
// The paper's Table I compares three Tesla boards; DeviceSpec carries those
// numbers plus the architectural parameters the memory model needs
// (partition count/width, warp size, clocks).  Values are from the paper
// and the NVIDIA CUDA C Programming Guide v3.2 / board datasheets.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace lgg::gpusim {

/// CUDA compute capability relevant to the coalescing rules of Table III.
enum class ComputeCapability : int {
  k10 = 10,
  k11 = 11,
  k12 = 12,
  k13 = 13,
  k20 = 20,
};

[[nodiscard]] constexpr const char* to_string(ComputeCapability cc) noexcept {
  switch (cc) {
    case ComputeCapability::k10: return "1.0";
    case ComputeCapability::k11: return "1.1";
    case ComputeCapability::k12: return "1.2";
    case ComputeCapability::k13: return "1.3";
    case ComputeCapability::k20: return "2.0";
  }
  return "?";
}

struct DeviceSpec {
  std::string name;

  // --- Table I columns ---
  std::uint32_t cores = 0;             // total CUDA cores
  std::uint64_t global_mem_bytes = 0;  // DRAM size
  std::uint32_t shared_mem_bytes = 0;  // per SM
  std::uint32_t shared_banks = 16;     // 16 (CC 1.x) or 32 (CC 2.x)
  ComputeCapability cc = ComputeCapability::k13;

  // --- architectural parameters for the memory/execution model ---
  std::uint32_t sm_count = 0;          // streaming multiprocessors
  std::uint32_t warp_size = 32;
  std::uint32_t max_warps_per_sm = 32; // occupancy ceiling
  std::uint32_t max_blocks_per_sm = 8;
  std::uint32_t max_threads_per_sm = 1024;
  std::uint32_t registers_per_sm = 16384;  // 32-bit registers
  std::uint32_t partitions = 8;        // global-memory partitions
  std::uint32_t partition_width_bytes = 256;
  double core_clock_ghz = 1.3;         // shader clock
  double mem_bandwidth_gbps = 100.0;   // aggregate DRAM bandwidth (GB/s)
  std::uint32_t global_latency_cycles = 500;
  std::uint32_t shared_latency_cycles = 4;
  double pcie_bandwidth_gbps = 3.0;    // effective host<->device
  double pcie_latency_s = 10e-6;

  [[nodiscard]] std::uint32_t cores_per_sm() const noexcept {
    return sm_count ? cores / sm_count : 0;
  }
  [[nodiscard]] std::uint64_t shared_mem_bits() const noexcept {
    return std::uint64_t{8} * shared_mem_bytes;
  }
  [[nodiscard]] std::uint64_t global_mem_bits() const noexcept {
    return std::uint64_t{8} * global_mem_bytes;
  }
  /// True when global loads go through an L1/L2 cache (CC >= 2.0), which
  /// is what neutralises partition camping on Fermi (paper Section X).
  [[nodiscard]] bool has_cached_global() const noexcept {
    return cc >= ComputeCapability::k20;
  }
};

/// The three boards of the paper's Table I.
const DeviceSpec& tesla_c1060();
const DeviceSpec& tesla_c2050();
const DeviceSpec& tesla_c2070();

/// All known devices, Table I order.
std::span<const DeviceSpec> known_devices();

/// Lookup by name ("C1060", case-insensitive); throws lgg::Error if absent.
const DeviceSpec& device_by_name(std::string_view name);

}  // namespace lgg::gpusim

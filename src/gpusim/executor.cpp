#include "gpusim/executor.hpp"

#include <algorithm>

#include "gpusim/banks.hpp"
#include "gpusim/calibration.hpp"
#include "gpusim/coalescing.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace lgg::gpusim {

namespace {

struct SmAccumulator {
  double warp_instructions = 0.0;
  std::uint64_t bank_conflict_steps = 0;
  std::uint64_t global_slots = 0;
  std::uint64_t warps = 0;
};

/// Private accumulation state of one shard.  Shard s owns every block
/// mapped to SM s (block % sm_count == s) and replays those warps in
/// increasing warp order, so each SM's floating-point compute sum folds in
/// exactly the serial-iteration order no matter which host worker runs the
/// shard — the basis of the bit-identical-report guarantee.
struct ShardState {
  SmAccumulator sm;
  PartitionHistogram hist;
  std::uint64_t transactions = 0;
  std::uint64_t bytes = 0;
  std::uint64_t shared_slots = 0;
  std::uint64_t sampled_warps = 0;
  // Profiler counters (see LaunchCounters); accumulated unconditionally —
  // a few integer adds per slot — so the replay path is identical whether
  // or not a ProfilerHook is attached.
  std::uint64_t coalesced_slots = 0;
  std::uint64_t uncoalesced_slots = 0;
  std::uint64_t coalesced_transactions = 0;
  std::uint64_t uncoalesced_transactions = 0;
  std::uint64_t ideal_transactions = 0;
  std::uint64_t shared_accesses = 0;
  std::uint64_t divergent_warps = 0;
  /// Retained lane tapes (inspector runs only); later merged and sorted
  /// into (block, thread) order, so the collection order here is free.
  std::vector<ThreadTrace> traces;
};

/// CC-minimal transaction count for one warp slot (the denominator of the
/// coalesced/uncoalesced split).  CC < 2.0 issues per half-warp, so the
/// floor is one aligned segment per non-empty half (16 lanes x <= 8 bytes
/// always fits one 128-byte segment); CC 2.0 issues whole cache lines, so
/// the floor is the lines strictly needed to carry the active words.
std::uint64_t ideal_slot_transactions(ComputeCapability cc,
                                      const std::vector<LaneAccess>& slot,
                                      std::uint32_t word_bytes) {
  if (slot.empty()) return 0;
  if (cc >= ComputeCapability::k20) {
    const std::uint64_t need =
        static_cast<std::uint64_t>(slot.size()) * word_bytes;
    return std::max<std::uint64_t>(1, (need + 127) / 128);
  }
  bool half[2] = {false, false};
  for (const LaneAccess& a : slot) half[a.lane >= 16 ? 1 : 0] = true;
  return static_cast<std::uint64_t>(half[0]) +
         static_cast<std::uint64_t>(half[1]);
}

/// Per-host-worker scratch reused across every warp the worker replays:
/// lane tapes keep their heap capacity across clear(), and the coalescing
/// slot / bank half-warp buffers are hoisted out of the warp loop, so
/// steady-state replay performs no allocations.
struct WorkerScratch {
  std::vector<ThreadRecorder> lanes;
  std::vector<LaneAccess> slot;
  std::vector<std::uint64_t> half_addrs;

  // Lane tapes are reserved by the caller (ThreadRecorder::reserve is
  // simulator-private, and this struct lives outside the friendship).
  explicit WorkerScratch(std::uint32_t warp_size) : lanes(warp_size) {
    slot.reserve(warp_size);
    half_addrs.reserve(16);
  }
};

}  // namespace

KernelReport Simulator::run(const KernelFn& kernel, const KernelConfig& config,
                            std::uint32_t sample_stride,
                            const ExecPolicy& policy,
                            const LaunchInspector* inspector,
                            ProfilerHook* profiler) const {
  LGG_CHECK(config.blocks > 0 && config.threads_per_block > 0,
            "Simulator::run: empty launch configuration");
  LGG_CHECK(config.threads_per_block <= 1024,
            "Simulator::run: threads_per_block " << config.threads_per_block
                                                 << " exceeds 1024");
  LGG_CHECK(sample_stride >= 1, "Simulator::run: sample_stride must be >= 1");

  if (faults_ != nullptr && faults_->on_launch(config)) {
    throw DeviceFault(FaultSite::kLaunch, "injected fault: launch of '" +
                                              config.name +
                                              "' failed (transient error)");
  }

  const DeviceSpec& dev = *spec_;
  const std::uint32_t warp_size = dev.warp_size;
  const std::uint32_t warps_per_block = config.warps_per_block(warp_size);
  const std::uint64_t total_warps = config.total_warps(warp_size);

  KernelReport report;
  report.name = config.name;
  report.blocks = config.blocks;
  report.threads_per_block = config.threads_per_block;
  report.warps = total_warps;
  report.sample_fraction = 1.0 / sample_stride;
  report.partition_histogram.count.assign(dev.partitions, 0);

  const PartitionModel partition_model(dev);
  std::vector<ShardState> shards(dev.sm_count);

  // SM-abort fault sweep: decided host-serially for every OCCUPIED SM
  // (sm < min(blocks, sm_count)) before any shard runs, so the hook's
  // consultation sequence never depends on the host thread count.  An
  // aborted SM replays only the first half of its warps (watchdog-style
  // mid-kernel death); the launch throws after all shards finish — by
  // then partial per-warp outputs may exist, so callers must treat the
  // outputs of a faulted launch as garbage.
  std::vector<std::uint8_t> aborted(dev.sm_count, 0);
  std::vector<std::uint64_t> shard_warp_count(dev.sm_count, 0);
  for (std::uint32_t sm = 0; sm < dev.sm_count; ++sm) {
    const std::uint64_t blocks_in_shard =
        config.blocks > sm
            ? (static_cast<std::uint64_t>(config.blocks) - 1 - sm) /
                      dev.sm_count +
                  1
            : 0;
    shard_warp_count[sm] = blocks_in_shard * warps_per_block;
  }
  bool any_abort = false;
  if (faults_ != nullptr) {
    const std::uint32_t occupied = std::min(config.blocks, dev.sm_count);
    for (std::uint32_t sm = 0; sm < occupied; ++sm) {
      if (faults_->on_sm_abort(config, sm)) {
        aborted[sm] = 1;
        any_abort = true;
      }
    }
  }

  const auto make_scratch = [warp_size]() {
    WorkerScratch scratch(warp_size);
    for (auto& lane : scratch.lanes) lane.reserve(64);
    return scratch;
  };

  // Replays every warp of shard `sm` (blocks sm, sm + sm_count, ... in
  // increasing order) into that shard's private state.  Pure function of
  // (sm, launch config): safe and deterministic under any worker mapping.
  const auto run_shard = [&](std::uint32_t sm, WorkerScratch& scratch) {
    ShardState& sh = shards[sm];
    sh.hist.count.assign(dev.partitions, 0);
    auto& lanes = scratch.lanes;
    // An aborted SM dies after visiting half its warps (in program order,
    // counted before the sampling decision so serial and sampled runs die
    // at the same point in the warp stream).
    std::uint64_t warp_budget = ~std::uint64_t{0};
    if (aborted[sm] != 0) warp_budget = shard_warp_count[sm] / 2;
    std::uint64_t warps_visited = 0;
    for (std::uint32_t block = sm; block < config.blocks;
         block += dev.sm_count) {
      for (std::uint32_t w = 0; w < warps_per_block; ++w) {
        if (warps_visited == warp_budget) return;
        ++warps_visited;
        // Global warp index in serial iteration order: the sampling
        // decision is identical to a single-threaded sweep.
        const std::uint64_t warp_index =
            static_cast<std::uint64_t>(block) * warps_per_block + w;
        if (warp_index % sample_stride != 0) continue;
        ++sh.sampled_warps;
        ++sh.sm.warps;

        // Run the warp's lanes, collecting tapes.
        const std::uint32_t first_thread = w * warp_size;
        const std::uint32_t lanes_in_warp =
            std::min(warp_size, config.threads_per_block - first_thread);
        double warp_compute = 0.0;
        std::size_t max_global = 0, max_shared = 0;
        std::size_t min_global = ~std::size_t{0}, min_shared = ~std::size_t{0};
        for (std::uint32_t lane = 0; lane < lanes_in_warp; ++lane) {
          lanes[lane].clear();
          ThreadCtx ctx;
          ctx.block = block;
          ctx.thread = first_thread + lane;
          ctx.global_id = static_cast<std::uint64_t>(block) *
                              config.threads_per_block +
                          ctx.thread;
          ctx.lane = lane;
          ctx.warp = w;
          ctx.global_warp = warp_index;
          kernel(ctx, lanes[lane]);
          warp_compute = std::max(warp_compute, lanes[lane].compute_);
          max_global = std::max(max_global, lanes[lane].global_.size());
          max_shared = std::max(max_shared, lanes[lane].shared_.size());
          min_global = std::min(min_global, lanes[lane].global_.size());
          min_shared = std::min(min_shared, lanes[lane].shared_.size());
          if (inspector != nullptr)
            sh.traces.push_back(
                {ctx, lanes[lane].global_, lanes[lane].shared_,
                 lanes[lane].syncs_});
        }
        sh.sm.warp_instructions += warp_compute;
        if (min_global != max_global || min_shared != max_shared)
          ++sh.divergent_warps;

        // Global slots: coalesce the s-th access of every lane together.
        for (std::size_t s = 0; s < max_global; ++s) {
          scratch.slot.clear();
          std::uint32_t word_bytes = 0;
          for (std::uint32_t lane = 0; lane < lanes_in_warp; ++lane) {
            if (s >= lanes[lane].global_.size()) continue;
            const auto& access = lanes[lane].global_[s];
            if (word_bytes == 0) word_bytes = access.word_bytes;
            LGG_ASSERT(word_bytes == access.word_bytes);
            scratch.slot.push_back({lane, access.addr});
          }
          const CoalesceResult coalesced =
              coalesce_warp(dev.cc, scratch.slot, word_bytes);
          sh.transactions += coalesced.count();
          sh.bytes += coalesced.bytes();
          sh.hist.add_transactions(partition_model, coalesced.transactions);
          ++sh.sm.global_slots;
          const std::uint64_t ideal =
              ideal_slot_transactions(dev.cc, scratch.slot, word_bytes);
          sh.ideal_transactions += ideal;
          if (coalesced.count() == ideal) {
            ++sh.coalesced_slots;
            sh.coalesced_transactions += coalesced.count();
          } else {
            ++sh.uncoalesced_slots;
            sh.uncoalesced_transactions += coalesced.count();
          }
        }

        // Shared slots: bank conflicts per half-warp.
        for (std::size_t s = 0; s < max_shared; ++s) {
          ++sh.shared_slots;
          for (std::uint32_t half = 0; half < 2; ++half) {
            scratch.half_addrs.clear();
            const std::uint32_t lo = half * 16;
            const std::uint32_t hi = std::min(lanes_in_warp, lo + 16);
            for (std::uint32_t lane = lo; lane < hi; ++lane)
              if (s < lanes[lane].shared_.size())
                scratch.half_addrs.push_back(lanes[lane].shared_[s].addr);
            if (scratch.half_addrs.empty()) continue;
            ++sh.shared_accesses;
            const std::uint32_t degree =
                bank_conflict_degree(scratch.half_addrs, dev.shared_banks);
            sh.sm.bank_conflict_steps += degree;
          }
        }
      }
    }
  };

  if (policy.mode == ExecPolicy::Mode::kSerial || dev.sm_count <= 1) {
    WorkerScratch scratch = make_scratch();
    for (std::uint32_t sm = 0; sm < dev.sm_count; ++sm)
      run_shard(sm, scratch);
  } else {
    // One parallel_for chunk == one contiguous shard range on one host
    // thread; shard contents are independent of the chunking, so any
    // worker count (including 1) produces byte-identical shard states.
    const auto shard_range = [&](std::size_t lo, std::size_t hi) {
      WorkerScratch scratch = make_scratch();
      for (std::size_t sm = lo; sm < hi; ++sm)
        run_shard(static_cast<std::uint32_t>(sm), scratch);
    };
    if (policy.threads > 0) {
      ThreadPool pool(policy.threads);
      pool.parallel_for(dev.sm_count, shard_range);
    } else {
      ThreadPool::shared().parallel_for(dev.sm_count, shard_range);
    }
  }

  // A decided SM abort surfaces only after every shard has finished its
  // (possibly truncated) replay: the throw point is deterministic, and no
  // host worker is ever interrupted mid-warp.  The fault carries each
  // aborted SM's abort boundary (warps completed before the death) so a
  // recovery layer can salvage the completed warps' output slots.
  if (any_abort) {
    std::string which;
    std::vector<SmAbortInfo> infos;
    for (std::uint32_t sm = 0; sm < dev.sm_count; ++sm) {
      if (aborted[sm] != 0) {
        if (!which.empty()) which += ",";
        which += std::to_string(sm);
        infos.push_back(
            {sm, shard_warp_count[sm] / 2, shard_warp_count[sm]});
      }
    }
    throw SmAbortFault("injected fault: SM(s) " + which +
                           " aborted mid-kernel in '" + config.name + "'",
                       std::move(infos));
  }

  // Merge shards in fixed SM order (integer sums are order-free; the FP
  // compute sums never cross shards, so this order fixes everything else).
  const bool profiling = profiler != nullptr;
  LaunchCounters counters;
  if (profiling) counters.sms.assign(dev.sm_count, SmCounters{});
  std::uint64_t sampled_warps = 0;
  std::vector<SmAccumulator> sms(dev.sm_count);
  for (std::uint32_t sm = 0; sm < dev.sm_count; ++sm) {
    const ShardState& sh = shards[sm];
    sms[sm] = sh.sm;
    report.transactions += sh.transactions;
    report.bytes += sh.bytes;
    report.global_slots += sh.sm.global_slots;
    report.shared_slots += sh.shared_slots;
    report.bank_conflict_steps += sh.sm.bank_conflict_steps;
    report.warp_instructions += sh.sm.warp_instructions;
    report.partition_histogram.merge(sh.hist);
    sampled_warps += sh.sampled_warps;
    if (profiling) {
      counters.coalesced_slots += sh.coalesced_slots;
      counters.uncoalesced_slots += sh.uncoalesced_slots;
      counters.coalesced_transactions += sh.coalesced_transactions;
      counters.uncoalesced_transactions += sh.uncoalesced_transactions;
      counters.ideal_transactions += sh.ideal_transactions;
      counters.shared_accesses += sh.shared_accesses;
      counters.divergent_warps += sh.divergent_warps;
      SmCounters& c = counters.sms[sm];
      c.sm = sm;
      c.warps = sh.sm.warps;
      c.global_slots = sh.sm.global_slots;
      c.transactions = sh.transactions;
      c.warp_instructions = sh.sm.warp_instructions;
      c.bank_conflict_steps = sh.sm.bank_conflict_steps;
    }
  }
  LGG_ASSERT(sampled_warps > 0);

  // Scale sampled statistics back to the full launch.
  const double scale = static_cast<double>(sample_stride);
  if (sample_stride > 1) {
    report.transactions = static_cast<std::uint64_t>(
        static_cast<double>(report.transactions) * scale);
    report.bytes =
        static_cast<std::uint64_t>(static_cast<double>(report.bytes) * scale);
    report.global_slots = static_cast<std::uint64_t>(
        static_cast<double>(report.global_slots) * scale);
    report.shared_slots = static_cast<std::uint64_t>(
        static_cast<double>(report.shared_slots) * scale);
    report.bank_conflict_steps = static_cast<std::uint64_t>(
        static_cast<double>(report.bank_conflict_steps) * scale);
    report.warp_instructions *= scale;
    for (auto& c : report.partition_histogram.count)
      c = static_cast<std::uint64_t>(static_cast<double>(c) * scale);
    report.partition_histogram.total = static_cast<std::uint64_t>(
        static_cast<double>(report.partition_histogram.total) * scale);
    for (auto& sm : sms) {
      sm.warp_instructions *= scale;
      sm.bank_conflict_steps = static_cast<std::uint64_t>(
          static_cast<double>(sm.bank_conflict_steps) * scale);
      sm.global_slots = static_cast<std::uint64_t>(
          static_cast<double>(sm.global_slots) * scale);
      sm.warps = static_cast<std::uint64_t>(
          static_cast<double>(sm.warps) * scale);
    }
    if (profiling) {
      const auto scaled = [scale](std::uint64_t v) {
        return static_cast<std::uint64_t>(static_cast<double>(v) * scale);
      };
      counters.coalesced_slots = scaled(counters.coalesced_slots);
      counters.uncoalesced_slots = scaled(counters.uncoalesced_slots);
      counters.coalesced_transactions =
          scaled(counters.coalesced_transactions);
      counters.uncoalesced_transactions =
          scaled(counters.uncoalesced_transactions);
      counters.ideal_transactions = scaled(counters.ideal_transactions);
      counters.shared_accesses = scaled(counters.shared_accesses);
      counters.divergent_warps = scaled(counters.divergent_warps);
      for (auto& c : counters.sms) {
        c.warps = scaled(c.warps);
        c.global_slots = scaled(c.global_slots);
        c.transactions = scaled(c.transactions);
        c.warp_instructions *= scale;
        c.bank_conflict_steps = scaled(c.bank_conflict_steps);
      }
    }
  }
  report.camping_factor = report.partition_histogram.camping_factor();

  // Sancheck hook: merge the retained tapes into (block, thread) order —
  // deterministic for every ExecPolicy — and hand them to the inspector.
  // Runs before the timing derivation so a strict-mode throw leaves no
  // half-priced report behind.
  if (inspector != nullptr) {
    std::vector<ThreadTrace> traces;
    std::size_t count = 0;
    for (const ShardState& sh : shards) count += sh.traces.size();
    traces.reserve(count);
    for (ShardState& sh : shards)
      for (ThreadTrace& t : sh.traces) traces.push_back(std::move(t));
    std::sort(traces.begin(), traces.end(),
              [](const ThreadTrace& a, const ThreadTrace& b) {
                return a.ctx.block != b.ctx.block
                           ? a.ctx.block < b.ctx.block
                           : a.ctx.thread < b.ctx.thread;
              });
    inspector->inspect(config, dev, traces, report);
  }

  // --- timing (see header comment) ---
  namespace cal = calibration;
  double max_sm_compute = 0.0, max_sm_latency = 0.0;
  for (std::uint32_t i = 0; i < dev.sm_count; ++i) {
    const auto& sm = sms[i];
    if (sm.warps == 0) continue;
    const double compute =
        (sm.warp_instructions + static_cast<double>(sm.bank_conflict_steps)) *
        cal::kCyclesPerWarpInstruction;
    const double resident = static_cast<double>(
        std::min<std::uint64_t>(sm.warps, dev.max_warps_per_sm));
    const double latency = static_cast<double>(sm.global_slots) *
                           static_cast<double>(dev.global_latency_cycles) /
                           resident;
    max_sm_compute = std::max(max_sm_compute, compute);
    max_sm_latency = std::max(max_sm_latency, latency);
    if (profiling) {
      SmCounters& c = counters.sms[i];
      c.compute_cycles = compute;
      c.latency_cycles = latency;
      c.busy_cycles = std::max(compute, latency);
    }
  }
  report.compute_cycles = max_sm_compute;
  report.latency_cycles = max_sm_latency;

  const std::uint64_t dram_steps =
      dev.has_cached_global() ? report.partition_histogram.ideal_steps()
                              : report.partition_histogram.serialized_steps();
  report.dram_cycles =
      static_cast<double>(dram_steps) * cal::kTransactionServiceCycles;

  const double cycles = std::max(
      {report.compute_cycles, report.latency_cycles, report.dram_cycles});
  report.kernel_time_s =
      cycles / (dev.core_clock_ghz * 1e9) + cal::kKernelLaunchOverheadS;

  if (profiling) {
    counters.memory_replays =
        report.transactions -
        std::min(counters.ideal_transactions, report.transactions);
    counters.shared_replays =
        report.bank_conflict_steps -
        std::min(counters.shared_accesses, report.bank_conflict_steps);
    profiler->on_launch(config, dev, counters, report);
  }
  return report;
}

TransferReport Simulator::transfer(std::uint64_t bytes) const {
  TransferReport t{bytes, transfer_time_s(*spec_, bytes), false};
  t.corrupted = faults_ != nullptr && faults_->on_transfer(bytes);
  return t;
}

}  // namespace lgg::gpusim

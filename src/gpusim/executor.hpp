// The simulated CUDA executor: runs kernels thread-by-thread on the host,
// records every memory access, and prices the launch with the coalescing /
// partition / bank models plus the calibrated cycle accounting.
//
// Execution model
// ---------------
// A kernel is a host callable invoked once per simulated thread.  Threads
// are grouped into 32-lane warps; blocks are assigned to SMs round-robin
// (block b runs on SM b % sm_count), matching the paper's Section VI view
// of chunk jobs on identical machines.
//
// Memory-access semantics: each thread records a *tape* of global/shared
// accesses.  Within a warp, the i-th global access of every lane is
// treated as one SIMT instruction slot and coalesced across the warp
// (lockstep assumption — correct for the uniform-control-flow kernels in
// this library, and the standard approximation elsewhere).
//
// Timing model (cycles at the device core clock; see calibration.hpp)
//   per SM:  compute = Σ_warp (warp_instructions + bank penalty) * 4
//            latency = Σ_warp global_slots * L / min(warps, max_resident)
//            sm_time = max(compute, latency)
//   global:  dram = serialized_partition_steps * t_service   (CC < 2.0)
//                 = ideal_partition_steps     * t_service   (CC >= 2.0,
//                   camping neutralised by the cache — paper Section X)
//   kernel  = max(max_sm sm_time, dram) / clock + launch overhead
//
// Sampling: run(..., sample_stride = k) simulates every k-th warp fully
// and scales all aggregate statistics by k.  Timing keeps the same model;
// the triangle-count style *functional* result of skipped warps is NOT
// produced, so sampled runs are for timing studies only (the benches pair
// them with an exact host-side count).
//
// Host-side parallel execution (DESIGN.md §8)
// -------------------------------------------
// Simulated warps are independent by construction, so run() shards the
// launch across host threads: shard s owns every block mapped to SM s and
// replays its warps in increasing warp order into private accumulators.
// Shards are merged in fixed SM order, so the returned KernelReport is
// bit-identical regardless of host thread count (including serial and
// including sample_stride > 1): the shard decomposition — and therefore
// every floating-point summation order — depends only on the launch
// configuration, never on the worker count.
//
// Thread-safety contract for kernels: run() may invoke the kernel
// concurrently from multiple host threads, one warp at a time per thread
// (lanes of one warp always execute sequentially on one thread).  A kernel
// must therefore only (a) read captured state that stays immutable for the
// duration of the launch, (b) record through its ThreadRecorder, and
// (c) write per-warp results into output slots indexed by ctx.global_warp
// (or per-thread slots indexed by ctx.global_id).  The core/ kernels
// (triangle_gpu, intersect_gpu, subgraph_gpu, bfs_gpu, hybrid) all follow
// this contract.  Pass ExecPolicy::serial() as an escape hatch for
// kernels that cannot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/fault.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/report.hpp"

namespace lgg::gpusim {

struct KernelConfig {
  std::string name = "kernel";
  std::uint32_t blocks = 1;
  std::uint32_t threads_per_block = 32;

  /// Warps per block for the given warp size (last warp may be partial).
  [[nodiscard]] std::uint32_t warps_per_block(
      std::uint32_t warp_size) const noexcept {
    return (threads_per_block + warp_size - 1) / warp_size;
  }
  /// Total warps in the launch; kernels size per-warp output-slot arrays
  /// (indexed by ThreadCtx::global_warp) with this.
  [[nodiscard]] std::uint64_t total_warps(
      std::uint32_t warp_size) const noexcept {
    return static_cast<std::uint64_t>(blocks) * warps_per_block(warp_size);
  }
};

/// How run() uses host threads.  The report is bit-identical across all
/// policies; this only trades wall-clock time on the simulating host.
struct ExecPolicy {
  enum class Mode : std::uint8_t { kSerial, kParallel };
  Mode mode = Mode::kParallel;
  /// kParallel only: 0 uses the process-wide shared pool (sized to the
  /// hardware concurrency); > 0 runs on a private pool of exactly that
  /// many workers (mainly for determinism tests).
  std::size_t threads = 0;

  [[nodiscard]] static ExecPolicy serial() noexcept {
    return {Mode::kSerial, 0};
  }
  [[nodiscard]] static ExecPolicy parallel(std::size_t threads = 0) noexcept {
    return {Mode::kParallel, threads};
  }
};

/// Identity of one simulated thread.
struct ThreadCtx {
  std::uint32_t block = 0;
  std::uint32_t thread = 0;      // within block
  std::uint64_t global_id = 0;   // block * threads_per_block + thread
  std::uint32_t lane = 0;        // thread % 32
  std::uint32_t warp = 0;        // thread / 32 (within block)
  /// block * warps_per_block + warp: unique warp id across the launch.
  /// Per-warp kernel output slots are indexed by this (all lanes of a
  /// warp run on one host thread, so such slots need no synchronisation).
  std::uint64_t global_warp = 0;
};

/// What a recorded access does to its location.  Reads, writes and
/// atomics all cost the same transaction machinery on this hardware; the
/// distinction exists for the sancheck hazard analysis (atomics are exempt
/// from the write-write conflict check, like atomicMin in a real frontier
/// update).
enum class AccessKind : std::uint8_t { kRead, kWrite, kAtomic };

/// One global-memory tape entry (addresses drive coalescing/partitions;
/// kind and sync epoch drive the hazard analysis).
struct GlobalAccess {
  std::uint64_t addr;
  std::uint32_t word_bytes;
  std::uint32_t epoch;  // __syncthreads() count when issued
  AccessKind kind;
};

/// One shared-memory tape entry (address drives the bank model).
struct SharedAccess {
  std::uint64_t addr;
  std::uint32_t epoch;
  AccessKind kind;
};

/// Tape recorder handed to each simulated thread.  Tape storage is owned
/// per host worker and reused across every warp the worker replays:
/// clear() drops the contents but keeps the heap capacity, so steady-state
/// warp replay performs no allocations.
class ThreadRecorder {
 public:
  /// Record a read of `word_bytes` at byte `offset` inside `buf`.
  /// All lanes of a warp must use the same word size per slot.
  void global_read(const Buffer& buf, std::uint64_t offset,
                   std::uint32_t word_bytes) {
    global_.push_back({buf.addr(offset), word_bytes, epoch_, AccessKind::kRead});
  }
  /// Writes share the transaction machinery with reads on this hardware.
  void global_write(const Buffer& buf, std::uint64_t offset,
                    std::uint32_t word_bytes) {
    global_.push_back(
        {buf.addr(offset), word_bytes, epoch_, AccessKind::kWrite});
  }
  /// An atomic read-modify-write (atomicOr/atomicMin-style): priced like
  /// any other transaction, but exempt from sancheck's cross-warp
  /// write-write conflict check — concurrent atomics to one word are
  /// well-defined on the device.
  void global_atomic(const Buffer& buf, std::uint64_t offset,
                     std::uint32_t word_bytes) {
    global_.push_back(
        {buf.addr(offset), word_bytes, epoch_, AccessKind::kAtomic});
  }
  /// Record a shared-memory read at byte address `addr` (bank model).
  void shared_read(std::uint64_t addr) {
    shared_.push_back({addr, epoch_, AccessKind::kRead});
  }
  /// Back-compat alias: an unannotated shared access is a read.
  void shared_access(std::uint64_t addr) { shared_read(addr); }
  /// Record a shared-memory write at byte address `addr`.
  void shared_write(std::uint64_t addr) {
    shared_.push_back({addr, epoch_, AccessKind::kWrite});
  }
  /// A __syncthreads() barrier: accesses before and after a sync are in
  /// different epochs, which is what licenses shared-memory reuse across
  /// block phases in the sancheck race analysis.  Free in the timing model
  /// (barrier latency hides under the warp round-robin).
  void sync() {
    ++epoch_;
    ++syncs_;
  }
  /// Charge `n` warp instructions of pure compute.
  void compute(double n = 1.0) { compute_ += n; }

 private:
  friend class Simulator;
  std::vector<GlobalAccess> global_;
  std::vector<SharedAccess> shared_;
  double compute_ = 0.0;
  std::uint32_t epoch_ = 0;
  std::uint32_t syncs_ = 0;

  void clear() {
    global_.clear();
    shared_.clear();
    compute_ = 0.0;
    epoch_ = 0;
    syncs_ = 0;
  }
  void reserve(std::size_t accesses) {
    global_.reserve(accesses);
    shared_.reserve(accesses);
  }
};

using KernelFn = std::function<void(const ThreadCtx&, ThreadRecorder&)>;

/// The full recorded tape of one simulated thread, kept only when a
/// LaunchInspector is attached to the launch.
struct ThreadTrace {
  ThreadCtx ctx;
  std::vector<GlobalAccess> global;
  std::vector<SharedAccess> shared;
  std::uint32_t syncs = 0;
};

/// Post-launch analysis hook (implemented by lgg::sancheck).  When one is
/// passed to Simulator::run, every simulated thread's tape is retained and
/// the hook runs once after the replay and merge, with the traces sorted
/// by (block, thread) — an order independent of the host thread count, so
/// anything the inspector derives is bit-identical across ExecPolicies.
/// The inspector may throw (strict sancheck) or annotate the report.
class LaunchInspector {
 public:
  virtual ~LaunchInspector() = default;
  virtual void inspect(const KernelConfig& config, const DeviceSpec& dev,
                       const std::vector<ThreadTrace>& traces,
                       KernelReport& report) const = 0;
};

/// Per-SM row of the profiler counter harvest, in fixed SM order.  The
/// busy-cycle columns are the executor's own timing terms, exposed per SM
/// so a profiler can draw the occupancy timeline on the modelled clock.
struct SmCounters {
  std::uint32_t sm = 0;
  std::uint64_t warps = 0;
  std::uint64_t global_slots = 0;
  std::uint64_t transactions = 0;
  double warp_instructions = 0.0;
  std::uint64_t bank_conflict_steps = 0;
  double compute_cycles = 0.0;
  double latency_cycles = 0.0;
  /// max(compute, latency): when this SM retires its last warp.
  double busy_cycles = 0.0;
};

/// Modelled hardware counters for one launch, harvested alongside the
/// KernelReport when a ProfilerHook is attached.  Accumulated per shard
/// during the replay and merged in fixed SM order, so every field is
/// bit-identical across ExecPolicies.  Invariants (also after sampling
/// rescale, which scales both sides by the same integer factor):
///   coalesced_transactions + uncoalesced_transactions == transactions
///   coalesced_slots + uncoalesced_slots == global_slots
///   ideal_transactions + memory_replays == transactions
///   shared_accesses + shared_replays   == bank_conflict_steps
struct LaunchCounters {
  /// Global slots whose transaction count equals the CC's minimum (Table
  /// III): CC < 2.0 one aligned segment per non-empty half-warp, CC 2.0
  /// ceil(active_lanes * word_bytes / 128) cache lines.
  std::uint64_t coalesced_slots = 0;
  std::uint64_t uncoalesced_slots = 0;
  /// The same split in transaction units; sums to KernelReport::transactions.
  std::uint64_t coalesced_transactions = 0;
  std::uint64_t uncoalesced_transactions = 0;
  /// CC-minimal transactions over all slots; the excess is the modelled
  /// memory-replay count.
  std::uint64_t ideal_transactions = 0;
  std::uint64_t memory_replays = 0;
  /// Non-empty half-warp shared accesses; bank_conflict_steps beyond this
  /// are conflict replays.
  std::uint64_t shared_accesses = 0;
  std::uint64_t shared_replays = 0;
  /// Warps whose lanes recorded tapes of unequal length (lockstep broken).
  std::uint64_t divergent_warps = 0;
  std::vector<SmCounters> sms;
};

/// Post-launch profiling hook (implemented by lgg::prof).  Invoked from
/// host-serial code after the shard merge and timing derivation, with the
/// counters and the finished report — never from worker threads, so the
/// hook needs no synchronisation and the invocation order is independent
/// of the ExecPolicy.  Faulted launches (DeviceFault) never reach the
/// hook.
class ProfilerHook {
 public:
  virtual ~ProfilerHook() = default;
  virtual void on_launch(const KernelConfig& config, const DeviceSpec& dev,
                         const LaunchCounters& counters,
                         const KernelReport& report) = 0;
  /// Drivers that rescale the returned KernelReport after the launch
  /// (test sampling, chunk truncation) call this with the same factor so
  /// the recorded profile keeps matching the caller-visible report.
  virtual void rescale_last(double factor) = 0;
};

class Simulator {
 public:
  /// `faults` (optional, non-owning) is consulted at the launch, per-SM
  /// abort and transfer fault sites — always from host-serial code, so
  /// the consultation sequence is independent of the ExecPolicy (see
  /// gpusim/fault.hpp).  A firing launch/SM-abort hook makes run() throw
  /// DeviceFault; a firing transfer hook sets TransferReport::corrupted.
  explicit Simulator(const DeviceSpec& spec, FaultHook* faults = nullptr)
      : spec_(&spec), faults_(faults) {}

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return *spec_; }

  /// Simulate one kernel launch.  sample_stride == 1 runs every warp
  /// (functional + timing); k > 1 runs every k-th warp and scales the
  /// statistics (timing only).  The policy selects serial or multi-thread
  /// host execution; the report is bit-identical either way (see the
  /// header comment), but the kernel must honour the thread-safety
  /// contract unless ExecPolicy::serial() is passed.  A non-null
  /// `inspector` makes the run retain every simulated thread's tape and
  /// invokes the hook after the merge (sancheck wiring; see
  /// LaunchInspector).  A non-null `profiler` additionally harvests the
  /// LaunchCounters and receives them (host-serially) with the finished
  /// report (lgg_prof wiring; see ProfilerHook).
  KernelReport run(const KernelFn& kernel, const KernelConfig& config,
                   std::uint32_t sample_stride = 1,
                   const ExecPolicy& policy = {},
                   const LaunchInspector* inspector = nullptr,
                   ProfilerHook* profiler = nullptr) const;

  /// Price a host->device copy of `bytes`.
  [[nodiscard]] TransferReport transfer(std::uint64_t bytes) const;

 private:
  const DeviceSpec* spec_;
  FaultHook* faults_ = nullptr;
};

}  // namespace lgg::gpusim

// The simulated CUDA executor: runs kernels thread-by-thread on the host,
// records every memory access, and prices the launch with the coalescing /
// partition / bank models plus the calibrated cycle accounting.
//
// Execution model
// ---------------
// A kernel is a host callable invoked once per simulated thread.  Threads
// are grouped into 32-lane warps; blocks are assigned to SMs round-robin
// (block b runs on SM b % sm_count), matching the paper's Section VI view
// of chunk jobs on identical machines.
//
// Memory-access semantics: each thread records a *tape* of global/shared
// accesses.  Within a warp, the i-th global access of every lane is
// treated as one SIMT instruction slot and coalesced across the warp
// (lockstep assumption — correct for the uniform-control-flow kernels in
// this library, and the standard approximation elsewhere).
//
// Timing model (cycles at the device core clock; see calibration.hpp)
//   per SM:  compute = Σ_warp (warp_instructions + bank penalty) * 4
//            latency = Σ_warp global_slots * L / min(warps, max_resident)
//            sm_time = max(compute, latency)
//   global:  dram = serialized_partition_steps * t_service   (CC < 2.0)
//                 = ideal_partition_steps     * t_service   (CC >= 2.0,
//                   camping neutralised by the cache — paper Section X)
//   kernel  = max(max_sm sm_time, dram) / clock + launch overhead
//
// Sampling: run(..., sample_stride = k) simulates every k-th warp fully
// and scales all aggregate statistics by k.  Timing keeps the same model;
// the triangle-count style *functional* result of skipped warps is NOT
// produced, so sampled runs are for timing studies only (the benches pair
// them with an exact host-side count).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/report.hpp"

namespace lgg::gpusim {

struct KernelConfig {
  std::string name = "kernel";
  std::uint32_t blocks = 1;
  std::uint32_t threads_per_block = 32;
};

/// Identity of one simulated thread.
struct ThreadCtx {
  std::uint32_t block = 0;
  std::uint32_t thread = 0;      // within block
  std::uint64_t global_id = 0;   // block * threads_per_block + thread
  std::uint32_t lane = 0;        // thread % 32
  std::uint32_t warp = 0;        // thread / 32 (within block)
};

/// Tape recorder handed to each simulated thread.
class ThreadRecorder {
 public:
  /// Record a read of `word_bytes` at byte `offset` inside `buf`.
  /// All lanes of a warp must use the same word size per slot.
  void global_read(const Buffer& buf, std::uint64_t offset,
                   std::uint32_t word_bytes) {
    global_.push_back({buf.addr(offset), word_bytes});
  }
  /// Writes share the transaction machinery with reads on this hardware.
  void global_write(const Buffer& buf, std::uint64_t offset,
                    std::uint32_t word_bytes) {
    global_read(buf, offset, word_bytes);
  }
  /// Record a shared-memory access at byte address `addr` (bank model).
  void shared_access(std::uint64_t addr) { shared_.push_back(addr); }
  /// Charge `n` warp instructions of pure compute.
  void compute(double n = 1.0) { compute_ += n; }

 private:
  friend class Simulator;
  struct GlobalAccess {
    std::uint64_t addr;
    std::uint32_t word_bytes;
  };
  std::vector<GlobalAccess> global_;
  std::vector<std::uint64_t> shared_;
  double compute_ = 0.0;

  void clear() {
    global_.clear();
    shared_.clear();
    compute_ = 0.0;
  }
};

using KernelFn = std::function<void(const ThreadCtx&, ThreadRecorder&)>;

class Simulator {
 public:
  explicit Simulator(const DeviceSpec& spec) : spec_(&spec) {}

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return *spec_; }

  /// Simulate one kernel launch.  sample_stride == 1 runs every warp
  /// (functional + timing); k > 1 runs every k-th warp and scales the
  /// statistics (timing only).
  KernelReport run(const KernelFn& kernel, const KernelConfig& config,
                   std::uint32_t sample_stride = 1) const;

  /// Price a host->device copy of `bytes`.
  [[nodiscard]] TransferReport transfer(std::uint64_t bytes) const;

 private:
  const DeviceSpec* spec_;
};

}  // namespace lgg::gpusim

#include "gpusim/fault.hpp"

namespace lgg::gpusim {

const char* fault_site_name(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kAlloc:
      return "alloc";
    case FaultSite::kLaunch:
      return "launch";
    case FaultSite::kSmAbort:
      return "sm-abort";
    case FaultSite::kTransfer:
      return "transfer";
  }
  return "?";
}

}  // namespace lgg::gpusim

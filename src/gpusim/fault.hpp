// Simulated device faults (DESIGN.md §11).
//
// Real GPU runs fail at well-known seams: cudaMalloc returns OOM, a
// kernel launch errors out, an SM hits an ECC event or the watchdog kills
// it mid-kernel, a PCIe transfer flips bits.  The simulator exposes those
// seams through one narrow interface — FaultHook — that DeviceMemory and
// Simulator consult at each fault site.  The hook decides (true = inject)
// and owns all randomness/recording, so gpusim itself stays deterministic
// and policy-free; lgg::resilience::FaultInjector is the seed-driven
// implementation.
//
// Determinism contract: every hook call is made from the host-serial part
// of a run — allocation, launch entry, the per-SM pre-shard sweep, and
// transfer pricing — never from inside the parallel warp replay.  The call
// sequence is therefore a pure function of the workload, independent of
// the host thread count, which is what makes fault campaigns replayable
// and their logs byte-identical across ExecPolicies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace lgg::gpusim {

struct KernelConfig;  // executor.hpp

/// Where a simulated fault strikes.
enum class FaultSite : std::uint8_t {
  kAlloc = 0,     // device allocation fails (transient OOM)
  kLaunch = 1,    // kernel launch error before any warp runs
  kSmAbort = 2,   // one SM aborts mid-replay (ECC event / watchdog)
  kTransfer = 3,  // host<->device copy silently corrupts payload bits
};
inline constexpr std::size_t kNumFaultSites = 4;

[[nodiscard]] const char* fault_site_name(FaultSite site) noexcept;

/// Thrown by DeviceMemory / Simulator when an injected fault fires at a
/// site that surfaces as an error on real hardware (alloc, launch, SM
/// abort).  Derives from lgg::Error so existing handlers keep working;
/// the distinct type is what lets a recovery layer classify the failure
/// as transient-device rather than logic and retry it.  Transfer
/// corruption is deliberately NOT an exception: real bit-flips are
/// silent, so they surface as TransferReport::corrupted instead.
class DeviceFault : public Error {
 public:
  DeviceFault(FaultSite site, const std::string& what)
      : Error(what), site_(site) {}
  [[nodiscard]] FaultSite site() const noexcept { return site_; }

 private:
  FaultSite site_;
};

/// Abort boundary of one aborted SM: how many of the warps its shard
/// visits (in program order — block sm, sm + sm_count, ..., warps in
/// increasing index within each block) completed before the SM died.
/// Warps before the boundary ran to completion, so their per-warp output
/// slots hold exactly what a fault-free launch would have written; warps
/// at or past it never ran.
struct SmAbortInfo {
  std::uint32_t sm = 0;
  std::uint64_t warps_completed = 0;  // replayed before the abort
  std::uint64_t warps_total = 0;      // the shard's full warp count
};

/// The SM-abort flavour of DeviceFault, carrying the per-SM abort
/// boundaries so a recovery layer can salvage the completed warps'
/// outputs instead of discarding the whole launch (DESIGN.md §16).
class SmAbortFault : public DeviceFault {
 public:
  SmAbortFault(const std::string& what, std::vector<SmAbortInfo> aborts)
      : DeviceFault(FaultSite::kSmAbort, what), aborts_(std::move(aborts)) {}
  /// One entry per aborted SM, in SM order.
  [[nodiscard]] const std::vector<SmAbortInfo>& aborts() const noexcept {
    return aborts_;
  }

 private:
  std::vector<SmAbortInfo> aborts_;
};

/// Decision interface consulted at each fault site.  Implementations may
/// keep state (draw counters, event logs); all calls are host-serial (see
/// the header comment), so no synchronisation is required.
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  /// true: the allocation of `bytes` fails with a DeviceFault OOM.
  virtual bool on_alloc(std::uint64_t bytes) = 0;
  /// true: the launch fails with a DeviceFault before any warp replays.
  virtual bool on_launch(const KernelConfig& config) = 0;
  /// Called once per OCCUPIED SM (sm < min(blocks, sm_count)), in SM
  /// order, before the shards run.  true: that SM aborts after replaying
  /// half its warps, and the launch throws SmAbortFault after all shards
  /// finish.  The fault carries each aborted SM's abort boundary: warps
  /// before it completed (their output slots are exact), warps past it
  /// never ran — callers either salvage against those boundaries or treat
  /// the launch's outputs as garbage.
  virtual bool on_sm_abort(const KernelConfig& config, std::uint32_t sm) = 0;
  /// true: the transfer completes but its payload is corrupted; reported
  /// via TransferReport::corrupted, never thrown.
  virtual bool on_transfer(std::uint64_t bytes) = 0;
};

}  // namespace lgg::gpusim

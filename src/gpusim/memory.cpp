#include "gpusim/memory.hpp"

#include "util/bits.hpp"
#include "util/error.hpp"

namespace lgg::gpusim {

std::uint64_t Buffer::addr(std::uint64_t offset) const {
  LGG_CHECK(offset < bytes, "Buffer::addr: offset " << offset
                                                    << " out of range "
                                                    << bytes);
  return base + offset;
}

DeviceMemory::DeviceMemory(const DeviceSpec& spec, FaultHook* faults)
    : spec_(&spec), capacity_(spec.global_mem_bytes), faults_(faults) {}

Buffer DeviceMemory::alloc(std::uint64_t bytes, std::uint64_t align) {
  LGG_CHECK(align != 0 && (align & (align - 1)) == 0,
            "alloc: alignment " << align << " not a power of two");
  if (faults_ != nullptr && faults_->on_alloc(bytes)) {
    throw DeviceFault(FaultSite::kAlloc,
                      "injected fault: device allocation of " +
                          std::to_string(bytes) + " B failed (simulated OOM)");
  }
  const std::uint64_t base = round_up_pow2(cursor_, align);
  LGG_CHECK(base + bytes <= capacity_,
            "device out of memory: need " << bytes << " B at " << base
                                          << ", capacity " << capacity_
                                          << " B (" << spec_->name << ")");
  cursor_ = base + bytes;
  allocations_.push_back({base, bytes, true});
  return {base, bytes};
}

Buffer DeviceMemory::alloc_in_partition(std::uint64_t bytes,
                                        std::uint32_t partition) {
  LGG_CHECK(partition < spec_->partitions,
            "alloc_in_partition: partition " << partition << " out of range");
  const std::uint64_t width = spec_->partition_width_bytes;
  const std::uint64_t period = width * spec_->partitions;
  const std::uint64_t want_offset = static_cast<std::uint64_t>(partition) * width;

  if (faults_ != nullptr && faults_->on_alloc(bytes)) {
    throw DeviceFault(FaultSite::kAlloc,
                      "injected fault: partitioned allocation of " +
                          std::to_string(bytes) + " B failed (simulated OOM)");
  }

  // First address >= cursor_ with addr % period == want_offset.
  std::uint64_t base = (cursor_ / period) * period + want_offset;
  if (base < cursor_) base += period;
  LGG_CHECK(base + bytes <= capacity_,
            "device out of memory: need " << bytes << " B at partition-"
                                          << partition << " base " << base);
  cursor_ = base + bytes;
  allocations_.push_back({base, bytes, true});
  return {base, bytes};
}

double transfer_time_s(const DeviceSpec& spec, std::uint64_t bytes) {
  return spec.pcie_latency_s +
         static_cast<double>(bytes) / (spec.pcie_bandwidth_gbps * 1e9);
}

}  // namespace lgg::gpusim

// Simulated device global-memory address space.
//
// Kernels do not move real data through the simulator; what matters for the
// paper's claims is WHERE the data lives (addresses drive coalescing and
// partition mapping) and HOW MUCH moves (transfer timing).  DeviceMemory is
// a bump allocator over the DeviceSpec's global memory; Buffer is an
// address range a kernel derives access addresses from.  Actual payloads
// stay in ordinary host containers owned by the algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/fault.hpp"

namespace lgg::gpusim {

/// An allocated range of simulated global memory.
struct Buffer {
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;

  /// Simulated byte address of `offset` within the buffer (bounds-checked).
  [[nodiscard]] std::uint64_t addr(std::uint64_t offset) const;
};

/// One allocation event, kept for the lifetime of the DeviceMemory so the
/// sancheck tape analyzer can classify stray addresses: a `live` record is
/// a valid target, a dead one (retired by reset()) identifies
/// use-after-reset, and an address covered by neither was never allocated.
struct Allocation {
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;
  bool live = true;
};

class DeviceMemory {
 public:
  /// `faults` (optional, non-owning) is consulted on every allocation;
  /// a firing hook makes the allocation throw DeviceFault (simulated
  /// transient OOM) without moving the bump cursor.
  explicit DeviceMemory(const DeviceSpec& spec, FaultHook* faults = nullptr);

  /// Allocate `bytes` aligned to `align` (power of two; default one
  /// partition stripe so layouts can place data in chosen partitions).
  /// Throws lgg::Error when the device is out of memory — this is the
  /// paper's Eq. (1)/(2) capacity constraint becoming operational.
  Buffer alloc(std::uint64_t bytes, std::uint64_t align = 256);

  /// Allocate at an address congruent to `partition_offset_bytes` modulo
  /// the partition period (partitions * width): lets the anti-camping
  /// layout pin each ALS block's base to a chosen partition (Fig. 9).
  Buffer alloc_in_partition(std::uint64_t bytes, std::uint32_t partition);

  [[nodiscard]] std::uint64_t used() const noexcept { return cursor_; }
  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const DeviceSpec& spec() const noexcept { return *spec_; }

  /// Every allocation ever made, in allocation order; entries retired by
  /// reset() stay with live == false (consumed by lgg::sancheck).
  [[nodiscard]] const std::vector<Allocation>& allocations() const noexcept {
    return allocations_;
  }

  /// Retire every live allocation and rewind the bump cursor.  Buffers
  /// handed out before the reset become stale; the sancheck tape analyzer
  /// flags accesses through them as use-after-reset.
  void reset() noexcept {
    cursor_ = 0;
    for (Allocation& a : allocations_) a.live = false;
  }

  /// Install / remove the fault hook after construction.
  void set_fault_hook(FaultHook* faults) noexcept { faults_ = faults; }

 private:
  const DeviceSpec* spec_;
  std::uint64_t capacity_;
  std::uint64_t cursor_ = 0;
  std::vector<Allocation> allocations_;
  FaultHook* faults_ = nullptr;
};

/// Host->device (or back) copy-time model: PCIe latency + bytes/bandwidth.
double transfer_time_s(const DeviceSpec& spec, std::uint64_t bytes);

}  // namespace lgg::gpusim

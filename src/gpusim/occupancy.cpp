#include "gpusim/occupancy.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lgg::gpusim {

const char* to_string(OccupancyLimiter limiter) noexcept {
  switch (limiter) {
    case OccupancyLimiter::kWarpSlots:
      return "warp slots";
    case OccupancyLimiter::kBlockSlots:
      return "block slots";
    case OccupancyLimiter::kThreadSlots:
      return "thread slots";
    case OccupancyLimiter::kRegisters:
      return "registers";
    case OccupancyLimiter::kSharedMemory:
      return "shared memory";
  }
  return "?";
}

OccupancyResult occupancy(const DeviceSpec& dev, const KernelResources& res) {
  LGG_CHECK(res.threads_per_block > 0, "occupancy: empty block");
  const std::uint32_t warps_per_block =
      (res.threads_per_block + dev.warp_size - 1) / dev.warp_size;

  struct Limit {
    std::uint32_t blocks;
    OccupancyLimiter kind;
  };
  Limit limits[5];
  limits[0] = {dev.max_warps_per_sm / warps_per_block,
               OccupancyLimiter::kWarpSlots};
  limits[1] = {dev.max_blocks_per_sm, OccupancyLimiter::kBlockSlots};
  limits[2] = {dev.max_threads_per_sm / res.threads_per_block,
               OccupancyLimiter::kThreadSlots};
  const std::uint64_t regs_per_block =
      static_cast<std::uint64_t>(res.registers_per_thread) *
      res.threads_per_block;
  limits[3] = {regs_per_block == 0
                   ? dev.max_blocks_per_sm
                   : static_cast<std::uint32_t>(
                         std::min<std::uint64_t>(dev.registers_per_sm /
                                                     regs_per_block,
                                                 dev.max_blocks_per_sm)),
               OccupancyLimiter::kRegisters};
  limits[4] = {res.shared_bytes_per_block == 0
                   ? dev.max_blocks_per_sm
                   : dev.shared_mem_bytes / res.shared_bytes_per_block,
               OccupancyLimiter::kSharedMemory};

  OccupancyResult result;
  result.blocks_per_sm = limits[0].blocks;
  result.limiter = limits[0].kind;
  for (const Limit& limit : limits) {
    if (limit.blocks < result.blocks_per_sm) {
      result.blocks_per_sm = limit.blocks;
      result.limiter = limit.kind;
    }
  }
  LGG_CHECK(result.blocks_per_sm > 0,
            "kernel cannot launch on "
                << dev.name << ": one block exceeds the SM's "
                << to_string(result.limiter));
  result.warps_per_sm = result.blocks_per_sm * warps_per_block;
  result.occupancy = static_cast<double>(result.warps_per_sm) /
                     static_cast<double>(dev.max_warps_per_sm);
  return result;
}

}  // namespace lgg::gpusim

// CUDA occupancy calculator for the simulated devices.
//
// Occupancy — resident warps per SM over the hardware maximum — governs
// how much global-memory latency the executor's timing model can hide
// (its `resident` divisor), which is the Hong et al. warp-efficiency
// concern the paper's Section II surveys.  This reimplements the classic
// spreadsheet: the resident block count is limited by warp slots, block
// slots, thread slots, the register file, and shared memory.
#pragma once

#include <cstdint>

#include "gpusim/device.hpp"

namespace lgg::gpusim {

struct KernelResources {
  std::uint32_t threads_per_block = 128;
  std::uint32_t registers_per_thread = 16;
  std::uint32_t shared_bytes_per_block = 0;
};

enum class OccupancyLimiter : int {
  kWarpSlots = 0,
  kBlockSlots = 1,
  kThreadSlots = 2,
  kRegisters = 3,
  kSharedMemory = 4,
};

[[nodiscard]] const char* to_string(OccupancyLimiter limiter) noexcept;

struct OccupancyResult {
  std::uint32_t blocks_per_sm = 0;
  std::uint32_t warps_per_sm = 0;
  double occupancy = 0.0;  // warps_per_sm / max_warps_per_sm
  OccupancyLimiter limiter = OccupancyLimiter::kWarpSlots;
};

/// Compute resident blocks/warps per SM for a kernel with the given
/// resource footprint.  Throws lgg::Error when the kernel cannot run at
/// all (a single block exceeds an SM's resources).
OccupancyResult occupancy(const DeviceSpec& dev, const KernelResources& res);

}  // namespace lgg::gpusim

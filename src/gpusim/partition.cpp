#include "gpusim/partition.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lgg::gpusim {

void PartitionHistogram::merge(const PartitionHistogram& other) {
  if (other.count.empty()) return;
  if (count.empty()) {
    *this = other;
    return;
  }
  LGG_CHECK(count.size() == other.count.size(),
            "PartitionHistogram::merge: partition count mismatch");
  for (std::size_t p = 0; p < count.size(); ++p) count[p] += other.count[p];
  total += other.total;
}

std::uint64_t PartitionHistogram::serialized_steps() const noexcept {
  if (count.empty()) return 0;
  return *std::max_element(count.begin(), count.end());
}

std::uint64_t PartitionHistogram::ideal_steps() const noexcept {
  if (count.empty() || total == 0) return 0;
  const auto p = static_cast<std::uint64_t>(count.size());
  return (total + p - 1) / p;
}

double PartitionHistogram::camping_factor() const noexcept {
  const std::uint64_t ideal = ideal_steps();
  if (ideal == 0) return 1.0;
  return static_cast<double>(serialized_steps()) / static_cast<double>(ideal);
}

}  // namespace lgg::gpusim

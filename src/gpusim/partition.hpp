// Partition-camping model (paper Section X, Figs. 6–7).
//
// GT200-class global memory is striped across 6–8 partitions of 256 bytes.
// Transactions to the same partition queue up and are serviced one at a
// time; transactions to distinct partitions proceed in parallel.  When the
// concurrently active warps all hit the same partition ("camping"), DRAM
// time degrades by up to a factor of P — Eq. (10)'s
// Minimize(Σ T_iw) ⇔ Maximize(Σ Part_i).
//
// The model histograms the kernel's transactions by partition:
//   serialized_steps = max_p count[p]      (what camping costs)
//   ideal_steps      = ceil(total / P)     (perfectly spread)
//   camping_factor   = serialized / ideal  (1.0 == no camping)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/coalescing.hpp"
#include "gpusim/device.hpp"

namespace lgg::gpusim {

class PartitionModel {
 public:
  explicit PartitionModel(const DeviceSpec& spec)
      : partitions_(spec.partitions),
        width_(spec.partition_width_bytes) {}
  PartitionModel(std::uint32_t partitions, std::uint32_t width_bytes)
      : partitions_(partitions), width_(width_bytes) {}

  [[nodiscard]] std::uint32_t partitions() const noexcept {
    return partitions_;
  }
  [[nodiscard]] std::uint32_t width_bytes() const noexcept { return width_; }

  /// Partition serving byte address `addr`: 256-byte stripes round-robin.
  [[nodiscard]] std::uint32_t partition_of(std::uint64_t addr) const noexcept {
    return static_cast<std::uint32_t>((addr / width_) % partitions_);
  }

 private:
  std::uint32_t partitions_;
  std::uint32_t width_;
};

struct PartitionHistogram {
  std::vector<std::uint64_t> count;  // per partition
  std::uint64_t total = 0;

  void add(const PartitionModel& model, std::uint64_t addr) {
    count.resize(model.partitions(), 0);
    ++count[model.partition_of(addr)];
    ++total;
  }
  void add_transactions(const PartitionModel& model,
                        std::span<const Transaction> txns) {
    for (const Transaction& t : txns) add(model, t.base);
  }
  void merge(const PartitionHistogram& other);

  /// max_p count[p]: DRAM steps when queued per partition.
  [[nodiscard]] std::uint64_t serialized_steps() const noexcept;
  /// ceil(total / P): DRAM steps under a perfect spread.
  [[nodiscard]] std::uint64_t ideal_steps() const noexcept;
  /// serialized / ideal, >= 1.0 (1.0 when total == 0).
  [[nodiscard]] double camping_factor() const noexcept;
};

}  // namespace lgg::gpusim

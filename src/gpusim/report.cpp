#include "gpusim/report.hpp"

#include <iomanip>
#include <ostream>

#include "util/table.hpp"

namespace lgg::gpusim {

const char* hazard_class_name(HazardClass cls) noexcept {
  switch (cls) {
    case HazardClass::kOutOfBounds:
      return "out-of-bounds";
    case HazardClass::kUseAfterReset:
      return "use-after-reset";
    case HazardClass::kUseBeforeAlloc:
      return "use-before-alloc";
    case HazardClass::kUninitRead:
      return "uninitialized-read";
    case HazardClass::kSharedRace:
      return "shared-memory-race";
    case HazardClass::kGlobalWriteConflict:
      return "global-write-conflict";
    case HazardClass::kFootprintEscape:
      return "footprint-escape";
    case HazardClass::kSlotOverlap:
      return "output-slot-overlap";
  }
  return "?";
}

void HazardReport::merge(const HazardReport& other) {
  hazards.insert(hazards.end(), other.hazards.begin(), other.hazards.end());
  total += other.total;
  for (std::size_t c = 0; c < kNumHazardClasses; ++c)
    by_class[c] += other.by_class[c];
}

std::ostream& operator<<(std::ostream& os, const HazardReport& r) {
  if (r.clean()) return os << "sancheck: no hazards";
  os << "sancheck: " << r.total << " hazard(s)";
  for (std::size_t c = 0; c < kNumHazardClasses; ++c)
    if (r.by_class[c] != 0)
      os << "\n  " << hazard_class_name(static_cast<HazardClass>(c)) << ": "
         << r.by_class[c];
  for (const Hazard& h : r.hazards) os << "\n  " << h.message;
  return os;
}

std::ostream& operator<<(std::ostream& os, const KernelReport& r) {
  os << "kernel '" << r.name << "': " << r.blocks << "x"
     << r.threads_per_block << " (" << r.warps << " warps)"
     << "\n  global slots " << r.global_slots << ", transactions "
     << r.transactions << " (" << std::fixed << std::setprecision(2)
     << r.transactions_per_slot() << "/slot), bytes " << r.bytes
     << "\n  camping factor " << std::setprecision(3) << r.camping_factor
     << ", bank-conflict steps " << r.bank_conflict_steps
     << "\n  cycles: compute " << std::setprecision(0) << r.compute_cycles
     << ", latency " << r.latency_cycles << ", dram " << r.dram_cycles
     << "\n  time " << format_seconds(r.kernel_time_s);
  if (r.sample_fraction < 1.0)
    os << " (sampled, fraction " << std::setprecision(4) << r.sample_fraction
       << ")";
  return os;
}

std::ostream& operator<<(std::ostream& os, const RunReport& r) {
  os << "GPU run: h2d " << format_bytes(r.host_to_device.bytes) << " in "
     << format_seconds(r.host_to_device.time_s) << ", " << r.kernels
     << " kernel(s) in " << format_seconds(r.kernel_time_s) << ", total "
     << format_seconds(r.total_time_s) << ", camping x" << std::fixed
     << std::setprecision(3) << r.mean_camping_factor << ", txn/slot "
     << std::setprecision(2) << r.mean_transactions_per_slot;
  if (r.faults_injected != 0 || r.retries != 0 || r.failovers != 0)
    os << "\n  faults " << r.faults_injected << ", retries " << r.retries
       << ", failovers " << r.failovers;
  return os;
}

}  // namespace lgg::gpusim

// Result records produced by the simulator: what a kernel cost and why.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "gpusim/partition.hpp"

namespace lgg::gpusim {

/// Everything the timing model derived for one kernel launch.
/// Cycle quantities are in core-clock cycles; *_s values are seconds on
/// the modelled device (see gpusim/calibration.hpp and DESIGN.md §6).
struct KernelReport {
  std::string name;
  std::uint32_t blocks = 0;
  std::uint32_t threads_per_block = 0;
  std::uint64_t warps = 0;

  // -- memory traffic --
  std::uint64_t global_slots = 0;    // warp-level global access instructions
  std::uint64_t transactions = 0;    // after coalescing
  std::uint64_t bytes = 0;           // transferred by those transactions
  PartitionHistogram partition_histogram;
  double camping_factor = 1.0;

  // -- shared memory --
  std::uint64_t shared_slots = 0;
  std::uint64_t bank_conflict_steps = 0;  // serialised issue steps

  // -- compute --
  double warp_instructions = 0.0;  // summed over SMs in fixed SM order

  // -- timing decomposition (cycles) --
  double compute_cycles = 0.0;   // max over SMs of issue time
  double latency_cycles = 0.0;   // max over SMs of exposed global latency
  double dram_cycles = 0.0;      // partition-queueing DRAM bound
  double kernel_time_s = 0.0;    // max of the three, plus launch overhead

  /// 1/sample_stride when the run was sampled; 1.0 for exact simulation.
  double sample_fraction = 1.0;

  /// Average transactions per warp-level global access slot (1.0 is
  /// perfectly coalesced for <=64-byte-per-halfwarp patterns).
  [[nodiscard]] double transactions_per_slot() const noexcept {
    return global_slots ? static_cast<double>(transactions) /
                              static_cast<double>(global_slots)
                        : 0.0;
  }
};

std::ostream& operator<<(std::ostream& os, const KernelReport& r);

/// A host<->device copy.
struct TransferReport {
  std::uint64_t bytes = 0;
  double time_s = 0.0;
};

/// End-to-end accounting for a full GPU computation (copies + kernels).
struct RunReport {
  TransferReport host_to_device;
  double kernel_time_s = 0.0;    // sum over launches
  double total_time_s = 0.0;     // transfer + kernels + dispatch overheads
  std::uint64_t kernels = 0;
  std::uint64_t transactions = 0;
  double mean_camping_factor = 1.0;
  double mean_transactions_per_slot = 0.0;
};

std::ostream& operator<<(std::ostream& os, const RunReport& r);

}  // namespace lgg::gpusim

// Result records produced by the simulator: what a kernel cost and why.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "gpusim/partition.hpp"

namespace lgg::gpusim {

/// Memory-hazard taxonomy shared by the two lgg::sancheck passes: the
/// first six classes come from the dynamic tape analyzer (the
/// compute-sanitizer analogue over recorded access tapes), the last two
/// from the static access-pattern lint over the combinadic work division.
enum class HazardClass : std::uint8_t {
  kOutOfBounds = 0,      // address outside every allocation / off the end
  kUseAfterReset = 1,    // access through a buffer retired by reset()
  kUseBeforeAlloc = 2,   // address inside capacity but never allocated
  kUninitRead = 3,       // device read with no staging and no prior write
  kSharedRace = 4,       // same-block shared access conflict, no sync between
  kGlobalWriteConflict = 5,  // cross-warp overlapping non-atomic writes
  kFootprintEscape = 6,  // static lint: warp footprint leaves its chunk
  kSlotOverlap = 7,      // static lint: per-warp output slots collide
};
inline constexpr std::size_t kNumHazardClasses = 8;

[[nodiscard]] const char* hazard_class_name(HazardClass cls) noexcept;

/// One detected hazard.  `first_thread` / `second_thread` are simulated
/// global thread ids (second == first for single-party hazards; both are
/// npos for static-lint findings, which concern warps, not threads).
struct Hazard {
  static constexpr std::uint64_t kNoThread = ~std::uint64_t{0};
  HazardClass cls = HazardClass::kOutOfBounds;
  std::uint64_t addr = 0;
  std::uint32_t bytes = 0;
  std::uint64_t first_thread = kNoThread;
  std::uint64_t second_thread = kNoThread;
  std::string message;

  friend bool operator==(const Hazard&, const Hazard&) = default;
};

/// Everything sancheck found for one launch (or one static lint pass).
/// Deterministic: hazards appear in tape-scan order — (block, thread,
/// access index) — which is independent of the host thread count; the
/// recorded list is capped but the per-class totals are always exact.
struct HazardReport {
  std::vector<Hazard> hazards;  // first `hazards.size()` in scan order
  std::uint64_t total = 0;      // all hazards found, recorded or not
  std::array<std::uint64_t, kNumHazardClasses> by_class{};

  [[nodiscard]] bool clean() const noexcept { return total == 0; }
  [[nodiscard]] std::uint64_t count(HazardClass cls) const noexcept {
    return by_class[static_cast<std::size_t>(cls)];
  }
  /// Append `other` (multi-launch aggregation, e.g. bfs_gpu's levels).
  void merge(const HazardReport& other);
};

std::ostream& operator<<(std::ostream& os, const HazardReport& r);

/// Everything the timing model derived for one kernel launch.
/// Cycle quantities are in core-clock cycles; *_s values are seconds on
/// the modelled device (see gpusim/calibration.hpp and DESIGN.md §6).
struct KernelReport {
  std::string name;
  std::uint32_t blocks = 0;
  std::uint32_t threads_per_block = 0;
  std::uint64_t warps = 0;

  // -- memory traffic --
  std::uint64_t global_slots = 0;    // warp-level global access instructions
  std::uint64_t transactions = 0;    // after coalescing
  std::uint64_t bytes = 0;           // transferred by those transactions
  PartitionHistogram partition_histogram;
  double camping_factor = 1.0;

  // -- shared memory --
  std::uint64_t shared_slots = 0;
  std::uint64_t bank_conflict_steps = 0;  // serialised issue steps

  // -- compute --
  double warp_instructions = 0.0;  // summed over SMs in fixed SM order

  // -- timing decomposition (cycles) --
  double compute_cycles = 0.0;   // max over SMs of issue time
  double latency_cycles = 0.0;   // max over SMs of exposed global latency
  double dram_cycles = 0.0;      // partition-queueing DRAM bound
  double kernel_time_s = 0.0;    // max of the three, plus launch overhead

  /// 1/sample_stride when the run was sampled; 1.0 for exact simulation.
  double sample_fraction = 1.0;

  // -- sancheck --
  /// Filled by the LaunchInspector hook when the launch ran under
  /// SancheckMode::kReport; empty (clean) otherwise.
  HazardReport hazards;

  /// Average transactions per warp-level global access slot (1.0 is
  /// perfectly coalesced for <=64-byte-per-halfwarp patterns).
  [[nodiscard]] double transactions_per_slot() const noexcept {
    return global_slots ? static_cast<double>(transactions) /
                              static_cast<double>(global_slots)
                        : 0.0;
  }
};

std::ostream& operator<<(std::ostream& os, const KernelReport& r);

/// A host<->device copy.
struct TransferReport {
  std::uint64_t bytes = 0;
  double time_s = 0.0;
  /// Injected transfer fault: the copy "completed" but its payload bits
  /// are corrupted.  Silent on real hardware, so never an exception —
  /// callers that care must check (the resilience runner does).
  bool corrupted = false;
};

/// End-to-end accounting for a full GPU computation (copies + kernels).
struct RunReport {
  TransferReport host_to_device;
  double kernel_time_s = 0.0;    // sum over launches
  double total_time_s = 0.0;     // transfer + kernels + dispatch overheads
  std::uint64_t kernels = 0;
  std::uint64_t transactions = 0;
  double mean_camping_factor = 1.0;
  double mean_transactions_per_slot = 0.0;

  // -- fault accounting (zero unless a FaultHook was attached) --
  std::uint64_t faults_injected = 0;  // device faults that fired
  std::uint64_t retries = 0;          // launches repeated after a fault
  std::uint64_t failovers = 0;        // units abandoned to a fallback path
};

std::ostream& operator<<(std::ostream& os, const RunReport& r);

}  // namespace lgg::gpusim

#include "graph/bfs.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"

namespace lgg::graph {

BfsTree bfs(const Graph& g, Vertex source) {
  LGG_CHECK(source < g.num_vertices(),
            "bfs: source " << source << " out of range");
  BfsTree tree;
  tree.source = source;
  tree.parent.assign(g.num_vertices(), kUnreached);
  tree.level.assign(g.num_vertices(), kUnreached);

  std::deque<Vertex> queue;
  tree.parent[source] = source;
  tree.level[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop_front();
    tree.depth = std::max(tree.depth, tree.level[u]);
    for (Vertex v : g.neighbors(u)) {
      if (tree.level[v] == kUnreached) {
        tree.level[v] = tree.level[u] + 1;
        tree.parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  return tree;
}

Components connected_components(const Graph& g) {
  Components comps;
  comps.component_of.assign(g.num_vertices(), kUnreached);
  std::deque<Vertex> queue;
  for (Vertex start = 0; start < g.num_vertices(); ++start) {
    if (comps.component_of[start] != kUnreached) continue;
    const std::uint32_t id = comps.count++;
    comps.component_of[start] = id;
    queue.push_back(start);
    while (!queue.empty()) {
      const Vertex u = queue.front();
      queue.pop_front();
      for (Vertex v : g.neighbors(u)) {
        if (comps.component_of[v] == kUnreached) {
          comps.component_of[v] = id;
          queue.push_back(v);
        }
      }
    }
  }
  return comps;
}

std::vector<Vertex> Components::vertices_of(std::uint32_t c) const {
  std::vector<Vertex> result;
  for (Vertex v = 0; v < component_of.size(); ++v)
    if (component_of[v] == c) result.push_back(v);
  return result;
}

LevelDecomposition::LevelDecomposition(const BfsTree& tree) {
  if (tree.level.empty()) return;
  levels_.resize(tree.depth + 1);
  for (Vertex v = 0; v < tree.level.size(); ++v)
    if (tree.level[v] != kUnreached) levels_[tree.level[v]].push_back(v);
  // Vertices were visited in id order per level already, but be explicit:
  for (auto& lvl : levels_) std::sort(lvl.begin(), lvl.end());
}

std::size_t LevelDecomposition::total_vertices() const noexcept {
  std::size_t total = 0;
  for (const auto& lvl : levels_) total += lvl.size();
  return total;
}

std::vector<AdjacentLevelSet> adjacent_level_sets(
    const LevelDecomposition& levels) {
  std::vector<AdjacentLevelSet> sets;
  const std::size_t d = levels.num_levels();
  if (d == 0) return sets;
  if (d == 1) {
    AdjacentLevelSet only;
    only.first_level_index = 0;
    only.first.assign(levels.level(0).begin(), levels.level(0).end());
    only.is_last = true;
    sets.push_back(std::move(only));
    return sets;
  }
  sets.reserve(d - 1);
  for (std::size_t i = 0; i + 1 < d; ++i) {
    AdjacentLevelSet als;
    als.first_level_index = static_cast<std::uint32_t>(i);
    als.first.assign(levels.level(i).begin(), levels.level(i).end());
    als.second.assign(levels.level(i + 1).begin(), levels.level(i + 1).end());
    als.is_last = (i + 2 == d);
    sets.push_back(std::move(als));
  }
  return sets;
}

}  // namespace lgg::graph

// Breadth-first search, connected components, and the BFS-level machinery
// that drives the paper's algorithms.
//
// The key structural fact (paper Sections III, V, VII): every edge of G
// joins vertices whose BFS levels differ by at most 1, so any triangle is
// contained in the union of two consecutive BFS levels.  Algorithm 2
// therefore iterates over *adjacent level sets* (ALS): pairs
// (L_i, L_{i+1}), plus the final level alone (Fig. 3).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace lgg::graph {

inline constexpr std::uint32_t kUnreached =
    std::numeric_limits<std::uint32_t>::max();

/// BFS tree of one source: parent pointers and levels; vertices in other
/// components keep level == kUnreached.
struct BfsTree {
  Vertex source = 0;
  std::vector<Vertex> parent;        // parent[source] == source
  std::vector<std::uint32_t> level;  // hop distance from source
  std::uint32_t depth = 0;           // max reached level
};

/// Standard queue BFS from `source`.
BfsTree bfs(const Graph& g, Vertex source);

/// Connected components by repeated BFS; component ids are dense in
/// [0, count) and assigned in order of the smallest contained vertex.
struct Components {
  std::vector<std::uint32_t> component_of;  // per vertex
  std::uint32_t count = 0;

  /// Vertices of component c, ascending.
  [[nodiscard]] std::vector<Vertex> vertices_of(std::uint32_t c) const;
};
Components connected_components(const Graph& g);

/// The vertices of one BFS tree bucketed by level (paper's
/// divIntoConsecutiveLvlSets).  Levels are vectors of vertex ids, ascending
/// within each level.
class LevelDecomposition {
 public:
  LevelDecomposition() = default;
  explicit LevelDecomposition(const BfsTree& tree);

  [[nodiscard]] std::size_t num_levels() const noexcept {
    return levels_.size();
  }
  [[nodiscard]] std::span<const Vertex> level(std::size_t i) const noexcept {
    return levels_[i];
  }
  [[nodiscard]] const std::vector<std::vector<Vertex>>& levels() const noexcept {
    return levels_;
  }

  /// Total vertices across all levels (the component size).
  [[nodiscard]] std::size_t total_vertices() const noexcept;

 private:
  std::vector<std::vector<Vertex>> levels_;
};

/// One adjacent level set: the two consecutive BFS levels Algorithm 2
/// scans for triangles.  `second` is empty for the trailing single-level
/// set of a one-level component.
struct AdjacentLevelSet {
  std::uint32_t first_level_index = 0;
  std::vector<Vertex> first;   // L_i
  std::vector<Vertex> second;  // L_{i+1} (may be empty)
  bool is_last = false;        // true for the final set of the component

  [[nodiscard]] std::size_t size() const noexcept {
    return first.size() + second.size();
  }
};

/// Build the ALS sequence for one level decomposition: (L_0, L_1),
/// (L_1, L_2), ..., (L_{d-1}, L_d).  A single-level component yields one
/// set with empty `second`.  The last set has is_last == true, which tells
/// Algorithm 2 to also count triangles entirely inside its second level.
std::vector<AdjacentLevelSet> adjacent_level_sets(
    const LevelDecomposition& levels);

}  // namespace lgg::graph

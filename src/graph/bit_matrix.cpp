#include "graph/bit_matrix.hpp"

#include <cmath>

#include "util/bits.hpp"
#include "util/error.hpp"

namespace lgg::graph {

BitMatrix::BitMatrix(std::size_t n)
    : n_(n),
      words_per_row_(words_for_bits(n)),
      words_(n * words_per_row_, 0) {}

BitMatrix BitMatrix::from_graph(const Graph& g) {
  BitMatrix m(g.num_vertices());
  for (Vertex u = 0; u < g.num_vertices(); ++u)
    for (Vertex v : g.neighbors(u)) m.set(u, v);
  return m;
}

bool BitMatrix::get(std::size_t i, std::size_t j) const noexcept {
  return get_bit(row(i), j);
}

void BitMatrix::set(std::size_t i, std::size_t j, bool value) noexcept {
  std::span<std::uint64_t> r{words_.data() + i * words_per_row_,
                             words_per_row_};
  if (value)
    set_bit(r, j);
  else
    clear_bit(r, j);
}

std::uint64_t BitMatrix::max_vertices_for(std::uint64_t mem_bits) noexcept {
  // Largest n with n^2 <= mem_bits: floor(sqrt(mem_bits)), fixed up for
  // floating-point rounding.
  auto n = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(mem_bits)));
  while ((n + 1) * (n + 1) <= mem_bits) ++n;
  while (n > 0 && n * n > mem_bits) --n;
  return n;
}

SutMatrix::SutMatrix(std::size_t n)
    : n_(n), words_(words_for_bits(storage_bits(n)), 0) {}

SutMatrix SutMatrix::from_graph(const Graph& g) {
  SutMatrix m(g.num_vertices());
  for (Vertex u = 0; u < g.num_vertices(); ++u)
    for (Vertex v : g.neighbors(u))
      if (u < v) m.set(u, v);
  return m;
}

std::uint64_t SutMatrix::pair_index(std::size_t i, std::size_t j) const noexcept {
  // Row i (0-based) of the strict upper triangle holds n-1-i bits and
  // starts at sum_{r<i} (n-1-r) = i*(2n - i - 1)/2.
  const std::uint64_t offset =
      static_cast<std::uint64_t>(i) * (2 * n_ - i - 1) / 2;
  return offset + (j - i - 1);
}

bool SutMatrix::get(std::size_t i, std::size_t j) const noexcept {
  if (i == j) return false;
  if (i > j) std::swap(i, j);
  return get_bit(words_, pair_index(i, j));
}

void SutMatrix::set(std::size_t i, std::size_t j, bool value) noexcept {
  if (i == j) return;
  if (i > j) std::swap(i, j);
  std::span<std::uint64_t> w{words_.data(), words_.size()};
  if (value)
    set_bit(w, pair_index(i, j));
  else
    clear_bit(w, pair_index(i, j));
}

std::uint64_t SutMatrix::max_vertices_for(std::uint64_t mem_bits) noexcept {
  // Paper Table II accounting: UTM needs n(n+1)/2 <= S_mem; S-UTM (no
  // diagonal) admits one more vertex.  Solve n(n+1)/2 <= mem_bits, then +1.
  auto n = static_cast<std::uint64_t>(
      (std::sqrt(8.0 * static_cast<double>(mem_bits) + 1.0) - 1.0) / 2.0);
  while ((n + 1) * (n + 2) / 2 <= mem_bits) ++n;
  while (n > 0 && n * (n + 1) / 2 > mem_bits) --n;
  return n + 1;
}

}  // namespace lgg::graph

// Bit-packed adjacency representations from Section IV of the paper.
//
//  * BitMatrix  — full n×n adjacency matrix, one bit per ordered pair
//                 (Eq. 1: n^2 <= S_mem).
//  * SutMatrix  — Strictly Upper Triangular Matrix (S-UTM): only pairs with
//                 i < j are stored (Eq. 2: n(n+1)/2 <= S_mem for UTM; the
//                 strict variant drops the diagonal and stores n(n-1)/2
//                 bits, which is what lets "the largest graph increase
//                 by 1" in the paper's Table II).
//
// Both support the capacity queries the paper's Table II is computed from.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace lgg::graph {

/// Full n×n bit adjacency matrix, row-major, 64-bit word packed.
/// Rows are padded to whole words so each row is independently addressable —
/// this mirrors the row-contiguous device layout used by the GPU kernels.
class BitMatrix {
 public:
  explicit BitMatrix(std::size_t n = 0);
  static BitMatrix from_graph(const Graph& g);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t words_per_row() const noexcept {
    return words_per_row_;
  }

  [[nodiscard]] bool get(std::size_t i, std::size_t j) const noexcept;
  void set(std::size_t i, std::size_t j, bool value = true) noexcept;

  /// Row i as a word span (padded with zero bits beyond column n-1).
  [[nodiscard]] std::span<const std::uint64_t> row(std::size_t i) const noexcept {
    return {words_.data() + i * words_per_row_, words_per_row_};
  }

  [[nodiscard]] std::span<const std::uint64_t> raw_words() const noexcept {
    return words_;
  }

  /// Storage cost in bits of the *logical* representation (n^2), as used by
  /// the paper's Eq. (1); padding is an implementation detail.
  [[nodiscard]] static std::uint64_t storage_bits(std::uint64_t n) noexcept {
    return n * n;
  }

  /// Largest n with storage_bits(n) <= mem_bits (paper Table II column
  /// "Adj Mat").
  static std::uint64_t max_vertices_for(std::uint64_t mem_bits) noexcept;

 private:
  std::size_t n_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Strictly upper triangular bit matrix for undirected simple graphs:
/// stores only pairs (i, j) with i < j, n(n-1)/2 bits.
class SutMatrix {
 public:
  explicit SutMatrix(std::size_t n = 0);
  static SutMatrix from_graph(const Graph& g);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Linear bit index of the pair (i, j), i < j, in row-major strict upper
  /// triangular order: row i starts at i*n - i(i+1)/2 - i ... computed as
  /// offset(i) + (j - i - 1).
  [[nodiscard]] std::uint64_t pair_index(std::size_t i, std::size_t j) const noexcept;

  /// Symmetric lookup: get(i, j) == get(j, i); get(i, i) == false.
  [[nodiscard]] bool get(std::size_t i, std::size_t j) const noexcept;
  void set(std::size_t i, std::size_t j, bool value = true) noexcept;

  [[nodiscard]] std::span<const std::uint64_t> raw_words() const noexcept {
    return words_;
  }

  /// Logical storage cost in bits: n(n-1)/2 (paper's S-UTM).
  [[nodiscard]] static std::uint64_t storage_bits(std::uint64_t n) noexcept {
    return n * (n - 1) / 2;
  }

  /// Largest n with storage_bits(n) <= mem_bits.  The paper's Table II
  /// "S-UTM" columns use the UTM bound n(n+1)/2 <= S_mem and then add one
  /// vertex for dropping the diagonal; max_vertices_for reproduces that
  /// accounting (see bench_table2_maxsize).
  static std::uint64_t max_vertices_for(std::uint64_t mem_bits) noexcept;

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace lgg::graph

#include "graph/chunking.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lgg::graph {

std::uint64_t chunk_bits(std::uint64_t c, SizeMetric metric) noexcept {
  switch (metric) {
    case SizeMetric::kAdjacencyMatrix:
      return c * c;
    case SizeMetric::kSutm:
      return c * (c - 1) / 2;
  }
  return c * c;  // unreachable
}

namespace {

/// Greedy split of one component's level decomposition into maximal runs of
/// consecutive levels whose footprint fits the budget; adjacent runs share
/// one boundary level.  A run that exceeds the budget even as a single
/// level-pair is emitted anyway (it will live in global memory).
std::vector<Chunk> greedy_split(const LevelDecomposition& levels,
                                std::uint32_t component,
                                const ChunkingOptions& opts) {
  std::vector<Chunk> chunks;
  const std::size_t d = levels.num_levels();
  LGG_ASSERT(d > 0);

  std::size_t lo = 0;
  while (lo < d) {
    // Take at least the pair (lo, lo+1) — ALS processing needs two
    // consecutive levels — even if that pair alone exceeds the budget;
    // then extend while the union still fits.
    std::size_t hi = lo;
    std::uint64_t count = levels.level(lo).size();
    if (hi + 1 < d) {
      ++hi;
      count += levels.level(hi).size();
    }
    while (hi + 1 < d) {
      const std::uint64_t next_count = count + levels.level(hi + 1).size();
      if (chunk_bits(next_count, opts.metric) > opts.shared_mem_bits) break;
      ++hi;
      count = next_count;
    }

    Chunk chunk;
    chunk.component = component;
    chunk.first_level = static_cast<std::uint32_t>(lo);
    chunk.last_level = static_cast<std::uint32_t>(hi);
    for (std::size_t l = lo; l <= hi; ++l) {
      const auto lvl = levels.level(l);
      chunk.vertices.insert(chunk.vertices.end(), lvl.begin(), lvl.end());
    }
    std::sort(chunk.vertices.begin(), chunk.vertices.end());
    chunk.bits = chunk_bits(chunk.vertices.size(), opts.metric);
    chunk.fits_shared = chunk.bits <= opts.shared_mem_bits;
    chunks.push_back(std::move(chunk));

    if (hi + 1 >= d) break;
    lo = hi;  // overlap: next chunk starts at this chunk's last level
  }
  return chunks;
}

struct Split {
  std::vector<Chunk> chunks;
  BfsTree tree;
  std::size_t oversized = 0;
  std::uint64_t fragmentation = 0;
};

Split try_split(const Graph& g, Vertex root, std::uint32_t component,
                const ChunkingOptions& opts) {
  Split s;
  s.tree = bfs(g, root);
  const LevelDecomposition levels(s.tree);
  s.chunks = greedy_split(levels, component, opts);
  for (const auto& chunk : s.chunks) {
    if (!chunk.fits_shared)
      ++s.oversized;
    else
      s.fragmentation += opts.shared_mem_bits - chunk.bits;
  }
  return s;
}

}  // namespace

ChunkingResult split_into_chunks(const Graph& g, const ChunkingOptions& opts) {
  LGG_CHECK(opts.shared_mem_bits > 0, "shared_mem_bits must be positive");
  LGG_CHECK(opts.max_start_trials > 0, "max_start_trials must be positive");

  ChunkingResult result;
  const Components comps = connected_components(g);
  result.trees.resize(comps.count);

  for (std::uint32_t c = 0; c < comps.count; ++c) {
    const std::vector<Vertex> members = comps.vertices_of(c);
    LGG_ASSERT(!members.empty());

    // Whole-component footprint check first (the "CCi fits" fast path).
    const std::uint64_t whole = chunk_bits(members.size(), opts.metric);
    if (whole <= opts.shared_mem_bits) {
      result.trees[c] = bfs(g, members.front());
      Chunk chunk;
      chunk.component = c;
      chunk.first_level = 0;
      chunk.last_level = result.trees[c].depth;
      chunk.vertices = members;
      chunk.bits = whole;
      chunk.fits_shared = true;
      result.chunks.push_back(std::move(chunk));
      continue;
    }

    // Try several BFS roots, keep the best split per Eq. 5 + fragmentation.
    const std::size_t trials = std::min(opts.max_start_trials, members.size());
    Split best;
    bool have_best = false;
    for (std::size_t t = 0; t < trials; ++t) {
      // Spread trial roots across the component deterministically.
      const Vertex root = members[t * members.size() / trials];
      Split s = try_split(g, root, c, opts);
      const bool better =
          !have_best || s.oversized < best.oversized ||
          (s.oversized == best.oversized &&
           s.fragmentation < best.fragmentation);
      if (better) {
        best = std::move(s);
        have_best = true;
      }
      if (have_best && best.oversized == 0) break;  // cannot improve Eq. 5
    }
    LGG_ASSERT(have_best);
    result.trees[c] = std::move(best.tree);
    result.oversized_chunks += best.oversized;
    result.fragmentation_bits += best.fragmentation;
    for (auto& chunk : best.chunks) result.chunks.push_back(std::move(chunk));
  }
  return result;
}

}  // namespace lgg::graph

// Algorithm 1 of the paper: CPU preprocessing that splits the input graph
// into chunks of consecutive BFS levels, per connected component, sized
// against the GPU shared-memory budget.
//
// A chunk is a run of consecutive BFS levels [first_level, last_level] of
// one component.  Consecutive chunks of the same component OVERLAP by one
// level, so that every adjacent level set (and hence every triangle) is
// fully contained in some chunk — this is the "shared levels" property the
// paper exploits in Section X-A and which forces the redundant layout of
// Fig. 9.
//
// The paper's objective (Eq. 5): over candidate BFS start vertices, choose
// the split minimising the number of chunks that do NOT fit in shared
// memory; ties are broken by least shared-memory fragmentation.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace lgg::graph {

/// How a chunk's memory footprint is computed from its vertex count c.
enum class SizeMetric {
  kAdjacencyMatrix,  // c^2 bits           (paper Eq. 1)
  kSutm,             // c(c-1)/2 bits      (paper's S-UTM)
};

struct ChunkingOptions {
  /// Shared-memory budget per streaming multiprocessor, in bits
  /// (e.g. 16 KiB * 8 for the C1060).
  std::uint64_t shared_mem_bits = 16ull * 1024 * 8;
  SizeMetric metric = SizeMetric::kSutm;
  /// How many BFS start vertices to try per component (the paper iterates
  /// over unprocessed vertices; we bound the search).
  std::size_t max_start_trials = 8;
};

struct Chunk {
  std::uint32_t component = 0;
  std::uint32_t first_level = 0;  // inclusive
  std::uint32_t last_level = 0;   // inclusive
  std::vector<Vertex> vertices;   // union of levels [first, last], ascending
  std::uint64_t bits = 0;         // footprint under the chosen metric
  bool fits_shared = false;       // bits <= shared_mem_bits
};

struct ChunkingResult {
  std::vector<Chunk> chunks;
  /// BFS tree used for each component (indexed by component id); needed by
  /// Algorithm 2 to form adjacent level sets within chunks.
  std::vector<BfsTree> trees;
  /// Eq. 5 value achieved: number of chunks with bits > budget.
  std::size_t oversized_chunks = 0;
  /// Total unused shared-memory bits over chunks that do fit (fragmentation
  /// objective from Section V).
  std::uint64_t fragmentation_bits = 0;
};

/// Footprint in bits of a chunk with `c` vertices under `metric`.
std::uint64_t chunk_bits(std::uint64_t c, SizeMetric metric) noexcept;

/// Algorithm 1.  Splits every connected component of g into overlapping
/// consecutive-level chunks.  Components whose whole footprint fits the
/// budget become a single chunk.  For the rest, several BFS roots are
/// tried and the split with the fewest oversized chunks (then least
/// fragmentation) is kept.
ChunkingResult split_into_chunks(const Graph& g, const ChunkingOptions& opts);

}  // namespace lgg::graph

#include "graph/digest.hpp"

#include <cstddef>

namespace lgg::graph {
namespace {

/// Incremental 64-bit FNV-1a.  Multi-byte integers are folded
/// little-endian at fixed widths so the digest is platform-independent.
class Fnv1a {
 public:
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }

  void u64(std::uint64_t v) {
    unsigned char buf[8];
    for (auto& b : buf) {
      b = static_cast<unsigned char>(v & 0xff);
      v >>= 8;
    }
    bytes(buf, sizeof buf);
  }

  void u32(std::uint32_t v) { u64(v); }

  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

void fold_graph(Fnv1a& h, const Graph& g) {
  h.u64(g.num_vertices());
  for (const std::uint64_t o : g.raw_offsets()) h.u64(o);
  for (const Vertex v : g.raw_adjacency()) h.u32(v);
}

}  // namespace

std::uint64_t graph_digest(const Graph& g) {
  Fnv1a h;
  h.str("lgg-graph-v1");
  fold_graph(h, g);
  return h.value();
}

std::uint64_t loaded_graph_digest(const LoadedGraph& loaded) {
  Fnv1a h;
  h.str("lgg-loaded-v1");
  fold_graph(h, loaded.graph);
  h.u64(loaded.original_ids.size());
  for (const std::uint64_t id : loaded.original_ids) h.u64(id);
  h.u64(loaded.comments.size());
  for (const auto& c : loaded.comments) h.str(c);
  h.u64(loaded.declared_nodes.has_value() ? 1 : 0);
  if (loaded.declared_nodes) h.u64(*loaded.declared_nodes);
  return h.value();
}

std::string digest_hex(std::uint64_t digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 16; i-- > 0; digest >>= 4) out[i] = kHex[digest & 0xf];
  return out;
}

}  // namespace lgg::graph

// Content digests for graphs and loader results.
//
// The parallel ingest pipeline (src/ingest/) promises output byte-identical
// to the serial SNAP loader at any thread count.  A digest turns that
// promise into something a test or CI stage can compare with one string:
// it folds every observable field — CSR arrays, original-id mapping,
// comments, declared node count — through FNV-1a.  The same value is the
// natural cache key for the planned serving layer (ROADMAP item 1: result
// caches keyed by graph digest).
//
// The digest is a stable function of the *content*, not of the machine:
// all integers are folded little-endian at fixed widths, so the value is
// reproducible across runs, thread counts and platforms.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "graph/io.hpp"

namespace lgg::graph {

/// FNV-1a over the CSR arrays (n, offsets, adjacency).  Two graphs digest
/// equal iff they are identical up to this representation — which is
/// canonical for a given vertex labelling.
[[nodiscard]] std::uint64_t graph_digest(const Graph& g);

/// Digest of the full loader result: the graph plus original-id mapping,
/// comment lines and declared node count.  This is the value the ingest
/// determinism contract pins across thread counts.
[[nodiscard]] std::uint64_t loaded_graph_digest(const LoadedGraph& loaded);

/// Fixed-width lowercase hex rendering (16 chars) for CLI output and CI
/// string compares.
[[nodiscard]] std::string digest_hex(std::uint64_t digest);

}  // namespace lgg::graph

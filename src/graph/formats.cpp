#include "graph/formats.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace lgg::graph {

Graph read_dimacs(std::istream& in) {
  std::string line;
  std::size_t n = 0;
  bool have_header = false;
  std::vector<Edge> edges;
  std::size_t lineno = 0;

  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'c' || tag == '%') continue;
    if (tag == 'p') {
      std::string kind;
      std::size_t m = 0;
      LGG_CHECK(static_cast<bool>(ls >> kind >> n >> m),
                "DIMACS: malformed problem line " << lineno);
      LGG_CHECK(kind == "edge" || kind == "col" || kind == "sp",
                "DIMACS: unsupported problem kind '" << kind << "'");
      have_header = true;
      edges.reserve(m);
      continue;
    }
    if (tag == 'e' || tag == 'a') {
      LGG_CHECK(have_header, "DIMACS: edge before problem line " << lineno);
      std::uint64_t u = 0, v = 0;
      LGG_CHECK(static_cast<bool>(ls >> u >> v),
                "DIMACS: malformed edge line " << lineno);
      LGG_CHECK(u >= 1 && v >= 1 && u <= n && v <= n,
                "DIMACS: endpoint out of range on line " << lineno);
      edges.emplace_back(static_cast<Vertex>(u - 1),
                         static_cast<Vertex>(v - 1));
      continue;
    }
    LGG_THROW("DIMACS: unrecognised line " << lineno << ": '" << line << "'");
  }
  LGG_CHECK(have_header, "DIMACS: missing problem line");
  return Graph::from_edges(n, edges);
}

Graph read_dimacs_file(const std::string& path) {
  std::ifstream in(path);
  LGG_CHECK(in.good(), "cannot open DIMACS file: " << path);
  return read_dimacs(in);
}

void write_dimacs(std::ostream& out, const Graph& g,
                  const std::string& comment) {
  if (!comment.empty()) out << "c " << comment << '\n';
  out << "p edge " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edges())
    out << "e " << (u + 1) << ' ' << (v + 1) << '\n';
}

void write_dimacs_file(const std::string& path, const Graph& g,
                       const std::string& comment) {
  std::ofstream out(path);
  LGG_CHECK(out.good(), "cannot open file for writing: " << path);
  write_dimacs(out, g, comment);
  LGG_CHECK(out.good(), "error writing DIMACS file: " << path);
}

Graph read_metis(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;

  // Header (skipping % comments): n m [fmt]
  std::size_t n = 0, m = 0;
  for (;;) {
    LGG_CHECK(static_cast<bool>(std::getline(in, line)),
              "METIS: missing header");
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '%') continue;
    std::istringstream ls(line);
    LGG_CHECK(static_cast<bool>(ls >> n >> m), "METIS: malformed header");
    std::string fmt;
    if (ls >> fmt)
      LGG_CHECK(fmt == "0" || fmt == "00" || fmt == "000",
                "METIS: weighted formats not supported (fmt=" << fmt << ")");
    break;
  }

  std::vector<Edge> edges;
  edges.reserve(m);
  std::size_t vertex = 0;
  while (vertex < n) {
    LGG_CHECK(static_cast<bool>(std::getline(in, line)),
              "METIS: expected " << n << " adjacency lines, got " << vertex);
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first != std::string::npos && line[first] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t nbr = 0;
    while (ls >> nbr) {
      LGG_CHECK(nbr >= 1 && nbr <= n,
                "METIS: neighbour out of range on line " << lineno);
      if (nbr - 1 > vertex)  // each edge appears on both lines; keep one
        edges.emplace_back(static_cast<Vertex>(vertex),
                           static_cast<Vertex>(nbr - 1));
    }
    ++vertex;
  }
  const Graph g = Graph::from_edges(n, edges);
  LGG_CHECK(g.num_edges() == m,
            "METIS: header claims " << m << " edges, file has "
                                    << g.num_edges());
  return g;
}

Graph read_metis_file(const std::string& path) {
  std::ifstream in(path);
  LGG_CHECK(in.good(), "cannot open METIS file: " << path);
  return read_metis(in);
}

void write_metis(std::ostream& out, const Graph& g) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    bool first = true;
    for (const Vertex u : g.neighbors(v)) {
      if (!first) out << ' ';
      out << (u + 1);
      first = false;
    }
    out << '\n';
  }
}

void write_metis_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  LGG_CHECK(out.good(), "cannot open file for writing: " << path);
  write_metis(out, g);
  LGG_CHECK(out.good(), "error writing METIS file: " << path);
}

}  // namespace lgg::graph

// Additional interchange formats beyond the SNAP edge list (io.hpp):
//
//  * DIMACS  — "c ..." comments, "p edge <n> <m>" header, "e <u> <v>"
//              edges, 1-based vertex ids (the clique/colouring challenge
//              format).
//  * METIS   — header "<n> <m>", then line i holds the neighbours of
//              vertex i, 1-based (the graph-partitioning format).
//
// Both readers produce the same simple undirected Graph; writers emit
// dense 1-based ids.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace lgg::graph {

Graph read_dimacs(std::istream& in);
Graph read_dimacs_file(const std::string& path);
void write_dimacs(std::ostream& out, const Graph& g,
                  const std::string& comment = {});
void write_dimacs_file(const std::string& path, const Graph& g,
                       const std::string& comment = {});

Graph read_metis(std::istream& in);
Graph read_metis_file(const std::string& path);
void write_metis(std::ostream& out, const Graph& g);
void write_metis_file(const std::string& path, const Graph& g);

}  // namespace lgg::graph

#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/error.hpp"
#include "util/prng.hpp"

namespace lgg::graph {

namespace {

/// Pack an (u, v) pair into one 64-bit key for dedup sets.
constexpr std::uint64_t edge_key(Vertex u, Vertex v) noexcept {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Graph erdos_renyi(std::size_t n, double p, std::uint64_t seed) {
  LGG_CHECK(p >= 0.0 && p <= 1.0, "erdos_renyi: p=" << p << " not in [0,1]");
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  if (p <= 0.0 || n < 2) return Graph::from_edges(n, edges);
  if (p >= 1.0) return complete(n);

  // Geometric skipping over the C(n,2) pair sequence: the gap to the next
  // present edge is geometric with parameter p, so expected work is O(m).
  const double log1mp = std::log1p(-p);
  const std::uint64_t total_pairs =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  edges.reserve(static_cast<std::size_t>(p * static_cast<double>(total_pairs) * 1.05) + 16);

  // Walk a cursor over the strict upper triangle in row-major order,
  // skipping a geometric number of absent pairs each step.  `pos` is the
  // 0-based linear index of the next candidate pair; `row_base` is the
  // linear index of pair (i, i+1).  Row advances cost O(n) total.
  std::uint64_t pos = 0;
  std::uint64_t i = 0;
  std::uint64_t row_base = 0;
  for (;;) {
    const double u01 = rng.uniform01();
    const auto skip =
        static_cast<std::uint64_t>(std::floor(std::log1p(-u01) / log1mp));
    pos += skip;
    if (pos >= total_pairs) break;
    while (pos - row_base >= n - 1 - i) {
      row_base += n - 1 - i;
      ++i;
    }
    const std::uint64_t j = i + 1 + (pos - row_base);
    edges.emplace_back(static_cast<Vertex>(i), static_cast<Vertex>(j));
    ++pos;
  }
  return Graph::from_edges(n, edges);
}

Graph gnm(std::size_t n, std::size_t m, std::uint64_t seed) {
  const std::uint64_t total_pairs =
      n >= 2 ? static_cast<std::uint64_t>(n) * (n - 1) / 2 : 0;
  LGG_CHECK(m <= total_pairs,
            "gnm: m=" << m << " exceeds C(" << n << ",2)=" << total_pairs);
  Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(m * 2);
  std::vector<Edge> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    const auto u = static_cast<Vertex>(rng.uniform(n));
    const auto v = static_cast<Vertex>(rng.uniform(n));
    if (u == v) continue;
    if (chosen.insert(edge_key(u, v)).second)
      edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, edges);
}

Graph barabasi_albert(std::size_t n, std::size_t attach, std::uint64_t seed) {
  LGG_CHECK(attach >= 1, "barabasi_albert: attach must be >= 1");
  LGG_CHECK(n > attach, "barabasi_albert: need n > attach");
  Xoshiro256 rng(seed);

  // `targets` holds one entry per edge endpoint, so sampling a uniform
  // element is sampling proportional to degree (the classic implementation).
  std::vector<Vertex> targets;
  targets.reserve(2 * n * attach);
  std::vector<Edge> edges;
  edges.reserve(n * attach);

  // Seed clique on attach+1 vertices so every early vertex has degree >= 1.
  for (Vertex u = 0; u <= attach; ++u)
    for (Vertex v = u + 1; v <= attach; ++v) {
      edges.emplace_back(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }

  // Insertion-ordered dedup (attach is tiny): the emitted edge order — and
  // through `targets` every later draw — must not depend on hash iteration
  // order, or the generated graph varies across standard libraries.
  std::vector<Vertex> picked;
  picked.reserve(attach);
  for (Vertex v = static_cast<Vertex>(attach + 1); v < n; ++v) {
    picked.clear();
    while (picked.size() < attach) {
      const Vertex t = targets[rng.uniform(targets.size())];
      if (std::find(picked.begin(), picked.end(), t) == picked.end())
        picked.push_back(t);
    }
    for (Vertex t : picked) {
      edges.emplace_back(v, t);
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph rmat(unsigned scale, std::size_t edge_factor, std::uint64_t seed,
           double a, double b, double c, double d) {
  LGG_CHECK(scale <= 30, "rmat: scale " << scale << " too large");
  const double sum = a + b + c + d;
  LGG_CHECK(std::abs(sum - 1.0) < 1e-6,
            "rmat: probabilities sum to " << sum << ", expected 1");
  const std::size_t n = std::size_t{1} << scale;
  const std::size_t samples = n * edge_factor;
  Xoshiro256 rng(seed);

  std::vector<Edge> edges;
  edges.reserve(samples);
  for (std::size_t e = 0; e < samples; ++e) {
    Vertex u = 0, v = 0;
    for (unsigned bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform01();
      unsigned ubit = 0, vbit = 0;
      if (r < a) {
        // top-left quadrant
      } else if (r < a + b) {
        vbit = 1;
      } else if (r < a + b + c) {
        ubit = 1;
      } else {
        ubit = 1;
        vbit = 1;
      }
      u = (u << 1) | ubit;
      v = (v << 1) | vbit;
    }
    if (u != v) edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, edges);
}

Graph complete(std::size_t n) {
  std::vector<Edge> edges;
  if (n >= 2) edges.reserve(n * (n - 1) / 2);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  return Graph::from_edges(n, edges);
}

Graph cycle(std::size_t n) {
  LGG_CHECK(n == 0 || n >= 3, "cycle: need n >= 3 (or 0), got " << n);
  std::vector<Edge> edges;
  for (Vertex v = 0; v < n; ++v)
    edges.emplace_back(v, static_cast<Vertex>((v + 1) % n));
  return Graph::from_edges(n, edges);
}

Graph star(std::size_t n) {
  std::vector<Edge> edges;
  for (Vertex v = 1; v < n; ++v) edges.emplace_back(0, v);
  return Graph::from_edges(n, edges);
}

Graph path(std::size_t n) {
  std::vector<Edge> edges;
  for (Vertex v = 0; v + 1 < n; ++v)
    edges.emplace_back(v, static_cast<Vertex>(v + 1));
  return Graph::from_edges(n, edges);
}

Graph grid2d(std::size_t rows, std::size_t cols) {
  std::vector<Edge> edges;
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<Vertex>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  return Graph::from_edges(rows * cols, edges);
}

Graph complete_bipartite(std::size_t a, std::size_t b) {
  std::vector<Edge> edges;
  edges.reserve(a * b);
  for (Vertex u = 0; u < a; ++u)
    for (Vertex v = 0; v < b; ++v)
      edges.emplace_back(u, static_cast<Vertex>(a + v));
  return Graph::from_edges(a + b, edges);
}

Graph layered_random(std::size_t n, std::size_t width, double p_within,
                     double p_between, std::uint64_t seed) {
  LGG_CHECK(width >= 1, "layered_random: width must be >= 1");
  LGG_CHECK(p_within >= 0 && p_within <= 1 && p_between >= 0 && p_between <= 1,
            "layered_random: probabilities must be in [0,1]");
  Xoshiro256 rng(seed);
  const std::size_t layers = (n + width - 1) / width;
  std::vector<Edge> edges;

  auto layer_range = [&](std::size_t l) {
    const std::size_t lo = l * width;
    const std::size_t hi = std::min(n, lo + width);
    return std::pair{lo, hi};
  };

  // Geometric skipping over pair sequences, as in erdos_renyi, to stay
  // O(m) even at n = 100k.
  auto sample_pairs = [&](double p, auto&& emit, std::uint64_t total_pairs) {
    if (p <= 0.0 || total_pairs == 0) return;
    if (p >= 1.0) {
      for (std::uint64_t k = 0; k < total_pairs; ++k) emit(k);
      return;
    }
    const double log1mp = std::log1p(-p);
    std::uint64_t pos = 0;
    for (;;) {
      const double u01 = rng.uniform01();
      pos += static_cast<std::uint64_t>(std::floor(std::log1p(-u01) / log1mp));
      if (pos >= total_pairs) break;
      emit(pos);
      ++pos;
    }
  };

  for (std::size_t l = 0; l < layers; ++l) {
    const auto [lo, hi] = layer_range(l);
    const std::uint64_t size = hi - lo;

    // Within-layer pairs, strict upper triangle of the layer.
    sample_pairs(
        p_within,
        [&](std::uint64_t k) {
          // Row-major strict upper triangle walk (same mapping as the
          // G(n,p) generator, but sizes here are small enough for direct
          // search).
          std::uint64_t i = 0, row_base = 0;
          while (k - row_base >= size - 1 - i) {
            row_base += size - 1 - i;
            ++i;
          }
          const std::uint64_t j = i + 1 + (k - row_base);
          edges.emplace_back(static_cast<Vertex>(lo + i),
                             static_cast<Vertex>(lo + j));
        },
        size >= 2 ? size * (size - 1) / 2 : 0);

    // Pairs into the next layer: full bipartite index space.
    if (l + 1 < layers) {
      const auto [nlo, nhi] = layer_range(l + 1);
      const std::uint64_t nsize = nhi - nlo;
      sample_pairs(
          p_between,
          [&](std::uint64_t k) {
            edges.emplace_back(static_cast<Vertex>(lo + k / nsize),
                               static_cast<Vertex>(nlo + k % nsize));
          },
          size * nsize);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph disjoint_union(const Graph& g1, const Graph& g2) {
  std::vector<Edge> edges = g1.edges();
  const auto offset = static_cast<Vertex>(g1.num_vertices());
  for (const auto& [u, v] : g2.edges())
    edges.emplace_back(static_cast<Vertex>(u + offset),
                       static_cast<Vertex>(v + offset));
  return Graph::from_edges(g1.num_vertices() + g2.num_vertices(), edges);
}

}  // namespace lgg::graph

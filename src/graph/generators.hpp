// Synthetic graph generators for the benchmark workloads.
//
// The paper evaluates on (a) random graphs of 200–1200 nodes (Figs. 10, 12)
// and (b) SNAP social/web graphs of 5k–100k nodes (Fig. 11).  The SNAP data
// is not redistributable here, so Fig. 11 uses power-law generators (R-MAT,
// Barabási–Albert) that match the degree structure the algorithm is
// sensitive to; real SNAP files load through graph/io.hpp when available.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace lgg::graph {

/// Erdős–Rényi G(n, p): each pair independently an edge with probability p.
/// Uses geometric skipping, O(n + m) expected time.
Graph erdos_renyi(std::size_t n, double p, std::uint64_t seed);

/// Erdős–Rényi G(n, m): exactly m distinct edges chosen uniformly.
Graph gnm(std::size_t n, std::size_t m, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices with probability proportional to degree.
/// Produces power-law degree distributions like social networks.
Graph barabasi_albert(std::size_t n, std::size_t attach, std::uint64_t seed);

/// R-MAT (Chakrabarti–Zhan–Faloutsos) recursive matrix generator, the
/// standard proxy for SNAP-style web/social graphs.  Generates
/// edge_factor * 2^scale directed samples, symmetrised and deduplicated.
/// (a, b, c, d) must sum to ~1; Graph500 defaults are (.57, .19, .19, .05).
Graph rmat(unsigned scale, std::size_t edge_factor, std::uint64_t seed,
           double a = 0.57, double b = 0.19, double c = 0.19, double d = 0.05);

/// Complete graph K_n (has exactly C(n,3) triangles — a key test oracle).
Graph complete(std::size_t n);

/// Cycle C_n (triangle-free for n >= 4; C_3 is one triangle).
Graph cycle(std::size_t n);

/// Star K_{1,n-1} (triangle-free; BFS tree is 2 levels).
Graph star(std::size_t n);

/// Path P_n (triangle-free; BFS from an end gives n levels — the worst case
/// for Algorithm 1 chunking).
Graph path(std::size_t n);

/// rows×cols grid (triangle-free, girth 4).
Graph grid2d(std::size_t rows, std::size_t cols);

/// Complete bipartite K_{a,b} (triangle-free).
Graph complete_bipartite(std::size_t a, std::size_t b);

/// Disjoint union of the two graphs (used to exercise per-component
/// processing in Algorithm 1).
Graph disjoint_union(const Graph& g1, const Graph& g2);

/// Layered community graph: n vertices in ceil(n / width) consecutive
/// layers; each within-layer pair is an edge with probability p_within and
/// each pair in ADJACENT layers with probability p_between.
///
/// This is the Fig. 11 stand-in for the SNAP community graphs [11]
/// (Leskovec et al. study exactly this banded community structure): it
/// gives the deep, wide BFS trees that make the paper's level-set
/// algorithm meaningful at 5k-100k vertices, unlike G(n,p) whose diameter
/// collapses to 2-3.
Graph layered_random(std::size_t n, std::size_t width, double p_within,
                     double p_between, std::uint64_t seed);

}  // namespace lgg::graph

#include "graph/graph.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/error.hpp"

namespace lgg::graph {

Graph::Graph(std::size_t n) : n_(n), offsets_(n + 1, 0) {}

Graph Graph::from_edges(std::size_t n, std::span<const Edge> edges) {
  Graph g(n);

  // Normalise to (min, max), drop self-loops, validate endpoints.
  std::vector<Edge> normalised;
  normalised.reserve(edges.size());
  for (const auto& [a, b] : edges) {
    LGG_CHECK(a < n && b < n, "edge (" << a << "," << b
                                       << ") out of range for n=" << n);
    if (a == b) continue;
    normalised.emplace_back(std::min(a, b), std::max(a, b));
  }
  std::sort(normalised.begin(), normalised.end());
  normalised.erase(std::unique(normalised.begin(), normalised.end()),
                   normalised.end());

  // Counting pass, then fill (classic two-pass CSR build).
  std::vector<std::uint64_t> counts(n, 0);
  for (const auto& [u, v] : normalised) {
    ++counts[u];
    ++counts[v];
  }
  for (std::size_t v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + counts[v];

  g.adjacency_.resize(normalised.size() * 2);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : normalised) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  for (std::size_t v = 0; v < n; ++v)
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  return g;
}

Graph Graph::from_csr(std::size_t n, std::vector<std::uint64_t> offsets,
                      std::vector<Vertex> adjacency) {
  LGG_CHECK(offsets.size() == n + 1,
            "from_csr: offsets has " << offsets.size() << " entries for n="
                                     << n);
  LGG_CHECK(offsets.front() == 0, "from_csr: offsets must start at 0");
  LGG_CHECK(offsets.back() == adjacency.size(),
            "from_csr: offsets end at " << offsets.back() << " but adjacency has "
                                        << adjacency.size() << " entries");
  LGG_CHECK(adjacency.size() % 2 == 0,
            "from_csr: undirected adjacency must have an even entry count");
  for (std::size_t v = 0; v < n; ++v)
    LGG_CHECK(offsets[v] <= offsets[v + 1],
              "from_csr: offsets not monotone at vertex " << v);
  Graph g(n);
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  return g;
}

bool Graph::has_edge(Vertex u, Vertex v) const noexcept {
  if (u >= n_ || v >= n_) return false;
  // Search the shorter list.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> result;
  result.reserve(num_edges());
  for (Vertex u = 0; u < n_; ++u)
    for (Vertex v : neighbors(u))
      if (u < v) result.emplace_back(u, v);
  return result;
}

InducedSubgraph Graph::induced_subgraph(std::span<const Vertex> vertices) const {
  std::vector<Vertex> to_original(vertices.begin(), vertices.end());
  std::vector<Vertex> old_to_new(n_, static_cast<Vertex>(n_));
  for (std::size_t i = 0; i < to_original.size(); ++i) {
    const Vertex old = to_original[i];
    LGG_CHECK(old < n_, "induced_subgraph: vertex " << old << " out of range");
    LGG_CHECK(old_to_new[old] == static_cast<Vertex>(n_),
              "induced_subgraph: duplicate vertex " << old);
    old_to_new[old] = static_cast<Vertex>(i);
  }

  std::vector<Edge> sub_edges;
  for (std::size_t i = 0; i < to_original.size(); ++i) {
    for (Vertex w : neighbors(to_original[i])) {
      const Vertex j = old_to_new[w];
      if (j != static_cast<Vertex>(n_) && static_cast<Vertex>(i) < j)
        sub_edges.emplace_back(static_cast<Vertex>(i), j);
    }
  }
  return {from_edges(to_original.size(), sub_edges), std::move(to_original)};
}

std::size_t Graph::max_degree() const noexcept {
  // Single pass over offsets_: each degree reuses the previous iteration's
  // upper offset instead of reloading both ends per vertex.
  std::size_t best = 0;
  std::uint64_t prev = offsets_[0];
  for (std::size_t v = 1; v <= n_; ++v) {
    best = std::max(best, static_cast<std::size_t>(offsets_[v] - prev));
    prev = offsets_[v];
  }
  return best;
}

}  // namespace lgg::graph

// Core undirected-graph representation: compressed sparse rows (CSR) with
// sorted neighbour lists.
//
// This is the host-side representation used by Algorithm 1 preprocessing,
// the CPU triangle counters, and as the source from which device layouts
// (adjacency matrix / S-UTM blocks) are materialised.  Vertices are dense
// ids in [0, n).  The graph is simple: self-loops and parallel edges are
// removed at build time.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace lgg::graph {

using Vertex = std::uint32_t;

/// An undirected edge; normalised so that first <= second is NOT required
/// on input, the Graph builder normalises internally.
using Edge = std::pair<Vertex, Vertex>;

struct InducedSubgraph;

class Graph {
 public:
  /// Empty graph with n isolated vertices.
  explicit Graph(std::size_t n = 0);

  /// Builds a simple undirected graph on n vertices from an edge list.
  /// Self-loops and duplicate edges (in either orientation) are dropped.
  /// Throws lgg::Error if an endpoint is >= n.
  static Graph from_edges(std::size_t n, std::span<const Edge> edges);
  static Graph from_edges(std::size_t n, const std::vector<Edge>& edges) {
    return from_edges(n, std::span<const Edge>(edges));
  }

  /// Adopts prebuilt CSR arrays (the parallel ingest builder produces them
  /// without going through an Edge list).  `offsets` must have n+1
  /// monotone entries starting at 0 and ending at adjacency.size(), which
  /// must be even; each vertex's adjacency slice must be sorted,
  /// self-loop-free and duplicate-free with every (u,v) mirrored as (v,u)
  /// — i.e. exactly what from_edges would have built.  Sizes and
  /// monotonicity are validated; the per-vertex invariants are the
  /// caller's contract (they are O(m) to re-check; the ingest determinism
  /// tests pin them by digest against from_edges).
  static Graph from_csr(std::size_t n, std::vector<std::uint64_t> offsets,
                        std::vector<Vertex> adjacency);

  [[nodiscard]] std::size_t num_vertices() const noexcept { return n_; }
  /// Number of undirected edges.
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return adjacency_.size() / 2;
  }

  [[nodiscard]] std::size_t degree(Vertex v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Sorted neighbour list of v.
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const noexcept {
    return {adjacency_.data() + offsets_[v], degree(v)};
  }

  /// O(log deg) membership test on the sorted neighbour list.
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const noexcept;

  /// All edges with u < v, in (u, v) lexicographic order.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Induced subgraph on `vertices` (need not be sorted; duplicates are an
  /// error).  Returns the subgraph plus the mapping new-id -> old-id.
  [[nodiscard]] InducedSubgraph induced_subgraph(
      std::span<const Vertex> vertices) const;

  /// Maximum degree over all vertices (0 for the empty graph).
  [[nodiscard]] std::size_t max_degree() const noexcept;

  /// CSR internals, exposed for device-layout construction.
  [[nodiscard]] std::span<const std::uint64_t> raw_offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] std::span<const Vertex> raw_adjacency() const noexcept {
    return adjacency_;
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> offsets_;  // size n+1
  std::vector<Vertex> adjacency_;       // size 2m, sorted per vertex
};

/// Result of Graph::induced_subgraph.
struct InducedSubgraph {
  Graph graph;
  std::vector<Vertex> to_original;  // new id -> original id
};

}  // namespace lgg::graph

#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/error.hpp"

namespace lgg::graph {

LoadedGraph read_snap_edge_list(std::istream& in,
                                const SnapReadOptions& opts) {
  std::unordered_map<std::uint64_t, Vertex> compact;
  LoadedGraph loaded;
  std::vector<Edge> edges;

  auto dense_id = [&](std::uint64_t raw) {
    auto [it, inserted] = compact.try_emplace(
        raw, static_cast<Vertex>(loaded.original_ids.size()));
    if (inserted) loaded.original_ids.push_back(raw);
    return it->second;
  };

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Skip blank lines; collect comments.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') {
      auto text = line.substr(first + 1);
      if (!text.empty() && text.front() == ' ') text.erase(0, 1);
      while (!text.empty() && (text.back() == '\r' || text.back() == ' '))
        text.pop_back();
      std::uint64_t nodes = 0;
      if (std::istringstream hs(text);
          (hs >> line) && line == "Nodes:" && (hs >> nodes)) {
        loaded.declared_nodes = nodes;
        // Headers precede the edge lines in real SNAP files, so the
        // declared count is a free sizing hint for the id-compaction
        // tables (a measurable allocation win on big files).  Capped so a
        // corrupt header cannot force an absurd allocation.
        if (const auto hint = std::min<std::uint64_t>(nodes, 1u << 28)) {
          compact.reserve(hint);
          loaded.original_ids.reserve(hint);
        }
      }
      loaded.comments.push_back(std::move(text));
      continue;
    }

    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v))
      LGG_THROW("SNAP edge list: malformed line " << lineno << ": '" << line
                                                  << "'");
    // Sequence the id lookups explicitly: argument evaluation order is
    // unspecified and first-seen-order ids must follow the file.
    const Vertex du = dense_id(u);
    const Vertex dv = dense_id(v);
    edges.emplace_back(du, dv);
  }
  std::size_t n = loaded.original_ids.size();
  if (opts.pad_to_declared_nodes && loaded.declared_nodes)
    n = std::max(n, *loaded.declared_nodes);
  loaded.graph = Graph::from_edges(n, edges);
  return loaded;
}

LoadedGraph read_snap_edge_list_file(const std::string& path,
                                     const SnapReadOptions& opts) {
  std::ifstream in(path);
  LGG_CHECK(in.good(), "cannot open graph file: " << path);
  return read_snap_edge_list(in, opts);
}

void write_snap_edge_list(std::ostream& out, const Graph& g,
                          const std::string& comment) {
  out << "# SNAP-format undirected edge list\n";
  if (!comment.empty()) out << "# " << comment << '\n';
  out << "# Nodes: " << g.num_vertices() << " Edges: " << g.num_edges()
      << '\n';
  for (const auto& [u, v] : g.edges()) out << u << '\t' << v << '\n';
}

void write_snap_edge_list_file(const std::string& path, const Graph& g,
                               const std::string& comment) {
  std::ofstream out(path);
  LGG_CHECK(out.good(), "cannot open file for writing: " << path);
  write_snap_edge_list(out, g, comment);
  LGG_CHECK(out.good(), "error while writing graph file: " << path);
}

}  // namespace lgg::graph

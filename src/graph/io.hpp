// SNAP-style edge-list IO.
//
// The Stanford Network Analysis Project distributes graphs as whitespace-
// separated "u v" lines with '#' comment lines.  Vertex ids in SNAP files
// are arbitrary (sparse) integers; the loader compacts them to dense
// [0, n) ids and returns the mapping.  This lets real SNAP files drive the
// Fig. 11 bench when present; otherwise the synthetic generators stand in.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace lgg::graph {

struct LoadedGraph {
  Graph graph;
  /// dense id -> original id from the file.
  std::vector<std::uint64_t> original_ids;
};

/// Parse a SNAP edge-list stream.  Throws lgg::Error on malformed lines.
LoadedGraph read_snap_edge_list(std::istream& in);

/// Parse a SNAP edge-list file.  Throws lgg::Error if the file cannot be
/// opened or is malformed.
LoadedGraph read_snap_edge_list_file(const std::string& path);

/// Write a graph as a SNAP edge list ("u v" per undirected edge, u < v),
/// with a comment header.
void write_snap_edge_list(std::ostream& out, const Graph& g,
                          const std::string& comment = {});

void write_snap_edge_list_file(const std::string& path, const Graph& g,
                               const std::string& comment = {});

}  // namespace lgg::graph

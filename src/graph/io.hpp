// SNAP-style edge-list IO.
//
// The Stanford Network Analysis Project distributes graphs as whitespace-
// separated "u v" lines with '#' comment lines.  Vertex ids in SNAP files
// are arbitrary (sparse) integers; the loader compacts them to dense
// [0, n) ids and returns the mapping.  This lets real SNAP files drive the
// Fig. 11 bench when present; otherwise the synthetic generators stand in.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace lgg::graph {

struct LoadedGraph {
  Graph graph;
  /// dense id -> original id from the file.
  std::vector<std::uint64_t> original_ids;
  /// '#' comment lines in file order, leading "# " stripped.
  std::vector<std::string> comments;
  /// n from a "# Nodes: n Edges: m" header comment, when present.
  std::optional<std::size_t> declared_nodes;
};

struct SnapReadOptions {
  /// Pad the graph with isolated vertices up to `declared_nodes` when the
  /// header declares more vertices than the edge lines mention.  This is
  /// what lets files round-trip graphs with isolated vertices (up to the
  /// first-seen-order relabelling, which every lgg analysis is invariant
  /// to); the fuzz regression corpus relies on it.
  bool pad_to_declared_nodes = false;
};

/// Parse a SNAP edge-list stream.  Throws lgg::Error on malformed lines.
LoadedGraph read_snap_edge_list(std::istream& in,
                                const SnapReadOptions& opts = {});

/// Parse a SNAP edge-list file.  Throws lgg::Error if the file cannot be
/// opened or is malformed.
LoadedGraph read_snap_edge_list_file(const std::string& path,
                                     const SnapReadOptions& opts = {});

/// Write a graph as a SNAP edge list ("u v" per undirected edge, u < v),
/// with a comment header.
void write_snap_edge_list(std::ostream& out, const Graph& g,
                          const std::string& comment = {});

void write_snap_edge_list_file(const std::string& path, const Graph& g,
                               const std::string& comment = {});

}  // namespace lgg::graph

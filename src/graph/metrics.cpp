#include "graph/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "graph/bfs.hpp"
#include "util/error.hpp"

namespace lgg::graph {

DegreeStats degree_stats(const Graph& g) {
  DegreeStats stats;
  const std::size_t n = g.num_vertices();
  if (n == 0) return stats;

  std::vector<std::size_t> degrees(n);
  for (Vertex v = 0; v < n; ++v) degrees[v] = g.degree(v);
  stats.min = *std::min_element(degrees.begin(), degrees.end());
  stats.max = *std::max_element(degrees.begin(), degrees.end());
  stats.mean = 2.0 * static_cast<double>(g.num_edges()) /
               static_cast<double>(n);

  std::vector<std::size_t> sorted = degrees;
  std::sort(sorted.begin(), sorted.end());
  stats.median = n % 2 ? static_cast<double>(sorted[n / 2])
                       : (static_cast<double>(sorted[n / 2 - 1]) +
                          static_cast<double>(sorted[n / 2])) /
                             2.0;

  stats.histogram.assign(stats.max + 1, 0);
  for (const std::size_t d : degrees) ++stats.histogram[d];
  return stats;
}

double density(const Graph& g) {
  const std::size_t n = g.num_vertices();
  if (n < 2) return 0.0;
  return static_cast<double>(g.num_edges()) /
         (static_cast<double>(n) * static_cast<double>(n - 1) / 2.0);
}

CoreDecomposition core_decomposition(const Graph& g) {
  const std::size_t n = g.num_vertices();
  CoreDecomposition result;
  result.core.assign(n, 0);
  result.order.reserve(n);
  if (n == 0) return result;

  // Matula–Beck: bucket vertices by current degree, repeatedly remove a
  // minimum-degree vertex.
  const std::size_t max_deg = g.max_degree();
  std::vector<std::uint32_t> degree(n);
  std::vector<std::vector<Vertex>> bucket(max_deg + 1);
  for (Vertex v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(g.degree(v));
    bucket[degree[v]].push_back(v);
  }

  std::vector<bool> removed(n, false);
  std::uint32_t current = 0;
  std::size_t processed = 0;
  std::size_t cursor = 0;  // smallest possibly non-empty bucket
  while (processed < n) {
    while (cursor <= max_deg && bucket[cursor].empty()) ++cursor;
    LGG_ASSERT(cursor <= max_deg);
    const Vertex v = bucket[cursor].back();
    bucket[cursor].pop_back();
    if (removed[v] || degree[v] != cursor) continue;  // stale entry

    current = std::max(current, static_cast<std::uint32_t>(cursor));
    result.core[v] = current;
    result.order.push_back(v);
    removed[v] = true;
    ++processed;

    for (const Vertex u : g.neighbors(v)) {
      if (removed[u]) continue;
      if (degree[u] > cursor) {
        --degree[u];
        bucket[degree[u]].push_back(u);
        if (degree[u] < cursor) cursor = degree[u];
      }
    }
  }
  result.degeneracy = current;
  return result;
}

std::vector<Vertex> kcore_vertices(const Graph& g, std::uint32_t k) {
  const CoreDecomposition d = core_decomposition(g);
  std::vector<Vertex> result;
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    if (d.core[v] >= k) result.push_back(v);
  return result;
}

std::uint32_t diameter_double_sweep(const Graph& g, Vertex seed_vertex) {
  if (g.num_vertices() == 0) return 0;
  LGG_CHECK(seed_vertex < g.num_vertices(),
            "diameter_double_sweep: seed out of range");
  const BfsTree first = bfs(g, seed_vertex);
  // Farthest reached vertex from the seed.
  Vertex far = seed_vertex;
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    if (first.level[v] != kUnreached && first.level[v] > first.level[far])
      far = v;
  const BfsTree second = bfs(g, far);
  return second.depth;
}

double degree_assortativity(const Graph& g) {
  // Pearson correlation over the multiset of edge-endpoint degree pairs
  // (each edge contributes both orientations).
  double sum_x = 0, sum_xx = 0, sum_xy = 0;
  std::uint64_t count = 0;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const auto du = static_cast<double>(g.degree(u));
    for (const Vertex v : g.neighbors(u)) {
      const auto dv = static_cast<double>(g.degree(v));
      sum_x += du;
      sum_xx += du * du;
      sum_xy += du * dv;
      ++count;
    }
  }
  if (count < 2) return 0.0;
  const auto cnt = static_cast<double>(count);
  const double mean = sum_x / cnt;
  const double var = sum_xx / cnt - mean * mean;
  if (var <= 0) return 0.0;
  const double cov = sum_xy / cnt - mean * mean;
  return cov / var;
}

}  // namespace lgg::graph

// Structural graph metrics used by the examples and benches to
// characterise workloads: degree statistics, density, k-core
// decomposition (degeneracy), and a double-sweep diameter lower bound.
// The k-core machinery also gives the standard preprocessing that bounds
// triangle work (every triangle lives inside the 2-core).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace lgg::graph {

struct DegreeStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0.0;
  double median = 0.0;
  /// histogram[d] = number of vertices with degree d (size max+1).
  std::vector<std::uint64_t> histogram;
};

DegreeStats degree_stats(const Graph& g);

/// Edge density: m / C(n, 2); 0 for n < 2.
double density(const Graph& g);

struct CoreDecomposition {
  /// core[v] = largest k such that v belongs to the k-core.
  std::vector<std::uint32_t> core;
  /// Graph degeneracy: max core number.
  std::uint32_t degeneracy = 0;
  /// A degeneracy ordering (vertices in removal order; each vertex has at
  /// most `degeneracy` neighbours later in the order).
  std::vector<Vertex> order;
};

/// Matula–Beck peeling in O(n + m) with bucket queues.
CoreDecomposition core_decomposition(const Graph& g);

/// Vertices of the k-core (possibly empty).
std::vector<Vertex> kcore_vertices(const Graph& g, std::uint32_t k);

/// Lower bound on the diameter by a BFS double sweep from `seed_vertex`
/// (standard technique; exact on trees).  Returns 0 for empty graphs;
/// only the component of seed_vertex is examined.
std::uint32_t diameter_double_sweep(const Graph& g, Vertex seed_vertex = 0);

/// Degree assortativity (Pearson correlation of endpoint degrees over
/// edges); 0 for graphs with < 2 edges or zero variance.
double degree_assortativity(const Graph& g);

}  // namespace lgg::graph

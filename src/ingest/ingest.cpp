#include "ingest/ingest.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <fstream>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace lgg::ingest {
namespace {

using graph::Edge;
using graph::Vertex;

// ---- small parallel helpers ------------------------------------------

/// Run fn(i) for every i in [0, n), on the pool when one is given.
template <class Fn>
void for_indices(ThreadPool* pool, std::size_t n, const Fn& fn) {
  if (pool == nullptr || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->parallel_for(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) fn(i);
  });
}

struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Balanced fixed split of [0, n) into at most `parts` non-empty ranges.
/// Used wherever the pipeline needs per-range scratch: the partition is a
/// pure function of (n, parts), and every consumer merges the per-range
/// results partition-invariantly.
std::vector<Range> split_ranges(std::size_t n, std::size_t parts) {
  parts = std::max<std::size_t>(1, std::min(parts, n));
  std::vector<Range> ranges(n == 0 ? 0 : parts);
  const std::size_t base = parts == 0 ? 0 : n / parts;
  const std::size_t extra = parts == 0 ? 0 : n % parts;
  std::size_t begin = 0;
  for (std::size_t p = 0; p < ranges.size(); ++p) {
    const std::size_t len = base + (p < extra ? 1 : 0);
    ranges[p] = {begin, begin + len};
    begin += len;
  }
  return ranges;
}

std::size_t executor_count(ThreadPool* pool) {
  return pool == nullptr ? 1 : pool->size() + 1;
}

/// Parallel merge sort: sort a power-of-two number of slices on the pool,
/// then pairwise-merge rounds.  The result is the fully sorted array —
/// identical for any slice count as long as `less` never compares two
/// distinct elements equal (every call site sorts duplicate-free keys or
/// fully-equal duplicates).
template <class T, class Less>
void parallel_sort(std::vector<T>& v, ThreadPool* pool, Less less) {
  constexpr std::size_t kSerialCutoff = std::size_t{1} << 14;
  std::size_t parts = 1;
  if (pool != nullptr)
    while (parts < executor_count(pool) * 2 &&
           v.size() / (parts * 2) >= kSerialCutoff)
      parts <<= 1;
  if (parts <= 1) {
    std::sort(v.begin(), v.end(), less);
    return;
  }

  std::vector<std::size_t> bounds(parts + 1);
  for (std::size_t p = 0; p <= parts; ++p) bounds[p] = p * v.size() / parts;
  for_indices(pool, parts, [&](std::size_t p) {
    std::sort(v.begin() + static_cast<std::ptrdiff_t>(bounds[p]),
              v.begin() + static_cast<std::ptrdiff_t>(bounds[p + 1]), less);
  });

  std::vector<T> buf(v.size());
  while (parts > 1) {
    const std::size_t pairs = parts / 2;
    for_indices(pool, pairs, [&](std::size_t k) {
      std::merge(v.begin() + static_cast<std::ptrdiff_t>(bounds[2 * k]),
                 v.begin() + static_cast<std::ptrdiff_t>(bounds[2 * k + 1]),
                 v.begin() + static_cast<std::ptrdiff_t>(bounds[2 * k + 1]),
                 v.begin() + static_cast<std::ptrdiff_t>(bounds[2 * k + 2]),
                 buf.begin() + static_cast<std::ptrdiff_t>(bounds[2 * k]),
                 less);
    });
    v.swap(buf);
    for (std::size_t k = 0; k <= pairs; ++k) bounds[k] = bounds[2 * k];
    bounds.resize(pairs + 1);
    parts = pairs;
  }
}

// ---- hand-rolled line scanning ---------------------------------------

/// The serial loader's blank/comment probe uses find_first_not_of(" \t\r").
bool is_probe_blank(char c) { return c == ' ' || c == '\t' || c == '\r'; }

/// istream >> skips the full C-locale whitespace set ('\n' cannot occur
/// inside a line).
bool is_stream_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

/// Scan an unsigned decimal integer with istringstream>>uint64_t
/// semantics: leading whitespace skipped, optional +/- sign ('-' wraps as
/// unsigned arithmetic, like strtoull), at least one digit, failure on
/// out-of-range.  Advances p past the digits either way.
bool scan_u64(const char*& p, const char* end, std::uint64_t& out) {
  while (p < end && is_stream_space(*p)) ++p;
  bool negative = false;
  if (p < end && (*p == '+' || *p == '-')) {
    negative = (*p == '-');
    ++p;
  }
  if (p == end || *p < '0' || *p > '9') return false;
  std::uint64_t value = 0;
  bool overflow = false;
  while (p < end && *p >= '0' && *p <= '9') {
    const auto digit = static_cast<std::uint64_t>(*p - '0');
    if (value > (~std::uint64_t{0} - digit) / 10) overflow = true;
    value = value * 10 + digit;
    ++p;
  }
  if (overflow) return false;  // istream sets failbit on range error
  out = negative ? std::uint64_t{0} - value : value;
  return true;
}

// ---- chunked parsing -------------------------------------------------

/// Everything one byte chunk contributes; merged strictly in chunk order,
/// which equals file order because chunks tile the buffer.
struct ChunkParse {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;
  std::vector<std::string> comments;
  std::optional<std::uint64_t> declared;  // last "Nodes:" header in chunk
  std::size_t lines = 0;
  std::size_t error_line = 0;  // 1-based within the chunk; 0 = none
  std::string error_text;
};

void parse_chunk(std::string_view chunk, ChunkParse& out) {
  // "u v\n" with two mid-size decimal ids is ~12 bytes; reserving for
  // that density avoids growth copies on the hot path.
  out.edges.reserve(chunk.size() / 12 + 4);
  const char* p = chunk.data();
  const char* const end = p + chunk.size();
  while (p < end) {
    const char* nl = static_cast<const char*>(
        std::memchr(p, '\n', static_cast<std::size_t>(end - p)));
    const char* const line_end = nl != nullptr ? nl : end;
    ++out.lines;

    const char* q = p;
    while (q < line_end && is_probe_blank(*q)) ++q;
    if (q == line_end) {
      // blank line
    } else if (*q == '#') {
      std::string text(q + 1, line_end);
      if (!text.empty() && text.front() == ' ') text.erase(0, 1);
      while (!text.empty() && (text.back() == '\r' || text.back() == ' '))
        text.pop_back();
      // "Nodes: n" header: first whitespace token, then an integer.
      const char* h = text.data();
      const char* const h_end = h + text.size();
      while (h < h_end && is_stream_space(*h)) ++h;
      const char* const token = h;
      while (h < h_end && !is_stream_space(*h)) ++h;
      if (std::string_view(token, static_cast<std::size_t>(h - token)) ==
          "Nodes:") {
        std::uint64_t nodes = 0;
        if (scan_u64(h, h_end, nodes)) out.declared = nodes;
      }
      out.comments.push_back(std::move(text));
    } else {
      const char* r = p;
      std::uint64_t u = 0;
      std::uint64_t v = 0;
      if (scan_u64(r, line_end, u) && scan_u64(r, line_end, v)) {
        out.edges.emplace_back(u, v);
      } else if (out.error_line == 0) {
        out.error_line = out.lines;
        out.error_text.assign(p, line_end);
      }
    }
    p = nl != nullptr ? nl + 1 : end;
  }
}

/// Tile the buffer into chunks of roughly `target` bytes, each ending on a
/// line boundary (or EOF).  The tiling is a pure function of the buffer
/// and the target — and even that is unobservable: every merge downstream
/// is partition-invariant.
std::vector<std::string_view> split_chunks(std::string_view text,
                                           std::size_t target) {
  std::vector<std::string_view> chunks;
  target = std::max<std::size_t>(1, target);
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = begin + target;
    if (end >= text.size()) {
      end = text.size();
    } else {
      const std::size_t nl = text.find('\n', end);
      end = nl == std::string_view::npos ? text.size() : nl + 1;
    }
    chunks.push_back(text.substr(begin, end - begin));
    begin = end;
  }
  return chunks;
}

// ---- sparse-id compaction --------------------------------------------

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::size_t kBuckets = 64;

struct FirstSeen {
  std::uint64_t raw = 0;
  std::uint64_t pos = 0;  // 2 * edge index + endpoint (u = 0, v = 1)
};

/// Flat-table compaction for the common near-dense SNAP id space: an
/// atomic first-position array indexed by raw id (CAS-min is commutative,
/// so the range decomposition is unobservable) and an O(1) translation
/// table.  Only used when the id universe is small enough that the two
/// flat arrays stay proportional to the input.
void compact_ids_flat(const std::vector<std::pair<std::uint64_t,
                                                  std::uint64_t>>& raw_edges,
                      std::uint64_t max_raw, ThreadPool* pool,
                      std::vector<std::uint64_t>& original_ids,
                      std::vector<Edge>& dense_edges) {
  const std::size_t m = raw_edges.size();
  const std::size_t universe = static_cast<std::size_t>(max_raw) + 1;
  constexpr std::uint64_t kAbsent = ~std::uint64_t{0};

  std::vector<std::atomic<std::uint64_t>> first_pos(universe);
  for_indices(pool, universe, [&](std::size_t i) {
    first_pos[i].store(kAbsent, std::memory_order_relaxed);
  });
  const auto min_at = [&](std::uint64_t raw, std::uint64_t pos) {
    auto& slot = first_pos[raw];
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (pos < cur &&
           !slot.compare_exchange_weak(cur, pos, std::memory_order_relaxed)) {
    }
  };
  const auto edge_ranges = split_ranges(m, executor_count(pool) * 4);
  for_indices(pool, edge_ranges.size(), [&](std::size_t r) {
    for (std::size_t i = edge_ranges[r].begin; i < edge_ranges[r].end; ++i) {
      min_at(raw_edges[i].first, 2 * i);
      min_at(raw_edges[i].second, 2 * i + 1);
    }
  });

  // Gather the present ids, order by first occurrence = first-seen order.
  const auto id_ranges = split_ranges(universe, executor_count(pool) * 4);
  std::vector<std::vector<FirstSeen>> gathered(id_ranges.size());
  for_indices(pool, id_ranges.size(), [&](std::size_t r) {
    for (std::size_t raw = id_ranges[r].begin; raw < id_ranges[r].end; ++raw) {
      const std::uint64_t pos = first_pos[raw].load(std::memory_order_relaxed);
      if (pos != kAbsent) gathered[r].push_back({raw, pos});
    }
  });
  std::vector<FirstSeen> firsts;
  for (const auto& part : gathered) firsts.insert(firsts.end(), part.begin(),
                                                  part.end());
  gathered.clear();
  gathered.shrink_to_fit();
  parallel_sort(firsts, pool, [](const FirstSeen& a, const FirstSeen& b) {
    return a.pos < b.pos;
  });

  const std::size_t n = firsts.size();
  original_ids.resize(n);
  // Reuse first_pos as the raw -> dense translation table (only present
  // ids are ever looked up).
  for_indices(pool, n, [&](std::size_t i) {
    original_ids[i] = firsts[i].raw;
    first_pos[firsts[i].raw].store(i, std::memory_order_relaxed);
  });

  dense_edges.resize(m);
  for_indices(pool, edge_ranges.size(), [&](std::size_t r) {
    for (std::size_t i = edge_ranges[r].begin; i < edge_ranges[r].end; ++i)
      dense_edges[i] = {
          static_cast<Vertex>(first_pos[raw_edges[i].first].load(
              std::memory_order_relaxed)),
          static_cast<Vertex>(first_pos[raw_edges[i].second].load(
              std::memory_order_relaxed))};
  });
}

/// Hash-bucketed compaction for genuinely sparse id universes (raw ids far
/// larger than the edge count): per-range first-occurrence maps, a
/// min-combine per hash bucket, and binary-search translation.
void compact_ids_hashed(const std::vector<std::pair<std::uint64_t,
                                                    std::uint64_t>>& raw_edges,
                        ThreadPool* pool,
                        std::vector<std::uint64_t>& original_ids,
                        std::vector<Edge>& dense_edges) {
  const std::size_t m = raw_edges.size();
  const auto ranges = split_ranges(m, executor_count(pool) * 4);

  // Per-range first occurrence, scattered into id-hash buckets.
  std::vector<std::array<std::vector<FirstSeen>, kBuckets>> scattered(
      ranges.size());
  for_indices(pool, ranges.size(), [&](std::size_t r) {
    std::unordered_map<std::uint64_t, std::uint64_t> local;
    local.reserve((ranges[r].end - ranges[r].begin) / 2 + 8);
    for (std::size_t i = ranges[r].begin; i < ranges[r].end; ++i) {
      // Positions increase through the scan, so try_emplace keeps the min.
      local.try_emplace(raw_edges[i].first, 2 * i);
      local.try_emplace(raw_edges[i].second, 2 * i + 1);
    }
    for (const auto& [raw, pos] : local)
      scattered[r][splitmix64(raw) & (kBuckets - 1)].push_back({raw, pos});
  });

  // Min-combine each bucket across ranges (partition-invariant).
  std::array<std::vector<FirstSeen>, kBuckets> bucket_firsts;
  for_indices(pool, kBuckets, [&](std::size_t k) {
    std::unordered_map<std::uint64_t, std::uint64_t> merged;
    for (const auto& per_range : scattered)
      for (const auto& entry : per_range[k]) {
        auto [it, inserted] = merged.try_emplace(entry.raw, entry.pos);
        if (!inserted) it->second = std::min(it->second, entry.pos);
      }
    bucket_firsts[k].reserve(merged.size());
    for (const auto& [raw, pos] : merged) bucket_firsts[k].push_back({raw, pos});
  });
  scattered.clear();
  scattered.shrink_to_fit();

  // Gather and order by first occurrence: that *is* first-seen order.
  std::vector<std::size_t> offsets(kBuckets + 1, 0);
  for (std::size_t k = 0; k < kBuckets; ++k)
    offsets[k + 1] = offsets[k] + bucket_firsts[k].size();
  std::vector<FirstSeen> firsts(offsets[kBuckets]);
  for_indices(pool, kBuckets, [&](std::size_t k) {
    std::copy(bucket_firsts[k].begin(), bucket_firsts[k].end(),
              firsts.begin() + static_cast<std::ptrdiff_t>(offsets[k]));
  });
  parallel_sort(firsts, pool, [](const FirstSeen& a, const FirstSeen& b) {
    return a.pos < b.pos;
  });

  const std::size_t n = firsts.size();
  original_ids.resize(n);
  for_indices(pool, n, [&](std::size_t i) { original_ids[i] = firsts[i].raw; });

  // Translation table sorted by raw id; lookups are binary searches over
  // distinct keys, safe to run concurrently.
  std::vector<std::pair<std::uint64_t, Vertex>> lut(n);
  for_indices(pool, n, [&](std::size_t i) {
    lut[i] = {firsts[i].raw, static_cast<Vertex>(i)};
  });
  parallel_sort(lut, pool, [](const auto& a, const auto& b) {
    return a.first < b.first;
  });

  dense_edges.resize(m);
  const auto dense_of = [&lut](std::uint64_t raw) {
    const auto it = std::lower_bound(
        lut.begin(), lut.end(), raw,
        [](const auto& entry, std::uint64_t key) { return entry.first < key; });
    return it->second;
  };
  if (pool == nullptr) {
    for (std::size_t i = 0; i < m; ++i)
      dense_edges[i] = {dense_of(raw_edges[i].first),
                        dense_of(raw_edges[i].second)};
  } else {
    pool->parallel_for(
        m,
        [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i)
            dense_edges[i] = {dense_of(raw_edges[i].first),
                              dense_of(raw_edges[i].second)};
        },
        1024);
  }
}

/// Compact sparse raw ids to dense first-seen-order ids.  Produces the
/// exact id assignment of the serial loader: dense id = rank of the id's
/// first occurrence position in (edge index, endpoint) order.  Both
/// strategies below satisfy the same contract; the choice is a pure
/// function of the input, never of the thread count.
void compact_ids(const std::vector<std::pair<std::uint64_t, std::uint64_t>>&
                     raw_edges,
                 ThreadPool* pool, std::vector<std::uint64_t>& original_ids,
                 std::vector<Edge>& dense_edges) {
  const std::size_t m = raw_edges.size();
  const auto ranges = split_ranges(m, executor_count(pool) * 4);
  std::vector<std::uint64_t> range_max(ranges.size(), 0);
  for_indices(pool, ranges.size(), [&](std::size_t r) {
    std::uint64_t top = 0;
    for (std::size_t i = ranges[r].begin; i < ranges[r].end; ++i)
      top = std::max({top, raw_edges[i].first, raw_edges[i].second});
    range_max[r] = top;
  });
  std::uint64_t max_raw = 0;
  for (const std::uint64_t top : range_max) max_raw = std::max(max_raw, top);

  // SNAP files almost always number vertices near-densely: the flat
  // tables (16 bytes per universe slot) win big as long as the universe
  // stays proportional to the edge list.
  const std::uint64_t budget =
      std::max<std::uint64_t>(std::uint64_t{1} << 16, std::uint64_t{8} * m);
  if (m == 0 || max_raw < budget)
    compact_ids_flat(raw_edges, max_raw, pool, original_ids, dense_edges);
  else
    compact_ids_hashed(raw_edges, pool, original_ids, dense_edges);
}

// ---- parallel CSR build ----------------------------------------------

graph::Graph build_csr_impl(std::size_t n, std::span<const Edge> edges,
                            ThreadPool* pool, IngestStats* stats) {
  const std::size_t m = edges.size();
  const auto ranges = split_ranges(m, executor_count(pool) * 4);

  // Pass 1 over the raw edges: validate endpoints, count self-loops and
  // histogram the min endpoint of every surviving edge (the counting-sort
  // key below).  The first out-of-range edge — in input order, to match
  // Graph::from_edges exactly — wins the error.  Relaxed atomic counts
  // are commutative sums, so the range decomposition is unobservable.
  std::vector<std::atomic<std::uint64_t>> counts(n);
  // Explicit zeroing: pre-C++20 libstdc++ default-constructs atomics
  // uninitialised, and the re-store is cheap next to the histogram.
  for_indices(pool, n,
              [&](std::size_t v) { counts[v].store(0, std::memory_order_relaxed); });
  std::vector<std::size_t> loops(ranges.size(), 0);
  std::vector<std::size_t> first_bad(ranges.size(), m);
  for_indices(pool, ranges.size(), [&](std::size_t r) {
    for (std::size_t i = ranges[r].begin; i < ranges[r].end; ++i) {
      const auto& [a, b] = edges[i];
      if (a >= n || b >= n) {
        if (first_bad[r] == m) first_bad[r] = i;
      } else if (a == b) {
        ++loops[r];
      } else {
        counts[std::min(a, b)].fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::size_t bad = m;
  for (const std::size_t i : first_bad) bad = std::min(bad, i);
  if (bad != m) {
    const auto& [a, b] = edges[bad];
    LGG_THROW("edge (" << a << "," << b << ") out of range for n=" << n);
  }
  if (stats != nullptr) {
    for (const std::size_t c : loops) stats->self_loops += c;
  }

  // Counting sort by min endpoint: scatter the max endpoint into its
  // bucket (claim order — canonicalised by the per-bucket sort), then
  // sort + dedup each bucket in place.  This replaces a global
  // O(m log m) comparison sort with an O(m) scatter plus tiny per-bucket
  // sorts, and the surviving half-adjacency is a pure function of the
  // edge *set*.
  std::vector<std::uint64_t> half_off(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v)
    half_off[v + 1] = half_off[v] + counts[v].load(std::memory_order_relaxed);
  for_indices(pool, n, [&](std::size_t v) {
    counts[v].store(half_off[v], std::memory_order_relaxed);
  });
  std::vector<Vertex> half(half_off[n]);
  for_indices(pool, ranges.size(), [&](std::size_t r) {
    for (std::size_t i = ranges[r].begin; i < ranges[r].end; ++i) {
      const auto& [a, b] = edges[i];
      if (a >= n || b >= n || a == b) continue;
      half[counts[std::min(a, b)].fetch_add(1, std::memory_order_relaxed)] =
          std::max(a, b);
    }
  });

  // Per-bucket sort + dedup; kept[u] survivors stay at the bucket front.
  // Dynamic claiming: bucket sizes are badly skewed on power-law degree
  // distributions.
  std::vector<std::uint64_t> kept(n, 0);
  const auto dedup_buckets = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) {
      const auto begin = half.begin() + static_cast<std::ptrdiff_t>(half_off[u]);
      const auto end =
          half.begin() + static_cast<std::ptrdiff_t>(half_off[u + 1]);
      std::sort(begin, end);
      kept[u] = static_cast<std::uint64_t>(std::unique(begin, end) - begin);
    }
  };
  if (pool == nullptr)
    dedup_buckets(0, n);
  else
    pool->parallel_for_dynamic(n, dedup_buckets, 64, 16);
  std::uint64_t kept_total = 0;
  for (std::size_t u = 0; u < n; ++u) kept_total += kept[u];
  if (stats != nullptr)
    stats->duplicate_edges += half_off[n] - kept_total;

  // Degrees: the kept bucket of u contributes deg(u) on the low side and
  // one incoming arc per surviving (u, v) on the high side.
  for_indices(pool, n,
              [&](std::size_t v) { counts[v].store(0, std::memory_order_relaxed); });
  const auto bucket_ranges = split_ranges(n, executor_count(pool) * 4);
  for_indices(pool, bucket_ranges.size(), [&](std::size_t r) {
    for (std::size_t u = bucket_ranges[r].begin; u < bucket_ranges[r].end; ++u)
      for (std::uint64_t k = 0; k < kept[u]; ++k)
        counts[half[half_off[u] + k]].fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<std::uint64_t> offsets(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v)
    offsets[v + 1] = offsets[v] + kept[v] +
                     counts[v].load(std::memory_order_relaxed);

  // Adjacency fill: u's own (sorted) bucket lands contiguously at the
  // start of its slice; the incoming side goes through atomic cursors in
  // claim order.  The final per-vertex sort makes the whole slice
  // canonical again.
  for_indices(pool, n, [&](std::size_t v) {
    counts[v].store(offsets[v] + kept[v], std::memory_order_relaxed);
  });
  std::vector<Vertex> adjacency(2 * kept_total);
  for_indices(pool, bucket_ranges.size(), [&](std::size_t r) {
    for (std::size_t u = bucket_ranges[r].begin; u < bucket_ranges[r].end;
         ++u) {
      std::uint64_t w = offsets[u];
      for (std::uint64_t k = 0; k < kept[u]; ++k) {
        const Vertex v = half[half_off[u] + k];
        adjacency[w++] = v;
        adjacency[counts[v].fetch_add(1, std::memory_order_relaxed)] =
            static_cast<Vertex>(u);
      }
    }
  });
  const auto sort_vertices = [&](std::size_t b, std::size_t e) {
    for (std::size_t v = b; v < e; ++v)
      std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  };
  if (pool == nullptr)
    sort_vertices(0, n);
  else
    pool->parallel_for_dynamic(n, sort_vertices, 64, 16);

  return graph::Graph::from_csr(n, std::move(offsets), std::move(adjacency));
}

IngestResult run_pipeline(std::string_view text, const IngestOptions& opts,
                          ThreadPool* pool) {
  IngestResult result;
  IngestStats& st = result.stats;
  graph::LoadedGraph& loaded = result.loaded;
  Stopwatch total;
  obs::Scope root(opts.obs, "ingest/load", "ingest");
  st.bytes = text.size();
  st.threads = executor_count(pool);

  // ---- parse ----
  Stopwatch phase;
  // Shrink the chunk target so small files still fan out, but never grow
  // past the requested size (tests pin boundary behaviour with tiny
  // chunks).
  const std::size_t adaptive = std::max<std::size_t>(
      4096, text.size() / (executor_count(pool) * 4 + 1));
  const std::size_t target = std::min(std::max<std::size_t>(1, opts.chunk_bytes),
                                      adaptive);
  const auto chunks = split_chunks(text, target);
  st.chunks = chunks.size();
  std::vector<ChunkParse> parsed(chunks.size());
  {
    obs::Scope span(opts.obs, "ingest/parse", "ingest");
    for_indices(pool, chunks.size(),
                [&](std::size_t c) { parse_chunk(chunks[c], parsed[c]); });
  }

  // Deterministic chunk merge (chunk order = file order).
  std::size_t lines_before = 0;
  for (const ChunkParse& c : parsed) {
    if (c.error_line != 0)
      LGG_THROW("SNAP edge list: malformed line "
                << lines_before + c.error_line << ": '" << c.error_text
                << "'");
    lines_before += c.lines;
  }
  st.lines = lines_before;
  for (const ChunkParse& c : parsed) {
    st.comment_lines += c.comments.size();
    if (c.declared) loaded.declared_nodes = *c.declared;  // last header wins
  }
  loaded.comments.reserve(st.comment_lines);
  for (ChunkParse& c : parsed)
    for (std::string& comment : c.comments)
      loaded.comments.push_back(std::move(comment));

  std::vector<std::size_t> edge_offsets(parsed.size() + 1, 0);
  for (std::size_t c = 0; c < parsed.size(); ++c)
    edge_offsets[c + 1] = edge_offsets[c] + parsed[c].edges.size();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> raw_edges(
      edge_offsets[parsed.size()]);
  for_indices(pool, parsed.size(), [&](std::size_t c) {
    std::copy(parsed[c].edges.begin(), parsed[c].edges.end(),
              raw_edges.begin() + static_cast<std::ptrdiff_t>(edge_offsets[c]));
  });
  st.edge_lines = raw_edges.size();
  parsed.clear();
  parsed.shrink_to_fit();
  st.parse_s = phase.elapsed_s();

  // ---- compact ----
  phase.reset();
  std::vector<Edge> dense_edges;
  {
    obs::Scope span(opts.obs, "ingest/compact", "ingest");
    compact_ids(raw_edges, pool, loaded.original_ids, dense_edges);
    if (span) span.arg("vertices", std::uint64_t{loaded.original_ids.size()});
  }
  raw_edges.clear();
  raw_edges.shrink_to_fit();
  st.distinct_vertices = loaded.original_ids.size();
  st.compact_s = phase.elapsed_s();

  // ---- build ----
  phase.reset();
  std::size_t n = loaded.original_ids.size();
  if (opts.pad_to_declared_nodes && loaded.declared_nodes)
    n = std::max(n, static_cast<std::size_t>(*loaded.declared_nodes));
  {
    obs::Scope span(opts.obs, "ingest/build", "ingest");
    loaded.graph = build_csr_impl(n, dense_edges, pool, &st);
  }
  st.build_s = phase.elapsed_s();
  st.total_s = total.elapsed_s();

  if (root) {
    root.arg("bytes", std::uint64_t{st.bytes});
    root.arg("lines", std::uint64_t{st.lines});
    root.arg("edges", std::uint64_t{st.edge_lines});
    root.arg("vertices", std::uint64_t{st.distinct_vertices});
  }
  if (opts.obs != nullptr) {
    // Only partition-invariant quantities: exported metrics must stay
    // byte-identical across thread counts (chunk count is not).
    obs::Metrics& mx = opts.obs->metrics;
    mx.count("lgg_ingest_loads_total");
    mx.count("lgg_ingest_bytes_total", st.bytes);
    mx.count("lgg_ingest_lines_total", st.lines);
    mx.count("lgg_ingest_edge_lines_total", st.edge_lines);
    mx.count("lgg_ingest_comment_lines_total", st.comment_lines);
    mx.count("lgg_ingest_vertices_total", st.distinct_vertices);
    mx.count("lgg_ingest_duplicate_edges_total", st.duplicate_edges);
    mx.count("lgg_ingest_self_loops_total", st.self_loops);
  }
  return result;
}

}  // namespace

IngestResult load_snap_buffer(std::string_view text,
                              const IngestOptions& opts) {
  if (opts.threads == 1) return run_pipeline(text, opts, nullptr);
  if (opts.threads == 0)
    return run_pipeline(text, opts, &ThreadPool::shared());
  ThreadPool pool(opts.threads);
  return run_pipeline(text, opts, &pool);
}

IngestResult load_snap_file(const std::string& path,
                            const IngestOptions& opts) {
  Stopwatch read;
  std::ifstream in(path, std::ios::binary);
  LGG_CHECK(in.good(), "cannot open graph file: " << path);
  std::string buffer;
  if (in.seekg(0, std::ios::end); in.good()) {
    const auto size = in.tellg();
    in.seekg(0, std::ios::beg);
    if (size > 0) buffer.reserve(static_cast<std::size_t>(size));
  }
  in.clear();
  // Large-block reads: no per-line stream machinery on the ingest path.
  constexpr std::size_t kBlock = 16u << 20;
  std::string block(kBlock, '\0');
  while (in.read(block.data(), static_cast<std::streamsize>(kBlock)) ||
         in.gcount() > 0)
    buffer.append(block.data(), static_cast<std::size_t>(in.gcount()));
  const double read_s = read.elapsed_s();

  IngestResult result = load_snap_buffer(buffer, opts);
  result.stats.read_s = read_s;
  result.stats.total_s += read_s;
  return result;
}

graph::Graph build_csr_parallel(std::size_t n, std::span<const Edge> edges,
                                ThreadPool* pool) {
  return build_csr_impl(n, edges, pool, nullptr);
}

}  // namespace lgg::ingest

// High-throughput parallel SNAP ingest (DESIGN.md §13).
//
// Every pipeline in the repo enters through the SNAP loader, and on large
// graphs the serial istringstream parser plus the serial sort+two-pass CSR
// build dominate wall-clock long before any simulated kernel runs.  This
// module rebuilds ingest as a ThreadPool-parallel pipeline:
//
//   read     file pulled into memory in large blocks
//   parse    the buffer split into byte chunks at line boundaries; each
//            chunk parsed independently with hand-rolled integer scanning
//            (no istringstream on the hot path), then merged in chunk
//            order — so comments, header fields, first-seen-order ids and
//            even the *exact* malformed-line error (global line number and
//            text) match the serial loader
//   compact  sparse ids -> dense first-seen-order ids via bucketed
//            first-occurrence maps, a position sort and a binary-search
//            translation table
//   build    parallel CSR: per-range edge normalisation, parallel merge
//            sort + dedup, degree histogram with relaxed atomics, prefix
//            offsets, atomic-cursor adjacency fill, per-vertex sorts on
//            the dynamic scheduler (power-law skew)
//
// Determinism contract (the same one PRs 1-5 established for the
// simulator): the LoadedGraph — graph, original_ids, comments,
// declared_nodes — is byte-identical to graph::read_snap_edge_list at any
// thread count and any chunk size.  Every merge is either order-preserving
// (chunk order = file order), partition-invariant (min-combines,
// full sorts with duplicate-free or fully-equal keys) or associative
// (u64 sums), so the chunk decomposition is unobservable.
// graph::loaded_graph_digest turns the contract into a one-string compare;
// tests/ingest_test.cpp and the ci/check.sh ingest stage pin it.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>

#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace lgg::ingest {

struct IngestOptions {
  /// Worker-thread budget: 0 = the process-wide shared pool, 1 = fully
  /// serial (no pool), N > 1 = a dedicated pool of N workers for this
  /// load.  The result is byte-identical across all settings.
  std::size_t threads = 0;
  /// Same semantics as graph::SnapReadOptions::pad_to_declared_nodes.
  bool pad_to_declared_nodes = false;
  /// Target parse-chunk size in bytes.  The pipeline may shrink it so
  /// small files still fan out across the pool, but never grows it past
  /// this value (tests use tiny chunks to force lines, comments and
  /// headers to straddle chunk boundaries).
  std::size_t chunk_bytes = 4u << 20;
  /// Optional observability session: an ingest/load span tree plus
  /// lgg_ingest_* counters.  Only partition-invariant quantities are
  /// recorded, so exported artifacts stay byte-identical across thread
  /// counts.
  obs::Session* obs = nullptr;
};

/// Wall-clock phase breakdown and content counters for one load.  The
/// counters (bytes..self_loops) are deterministic; `chunks` and `threads`
/// describe the decomposition actually used and the *_s fields are host
/// wall time — neither is part of the determinism contract.
struct IngestStats {
  std::size_t bytes = 0;
  std::size_t lines = 0;
  std::size_t edge_lines = 0;
  std::size_t comment_lines = 0;
  std::size_t distinct_vertices = 0;
  std::size_t duplicate_edges = 0;  // dropped by dedup (either orientation)
  std::size_t self_loops = 0;       // dropped self-loops
  std::size_t chunks = 0;
  std::size_t threads = 1;
  double read_s = 0.0;
  double parse_s = 0.0;
  double compact_s = 0.0;
  double build_s = 0.0;
  double total_s = 0.0;
};

struct IngestResult {
  graph::LoadedGraph loaded;
  IngestStats stats;
};

/// Parse a SNAP edge list held in memory.  Throws lgg::Error on malformed
/// lines with the serial loader's exact message (global line number and
/// line text).
IngestResult load_snap_buffer(std::string_view text,
                              const IngestOptions& opts = {});

/// Read and parse a SNAP edge-list file.  Throws lgg::Error if the file
/// cannot be opened or is malformed.
IngestResult load_snap_file(const std::string& path,
                            const IngestOptions& opts = {});

/// Parallel replacement for Graph::from_edges with identical semantics and
/// an identical result (same CSR arrays, same out-of-range error message):
/// normalisation, dedup, offsets and adjacency fill all run on `pool`
/// (nullptr = serial).  Exposed for callers that already hold a dense edge
/// list; the SNAP loaders above use it internally.
graph::Graph build_csr_parallel(std::size_t n,
                                std::span<const graph::Edge> edges,
                                ThreadPool* pool = nullptr);

}  // namespace lgg::ingest

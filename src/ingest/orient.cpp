#include "ingest/orient.hpp"

#include <algorithm>
#include <atomic>

namespace lgg::ingest {
namespace {

using graph::Graph;
using graph::Vertex;

/// Keep the arc v -> w?  Orient from smaller (degree, id) to larger, the
/// tie-break making the relation a strict total order (a DAG).
bool keeps_arc(const Graph& g, Vertex v, Vertex w) {
  const std::size_t dv = g.degree(v);
  const std::size_t dw = g.degree(w);
  return dv < dw || (dv == dw && v < w);
}

template <class Fn>
void over_vertices(ThreadPool* pool, std::size_t n, const Fn& fn) {
  if (pool == nullptr) {
    fn(std::size_t{0}, n);
    return;
  }
  // Dynamic claiming: per-vertex cost follows the (skewed) degree
  // distribution.
  pool->parallel_for_dynamic(n, fn, 64, 16);
}

}  // namespace

OrientedGraph orient_by_degree(const Graph& g, ThreadPool* pool) {
  const std::size_t n = g.num_vertices();
  OrientedGraph og;
  og.offsets.assign(n + 1, 0);

  over_vertices(pool, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      std::uint64_t kept = 0;
      for (const Vertex w : g.neighbors(static_cast<Vertex>(v)))
        if (keeps_arc(g, static_cast<Vertex>(v), w)) ++kept;
      og.offsets[v + 1] = kept;
    }
  });
  for (std::size_t v = 0; v < n; ++v) {
    og.max_out_degree =
        std::max(og.max_out_degree, static_cast<std::size_t>(og.offsets[v + 1]));
    og.offsets[v + 1] += og.offsets[v];
  }

  og.targets.resize(og.offsets[n]);
  over_vertices(pool, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      std::uint64_t w_at = og.offsets[v];
      // The undirected list is sorted by id; the kept subsequence keeps
      // that order, so out-lists come out merge-ready without a sort.
      for (const Vertex w : g.neighbors(static_cast<Vertex>(v)))
        if (keeps_arc(g, static_cast<Vertex>(v), w)) og.targets[w_at++] = w;
    }
  });
  return og;
}

std::uint64_t count_triangles_oriented(const OrientedGraph& og,
                                       ThreadPool* pool) {
  const std::size_t n = og.num_vertices();
  std::atomic<std::uint64_t> total{0};
  over_vertices(pool, n, [&](std::size_t begin, std::size_t end) {
    std::uint64_t local = 0;
    for (std::size_t u = begin; u < end; ++u) {
      const auto out_u = og.out_neighbors(static_cast<Vertex>(u));
      for (const Vertex v : out_u) {
        const auto out_v = og.out_neighbors(v);
        // |out(u) ∩ out(v)| by linear merge over the sorted lists.
        auto a = out_u.begin();
        auto b = out_v.begin();
        while (a != out_u.end() && b != out_v.end()) {
          if (*a < *b)
            ++a;
          else if (*b < *a)
            ++b;
          else {
            ++local;
            ++a;
            ++b;
          }
        }
      }
    }
    // u64 addition is associative: the total is chunking-independent.
    total.fetch_add(local, std::memory_order_relaxed);
  });
  return total.load();
}

}  // namespace lgg::ingest

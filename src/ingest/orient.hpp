// Degree-ordered orientation (DODG) — an ingest-time transform that turns
// the undirected CSR into a DAG: each undirected edge {u, v} is kept only
// from the endpoint of smaller (degree, id) toward the larger.  Every
// triangle then survives as exactly one directed wedge u -> v, u -> w with
// v -> w, so triangle/k-clique counters intersect *out*-neighbourhoods
// only — half the adjacency, and with out-degrees bounded by O(sqrt(2m))
// instead of the raw maximum degree (Polak, arXiv:1503.00576; the
// RapidsAtHKUST pre-processing pipeline uses the same transform).
//
// The oriented graph keeps the original vertex ids (no relabelling), so
// results map back without a permutation, and the structure is a pure
// function of the input graph — deterministic at any thread count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/thread_pool.hpp"

namespace lgg::ingest {

/// CSR over the kept (low rank -> high rank) arcs.  Out-neighbour lists
/// are sorted by vertex id, so counters intersect them by linear merge.
struct OrientedGraph {
  std::vector<std::uint64_t> offsets;   // size n+1
  std::vector<graph::Vertex> targets;   // size m (one arc per edge)
  std::size_t max_out_degree = 0;

  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  [[nodiscard]] std::size_t num_arcs() const noexcept {
    return targets.size();
  }
  [[nodiscard]] std::span<const graph::Vertex> out_neighbors(
      graph::Vertex v) const noexcept {
    return {targets.data() + offsets[v],
            static_cast<std::size_t>(offsets[v + 1] - offsets[v])};
  }
};

/// Build the degree-ordered orientation of g.  Work is sharded over
/// `pool` when given (nullptr = serial); the result is identical either
/// way.
OrientedGraph orient_by_degree(const graph::Graph& g,
                               ThreadPool* pool = nullptr);

/// Exact triangle count over the oriented graph: for every arc u -> v,
/// |out(u) ∩ out(v)| by sorted merge.  Equals the undirected triangle
/// count of the source graph.
std::uint64_t count_triangles_oriented(const OrientedGraph& og,
                                       ThreadPool* pool = nullptr);

}  // namespace lgg::ingest

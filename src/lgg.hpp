// Umbrella header for the largegraph-gpu library — a reproduction of
// Chatterjee, Radhakrishnan & Antonio, "On Analyzing Large Graphs Using
// GPUs" (IPDPSW 2013).
//
// Subsystems (each usable on its own):
//   graph/   — CSR graphs, bit-packed adjacency (Eq. 1-2), generators,
//              SNAP IO, BFS levels, Algorithm 1 chunking
//   combi/   — binomials, combinadics, the Section VIII strategies
//   sched/   — Section VI makespan scheduling (LPT/MULTIFIT/exact)
//   gpusim/  — the simulated CUDA substrate: devices (Table I),
//              coalescing (Table III), partition camping, bank conflicts,
//              warp executor and timing model
//   ingest/  — ThreadPool-parallel SNAP ingest: chunked parsing, parallel
//              CSR build, degree-ordered orientation (DODG); output
//              byte-identical to the serial loader at any thread count
//   sancheck/— compute-sanitizer-style hazard analysis of simulated
//              launches (tape analyzer + static footprint lint)
//   core/    — Algorithm 2 triangle counting (CPU + simulated GPU with the
//              Figs. 8-9 layouts), k-subgraph counters, social analyses
//   obs/     — unified observability: modelled-time span tracer, metrics
//              registry, Chrome-trace / span-tree / Prometheus exporters
//   prof/    — deterministic kernel profiler: modelled hardware counters
//              per launch, hotspot attribution, flamegraph / Perfetto /
//              profile-tree exports and the rtol-gated profile differ
//   resilience/ — seed-driven device fault injection + resilient chunked
//              execution with retry, failover and recovery accounting
//   serve/   — resident-graph analytics serving: catalog with cached
//              preprocessing, result cache, request batching and a
//              tenant-fair deterministic drain loop
//   fuzz/    — differential fuzzing engine over every counting path, with
//              a delta-debugging shrinker and the regression corpus format
#pragma once

#include "combi/binomial.hpp"        // IWYU pragma: export
#include "combi/combinadic.hpp"      // IWYU pragma: export
#include "combi/gray.hpp"            // IWYU pragma: export
#include "combi/strategies.hpp"      // IWYU pragma: export
#include "combi/stratified.hpp"      // IWYU pragma: export
#include "core/als_plan.hpp"         // IWYU pragma: export
#include "core/approx.hpp"           // IWYU pragma: export
#include "core/bfs_gpu.hpp"          // IWYU pragma: export
#include "core/hybrid.hpp"           // IWYU pragma: export
#include "core/intersect_gpu.hpp"    // IWYU pragma: export
#include "core/kcount.hpp"           // IWYU pragma: export
#include "core/social.hpp"           // IWYU pragma: export
#include "core/subgraph_gpu.hpp"     // IWYU pragma: export
#include "core/timing_model.hpp"     // IWYU pragma: export
#include "core/truss.hpp"            // IWYU pragma: export
#include "core/triangle_cpu.hpp"     // IWYU pragma: export
#include "core/triangle_gpu.hpp"     // IWYU pragma: export
#include "fuzz/corpus.hpp"           // IWYU pragma: export
#include "fuzz/engine.hpp"           // IWYU pragma: export
#include "fuzz/paths.hpp"            // IWYU pragma: export
#include "fuzz/shrink.hpp"           // IWYU pragma: export
#include "fuzz/spec.hpp"             // IWYU pragma: export
#include "graph/bfs.hpp"             // IWYU pragma: export
#include "graph/bit_matrix.hpp"      // IWYU pragma: export
#include "graph/chunking.hpp"        // IWYU pragma: export
#include "graph/digest.hpp"          // IWYU pragma: export
#include "graph/formats.hpp"         // IWYU pragma: export
#include "graph/generators.hpp"      // IWYU pragma: export
#include "graph/graph.hpp"           // IWYU pragma: export
#include "graph/io.hpp"              // IWYU pragma: export
#include "graph/metrics.hpp"         // IWYU pragma: export
#include "gpusim/banks.hpp"          // IWYU pragma: export
#include "gpusim/calibration.hpp"    // IWYU pragma: export
#include "gpusim/coalescing.hpp"     // IWYU pragma: export
#include "gpusim/device.hpp"         // IWYU pragma: export
#include "gpusim/executor.hpp"       // IWYU pragma: export
#include "gpusim/fault.hpp"          // IWYU pragma: export
#include "gpusim/memory.hpp"         // IWYU pragma: export
#include "gpusim/occupancy.hpp"      // IWYU pragma: export
#include "gpusim/partition.hpp"      // IWYU pragma: export
#include "gpusim/report.hpp"         // IWYU pragma: export
#include "ingest/ingest.hpp"         // IWYU pragma: export
#include "ingest/orient.hpp"         // IWYU pragma: export
#include "obs/metrics.hpp"           // IWYU pragma: export
#include "obs/obs.hpp"               // IWYU pragma: export
#include "obs/trace.hpp"             // IWYU pragma: export
#include "prof/diff.hpp"             // IWYU pragma: export
#include "prof/profile.hpp"          // IWYU pragma: export
#include "prof/profiler.hpp"         // IWYU pragma: export
#include "resilience/checkpoint.hpp"  // IWYU pragma: export
#include "resilience/fault.hpp"      // IWYU pragma: export
#include "resilience/runner.hpp"     // IWYU pragma: export
#include "sancheck/footprint.hpp"    // IWYU pragma: export
#include "sancheck/sancheck.hpp"     // IWYU pragma: export
#include "sched/makespan.hpp"        // IWYU pragma: export
#include "serve/cache.hpp"           // IWYU pragma: export
#include "serve/catalog.hpp"         // IWYU pragma: export
#include "serve/request.hpp"         // IWYU pragma: export
#include "serve/service.hpp"         // IWYU pragma: export
#include "stream/edge_stream.hpp"    // IWYU pragma: export
#include "stream/streaming_triangles.hpp"  // IWYU pragma: export
#include "util/bits.hpp"             // IWYU pragma: export
#include "util/error.hpp"            // IWYU pragma: export
#include "util/prng.hpp"             // IWYU pragma: export
#include "util/stopwatch.hpp"        // IWYU pragma: export
#include "util/table.hpp"            // IWYU pragma: export

#include "lint/plan_verify.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

#include "core/bfs_gpu.hpp"
#include "core/hybrid.hpp"
#include "core/intersect_gpu.hpp"
#include "core/subgraph_gpu.hpp"
#include "core/triangle_gpu.hpp"
#include "graph/generators.hpp"
#include "sancheck/footprint.hpp"

namespace lgg::lint {

bool PlanReport::clean() const noexcept {
  return std::all_of(checks.begin(), checks.end(),
                     [](const PlanCheck& c) { return c.clean(); });
}

std::size_t PlanReport::total_findings() const noexcept {
  std::size_t n = 0;
  for (const PlanCheck& c : checks) n += c.findings.size();
  return n;
}

std::ostream& operator<<(std::ostream& os, const PlanReport& r) {
  os << "plan verification: " << r.checks.size() << " check(s), "
     << r.total_findings() << " finding(s)";
  for (const PlanCheck& c : r.checks) {
    if (c.clean()) continue;
    os << "\n  " << c.name << ':';
    for (const std::string& f : c.findings) os << "\n    " << f;
  }
  return os;
}

std::vector<std::string> check_repair(const std::vector<std::uint64_t>& jobs,
                                      const sched::Assignment& before,
                                      const std::vector<std::uint32_t>& lost,
                                      const sched::Assignment& after) {
  std::vector<std::string> findings;
  const auto fail = [&](const std::string& msg) { findings.push_back(msg); };
  const std::uint32_t machines =
      static_cast<std::uint32_t>(before.load.size());

  std::vector<bool> is_lost(machines, false);
  for (const std::uint32_t l : lost) {
    if (l >= machines) {
      fail("lost machine " + std::to_string(l) + " out of range");
      continue;
    }
    is_lost[l] = true;
  }

  // 1. shape
  if (after.machine_of.size() != jobs.size() ||
      after.load.size() != machines) {
    fail("repaired assignment shape mismatch (" +
         std::to_string(after.machine_of.size()) + " jobs, " +
         std::to_string(after.load.size()) + " machines)");
    return findings;  // the remaining clauses would index out of bounds
  }

  std::uint64_t displaced_max = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const std::uint32_t was = before.machine_of[j];
    const std::uint32_t now = after.machine_of[j];
    if (now >= machines) {
      fail("job " + std::to_string(j) + " assigned to machine " +
           std::to_string(now) + " out of range");
      continue;
    }
    // 2. nothing on the dead machines
    if (is_lost[now]) {
      fail("job " + std::to_string(j) + " still assigned to lost machine " +
           std::to_string(now));
    }
    // 3. survivors keep their jobs
    if (was < machines && !is_lost[was] && now != was) {
      fail("job " + std::to_string(j) + " moved from surviving machine " +
           std::to_string(was) + " to " + std::to_string(now));
    }
    if (was < machines && is_lost[was])
      displaced_max = std::max(displaced_max, jobs[j]);
  }

  // 4. loads and makespan recompute exactly from machine_of
  const sched::Assignment re =
      sched::recompute(jobs, after.machine_of, machines);
  for (std::uint32_t m = 0; m < machines; ++m) {
    if (re.load[m] != after.load[m]) {
      fail("machine " + std::to_string(m) + " load " +
           std::to_string(after.load[m]) + " does not recompute (" +
           std::to_string(re.load[m]) + ")");
    }
  }
  if (re.makespan != after.makespan) {
    fail("makespan " + std::to_string(after.makespan) +
         " does not recompute (" + std::to_string(re.makespan) + ")");
  }

  // 5. lost machines drain
  for (std::uint32_t m = 0; m < machines; ++m) {
    if (is_lost[m] && after.load[m] != 0) {
      fail("lost machine " + std::to_string(m) + " still carries load " +
           std::to_string(after.load[m]));
    }
  }

  // 6. Graham-style repair bound
  std::uint32_t survivors = 0;
  for (std::uint32_t m = 0; m < machines; ++m)
    if (!is_lost[m]) ++survivors;
  if (survivors > 0) {
    const std::uint64_t bound =
        std::max(before.makespan,
                 sched::makespan_lower_bound(jobs, survivors) + displaced_max);
    if (after.makespan > bound) {
      fail("repaired makespan " + std::to_string(after.makespan) +
           " exceeds the repair bound " + std::to_string(bound));
    }
  }
  return findings;
}

std::vector<std::string> verify_reassignment(
    const std::vector<std::uint64_t>& jobs, std::uint32_t machines,
    std::uint32_t loss_k) {
  std::vector<std::string> findings;
  if (machines == 0) return findings;  // nothing schedulable, nothing to lose
  const sched::Assignment before = sched::lpt_schedule(jobs, machines);

  // Enumerate every loss subset of size 1..loss_k that leaves a survivor,
  // in lexicographic order (deterministic reporting).
  const std::uint32_t max_size =
      std::min(loss_k, machines > 0 ? machines - 1 : 0);
  std::vector<std::uint32_t> subset;
  const auto run = [&](const std::vector<std::uint32_t>& lost) {
    const sched::Assignment after =
        sched::reassign_after_loss(jobs, before, lost);
    std::ostringstream tag;
    tag << "loss {";
    for (std::size_t i = 0; i < lost.size(); ++i)
      tag << (i ? "," : "") << lost[i];
    tag << "}: ";
    for (const std::string& f : check_repair(jobs, before, lost, after))
      findings.push_back(tag.str() + f);
  };
  const auto descend = [&](const auto& self, std::uint32_t next) -> void {
    if (!subset.empty() && subset.size() <= max_size) run(subset);
    if (subset.size() == max_size) return;
    for (std::uint32_t m = next; m < machines; ++m) {
      subset.push_back(m);
      self(self, m + 1);
      subset.pop_back();
    }
  };
  descend(descend, 0);
  return findings;
}

namespace {

void add_spec(PlanReport& report, sancheck::FootprintSpec spec,
              const std::string& suffix = "") {
  PlanCheck check;
  check.name = spec.name + suffix;
  const sancheck::FootprintReport fr = sancheck::lint_footprint(spec);
  for (const gpusim::Hazard& h : fr.findings)
    check.findings.push_back(h.message);
  report.checks.push_back(std::move(check));
}

}  // namespace

PlanReport verify_pipeline(const graph::Graph& g, std::uint32_t loss_k) {
  PlanReport report;

  for (const core::GpuLayout layout :
       {core::GpuLayout::kNaive, core::GpuLayout::kCoalesced,
        core::GpuLayout::kCoalescedAntiCamping}) {
    core::GpuTriangleOptions opts;
    opts.layout = layout;
    add_spec(report, core::als_footprint_spec(g, opts));
  }
  add_spec(report, core::intersect_footprint_spec(g));
  add_spec(report, core::bfs_footprint_spec(g));
  add_spec(report, core::subgraph_footprint_spec(g, 3, 2), "[clique k=3]");
  add_spec(report, core::subgraph_footprint_spec(g, 4, 4), "[connected k=4]");

  const core::HybridFootprint hybrid = core::hybrid_footprint_spec(g);
  for (const sancheck::FootprintSpec& spec : hybrid.chunk_specs)
    add_spec(report, spec);

  PlanCheck repair;
  repair.name = "sched/repair";
  repair.findings =
      verify_reassignment(hybrid.chunk_tests, hybrid.sm_count, loss_k);
  report.checks.push_back(std::move(repair));
  return report;
}

PlanReport verify_default_pipelines(std::uint32_t loss_k) {
  // Representative shapes: deep layered community graph (the paper's
  // regime), dense G(n,p), a star (degenerate BFS tree), one clique
  // (dense single chunk), and a multi-component union.
  std::vector<std::pair<std::string, graph::Graph>> suite;
  suite.emplace_back("layered",
                     graph::layered_random(240, 24, 0.25, 0.08, 7));
  suite.emplace_back("gnp", graph::erdos_renyi(96, 0.12, 11));
  suite.emplace_back("star", graph::star(64));
  suite.emplace_back("clique", graph::complete(14));
  suite.emplace_back("multi", graph::disjoint_union(graph::complete(8),
                                                    graph::cycle(40)));

  PlanReport report;
  for (auto& [name, g] : suite) {
    PlanReport one = verify_pipeline(g, loss_k);
    for (PlanCheck& check : one.checks) {
      check.name = name + "/" + check.name;
      report.checks.push_back(std::move(check));
    }
  }
  return report;
}

}  // namespace lgg::lint

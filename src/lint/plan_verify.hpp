// Whole-pipeline plan verification (DESIGN.md §14): static proofs that
// every kernel launch the pipeline can make stays in bounds, and that the
// Section VI scheduler's loss-repair path stays sound for EVERY loss
// pattern up to k dead SMs — all without simulating a single test.
//
// The footprint half fans sancheck::lint_footprint out over the five
// kernel spec builders (triangle in its three layouts, intersect, bfs,
// subgraph/k-count, and the hybrid pipeline's per-chunk launches).  The
// schedule half exhaustively enumerates loss subsets and checks each
// repaired assignment against the reassign_after_loss contract: full
// coverage on survivors only, survivors keep their jobs, loads recompute
// exactly, lost machines drain to zero, and the makespan respects the
// Graham-style repair bound.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sched/makespan.hpp"

namespace lgg::lint {

/// One verified property ("gpu/triangle[coalesced]", "sched/repair", ...).
struct PlanCheck {
  std::string name;
  std::vector<std::string> findings;  // empty = proven
  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
};

struct PlanReport {
  std::vector<PlanCheck> checks;
  [[nodiscard]] bool clean() const noexcept;
  [[nodiscard]] std::size_t total_findings() const noexcept;
};

std::ostream& operator<<(std::ostream& os, const PlanReport& r);

/// Check one repaired assignment against the contract of
/// sched::reassign_after_loss — exposed separately so tests can feed
/// tampered repairs and watch each clause refute:
///   1. shape: one machine per job, machines within range;
///   2. no job lands on a lost machine;
///   3. survivors keep exactly the jobs they had;
///   4. loads/makespan recompute from machine_of (no stale totals);
///   5. lost machines end with load 0;
///   6. makespan <= max(before, LB_survivors + max displaced job).
std::vector<std::string> check_repair(const std::vector<std::uint64_t>& jobs,
                                      const sched::Assignment& before,
                                      const std::vector<std::uint32_t>& lost,
                                      const sched::Assignment& after);

/// Prove reassign_after_loss sound over `jobs` scheduled LPT onto
/// `machines`, for EVERY loss subset of size 1..loss_k that leaves a
/// survivor.  Returns all findings (empty = proven).
std::vector<std::string> verify_reassignment(
    const std::vector<std::uint64_t>& jobs, std::uint32_t machines,
    std::uint32_t loss_k);

/// Run the full static verification for one graph: footprint proofs for
/// all five kernels plus schedule-repair proofs over the hybrid plan's
/// own chunk weights.
PlanReport verify_pipeline(const graph::Graph& g, std::uint32_t loss_k = 1);

/// verify_pipeline over a fixed suite of representative graphs (deep
/// layered, dense G(n,p), star, clique, multi-component) — what
/// `lgg_lint --verify-plans` and the CI lint stage run.
PlanReport verify_default_pipelines(std::uint32_t loss_k = 1);

}  // namespace lgg::lint

#include "lint/source_lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace lgg::lint {

namespace {

// ---- tokenizer -------------------------------------------------------
// Just enough C++ lexing for the rules: identifiers, merged '::' and
// '->', single punctuation, with comments and all literal forms skipped
// so banned names inside strings or docs never fire.

struct Token {
  std::string text;
  std::uint32_t line = 0;
  bool ident = false;
};

std::vector<Token> tokenize(const std::string& src) {
  std::vector<Token> out;
  std::uint32_t line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  const auto peek = [&](std::size_t off) {
    return i + off < n ? src[i + off] : '\0';
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(i + 2, n);
      continue;
    }
    if (c == 'R' && peek(1) == '"') {
      // Raw string: R"delim( ... )delim".
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim.push_back(src[j++]);
      const std::string close = ")" + delim + "\"";
      std::size_t end = src.find(close, j);
      end = end == std::string::npos ? n : end + close.size();
      for (std::size_t p = i; p < end; ++p)
        if (src[p] == '\n') ++line;
      i = end;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char q = c;
      ++i;
      while (i < n && src[i] != q) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;  // tolerate unterminated literals
        ++i;
      }
      if (i < n) ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '_'))
        ++j;
      out.push_back({src.substr(i, j - i), line, true});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '.' ||
                       (src[j] == '\'' && j + 1 < n &&
                        std::isdigit(static_cast<unsigned char>(src[j + 1])))))
        ++j;  // digit separators stay inside the number token
      out.push_back({src.substr(i, j - i), line, false});
      i = j;
      continue;
    }
    if (c == ':' && peek(1) == ':') {
      out.push_back({"::", line, false});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      out.push_back({"->", line, false});
      i += 2;
      continue;
    }
    out.push_back({std::string(1, c), line, false});
    ++i;
  }
  return out;
}

bool ends_with_clock(const std::string& s) {
  static const std::string kSuffix = "clock";
  if (s.size() < kSuffix.size()) return false;
  const std::size_t off = s.size() - kSuffix.size();
  for (std::size_t i = 0; i < kSuffix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[off + i])) != kSuffix[i])
      return false;
  }
  return true;
}

bool any_of(const std::string& s, std::initializer_list<const char*> names) {
  for (const char* name : names)
    if (s == name) return true;
  return false;
}

/// Call-context check for bare function names: `x.time(` is a member
/// call, `double time(` a declaration; `= time(`, `return time(` and
/// `std::time(` are the real thing.
bool call_context(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (prev.text == "." || prev.text == "->") return false;
  if (prev.ident && prev.text != "return" && prev.text != "co_return")
    return false;  // likely `Type name(` — a declaration, not a call
  return true;
}

/// Skip a balanced template-argument list.  `open` indexes the '<';
/// returns the index one past the matching '>' (or `open + limit` when
/// unbalanced within the window).  `star` reports whether a '*' appeared
/// anywhere inside; `seen` collects the identifiers inside.
std::size_t skip_template_args(const std::vector<Token>& toks,
                               std::size_t open, bool* star,
                               std::vector<std::string>* seen) {
  std::size_t depth = 0;
  const std::size_t limit = std::min(toks.size(), open + 256);
  for (std::size_t j = open; j < limit; ++j) {
    const std::string& t = toks[j].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      if (--depth == 0) return j + 1;
    } else if (depth > 0) {
      if (star != nullptr && t == "*") *star = true;
      if (seen != nullptr && toks[j].ident) seen->push_back(t);
    }
  }
  return limit;
}

void add(std::vector<Violation>& out, const char* rule,
         const std::string& path, std::uint32_t line,
         const std::string& message) {
  out.push_back({rule, path, line, message});
}

}  // namespace

const std::vector<Rule>& source_rules() {
  static const std::vector<Rule> kRules = {
      {"det-wall-clock",
       "wall-clock/calendar time read (a *clock::now, time(), gettimeofday, "
       "localtime) — outputs must not depend on when the run happened"},
      {"det-rand",
       "ambient randomness (rand, srand, *rand48, random_device) — use a "
       "seeded engine threaded through the call"},
      {"det-thread-id",
       "thread identity (this_thread::get_id, thread::id, pthread_self) "
       "feeding program logic"},
      {"det-pointer-hash",
       "pointer-identity hashing/ordering (hash/less/greater over T*, "
       "reinterpret_cast to [u]intptr_t) — addresses vary run to run"},
      {"det-unordered-iter",
       "iteration over an unordered container — visit order is "
       "implementation-defined; iterate a sorted view instead"},
      {"lint-stale-allow",
       "allowlist entry matched no violation — remove it or fix its path"},
      {"lint-io", "source file could not be read"},
  };
  return kRules;
}

std::vector<Violation> lint_source(const std::string& path,
                                   const std::string& content) {
  std::vector<Violation> out;
  const std::vector<Token> toks = tokenize(content);
  const auto text = [&](std::size_t i) -> const std::string& {
    static const std::string kEmpty;
    return i < toks.size() ? toks[i].text : kEmpty;
  };

  // Names declared in this file as unordered containers (pass 1 of the
  // det-unordered-iter rule).  Ordered set: the linter must itself be
  // deterministic.
  std::set<std::string> unordered_vars;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].ident) continue;
    if (!any_of(toks[i].text, {"unordered_map", "unordered_set",
                               "unordered_multimap", "unordered_multiset"}))
      continue;
    if (text(i + 1) != "<") continue;
    std::size_t j = skip_template_args(toks, i + 1, nullptr, nullptr);
    while (j < toks.size() &&
           (text(j) == "&" || text(j) == "*" || text(j) == "const"))
      ++j;
    if (j < toks.size() && toks[j].ident) unordered_vars.insert(toks[j].text);
  }

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (!tok.ident) continue;
    const std::string& t = tok.text;

    // ---- det-wall-clock ----
    if (ends_with_clock(t) && text(i + 1) == "::" && text(i + 2) == "now") {
      add(out, "det-wall-clock", path, tok.line,
          "'" + t + "::now' reads the clock");
    } else if (any_of(t, {"time", "clock", "gettimeofday", "localtime",
                          "gmtime", "mktime"}) &&
               text(i + 1) == "(" && call_context(toks, i)) {
      add(out, "det-wall-clock", path, tok.line,
          "'" + t + "()' reads wall-clock/calendar time");
    }

    // ---- det-rand ----
    if (any_of(t, {"rand", "srand", "drand48", "lrand48", "mrand48",
                   "erand48", "random"}) &&
        text(i + 1) == "(" && call_context(toks, i)) {
      add(out, "det-rand", path, tok.line,
          "'" + t + "()' draws from ambient random state");
    } else if (t == "random_device") {
      add(out, "det-rand", path, tok.line,
          "'random_device' is nondeterministic by design");
    }

    // ---- det-thread-id ----
    if (t == "this_thread" && text(i + 1) == "::" && text(i + 2) == "get_id") {
      add(out, "det-thread-id", path, tok.line,
          "'this_thread::get_id' exposes scheduling identity");
    } else if (t == "thread" && text(i + 1) == "::" && text(i + 2) == "id") {
      add(out, "det-thread-id", path, tok.line,
          "'thread::id' values vary run to run");
    } else if (t == "pthread_self" && text(i + 1) == "(") {
      add(out, "det-thread-id", path, tok.line,
          "'pthread_self()' exposes scheduling identity");
    }

    // ---- det-pointer-hash ----
    if (any_of(t, {"hash", "less", "greater"}) && text(i + 1) == "<") {
      bool star = false;
      skip_template_args(toks, i + 1, &star, nullptr);
      if (star) {
        add(out, "det-pointer-hash", path, tok.line,
            "'" + t + "' instantiated over a pointer type orders by address");
      }
    } else if (t == "reinterpret_cast" && text(i + 1) == "<") {
      std::vector<std::string> inside;
      skip_template_args(toks, i + 1, nullptr, &inside);
      for (const std::string& name : inside) {
        if (name == "uintptr_t" || name == "intptr_t") {
          add(out, "det-pointer-hash", path, tok.line,
              "casting a pointer to '" + name +
                  "' bakes the address into a value");
          break;
        }
      }
    }

    // ---- det-unordered-iter ----
    if (t == "for" && text(i + 1) == "(") {
      // Range-for over a tracked container: find the ':' at paren depth 1
      // and look for a tracked name in the range expression.
      std::size_t depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      const std::size_t limit = std::min(toks.size(), i + 256);
      for (std::size_t j = i + 1; j < limit; ++j) {
        const std::string& u = text(j);
        if (u == "(") {
          ++depth;
        } else if (u == ")") {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (u == ":" && depth == 1 && colon == 0) {
          colon = j;
        }
      }
      if (colon != 0 && close != 0) {
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (toks[j].ident && unordered_vars.count(toks[j].text) != 0) {
            add(out, "det-unordered-iter", path, tok.line,
                "range-for over unordered container '" + toks[j].text + "'");
            break;
          }
        }
      }
    } else if (unordered_vars.count(t) != 0 &&
               (text(i + 1) == "." || text(i + 1) == "->") &&
               (text(i + 2) == "begin" || text(i + 2) == "cbegin") &&
               text(i + 3) == "(") {
      add(out, "det-unordered-iter", path, tok.line,
          "iterator over unordered container '" + t + "'");
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const Violation& a, const Violation& b) {
                     return a.line < b.line;
                   });
  return out;
}

// ---- allowlist -------------------------------------------------------

Allowlist Allowlist::parse(const std::string& text,
                           const std::string& origin) {
  Allowlist allow;
  allow.origin_ = origin;
  std::istringstream in(text);
  std::string line;
  std::uint32_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    AllowEntry entry;
    entry.line = lineno;
    fields >> entry.rule >> entry.path;
    std::getline(fields, entry.why);
    const std::size_t start = entry.why.find_first_not_of(" \t");
    entry.why = start == std::string::npos ? "" : entry.why.substr(start);
    if (entry.rule.empty() || entry.path.empty() || entry.why.empty()) {
      allow.parse_errors_.push_back(
          origin + ":" + std::to_string(lineno) +
          ": expected 'rule-id path justification...'");
      continue;
    }
    const auto& rules = source_rules();
    const bool known =
        std::any_of(rules.begin(), rules.end(),
                    [&](const Rule& r) { return r.id == entry.rule; });
    if (!known) {
      allow.parse_errors_.push_back(origin + ":" + std::to_string(lineno) +
                                    ": unknown rule '" + entry.rule + "'");
      continue;
    }
    allow.entries_.push_back(std::move(entry));
  }
  return allow;
}

bool Allowlist::allows(const std::string& rule, const std::string& file) {
  bool hit = false;
  for (AllowEntry& entry : entries_) {
    if (entry.rule != rule) continue;
    if (file.size() < entry.path.size()) continue;
    const std::size_t off = file.size() - entry.path.size();
    if (file.compare(off, entry.path.size(), entry.path) != 0) continue;
    if (off != 0 && file[off - 1] != '/') continue;  // '/'-boundary suffix
    entry.used = true;
    hit = true;
  }
  return hit;
}

std::vector<Violation> Allowlist::stale() const {
  std::vector<Violation> out;
  for (const AllowEntry& entry : entries_) {
    if (entry.used) continue;
    out.push_back({"lint-stale-allow", origin_, entry.line,
                   "entry '" + entry.rule + " " + entry.path +
                       "' matched no violation"});
  }
  return out;
}

// ---- drivers ---------------------------------------------------------

std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  const std::set<std::string> kExts = {".hpp", ".cpp", ".h",
                                       ".cc",  ".hh",  ".cu"};
  std::set<std::string> found;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file(ec)) continue;
        if (kExts.count(it->path().extension().string()) != 0)
          found.insert(it->path().generic_string());
      }
    } else {
      found.insert(path);  // explicit files lint regardless of extension
    }
  }
  return {found.begin(), found.end()};
}

std::vector<Violation> lint_files(const std::vector<std::string>& files,
                                  Allowlist* allow) {
  std::vector<Violation> out;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      out.push_back({"lint-io", file, 0, "cannot read file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    for (Violation& v : lint_source(file, buf.str())) {
      if (allow != nullptr && allow->allows(v.rule, v.file)) continue;
      out.push_back(std::move(v));
    }
  }
  return out;
}

}  // namespace lgg::lint

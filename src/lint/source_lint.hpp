// Source-level determinism lint (DESIGN.md §14): a token-level scanner
// over the repo's C++ sources that bans the constructs able to break the
// byte-identical-output contract the pipeline ships under — wall-clock
// reads, ambient randomness, thread identity, pointer-identity ordering,
// and iteration over unordered containers (whose order is
// implementation-defined and can leak into logs, exports and digests).
//
// The scanner works on tokens, not text: comments, string/char literals
// and raw strings are skipped entirely, so banned names inside messages
// or docs never fire.  Every exemption lives in an explicit allowlist
// file (ci/lint_allow.txt) with a per-line justification; entries that no
// longer match anything are themselves errors (lint-stale-allow), so the
// allowlist cannot rot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lgg::lint {

/// One lint rule, stable id + human summary (`lgg_lint --list-rules`).
struct Rule {
  std::string id;
  std::string summary;
};

/// The rule catalog, in reporting order.  Stable across runs; snapshotted
/// under ci/golden/.
const std::vector<Rule>& source_rules();

struct Violation {
  std::string rule;  // rule id ("det-wall-clock", ...)
  std::string file;  // path as given to the linter
  std::uint32_t line = 0;
  std::string message;
};

/// One allowlist line: `rule-id path-suffix justification...`.
struct AllowEntry {
  std::string rule;
  std::string path;  // suffix-matched against the violation's file path
  std::string why;
  std::uint32_t line = 0;  // line in the allowlist file
  bool used = false;       // matched at least one violation this run
};

/// Parsed allowlist with per-entry used-tracking.
class Allowlist {
 public:
  Allowlist() = default;

  /// Parse allowlist text.  `origin` names the file for diagnostics.
  /// Malformed lines (fewer than three fields) become parse errors, not
  /// silent exemptions.
  static Allowlist parse(const std::string& text, const std::string& origin);

  /// True if some entry exempts (rule, file); marks that entry used.
  /// Matching is by path suffix on '/' boundaries, so `core/social.cpp`
  /// matches `src/core/social.cpp` but not `src/core/asocial.cpp`.
  bool allows(const std::string& rule, const std::string& file);

  /// One lint-stale-allow violation per never-used entry.  Call after all
  /// sources have been linted.
  [[nodiscard]] std::vector<Violation> stale() const;

  [[nodiscard]] const std::vector<AllowEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] const std::vector<std::string>& parse_errors() const {
    return parse_errors_;
  }
  [[nodiscard]] const std::string& origin() const { return origin_; }

 private:
  std::vector<AllowEntry> entries_;
  std::vector<std::string> parse_errors_;
  std::string origin_;
};

/// Lint one translation unit.  Pure function of (path, content); the path
/// is only used for reporting.  Violations come back in line order.
std::vector<Violation> lint_source(const std::string& path,
                                   const std::string& content);

/// Expand files-or-directories into a sorted, deduplicated list of C++
/// sources (.hpp/.cpp/.h/.cc/.hh/.cu), walking directories recursively.
/// Deterministic: lexicographic path order regardless of readdir order.
std::vector<std::string> collect_sources(const std::vector<std::string>& paths);

/// Lint files from disk, filtering through `allow` when given (allowed
/// violations are dropped and the entry marked used).  Unreadable files
/// produce a violation rather than a crash.
std::vector<Violation> lint_files(const std::vector<std::string>& files,
                                  Allowlist* allow);

}  // namespace lgg::lint

#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "obs/trace.hpp"  // format_number
#include "util/error.hpp"

namespace lgg::obs {

namespace {

/// Full series key: "family" or "family{labels}".
std::string series_key(std::string_view name, std::string_view labels) {
  std::string key(name);
  if (!labels.empty()) {
    key += '{';
    key += labels;
    key += '}';
  }
  return key;
}

/// Family part of a series key (strips the label set).
std::string_view family_of(std::string_view key) {
  const auto brace = key.find('{');
  return brace == std::string_view::npos ? key : key.substr(0, brace);
}

}  // namespace

void Histogram::observe(double value) {
  if (count.size() != bounds.size() + 1) count.assign(bounds.size() + 1, 0);
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  ++count[static_cast<std::size_t>(it - bounds.begin())];
  ++observations;
  sum += value;
}

void Metrics::count(std::string_view name, std::uint64_t delta,
                    std::string_view labels) {
  counters_[series_key(name, labels)] += delta;
}

void Metrics::count_f(std::string_view name, double delta,
                      std::string_view labels) {
  counters_f_[series_key(name, labels)] += delta;
}

void Metrics::gauge(std::string_view name, double value,
                    std::string_view labels) {
  gauges_[series_key(name, labels)] = value;
}

void Metrics::observe(std::string_view name, double value,
                      std::span<const double> bounds,
                      std::string_view labels) {
  Histogram& h = histograms_[series_key(name, labels)];
  if (h.bounds.empty() && !bounds.empty())
    h.bounds.assign(bounds.begin(), bounds.end());
  h.observe(value);
}

void Metrics::help(std::string_view name, std::string_view text) {
  help_[std::string(name)] = std::string(text);
}

std::uint64_t Metrics::counter_value(std::string_view name,
                                     std::string_view labels) const {
  const auto it = counters_.find(series_key(name, labels));
  return it == counters_.end() ? 0 : it->second;
}

double Metrics::counter_f_value(std::string_view name,
                                std::string_view labels) const {
  const auto it = counters_f_.find(series_key(name, labels));
  return it == counters_f_.end() ? 0.0 : it->second;
}

double Metrics::gauge_value(std::string_view name,
                            std::string_view labels) const {
  const auto it = gauges_.find(series_key(name, labels));
  return it == gauges_.end() ? 0.0 : it->second;
}

const Histogram* Metrics::histogram(std::string_view name,
                                    std::string_view labels) const {
  const auto it = histograms_.find(series_key(name, labels));
  return it == histograms_.end() ? nullptr : &it->second;
}

bool Metrics::empty() const noexcept {
  return counters_.empty() && counters_f_.empty() && gauges_.empty() &&
         histograms_.empty();
}

void Metrics::merge(const Metrics& other) {
  for (const auto& [k, v] : other.counters_) counters_[k] += v;
  for (const auto& [k, v] : other.counters_f_) counters_f_[k] += v;
  for (const auto& [k, v] : other.gauges_) gauges_[k] = v;
  for (const auto& [k, v] : other.histograms_) {
    Histogram& h = histograms_[k];
    if (h.bounds.empty()) {
      h = v;
      continue;
    }
    LGG_CHECK(h.bounds == v.bounds,
              "Metrics::merge: histogram bucket bounds differ");
    if (h.count.size() != v.count.size()) h.count.resize(v.count.size(), 0);
    for (std::size_t i = 0; i < v.count.size(); ++i) h.count[i] += v.count[i];
    h.observations += v.observations;
    h.sum += v.sum;
  }
  for (const auto& [k, v] : other.help_) help_.emplace(k, v);
}

std::string Metrics::prometheus_text() const {
  std::ostringstream os;
  std::string last_family;
  const auto header = [&](std::string_view key, const char* type) {
    const std::string family(family_of(key));
    if (family == last_family) return;
    last_family = family;
    const auto h = help_.find(family);
    if (h != help_.end()) os << "# HELP " << family << " " << h->second << "\n";
    os << "# TYPE " << family << " " << type << "\n";
  };

  for (const auto& [key, value] : counters_) {
    header(key, "counter");
    os << key << " " << value << "\n";
  }
  for (const auto& [key, value] : counters_f_) {
    header(key, "counter");
    os << key << " " << format_number(value) << "\n";
  }
  for (const auto& [key, value] : gauges_) {
    header(key, "gauge");
    os << key << " " << format_number(value) << "\n";
  }
  for (const auto& [key, hist] : histograms_) {
    header(key, "histogram");
    const std::string family(family_of(key));
    // Series labels, if any, splice before the `le` label.
    const auto brace = key.find('{');
    const std::string labels =
        brace == std::string::npos
            ? ""
            : key.substr(brace + 1, key.size() - brace - 2) + ",";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < hist.bounds.size(); ++b) {
      cumulative += b < hist.count.size() ? hist.count[b] : 0;
      os << family << "_bucket{" << labels
         << "le=\"" << format_number(hist.bounds[b]) << "\"} " << cumulative
         << "\n";
    }
    os << family << "_bucket{" << labels << "le=\"+Inf\"} "
       << hist.observations << "\n";
    os << family << "_sum" << (brace == std::string::npos ? "" : key.substr(brace))
       << " " << format_number(hist.sum) << "\n";
    os << family << "_count"
       << (brace == std::string::npos ? "" : key.substr(brace)) << " "
       << hist.observations << "\n";
  }
  return os.str();
}

MetricsState Metrics::state() const {
  return {counters_, counters_f_, gauges_, histograms_, help_};
}

void Metrics::restore(MetricsState s) {
  counters_ = std::move(s.counters);
  counters_f_ = std::move(s.counters_f);
  gauges_ = std::move(s.gauges);
  histograms_ = std::move(s.histograms);
  help_ = std::move(s.help);
}

}  // namespace lgg::obs

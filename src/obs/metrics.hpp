// Metrics registry: counters + fixed-bucket histograms (DESIGN.md §12).
//
// The registry aggregates what the simulator already measures — global
// access slots vs coalesced transactions, partition-camping serialized
// steps, shared-bank conflicts, occupancy, sancheck hazard totals, fault
// events by site, retry counts — into named series a user can diff across
// runs or scrape.  Series live in ordered maps keyed by full name
// (family plus optional Prometheus-style label set), so the text export
// is independent of registration order and, for a deterministic workload,
// byte-identical across host thread counts.
//
// Naming follows Prometheus conventions: families are snake_case with a
// unit suffix, monotonic counters end in `_total`, and labels are passed
// as a pre-rendered `k="v"[,k="v"...]` string.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lgg::obs {

/// Fixed-bucket histogram (cumulative on export, like Prometheus).
struct Histogram {
  std::vector<double> bounds;        // ascending upper bounds; +Inf implied
  std::vector<std::uint64_t> count;  // per bucket, NOT cumulative here
  std::uint64_t observations = 0;
  double sum = 0.0;

  void observe(double value);
};

/// Complete serializable registry state for checkpoint/restart
/// (DESIGN.md §16).  Doubles must round-trip exactly, so checkpoint
/// encoders store them as bit patterns.
struct MetricsState {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> counters_f;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
  std::map<std::string, std::string> help;
};

class Metrics {
 public:
  /// Add `delta` to integer counter `name{labels}` (created at 0).
  void count(std::string_view name, std::uint64_t delta = 1,
             std::string_view labels = "");
  /// Add `delta` to floating-point counter `name{labels}` (e.g. modelled
  /// seconds).  A family must stay either integer or floating, not both.
  void count_f(std::string_view name, double delta,
               std::string_view labels = "");
  /// Set gauge `name{labels}` to `value`.
  void gauge(std::string_view name, double value,
             std::string_view labels = "");
  /// Observe `value` into histogram `name{labels}`; `bounds` fixes the
  /// buckets on first use (later calls may pass empty).
  void observe(std::string_view name, double value,
               std::span<const double> bounds = {},
               std::string_view labels = "");
  /// Attach a HELP line to family `name` (no labels).
  void help(std::string_view name, std::string_view text);

  // -- accessors (tests, benches, CLI cross-checks) --
  [[nodiscard]] std::uint64_t counter_value(
      std::string_view name, std::string_view labels = "") const;
  [[nodiscard]] double counter_f_value(std::string_view name,
                                       std::string_view labels = "") const;
  [[nodiscard]] double gauge_value(std::string_view name,
                                   std::string_view labels = "") const;
  [[nodiscard]] const Histogram* histogram(
      std::string_view name, std::string_view labels = "") const;
  [[nodiscard]] bool empty() const noexcept;

  /// Fold another registry into this one (counters add, gauges overwrite,
  /// histograms require matching bounds).
  void merge(const Metrics& other);

  /// Prometheus text exposition (sorted by family, then series).
  [[nodiscard]] std::string prometheus_text() const;

  /// Snapshot every series (checkpoints).
  [[nodiscard]] MetricsState state() const;
  /// Replace the registry's contents with a snapshot (checkpoint resume).
  void restore(MetricsState s);

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> counters_f_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::string> help_;
};

}  // namespace lgg::obs

#include "obs/obs.hpp"

#include <array>

namespace lgg::obs {

void record_kernel(Session* session, const gpusim::KernelReport& report) {
  if (session == nullptr) return;
  Metrics& m = session->metrics;
  m.help("lgg_gpusim_global_slots_total",
         "warp-level global access instructions before coalescing");
  m.help("lgg_gpusim_transactions_total",
         "global-memory transactions after coalescing");
  m.count("lgg_gpusim_launches_total");
  m.count("lgg_gpusim_global_slots_total", report.global_slots);
  m.count("lgg_gpusim_transactions_total", report.transactions);
  m.count("lgg_gpusim_bytes_total", report.bytes);
  m.count("lgg_gpusim_shared_slots_total", report.shared_slots);
  m.count("lgg_gpusim_bank_conflict_steps_total", report.bank_conflict_steps);
  m.count("lgg_gpusim_partition_serialized_steps_total",
          report.partition_histogram.serialized_steps());
  m.count("lgg_gpusim_partition_ideal_steps_total",
          report.partition_histogram.ideal_steps());
  m.count_f("lgg_gpusim_kernel_seconds_total", report.kernel_time_s);
  static constexpr std::array<double, 7> kCampingBounds = {
      1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 6.0};
  m.observe("lgg_gpusim_camping_factor", report.camping_factor,
            kCampingBounds);
  if (!report.hazards.clean()) record_hazards(session, report.hazards);
}

void record_transfer(Session* session, const gpusim::TransferReport& report) {
  if (session == nullptr) return;
  Metrics& m = session->metrics;
  m.count("lgg_gpusim_transfers_total");
  m.count("lgg_gpusim_transfer_bytes_total", report.bytes);
  m.count_f("lgg_gpusim_transfer_seconds_total", report.time_s);
  if (report.corrupted) m.count("lgg_gpusim_transfer_corrupted_total");
}

void record_hazards(Session* session, const gpusim::HazardReport& report) {
  if (session == nullptr) return;
  Metrics& m = session->metrics;
  m.count("lgg_sancheck_hazards_total", report.total);
  for (std::size_t c = 0; c < gpusim::kNumHazardClasses; ++c) {
    if (report.by_class[c] == 0) continue;
    const std::string labels =
        std::string("class=\"") +
        gpusim::hazard_class_name(static_cast<gpusim::HazardClass>(c)) + "\"";
    m.count("lgg_sancheck_hazards_by_class_total", report.by_class[c],
            labels);
  }
  // One zero-duration span event per recorded hazard (the recorded list
  // is capped upstream, so this is bounded), localizing the hazard site
  // on the modelled timeline next to the launch that produced it.
  // Hazard-free runs emit nothing, so fault-free golden traces are
  // untouched.
  for (const gpusim::Hazard& h : report.hazards) {
    const std::size_t id = session->tracer.begin(
        std::string("hazard/") + gpusim::hazard_class_name(h.cls),
        "sancheck");
    if (id != Tracer::kDropped) {
      session->tracer.arg(id, "addr", std::to_string(h.addr));
      session->tracer.arg(id, "bytes", std::to_string(h.bytes));
      if (h.first_thread != gpusim::Hazard::kNoThread)
        session->tracer.arg(id, "first_thread",
                            std::to_string(h.first_thread));
      if (h.second_thread != gpusim::Hazard::kNoThread)
        session->tracer.arg(id, "second_thread",
                            std::to_string(h.second_thread));
      session->tracer.arg(id, "message",
                          "\"" + json_escape(h.message) + "\"");
    }
    session->tracer.end(id);
  }
}

void record_occupancy(Session* session, double occupancy) {
  if (session == nullptr) return;
  static constexpr std::array<double, 7> kBounds = {0.125, 0.25, 0.375, 0.5,
                                                    0.625, 0.75, 0.875};
  session->metrics.observe("lgg_gpusim_occupancy", occupancy, kBounds);
}

}  // namespace lgg::obs

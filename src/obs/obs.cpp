#include "obs/obs.hpp"

#include <array>

namespace lgg::obs {

void record_kernel(Session* session, const gpusim::KernelReport& report) {
  if (session == nullptr) return;
  Metrics& m = session->metrics;
  m.help("lgg_gpusim_global_slots_total",
         "warp-level global access instructions before coalescing");
  m.help("lgg_gpusim_transactions_total",
         "global-memory transactions after coalescing");
  m.count("lgg_gpusim_launches_total");
  m.count("lgg_gpusim_global_slots_total", report.global_slots);
  m.count("lgg_gpusim_transactions_total", report.transactions);
  m.count("lgg_gpusim_bytes_total", report.bytes);
  m.count("lgg_gpusim_shared_slots_total", report.shared_slots);
  m.count("lgg_gpusim_bank_conflict_steps_total", report.bank_conflict_steps);
  m.count("lgg_gpusim_partition_serialized_steps_total",
          report.partition_histogram.serialized_steps());
  m.count("lgg_gpusim_partition_ideal_steps_total",
          report.partition_histogram.ideal_steps());
  m.count_f("lgg_gpusim_kernel_seconds_total", report.kernel_time_s);
  static constexpr std::array<double, 7> kCampingBounds = {
      1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 6.0};
  m.observe("lgg_gpusim_camping_factor", report.camping_factor,
            kCampingBounds);
  if (!report.hazards.clean()) record_hazards(session, report.hazards);
}

void record_transfer(Session* session, const gpusim::TransferReport& report) {
  if (session == nullptr) return;
  Metrics& m = session->metrics;
  m.count("lgg_gpusim_transfers_total");
  m.count("lgg_gpusim_transfer_bytes_total", report.bytes);
  m.count_f("lgg_gpusim_transfer_seconds_total", report.time_s);
  if (report.corrupted) m.count("lgg_gpusim_transfer_corrupted_total");
}

void record_hazards(Session* session, const gpusim::HazardReport& report) {
  if (session == nullptr) return;
  Metrics& m = session->metrics;
  m.count("lgg_sancheck_hazards_total", report.total);
  for (std::size_t c = 0; c < gpusim::kNumHazardClasses; ++c) {
    if (report.by_class[c] == 0) continue;
    const std::string labels =
        std::string("class=\"") +
        gpusim::hazard_class_name(static_cast<gpusim::HazardClass>(c)) + "\"";
    m.count("lgg_sancheck_hazards_by_class_total", report.by_class[c],
            labels);
  }
}

void record_occupancy(Session* session, double occupancy) {
  if (session == nullptr) return;
  static constexpr std::array<double, 7> kBounds = {0.125, 0.25, 0.375, 0.5,
                                                    0.625, 0.75, 0.875};
  session->metrics.observe("lgg_gpusim_occupancy", occupancy, kBounds);
}

}  // namespace lgg::obs

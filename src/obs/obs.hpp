// Unified observability session: span tracer + metrics registry, threaded
// through the drivers as one optional pointer (DESIGN.md §12).
//
// Usage inside a driver (host-serial code only):
//
//   obs::Scope root(opts.obs, "gpu/triangle", "driver");
//   {
//     obs::Scope plan(opts.obs, "plan/bfs+als", "plan");
//     ... build the plan ...
//     plan.model_s(preprocessing_s);          // modelled duration
//     if (plan) plan.arg("tests", plan_tests);  // guard arg rendering
//   }
//   obs::record_kernel(opts.obs, result.kernel);
//
// A null session disables everything at the cost of one pointer test per
// call — the tracer-overhead bench (bench/obs_overhead.cpp) pins the
// tracing-off overhead under 5%.  Scopes obey stack discipline per
// session (they mirror the call structure, so this is natural).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "gpusim/report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace lgg::obs {

struct Session {
  Tracer tracer;
  Metrics metrics;
  /// Annotate every Scope with a "wall_ms" arg (util::Stopwatch).  OFF by
  /// default: wall-clock args make the exported trace machine-dependent,
  /// breaking the byte-identical determinism contract.
  bool wall_clock = false;
};

/// RAII span over a Session (no-op when the session is null).
class Scope {
 public:
  Scope(Session* session, std::string name, std::string cat = "")
      : session_(session) {
    if (session_ != nullptr)
      id_ = session_->tracer.begin(std::move(name), std::move(cat));
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
  ~Scope() { close(); }

  /// End the span before the scope exits (idempotent; the destructor
  /// becomes a no-op).  Needed when a span must close mid-block so a
  /// sibling can begin.
  void close() {
    if (session_ == nullptr) return;
    if (session_->wall_clock && id_ != Tracer::kDropped)
      session_->tracer.arg(id_, "wall_ms", format_number(wall_.elapsed_ms()));
    session_->tracer.end(id_);
    session_ = nullptr;
  }

  /// True when the span is live — use to guard arg-string construction.
  explicit operator bool() const noexcept { return session_ != nullptr; }

  /// Charge a modelled duration to this span (innermost open).
  void model_s(double seconds) {
    if (session_ != nullptr) session_->tracer.charge_s(seconds);
  }

  void arg(std::string_view key, std::string_view value) {
    if (session_ != nullptr)
      session_->tracer.arg(id_, std::string(key),
                           "\"" + json_escape(value) + "\"");
  }
  void arg(std::string_view key, const char* value) {
    arg(key, std::string_view(value));
  }
  void arg(std::string_view key, std::uint64_t value) {
    if (session_ != nullptr)
      session_->tracer.arg(id_, std::string(key), std::to_string(value));
  }
  void arg(std::string_view key, double value) {
    if (session_ != nullptr)
      session_->tracer.arg(id_, std::string(key), format_number(value));
  }
  void arg(std::string_view key, bool value) {
    if (session_ != nullptr)
      session_->tracer.arg(id_, std::string(key), value ? "true" : "false");
  }

 private:
  Session* session_;
  std::size_t id_ = Tracer::kDropped;
  Stopwatch wall_;
};

// ---- gpusim aggregation helpers --------------------------------------
// All no-ops on a null session.  Counter families are documented in
// DESIGN.md §12; the integer counters mirror KernelReport fields exactly
// (the acceptance invariant tests/obs_test.cpp pins).

/// Record one kernel launch: access slots vs coalesced transactions,
/// partition serialized/ideal steps, bank conflicts, camping histogram,
/// modelled kernel seconds.
void record_kernel(Session* session, const gpusim::KernelReport& report);

/// Record one host<->device copy (bytes, seconds, corruption).
void record_transfer(Session* session, const gpusim::TransferReport& report);

/// Record sancheck hazard totals (per-class labelled counters) plus one
/// zero-duration "hazard/<class>" span per recorded hazard, so a --trace
/// localizes hazard sites on the modelled timeline.
void record_hazards(Session* session, const gpusim::HazardReport& report);

/// Record achieved occupancy for a launch (histogram, buckets of 1/8).
void record_occupancy(Session* session, double occupancy);

}  // namespace lgg::obs

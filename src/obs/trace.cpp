#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace lgg::obs {

std::size_t Tracer::begin(std::string name, std::string cat) {
  const std::uint64_t start = open_.empty() ? top_cursor_ : open_.back().cursor;
  if (spans_.size() >= cap_) {
    ++dropped_;
    open_.push_back({kDropped, start});
    return kDropped;
  }
  Span span;
  span.name = std::move(name);
  span.cat = std::move(cat);
  span.begin_ns = start;
  span.end_ns = start;
  // Parent = innermost open span that was actually recorded.
  span.parent = -1;
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (it->idx != kDropped) {
      span.parent = static_cast<std::int64_t>(it->idx);
      break;
    }
  }
  spans_.push_back(std::move(span));
  const std::size_t idx = spans_.size() - 1;
  open_.push_back({idx, start});
  return idx;
}

void Tracer::charge_s(double seconds) {
  if (!(seconds > 0.0)) return;  // also rejects NaN
  charge_ns(static_cast<std::uint64_t>(std::llround(seconds * 1e9)));
}

void Tracer::charge_ns(std::uint64_t ns) {
  if (open_.empty())
    top_cursor_ += ns;
  else
    open_.back().cursor += ns;
}

void Tracer::arg(std::size_t id, std::string key, std::string json) {
  if (id == kDropped) return;
  LGG_ASSERT(id < spans_.size());
  spans_[id].args.push_back({std::move(key), std::move(json)});
}

void Tracer::end(std::size_t id) {
  LGG_ASSERT(!open_.empty());
  const Frame frame = open_.back();
  LGG_ASSERT(frame.idx == id || frame.idx == kDropped);
  open_.pop_back();
  if (frame.idx != kDropped) spans_[frame.idx].end_ns = frame.cursor;
  // The parent's cursor advances over the whole closed interval.
  if (open_.empty())
    top_cursor_ = frame.cursor;
  else
    open_.back().cursor = frame.cursor;
}

std::uint64_t Tracer::now_ns() const noexcept {
  return open_.empty() ? top_cursor_ : open_.back().cursor;
}

TracerState Tracer::state() const {
  TracerState s;
  s.spans = spans_;
  s.open.reserve(open_.size());
  for (const Frame& f : open_)
    s.open.emplace_back(static_cast<std::uint64_t>(f.idx), f.cursor);
  s.top_cursor = top_cursor_;
  s.dropped = dropped_;
  return s;
}

void Tracer::restore(TracerState s) {
  spans_ = std::move(s.spans);
  open_.clear();
  open_.reserve(s.open.size());
  for (const auto& [idx, cursor] : s.open) {
    const auto i = static_cast<std::size_t>(idx);
    LGG_CHECK(i == kDropped || i < spans_.size(),
              "Tracer::restore: open frame index out of range");
    open_.push_back({i, cursor});
  }
  top_cursor_ = s.top_cursor;
  dropped_ = static_cast<std::size_t>(s.dropped);
}

std::size_t Tracer::open_top() const noexcept {
  return open_.empty() ? kDropped : open_.back().idx;
}

std::vector<std::string> Tracer::open_stack_names() const {
  std::vector<std::string> names;
  names.reserve(open_.size());
  for (const Frame& f : open_)
    if (f.idx != kDropped) names.push_back(spans_[f.idx].name);
  return names;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

namespace {

/// Modelled ns rendered as microseconds with fixed 3-decimal precision —
/// integer arithmetic only, so the text is deterministic by construction.
std::string micros(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

void append_args_json(std::string& out, const Span& span) {
  out += ",\"args\":{";
  for (std::size_t a = 0; a < span.args.size(); ++a) {
    if (a) out += ',';
    out += '"';
    out += json_escape(span.args[a].key);
    out += "\":";
    out += span.args[a].json;
  }
  out += '}';
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer,
                              const std::vector<std::string>& extra_events) {
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"modelled\"";
  if (tracer.dropped() > 0)
    out += ",\"dropped_spans\":" + std::to_string(tracer.dropped());
  out += "},\"traceEvents\":[\n";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"lgg (modelled time)\"}}";
  for (const Span& span : tracer.spans()) {
    out += ",\n{\"name\":\"";
    out += json_escape(span.name);
    out += "\",\"cat\":\"";
    out += json_escape(span.cat.empty() ? "span" : span.cat);
    out += "\",\"ph\":\"X\",\"ts\":";
    out += micros(span.begin_ns);
    out += ",\"dur\":";
    out += micros(span.duration_ns());
    out += ",\"pid\":0,\"tid\":0";
    if (!span.args.empty()) append_args_json(out, span);
    out += '}';
  }
  for (const std::string& ev : extra_events) {
    out += ",\n";
    out += ev;
  }
  out += "\n]}\n";
  return out;
}

std::string span_tree_text(const Tracer& tracer) {
  const auto& spans = tracer.spans();
  // Depth per span (parents always precede children in record order).
  std::vector<std::uint32_t> depth(spans.size(), 0);
  for (std::size_t i = 0; i < spans.size(); ++i)
    if (spans[i].parent >= 0)
      depth[i] = depth[static_cast<std::size_t>(spans[i].parent)] + 1;

  std::ostringstream os;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& span = spans[i];
    for (std::uint32_t d = 0; d < depth[i]; ++d) os << "  ";
    os << span.name;
    if (!span.cat.empty()) os << " [" << span.cat << "]";
    os << "  " << micros(span.duration_ns()) << "us";
    for (const SpanArg& a : span.args) os << "  " << a.key << "=" << a.json;
    os << "\n";
  }
  if (tracer.dropped() > 0)
    os << "(" << tracer.dropped() << " span(s) dropped by the cap)\n";
  return os.str();
}

}  // namespace lgg::obs

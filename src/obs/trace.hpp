// Span-based tracing over the simulation pipeline (DESIGN.md §12).
//
// A Tracer records a tree of spans — plan, schedule, launch, retry,
// failover phases of a run — positioned on the MODELLED timeline: span
// begin/end are modelled nanoseconds accumulated from the same timing
// model that prices kernels and backoff, never host wall-clock.  Every
// span is opened and closed from host-serial driver code (the parallel
// warp replay never touches the tracer), so a trace is a pure function of
// the workload and is byte-identical across ExecPolicies and host thread
// counts — the same determinism contract as KernelReport (DESIGN.md §8).
//
// Timeline semantics: spans obey stack discipline.  A child begins at its
// parent's current cursor; charge() advances the innermost open span's
// cursor by a modelled duration; closing a span sets end = cursor and
// advances the parent's cursor to it.  Sibling spans therefore tile the
// parent interval in open order — the serialized view of the pipeline.
// Parallel-device quantities (e.g. a scheduled makespan, which overlaps
// chunk kernels across SMs) are carried as span args, not as overlap.
//
// Wall-clock is deliberately OPTIONAL and off by default: obs::Scope can
// annotate spans with a "wall_ms" arg (measured via util::Stopwatch, the
// repo's only wall-clock source), which is useful interactively but
// breaks byte-identical output — exporters include it only when the
// session enabled it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lgg::obs {

/// One key/value annotation.  `json` is the PRE-RENDERED JSON value
/// ("42", "1.5", "\"naive\"") so exporters can splice it verbatim.
struct SpanArg {
  std::string key;
  std::string json;
};

struct Span {
  std::string name;
  std::string cat;  // phase: "plan", "schedule", "launch", "retry", ...
  std::uint64_t begin_ns = 0;  // modelled time
  std::uint64_t end_ns = 0;
  std::int64_t parent = -1;  // index into Tracer::spans(); -1 = top level
  std::vector<SpanArg> args;

  [[nodiscard]] std::uint64_t duration_ns() const noexcept {
    return end_ns - begin_ns;
  }
};

/// Complete serializable tracer state — recorded spans plus the open-span
/// stack — so a checkpoint can freeze a trace mid-run and a resumed
/// process can continue it byte-identically (DESIGN.md §16).  `open`
/// holds (span index, cursor) per open frame, innermost last; dropped
/// frames carry Tracer::kDropped as their index.
struct TracerState {
  std::vector<Span> spans;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> open;
  std::uint64_t top_cursor = 0;
  std::uint64_t dropped = 0;
};

class Tracer {
 public:
  /// Sentinel id for spans dropped by the cap (all operations on it are
  /// no-ops, but the open/close pairing still advances the timeline).
  static constexpr std::size_t kDropped = ~std::size_t{0};

  /// Open a span at the innermost open span's cursor.  Returns its id, or
  /// kDropped when the span cap is reached (the frame is still tracked so
  /// charges and the matching end() keep the timeline consistent).
  std::size_t begin(std::string name, std::string cat);

  /// Advance the innermost open span's cursor (top-level cursor when no
  /// span is open) by a modelled duration.  Negative charges clamp to 0.
  void charge_s(double seconds);
  void charge_ns(std::uint64_t ns);

  /// Attach an annotation to an open or closed span (no-op for kDropped).
  void arg(std::size_t id, std::string key, std::string json);

  /// Close the innermost open span; `id` must match it (stack
  /// discipline), except kDropped frames which close unconditionally.
  void end(std::size_t id);

  /// Current modelled cursor (the begin a span opened now would get).
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] std::size_t open_depth() const noexcept {
    return open_.size();
  }
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }

  /// Cap on recorded spans (default 1<<20); further begins are dropped
  /// but counted.  A pure function of the workload, so determinism holds.
  void set_span_cap(std::size_t cap) noexcept { cap_ = cap; }

  /// Snapshot the full tracer state, open frames included (checkpoints).
  [[nodiscard]] TracerState state() const;
  /// Replace this tracer's state with a snapshot (checkpoint resume).
  void restore(TracerState s);
  /// Id of the innermost open span (kDropped when none is open or the
  /// innermost frame was dropped) — what a resumed driver must end().
  [[nodiscard]] std::size_t open_top() const noexcept;

  /// Names of the currently open recorded frames, outermost first —
  /// the attribution stack a profiler hook sees at launch time (dropped
  /// frames are skipped).
  [[nodiscard]] std::vector<std::string> open_stack_names() const;

 private:
  struct Frame {
    std::size_t idx;        // kDropped when not recorded
    std::uint64_t cursor;   // where the next child/charge lands
  };
  std::vector<Span> spans_;
  std::vector<Frame> open_;
  std::uint64_t top_cursor_ = 0;
  std::size_t cap_ = std::size_t{1} << 20;
  std::size_t dropped_ = 0;
};

/// Escape a string for a JSON string literal (no surrounding quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Render a double deterministically for JSON/Prometheus output.
[[nodiscard]] std::string format_number(double v);

/// Chrome trace-event JSON (one "X" complete event per span, modelled
/// microseconds, loadable in Perfetto / chrome://tracing).  Dropped spans
/// are reported in the trace metadata.  Byte-identical across host
/// thread counts for a deterministic workload.  `extra_events` holds
/// pre-rendered JSON event objects (e.g. lgg_prof's Perfetto counter
/// tracks) spliced verbatim after the span events — empty by default, so
/// existing traces are unchanged when no extension is attached.
[[nodiscard]] std::string chrome_trace_json(
    const Tracer& tracer, const std::vector<std::string>& extra_events = {});

/// Human-readable indented span tree with modelled durations and args.
[[nodiscard]] std::string span_tree_text(const Tracer& tracer);

}  // namespace lgg::obs

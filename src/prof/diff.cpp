#include "prof/diff.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <regex>
#include <sstream>

#include "util/error.hpp"

namespace lgg::prof {
namespace {

struct Sample {
  std::string raw;       // value field verbatim, for exact compare + messages
  double value = 0.0;
  bool numeric = false;
};

// Parsed file: key -> sample, plus keys in input order for stable output.
struct Parsed {
  std::map<std::string, Sample> samples;
  std::vector<std::string> order;
};

Parsed parse(const std::string& text) {
  Parsed out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    // Strip a trailing '\r' so CRLF inputs diff cleanly.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    std::size_t end = line.find_last_not_of(" \t");
    std::size_t split = line.find_last_of(" \t", end);
    if (split == std::string::npos || split < start) continue;  // no value field
    std::string key = line.substr(start, line.find_last_not_of(" \t", split) -
                                             start + 1);
    std::string raw = line.substr(split + 1, end - split);
    Sample s;
    s.raw = raw;
    char* stop = nullptr;
    s.value = std::strtod(raw.c_str(), &stop);
    s.numeric = stop != raw.c_str() && *stop == '\0';
    if (out.samples.emplace(key, s).second) out.order.push_back(std::move(key));
  }
  return out;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

DiffResult diff_profile_text(const std::string& a, const std::string& b,
                             const DiffOptions& opts) {
  std::vector<std::regex> ignore;
  ignore.reserve(opts.ignore.size());
  for (const std::string& pat : opts.ignore) {
    try {
      ignore.emplace_back(pat);
    } catch (const std::regex_error& e) {
      throw Error("lgg_prof: bad ignore regex '" + pat + "': " + e.what());
    }
  }
  auto ignored = [&](const std::string& key) {
    for (const std::regex& re : ignore)
      if (std::regex_search(key, re)) return true;
    return false;
  };

  Parsed pa = parse(a);
  Parsed pb = parse(b);
  DiffResult res;

  for (const std::string& key : pa.order) {
    if (ignored(key)) continue;
    const Sample& sa = pa.samples.at(key);
    auto it = pb.samples.find(key);
    if (it == pb.samples.end()) {
      res.diffs.push_back("only in A: " + key + " " + sa.raw);
      continue;
    }
    const Sample& sb = it->second;
    if (sa.numeric && sb.numeric) {
      const double tol =
          opts.atol +
          opts.rtol * std::max(std::fabs(sa.value), std::fabs(sb.value));
      const double delta = std::fabs(sa.value - sb.value);
      // NaN on either side never matches (delta is NaN -> comparison false).
      if (delta <= tol || sa.value == sb.value) continue;
      res.diffs.push_back("value mismatch: " + key + "  A=" + sa.raw +
                          "  B=" + sb.raw + "  |delta|=" + fmt(delta) +
                          " > tol=" + fmt(tol));
    } else if (sa.raw != sb.raw) {
      res.diffs.push_back("value mismatch: " + key + "  A=" + sa.raw +
                          "  B=" + sb.raw);
    }
  }
  for (const std::string& key : pb.order) {
    if (ignored(key)) continue;
    if (pa.samples.find(key) == pa.samples.end()) {
      res.diffs.push_back("only in B: " + key + " " + pb.samples.at(key).raw);
    }
  }
  res.equal = res.diffs.empty();
  return res;
}

}  // namespace lgg::prof

// Profile diffing with tolerances — the CI perf-regression gate
// (DESIGN.md §17).  Same contract as ci/prom_diff: a sample is
// "<key> <value>" (key = full series name incl. labels, value = last
// whitespace-separated field), blank lines and '#' comments are skipped,
// and two samples match iff |a - b| <= atol + rtol * max(|a|, |b|).
// Keys present on only one side always count as differences.
#pragma once

#include <string>
#include <vector>

namespace lgg::prof {

struct DiffOptions {
  double rtol = 0.0;
  double atol = 0.0;
  /// ECMAScript regexes; a key matching any of them is skipped entirely.
  std::vector<std::string> ignore;
};

struct DiffResult {
  bool equal = true;
  /// One human-readable line per difference, in input order (A's keys
  /// first, then keys only in B).
  std::vector<std::string> diffs;
};

/// Diff two profile (or Prometheus) text exports.  Throws lgg::Error on
/// an invalid ignore regex.
[[nodiscard]] DiffResult diff_profile_text(const std::string& a,
                                           const std::string& b,
                                           const DiffOptions& opts = {});

}  // namespace lgg::prof

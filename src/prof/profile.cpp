#include "prof/profile.hpp"

#include <algorithm>

namespace lgg::prof {

const char* roofline_name(RooflineClass c) noexcept {
  switch (c) {
    case RooflineClass::kCompute:
      return "compute";
    case RooflineClass::kLatency:
      return "latency";
    case RooflineClass::kMemory:
      return "memory";
  }
  return "?";
}

std::string KernelProfile::stack_path() const {
  if (stack.empty()) return "(root)";
  std::string out;
  for (std::size_t i = 0; i < stack.size(); ++i) {
    if (i) out += ';';
    out += stack[i];
  }
  return out;
}

void KernelProfile::finalize() {
  achieved_bandwidth_gbps =
      kernel_time_s > 0.0
          ? static_cast<double>(bytes) / kernel_time_s / 1e9
          : 0.0;
  bandwidth_fraction = peak_bandwidth_gbps > 0.0
                           ? achieved_bandwidth_gbps / peak_bandwidth_gbps
                           : 0.0;

  double occ_sum = 0.0;
  std::uint32_t active = 0;
  for (const gpusim::SmCounters& c : sms) {
    if (c.warps == 0) continue;
    ++active;
    if (max_warps_per_sm > 0)
      occ_sum += static_cast<double>(
                     std::min<std::uint64_t>(c.warps, max_warps_per_sm)) /
                 static_cast<double>(max_warps_per_sm);
  }
  occupancy = active > 0 ? occ_sum / static_cast<double>(active) : 0.0;

  if (dram_cycles >= compute_cycles && dram_cycles >= latency_cycles)
    roofline = RooflineClass::kMemory;
  else if (latency_cycles >= compute_cycles)
    roofline = RooflineClass::kLatency;
  else
    roofline = RooflineClass::kCompute;
}

}  // namespace lgg::prof

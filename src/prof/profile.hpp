// KernelProfile: one launch's modelled hardware-counter harvest
// (DESIGN.md §17).
//
// A profile is the per-launch roll-up of the executor's LaunchCounters
// and KernelReport plus attribution (the obs span stack open at launch
// time) and derived metrics (achieved vs peak bandwidth, a roofline
// classification, per-SM occupancy rows on the modelled clock).  Every
// field is a pure function of the workload, so profiles — and every
// export derived from them — are byte-identical at any ExecPolicy and
// host thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/executor.hpp"

namespace lgg::prof {

/// Which timing term dominates the launch (the executor prices a kernel
/// as max(compute, latency, dram) cycles; see executor.hpp).
enum class RooflineClass : std::uint8_t {
  kCompute = 0,   // instruction issue bound
  kLatency = 1,   // global-latency bound (too few resident warps)
  kMemory = 2,    // DRAM transaction bound (coalescing / camping)
};

[[nodiscard]] const char* roofline_name(RooflineClass c) noexcept;

struct KernelProfile {
  // --- identity + attribution ---
  std::string name;
  std::uint64_t launch = 0;        ///< 0-based index within the Profiler
  /// obs span names open when the launch ran, outermost first — the
  /// ALS-plan attribution path (e.g. resilient/run; chunk[3]; chunk/shared).
  std::vector<std::string> stack;
  std::uint64_t ts_ns = 0;         ///< modelled begin of the launch

  // --- launch configuration ---
  std::uint32_t blocks = 0;
  std::uint32_t threads_per_block = 0;
  std::uint64_t warps = 0;
  double sample_fraction = 1.0;

  // --- raw counters (LaunchCounters + KernelReport, same invariants) ---
  std::uint64_t global_slots = 0;
  std::uint64_t coalesced_slots = 0;
  std::uint64_t uncoalesced_slots = 0;
  std::uint64_t transactions = 0;
  std::uint64_t coalesced_transactions = 0;
  std::uint64_t uncoalesced_transactions = 0;
  std::uint64_t ideal_transactions = 0;
  std::uint64_t memory_replays = 0;
  std::uint64_t bytes = 0;
  std::uint64_t shared_slots = 0;
  std::uint64_t shared_accesses = 0;
  std::uint64_t bank_conflict_steps = 0;
  std::uint64_t shared_replays = 0;
  std::uint64_t divergent_warps = 0;
  double warp_instructions = 0.0;

  // --- partition camping (Figs. 6/7) ---
  std::vector<std::uint64_t> partition_pressure;  ///< transactions per partition
  std::uint64_t partition_total = 0;
  std::uint64_t partition_serialized_steps = 0;
  std::uint64_t partition_ideal_steps = 0;
  double camping_factor = 1.0;

  // --- timing + device context ---
  double compute_cycles = 0.0;
  double latency_cycles = 0.0;
  double dram_cycles = 0.0;
  double kernel_time_s = 0.0;
  std::string device;
  std::string cc;
  bool cached_global = false;      ///< CC >= 2.0: dram priced at ideal steps
  double core_clock_ghz = 0.0;
  double peak_bandwidth_gbps = 0.0;
  std::uint32_t sm_count = 0;
  std::uint32_t max_warps_per_sm = 0;

  /// Per-SM occupancy timeline rows, fixed SM order (busy_cycles is when
  /// the SM retires its last warp on the modelled clock).
  std::vector<gpusim::SmCounters> sms;

  // --- derived (recomputed by finalize()) ---
  double achieved_bandwidth_gbps = 0.0;
  double bandwidth_fraction = 0.0;
  /// Mean resident-warp occupancy over the SMs the launch occupied.
  double occupancy = 0.0;
  RooflineClass roofline = RooflineClass::kCompute;

  /// camping conflicts: serialized steps beyond the balanced ideal.
  [[nodiscard]] std::uint64_t camping_conflict_steps() const noexcept {
    return partition_serialized_steps -
           (partition_ideal_steps < partition_serialized_steps
                ? partition_ideal_steps
                : partition_serialized_steps);
  }

  /// The attribution path as "a;b;c" ("(root)" when no span was open).
  [[nodiscard]] std::string stack_path() const;

  /// Recompute the derived metrics from the raw counters.
  void finalize();
};

}  // namespace lgg::prof

#include "prof/profiler.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <sstream>

#include "gpusim/calibration.hpp"
#include "gpusim/partition.hpp"
#include "obs/trace.hpp"

namespace lgg::prof {

namespace cal = gpusim::calibration;

namespace {

/// Modelled ns as fixed-precision microseconds (same rendering as the
/// Chrome-trace exporter, so counter tracks line up with the spans).
std::string micros(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

void Profiler::on_launch(const gpusim::KernelConfig& config,
                         const gpusim::DeviceSpec& dev,
                         const gpusim::LaunchCounters& counters,
                         const gpusim::KernelReport& report) {
  KernelProfile p;
  p.name = config.name;
  p.launch = profiles_.size();
  if (obs_ != nullptr) {
    p.stack = obs_->tracer.open_stack_names();
    p.ts_ns = obs_->tracer.now_ns();
  }

  p.blocks = config.blocks;
  p.threads_per_block = config.threads_per_block;
  p.warps = report.warps;
  p.sample_fraction = report.sample_fraction;

  p.global_slots = report.global_slots;
  p.coalesced_slots = counters.coalesced_slots;
  p.uncoalesced_slots = counters.uncoalesced_slots;
  p.transactions = report.transactions;
  p.coalesced_transactions = counters.coalesced_transactions;
  p.uncoalesced_transactions = counters.uncoalesced_transactions;
  p.ideal_transactions = counters.ideal_transactions;
  p.memory_replays = counters.memory_replays;
  p.bytes = report.bytes;
  p.shared_slots = report.shared_slots;
  p.shared_accesses = counters.shared_accesses;
  p.bank_conflict_steps = report.bank_conflict_steps;
  p.shared_replays = counters.shared_replays;
  p.divergent_warps = counters.divergent_warps;
  p.warp_instructions = report.warp_instructions;

  p.partition_pressure = report.partition_histogram.count;
  p.partition_total = report.partition_histogram.total;
  p.partition_serialized_steps = report.partition_histogram.serialized_steps();
  p.partition_ideal_steps = report.partition_histogram.ideal_steps();
  p.camping_factor = report.camping_factor;

  p.compute_cycles = report.compute_cycles;
  p.latency_cycles = report.latency_cycles;
  p.dram_cycles = report.dram_cycles;
  p.kernel_time_s = report.kernel_time_s;

  p.device = dev.name;
  p.cc = gpusim::to_string(dev.cc);
  p.cached_global = dev.has_cached_global();
  p.core_clock_ghz = dev.core_clock_ghz;
  p.peak_bandwidth_gbps = dev.mem_bandwidth_gbps;
  p.sm_count = dev.sm_count;
  p.max_warps_per_sm = dev.max_warps_per_sm;
  p.sms = counters.sms;

  p.finalize();
  profiles_.push_back(std::move(p));
}

void Profiler::rescale_last(double factor) {
  if (factor <= 1.0 || profiles_.empty()) return;
  KernelProfile& p = profiles_.back();
  const auto scale_u64 = [factor](std::uint64_t v) {
    return static_cast<std::uint64_t>(static_cast<double>(v) * factor);
  };
  // Scale the totals the way the drivers scale the KernelReport, then
  // re-derive each complement from its total — scaling both halves
  // independently would break the coalesced + uncoalesced == total
  // invariant by a rounding unit.
  p.global_slots = scale_u64(p.global_slots);
  p.coalesced_slots = std::min(scale_u64(p.coalesced_slots), p.global_slots);
  p.uncoalesced_slots = p.global_slots - p.coalesced_slots;
  p.transactions = scale_u64(p.transactions);
  p.coalesced_transactions =
      std::min(scale_u64(p.coalesced_transactions), p.transactions);
  p.uncoalesced_transactions = p.transactions - p.coalesced_transactions;
  p.ideal_transactions = scale_u64(p.ideal_transactions);
  p.bytes = scale_u64(p.bytes);
  p.shared_slots = scale_u64(p.shared_slots);
  p.shared_accesses = scale_u64(p.shared_accesses);
  p.bank_conflict_steps = scale_u64(p.bank_conflict_steps);
  p.divergent_warps = scale_u64(p.divergent_warps);
  p.warp_instructions *= factor;

  // The same histogram transformation as the drivers: scale the counts
  // and the total independently, then re-derive the step/factor metrics.
  gpusim::PartitionHistogram hist;
  hist.count = p.partition_pressure;
  for (auto& c : hist.count) c = scale_u64(c);
  hist.total = scale_u64(p.partition_total);
  p.partition_pressure = hist.count;
  p.partition_total = hist.total;
  p.partition_serialized_steps = hist.serialized_steps();
  p.partition_ideal_steps = hist.ideal_steps();
  p.camping_factor = hist.camping_factor();

  p.memory_replays =
      p.transactions - std::min(p.ideal_transactions, p.transactions);
  p.shared_replays =
      p.bank_conflict_steps -
      std::min(p.shared_accesses, p.bank_conflict_steps);

  p.compute_cycles *= factor;
  p.latency_cycles *= factor;
  p.dram_cycles *= factor;
  const double cycles =
      std::max({p.compute_cycles, p.latency_cycles, p.dram_cycles});
  p.kernel_time_s =
      cycles / (p.core_clock_ghz * 1e9) + cal::kKernelLaunchOverheadS;
  p.sample_fraction /= factor;

  for (gpusim::SmCounters& c : p.sms) {
    c.warps = scale_u64(c.warps);
    c.global_slots = scale_u64(c.global_slots);
    c.transactions = scale_u64(c.transactions);
    c.warp_instructions *= factor;
    c.bank_conflict_steps = scale_u64(c.bank_conflict_steps);
    c.compute_cycles *= factor;
    c.latency_cycles *= factor;
    c.busy_cycles *= factor;
  }
  p.finalize();
}

std::string Profiler::profile_text() const {
  std::ostringstream os;
  os << "# lgg_prof v1\n";
  os << "lgg_prof_launches " << profiles_.size() << "\n";
  for (const KernelProfile& p : profiles_) {
    os << "# launch " << p.launch << ": " << p.name << "  device=" << p.device
       << " cc=" << p.cc << " roofline=" << roofline_name(p.roofline)
       << " stack=" << p.stack_path() << "\n";
    const std::string labels = "{kernel=\"" + obs::json_escape(p.name) +
                               "\",launch=\"" + std::to_string(p.launch) +
                               "\"}";
    const auto u64 = [&](const char* metric, std::uint64_t v) {
      os << "lgg_prof_" << metric << labels << " " << v << "\n";
    };
    const auto f64 = [&](const char* metric, double v) {
      os << "lgg_prof_" << metric << labels << " " << obs::format_number(v)
         << "\n";
    };
    u64("blocks", p.blocks);
    u64("threads_per_block", p.threads_per_block);
    u64("warps", p.warps);
    f64("sample_fraction", p.sample_fraction);
    u64("global_slots", p.global_slots);
    u64("coalesced_slots", p.coalesced_slots);
    u64("uncoalesced_slots", p.uncoalesced_slots);
    u64("transactions", p.transactions);
    u64("coalesced_transactions", p.coalesced_transactions);
    u64("uncoalesced_transactions", p.uncoalesced_transactions);
    u64("ideal_transactions", p.ideal_transactions);
    u64("memory_replays", p.memory_replays);
    u64("bytes", p.bytes);
    u64("shared_slots", p.shared_slots);
    u64("shared_accesses", p.shared_accesses);
    u64("bank_conflict_steps", p.bank_conflict_steps);
    u64("shared_replays", p.shared_replays);
    u64("divergent_warps", p.divergent_warps);
    f64("warp_instructions", p.warp_instructions);
    u64("partition_serialized_steps", p.partition_serialized_steps);
    u64("partition_ideal_steps", p.partition_ideal_steps);
    u64("camping_conflict_steps", p.camping_conflict_steps());
    f64("camping_factor", p.camping_factor);
    for (std::size_t part = 0; part < p.partition_pressure.size(); ++part) {
      os << "lgg_prof_partition_pressure{kernel=\"" << obs::json_escape(p.name)
         << "\",launch=\"" << p.launch << "\",partition=\"" << part << "\"} "
         << p.partition_pressure[part] << "\n";
    }
    f64("compute_cycles", p.compute_cycles);
    f64("latency_cycles", p.latency_cycles);
    f64("dram_cycles", p.dram_cycles);
    f64("kernel_time_s", p.kernel_time_s);
    f64("achieved_bandwidth_gbps", p.achieved_bandwidth_gbps);
    f64("bandwidth_fraction", p.bandwidth_fraction);
    f64("occupancy", p.occupancy);
    u64("roofline_class", static_cast<std::uint64_t>(p.roofline));
  }
  return os.str();
}

std::string Profiler::profile_tree_text() const {
  std::ostringstream os;
  os << "lgg_prof profile: " << profiles_.size() << " launch(es)\n";
  for (const KernelProfile& p : profiles_) {
    os << "\nlaunch " << p.launch << ": " << p.name << " [" << p.device
       << " cc " << p.cc << "]\n";
    os << "  stack: " << p.stack_path() << "\n";
    os << "  config: blocks=" << p.blocks << " tpb=" << p.threads_per_block
       << " warps=" << p.warps
       << " sample_fraction=" << obs::format_number(p.sample_fraction) << "\n";
    os << "  global: slots=" << p.global_slots << " (coalesced "
       << p.coalesced_slots << ", uncoalesced " << p.uncoalesced_slots
       << ")  txns=" << p.transactions << " (coalesced "
       << p.coalesced_transactions << ", uncoalesced "
       << p.uncoalesced_transactions << ", replays " << p.memory_replays
       << ")  bytes=" << p.bytes << "\n";
    os << "  camping: serialized=" << p.partition_serialized_steps
       << " ideal=" << p.partition_ideal_steps
       << " conflicts=" << p.camping_conflict_steps()
       << " factor=" << obs::format_number(p.camping_factor)
       << (p.cached_global ? " (cached: neutralised)" : "") << "  pressure=[";
    for (std::size_t part = 0; part < p.partition_pressure.size(); ++part) {
      if (part) os << " ";
      os << p.partition_pressure[part];
    }
    os << "]\n";
    os << "  shared: slots=" << p.shared_slots << " accesses="
       << p.shared_accesses << " conflict_steps=" << p.bank_conflict_steps
       << " replays=" << p.shared_replays << "\n";
    os << "  divergence: divergent_warps=" << p.divergent_warps << "\n";
    os << "  timing: compute=" << obs::format_number(p.compute_cycles)
       << " latency=" << obs::format_number(p.latency_cycles)
       << " dram=" << obs::format_number(p.dram_cycles) << " cycles -> "
       << obs::format_number(p.kernel_time_s) << " s (roofline: "
       << roofline_name(p.roofline) << ")\n";
    os << "  bandwidth: " << obs::format_number(p.achieved_bandwidth_gbps)
       << " GB/s of " << obs::format_number(p.peak_bandwidth_gbps)
       << " GB/s peak (" << obs::format_number(p.bandwidth_fraction * 100.0)
       << "%)\n";
    os << "  occupancy: " << obs::format_number(p.occupancy)
       << "  sm-timeline (busy cycles on the modelled clock):\n";
    for (const gpusim::SmCounters& c : p.sms) {
      if (c.warps == 0) continue;
      os << "    sm" << c.sm << ": warps=" << c.warps
         << " slots=" << c.global_slots << " txns=" << c.transactions
         << " busy=" << obs::format_number(c.busy_cycles) << "cyc\n";
    }
  }

  // Hotspot attribution: top launches by modelled kernel time.
  std::vector<std::size_t> order(profiles_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (profiles_[a].kernel_time_s != profiles_[b].kernel_time_s)
      return profiles_[a].kernel_time_s > profiles_[b].kernel_time_s;
    return a < b;
  });
  const std::size_t top = std::min<std::size_t>(order.size(), 8);
  os << "\nhot launches (top " << top << " by modelled kernel time):\n";
  for (std::size_t r = 0; r < top; ++r) {
    const KernelProfile& p = profiles_[order[r]];
    os << "  " << (r + 1) << ". launch " << p.launch << " " << p.name << "  "
       << obs::format_number(p.kernel_time_s) << " s  "
       << roofline_name(p.roofline) << "  " << p.stack_path() << "\n";
  }
  return os.str();
}

std::vector<std::string> Profiler::counter_track_events() const {
  std::vector<std::string> events;
  events.reserve(profiles_.size() * 4);
  for (const KernelProfile& p : profiles_) {
    const std::string ts = micros(p.ts_ns);
    const auto counter = [&](const char* track, const std::string& args) {
      events.push_back(std::string("{\"name\":\"lgg_prof/") + track +
                       "\",\"ph\":\"C\",\"ts\":" + ts +
                       ",\"pid\":0,\"tid\":0,\"args\":{" + args + "}}");
    };
    counter("transactions",
            "\"coalesced\":" + std::to_string(p.coalesced_transactions) +
                ",\"uncoalesced\":" +
                std::to_string(p.uncoalesced_transactions));
    counter("camping_factor",
            "\"factor\":" + obs::format_number(p.camping_factor));
    counter("bank_conflicts",
            "\"steps\":" + std::to_string(p.bank_conflict_steps) +
                ",\"replays\":" + std::to_string(p.shared_replays));
    counter("occupancy", "\"occupancy\":" + obs::format_number(p.occupancy));
  }
  return events;
}

void Profiler::export_metrics(obs::Metrics& m) const {
  if (profiles_.empty()) return;
  std::uint64_t coalesced = 0, uncoalesced = 0, replays = 0, shared = 0,
                divergent = 0, camping = 0;
  static constexpr std::array<double, 7> kFractionBounds = {
      0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0};
  for (const KernelProfile& p : profiles_) {
    coalesced += p.coalesced_transactions;
    uncoalesced += p.uncoalesced_transactions;
    replays += p.memory_replays;
    shared += p.shared_replays;
    divergent += p.divergent_warps;
    camping += p.camping_conflict_steps();
    m.observe("lgg_prof_bandwidth_fraction", p.bandwidth_fraction,
              kFractionBounds);
    m.count("lgg_prof_roofline_launches_total", 1,
            std::string("class=\"") + roofline_name(p.roofline) + "\"");
  }
  m.count("lgg_prof_launches_total", profiles_.size());
  m.help("lgg_prof_coalesced_transactions_total",
         "global transactions at the CC-minimal count (Table III)");
  m.count("lgg_prof_coalesced_transactions_total", coalesced);
  m.count("lgg_prof_uncoalesced_transactions_total", uncoalesced);
  m.count("lgg_prof_memory_replays_total", replays);
  m.count("lgg_prof_shared_replays_total", shared);
  m.count("lgg_prof_divergent_warps_total", divergent);
  m.count("lgg_prof_camping_conflict_steps_total", camping);
}

std::string flamegraph_text(const obs::Tracer& tracer) {
  const auto& spans = tracer.spans();
  std::vector<std::uint64_t> child_ns(spans.size(), 0);
  for (const obs::Span& s : spans)
    if (s.parent >= 0)
      child_ns[static_cast<std::size_t>(s.parent)] += s.duration_ns();
  std::vector<std::string> path(spans.size());
  std::map<std::string, std::uint64_t> collapsed;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    path[i] = spans[i].parent >= 0
                  ? path[static_cast<std::size_t>(spans[i].parent)] + ";" +
                        spans[i].name
                  : spans[i].name;
    const std::uint64_t dur = spans[i].duration_ns();
    const std::uint64_t self = dur - std::min(child_ns[i], dur);
    if (self > 0) collapsed[path[i]] += self;
  }
  std::string out;
  for (const auto& [stack, self] : collapsed)
    out += stack + " " + std::to_string(self) + "\n";
  return out;
}

}  // namespace lgg::prof

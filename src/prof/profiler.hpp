// lgg_prof: the deterministic kernel profiler (DESIGN.md §17).
//
// Profiler implements gpusim::ProfilerHook: attach one to a driver
// (GpuTriangleOptions / HybridOptions / RunnerOptions / ServeOptions all
// carry a `prof` pointer) and every successful launch deposits a
// KernelProfile — modelled hardware counters, span-stack attribution,
// per-SM occupancy rows and derived roofline/bandwidth metrics.  The
// hook fires from host-serial executor code after the shard merge, so
// the profile sequence is a pure function of the workload and every
// export below is byte-identical at any ExecPolicy / host thread count.
//
// Exports:
//   profile_text()        flat `name{labels} value` counter file —
//                         Prometheus-flavoured, consumed by `lgg_prof
//                         diff` (ci/prom_diff contract: rtol/atol gates)
//   profile_tree_text()   human hotspot report with top-N attribution
//   counter_track_events() pre-rendered Perfetto counter events ("ph":"C")
//                         to splice into obs::chrome_trace_json
//   export_metrics()      aggregate lgg_prof_* series into obs::Metrics
//   flamegraph_text()     collapsed-stack flamegraph of the span tree
//                         (flamegraph.pl-compatible, modelled self-ns)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/executor.hpp"
#include "obs/obs.hpp"
#include "prof/profile.hpp"

namespace lgg::prof {

class Profiler final : public gpusim::ProfilerHook {
 public:
  /// `obs` (optional, non-owning) supplies the attribution stack and the
  /// modelled timestamp per launch; without a session profiles carry an
  /// empty stack and ts 0.
  explicit Profiler(obs::Session* obs = nullptr) : obs_(obs) {}

  void on_launch(const gpusim::KernelConfig& config,
                 const gpusim::DeviceSpec& dev,
                 const gpusim::LaunchCounters& counters,
                 const gpusim::KernelReport& report) override;

  /// Mirror of the drivers' post-launch KernelReport rescale (triangle
  /// test-sampling, hybrid chunk truncation): scales the last recorded
  /// profile by `factor` with the same transformation, so the profile
  /// keeps matching the caller-visible report.  No-op for factor <= 1.
  void rescale_last(double factor) override;

  [[nodiscard]] const std::vector<KernelProfile>& profiles() const noexcept {
    return profiles_;
  }

  [[nodiscard]] std::string profile_text() const;
  [[nodiscard]] std::string profile_tree_text() const;
  [[nodiscard]] std::vector<std::string> counter_track_events() const;
  void export_metrics(obs::Metrics& m) const;

 private:
  obs::Session* obs_;
  std::vector<KernelProfile> profiles_;
};

/// Collapsed-stack flamegraph text over a recorded span tree: one
/// "root;child;leaf <self_ns>" line per distinct stack with non-zero
/// modelled self time, sorted by stack path.  Feed to flamegraph.pl.
[[nodiscard]] std::string flamegraph_text(const obs::Tracer& tracer);

}  // namespace lgg::prof

#include "resilience/checkpoint.hpp"

#include <bit>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace lgg::resilience {

namespace {

constexpr std::string_view kMagic = "lggckpt";
constexpr std::uint64_t kFormatVersion = 1;
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Fold a 64-bit value into an FNV-1a state, little-endian bytes.
void fold(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= kFnvPrime;
  }
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

[[noreturn]] void corrupt(const std::string& why) {
  throw CheckpointError(CheckpointError::Kind::kCorrupt,
                        "corrupt checkpoint: " + why);
}

/// Whitespace-separated token stream over the checkpoint body.  Every
/// parse failure throws CheckpointError(kCorrupt) — the caller never sees
/// a partially decoded checkpoint.
class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  std::string_view tok() {
    skip_ws();
    if (pos_ >= text_.size()) corrupt("truncated");
    const std::size_t start = pos_;
    while (pos_ < text_.size() && !is_ws(text_[pos_])) ++pos_;
    return text_.substr(start, pos_ - start);
  }

  void expect(std::string_view kw) {
    const std::string_view t = tok();
    if (t != kw)
      corrupt("expected '" + std::string(kw) + "', got '" + std::string(t) +
              "'");
  }

  std::uint64_t u64() {
    const std::string_view t = tok();
    std::uint64_t v = 0;
    if (t.empty()) corrupt("empty integer");
    for (const char c : t) {
      if (c < '0' || c > '9') corrupt("bad integer '" + std::string(t) + "'");
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
  }

  std::uint64_t hex() {
    const std::string_view t = tok();
    if (t.empty() || t.size() > 16) corrupt("bad hex '" + std::string(t) + "'");
    std::uint64_t v = 0;
    for (const char c : t) {
      const int d = c >= '0' && c <= '9'   ? c - '0'
                    : c >= 'a' && c <= 'f' ? c - 'a' + 10
                                           : -1;
      if (d < 0) corrupt("bad hex '" + std::string(t) + "'");
      v = (v << 4) | static_cast<std::uint64_t>(d);
    }
    return v;
  }

  double dbl() { return std::bit_cast<double>(hex()); }
  bool flag() { return u64() != 0; }
  std::string str() { return ckpt_decode(tok()); }

  [[nodiscard]] bool done() {
    skip_ws();
    return pos_ >= text_.size();
  }

 private:
  static bool is_ws(char c) {
    return c == ' ' || c == '\n' || c == '\r' || c == '\t';
  }
  void skip_ws() {
    while (pos_ < text_.size() && is_ws(text_[pos_])) ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* checkpoint_kind_name(CheckpointError::Kind k) noexcept {
  switch (k) {
    case CheckpointError::Kind::kMissing:
      return "missing";
    case CheckpointError::Kind::kCorrupt:
      return "corrupt";
    case CheckpointError::Kind::kVersion:
      return "version";
    case CheckpointError::Kind::kGraphMismatch:
      return "graph-mismatch";
    case CheckpointError::Kind::kPlanMismatch:
      return "plan-mismatch";
  }
  return "?";
}

std::string ckpt_encode(std::string_view s) {
  if (s.empty()) return "%-";
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto b = static_cast<unsigned char>(c);
    if (b == '%' || b == ' ' || b < 0x20 || b == 0x7F) {
      out += '%';
      out += kHex[b >> 4];
      out += kHex[b & 0xF];
    } else {
      out += c;
    }
  }
  return out;
}

std::string ckpt_decode(std::string_view tok) {
  if (tok == "%-") return "";
  std::string out;
  out.reserve(tok.size());
  for (std::size_t i = 0; i < tok.size(); ++i) {
    if (tok[i] != '%') {
      out += tok[i];
      continue;
    }
    if (i + 2 >= tok.size()) corrupt("dangling escape in string token");
    const auto val = [&](char c) -> int {
      return c >= '0' && c <= '9'   ? c - '0'
             : c >= 'a' && c <= 'f' ? c - 'a' + 10
                                    : -1;
    };
    const int hi = val(tok[i + 1]);
    const int lo = val(tok[i + 2]);
    if (hi < 0 || lo < 0) corrupt("bad escape in string token");
    out += static_cast<char>((hi << 4) | lo);
    i += 2;
  }
  return out;
}

std::uint64_t ckpt_fnv1a(std::string_view bytes) {
  std::uint64_t h = kFnvOffset;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::string ckpt_double_bits(double v) {
  return hex64(std::bit_cast<std::uint64_t>(v));
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    LGG_CHECK(out.good(), "cannot open temp file for write: " << tmp);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    LGG_CHECK(out.good(), "short write to temp file: " << tmp);
  }
  LGG_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
            "cannot rename " << tmp << " into place at " << path);
}

std::uint64_t runner_options_fingerprint(const RunnerOptions& opts,
                                         const gpusim::DeviceSpec& dev) {
  std::uint64_t h = kFnvOffset;
  fold(h, static_cast<std::uint64_t>(opts.metric));
  fold(h, opts.threads_per_block);
  fold(h, static_cast<std::uint64_t>(opts.scheduler));
  fold(h, static_cast<std::uint64_t>(opts.sancheck));
  fold(h, static_cast<std::uint64_t>(opts.failover));
  fold(h, opts.retry.max_retries);
  fold(h, std::bit_cast<std::uint64_t>(opts.retry.base_backoff_s));
  fold(h, std::bit_cast<std::uint64_t>(opts.retry.max_backoff_s));
  fold(h, opts.verify ? 1 : 0);
  fold(h, opts.salvage ? 1 : 0);
  fold(h, opts.stream_batch_tests);
  fold(h, opts.checkpoint_every_chunks);
  fold(h, opts.faults != nullptr ? 1 : 0);
  if (opts.faults != nullptr) {
    fold(h, opts.faults->seed());
    const FaultRates& r = opts.faults->rates();
    fold(h, std::bit_cast<std::uint64_t>(r.alloc));
    fold(h, std::bit_cast<std::uint64_t>(r.launch));
    fold(h, std::bit_cast<std::uint64_t>(r.sm_abort));
    fold(h, std::bit_cast<std::uint64_t>(r.transfer));
  }
  fold(h, opts.obs != nullptr ? 1 : 0);
  fold(h, dev.sm_count);
  fold(h, dev.shared_mem_bits());
  return h;
}

std::uint64_t plan_digest_of(const std::vector<std::uint64_t>& chunk_tests) {
  std::uint64_t h = kFnvOffset;
  fold(h, chunk_tests.size());
  for (const std::uint64_t t : chunk_tests) fold(h, t);
  return h;
}

std::string encode_checkpoint(const Checkpoint& c) {
  std::ostringstream os;
  os << kMagic << " " << kFormatVersion << "\n";
  os << "graph " << hex64(c.graph_digest) << "\n";
  os << "fp " << hex64(c.options_fp) << "\n";
  os << "plan " << hex64(c.plan_digest) << " " << c.n_chunks << "\n";
  os << "pos " << c.next_chunk << "\n";
  os << "acc " << c.triangles << " " << (c.exact ? 1 : 0) << " "
     << c.total_tests << " " << ckpt_double_bits(c.host_time_s) << " "
     << ckpt_double_bits(c.camping_sum) << " " << ckpt_double_bits(c.tps_sum)
     << "\n";
  os << "dev " << c.dev_kernels << " " << c.dev_transactions << " "
     << ckpt_double_bits(c.dev_kernel_time_s) << " " << c.h2d_bytes << " "
     << ckpt_double_bits(c.h2d_time_s) << "\n";
  const RecoveryStats& st = c.recovery;
  os << "rec " << st.faults;
  for (const std::uint64_t v : st.by_site) os << " " << v;
  os << " " << st.retries << " " << st.corruptions_detected << " "
     << st.cpu_failovers << " " << st.stream_failovers << " "
     << st.failed_chunks << " " << ckpt_double_bits(st.backoff_s) << " "
     << st.salvaged_warps << " " << st.salvaged_tests << " "
     << st.recounted_tests << "\n";
  os << "chunks " << c.chunks.size() << "\n";
  for (const ChunkRecord& r : c.chunks) {
    os << "c " << r.chunk << " " << r.tests << " " << r.triangles << " "
       << (r.shared_resident ? 1 : 0) << " " << static_cast<int>(r.outcome)
       << " " << r.attempts << " " << r.faults << " " << r.corruptions << " "
       << (r.certified ? 1 : 0) << " " << ckpt_double_bits(r.backoff_s) << " "
       << ckpt_double_bits(r.time_s) << " " << r.sm << " "
       << r.salvaged_warps << " " << r.salvaged_tests << " "
       << r.recounted_tests << "\n";
  }
  os << "sml " << c.sm_lost.size();
  for (const std::uint8_t v : c.sm_lost) os << " " << static_cast<int>(v);
  os << "\n";
  os << "job " << c.job_times_ns.size();
  for (const std::uint64_t v : c.job_times_ns) os << " " << v;
  os << "\n";
  os << "log " << ckpt_encode(c.log) << "\n";
  os << "fau " << (c.has_faults ? 1 : 0);
  if (c.has_faults) {
    os << " " << c.fault_seed;
    for (const std::uint64_t v : c.faults.draws) os << " " << v;
    for (const std::uint64_t v : c.faults.counts) os << " " << v;
    for (const std::uint64_t v : c.faults.replay_cursor) os << " " << v;
    os << " " << c.faults.events.size();
  }
  os << "\n";
  if (c.has_faults) {
    for (const FaultEvent& e : c.faults.events)
      os << "fe " << static_cast<int>(e.site) << " " << e.draw << " "
         << e.detail << "\n";
  }
  os << "obs " << (c.has_obs ? 1 : 0) << "\n";
  if (c.has_obs) {
    os << "trc " << c.tracer.spans.size() << " " << c.tracer.open.size()
       << " " << c.tracer.top_cursor << " " << c.tracer.dropped << "\n";
    for (const obs::Span& s : c.tracer.spans) {
      os << "sp " << ckpt_encode(s.name) << " " << ckpt_encode(s.cat) << " "
         << s.begin_ns << " " << s.end_ns << " "
         << static_cast<std::uint64_t>(s.parent + 1) << " " << s.args.size();
      for (const obs::SpanArg& a : s.args)
        os << " " << ckpt_encode(a.key) << " " << ckpt_encode(a.json);
      os << "\n";
    }
    for (const auto& [idx, cursor] : c.tracer.open)
      os << "of " << idx << " " << cursor << "\n";
    const obs::MetricsState& m = c.metrics;
    os << "met " << m.counters.size() << " " << m.counters_f.size() << " "
       << m.gauges.size() << " " << m.histograms.size() << " "
       << m.help.size() << "\n";
    for (const auto& [k, v] : m.counters)
      os << "mc " << ckpt_encode(k) << " " << v << "\n";
    for (const auto& [k, v] : m.counters_f)
      os << "mf " << ckpt_encode(k) << " " << ckpt_double_bits(v) << "\n";
    for (const auto& [k, v] : m.gauges)
      os << "mg " << ckpt_encode(k) << " " << ckpt_double_bits(v) << "\n";
    for (const auto& [k, hist] : m.histograms) {
      os << "mh " << ckpt_encode(k) << " " << hist.bounds.size();
      for (const double b : hist.bounds) os << " " << ckpt_double_bits(b);
      os << " " << hist.count.size();
      for (const std::uint64_t v : hist.count) os << " " << v;
      os << " " << hist.observations << " " << ckpt_double_bits(hist.sum)
         << "\n";
    }
    for (const auto& [k, v] : m.help)
      os << "mp " << ckpt_encode(k) << " " << ckpt_encode(v) << "\n";
  }
  std::string body = os.str();
  body += "digest " + hex64(ckpt_fnv1a(
              std::string_view(body.data(), body.size()))) + "\n";
  return body;
}

Checkpoint decode_checkpoint(std::string_view text) {
  // Digest trailer first: reject truncation/tampering before parsing.
  const std::size_t pos = text.rfind("\ndigest ");
  if (pos == std::string_view::npos) corrupt("missing digest trailer");
  const std::string_view body = text.substr(0, pos + 1);
  Reader trailer(text.substr(pos + 1));
  trailer.expect("digest");
  const std::uint64_t want = trailer.hex();
  if (!trailer.done()) corrupt("trailing bytes after digest");
  if (ckpt_fnv1a(body) != want) corrupt("digest mismatch");

  Reader r(body);
  if (r.tok() != kMagic)
    throw CheckpointError(CheckpointError::Kind::kVersion,
                          "not a checkpoint file (bad magic)");
  const std::uint64_t ver = r.u64();
  if (ver != kFormatVersion)
    throw CheckpointError(
        CheckpointError::Kind::kVersion,
        "unsupported checkpoint format version " + std::to_string(ver));

  Checkpoint c;
  r.expect("graph");
  c.graph_digest = r.hex();
  r.expect("fp");
  c.options_fp = r.hex();
  r.expect("plan");
  c.plan_digest = r.hex();
  c.n_chunks = r.u64();
  r.expect("pos");
  c.next_chunk = r.u64();
  r.expect("acc");
  c.triangles = r.u64();
  c.exact = r.flag();
  c.total_tests = r.u64();
  c.host_time_s = r.dbl();
  c.camping_sum = r.dbl();
  c.tps_sum = r.dbl();
  r.expect("dev");
  c.dev_kernels = r.u64();
  c.dev_transactions = r.u64();
  c.dev_kernel_time_s = r.dbl();
  c.h2d_bytes = r.u64();
  c.h2d_time_s = r.dbl();
  r.expect("rec");
  RecoveryStats& st = c.recovery;
  st.faults = r.u64();
  for (std::uint64_t& v : st.by_site) v = r.u64();
  st.retries = r.u64();
  st.corruptions_detected = r.u64();
  st.cpu_failovers = r.u64();
  st.stream_failovers = r.u64();
  st.failed_chunks = r.u64();
  st.backoff_s = r.dbl();
  st.salvaged_warps = r.u64();
  st.salvaged_tests = r.u64();
  st.recounted_tests = r.u64();
  r.expect("chunks");
  const std::uint64_t n_records = r.u64();
  if (n_records > c.n_chunks) corrupt("more chunk records than chunks");
  c.chunks.reserve(n_records);
  for (std::uint64_t i = 0; i < n_records; ++i) {
    r.expect("c");
    ChunkRecord rec;
    rec.chunk = static_cast<std::uint32_t>(r.u64());
    rec.tests = r.u64();
    rec.triangles = r.u64();
    rec.shared_resident = r.flag();
    const std::uint64_t outcome = r.u64();
    if (outcome > static_cast<std::uint64_t>(ChunkOutcome::kSalvaged))
      corrupt("bad chunk outcome");
    rec.outcome = static_cast<ChunkOutcome>(outcome);
    rec.attempts = static_cast<std::uint32_t>(r.u64());
    rec.faults = static_cast<std::uint32_t>(r.u64());
    rec.corruptions = static_cast<std::uint32_t>(r.u64());
    rec.certified = r.flag();
    rec.backoff_s = r.dbl();
    rec.time_s = r.dbl();
    rec.sm = static_cast<std::uint32_t>(r.u64());
    rec.salvaged_warps = r.u64();
    rec.salvaged_tests = r.u64();
    rec.recounted_tests = r.u64();
    c.chunks.push_back(std::move(rec));
  }
  r.expect("sml");
  c.sm_lost.resize(r.u64());
  for (std::uint8_t& v : c.sm_lost) v = r.flag() ? 1 : 0;
  r.expect("job");
  c.job_times_ns.resize(r.u64());
  for (std::uint64_t& v : c.job_times_ns) v = r.u64();
  r.expect("log");
  c.log = r.str();
  r.expect("fau");
  c.has_faults = r.flag();
  if (c.has_faults) {
    c.fault_seed = r.u64();
    for (std::uint64_t& v : c.faults.draws) v = r.u64();
    for (std::uint64_t& v : c.faults.counts) v = r.u64();
    for (std::uint64_t& v : c.faults.replay_cursor) v = r.u64();
    const std::uint64_t n_events = r.u64();
    c.faults.events.reserve(n_events);
    for (std::uint64_t i = 0; i < n_events; ++i) {
      r.expect("fe");
      FaultEvent e;
      const std::uint64_t site = r.u64();
      if (site >= gpusim::kNumFaultSites) corrupt("bad fault site");
      e.site = static_cast<gpusim::FaultSite>(site);
      e.draw = r.u64();
      e.detail = r.u64();
      c.faults.events.push_back(e);
    }
  }
  r.expect("obs");
  c.has_obs = r.flag();
  if (c.has_obs) {
    r.expect("trc");
    const std::uint64_t n_spans = r.u64();
    const std::uint64_t n_open = r.u64();
    c.tracer.top_cursor = r.u64();
    c.tracer.dropped = r.u64();
    c.tracer.spans.reserve(n_spans);
    for (std::uint64_t i = 0; i < n_spans; ++i) {
      r.expect("sp");
      obs::Span s;
      s.name = r.str();
      s.cat = r.str();
      s.begin_ns = r.u64();
      s.end_ns = r.u64();
      const std::uint64_t parent = r.u64();
      if (parent > i) corrupt("span parent out of range");
      s.parent = static_cast<std::int64_t>(parent) - 1;
      const std::uint64_t n_args = r.u64();
      s.args.reserve(n_args);
      for (std::uint64_t a = 0; a < n_args; ++a) {
        obs::SpanArg arg;
        arg.key = r.str();
        arg.json = r.str();
        s.args.push_back(std::move(arg));
      }
      c.tracer.spans.push_back(std::move(s));
    }
    c.tracer.open.reserve(n_open);
    for (std::uint64_t i = 0; i < n_open; ++i) {
      r.expect("of");
      const std::uint64_t idx = r.u64();
      const std::uint64_t cursor = r.u64();
      c.tracer.open.emplace_back(idx, cursor);
    }
    r.expect("met");
    const std::uint64_t nc = r.u64();
    const std::uint64_t ncf = r.u64();
    const std::uint64_t ng = r.u64();
    const std::uint64_t nh = r.u64();
    const std::uint64_t nhelp = r.u64();
    for (std::uint64_t i = 0; i < nc; ++i) {
      r.expect("mc");
      std::string k = r.str();
      c.metrics.counters[std::move(k)] = r.u64();
    }
    for (std::uint64_t i = 0; i < ncf; ++i) {
      r.expect("mf");
      std::string k = r.str();
      c.metrics.counters_f[std::move(k)] = r.dbl();
    }
    for (std::uint64_t i = 0; i < ng; ++i) {
      r.expect("mg");
      std::string k = r.str();
      c.metrics.gauges[std::move(k)] = r.dbl();
    }
    for (std::uint64_t i = 0; i < nh; ++i) {
      r.expect("mh");
      std::string k = r.str();
      obs::Histogram h;
      h.bounds.resize(r.u64());
      for (double& b : h.bounds) b = r.dbl();
      h.count.resize(r.u64());
      for (std::uint64_t& v : h.count) v = r.u64();
      h.observations = r.u64();
      h.sum = r.dbl();
      c.metrics.histograms[std::move(k)] = std::move(h);
    }
    for (std::uint64_t i = 0; i < nhelp; ++i) {
      r.expect("mp");
      std::string k = r.str();
      c.metrics.help[std::move(k)] = r.str();
    }
  }
  if (!r.done()) corrupt("trailing data after checkpoint body");
  return c;
}

void save_checkpoint(const std::string& path, const Checkpoint& c) {
  write_file_atomic(path, encode_checkpoint(c));
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good())
    throw CheckpointError(CheckpointError::Kind::kMissing,
                          "no checkpoint file at " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  LGG_CHECK(in.good() || in.eof(), "I/O error reading checkpoint " << path);
  return decode_checkpoint(buf.str());
}

}  // namespace lgg::resilience

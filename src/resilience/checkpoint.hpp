// Durable checkpoint/restart for the resilient runner (DESIGN.md §16).
//
// A Checkpoint freezes everything a resumed process needs to finish a
// chunked run byte-identically to an uninterrupted one: the completed
// ChunkRecords and report accumulators, the deterministic log prefix, the
// fault injector's draw/replay position, and — when the run traces — the
// full observability state (span tree with its open-frame stack, metrics
// registry).  The file is a line-based text format with a version magic
// and an FNV-1a digest trailer; saves go through write-to-temp + rename
// so a crash mid-write leaves the previous checkpoint intact, and loads
// reject any truncation or tampering with a typed CheckpointError.
//
// Compatibility is checked on three axes before any state is restored:
// the graph digest (same input), an options fingerprint (same semantics —
// deliberately EXCLUDING the host ExecPolicy, which is free to vary), and
// a plan digest over the chunk test counts (same Algorithm 1 output).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "resilience/runner.hpp"
#include "util/error.hpp"

namespace lgg::resilience {

/// Typed checkpoint failure: callers branch on kind() to decide between
/// "cold start" (kMissing) and "refuse / warn then cold start" (the rest).
class CheckpointError : public Error {
 public:
  enum class Kind {
    kMissing = 0,        // no checkpoint file at the path
    kCorrupt = 1,        // truncated, tampered, or unparseable
    kVersion = 2,        // magic / format version mismatch
    kGraphMismatch = 3,  // checkpoint was taken for a different graph
    kPlanMismatch = 4,   // options fingerprint or chunk plan differ
  };

  CheckpointError(Kind kind, const std::string& what)
      : Error(what), kind_(kind) {}
  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

[[nodiscard]] const char* checkpoint_kind_name(
    CheckpointError::Kind k) noexcept;

/// Complete mid-run state of run_resilient at a chunk boundary.
struct Checkpoint {
  // -- compatibility preamble --
  std::uint64_t graph_digest = 0;
  std::uint64_t options_fp = 0;
  std::uint64_t plan_digest = 0;
  std::uint64_t n_chunks = 0;

  // -- resume position: first chunk the resumed run executes --
  std::uint64_t next_chunk = 0;

  // -- report accumulators over chunks [0, next_chunk) --
  std::uint64_t triangles = 0;
  bool exact = true;
  std::uint64_t total_tests = 0;
  double host_time_s = 0.0;
  double camping_sum = 0.0;
  double tps_sum = 0.0;
  std::uint64_t dev_kernels = 0;
  std::uint64_t dev_transactions = 0;
  double dev_kernel_time_s = 0.0;
  std::uint64_t h2d_bytes = 0;
  double h2d_time_s = 0.0;
  std::vector<ChunkRecord> chunks;
  RecoveryStats recovery;
  std::vector<std::uint8_t> sm_lost;
  std::vector<std::uint64_t> job_times_ns;
  std::string log;  // deterministic audit-log prefix

  // -- fault injector position (absent when the run is fault-free) --
  bool has_faults = false;
  std::uint64_t fault_seed = 0;
  FaultInjector::State faults;

  // -- observability snapshot (absent when the run has no session) --
  bool has_obs = false;
  obs::TracerState tracer;
  obs::MetricsState metrics;
};

/// Semantic fingerprint of the options a checkpoint depends on.  The host
/// ExecPolicy is excluded on purpose: the runner's outputs are
/// bit-identical across policies, so a run checkpointed at --threads 1
/// may resume at --threads 8.
[[nodiscard]] std::uint64_t runner_options_fingerprint(
    const RunnerOptions& opts, const gpusim::DeviceSpec& dev);

/// FNV-1a over the per-chunk test counts — pins the Algorithm 1 plan.
[[nodiscard]] std::uint64_t plan_digest_of(
    const std::vector<std::uint64_t>& chunk_tests);

/// Serialize / parse the versioned text format.  decode throws
/// CheckpointError (kCorrupt / kVersion); it never partially fills.
[[nodiscard]] std::string encode_checkpoint(const Checkpoint& c);
[[nodiscard]] Checkpoint decode_checkpoint(std::string_view text);

/// Durable save: write to `path + ".tmp"`, fsync-free rename over `path`.
/// Throws lgg::Error on I/O failure.
void save_checkpoint(const std::string& path, const Checkpoint& c);

/// Load + digest-verify + parse.  Throws CheckpointError: kMissing when
/// the file does not exist, kCorrupt / kVersion from decode.
[[nodiscard]] Checkpoint load_checkpoint(const std::string& path);

// ---- low-level helpers (shared with the serving layer's checkpoint) ----

/// Percent-encode a string into a single whitespace-free token ('%', ' ',
/// control bytes escaped; the empty string encodes as "%-").
[[nodiscard]] std::string ckpt_encode(std::string_view s);
/// Inverse of ckpt_encode; throws CheckpointError(kCorrupt) on bad input.
[[nodiscard]] std::string ckpt_decode(std::string_view tok);

/// FNV-1a 64-bit over a byte string (the digest trailer primitive).
[[nodiscard]] std::uint64_t ckpt_fnv1a(std::string_view bytes);

/// Exact double round-trip via the IEEE-754 bit pattern in hex.
[[nodiscard]] std::string ckpt_double_bits(double v);

/// Write `content` to `path` atomically (temp file + rename).  Throws
/// lgg::Error on I/O failure.
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace lgg::resilience

#include "resilience/fault.hpp"

#include <ostream>

#include "util/error.hpp"
#include "util/prng.hpp"

namespace lgg::resilience {

double FaultRates::rate(gpusim::FaultSite site) const noexcept {
  switch (site) {
    case gpusim::FaultSite::kAlloc:
      return alloc;
    case gpusim::FaultSite::kLaunch:
      return launch;
    case gpusim::FaultSite::kSmAbort:
      return sm_abort;
    case gpusim::FaultSite::kTransfer:
      return transfer;
  }
  return 0.0;
}

FaultInjector::FaultInjector(std::uint64_t seed, const FaultRates& rates)
    : seed_(seed), rates_(rates) {}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : seed_(plan.seed), rates_(plan.rates), replay_(true) {
  for (const FaultEvent& e : plan.events) {
    auto& draws = replay_draws_[static_cast<std::size_t>(e.site)];
    LGG_CHECK(draws.empty() || draws.back() < e.draw,
              "FaultPlan events must be in increasing draw order per site");
    draws.push_back(e.draw);
  }
}

bool FaultInjector::decide(gpusim::FaultSite site, std::uint64_t detail) {
  const auto idx = static_cast<std::size_t>(site);
  const std::uint64_t draw = draws_[idx]++;
  bool fire = false;
  if (replay_) {
    const auto& planned = replay_draws_[idx];
    std::size_t& cursor = replay_cursor_[idx];
    if (cursor < planned.size() && planned[cursor] == draw) {
      fire = true;
      ++cursor;
    }
  } else {
    const double r = rates_.rate(site);
    if (r >= 1.0) {
      fire = true;
    } else if (r > 0.0) {
      // Stateless decision: hash (seed, site, draw).  Two SplitMix64
      // passes decorrelate consecutive draws; >> 11 keeps 53 uniform
      // bits, the uniform01 construction used throughout the repo.
      const std::uint64_t base =
          SplitMix64(seed_ ^ (0xA0761D6478BD642Full * (idx + 1))).next();
      const std::uint64_t bits = SplitMix64(base ^ draw).next();
      const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
      fire = u < r;
    }
  }
  if (fire) {
    ++counts_[idx];
    events_.push_back({site, draw, detail});
  }
  return fire;
}

bool FaultInjector::on_alloc(std::uint64_t bytes) {
  return decide(gpusim::FaultSite::kAlloc, bytes);
}

bool FaultInjector::on_launch(const gpusim::KernelConfig& /*config*/) {
  return decide(gpusim::FaultSite::kLaunch, 0);
}

bool FaultInjector::on_sm_abort(const gpusim::KernelConfig& /*config*/,
                                std::uint32_t sm) {
  return decide(gpusim::FaultSite::kSmAbort, sm);
}

bool FaultInjector::on_transfer(std::uint64_t bytes) {
  return decide(gpusim::FaultSite::kTransfer, bytes);
}

FaultPlan FaultInjector::plan() const { return {seed_, rates_, events_}; }

FaultInjector::State FaultInjector::state() const {
  State s;
  s.draws = draws_;
  s.counts = counts_;
  for (std::size_t i = 0; i < gpusim::kNumFaultSites; ++i)
    s.replay_cursor[i] = replay_cursor_[i];
  s.events = events_;
  return s;
}

void FaultInjector::restore_state(const State& s) {
  draws_ = s.draws;
  counts_ = s.counts;
  for (std::size_t i = 0; i < gpusim::kNumFaultSites; ++i) {
    replay_cursor_[i] = static_cast<std::size_t>(s.replay_cursor[i]);
    LGG_CHECK(!replay_ || replay_cursor_[i] <= replay_draws_[i].size(),
              "FaultInjector::restore_state: replay cursor out of range");
  }
  events_ = s.events;
}

std::ostream& operator<<(std::ostream& os, const FaultEvent& e) {
  return os << gpusim::fault_site_name(e.site) << "@" << e.draw << "("
            << e.detail << ")";
}

}  // namespace lgg::resilience

// Seed-driven fault injection for the simulated device (DESIGN.md §11).
//
// FaultInjector is the gpusim::FaultHook implementation used everywhere:
// each fault site keeps a consultation counter ("draw"), and the decision
// for draw d of site s is a pure hash of (master seed, s, d) compared
// against the configured per-site rate.  Because gpusim consults hooks
// only from host-serial code, the draw sequence — and therefore the whole
// fault pattern — is a function of the workload and the seed alone:
// independent of the host thread count, reproducible across runs, and
// replayable from the recorded (seed, rates, events) FaultPlan.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "gpusim/executor.hpp"
#include "gpusim/fault.hpp"

namespace lgg::resilience {

/// Per-site injection probabilities (0 disables a site, 1 always fires).
struct FaultRates {
  double alloc = 0.0;
  double launch = 0.0;
  double sm_abort = 0.0;
  double transfer = 0.0;

  /// The same rate at every site (the CLI's --faults=rate form).
  [[nodiscard]] static FaultRates uniform(double r) noexcept {
    return {r, r, r, r};
  }
  [[nodiscard]] double rate(gpusim::FaultSite site) const noexcept;
  [[nodiscard]] bool any() const noexcept {
    return alloc > 0.0 || launch > 0.0 || sm_abort > 0.0 || transfer > 0.0;
  }
};

/// One injected fault: site s fired at its draw-th consultation.  `detail`
/// is the byte count (alloc/transfer) or SM index (sm-abort); 0 for
/// launch.  (site, draw) alone identifies the fault for replay.
struct FaultEvent {
  gpusim::FaultSite site = gpusim::FaultSite::kAlloc;
  std::uint64_t draw = 0;
  std::uint64_t detail = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Everything needed to reproduce a faulty run: re-running the same
/// workload with FaultInjector(plan.seed, plan.rates) regenerates exactly
/// plan.events, and FaultInjector(plan) replays the events with no
/// randomness at all (e.g. against a build where the hash changed).
struct FaultPlan {
  std::uint64_t seed = 0;
  FaultRates rates;
  std::vector<FaultEvent> events;
};

class FaultInjector final : public gpusim::FaultHook {
 public:
  /// Random mode: decisions are hashes of (seed, site, draw) against
  /// `rates`; every fired fault is recorded.
  FaultInjector(std::uint64_t seed, const FaultRates& rates);

  /// Replay mode: fire exactly at the (site, draw) pairs of plan.events,
  /// ignoring rates.  Events must be in increasing draw order per site
  /// (the order a random-mode run records them in).
  explicit FaultInjector(const FaultPlan& plan);

  bool on_alloc(std::uint64_t bytes) override;
  bool on_launch(const gpusim::KernelConfig& config) override;
  bool on_sm_abort(const gpusim::KernelConfig& config,
                   std::uint32_t sm) override;
  bool on_transfer(std::uint64_t bytes) override;

  /// All faults fired so far, in firing order.
  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  /// Consultations so far at `site` (fired or not).
  [[nodiscard]] std::uint64_t draws(gpusim::FaultSite site) const noexcept {
    return draws_[static_cast<std::size_t>(site)];
  }
  /// Faults fired so far at `site`.
  [[nodiscard]] std::uint64_t count(gpusim::FaultSite site) const noexcept {
    return counts_[static_cast<std::size_t>(site)];
  }
  [[nodiscard]] std::uint64_t total_faults() const noexcept {
    return events_.size();
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const FaultRates& rates() const noexcept { return rates_; }

  /// Snapshot (seed, rates, events) — feed back into the replay
  /// constructor to reproduce this exact fault pattern.
  [[nodiscard]] FaultPlan plan() const;

  /// Mid-run injector position for checkpoint/restart (DESIGN.md §16):
  /// per-site draw/fire counters, the fired-event log, and the replay
  /// cursors.  Restoring it onto an injector built with the same
  /// seed/rates (or plan) makes the continuation's draw sequence — and
  /// therefore the whole fault pattern — identical to an uninterrupted
  /// run's.
  struct State {
    std::array<std::uint64_t, gpusim::kNumFaultSites> draws{};
    std::array<std::uint64_t, gpusim::kNumFaultSites> counts{};
    std::array<std::uint64_t, gpusim::kNumFaultSites> replay_cursor{};
    std::vector<FaultEvent> events;
  };
  [[nodiscard]] State state() const;
  void restore_state(const State& s);

 private:
  bool decide(gpusim::FaultSite site, std::uint64_t detail);

  std::uint64_t seed_ = 0;
  FaultRates rates_;
  bool replay_ = false;
  std::array<std::uint64_t, gpusim::kNumFaultSites> draws_{};
  std::array<std::uint64_t, gpusim::kNumFaultSites> counts_{};
  std::vector<FaultEvent> events_;
  std::array<std::vector<std::uint64_t>, gpusim::kNumFaultSites> replay_draws_;
  std::array<std::size_t, gpusim::kNumFaultSites> replay_cursor_{};
};

std::ostream& operator<<(std::ostream& os, const FaultEvent& e);

}  // namespace lgg::resilience

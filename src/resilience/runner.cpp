#include "resilience/runner.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "core/als_plan.hpp"
#include "graph/bfs.hpp"
#include "graph/chunking.hpp"
#include "gpusim/calibration.hpp"
#include "gpusim/memory.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace lgg::resilience {

namespace cal = gpusim::calibration;

const char* failover_name(Failover f) noexcept {
  switch (f) {
    case Failover::kOff:
      return "off";
    case Failover::kCpu:
      return "cpu";
    case Failover::kStream:
      return "stream";
  }
  return "?";
}

const char* chunk_outcome_name(ChunkOutcome o) noexcept {
  switch (o) {
    case ChunkOutcome::kGpu:
      return "gpu";
    case ChunkOutcome::kGpuRetried:
      return "gpu-retried";
    case ChunkOutcome::kCpuFailover:
      return "cpu-failover";
    case ChunkOutcome::kStreamFailover:
      return "stream-failover";
    case ChunkOutcome::kFailed:
      return "failed";
  }
  return "?";
}

double RetryPolicy::backoff_s(std::uint32_t retry) const noexcept {
  double b = base_backoff_s;
  for (std::uint32_t i = 0; i < retry && b < max_backoff_s; ++i) b *= 2.0;
  return std::min(b, max_backoff_s);
}

namespace {

/// Streaming recount of a chunk's test space in bounded batches: each
/// batch seeks its start triple with the closed-form decode and scans
/// forward, so the working set never exceeds one batch — the same regime
/// as the external-memory streaming counter, applied per chunk.  Result
/// is identical to count_chunk_cpu.
std::uint64_t count_chunk_stream(const graph::Graph& g,
                                 const core::ChunkWork& work,
                                 std::uint64_t batch_tests) {
  const std::uint64_t batch = std::max<std::uint64_t>(batch_tests, 1);
  std::uint64_t found = 0;
  for (const core::AlsJob& job : work.jobs) {
    for (std::uint64_t start = 0; start < job.tests; start += batch) {
      const std::uint64_t end = std::min(job.tests, start + batch);
      core::TestTriple t = core::als_decode_test(job, start);
      for (std::uint64_t i = start; i < end; ++i) {
        const graph::Vertex u = job.local_to_global[t.x];
        const graph::Vertex v = job.local_to_global[t.y];
        const graph::Vertex w = job.local_to_global[t.z];
        if (g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w)) ++found;
        if (i + 1 < end) {
          const bool more = core::als_advance_test(job, t);
          LGG_ASSERT(more);
        }
      }
    }
  }
  return found;
}

/// Modelled host time for recounting `tests` candidate triples.
double host_count_time_s(std::uint64_t tests) {
  return static_cast<double>(tests) * cal::kCpuCyclesPerTest /
         (cal::kCpuClockGhz * 1e9);
}

}  // namespace

RunnerReport run_resilient(const graph::Graph& g, const RunnerOptions& opts) {
  const gpusim::DeviceSpec& dev =
      opts.device ? *opts.device : gpusim::tesla_c1060();
  const std::uint32_t tpb = opts.threads_per_block;
  LGG_CHECK(tpb >= dev.warp_size && tpb % dev.warp_size == 0,
            "threads_per_block must be a positive multiple of the warp size");

  obs::Scope driver(opts.obs, "resilient/run", "driver");
  if (driver) {
    driver.arg("failover", failover_name(opts.failover));
    driver.arg("max_retries",
               static_cast<std::uint64_t>(opts.retry.max_retries));
    driver.arg("verify", opts.verify);
  }
  // --- Algorithm 1 (or a catalog-resident plan of it) ---
  core::AlsPrecomputed local_plan;
  obs::Scope plan_span(opts.obs, "plan/chunking", "plan");
  if (opts.prepared == nullptr) {
    core::HybridOptions popts;
    popts.device = &dev;
    popts.metric = opts.metric;
    local_plan = core::precompute_als(g, popts);
  }
  const core::AlsPrecomputed& plan =
      opts.prepared != nullptr ? *opts.prepared : local_plan;
  LGG_CHECK(plan.shared_mem_bits == dev.shared_mem_bits() &&
                plan.metric == opts.metric,
            "prepared ALS plan was built for a different device budget or "
            "size metric");
  const graph::ChunkingResult& chunking = plan.chunking;
  const std::size_t n_chunks = chunking.chunks.size();
  const std::vector<core::ChunkWork>& works = plan.works;
  const std::vector<std::uint64_t>& test_sizes = plan.chunk_tests;
  // Resident plans amortize Algorithm 1: charge zero preprocessing.
  const double preprocessing =
      opts.prepared != nullptr ? 0.0 : plan.preprocessing_s;
  plan_span.model_s(preprocessing);
  if (plan_span) {
    plan_span.arg("chunks", static_cast<std::uint64_t>(n_chunks));
    if (opts.prepared != nullptr) plan_span.arg("prepared", true);
  }
  plan_span.close();

  // Always-present record of the retry controller's configuration (so a
  // fault-free trace still carries the retry phase; actual backoff spans
  // appear under the chunks that retried).
  {
    obs::Scope span(opts.obs, "retry/policy", "retry");
    if (span) {
      span.arg("max_retries",
               static_cast<std::uint64_t>(opts.retry.max_retries));
      span.arg("base_backoff_s", opts.retry.base_backoff_s);
      span.arg("max_backoff_s", opts.retry.max_backoff_s);
    }
  }

  // Planned SM per chunk (LPT over test counts): where each chunk WOULD
  // run on the device.  An SM abort during a chunk's attempt is
  // attributed to its planned SM, which is then treated as lost for the
  // final schedule repair.
  const sched::Assignment planned = sched::lpt_schedule(test_sizes, dev.sm_count);

  // Options for the chunk kernel launches (the sim/mem pair is created
  // fresh per attempt; the faults hook rides on those, not on `inner`).
  core::HybridOptions inner;
  inner.device = &dev;
  inner.metric = opts.metric;
  inner.threads_per_block = tpb;
  inner.exec = opts.exec;
  inner.sancheck = opts.sancheck;
  inner.obs = opts.obs;

  RunnerReport report;
  report.exact = true;
  RecoveryStats& stats = report.recovery;
  std::ostringstream log;
  log << "resilient: chunks=" << n_chunks << " device=" << dev.sm_count
      << "sm failover=" << failover_name(opts.failover)
      << " max-retries=" << opts.retry.max_retries
      << " verify=" << (opts.verify ? 1 : 0);
  if (opts.faults != nullptr)
    log << " fault-seed=" << opts.faults->seed();
  log << "\n";

  std::vector<std::uint8_t> sm_lost(dev.sm_count, 0);
  std::vector<std::uint64_t> job_times_ns(n_chunks, 0);
  double host_time_s = 0.0;   // serial host failover work
  double camping_sum = 0.0, tps_sum = 0.0;

  for (std::size_t ci = 0; ci < n_chunks; ++ci) {
    const graph::Chunk& chunk = chunking.chunks[ci];
    const core::ChunkWork& work = works[ci];

    ChunkRecord rec;
    rec.chunk = static_cast<std::uint32_t>(ci);
    rec.tests = work.tests;
    rec.shared_resident = chunk.fits_shared;
    report.total_tests += work.tests;

    if (work.tests == 0) {
      rec.certified = true;
      report.chunks.push_back(rec);
      continue;
    }

    obs::Scope chunk_span(opts.obs,
                          opts.obs != nullptr
                              ? "chunk[" + std::to_string(ci) + "]"
                              : std::string(),
                          "chunk");
    if (chunk_span) {
      chunk_span.arg("tests", work.tests);
      chunk_span.arg("shared_resident", chunk.fits_shared);
    }

    // The chunk's exact count, computed at most once (verification
    // invariant and CPU failover value share it).
    std::optional<std::uint64_t> oracle;
    const auto chunk_oracle = [&]() -> std::uint64_t {
      if (!oracle) oracle = core::count_chunk_cpu(g, work);
      return *oracle;
    };

    const std::uint32_t max_attempts = opts.retry.max_retries + 1;
    bool accepted = false;
    for (std::uint32_t attempt = 0; attempt < max_attempts && !accepted;
         ++attempt) {
      if (attempt > 0) {
        const double b = opts.retry.backoff_s(attempt - 1);
        rec.backoff_s += b;
        stats.backoff_s += b;
        ++stats.retries;
        obs::Scope span(opts.obs, "retry/backoff", "retry");
        span.model_s(b);
        if (span) {
          span.arg("attempt", static_cast<std::uint64_t>(attempt));
          span.arg("backoff_s", b);
        }
        if (opts.obs != nullptr) {
          opts.obs->metrics.count("lgg_resilience_retries_total");
          opts.obs->metrics.count_f("lgg_resilience_backoff_seconds_total",
                                    b);
        }
      }
      ++rec.attempts;

      // Fresh device state per attempt: nothing survives a fault.
      gpusim::DeviceMemory mem(dev, opts.faults);
      const gpusim::Simulator sim(dev, opts.faults);
      try {
        obs::Scope transfer_span(opts.obs, "transfer/h2d", "transfer");
        const gpusim::TransferReport tr =
            sim.transfer(core::chunk_device_bytes(chunk));
        transfer_span.model_s(tr.time_s);
        if (transfer_span) transfer_span.arg("bytes", tr.bytes);
        transfer_span.close();
        obs::record_transfer(opts.obs, tr);
        report.device.host_to_device.bytes += tr.bytes;
        report.device.host_to_device.time_s += tr.time_s;
        if (tr.corrupted) {
          ++rec.corruptions;
          ++rec.faults;
          ++stats.by_site[static_cast<std::size_t>(
              gpusim::FaultSite::kTransfer)];
          if (opts.obs != nullptr)
            opts.obs->metrics.count(
                "lgg_resilience_faults_total", 1,
                "site=\"transfer\"");
        }

        const core::ChunkLaunch launch =
            core::run_chunk_kernel(g, chunk, work, sim, mem, inner);
        LGG_ASSERT(launch.simulated == work.tests);

        std::uint64_t count = launch.triangles;
        // A corrupted staging transfer garbles the adjacency data the
        // kernel probed; model the wrong-but-plausible result with a
        // deterministic perturbation (always != the true count, so the
        // recount invariant is guaranteed to catch it when enabled).
        if (tr.corrupted) count += 1 + tr.bytes % 7;

        if (opts.verify && count != chunk_oracle()) {
          ++stats.corruptions_detected;
          if (opts.obs != nullptr)
            opts.obs->metrics.count(
                "lgg_resilience_corruptions_detected_total");
          continue;  // discard the attempt; retry with backoff
        }

        rec.triangles = count;
        rec.time_s = launch.report.kernel_time_s;
        rec.outcome =
            attempt == 0 ? ChunkOutcome::kGpu : ChunkOutcome::kGpuRetried;
        rec.certified = opts.verify;
        accepted = true;

        ++report.device.kernels;
        report.device.transactions += launch.report.transactions;
        report.device.kernel_time_s += launch.report.kernel_time_s;
        camping_sum += launch.report.camping_factor;
        tps_sum += launch.report.transactions_per_slot();
      } catch (const gpusim::DeviceFault& f) {
        ++rec.faults;
        ++stats.by_site[static_cast<std::size_t>(f.site())];
        if (f.site() == gpusim::FaultSite::kSmAbort)
          sm_lost[planned.machine_of[ci]] = 1;
        if (opts.obs != nullptr)
          opts.obs->metrics.count(
              "lgg_resilience_faults_total", 1,
              std::string("site=\"") + gpusim::fault_site_name(f.site()) +
                  "\"");
      }
    }

    if (!accepted) {
      obs::Scope failover_span(opts.obs,
                               std::string("failover/") +
                                   failover_name(opts.failover),
                               "failover");
      switch (opts.failover) {
        case Failover::kCpu:
          rec.triangles = chunk_oracle();
          rec.outcome = ChunkOutcome::kCpuFailover;
          rec.certified = true;
          rec.time_s = host_count_time_s(work.tests);
          host_time_s += rec.time_s;
          ++stats.cpu_failovers;
          break;
        case Failover::kStream:
          rec.triangles =
              count_chunk_stream(g, work, opts.stream_batch_tests);
          rec.outcome = ChunkOutcome::kStreamFailover;
          rec.certified = true;
          rec.time_s = host_count_time_s(work.tests);
          host_time_s += rec.time_s;
          ++stats.stream_failovers;
          break;
        case Failover::kOff:
          rec.outcome = ChunkOutcome::kFailed;
          ++stats.failed_chunks;
          report.exact = false;
          break;
      }
      if (rec.outcome == ChunkOutcome::kCpuFailover ||
          rec.outcome == ChunkOutcome::kStreamFailover)
        failover_span.model_s(rec.time_s);
      if (opts.obs != nullptr) {
        if (rec.outcome == ChunkOutcome::kFailed) {
          opts.obs->metrics.count("lgg_resilience_failed_chunks_total");
        } else {
          opts.obs->metrics.count(
              "lgg_resilience_failovers_total", 1,
              std::string("kind=\"") + failover_name(opts.failover) + "\"");
        }
      }
    }

    report.triangles += rec.triangles;
    // Only device-executed chunks occupy an SM in the final schedule;
    // failover work runs on the host and is charged serially.
    if (rec.outcome == ChunkOutcome::kGpu ||
        rec.outcome == ChunkOutcome::kGpuRetried)
      job_times_ns[ci] = static_cast<std::uint64_t>(rec.time_s * 1e9);

    log << "chunk " << ci << ": tests=" << rec.tests
        << (rec.shared_resident ? " shared" : " global")
        << " attempts=" << rec.attempts << " faults=" << rec.faults
        << " corruptions=" << rec.corruptions
        << " outcome=" << chunk_outcome_name(rec.outcome)
        << " triangles=" << rec.triangles
        << " certified=" << (rec.certified ? 1 : 0) << "\n";
    if (chunk_span) {
      chunk_span.arg("outcome", chunk_outcome_name(rec.outcome));
      chunk_span.arg("attempts", static_cast<std::uint64_t>(rec.attempts));
    }
    if (opts.obs != nullptr)
      opts.obs->metrics.count(
          "lgg_resilience_chunks_total", 1,
          std::string("outcome=\"") + chunk_outcome_name(rec.outcome) +
              "\"");
    report.chunks.push_back(std::move(rec));
  }

  for (std::size_t s = 0; s < gpusim::kNumFaultSites; ++s)
    stats.faults += stats.by_site[s];
  report.certified = report.exact;
  for (const ChunkRecord& rec : report.chunks)
    if (!rec.certified) report.certified = false;

  // --- Section VI schedule over the device chunks, repaired for loss ---
  obs::Scope sched_span(opts.obs,
                        std::string("schedule/") +
                            core::scheduler_name(opts.scheduler),
                        "schedule");
  switch (opts.scheduler) {
    case core::SchedulerKind::kList:
      report.schedule = sched::list_schedule(job_times_ns, dev.sm_count);
      break;
    case core::SchedulerKind::kLpt:
      report.schedule = sched::lpt_schedule(job_times_ns, dev.sm_count);
      break;
    case core::SchedulerKind::kMultifit:
      report.schedule = sched::multifit_schedule(job_times_ns, dev.sm_count);
      break;
  }
  for (std::uint32_t s = 0; s < dev.sm_count; ++s)
    if (sm_lost[s] != 0) report.lost_sms.push_back(s);
  if (!report.lost_sms.empty() &&
      report.lost_sms.size() < dev.sm_count) {
    report.schedule =
        sched::reassign_after_loss(job_times_ns, report.schedule,
                                   report.lost_sms);
  }
  for (std::size_t ci = 0; ci < report.chunks.size(); ++ci)
    report.chunks[ci].sm = report.schedule.machine_of[ci];
  report.makespan_s = static_cast<double>(report.schedule.makespan) * 1e-9;
  if (sched_span) {
    sched_span.arg("machines", static_cast<std::uint64_t>(dev.sm_count));
    sched_span.arg("lost_sms",
                   static_cast<std::uint64_t>(report.lost_sms.size()));
    sched_span.arg("makespan_s", report.makespan_s);
  }
  sched_span.close();

  // --- end-to-end modelled time ---
  driver.model_s(cal::kDispatchOverheadS + cal::kDeviceInitOverheadS);
  report.total_time_s = preprocessing + report.device.host_to_device.time_s +
                        cal::kDispatchOverheadS + cal::kDeviceInitOverheadS +
                        report.makespan_s + host_time_s + stats.backoff_s;
  report.device.total_time_s = report.total_time_s;
  if (report.device.kernels > 0) {
    report.device.mean_camping_factor =
        camping_sum / static_cast<double>(report.device.kernels);
    report.device.mean_transactions_per_slot =
        tps_sum / static_cast<double>(report.device.kernels);
  }
  report.device.faults_injected = stats.faults;
  report.device.retries = stats.retries;
  report.device.failovers = stats.cpu_failovers + stats.stream_failovers;

  log << "faults:";
  for (std::size_t s = 0; s < gpusim::kNumFaultSites; ++s)
    log << " " << gpusim::fault_site_name(static_cast<gpusim::FaultSite>(s))
        << "=" << stats.by_site[s];
  log << "\n";
  log << "lost-sms:";
  for (const std::uint32_t s : report.lost_sms) log << " " << s;
  log << "\ntotal: triangles=" << report.triangles
      << " exact=" << (report.exact ? 1 : 0)
      << " certified=" << (report.certified ? 1 : 0)
      << " faults=" << stats.faults << " retries=" << stats.retries
      << " corruptions-detected=" << stats.corruptions_detected
      << " cpu-failovers=" << stats.cpu_failovers
      << " stream-failovers=" << stats.stream_failovers
      << " failed=" << stats.failed_chunks << "\n";
  report.log = log.str();
  return report;
}

std::ostream& operator<<(std::ostream& os, const RunnerReport& r) {
  os << "resilient run: " << r.triangles << " triangles over "
     << r.total_tests << " tests, " << r.chunks.size() << " chunk(s), "
     << (r.certified ? "certified exact"
                     : (r.exact ? "exact (uncertified)" : "INEXACT"));
  os << "\n  recovery: " << r.recovery.faults << " fault(s)";
  for (std::size_t s = 0; s < gpusim::kNumFaultSites; ++s)
    if (r.recovery.by_site[s] != 0)
      os << ", " << gpusim::fault_site_name(static_cast<gpusim::FaultSite>(s))
         << " x" << r.recovery.by_site[s];
  os << "; " << r.recovery.retries << " retr"
     << (r.recovery.retries == 1 ? "y" : "ies") << ", "
     << r.recovery.corruptions_detected << " corruption(s) detected, "
     << r.recovery.cpu_failovers + r.recovery.stream_failovers
     << " failover(s), " << r.recovery.failed_chunks << " failed";
  if (!r.lost_sms.empty()) {
    os << "\n  lost SMs:";
    for (const std::uint32_t s : r.lost_sms) os << " " << s;
    os << " (schedule repaired)";
  }
  os << "\n  modelled: makespan " << format_seconds(r.makespan_s)
     << ", backoff " << format_seconds(r.recovery.backoff_s) << ", total "
     << format_seconds(r.total_time_s);
  return os;
}

}  // namespace lgg::resilience

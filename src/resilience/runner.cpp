#include "resilience/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <sstream>

#include "core/als_plan.hpp"
#include "graph/bfs.hpp"
#include "graph/chunking.hpp"
#include "graph/digest.hpp"
#include "gpusim/calibration.hpp"
#include "gpusim/memory.hpp"
#include "resilience/checkpoint.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace lgg::resilience {

namespace cal = gpusim::calibration;

const char* failover_name(Failover f) noexcept {
  switch (f) {
    case Failover::kOff:
      return "off";
    case Failover::kCpu:
      return "cpu";
    case Failover::kStream:
      return "stream";
  }
  return "?";
}

const char* chunk_outcome_name(ChunkOutcome o) noexcept {
  switch (o) {
    case ChunkOutcome::kGpu:
      return "gpu";
    case ChunkOutcome::kGpuRetried:
      return "gpu-retried";
    case ChunkOutcome::kCpuFailover:
      return "cpu-failover";
    case ChunkOutcome::kStreamFailover:
      return "stream-failover";
    case ChunkOutcome::kFailed:
      return "failed";
    case ChunkOutcome::kSalvaged:
      return "salvaged";
  }
  return "?";
}

double RetryPolicy::backoff_s(std::uint32_t retry) const noexcept {
  double b = base_backoff_s;
  for (std::uint32_t i = 0; i < retry && b < max_backoff_s; ++i) b *= 2.0;
  return std::min(b, max_backoff_s);
}

namespace {

/// Streaming recount of a chunk's test space in bounded batches: each
/// batch seeks its start triple with the closed-form decode and scans
/// forward, so the working set never exceeds one batch — the same regime
/// as the external-memory streaming counter, applied per chunk.  Result
/// is identical to count_chunk_cpu.
std::uint64_t count_chunk_stream(const graph::Graph& g,
                                 const core::ChunkWork& work,
                                 std::uint64_t batch_tests) {
  const std::uint64_t batch = std::max<std::uint64_t>(batch_tests, 1);
  std::uint64_t found = 0;
  for (const core::AlsJob& job : work.jobs) {
    for (std::uint64_t start = 0; start < job.tests; start += batch) {
      const std::uint64_t end = std::min(job.tests, start + batch);
      core::TestTriple t = core::als_decode_test(job, start);
      for (std::uint64_t i = start; i < end; ++i) {
        const graph::Vertex u = job.local_to_global[t.x];
        const graph::Vertex v = job.local_to_global[t.y];
        const graph::Vertex w = job.local_to_global[t.z];
        if (g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w)) ++found;
        if (i + 1 < end) {
          const bool more = core::als_advance_test(job, t);
          LGG_ASSERT(more);
        }
      }
    }
  }
  return found;
}

/// Modelled host time for recounting `tests` candidate triples.
double host_count_time_s(std::uint64_t tests) {
  return static_cast<double>(tests) * cal::kCpuCyclesPerTest /
         (cal::kCpuClockGhz * 1e9);
}

struct LostRecount {
  std::uint64_t tests = 0;
  std::uint64_t found = 0;
};

/// Host recount of exactly the tests LOST to an SM abort: every test
/// whose warp — under the chunk kernel's cyclic flat mapping, warp of
/// flat index f is (f mod tpb) / warp_size — had not completed at the
/// abort boundary.  Together with the harvested slots of the completed
/// warps this certifies the chunk: completed-warp replay is pure, so
/// those slots equal a fault-free run's, and the recount covers the
/// complement exactly.
LostRecount recount_lost_tests(const graph::Graph& g,
                               const core::ChunkWork& work,
                               const core::ChunkSalvage& salv,
                               std::uint32_t tpb, std::uint32_t warp_size) {
  LostRecount out;
  for (const core::AlsJob& job : work.jobs) {
    if (job.tests == 0) continue;
    core::TestTriple t = core::als_decode_test(job, 0);
    for (std::uint64_t i = 0; i < job.tests; ++i) {
      const std::uint64_t flat = job.test_offset + i;
      const std::uint64_t warp = (flat % tpb) / warp_size;
      if (salv.warp_done[warp] == 0) {
        ++out.tests;
        const graph::Vertex u = job.local_to_global[t.x];
        const graph::Vertex v = job.local_to_global[t.y];
        const graph::Vertex w = job.local_to_global[t.z];
        if (g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w))
          ++out.found;
      }
      if (i + 1 < job.tests) {
        const bool more = core::als_advance_test(job, t);
        LGG_ASSERT(more);
      }
    }
  }
  return out;
}

/// The chunk loop shared by cold and resumed runs.  `ck` non-null resumes
/// from a validated checkpoint: the (deterministic) plan is recomputed
/// silently, the injector and observability state were captured at the
/// checkpoint boundary, and the loop continues at the first incomplete
/// chunk — everything downstream is byte-identical to an uninterrupted
/// run.
RunnerReport run_impl(const graph::Graph& g, const RunnerOptions& opts,
                      const Checkpoint* ck) {
  const gpusim::DeviceSpec& dev =
      opts.device ? *opts.device : gpusim::tesla_c1060();
  const std::uint32_t tpb = opts.threads_per_block;
  LGG_CHECK(tpb >= dev.warp_size && tpb % dev.warp_size == 0,
            "threads_per_block must be a positive multiple of the warp size");

  // A resumed run's tracer snapshot already holds the open driver frame
  // and the plan/retry-policy spans, so those are cold-run only (their
  // sessions are null on resume; the plan itself is still recomputed).
  obs::Session* cold_obs = ck == nullptr ? opts.obs : nullptr;
  std::optional<obs::Scope> driver;
  driver.emplace(cold_obs, "resilient/run", "driver");
  if (*driver) {
    driver->arg("failover", failover_name(opts.failover));
    driver->arg("max_retries",
                static_cast<std::uint64_t>(opts.retry.max_retries));
    driver->arg("verify", opts.verify);
  }
  // --- Algorithm 1 (or a catalog-resident plan of it) ---
  core::AlsPrecomputed local_plan;
  obs::Scope plan_span(cold_obs, "plan/chunking", "plan");
  if (opts.prepared == nullptr) {
    core::HybridOptions popts;
    popts.device = &dev;
    popts.metric = opts.metric;
    local_plan = core::precompute_als(g, popts);
  }
  const core::AlsPrecomputed& plan =
      opts.prepared != nullptr ? *opts.prepared : local_plan;
  LGG_CHECK(plan.shared_mem_bits == dev.shared_mem_bits() &&
                plan.metric == opts.metric,
            "prepared ALS plan was built for a different device budget or "
            "size metric");
  const graph::ChunkingResult& chunking = plan.chunking;
  const std::size_t n_chunks = chunking.chunks.size();
  const std::vector<core::ChunkWork>& works = plan.works;
  const std::vector<std::uint64_t>& test_sizes = plan.chunk_tests;
  // Resident plans amortize Algorithm 1: charge zero preprocessing.
  const double preprocessing =
      opts.prepared != nullptr ? 0.0 : plan.preprocessing_s;
  plan_span.model_s(preprocessing);
  if (plan_span) {
    plan_span.arg("chunks", static_cast<std::uint64_t>(n_chunks));
    if (opts.prepared != nullptr) plan_span.arg("prepared", true);
  }
  plan_span.close();

  // Checkpoint compatibility + state restore (after the plan exists, so
  // a plan mismatch is rejected BEFORE the session or injector mutate).
  if (ck != nullptr) {
    if (ck->n_chunks != n_chunks ||
        ck->plan_digest != plan_digest_of(test_sizes))
      throw CheckpointError(
          CheckpointError::Kind::kPlanMismatch,
          "checkpointed chunk plan does not match this run's plan");
    if (ck->chunks.size() != ck->next_chunk || ck->next_chunk > n_chunks ||
        ck->sm_lost.size() != dev.sm_count ||
        ck->job_times_ns.size() != n_chunks)
      throw CheckpointError(
          CheckpointError::Kind::kCorrupt,
          "checkpoint state sizes inconsistent with the plan");
    if (opts.faults != nullptr) opts.faults->restore_state(ck->faults);
    if (opts.obs != nullptr) {
      opts.obs->tracer.restore(ck->tracer);
      opts.obs->metrics.restore(ck->metrics);
    }
  }

  // Always-present record of the retry controller's configuration (so a
  // fault-free trace still carries the retry phase; actual backoff spans
  // appear under the chunks that retried).
  {
    obs::Scope span(cold_obs, "retry/policy", "retry");
    if (span) {
      span.arg("max_retries",
               static_cast<std::uint64_t>(opts.retry.max_retries));
      span.arg("base_backoff_s", opts.retry.base_backoff_s);
      span.arg("max_backoff_s", opts.retry.max_backoff_s);
    }
  }

  // Planned SM per chunk (LPT over test counts): where each chunk WOULD
  // run on the device.  An SM abort during a chunk's attempt is
  // attributed to its planned SM, which is then treated as lost for the
  // final schedule repair.
  const sched::Assignment planned = sched::lpt_schedule(test_sizes, dev.sm_count);

  // Options for the chunk kernel launches (the sim/mem pair is created
  // fresh per attempt; the faults hook rides on those, not on `inner`).
  core::HybridOptions inner;
  inner.device = &dev;
  inner.metric = opts.metric;
  inner.threads_per_block = tpb;
  inner.exec = opts.exec;
  inner.sancheck = opts.sancheck;
  inner.obs = opts.obs;
  inner.prof = opts.prof;

  RunnerReport report;
  report.exact = true;
  RecoveryStats& stats = report.recovery;
  std::ostringstream log;
  std::vector<std::uint8_t> sm_lost(dev.sm_count, 0);
  std::vector<std::uint64_t> job_times_ns(n_chunks, 0);
  double host_time_s = 0.0;   // serial host failover/salvage work
  double camping_sum = 0.0, tps_sum = 0.0;
  std::size_t first_chunk = 0;

  if (ck != nullptr) {
    report.triangles = ck->triangles;
    report.exact = ck->exact;
    report.total_tests = ck->total_tests;
    report.chunks = ck->chunks;
    stats = ck->recovery;
    report.device.kernels = ck->dev_kernels;
    report.device.transactions = ck->dev_transactions;
    report.device.kernel_time_s = ck->dev_kernel_time_s;
    report.device.host_to_device.bytes = ck->h2d_bytes;
    report.device.host_to_device.time_s = ck->h2d_time_s;
    sm_lost = ck->sm_lost;
    job_times_ns = ck->job_times_ns;
    host_time_s = ck->host_time_s;
    camping_sum = ck->camping_sum;
    tps_sum = ck->tps_sum;
    log << ck->log;
    first_chunk = static_cast<std::size_t>(ck->next_chunk);
  } else {
    log << "resilient: chunks=" << n_chunks << " device=" << dev.sm_count
        << "sm failover=" << failover_name(opts.failover)
        << " max-retries=" << opts.retry.max_retries
        << " verify=" << (opts.verify ? 1 : 0);
    if (opts.faults != nullptr)
      log << " fault-seed=" << opts.faults->seed();
    log << "\n";
  }

  // Durable checkpoint cadence.  The counter starts at zero both on cold
  // start and on resume: a resumed run begins exactly at a checkpoint
  // boundary, so the write pattern — and the checkpoint spans/counters it
  // leaves in the trace — matches an uninterrupted run's.
  const bool checkpointing = !opts.checkpoint_path.empty();
  const std::uint32_t ckpt_every =
      std::max<std::uint32_t>(opts.checkpoint_every_chunks, 1);
  std::uint32_t since_ckpt = 0;
  const std::uint64_t graph_dig = checkpointing ? graph::graph_digest(g) : 0;
  const std::uint64_t options_fp =
      checkpointing ? runner_options_fingerprint(opts, dev) : 0;
  const std::uint64_t plan_dig =
      checkpointing ? plan_digest_of(test_sizes) : 0;

  for (std::size_t ci = first_chunk; ci < n_chunks; ++ci) {
    const graph::Chunk& chunk = chunking.chunks[ci];
    const core::ChunkWork& work = works[ci];

    ChunkRecord rec;
    rec.chunk = static_cast<std::uint32_t>(ci);
    rec.tests = work.tests;
    rec.shared_resident = chunk.fits_shared;
    report.total_tests += work.tests;

    if (work.tests == 0) {
      rec.certified = true;
      report.chunks.push_back(rec);
    } else {
      obs::Scope chunk_span(opts.obs,
                            opts.obs != nullptr
                                ? "chunk[" + std::to_string(ci) + "]"
                                : std::string(),
                            "chunk");
      if (chunk_span) {
        chunk_span.arg("tests", work.tests);
        chunk_span.arg("shared_resident", chunk.fits_shared);
      }

      // The chunk's exact count, computed at most once (verification
      // invariant and CPU failover value share it).
      std::optional<std::uint64_t> oracle;
      const auto chunk_oracle = [&]() -> std::uint64_t {
        if (!oracle) oracle = core::count_chunk_cpu(g, work);
        return *oracle;
      };

      const std::uint32_t max_attempts = opts.retry.max_retries + 1;
      bool accepted = false;
      for (std::uint32_t attempt = 0; attempt < max_attempts && !accepted;
           ++attempt) {
        if (attempt > 0) {
          const double b = opts.retry.backoff_s(attempt - 1);
          rec.backoff_s += b;
          stats.backoff_s += b;
          ++stats.retries;
          obs::Scope span(opts.obs, "retry/backoff", "retry");
          span.model_s(b);
          if (span) {
            span.arg("attempt", static_cast<std::uint64_t>(attempt));
            span.arg("backoff_s", b);
          }
          if (opts.obs != nullptr) {
            opts.obs->metrics.count("lgg_resilience_retries_total");
            opts.obs->metrics.count_f("lgg_resilience_backoff_seconds_total",
                                      b);
          }
        }
        ++rec.attempts;

        // Fresh device state per attempt: nothing survives a fault.
        gpusim::DeviceMemory mem(dev, opts.faults);
        const gpusim::Simulator sim(dev, opts.faults);
        core::ChunkSalvage salv;
        bool attempt_corrupted = false;
        try {
          obs::Scope transfer_span(opts.obs, "transfer/h2d", "transfer");
          const gpusim::TransferReport tr =
              sim.transfer(core::chunk_device_bytes(chunk));
          transfer_span.model_s(tr.time_s);
          if (transfer_span) transfer_span.arg("bytes", tr.bytes);
          transfer_span.close();
          obs::record_transfer(opts.obs, tr);
          report.device.host_to_device.bytes += tr.bytes;
          report.device.host_to_device.time_s += tr.time_s;
          attempt_corrupted = tr.corrupted;
          if (tr.corrupted) {
            ++rec.corruptions;
            ++rec.faults;
            ++stats.by_site[static_cast<std::size_t>(
                gpusim::FaultSite::kTransfer)];
            if (opts.obs != nullptr)
              opts.obs->metrics.count(
                  "lgg_resilience_faults_total", 1,
                  "site=\"transfer\"");
          }

          const core::ChunkLaunch launch = core::run_chunk_kernel(
              g, chunk, work, sim, mem, inner,
              opts.salvage ? &salv : nullptr);
          LGG_ASSERT(launch.simulated == work.tests);

          std::uint64_t count = launch.triangles;
          // A corrupted staging transfer garbles the adjacency data the
          // kernel probed; model the wrong-but-plausible result with a
          // deterministic perturbation (always != the true count, so the
          // recount invariant is guaranteed to catch it when enabled).
          if (tr.corrupted) count += 1 + tr.bytes % 7;

          if (opts.verify && count != chunk_oracle()) {
            ++stats.corruptions_detected;
            if (opts.obs != nullptr)
              opts.obs->metrics.count(
                  "lgg_resilience_corruptions_detected_total");
            continue;  // discard the attempt; retry with backoff
          }

          rec.triangles = count;
          rec.time_s = launch.report.kernel_time_s;
          rec.outcome =
              attempt == 0 ? ChunkOutcome::kGpu : ChunkOutcome::kGpuRetried;
          rec.certified = opts.verify;
          accepted = true;

          ++report.device.kernels;
          report.device.transactions += launch.report.transactions;
          report.device.kernel_time_s += launch.report.kernel_time_s;
          camping_sum += launch.report.camping_factor;
          tps_sum += launch.report.transactions_per_slot();
        } catch (const gpusim::DeviceFault& f) {
          ++rec.faults;
          ++stats.by_site[static_cast<std::size_t>(f.site())];
          if (f.site() == gpusim::FaultSite::kSmAbort)
            sm_lost[planned.machine_of[ci]] = 1;
          if (opts.obs != nullptr)
            opts.obs->metrics.count(
                "lgg_resilience_faults_total", 1,
                std::string("site=\"") + gpusim::fault_site_name(f.site()) +
                    "\"");

          // Partial-result salvage (DESIGN.md §16): the abort boundary
          // partitioned the warps; keep the completed warps' harvested
          // slots and host-recount only the lost remainder.  Skipped
          // when the attempt's staging transfer was corrupted — the
          // completed warps then probed garbled data, so nothing from
          // the attempt is trustworthy.
          if (f.site() == gpusim::FaultSite::kSmAbort && opts.salvage &&
              !attempt_corrupted && salv.warps_total > 0 &&
              salv.warps_completed > 0) {
            const LostRecount lost =
                recount_lost_tests(g, work, salv, tpb, dev.warp_size);
            LGG_ASSERT(salv.simulated + lost.tests == work.tests);
            rec.triangles = salv.triangles + lost.found;
            rec.outcome = ChunkOutcome::kSalvaged;
            rec.certified = true;
            rec.salvaged_warps = salv.warps_completed;
            rec.salvaged_tests = salv.simulated;
            rec.recounted_tests = lost.tests;
            rec.time_s = host_count_time_s(lost.tests);
            host_time_s += rec.time_s;
            stats.salvaged_warps += rec.salvaged_warps;
            stats.salvaged_tests += rec.salvaged_tests;
            stats.recounted_tests += rec.recounted_tests;
            accepted = true;
            obs::Scope span(opts.obs, "salvage/recount", "salvage");
            span.model_s(rec.time_s);
            if (span) {
              span.arg("salvaged_warps", rec.salvaged_warps);
              span.arg("salvaged_tests", rec.salvaged_tests);
              span.arg("recounted_tests", rec.recounted_tests);
            }
            if (opts.obs != nullptr) {
              opts.obs->metrics.count("lgg_resilience_salvaged_warps_total",
                                      rec.salvaged_warps);
              opts.obs->metrics.count("lgg_resilience_salvaged_tests_total",
                                      rec.salvaged_tests);
              opts.obs->metrics.count(
                  "lgg_resilience_recounted_tests_total",
                  rec.recounted_tests);
            }
          }
        }
      }

      if (!accepted) {
        obs::Scope failover_span(opts.obs,
                                 std::string("failover/") +
                                     failover_name(opts.failover),
                                 "failover");
        switch (opts.failover) {
          case Failover::kCpu:
            rec.triangles = chunk_oracle();
            rec.outcome = ChunkOutcome::kCpuFailover;
            rec.certified = true;
            rec.time_s = host_count_time_s(work.tests);
            host_time_s += rec.time_s;
            ++stats.cpu_failovers;
            break;
          case Failover::kStream:
            rec.triangles =
                count_chunk_stream(g, work, opts.stream_batch_tests);
            rec.outcome = ChunkOutcome::kStreamFailover;
            rec.certified = true;
            rec.time_s = host_count_time_s(work.tests);
            host_time_s += rec.time_s;
            ++stats.stream_failovers;
            break;
          case Failover::kOff:
            rec.outcome = ChunkOutcome::kFailed;
            ++stats.failed_chunks;
            report.exact = false;
            break;
        }
        if (rec.outcome == ChunkOutcome::kCpuFailover ||
            rec.outcome == ChunkOutcome::kStreamFailover)
          failover_span.model_s(rec.time_s);
        if (opts.obs != nullptr) {
          if (rec.outcome == ChunkOutcome::kFailed) {
            opts.obs->metrics.count("lgg_resilience_failed_chunks_total");
          } else {
            opts.obs->metrics.count(
                "lgg_resilience_failovers_total", 1,
                std::string("kind=\"") + failover_name(opts.failover) + "\"");
          }
        }
      }

      report.triangles += rec.triangles;
      // Only device-executed chunks occupy an SM in the final schedule;
      // failover and salvage-recount work runs on the host and is charged
      // serially.
      if (rec.outcome == ChunkOutcome::kGpu ||
          rec.outcome == ChunkOutcome::kGpuRetried)
        job_times_ns[ci] = static_cast<std::uint64_t>(rec.time_s * 1e9);

      log << "chunk " << ci << ": tests=" << rec.tests
          << (rec.shared_resident ? " shared" : " global")
          << " attempts=" << rec.attempts << " faults=" << rec.faults
          << " corruptions=" << rec.corruptions
          << " outcome=" << chunk_outcome_name(rec.outcome)
          << " triangles=" << rec.triangles
          << " certified=" << (rec.certified ? 1 : 0);
      if (rec.outcome == ChunkOutcome::kSalvaged)
        log << " salvaged-warps=" << rec.salvaged_warps
            << " salvaged-tests=" << rec.salvaged_tests
            << " recounted-tests=" << rec.recounted_tests;
      log << "\n";
      if (chunk_span) {
        chunk_span.arg("outcome", chunk_outcome_name(rec.outcome));
        chunk_span.arg("attempts", static_cast<std::uint64_t>(rec.attempts));
      }
      if (opts.obs != nullptr)
        opts.obs->metrics.count(
            "lgg_resilience_chunks_total", 1,
            std::string("outcome=\"") + chunk_outcome_name(rec.outcome) +
                "\"");
      report.chunks.push_back(std::move(rec));
    }

    // Durable checkpoint at the cadence boundary (never after the final
    // chunk — the finished run deletes the file anyway).  The write span
    // and counter are part of the deterministic trace: the uninterrupted
    // reference run checkpoints at the same boundaries, so a resumed
    // run's outputs still match it byte-for-byte.  The observability
    // snapshot is taken AFTER the span closes and the counter bumps, so
    // the restored state already contains this write's own footprint.
    if (checkpointing && ++since_ckpt == ckpt_every && ci + 1 < n_chunks) {
      since_ckpt = 0;
      {
        obs::Scope span(opts.obs, "checkpoint/write", "checkpoint");
        if (span) span.arg("chunk", static_cast<std::uint64_t>(ci));
      }
      if (opts.obs != nullptr)
        opts.obs->metrics.count("lgg_resilience_checkpoints_total");
      Checkpoint c;
      c.graph_digest = graph_dig;
      c.options_fp = options_fp;
      c.plan_digest = plan_dig;
      c.n_chunks = n_chunks;
      c.next_chunk = ci + 1;
      c.triangles = report.triangles;
      c.exact = report.exact;
      c.total_tests = report.total_tests;
      c.host_time_s = host_time_s;
      c.camping_sum = camping_sum;
      c.tps_sum = tps_sum;
      c.dev_kernels = report.device.kernels;
      c.dev_transactions = report.device.transactions;
      c.dev_kernel_time_s = report.device.kernel_time_s;
      c.h2d_bytes = report.device.host_to_device.bytes;
      c.h2d_time_s = report.device.host_to_device.time_s;
      c.chunks = report.chunks;
      c.recovery = stats;
      c.sm_lost = sm_lost;
      c.job_times_ns = job_times_ns;
      c.log = log.str();
      if (opts.faults != nullptr) {
        c.has_faults = true;
        c.fault_seed = opts.faults->seed();
        c.faults = opts.faults->state();
      }
      if (opts.obs != nullptr) {
        c.has_obs = true;
        c.tracer = opts.obs->tracer.state();
        c.metrics = opts.obs->metrics.state();
      }
      save_checkpoint(opts.checkpoint_path, c);
      if (opts.on_checkpoint)
        opts.on_checkpoint(static_cast<std::uint32_t>(ci));
    }
  }

  for (std::size_t s = 0; s < gpusim::kNumFaultSites; ++s)
    stats.faults += stats.by_site[s];
  report.certified = report.exact;
  for (const ChunkRecord& rec : report.chunks)
    if (!rec.certified) report.certified = false;

  // --- Section VI schedule over the device chunks, repaired for loss ---
  obs::Scope sched_span(opts.obs,
                        std::string("schedule/") +
                            core::scheduler_name(opts.scheduler),
                        "schedule");
  switch (opts.scheduler) {
    case core::SchedulerKind::kList:
      report.schedule = sched::list_schedule(job_times_ns, dev.sm_count);
      break;
    case core::SchedulerKind::kLpt:
      report.schedule = sched::lpt_schedule(job_times_ns, dev.sm_count);
      break;
    case core::SchedulerKind::kMultifit:
      report.schedule = sched::multifit_schedule(job_times_ns, dev.sm_count);
      break;
  }
  for (std::uint32_t s = 0; s < dev.sm_count; ++s)
    if (sm_lost[s] != 0) report.lost_sms.push_back(s);
  if (!report.lost_sms.empty() &&
      report.lost_sms.size() < dev.sm_count) {
    report.schedule =
        sched::reassign_after_loss(job_times_ns, report.schedule,
                                   report.lost_sms);
  }
  for (std::size_t ci = 0; ci < report.chunks.size(); ++ci)
    report.chunks[ci].sm = report.schedule.machine_of[ci];
  report.makespan_s = static_cast<double>(report.schedule.makespan) * 1e-9;
  if (sched_span) {
    sched_span.arg("machines", static_cast<std::uint64_t>(dev.sm_count));
    sched_span.arg("lost_sms",
                   static_cast<std::uint64_t>(report.lost_sms.size()));
    sched_span.arg("makespan_s", report.makespan_s);
  }
  sched_span.close();

  // --- end-to-end modelled time ---
  // On resume the restored driver frame takes the charge directly (the
  // cold-run Scope is a null-session no-op there).
  driver->model_s(cal::kDispatchOverheadS + cal::kDeviceInitOverheadS);
  if (ck != nullptr && opts.obs != nullptr)
    opts.obs->tracer.charge_s(cal::kDispatchOverheadS +
                              cal::kDeviceInitOverheadS);
  report.total_time_s = preprocessing + report.device.host_to_device.time_s +
                        cal::kDispatchOverheadS + cal::kDeviceInitOverheadS +
                        report.makespan_s + host_time_s + stats.backoff_s;
  report.device.total_time_s = report.total_time_s;
  if (report.device.kernels > 0) {
    report.device.mean_camping_factor =
        camping_sum / static_cast<double>(report.device.kernels);
    report.device.mean_transactions_per_slot =
        tps_sum / static_cast<double>(report.device.kernels);
  }
  report.device.faults_injected = stats.faults;
  report.device.retries = stats.retries;
  report.device.failovers = stats.cpu_failovers + stats.stream_failovers;

  log << "faults:";
  for (std::size_t s = 0; s < gpusim::kNumFaultSites; ++s)
    log << " " << gpusim::fault_site_name(static_cast<gpusim::FaultSite>(s))
        << "=" << stats.by_site[s];
  log << "\n";
  if (stats.salvaged_warps != 0)
    log << "salvage: warps=" << stats.salvaged_warps
        << " tests=" << stats.salvaged_tests
        << " recounted=" << stats.recounted_tests << "\n";
  log << "lost-sms:";
  for (const std::uint32_t s : report.lost_sms) log << " " << s;
  log << "\ntotal: triangles=" << report.triangles
      << " exact=" << (report.exact ? 1 : 0)
      << " certified=" << (report.certified ? 1 : 0)
      << " faults=" << stats.faults << " retries=" << stats.retries
      << " corruptions-detected=" << stats.corruptions_detected
      << " cpu-failovers=" << stats.cpu_failovers
      << " stream-failovers=" << stats.stream_failovers
      << " failed=" << stats.failed_chunks << "\n";
  report.log = log.str();

  // The run completed: the checkpoint has served its purpose.
  if (checkpointing) std::remove(opts.checkpoint_path.c_str());
  // Resume path: close the restored driver frame (the cold path's Scope
  // closes its own span on destruction).
  if (ck != nullptr && opts.obs != nullptr)
    opts.obs->tracer.end(opts.obs->tracer.open_top());
  return report;
}

}  // namespace

RunnerReport run_resilient(const graph::Graph& g, const RunnerOptions& opts) {
  return run_impl(g, opts, nullptr);
}

RunnerReport resume_resilient(const graph::Graph& g,
                              const RunnerOptions& opts) {
  LGG_CHECK(!opts.checkpoint_path.empty(),
            "resume_resilient requires RunnerOptions::checkpoint_path");
  const gpusim::DeviceSpec& dev =
      opts.device ? *opts.device : gpusim::tesla_c1060();
  const Checkpoint ck = load_checkpoint(opts.checkpoint_path);
  const std::uint64_t gd = graph::graph_digest(g);
  if (ck.graph_digest != gd)
    throw CheckpointError(
        CheckpointError::Kind::kGraphMismatch,
        "checkpoint was taken for a different graph (digest " +
            graph::digest_hex(ck.graph_digest) + ", this graph is " +
            graph::digest_hex(gd) + ")");
  if (ck.options_fp != runner_options_fingerprint(opts, dev))
    throw CheckpointError(
        CheckpointError::Kind::kPlanMismatch,
        "checkpointed options fingerprint does not match this run's "
        "options");
  if (ck.has_faults != (opts.faults != nullptr) ||
      (ck.has_faults && ck.fault_seed != opts.faults->seed()))
    throw CheckpointError(
        CheckpointError::Kind::kPlanMismatch,
        "fault injector configuration differs from the checkpointed run");
  if (ck.has_obs != (opts.obs != nullptr))
    throw CheckpointError(
        CheckpointError::Kind::kPlanMismatch,
        "observability session presence differs from the checkpointed run");
  return run_impl(g, opts, &ck);
}

std::ostream& operator<<(std::ostream& os, const RunnerReport& r) {
  os << "resilient run: " << r.triangles << " triangles over "
     << r.total_tests << " tests, " << r.chunks.size() << " chunk(s), "
     << (r.certified ? "certified exact"
                     : (r.exact ? "exact (uncertified)" : "INEXACT"));
  os << "\n  recovery: " << r.recovery.faults << " fault(s)";
  for (std::size_t s = 0; s < gpusim::kNumFaultSites; ++s)
    if (r.recovery.by_site[s] != 0)
      os << ", " << gpusim::fault_site_name(static_cast<gpusim::FaultSite>(s))
         << " x" << r.recovery.by_site[s];
  os << "; " << r.recovery.retries << " retr"
     << (r.recovery.retries == 1 ? "y" : "ies") << ", "
     << r.recovery.corruptions_detected << " corruption(s) detected, "
     << r.recovery.cpu_failovers + r.recovery.stream_failovers
     << " failover(s), " << r.recovery.failed_chunks << " failed";
  if (r.recovery.salvaged_warps != 0)
    os << "\n  salvage: " << r.recovery.salvaged_warps << " warp(s) kept ("
       << r.recovery.salvaged_tests << " test(s)), "
       << r.recovery.recounted_tests << " test(s) recounted";
  if (!r.lost_sms.empty()) {
    os << "\n  lost SMs:";
    for (const std::uint32_t s : r.lost_sms) os << " " << s;
    os << " (schedule repaired)";
  }
  os << "\n  modelled: makespan " << format_seconds(r.makespan_s)
     << ", backoff " << format_seconds(r.recovery.backoff_s) << ", total "
     << format_seconds(r.total_time_s);
  return os;
}

}  // namespace lgg::resilience

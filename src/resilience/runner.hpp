// Resilient chunked execution (DESIGN.md §11).
//
// The paper's chunk decomposition (Algorithm 1) is exactly the granularity
// at which real GPU runs fail and recover: each chunk's ALS test space is
// independent, so a failed chunk can be retried — or handed to a host
// fallback — without touching the rest of the run.  run_resilient executes
// the hybrid pipeline's chunk schedule as independently retryable units:
//
//   per chunk: fresh DeviceMemory + Simulator (faults installed) ->
//     transfer (corruption flagged) -> chunk kernel -> per-chunk CPU
//     recount invariant -> accept,
//   on DeviceFault / detected corruption: bounded deterministic
//     exponential backoff, then retry (fresh attempt, nothing reused),
//   after max_retries: graceful degradation to the CPU oracle or the
//     bounded-batch streaming recount (or give up, failover=off),
//   afterwards: SMs that aborted are treated as lost and the chunk
//     schedule is repaired with sched::reassign_after_loss.
//
// Determinism: the chunk loop is serial (each chunk's inner simulation
// still uses the configured ExecPolicy), fault decisions are pure hashes
// of (seed, site, draw), and backoff is accounted in modelled time, not
// slept.  The report's `log` therefore carries no timing and is
// byte-identical across host thread counts for a fixed injector seed.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/hybrid.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/report.hpp"
#include "graph/graph.hpp"
#include "resilience/fault.hpp"
#include "sancheck/sancheck.hpp"
#include "sched/makespan.hpp"

namespace lgg::resilience {

/// What happens to a chunk that exhausts its device retries.
enum class Failover : int {
  kOff = 0,     // give up: the run is marked inexact
  kCpu = 1,     // exact CPU oracle over the chunk's test space
  kStream = 2,  // bounded-batch streaming recount (oversized chunks)
};

[[nodiscard]] const char* failover_name(Failover f) noexcept;

/// How a chunk's final count was produced.
enum class ChunkOutcome : int {
  kGpu = 0,             // first device attempt succeeded
  kGpuRetried = 1,      // device succeeded after >= 1 retry
  kCpuFailover = 2,     // device gave up; CPU oracle
  kStreamFailover = 3,  // device gave up; streaming batches
  kFailed = 4,          // device gave up and failover was off
  kSalvaged = 5,        // SM abort: completed warps kept, rest recounted
};

[[nodiscard]] const char* chunk_outcome_name(ChunkOutcome o) noexcept;

/// Bounded deterministic exponential backoff between device attempts.
/// Accounted in modelled time (never slept): retrying is not free on real
/// hardware, and charging it keeps the time model honest.
struct RetryPolicy {
  std::uint32_t max_retries = 3;   // device attempts = max_retries + 1
  double base_backoff_s = 1e-3;    // before the first retry
  double max_backoff_s = 0.25;     // cap (bounded backoff)

  /// Backoff charged before retry number `retry` (0-based):
  /// min(base * 2^retry, max).
  [[nodiscard]] double backoff_s(std::uint32_t retry) const noexcept;
};

struct RunnerOptions {
  /// Device to simulate; nullptr selects the paper's C1060.
  const gpusim::DeviceSpec* device = nullptr;
  graph::SizeMetric metric = graph::SizeMetric::kSutm;
  std::uint32_t threads_per_block = 128;
  core::SchedulerKind scheduler = core::SchedulerKind::kLpt;
  /// Host-side simulator execution policy (report is bit-identical
  /// across policies, including the fault pattern and the log).
  gpusim::ExecPolicy exec;
  sancheck::SancheckMode sancheck = sancheck::SancheckMode::kOff;
  /// Fault injector (non-owning); nullptr runs fault-free (the runner
  /// then degenerates to a verified hybrid run).
  FaultInjector* faults = nullptr;
  RetryPolicy retry;
  Failover failover = Failover::kCpu;
  /// Per-chunk CPU recount invariant: catches silent transfer corruption
  /// and certifies every device count.  Off = trust the device (corrupted
  /// transfers then go undetected; the report is not certified).
  bool verify = true;
  /// Streaming failover batch size, in tests per batch (bounds the
  /// working set of the kStream path).
  std::uint64_t stream_batch_tests = 1u << 16;
  /// Optional observability session: chunk/retry/failover/schedule spans
  /// plus resilience counters (DESIGN.md §12).  Forwarded to the chunk
  /// kernel launches, which contribute their own launch spans and gpusim
  /// counters.  Spans and metrics are byte-identical across ExecPolicies,
  /// like the log.
  obs::Session* obs = nullptr;
  /// Optional profiler hook (non-owning), forwarded to every chunk kernel
  /// launch (DESIGN.md §17).  Launches of retried / discarded attempts
  /// are profiled too — the attempt sequence is deterministic, so the
  /// profile stream still is.  Not part of the checkpoint fingerprint.
  gpusim::ProfilerHook* prof = nullptr;
  /// Optional precomputed Algorithm 1 plan (non-owning; see
  /// core::precompute_als).  When set, the runner skips chunking / level
  /// decomposition / per-chunk ALS work and charges ZERO modelled
  /// preprocessing — the resident-graph amortization (DESIGN.md §15).
  const core::AlsPrecomputed* prepared = nullptr;
  /// Partial-result salvage on SM abort (DESIGN.md §16): keep the output
  /// slots of warps that completed before the abort boundary (their
  /// replay is pure, so the slots equal a fault-free run's) and recount
  /// only the lost remainder on the host.  The chunk is then certified
  /// without a device retry.  Applies only to untruncated chunks whose
  /// staging transfer was clean.
  bool salvage = true;
  /// Durable checkpointing (DESIGN.md §16): when non-empty, the runner
  /// serializes its complete mid-run state to this path (write-to-temp +
  /// rename) every `checkpoint_every_chunks` chunk boundaries, and
  /// removes the file once the run completes.  resume_resilient continues
  /// from the first incomplete chunk with final outputs byte-identical to
  /// an uninterrupted run's.
  std::string checkpoint_path;
  std::uint32_t checkpoint_every_chunks = 1;
  /// Test/chaos hook invoked after each durable checkpoint write with the
  /// index of the last completed chunk (the kill-resume harness uses it
  /// to die at a precise boundary).
  std::function<void(std::uint32_t)> on_checkpoint;
};

/// Per-chunk accounting.
struct ChunkRecord {
  std::uint32_t chunk = 0;
  std::uint64_t tests = 0;
  std::uint64_t triangles = 0;
  bool shared_resident = false;
  ChunkOutcome outcome = ChunkOutcome::kGpu;
  std::uint32_t attempts = 0;     // device attempts made (0: empty chunk)
  std::uint32_t faults = 0;       // device faults + corruptions hit
  std::uint32_t corruptions = 0;  // corrupted transfers detected
  bool certified = false;         // recounted on CPU or computed there
  double backoff_s = 0.0;         // modelled backoff charged
  double time_s = 0.0;            // modelled job time of the final attempt
  std::uint32_t sm = 0;           // machine after any loss reassignment
  // Salvage accounting (outcome == kSalvaged only): tests whose device
  // results were kept vs tests recounted on the host; the two always sum
  // to `tests`.
  std::uint64_t salvaged_warps = 0;
  std::uint64_t salvaged_tests = 0;
  std::uint64_t recounted_tests = 0;
};

/// Whole-run recovery totals.  by_site matches the injector's FaultPlan
/// restricted to this run (the acceptance invariant the resilience tests
/// pin down).
struct RecoveryStats {
  std::uint64_t faults = 0;  // sum of by_site
  std::array<std::uint64_t, gpusim::kNumFaultSites> by_site{};
  std::uint64_t retries = 0;               // attempt transitions
  std::uint64_t corruptions_detected = 0;  // recount caught a bad count
  std::uint64_t cpu_failovers = 0;
  std::uint64_t stream_failovers = 0;
  std::uint64_t failed_chunks = 0;  // failover == off only
  double backoff_s = 0.0;           // total modelled backoff
  std::uint64_t salvaged_warps = 0;    // warps kept across all SM aborts
  std::uint64_t salvaged_tests = 0;    // device results kept by salvage
  std::uint64_t recounted_tests = 0;   // host-recounted lost remainder
};

struct RunnerReport {
  std::uint64_t triangles = 0;
  /// Every chunk produced a full count (false only when a chunk failed
  /// with failover off).
  bool exact = false;
  /// exact AND every non-empty chunk's count was either recomputed or
  /// recount-verified on the host — the "exact despite injected faults"
  /// certificate.
  bool certified = false;
  std::uint64_t total_tests = 0;

  std::vector<ChunkRecord> chunks;
  RecoveryStats recovery;

  /// Final chunk schedule (over modelled job times, repaired with
  /// reassign_after_loss when SMs were lost) and the lost SMs.
  sched::Assignment schedule;
  std::vector<std::uint32_t> lost_sms;
  double makespan_s = 0.0;
  /// End-to-end modelled time: preprocessing + transfers + makespan +
  /// overheads + backoff.
  double total_time_s = 0.0;

  /// Aggregated device accounting (successful launches; fault fields
  /// filled from RecoveryStats).
  gpusim::RunReport device;

  /// Deterministic per-chunk audit log: no timing, no thread counts —
  /// byte-identical across ExecPolicies for a fixed injector seed.
  std::string log;
};

std::ostream& operator<<(std::ostream& os, const RunnerReport& r);

/// Count triangles with full fault recovery (see the header comment).
RunnerReport run_resilient(const graph::Graph& g,
                           const RunnerOptions& opts = {});

/// Resume a checkpointed run from opts.checkpoint_path (which must be
/// non-empty): load + validate the checkpoint, restore the injector and
/// observability state, and continue from the first incomplete chunk.
/// The final RunnerReport — log, trace, and metrics included — is
/// byte-identical to an uninterrupted run's.  Throws
/// resilience::CheckpointError when the file is missing, corrupt, of
/// another version, or incompatible with (g, opts); the caller decides
/// whether to fall back to a cold run_resilient.
RunnerReport resume_resilient(const graph::Graph& g,
                              const RunnerOptions& opts);

}  // namespace lgg::resilience

#include "sancheck/footprint.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "combi/binomial.hpp"
#include "combi/strategies.hpp"

namespace lgg::sancheck {

using gpusim::Hazard;
using gpusim::HazardClass;

namespace {

void add_finding(FootprintReport& report, HazardClass cls, std::uint64_t addr,
                 const std::string& message) {
  Hazard h;
  h.cls = cls;
  h.addr = addr;
  h.bytes = 4;
  h.message = message;
  report.findings.push_back(std::move(h));
}

void refute_plan(FootprintReport& report, std::uint64_t addr,
                 const std::string& message) {
  report.plan_consistent = false;
  add_finding(report, HazardClass::kFootprintEscape, addr, message);
}

/// C(s,k) - C(s-x_max,k): the hockey-stick count of tests with first
/// element below x_max (als_plan.hpp generalised to k-combinations).
/// Overflow propagates the sentinel.
std::uint64_t expected_tests(std::uint32_t s, std::uint32_t x_max,
                             std::uint32_t k) {
  const std::uint64_t all = combi::binomial(s, k);
  const std::uint64_t tail = combi::binomial(x_max <= s ? s - x_max : 0, k);
  if (all == combi::kBinomialOverflow) return combi::kBinomialOverflow;
  return all - tail;
}

}  // namespace

FootprintReport lint_footprint(const FootprintSpec& spec) {
  FootprintReport report;

  // ---- 1. plan consistency: jobs tile [0, total_tests) in order and each
  // job's test count matches the combinadic formula.  Array-style kernels
  // (no combinadic jobs) skip this section; their plan consistency is the
  // work-division check below plus LinearAccess containment.
  std::uint64_t expected_offset = 0;
  for (std::size_t r = 0; r < spec.jobs.size(); ++r) {
    const FootprintJob& job = spec.jobs[r];
    std::ostringstream os;
    if (job.k < 1) {
      os << "job " << r << ": combination size k = 0";
      refute_plan(report, r, os.str());
      continue;
    }
    if (job.test_offset != expected_offset) {
      os << "job " << r << ": test_offset " << job.test_offset
         << " leaves a gap (expected " << expected_offset << ')';
      refute_plan(report, job.test_offset, os.str());
      expected_offset = job.test_offset;  // resync to localise findings
    }
    // x_max may not exceed s - k + 1 (the first element still needs k - 1
    // ids above it).
    const std::uint32_t x_bound =
        job.s + 1 >= job.k ? job.s - job.k + 1 : 0;
    const std::uint64_t want = expected_tests(job.s, job.x_max, job.k);
    if (job.x_max > x_bound && job.tests != 0) {
      os.str("");
      os << "job " << r << ": x_max " << job.x_max << " exceeds s - k + 1 = "
         << x_bound << " for s = " << job.s << ", k = " << job.k;
      refute_plan(report, r, os.str());
    } else if (want != combi::kBinomialOverflow && job.tests != want) {
      os.str("");
      os << "job " << r << ": " << job.tests
         << " tests but C(s,k) - C(s-x_max,k) = " << want << " for s = "
         << job.s << ", x_max = " << job.x_max << ", k = " << job.k;
      refute_plan(report, r, os.str());
    }
    if (job.tests > 0 && job.index_bound < job.s) {
      os.str("");
      os << "job " << r << ": index_bound " << job.index_bound
         << " cannot cover local ids up to s - 1 = " << job.s - 1;
      refute_plan(report, r, os.str());
    }
    expected_offset += job.tests;
  }
  if (!spec.jobs.empty() && expected_offset != spec.total_tests) {
    std::ostringstream os;
    os << "jobs cover " << expected_offset << " tests but the plan claims "
       << spec.total_tests;
    refute_plan(report, expected_offset, os.str());
  }

  // ---- 2. work division: the worker -> item map must cover [0,
  // total_tests) with no gap or overlap.
  if (spec.total_tests > 0 && spec.workers == 0) {
    refute_plan(report, 0, "plan has tests but zero workers");
  } else if (spec.total_tests > 0) {
    switch (spec.division) {
      case WorkDivision::kDivideWork: {
        // divide_work must tile the space across the workers (each range
        // is then walked either sequentially or lane-interleaved — both
        // stay inside the range).
        const auto ranges = combi::divide_work(
            spec.total_tests, static_cast<std::uint32_t>(spec.workers));
        std::uint64_t cursor = 0;
        bool tiled = ranges.size() == spec.workers;
        for (const combi::WorkRange& range : ranges) {
          tiled = tiled && range.begin == cursor && range.end >= range.begin;
          cursor = range.end;
        }
        tiled = tiled && cursor == spec.total_tests;
        if (!tiled) {
          std::ostringstream os;
          os << "divide_work(" << spec.total_tests << ", " << spec.workers
             << ") does not tile the test space";
          refute_plan(report, 0, os.str());
        }
        break;
      }
      case WorkDivision::kThreadPerItem:
        // Worker i owns item i; full coverage needs a worker per item.
        if (spec.workers < spec.total_tests) {
          std::ostringstream os;
          os << "thread-per-item division has " << spec.workers
             << " workers for " << spec.total_tests << " items";
          refute_plan(report, 0, os.str());
        }
        break;
      case WorkDivision::kCyclic:
        // Worker t takes t, t + workers, ...: covers whenever workers > 0,
        // which the guard above already established.
        break;
    }
  }

  // ---- 3. containment: interval proof per job.  The kernel's addressing
  // word(i, j) = i * stride + (j >> 5) * 4 is monotone in both ids, so the
  // maximal reachable byte is attained at i = j = index_bound - 1; one
  // comparison bounds every access of every schedule.
  for (std::size_t r = 0; r < spec.jobs.size(); ++r) {
    const FootprintJob& job = spec.jobs[r];
    if (job.tests == 0 || job.block == kNoBlock) continue;
    std::ostringstream os;
    if (job.block >= spec.blocks.size()) {
      os << "job " << r << ": block index " << job.block << " out of range";
      report.contained = false;
      add_finding(report, HazardClass::kFootprintEscape, job.block, os.str());
      continue;
    }
    const FootprintBlock& block = spec.blocks[job.block];
    const std::uint64_t top = job.index_bound > 0 ? job.index_bound - 1 : 0;
    const std::uint64_t max_addr =
        top * block.stride + (top >> 5) * 4 + 4;
    if (max_addr > block.bytes) {
      os << "job " << r << ": footprint reaches byte " << max_addr
         << " of a " << block.bytes << "-byte block (stride " << block.stride
         << ", index bound " << job.index_bound << ')';
      report.contained = false;
      add_finding(report, HazardClass::kFootprintEscape,
                  block.base + max_addr - 4, os.str());
    }
  }

  // ---- 3b. containment of the array-style patterns: every access is
  // index * elem_bytes with index < index_bound, monotone in the index, so
  // the last element bounds the pattern.
  for (std::size_t a = 0; a < spec.accesses.size(); ++a) {
    const LinearAccess& acc = spec.accesses[a];
    if (acc.index_bound == 0) continue;
    std::ostringstream os;
    if (acc.block >= spec.blocks.size()) {
      os << "access '" << acc.what << "': block index " << acc.block
         << " out of range";
      report.contained = false;
      add_finding(report, HazardClass::kFootprintEscape, acc.block, os.str());
      continue;
    }
    const FootprintBlock& block = spec.blocks[acc.block];
    const std::uint64_t max_addr =
        (acc.index_bound - 1) * acc.elem_bytes + acc.word_bytes;
    if (max_addr > block.bytes) {
      os << "access '" << acc.what << "': footprint reaches byte " << max_addr
         << " of a " << block.bytes << "-byte block (" << acc.index_bound
         << " elements x " << acc.elem_bytes << " bytes)";
      report.contained = false;
      add_finding(report, HazardClass::kFootprintEscape,
                  block.base + max_addr - (acc.word_bytes ? acc.word_bytes : 1),
                  os.str());
    }
  }

  // ---- 4. output slots: the per-warp result slots must be injective or
  // two warps race on one functional accumulator.
  if (!spec.warp_slot.empty()) {
    std::unordered_map<std::uint64_t, std::uint64_t> first_owner;
    for (std::uint64_t w = 0; w < spec.warp_slot.size(); ++w) {
      const auto [it, inserted] =
          first_owner.try_emplace(spec.warp_slot[w], w);
      if (inserted) continue;
      std::ostringstream os;
      os << "warps " << it->second << " and " << w
         << " both write output slot " << spec.warp_slot[w];
      report.slots_disjoint = false;
      add_finding(report, HazardClass::kSlotOverlap, spec.warp_slot[w],
                  os.str());
    }
  }

  return report;
}

std::ostream& operator<<(std::ostream& os, const FootprintReport& r) {
  if (r.clean())
    return os << "footprint lint: plan consistent, accesses contained, "
                 "slots disjoint";
  os << "footprint lint: " << r.findings.size() << " finding(s)";
  for (const Hazard& h : r.findings) os << "\n  " << h.message;
  return os;
}

}  // namespace lgg::sancheck

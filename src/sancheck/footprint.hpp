// The static half of lgg-sancheck: an access-pattern lint that reasons
// about a kernel's memory footprint WITHOUT running the kernel.
//
// The combinadic kernels address adjacency storage with the closed-form
//     word(i, j) = i * stride + (j >> 5) * 4
// over local (or global) vertex ids bounded by `index_bound`, and take
// their work from combi::divide_work over the flat test space
// (Section VIII-D).  That regularity makes containment PROVABLE by
// interval arithmetic: the largest byte any thread of any warp can touch
// in a block is
//     (index_bound - 1) * stride + ((index_bound - 1) >> 5) * 4 + 4
// so `max_addr <= bytes` proves every access of every schedule in bounds
// — no enumeration of the (possibly ~1e14-test) space needed.  The lint
// also re-derives the plan's combinadic accounting (hockey-stick totals,
// offset prefix sums, work-division partition) and proves per-warp output
// slots disjoint, refuting each property with a Hazard finding
// (kFootprintEscape / kSlotOverlap) when it does not hold.
//
// Array-style kernels (CSR intersection, level-synchronous BFS) do not
// fit the matrix-word model; they declare LinearAccess patterns instead:
// every touch is `index * elem_bytes` with index < index_bound, so one
// comparison per pattern bounds the whole launch the same way.
//
// The spec is layout-neutral on purpose: core/ builds one per kernel
// (core::als_footprint_spec, intersect_footprint_spec, bfs_footprint_spec,
// subgraph_footprint_spec, hybrid_footprint_spec) without sancheck ever
// depending on core.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "gpusim/report.hpp"

namespace lgg::sancheck {

/// One device allocation the kernel addresses with word(i, j) or via
/// LinearAccess patterns.
struct FootprintBlock {
  std::uint64_t base = 0;    // device address (reporting only)
  std::uint64_t bytes = 0;   // allocation size
  std::uint64_t stride = 0;  // row stride in bytes (matrix-word model)
};

/// Sentinel for FootprintJob::block: the job's memory accesses are covered
/// by LinearAccess entries instead of the matrix-word model (e.g. the
/// hybrid kernel's shared-memory S-UTM, whose triangular packing is bounded
/// as a flat word array).
inline constexpr std::size_t kNoBlock = ~std::size_t{0};

/// The symbolic shape of one combinadic job's test space: choose the first
/// (minimum) local id x < x_max, then a (k-1)-combination above it.
struct FootprintJob {
  std::uint64_t test_offset = 0;  // prefix sum over the plan
  std::uint64_t tests = 0;        // C(s,k) - C(s-x_max,k)
  std::uint32_t s = 0;            // local vertex count
  std::uint32_t x_max = 0;        // first-element bound
  std::uint32_t k = 3;            // combination size (3 = triangles)
  /// Exclusive bound on the ids used to address the block: s for per-job
  /// blocks (local ids), the graph's vertex count for a shared matrix
  /// (global ids).  Must be >= s.
  std::uint64_t index_bound = 0;
  /// Index into FootprintSpec::blocks, or kNoBlock when containment is
  /// proven through LinearAccess entries instead.
  std::size_t block = 0;
};

/// One array-style access pattern: the kernel touches bytes
/// [i * elem_bytes, i * elem_bytes + word_bytes) for some i < index_bound.
/// Containment: (index_bound - 1) * elem_bytes + word_bytes <= bytes.
struct LinearAccess {
  std::uint64_t index_bound = 0;  // exclusive bound on the element index
  std::uint64_t elem_bytes = 0;   // element pitch
  std::uint64_t word_bytes = 0;   // bytes touched per access
  std::size_t block = 0;          // index into FootprintSpec::blocks
  std::string what;               // label for findings ("csr offsets", ...)
};

/// How the kernel maps workers onto the flat work-item space.
enum class WorkDivision {
  /// combi::divide_work(total_tests, workers) ranges — proven to tile.
  kDivideWork,
  /// One worker per item (BFS: thread v owns vertex v) — proven to cover:
  /// workers >= total_tests.
  kThreadPerItem,
  /// Cyclic: worker t takes items t, t + workers, ... (hybrid chunk
  /// kernel) — covers by construction whenever workers > 0.
  kCyclic,
};

struct FootprintSpec {
  /// Kernel name, used in findings and reports ("gpu/intersect", ...).
  std::string name;
  std::uint64_t total_tests = 0;
  /// Number of ranges the work division hands out: warps for the
  /// interleaved layouts, threads for the naive one and for BFS.
  std::uint64_t workers = 0;
  std::uint32_t warp_size = 32;
  bool warp_interleaved = true;
  WorkDivision division = WorkDivision::kDivideWork;
  std::vector<FootprintBlock> blocks;
  std::vector<FootprintJob> jobs;
  std::vector<LinearAccess> accesses;
  /// Output slot written by each worker's warp; empty means the identity
  /// map (warp w writes slot w), which is trivially disjoint.
  std::vector<std::uint64_t> warp_slot;
};

struct FootprintReport {
  bool plan_consistent = true;  // offsets/totals match the combinadics
  bool contained = true;        // every reachable address stays in-block
  bool slots_disjoint = true;   // no two warps share an output slot
  std::vector<gpusim::Hazard> findings;

  [[nodiscard]] bool clean() const noexcept {
    return plan_consistent && contained && slots_disjoint;
  }
};

/// Run the lint.  Pure function of the spec; never touches device memory.
[[nodiscard]] FootprintReport lint_footprint(const FootprintSpec& spec);

std::ostream& operator<<(std::ostream& os, const FootprintReport& r);

}  // namespace lgg::sancheck

// The static half of lgg-sancheck: an access-pattern lint that reasons
// about a kernel's memory footprint WITHOUT running the kernel.
//
// The triangle kernels address adjacency storage with the closed-form
//     word(i, j) = i * stride + (j >> 5) * 4
// over local (or global) vertex ids bounded by `index_bound`, and take
// their work from combi::divide_work over the flat combinadic test space
// (Section VIII-D).  That regularity makes containment PROVABLE by
// interval arithmetic: the largest byte any thread of any warp can touch
// in a block is
//     (index_bound - 1) * stride + ((index_bound - 1) >> 5) * 4 + 4
// so `max_addr <= bytes` proves every access of every schedule in bounds
// — no enumeration of the (possibly ~1e14-test) space needed.  The lint
// also re-derives the plan's combinadic accounting (hockey-stick totals,
// offset prefix sums, divide_work partition) and proves per-warp output
// slots disjoint, refuting each property with a Hazard finding
// (kFootprintEscape / kSlotOverlap) when it does not hold.
//
// The spec is layout-neutral on purpose: core/ builds one from an AlsPlan
// (core::als_footprint_spec) without sancheck ever depending on core.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "gpusim/report.hpp"

namespace lgg::sancheck {

/// One device allocation the kernel addresses with word(i, j).
struct FootprintBlock {
  std::uint64_t base = 0;    // device address (reporting only)
  std::uint64_t bytes = 0;   // allocation size
  std::uint64_t stride = 0;  // row stride in bytes
};

/// The symbolic shape of one ALS job's test space.
struct FootprintJob {
  std::uint64_t test_offset = 0;  // prefix sum over the plan
  std::uint64_t tests = 0;        // C(s,3) - C(s-x_max,3)
  std::uint32_t s = 0;            // local vertex count
  std::uint32_t x_max = 0;        // first-element bound
  /// Exclusive bound on the ids used to address the block: s for per-job
  /// blocks (local ids), the graph's vertex count for a shared matrix
  /// (global ids).  Must be >= s.
  std::uint64_t index_bound = 0;
  std::size_t block = 0;  // index into FootprintSpec::blocks
};

struct FootprintSpec {
  std::uint64_t total_tests = 0;
  /// Number of ranges divide_work hands out: warps for the interleaved
  /// layouts, threads for the naive one.
  std::uint64_t workers = 0;
  std::uint32_t warp_size = 32;
  bool warp_interleaved = true;
  std::vector<FootprintBlock> blocks;
  std::vector<FootprintJob> jobs;
  /// Output slot written by each worker's warp; empty means the identity
  /// map (warp w writes slot w), which is trivially disjoint.
  std::vector<std::uint64_t> warp_slot;
};

struct FootprintReport {
  bool plan_consistent = true;  // offsets/totals match the combinadics
  bool contained = true;        // every reachable address stays in-block
  bool slots_disjoint = true;   // no two warps share an output slot
  std::vector<gpusim::Hazard> findings;

  [[nodiscard]] bool clean() const noexcept {
    return plan_consistent && contained && slots_disjoint;
  }
};

/// Run the lint.  Pure function of the spec; never touches device memory.
[[nodiscard]] FootprintReport lint_footprint(const FootprintSpec& spec);

std::ostream& operator<<(std::ostream& os, const FootprintReport& r);

}  // namespace lgg::sancheck

#include "sancheck/sancheck.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"

namespace lgg::sancheck {

using gpusim::AccessKind;
using gpusim::Allocation;
using gpusim::Buffer;
using gpusim::GlobalAccess;
using gpusim::Hazard;
using gpusim::HazardClass;
using gpusim::HazardReport;
using gpusim::SharedAccess;
using gpusim::ThreadTrace;

const char* sancheck_mode_name(SancheckMode mode) noexcept {
  switch (mode) {
    case SancheckMode::kOff:
      return "off";
    case SancheckMode::kReport:
      return "report";
    case SancheckMode::kStrict:
      return "strict";
  }
  return "?";
}

namespace {

constexpr std::uint64_t kCellBytes = 4;  // shadow granularity (one word)
constexpr std::uint64_t kNoThread = Hazard::kNoThread;

/// Accumulates hazards with per-site dedup: one (class, site) pair counts
/// once per launch regardless of how many accesses repeat it, so totals
/// are stable under test sampling.  Insertion order is the caller's scan
/// order, which is deterministic (traces arrive sorted).
class Collector {
 public:
  explicit Collector(std::size_t max_recorded) : max_(max_recorded) {}

  void add(HazardClass cls, std::uint64_t site, Hazard hazard) {
    const std::uint64_t key = (static_cast<std::uint64_t>(cls) << 58) |
                              (site & ((std::uint64_t{1} << 58) - 1));
    if (!sites_.insert(key).second) return;
    ++report_.total;
    ++report_.by_class[static_cast<std::size_t>(cls)];
    if (report_.hazards.size() < max_) report_.hazards.push_back(std::move(hazard));
  }

  HazardReport take() { return std::move(report_); }

 private:
  std::size_t max_;
  std::unordered_set<std::uint64_t> sites_;
  HazardReport report_;
};

Hazard make_hazard(HazardClass cls, std::uint64_t addr, std::uint32_t bytes,
                   std::uint64_t first_thread, std::uint64_t second_thread,
                   const std::string& message) {
  Hazard h;
  h.cls = cls;
  h.addr = addr;
  h.bytes = bytes;
  h.first_thread = first_thread;
  h.second_thread = second_thread;
  h.message = message;
  return h;
}

std::string describe(HazardClass cls, std::uint64_t thread,
                     const char* verb, std::uint32_t bytes,
                     std::uint64_t addr, const char* detail) {
  std::ostringstream os;
  os << gpusim::hazard_class_name(cls) << ": thread " << thread << ' '
     << verb << ' ' << bytes << " B at " << addr;
  if (detail != nullptr && *detail != '\0') os << " (" << detail << ')';
  return os.str();
}

/// First / last shadow cell covered by a byte-range access.
std::uint64_t cell_lo(std::uint64_t addr) { return addr / kCellBytes; }
std::uint64_t cell_hi(std::uint64_t addr, std::uint32_t bytes) {
  return (addr + std::max<std::uint64_t>(bytes, 1) - 1) / kCellBytes;
}

}  // namespace

TapeAnalyzer::TapeAnalyzer(SancheckConfig config,
                           const gpusim::DeviceMemory& memory)
    : config_(std::move(config)), memory_(&memory) {
  std::sort(config_.staged.begin(), config_.staged.end(),
            [](const Buffer& a, const Buffer& b) { return a.base < b.base; });
}

HazardReport TapeAnalyzer::analyze(
    const std::vector<ThreadTrace>& traces) const {
  Collector collect(config_.max_recorded_hazards);

  // Allocation tables.  Live allocations come from a monotone bump cursor,
  // so they are disjoint and (after the sort) binary-searchable; dead ones
  // (pre-reset generations) may overlap newer allocations and are scanned
  // linearly — they only exist after an explicit reset().
  std::vector<Allocation> live, dead;
  for (const Allocation& a : memory_->allocations())
    (a.live ? live : dead).push_back(a);
  std::sort(live.begin(), live.end(),
            [](const Allocation& a, const Allocation& b) {
              return a.base < b.base;
            });

  const auto find_live = [&](std::uint64_t addr) -> const Allocation* {
    auto it = std::upper_bound(
        live.begin(), live.end(), addr,
        [](std::uint64_t a, const Allocation& al) { return a < al.base; });
    if (it == live.begin()) return nullptr;
    --it;
    return addr - it->base < it->bytes ? &*it : nullptr;
  };
  const auto in_dead = [&](std::uint64_t addr) {
    return std::any_of(dead.begin(), dead.end(), [addr](const Allocation& d) {
      return addr >= d.base && addr - d.base < d.bytes;
    });
  };
  const auto staged_contains = [&](std::uint64_t addr, std::uint32_t bytes) {
    auto it = std::upper_bound(
        config_.staged.begin(), config_.staged.end(), addr,
        [](std::uint64_t a, const Buffer& b) { return a < b.base; });
    if (it == config_.staged.begin()) return false;
    --it;
    return addr - it->base < it->bytes && bytes <= it->bytes - (addr - it->base);
  };

  // ---- sweep 1: global writes — build the shadow write set and flag
  // cross-warp conflicts.  Concurrent atomics to one word are fine; a
  // plain write conflicting with anything from another warp is not.
  struct CellWriters {
    std::uint64_t plain = kNoThread, plain_warp = 0;
    std::uint64_t atomic = kNoThread, atomic_warp = 0;
  };
  std::unordered_map<std::uint64_t, CellWriters> writers;
  for (const ThreadTrace& t : traces) {
    for (const GlobalAccess& a : t.global) {
      if (a.kind == AccessKind::kRead) continue;
      for (std::uint64_t c = cell_lo(a.addr); c <= cell_hi(a.addr, a.word_bytes);
           ++c) {
        CellWriters& w = writers[c];
        std::uint64_t other = kNoThread;
        if (w.plain != kNoThread && w.plain_warp != t.ctx.global_warp)
          other = w.plain;
        else if (a.kind == AccessKind::kWrite && w.atomic != kNoThread &&
                 w.atomic_warp != t.ctx.global_warp)
          other = w.atomic;
        if (other != kNoThread) {
          std::ostringstream os;
          os << gpusim::hazard_class_name(HazardClass::kGlobalWriteConflict)
             << ": threads " << other << " and " << t.ctx.global_id
             << " of different warps write " << a.word_bytes << " B at "
             << c * kCellBytes << " without atomics";
          collect.add(HazardClass::kGlobalWriteConflict, c,
                      make_hazard(HazardClass::kGlobalWriteConflict,
                                  c * kCellBytes, a.word_bytes, other,
                                  t.ctx.global_id, os.str()));
        }
        if (a.kind == AccessKind::kAtomic) {
          if (w.atomic == kNoThread) {
            w.atomic = t.ctx.global_id;
            w.atomic_warp = t.ctx.global_warp;
          }
        } else if (w.plain == kNoThread) {
          w.plain = t.ctx.global_id;
          w.plain_warp = t.ctx.global_warp;
        }
      }
    }
  }

  // ---- sweep 2: per-access bounds classification + uninitialized reads.
  for (const ThreadTrace& t : traces) {
    for (const GlobalAccess& a : t.global) {
      const char* verb = a.kind == AccessKind::kRead ? "reads" : "writes";
      const Allocation* al = find_live(a.addr);
      if (al != nullptr) {
        if (a.word_bytes > al->bytes - (a.addr - al->base)) {
          collect.add(
              HazardClass::kOutOfBounds, cell_lo(a.addr),
              make_hazard(HazardClass::kOutOfBounds, a.addr, a.word_bytes,
                          t.ctx.global_id, t.ctx.global_id,
                          describe(HazardClass::kOutOfBounds, t.ctx.global_id,
                                   verb, a.word_bytes, a.addr,
                                   "straddles the end of its buffer")));
          continue;
        }
        if (a.kind == AccessKind::kRead && !staged_contains(a.addr, a.word_bytes)) {
          for (std::uint64_t c = cell_lo(a.addr);
               c <= cell_hi(a.addr, a.word_bytes); ++c) {
            if (writers.count(c) != 0 ||
                staged_contains(c * kCellBytes, kCellBytes))
              continue;
            collect.add(
                HazardClass::kUninitRead, c,
                make_hazard(HazardClass::kUninitRead, a.addr, a.word_bytes,
                            t.ctx.global_id, t.ctx.global_id,
                            describe(HazardClass::kUninitRead,
                                     t.ctx.global_id, verb, a.word_bytes,
                                     a.addr,
                                     "no staging and no write in the launch")));
            break;
          }
        }
        continue;
      }
      if (in_dead(a.addr)) {
        collect.add(HazardClass::kUseAfterReset, cell_lo(a.addr),
                    make_hazard(HazardClass::kUseAfterReset, a.addr,
                                a.word_bytes, t.ctx.global_id,
                                t.ctx.global_id,
                                describe(HazardClass::kUseAfterReset,
                                         t.ctx.global_id, verb, a.word_bytes,
                                         a.addr,
                                         "buffer retired by reset()")));
      } else if (a.addr + a.word_bytes <= memory_->capacity()) {
        collect.add(HazardClass::kUseBeforeAlloc, cell_lo(a.addr),
                    make_hazard(HazardClass::kUseBeforeAlloc, a.addr,
                                a.word_bytes, t.ctx.global_id,
                                t.ctx.global_id,
                                describe(HazardClass::kUseBeforeAlloc,
                                         t.ctx.global_id, verb, a.word_bytes,
                                         a.addr, "address never allocated")));
      } else {
        collect.add(HazardClass::kOutOfBounds, cell_lo(a.addr),
                    make_hazard(HazardClass::kOutOfBounds, a.addr,
                                a.word_bytes, t.ctx.global_id,
                                t.ctx.global_id,
                                describe(HazardClass::kOutOfBounds,
                                         t.ctx.global_id, verb, a.word_bytes,
                                         a.addr,
                                         "outside every allocation")));
      }
    }
  }

  // ---- sweep 3: intra-block shared-memory races.  Two threads of one
  // block touching the same shared word in the same sync epoch, at least
  // one writing, race; sync() (the simulated __syncthreads) advances the
  // epoch and orders the phases.  Traces are block-sorted, so per-block
  // state can be recycled.
  struct SharedParties {
    std::uint64_t reader = kNoThread, writer = kNoThread;
  };
  std::unordered_map<std::uint64_t, SharedParties> shared_state;
  std::uint64_t current_block = kNoThread;
  for (const ThreadTrace& t : traces) {
    if (t.ctx.block != current_block) {
      shared_state.clear();
      current_block = t.ctx.block;
    }
    for (const SharedAccess& a : t.shared) {
      const std::uint64_t cell = a.addr / kCellBytes;
      // Shared address spaces are KiB-scale; 44 bits of cell + 20 of epoch
      // index them without collision.
      const std::uint64_t key =
          (static_cast<std::uint64_t>(a.epoch) << 44) | cell;
      SharedParties& p = shared_state[key];
      const std::uint64_t self = t.ctx.global_id;
      std::uint64_t other = kNoThread;
      const char* flavour = "";
      if (a.kind == AccessKind::kRead) {
        if (p.writer != kNoThread && p.writer != self) {
          other = p.writer;
          flavour = "read-write";
        }
        if (p.reader == kNoThread) p.reader = self;
      } else {
        if (p.writer != kNoThread && p.writer != self) {
          other = p.writer;
          flavour = "write-write";
        } else if (p.reader != kNoThread && p.reader != self) {
          other = p.reader;
          flavour = "read-write";
        }
        if (p.writer == kNoThread) p.writer = self;
      }
      if (other == kNoThread) continue;
      const std::uint64_t site =
          (static_cast<std::uint64_t>(t.ctx.block) << 24) | (cell & 0xFFFFFF);
      std::ostringstream os;
      os << gpusim::hazard_class_name(HazardClass::kSharedRace) << ": "
         << flavour << " between threads " << other << " and " << self
         << " of block " << t.ctx.block << " on shared word " << a.addr
         << " in sync epoch " << a.epoch;
      collect.add(HazardClass::kSharedRace, site,
                  make_hazard(HazardClass::kSharedRace, a.addr, 4, other,
                              self, os.str()));
    }
  }

  return collect.take();
}

void TapeAnalyzer::inspect(const gpusim::KernelConfig& config,
                           const gpusim::DeviceSpec& dev,
                           const std::vector<ThreadTrace>& traces,
                           gpusim::KernelReport& report) const {
  (void)dev;
  HazardReport hazards = analyze(traces);
  if (config_.mode == SancheckMode::kStrict && !hazards.clean()) {
    std::ostringstream os;
    os << "lgg-sancheck [" << config.name << "]: "
       << (hazards.hazards.empty() ? "hazard detected"
                                   : hazards.hazards.front().message);
    if (hazards.total > 1) os << " (+" << hazards.total - 1 << " more)";
    throw lgg::Error(os.str());
  }
  report.hazards = std::move(hazards);
}

}  // namespace lgg::sancheck

// lgg::sancheck — a compute-sanitizer analogue for the simulated device.
//
// The executor already records a per-thread tape of every global/shared
// access (gpusim/executor.hpp).  TapeAnalyzer consumes those tapes plus
// DeviceMemory's allocation log and flags the hazards the paper's
// correctness story silently assumes away (Algorithm 2 + the Section
// IX/X layouts): threads escaping their ALS chunk, reads of adjacency
// words the host never staged, and races on output slots.  Classes:
//
//   out-of-bounds          address outside every allocation, or an access
//                          straddling the end of its buffer
//   use-after-reset        access through a buffer retired by
//                          DeviceMemory::reset()
//   use-before-alloc       address inside device capacity but never
//                          handed out by the bump allocator
//   uninitialized-read     read of a location that is neither inside a
//                          host-staged buffer nor written by ANY thread
//                          of the launch (shadow-memory model: a location
//                          no launch-order could have initialised)
//   shared-memory-race     two threads of one block touch the same shared
//                          word in the same sync epoch, at least one a
//                          write (epochs advance at ThreadRecorder::sync,
//                          the simulated __syncthreads())
//   global-write-conflict  non-atomic writes from two different warps
//                          overlap in global memory within one launch
//                          (per-warp output slots must be disjoint);
//                          ThreadRecorder::global_atomic is exempt
//
// Each hazard SITE — (class, 4-byte cell) — is counted once per launch no
// matter how many accesses repeat it, so totals are stable under test
// sampling and the report stays readable.  Analysis runs over traces
// sorted by (block, thread), making the HazardReport bit-identical across
// host thread counts (see LaunchInspector).
//
// The second sancheck pass — the static access-pattern lint that proves
// chunk containment and slot disjointness from the combinadic
// work-division formulas without running the kernel — lives in
// sancheck/footprint.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/executor.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/report.hpp"

namespace lgg::sancheck {

/// How a kernel launch runs under sancheck.
///   kOff     no tapes retained, no analysis (zero overhead).
///   kReport  analyze and attach a HazardReport to the KernelReport.
///   kStrict  analyze and throw lgg::Error on the first hazard found.
enum class SancheckMode : std::uint8_t { kOff = 0, kReport = 1, kStrict = 2 };

[[nodiscard]] const char* sancheck_mode_name(SancheckMode mode) noexcept;

struct SancheckConfig {
  SancheckMode mode = SancheckMode::kOff;
  /// Buffers whose contents the host staged (copied in) before the
  /// launch: reads from them are never uninitialized.
  std::vector<gpusim::Buffer> staged;
  /// Cap on hazards kept verbatim in HazardReport::hazards (totals and
  /// per-class counts are always exact).
  std::size_t max_recorded_hazards = 64;
};

/// The dynamic pass: plugs into Simulator::run as a LaunchInspector.
/// The DeviceMemory must outlive the analyzer; its allocation log is read
/// at inspect time, so allocations made after construction are seen.
class TapeAnalyzer final : public gpusim::LaunchInspector {
 public:
  TapeAnalyzer(SancheckConfig config, const gpusim::DeviceMemory& memory);

  /// Run the hazard analysis over one launch's tapes.  kReport attaches
  /// the findings to `report.hazards`; kStrict throws lgg::Error naming
  /// the first hazard (deterministic: tapes arrive in (block, thread)
  /// order).  Never called with kOff — callers pass no inspector instead.
  void inspect(const gpusim::KernelConfig& config,
               const gpusim::DeviceSpec& dev,
               const std::vector<gpusim::ThreadTrace>& traces,
               gpusim::KernelReport& report) const override;

  /// The analysis itself, usable without a Simulator (tests, tooling).
  [[nodiscard]] gpusim::HazardReport analyze(
      const std::vector<gpusim::ThreadTrace>& traces) const;

 private:
  SancheckConfig config_;
  const gpusim::DeviceMemory* memory_;
};

}  // namespace lgg::sancheck

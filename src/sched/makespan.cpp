#include "sched/makespan.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace lgg::sched {

namespace {

/// Least-loaded machine, lowest index on ties.
std::uint32_t argmin_load(const std::vector<std::uint64_t>& load) {
  std::uint32_t best = 0;
  for (std::uint32_t m = 1; m < load.size(); ++m)
    if (load[m] < load[best]) best = m;
  return best;
}

void finalize(Assignment& a) {
  a.makespan = a.load.empty()
                   ? 0
                   : *std::max_element(a.load.begin(), a.load.end());
}

}  // namespace

Assignment list_schedule(const std::vector<std::uint64_t>& jobs,
                         std::uint32_t machines) {
  LGG_CHECK(machines > 0, "list_schedule: machines must be positive");
  Assignment a;
  a.machine_of.resize(jobs.size());
  a.load.assign(machines, 0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const std::uint32_t m = argmin_load(a.load);
    a.machine_of[j] = m;
    a.load[m] += jobs[j];
  }
  finalize(a);
  return a;
}

Assignment lpt_schedule(const std::vector<std::uint64_t>& jobs,
                        std::uint32_t machines) {
  LGG_CHECK(machines > 0, "lpt_schedule: machines must be positive");
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return jobs[x] > jobs[y];
                   });

  Assignment a;
  a.machine_of.resize(jobs.size());
  a.load.assign(machines, 0);
  for (const std::size_t j : order) {
    const std::uint32_t m = argmin_load(a.load);
    a.machine_of[j] = m;
    a.load[m] += jobs[j];
  }
  finalize(a);
  return a;
}

namespace {

/// First-fit-decreasing with bin capacity `cap`; returns the assignment if
/// it fits within `machines` bins.
bool ffd_fits(const std::vector<std::size_t>& order,
              const std::vector<std::uint64_t>& jobs, std::uint32_t machines,
              std::uint64_t cap, Assignment& out) {
  out.machine_of.assign(jobs.size(), 0);
  out.load.assign(machines, 0);
  for (const std::size_t j : order) {
    bool placed = false;
    for (std::uint32_t m = 0; m < machines; ++m) {
      if (out.load[m] + jobs[j] <= cap) {
        out.machine_of[j] = m;
        out.load[m] += jobs[j];
        placed = true;
        break;
      }
    }
    if (!placed) return false;
  }
  return true;
}

}  // namespace

Assignment multifit_schedule(const std::vector<std::uint64_t>& jobs,
                             std::uint32_t machines,
                             std::uint32_t iterations) {
  LGG_CHECK(machines > 0, "multifit_schedule: machines must be positive");
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return jobs[x] > jobs[y];
                   });

  const std::uint64_t sum = std::accumulate(jobs.begin(), jobs.end(),
                                            std::uint64_t{0});
  const std::uint64_t maxjob =
      jobs.empty() ? 0 : *std::max_element(jobs.begin(), jobs.end());
  std::uint64_t lo = std::max<std::uint64_t>(
      maxjob, (sum + machines - 1) / machines);
  std::uint64_t hi = std::max<std::uint64_t>(
      maxjob, 2 * ((sum + machines - 1) / machines));

  Assignment best = lpt_schedule(jobs, machines);  // guaranteed feasible
  Assignment trial;
  for (std::uint32_t it = 0; it < iterations && lo < hi; ++it) {
    const std::uint64_t cap = lo + (hi - lo) / 2;
    if (ffd_fits(order, jobs, machines, cap, trial)) {
      finalize(trial);
      if (trial.makespan < best.makespan) best = trial;
      hi = cap;
    } else {
      lo = cap + 1;
    }
  }
  // Final probe at the converged capacity.
  if (ffd_fits(order, jobs, machines, lo, trial)) {
    finalize(trial);
    if (trial.makespan < best.makespan) best = trial;
  }
  return best;
}

namespace {

struct BnB {
  const std::vector<std::uint64_t>* jobs_sorted = nullptr;  // descending
  std::uint32_t machines = 0;
  std::uint64_t best_makespan = 0;
  std::vector<std::uint32_t> best_assignment;  // over sorted order
  std::vector<std::uint32_t> current;
  std::vector<std::uint64_t> load;
  std::uint64_t suffix_sum_all = 0;
  std::vector<std::uint64_t> suffix_sum;  // suffix_sum[j] = sum of jobs j..end

  void search(std::size_t j) {
    const auto& jobs = *jobs_sorted;
    if (j == jobs.size()) {
      const std::uint64_t mk =
          *std::max_element(load.begin(), load.end());
      if (mk < best_makespan) {
        best_makespan = mk;
        best_assignment = current;
      }
      return;
    }
    // Bound: even spreading the remaining work cannot beat the current max.
    const std::uint64_t current_max =
        *std::max_element(load.begin(), load.end());
    if (current_max >= best_makespan) return;

    // Dominance: only try one empty machine (identical machines are
    // symmetric under permutation).
    bool tried_empty = false;
    for (std::uint32_t m = 0; m < machines; ++m) {
      if (load[m] == 0) {
        if (tried_empty) continue;
        tried_empty = true;
      }
      if (load[m] + jobs[j] >= best_makespan) continue;
      load[m] += jobs[j];
      current[j] = m;
      search(j + 1);
      load[m] -= jobs[j];
    }
  }
};

}  // namespace

Assignment exact_schedule(const std::vector<std::uint64_t>& jobs,
                          std::uint32_t machines, std::size_t max_jobs) {
  LGG_CHECK(machines > 0, "exact_schedule: machines must be positive");
  LGG_CHECK(jobs.size() <= max_jobs,
            "exact_schedule: " << jobs.size() << " jobs exceeds max_jobs="
                               << max_jobs << " (problem is NP-hard)");
  if (jobs.empty()) {
    Assignment a;
    a.load.assign(machines, 0);
    return a;
  }

  // Sort descending (branch on big jobs first) and remember the original
  // positions so the returned assignment is in input order.
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return jobs[x] > jobs[y];
                   });
  std::vector<std::uint64_t> sorted(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) sorted[i] = jobs[order[i]];

  BnB bnb;
  bnb.jobs_sorted = &sorted;
  bnb.machines = machines;
  const Assignment seed = lpt_schedule(jobs, machines);
  bnb.best_makespan = seed.makespan + 1;  // strict-improvement search
  bnb.current.assign(jobs.size(), 0);
  bnb.load.assign(machines, 0);
  bnb.search(0);

  Assignment a;
  a.load.assign(machines, 0);
  a.machine_of.resize(jobs.size());
  if (bnb.best_assignment.empty()) {
    // LPT was already optimal.
    return seed;
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::uint32_t m = bnb.best_assignment[i];
    a.machine_of[order[i]] = m;
    a.load[m] += sorted[i];
  }
  finalize(a);
  return a;
}

std::uint64_t makespan_lower_bound(const std::vector<std::uint64_t>& jobs,
                                   std::uint32_t machines) {
  LGG_CHECK(machines > 0, "makespan_lower_bound: machines must be positive");
  if (jobs.empty()) return 0;
  const std::uint64_t sum =
      std::accumulate(jobs.begin(), jobs.end(), std::uint64_t{0});
  const std::uint64_t maxjob = *std::max_element(jobs.begin(), jobs.end());
  return std::max(maxjob, (sum + machines - 1) / machines);
}

Assignment reassign_after_loss(const std::vector<std::uint64_t>& jobs,
                               const Assignment& schedule,
                               const std::vector<std::uint32_t>& lost) {
  const std::uint32_t machines =
      static_cast<std::uint32_t>(schedule.load.size());
  LGG_CHECK(jobs.size() == schedule.machine_of.size(),
            "reassign_after_loss: jobs/schedule size mismatch");
  std::vector<std::uint8_t> dead(machines, 0);
  for (const std::uint32_t m : lost) {
    LGG_CHECK(m < machines,
              "reassign_after_loss: lost machine " << m << " out of range");
    dead[m] = 1;
  }
  std::uint32_t survivors = 0;
  for (std::uint32_t m = 0; m < machines; ++m)
    if (dead[m] == 0) ++survivors;
  LGG_CHECK(survivors > 0, "reassign_after_loss: no surviving machines");

  Assignment a;
  a.machine_of = schedule.machine_of;
  a.load.assign(machines, 0);
  std::vector<std::size_t> displaced;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const std::uint32_t m = a.machine_of[j];
    LGG_CHECK(m < machines,
              "reassign_after_loss: schedule names machine " << m
                                                             << " out of range");
    if (dead[m] != 0)
      displaced.push_back(j);
    else
      a.load[m] += jobs[j];
  }

  // LPT over the displaced jobs onto survivors only.
  std::stable_sort(displaced.begin(), displaced.end(),
                   [&](std::size_t x, std::size_t y) {
                     return jobs[x] > jobs[y];
                   });
  for (const std::size_t j : displaced) {
    std::uint32_t best = machines;  // sentinel: no survivor seen yet
    for (std::uint32_t m = 0; m < machines; ++m) {
      if (dead[m] != 0) continue;
      if (best == machines || a.load[m] < a.load[best]) best = m;
    }
    a.machine_of[j] = best;
    a.load[best] += jobs[j];
  }
  finalize(a);
  return a;
}

Assignment recompute(const std::vector<std::uint64_t>& jobs,
                     const std::vector<std::uint32_t>& machine_of,
                     std::uint32_t machines) {
  LGG_CHECK(jobs.size() == machine_of.size(),
            "recompute: jobs/machine_of size mismatch");
  Assignment a;
  a.machine_of = machine_of;
  a.load.assign(machines, 0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    LGG_CHECK(machine_of[j] < machines,
              "recompute: machine id " << machine_of[j] << " out of range");
    a.load[machine_of[j]] += jobs[j];
  }
  finalize(a);
  return a;
}

}  // namespace lgg::sched

// Makespan scheduling of chunk computations onto streaming
// multiprocessors (paper Section VI).
//
// After Algorithm 1 splits the graph into chunks, each chunk is a job whose
// processing time is proportional to its size, and the SMs are identical
// machines.  Minimising the makespan is NP-hard (P||Cmax), so the paper
// relies on heuristics; we provide:
//
//   * list_schedule   — Graham's list scheduling in arrival order
//                       (2 - 1/m approximation; the "naïve" baseline),
//   * lpt_schedule    — Longest Processing Time first
//                       (4/3 - 1/(3m) approximation; the default),
//   * multifit        — MULTIFIT via binary search on FFD bin capacity
//                       (13/11 approximation),
//   * exact_schedule  — optimal via DP over machine-load states for small
//                       instances (used to measure heuristic gaps in the
//                       Fig. 1 bench).
//
// All schedulers are deterministic: ties break toward the lowest machine
// index, and equal-length jobs keep input order.
#pragma once

#include <cstdint>
#include <vector>

namespace lgg::sched {

struct Assignment {
  /// machine_of[j] = machine executing job j.
  std::vector<std::uint32_t> machine_of;
  /// Load per machine, in job-time units.
  std::vector<std::uint64_t> load;
  /// max(load) — the makespan.
  std::uint64_t makespan = 0;
};

/// Graham list scheduling: jobs in given order, each to the least-loaded
/// machine.
Assignment list_schedule(const std::vector<std::uint64_t>& jobs,
                         std::uint32_t machines);

/// LPT: jobs sorted by decreasing length, then list-scheduled.
Assignment lpt_schedule(const std::vector<std::uint64_t>& jobs,
                        std::uint32_t machines);

/// MULTIFIT (Coffman–Garey–Johnson): binary search the smallest capacity C
/// such that first-fit-decreasing packs all jobs into `machines` bins.
Assignment multifit_schedule(const std::vector<std::uint64_t>& jobs,
                             std::uint32_t machines,
                             std::uint32_t iterations = 20);

/// Optimal schedule via branch-and-bound with LPT seeding and dominance
/// pruning.  Practical for up to ~20 jobs; throws lgg::Error beyond
/// `max_jobs` to protect callers.
Assignment exact_schedule(const std::vector<std::uint64_t>& jobs,
                          std::uint32_t machines,
                          std::size_t max_jobs = 24);

/// Standard lower bound: max(ceil(sum/m), max job).
std::uint64_t makespan_lower_bound(const std::vector<std::uint64_t>& jobs,
                                   std::uint32_t machines);

/// Validate an assignment against its job list (used by property tests):
/// recompute loads and makespan from machine_of.
Assignment recompute(const std::vector<std::uint64_t>& jobs,
                     const std::vector<std::uint32_t>& machine_of,
                     std::uint32_t machines);

/// Repair `schedule` after the machines in `lost` die mid-run (simulated
/// SM aborts): survivors keep their jobs and loads untouched; every job
/// stranded on a lost machine is redistributed LPT-style (descending
/// length, stable on ties, each to the least-loaded surviving machine,
/// lowest index on ties).  Lost machines end with load 0.  Deterministic,
/// and the result's makespan is bounded by
///   max(schedule.makespan, LB_survivors + max displaced job)
/// where LB_survivors is makespan_lower_bound over all jobs on the
/// surviving machine count — the greedy-repair analogue of Graham's
/// list-scheduling bound (covered by the makespan edge-case tests).
/// Requires at least one survivor.
Assignment reassign_after_loss(const std::vector<std::uint64_t>& jobs,
                               const Assignment& schedule,
                               const std::vector<std::uint32_t>& lost);

}  // namespace lgg::sched

#include "serve/cache.hpp"

#include "util/error.hpp"

namespace lgg::serve {

std::optional<std::string> ResultCache::lookup(const CacheKey& key) {
  if (capacity_ == 0) return std::nullopt;
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  it->second.tick = ++tick_;
  return it->second.body;
}

void ResultCache::insert(const CacheKey& key, const std::string& body) {
  if (capacity_ == 0) return;
  auto [it, inserted] = map_.try_emplace(key);
  it->second.body = body;
  it->second.tick = ++tick_;
  if (map_.size() <= capacity_) return;
  // Evict the least recently touched entry.  Ticks are unique, so the
  // victim — like everything else here — is a pure function of the
  // request sequence.
  auto victim = map_.begin();
  for (auto cur = map_.begin(); cur != map_.end(); ++cur)
    if (cur->second.tick < victim->second.tick) victim = cur;
  LGG_ASSERT(victim != it);
  map_.erase(victim);
  ++evictions_;
}

ResultCache::Snapshot ResultCache::snapshot() const {
  Snapshot s;
  s.entries.reserve(map_.size());
  for (const auto& [key, entry] : map_)
    s.entries.push_back(Snapshot::Entry{key, entry.body, entry.tick});
  s.tick = tick_;
  s.evictions = evictions_;
  return s;
}

void ResultCache::restore(const Snapshot& s) {
  LGG_CHECK(capacity_ == 0 || s.entries.size() <= capacity_,
            "ResultCache::restore: snapshot has " << s.entries.size()
                << " entries but capacity is " << capacity_);
  map_.clear();
  for (const Snapshot::Entry& e : s.entries) {
    LGG_CHECK(e.tick <= s.tick,
              "ResultCache::restore: entry tick beyond the logical clock");
    map_[e.key] = Entry{e.body, e.tick};
  }
  tick_ = s.tick;
  evictions_ = s.evictions;
}

}  // namespace lgg::serve

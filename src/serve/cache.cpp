#include "serve/cache.hpp"

#include "util/error.hpp"

namespace lgg::serve {

std::optional<std::string> ResultCache::lookup(const CacheKey& key) {
  if (capacity_ == 0) return std::nullopt;
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  it->second.tick = ++tick_;
  return it->second.body;
}

void ResultCache::insert(const CacheKey& key, const std::string& body) {
  if (capacity_ == 0) return;
  auto [it, inserted] = map_.try_emplace(key);
  it->second.body = body;
  it->second.tick = ++tick_;
  if (map_.size() <= capacity_) return;
  // Evict the least recently touched entry.  Ticks are unique, so the
  // victim — like everything else here — is a pure function of the
  // request sequence.
  auto victim = map_.begin();
  for (auto cur = map_.begin(); cur != map_.end(); ++cur)
    if (cur->second.tick < victim->second.tick) victim = cur;
  LGG_ASSERT(victim != it);
  map_.erase(victim);
  ++evictions_;
}

}  // namespace lgg::serve

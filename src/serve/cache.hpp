// Serving-layer result cache (DESIGN.md §15).
//
// Responses are cached under the exact triple
//   (graph digest, canonical query, seed)
// — a hit requires all three to match, so two estimate queries that
// differ only in seed can never alias, and a reloaded graph with
// different content (new digest) never serves stale results.
//
// Eviction is LRU over a deterministic logical tick that advances once
// per lookup/insert — never wall-clock — so for a fixed request sequence
// the eviction pattern, and therefore every downstream artifact, is
// byte-identical across runs and host thread counts.  The backing store
// is std::map (ordered; the determinism lint forbids iterating unordered
// containers) and all methods are called from the single-threaded
// Service::drain path, so the cache itself needs no locking.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

namespace lgg::serve {

struct CacheKey {
  std::uint64_t digest = 0;  // graph::loaded_graph_digest of the graph
  std::string canonical;     // canonical_query(request)
  std::uint64_t seed = 0;    // request seed (0 for exact queries)

  friend bool operator<(const CacheKey& a, const CacheKey& b) {
    return std::tie(a.digest, a.canonical, a.seed) <
           std::tie(b.digest, b.canonical, b.seed);
  }
};

class ResultCache {
 public:
  /// capacity 0 disables the cache (every lookup misses, inserts drop).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Cached response body for the key, bumping its recency.
  [[nodiscard]] std::optional<std::string> lookup(const CacheKey& key);

  /// Insert (or refresh) the key's response body, evicting the least
  /// recently used entry when over capacity.
  void insert(const CacheKey& key, const std::string& body);

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_;
  }

  /// Complete cache state for checkpoint/restart (DESIGN.md §16): the
  /// entries with their recency ticks, plus the logical clock and the
  /// eviction counter.  Restoring it makes every future lookup, hit/miss
  /// log line and eviction identical to an uninterrupted run's.
  struct Snapshot {
    struct Entry {
      CacheKey key;
      std::string body;
      std::uint64_t tick = 0;
    };
    std::vector<Entry> entries;  // in key order
    std::uint64_t tick = 0;
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] Snapshot snapshot() const;
  /// Replaces the cache contents (capacity is NOT part of the snapshot —
  /// the restoring service must be configured with the same capacity).
  void restore(const Snapshot& s);

 private:
  struct Entry {
    std::string body;
    std::uint64_t tick = 0;  // last-touched logical time
  };
  std::map<CacheKey, Entry> map_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace lgg::serve

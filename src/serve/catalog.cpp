#include "serve/catalog.hpp"

#include <utility>

#include "graph/digest.hpp"
#include "ingest/ingest.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace lgg::serve {

ResidentGraph& Catalog::load_file(const std::string& name,
                                  const std::string& path) {
  ingest::IngestOptions iopts;
  iopts.threads = opts_.threads;
  iopts.obs = opts_.obs;
  return admit(name, ingest::load_snap_file(path, iopts).loaded);
}

ResidentGraph& Catalog::add(const std::string& name, graph::Graph g) {
  graph::LoadedGraph loaded;
  loaded.original_ids.reserve(g.num_vertices());
  for (std::size_t v = 0; v < g.num_vertices(); ++v)
    loaded.original_ids.push_back(v);
  loaded.graph = std::move(g);
  return admit(name, std::move(loaded));
}

ResidentGraph& Catalog::admit(const std::string& name,
                              graph::LoadedGraph loaded) {
  LGG_CHECK(graphs_.find(name) == graphs_.end(),
            "serve: graph '" << name << "' is already resident");
  obs::Scope span(opts_.obs, "serve/admit[" + name + "]", "serve");

  ResidentGraph entry;
  entry.name = name;
  entry.loaded = std::move(loaded);
  entry.digest = graph::loaded_graph_digest(entry.loaded);

  // Preprocessing, computed once per resident graph: the Algorithm 1
  // plan (ALS chunk schedule) and the degree-ordered orientation.
  core::HybridOptions popts;
  popts.device = opts_.device;
  popts.metric = opts_.metric;
  entry.plan = core::precompute_als(entry.loaded.graph, popts);
  entry.dodg =
      ingest::orient_by_degree(entry.loaded.graph, &ThreadPool::shared());

  if (span) {
    span.arg("digest", graph::digest_hex(entry.digest));
    span.arg("vertices",
             static_cast<std::uint64_t>(entry.loaded.graph.num_vertices()));
    span.arg("edges",
             static_cast<std::uint64_t>(entry.loaded.graph.num_edges()));
    span.arg("chunks",
             static_cast<std::uint64_t>(entry.plan.chunking.chunks.size()));
  }
  if (opts_.obs != nullptr)
    opts_.obs->metrics.count("lgg_serve_graphs_resident_total");

  auto [it, inserted] = graphs_.emplace(name, std::move(entry));
  LGG_ASSERT(inserted);
  return it->second;
}

ResidentGraph* Catalog::find(const std::string& name) {
  const auto it = graphs_.find(name);
  return it == graphs_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::names() const {
  std::vector<std::string> out;
  out.reserve(graphs_.size());
  for (const auto& [name, entry] : graphs_) out.push_back(name);
  return out;
}

}  // namespace lgg::serve

// Catalog of resident graphs with cached preprocessing (DESIGN.md §15).
//
// The paper's economics are all about amortization: BFS levelling, the
// Algorithm 1 chunk schedule and the degree-ordered orientation cost far
// more than a single query on a resident graph, so the catalog computes
// them ONCE at admission and every query after that reuses the artifacts:
//
//   * core::AlsPrecomputed — the full Algorithm 1 plan; prepared device
//     runs charge ZERO modelled preprocessing (core/hybrid.hpp),
//   * ingest::OrientedGraph — the DODG the fast host triangle counter
//     intersects,
//   * per-source BfsTrees and the per-vertex clustering-coefficient
//     vector, memoized on first use.
//
// Every artifact is a pure function of the graph content, so residency is
// unobservable in results — only latency (and modelled preprocessing
// time) drops.  Catalog mutation (add/load) happens before serving
// starts; memoized artifacts are only touched from the single-threaded
// Service::drain path.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/hybrid.hpp"
#include "graph/bfs.hpp"
#include "graph/io.hpp"
#include "ingest/orient.hpp"
#include "obs/obs.hpp"

namespace lgg::serve {

struct CatalogOptions {
  /// Ingest worker budget (ingest::IngestOptions::threads semantics);
  /// the loaded graph is byte-identical at any setting.
  std::size_t threads = 0;
  /// Device whose shared-memory budget the ALS plan targets; nullptr
  /// selects the paper's C1060 (must match the Service's device).
  const gpusim::DeviceSpec* device = nullptr;
  graph::SizeMetric metric = graph::SizeMetric::kSutm;
  /// Optional observability session: load spans + lgg_serve_* counters.
  obs::Session* obs = nullptr;
};

/// One resident graph and its cached preprocessing artifacts.
struct ResidentGraph {
  std::string name;
  graph::LoadedGraph loaded;
  std::uint64_t digest = 0;  // graph::loaded_graph_digest(loaded)
  core::AlsPrecomputed plan;
  ingest::OrientedGraph dodg;
  /// Memoized per-source BFS trees (filled on first bfs query).
  std::map<graph::Vertex, graph::BfsTree> bfs_memo;
  /// Memoized per-vertex clustering coefficients (first cc query).
  std::optional<std::vector<double>> cc_memo;
};

class Catalog {
 public:
  explicit Catalog(const CatalogOptions& opts = {}) : opts_(opts) {}

  /// Load a SNAP edge-list file through the parallel ingest pipeline and
  /// make it resident under `name`.  Throws lgg::Error on IO/parse errors
  /// or a duplicate name.  Returns the entry.
  ResidentGraph& load_file(const std::string& name, const std::string& path);

  /// Make an in-memory graph resident under `name` (generators, tests).
  ResidentGraph& add(const std::string& name, graph::Graph g);

  /// Resident entry, or nullptr when the name is unknown.
  [[nodiscard]] ResidentGraph* find(const std::string& name);

  [[nodiscard]] std::size_t size() const noexcept { return graphs_.size(); }

  /// Resident names, ascending.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] const CatalogOptions& options() const noexcept {
    return opts_;
  }

 private:
  ResidentGraph& admit(const std::string& name, graph::LoadedGraph loaded);

  CatalogOptions opts_;
  std::map<std::string, ResidentGraph> graphs_;
};

}  // namespace lgg::serve

#include "serve/request.hpp"

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace lgg::serve {

namespace {

std::vector<std::string> split_ws(std::string_view line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) out.emplace_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

std::uint64_t parse_u64(const std::string& tok, std::string_view line) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(tok.c_str(), &end, 10);
  LGG_CHECK(end != nullptr && *end == '\0' && !tok.empty(),
            "serve: bad integer '" + tok + "' in request: " +
                std::string(line));
  return v;
}

double parse_double(const std::string& tok, std::string_view line) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  LGG_CHECK(end != nullptr && *end == '\0' && !tok.empty(),
            "serve: bad number '" + tok + "' in request: " +
                std::string(line));
  return v;
}

}  // namespace

const char* query_kind_name(QueryKind k) noexcept {
  switch (k) {
    case QueryKind::kTriangles:
      return "triangles";
    case QueryKind::kKClique:
      return "kclique";
    case QueryKind::kDoulion:
      return "doulion";
    case QueryKind::kWedges:
      return "wedges";
    case QueryKind::kBfs:
      return "bfs";
    case QueryKind::kCc:
      return "cc";
  }
  return "?";
}

const char* status_name(Status s) noexcept {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kRejected:
      return "rejected";
    case Status::kError:
      return "error";
  }
  return "?";
}

std::string canonical_query(const Request& r) {
  std::ostringstream os;
  os << query_kind_name(r.kind);
  switch (r.kind) {
    case QueryKind::kTriangles:
      break;
    case QueryKind::kKClique:
      os << " k=" << r.k;
      break;
    case QueryKind::kDoulion:
      os << " p=" << obs::format_number(r.p) << " seed=" << r.seed;
      break;
    case QueryKind::kWedges:
      os << " samples=" << r.samples << " seed=" << r.seed;
      break;
    case QueryKind::kBfs:
      os << " source=" << r.vertex;
      break;
    case QueryKind::kCc:
      os << " v=" << r.vertex;
      break;
  }
  return os.str();
}

std::string pass_key(const Request& r) {
  switch (r.kind) {
    case QueryKind::kTriangles:
      return "triangles";
    case QueryKind::kKClique:
      return "kclique/" + std::to_string(r.k);
    case QueryKind::kDoulion:
    case QueryKind::kWedges:
      // Estimates merge only when the full canonical (p / samples AND
      // seed) matches: different seeds are different results by contract.
      return canonical_query(r);
    case QueryKind::kBfs:
      return "bfs/" + std::to_string(r.vertex);
    case QueryKind::kCc:
      // Every cc query shares the one clustering_coefficients sweep.
      return "cc";
  }
  return "?";
}

std::string Response::line() const {
  std::ostringstream os;
  os << "id=" << id << " tenant=" << tenant << " graph=" << graph
     << " query=\"" << canonical << "\" status=" << status_name(status)
     << " " << body;
  return os.str();
}

Request parse_request_line(std::string_view line) {
  const std::vector<std::string> tok = split_ws(line);
  LGG_CHECK(tok.size() >= 3,
            "serve: request needs '<tenant> <graph> <query> ...': " +
                std::string(line));
  Request r;
  r.tenant = tok[0];
  r.graph = tok[1];
  const std::string& q = tok[2];
  const auto want = [&](std::size_t argc) {
    LGG_CHECK(tok.size() == 3 + argc,
              "serve: query '" + q + "' takes " + std::to_string(argc) +
                  " argument(s): " + std::string(line));
  };
  if (q == "triangles") {
    r.kind = QueryKind::kTriangles;
    want(0);
  } else if (q == "kclique") {
    r.kind = QueryKind::kKClique;
    want(1);
    const std::uint64_t k = parse_u64(tok[3], line);
    LGG_CHECK(k >= 1 && k <= 16, "serve: kclique k out of range [1,16]: " +
                                     std::string(line));
    r.k = static_cast<std::uint32_t>(k);
  } else if (q == "doulion") {
    r.kind = QueryKind::kDoulion;
    want(2);
    r.p = parse_double(tok[3], line);
    LGG_CHECK(r.p > 0.0 && r.p <= 1.0,
              "serve: doulion p out of range (0,1]: " + std::string(line));
    r.seed = parse_u64(tok[4], line);
  } else if (q == "wedges") {
    r.kind = QueryKind::kWedges;
    want(2);
    r.samples = parse_u64(tok[3], line);
    LGG_CHECK(r.samples > 0,
              "serve: wedges needs samples > 0: " + std::string(line));
    r.seed = parse_u64(tok[4], line);
  } else if (q == "bfs") {
    r.kind = QueryKind::kBfs;
    want(1);
    r.vertex = static_cast<graph::Vertex>(parse_u64(tok[3], line));
  } else if (q == "cc") {
    r.kind = QueryKind::kCc;
    want(1);
    r.vertex = static_cast<graph::Vertex>(parse_u64(tok[3], line));
  } else {
    LGG_THROW("serve: unknown query '" + q + "': " + std::string(line));
  }
  return r;
}

}  // namespace lgg::serve

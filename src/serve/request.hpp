// Serving-layer request model (DESIGN.md §15).
//
// A request names a tenant, a resident graph and one analytics query.
// Requests arrive as script lines (one per line, '#' comments skipped):
//
//   <tenant> <graph> triangles
//   <tenant> <graph> kclique <k>
//   <tenant> <graph> doulion <p> <seed>
//   <tenant> <graph> wedges <samples> <seed>
//   <tenant> <graph> bfs <source>
//   <tenant> <graph> cc <vertex>
//
// Each request carries a caller-assigned id (its script line rank).  The
// id — never arrival order — keys every serving decision: admission,
// fair ordering, cache lookups and batching all happen in id order inside
// Service::drain, which is what makes the whole layer byte-identical
// across submitting thread counts.
//
// canonical_query() renders the query in a normalized spelling; the
// triple (graph digest, canonical query, seed) is the result-cache key.
// pass_key() names the device/host pass a query needs; same-graph
// requests with equal pass keys merge into one pass (batching).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace lgg::serve {

enum class QueryKind : int {
  kTriangles = 0,  // exact triangle count
  kKClique = 1,    // k-clique count
  kDoulion = 2,    // DOULION estimate (p, seed)
  kWedges = 3,     // wedge-sampling estimate (samples, seed)
  kBfs = 4,        // BFS depth/reached from a source
  kCc = 5,         // per-vertex local clustering coefficient
};

[[nodiscard]] const char* query_kind_name(QueryKind k) noexcept;

struct Request {
  std::uint64_t id = 0;  // caller-assigned; unique per drain
  std::string tenant;
  std::string graph;
  QueryKind kind = QueryKind::kTriangles;
  std::uint32_t k = 3;         // kclique
  double p = 0.1;              // doulion keep probability
  std::uint64_t samples = 0;   // wedges
  std::uint64_t seed = 0;      // doulion / wedges (0 for exact queries)
  graph::Vertex vertex = 0;    // bfs source / cc vertex
};

/// Normalized query spelling, e.g. "triangles", "kclique k=4",
/// "doulion p=0.25 seed=7".  Part of the result-cache key and of every
/// response line.
[[nodiscard]] std::string canonical_query(const Request& r);

/// Name of the execution pass the query needs.  Same-graph requests with
/// equal pass keys are answered by ONE backend pass: all cc queries share
/// one clustering_coefficients sweep, all triangle queries one device
/// pass, estimate queries merge only when their full canonical matches.
[[nodiscard]] std::string pass_key(const Request& r);

enum class Status : int { kOk = 0, kRejected = 1, kError = 2 };

[[nodiscard]] const char* status_name(Status s) noexcept;

struct Response {
  std::uint64_t id = 0;
  std::string tenant;
  std::string graph;
  std::string canonical;
  Status status = Status::kOk;
  /// Result payload ("triangles=5 backend=resilient") or, for rejected /
  /// error responses, a reason ("reason=\"admission quota exceeded\"").
  /// A pure function of (graph content, canonical query, seed): cache
  /// and batching markers live in the request log, never here.
  std::string body;

  /// One-line rendering (the unit the golden / determinism tests diff).
  [[nodiscard]] std::string line() const;
};

/// Parse one "tenant graph query args..." line.  Throws lgg::Error with
/// the offending line text on malformed input.  The id is left 0 — script
/// parsers assign it.
[[nodiscard]] Request parse_request_line(std::string_view line);

}  // namespace lgg::serve

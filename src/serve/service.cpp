#include "serve/service.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "core/approx.hpp"
#include "core/kcount.hpp"
#include "core/triangle_cpu.hpp"
#include "graph/bfs.hpp"
#include "ingest/orient.hpp"
#include "obs/trace.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/runner.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace lgg::serve {

/// One batched backend pass: the same-graph requests (by index into the
/// drain's id-sorted request vector) that share a pass key.
struct Service::Group {
  std::string graph;
  std::string key;
  std::vector<std::size_t> members;  // in fair order
};

Service::Service(Catalog& catalog, const ServeOptions& opts)
    : catalog_(catalog), opts_(opts), cache_(opts.cache_capacity) {
  if (opts_.fault_rate > 0.0)
    faults_.emplace(opts_.fault_seed,
                    resilience::FaultRates::uniform(opts_.fault_rate));
}

void Service::submit(Request req) {
  const std::lock_guard<std::mutex> lock(mutex_);
  pending_.push_back(std::move(req));
}

std::string Service::execute_group(ResidentGraph& rg, const Group& group,
                                   const std::vector<Request>& reqs,
                                   const std::vector<std::string>& canon,
                                   std::vector<Response>& responses) {
  const graph::Graph& g = rg.loaded.graph;
  const Request& head = reqs[group.members.front()];
  std::string backend = "host";

  const auto ok_all = [&](const std::string& body) {
    for (const std::size_t idx : group.members) {
      responses[idx].status = Status::kOk;
      responses[idx].body = body;
      cache_.insert(CacheKey{rg.digest, canon[idx], reqs[idx].seed}, body);
    }
  };
  const auto error_all = [&](const std::string& reason) {
    for (const std::size_t idx : group.members) {
      responses[idx].status = Status::kError;
      responses[idx].body = "reason=\"" + reason + "\"";
    }
  };

  switch (head.kind) {
    case QueryKind::kTriangles: {
      std::uint64_t count = 0;
      if (rg.plan.total_tests <= opts_.device_test_budget) {
        // Device pass with the catalog's prepared plan: zero modelled
        // preprocessing, certified by the resilient runner.
        resilience::RunnerOptions ropts;
        ropts.device = catalog_.options().device;
        ropts.metric = catalog_.options().metric;
        ropts.exec = opts_.exec;
        ropts.obs = opts_.obs;
        ropts.prof = opts_.prof;
        ropts.prepared = &rg.plan;
        ropts.faults = faults_ ? &*faults_ : nullptr;
        const resilience::RunnerReport rr = resilience::run_resilient(g, ropts);
        LGG_CHECK(rr.exact, "serve: resilient pass failed to certify "
                            << group.key << " on " << group.graph);
        count = rr.triangles;
        if (opts_.obs != nullptr && rr.recovery.faults > 0)
          opts_.obs->metrics.count("lgg_serve_pass_faults_total",
                                   rr.recovery.faults);
        backend = "resilient";
      } else {
        // Test space too large to simulate per query: the cached DODG
        // intersection counter answers exactly on the host.
        count = ingest::count_triangles_oriented(rg.dodg,
                                                 &ThreadPool::shared());
        backend = "dodg";
      }
      ok_all("triangles=" + std::to_string(count) + " backend=" + backend);
      break;
    }
    case QueryKind::kKClique: {
      const std::uint64_t count = core::count_kcliques(g, head.k);
      ok_all("cliques=" + std::to_string(count) + " backend=" + backend);
      break;
    }
    case QueryKind::kDoulion: {
      const core::DoulionResult res =
          core::doulion_estimate(g, head.p, head.seed);
      ok_all("estimate=" + obs::format_number(res.estimate) +
             " sparsified=" + std::to_string(res.sparsified_count) +
             " kept_edges=" + std::to_string(res.kept_edges) +
             " backend=" + backend);
      break;
    }
    case QueryKind::kWedges: {
      const core::WedgeSampleResult res =
          core::wedge_sampling_estimate(g, head.samples, head.seed);
      ok_all("estimate=" + obs::format_number(res.estimate) +
             " closed_fraction=" + obs::format_number(res.closed_fraction) +
             " wedges=" + std::to_string(res.total_wedges) +
             " backend=" + backend);
      break;
    }
    case QueryKind::kBfs: {
      if (head.vertex >= g.num_vertices()) {
        error_all("vertex out of range");
        backend = "none";
        break;
      }
      auto it = rg.bfs_memo.find(head.vertex);
      if (it == rg.bfs_memo.end())
        it = rg.bfs_memo.emplace(head.vertex, graph::bfs(g, head.vertex))
                 .first;
      const graph::BfsTree& tree = it->second;
      std::uint64_t reached = 0;
      for (const std::uint32_t lvl : tree.level)
        if (lvl != graph::kUnreached) ++reached;
      ok_all("depth=" + std::to_string(tree.depth) +
             " reached=" + std::to_string(reached) + " backend=" + backend);
      break;
    }
    case QueryKind::kCc: {
      if (!rg.cc_memo.has_value())
        rg.cc_memo = core::clustering_coefficients(g);
      bool any_ok = false;
      for (const std::size_t idx : group.members) {
        const Request& r = reqs[idx];
        if (r.vertex >= g.num_vertices()) {
          responses[idx].status = Status::kError;
          responses[idx].body = "reason=\"vertex out of range\"";
          continue;
        }
        any_ok = true;
        responses[idx].status = Status::kOk;
        responses[idx].body =
            "cc=" + obs::format_number((*rg.cc_memo)[r.vertex]) +
            " backend=host";
        cache_.insert(CacheKey{rg.digest, canon[idx], r.seed},
                      responses[idx].body);
      }
      if (!any_ok) backend = "none";
      break;
    }
  }
  return backend;
}

std::vector<Response> Service::drain() {
  std::vector<Request> reqs;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    reqs.swap(pending_);
  }
  std::sort(reqs.begin(), reqs.end(),
            [](const Request& a, const Request& b) { return a.id < b.id; });
  for (std::size_t i = 1; i < reqs.size(); ++i)
    LGG_CHECK(reqs[i - 1].id != reqs[i].id,
              "serve: duplicate request id " << reqs[i].id);

  obs::Scope drain_span(
      opts_.obs, "serve/drain[" + std::to_string(drain_seq_) + "]", "serve");

  std::vector<std::string> canon;
  canon.reserve(reqs.size());
  for (const Request& r : reqs) canon.push_back(canonical_query(r));

  std::vector<Response> responses(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    responses[i].id = reqs[i].id;
    responses[i].tenant = reqs[i].tenant;
    responses[i].graph = reqs[i].graph;
    responses[i].canonical = canon[i];
  }

  std::ostringstream log;

  // 1. Admission: per-tenant quota, applied in id order.
  std::uint64_t rejected = 0;
  std::map<std::string, std::vector<std::size_t>> by_tenant;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Request& r = reqs[i];
    auto& queue = by_tenant[r.tenant];
    if (opts_.tenant_quota != 0 && queue.size() >= opts_.tenant_quota) {
      responses[i].status = Status::kRejected;
      responses[i].body = "reason=\"admission quota exceeded\"";
      ++rejected;
      log << "req id=" << r.id << " tenant=" << r.tenant
          << " graph=" << r.graph << " query=\"" << canon[i]
          << "\" admit=rejected\n";
      if (opts_.obs != nullptr)
        opts_.obs->metrics.count("lgg_serve_admission_rejected_total", 1,
                                 "tenant=\"" + r.tenant + "\"");
      continue;
    }
    queue.push_back(i);
  }

  // 2. Fair order: round-robin across tenants (sorted by name), each
  // tenant's queue in id order.
  std::vector<std::size_t> fair;
  std::size_t admitted = 0;
  for (const auto& [tenant, queue] : by_tenant) admitted += queue.size();
  fair.reserve(admitted);
  std::map<std::string, std::size_t> cursor;
  while (fair.size() < admitted) {
    for (const auto& [tenant, queue] : by_tenant) {
      std::size_t& c = cursor[tenant];
      if (c < queue.size()) fair.push_back(queue[c++]);
    }
  }

  // 3+4. Cache lookups and batching, in fair order.
  std::vector<Group> groups;
  std::map<std::pair<std::string, std::string>, std::size_t> group_index;
  std::uint64_t hits = 0, misses = 0, errors = 0;
  for (const std::size_t idx : fair) {
    const Request& r = reqs[idx];
    if (opts_.obs != nullptr)
      opts_.obs->metrics.count("lgg_serve_requests_total", 1,
                               "tenant=\"" + r.tenant + "\"");
    obs::Scope span(opts_.obs, "serve/req[" + std::to_string(r.id) + "]",
                    "serve");
    if (span) {
      span.arg("tenant", r.tenant);
      span.arg("graph", r.graph);
      span.arg("query", canon[idx]);
    }
    ResidentGraph* rg = catalog_.find(r.graph);
    if (rg == nullptr) {
      responses[idx].status = Status::kError;
      responses[idx].body = "reason=\"unknown graph\"";
      ++errors;
      log << "req id=" << r.id << " tenant=" << r.tenant
          << " graph=" << r.graph << " query=\"" << canon[idx]
          << "\" error=unknown-graph\n";
      if (span) span.arg("error", "unknown graph");
      if (opts_.obs != nullptr)
        opts_.obs->metrics.count("lgg_serve_errors_total");
      continue;
    }
    const CacheKey key{rg->digest, canon[idx], r.seed};
    if (const auto cached = cache_.lookup(key)) {
      responses[idx].status = Status::kOk;
      responses[idx].body = *cached;
      ++hits;
      log << "req id=" << r.id << " tenant=" << r.tenant
          << " graph=" << r.graph << " query=\"" << canon[idx]
          << "\" cache=hit\n";
      if (span) span.arg("cache", "hit");
      if (opts_.obs != nullptr)
        opts_.obs->metrics.count("lgg_serve_cache_hits_total");
      continue;
    }
    ++misses;
    if (opts_.obs != nullptr)
      opts_.obs->metrics.count("lgg_serve_cache_misses_total");
    // Batching off: every miss is its own single-request pass.
    const std::pair<std::string, std::string> gkey{
        r.graph,
        opts_.batching ? pass_key(r) : "req/" + std::to_string(r.id)};
    const auto [it, inserted] = group_index.try_emplace(gkey, groups.size());
    if (inserted) groups.push_back(Group{gkey.first, gkey.second, {}});
    groups[it->second].members.push_back(idx);
    log << "req id=" << r.id << " tenant=" << r.tenant
        << " graph=" << r.graph << " query=\"" << canon[idx]
        << "\" cache=miss pass=" << it->second << "\n";
    if (span) {
      span.arg("cache", "miss");
      span.arg("pass", static_cast<std::uint64_t>(it->second));
    }
  }

  // 5. Execute passes in first-appearance order.
  const std::uint64_t evictions_before = cache_.evictions();
  std::uint64_t merges = 0;
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const Group& group = groups[gi];
    ResidentGraph* rg = catalog_.find(group.graph);
    LGG_ASSERT(rg != nullptr);
    obs::Scope pass_span(opts_.obs, "serve/pass[" + std::to_string(gi) + "]",
                         "serve");
    if (pass_span) {
      pass_span.arg("graph", group.graph);
      pass_span.arg("key", group.key);
      pass_span.arg("size",
                    static_cast<std::uint64_t>(group.members.size()));
    }
    merges += group.members.size() - 1;
    if (opts_.obs != nullptr) {
      opts_.obs->metrics.count("lgg_serve_passes_total");
      if (group.members.size() > 1)
        opts_.obs->metrics.count("lgg_serve_batch_merges_total",
                                 group.members.size() - 1);
    }
    const std::uint64_t pass_t0 =
        opts_.obs != nullptr ? opts_.obs->tracer.now_ns() : 0;
    const std::string backend =
        execute_group(*rg, group, reqs, canon, responses);
    if (pass_span) pass_span.arg("backend", backend);
    if (opts_.obs != nullptr) {
      // Modelled pass latency: the tracer clock the backend charged.
      // One per-pass sample plus one per member request under its tenant,
      // so per-tenant tails are visible even when batching merges them.
      static constexpr double kPassLatencyBounds[] = {1e-4, 1e-3, 1e-2,
                                                      0.1,  1.0,  10.0};
      const double pass_s =
          static_cast<double>(opts_.obs->tracer.now_ns() - pass_t0) * 1e-9;
      opts_.obs->metrics.observe("lgg_serve_pass_latency_s", pass_s,
                                 kPassLatencyBounds);
      for (const std::size_t idx : group.members)
        opts_.obs->metrics.observe("lgg_serve_pass_latency_s", pass_s,
                                   kPassLatencyBounds,
                                   "tenant=\"" + reqs[idx].tenant + "\"");
    }
    log << "pass " << gi << ": graph=" << group.graph
        << " key=" << group.key << " size=" << group.members.size()
        << " backend=" << backend << "\n";
  }
  if (opts_.obs != nullptr && cache_.evictions() > evictions_before)
    opts_.obs->metrics.count("lgg_serve_cache_evictions_total",
                             cache_.evictions() - evictions_before);

  log << "drain seq=" << drain_seq_ << " requests=" << reqs.size()
      << " rejected=" << rejected << " hits=" << hits
      << " misses=" << misses << " errors=" << errors
      << " passes=" << groups.size() << " merges=" << merges << "\n";
  if (drain_span) {
    drain_span.arg("requests", static_cast<std::uint64_t>(reqs.size()));
    drain_span.arg("passes", static_cast<std::uint64_t>(groups.size()));
    drain_span.arg("hits", hits);
  }
  ++drain_seq_;
  log_ += log.str();
  return responses;
}

// ------------------------------------------------- checkpoint/restart state

ServeState Service::state() const {
  LGG_CHECK(pending_.empty(),
            "Service::state: must be taken at a drain boundary "
            "(requests are pending)");
  ServeState s;
  s.drain_seq = drain_seq_;
  s.log = log_;
  s.cache = cache_.snapshot();
  s.has_faults = faults_.has_value();
  if (faults_) s.faults = faults_->state();
  return s;
}

void Service::restore_state(const ServeState& s) {
  LGG_CHECK(pending_.empty() && drain_seq_ == 0 && log_.empty(),
            "Service::restore_state: service already served requests");
  LGG_CHECK(s.has_faults == faults_.has_value(),
            "Service::restore_state: fault configuration differs from the "
            "checkpointed run");
  drain_seq_ = s.drain_seq;
  log_ = s.log;
  cache_.restore(s.cache);
  if (faults_) faults_->restore_state(s.faults);
}

namespace {

constexpr const char* kServeMagic = "lggsrvckpt";
constexpr std::uint64_t kServeFormatVersion = 1;

using resilience::CheckpointError;

[[noreturn]] void srv_corrupt(const std::string& why) {
  throw CheckpointError(CheckpointError::Kind::kCorrupt,
                        "serve checkpoint: " + why);
}

std::string srv_hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

/// Whitespace tokenizer over the checkpoint body; every failure is a
/// typed kCorrupt (truncation and tampering look the same to a parser).
class SrvReader {
 public:
  explicit SrvReader(std::string_view text) : is_(std::string(text)) {}

  std::string tok() {
    std::string t;
    if (!(is_ >> t)) srv_corrupt("unexpected end of data");
    return t;
  }
  void expect(const char* keyword) {
    const std::string t = tok();
    if (t != keyword)
      srv_corrupt("expected '" + std::string(keyword) + "', got '" + t + "'");
  }
  std::uint64_t u64() {
    const std::string t = tok();
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(t.c_str(), &end, 10);
    if (errno != 0 || end == t.c_str() || *end != '\0')
      srv_corrupt("bad integer '" + t + "'");
    return static_cast<std::uint64_t>(v);
  }
  std::uint64_t hex() {
    const std::string t = tok();
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(t.c_str(), &end, 16);
    if (errno != 0 || end == t.c_str() || *end != '\0')
      srv_corrupt("bad hex value '" + t + "'");
    return static_cast<std::uint64_t>(v);
  }
  std::string str() { return resilience::ckpt_decode(tok()); }
  bool done() {
    std::string t;
    return !(is_ >> t);
  }

 private:
  std::istringstream is_;
};

}  // namespace

std::string encode_serve_state(const ServeState& s) {
  std::string body;
  body += std::string(kServeMagic) + " " +
          std::to_string(kServeFormatVersion) + "\n";
  body += "id " + std::to_string(s.next_id) + "\n";
  body += "drain " + std::to_string(s.drain_seq) + "\n";
  body += "log " + resilience::ckpt_encode(s.log) + "\n";
  body += "cache " + std::to_string(s.cache.tick) + " " +
          std::to_string(s.cache.evictions) + " " +
          std::to_string(s.cache.entries.size()) + "\n";
  for (const ResultCache::Snapshot::Entry& e : s.cache.entries)
    body += "e " + srv_hex64(e.key.digest) + " " +
            resilience::ckpt_encode(e.key.canonical) + " " +
            std::to_string(e.key.seed) + " " + std::to_string(e.tick) + " " +
            resilience::ckpt_encode(e.body) + "\n";
  body += "fau " + std::string(s.has_faults ? "1" : "0") + "\n";
  if (s.has_faults) {
    body += "fst";
    for (const std::uint64_t d : s.faults.draws)
      body += " " + std::to_string(d);
    for (const std::uint64_t c : s.faults.counts)
      body += " " + std::to_string(c);
    for (const std::uint64_t r : s.faults.replay_cursor)
      body += " " + std::to_string(r);
    body += " " + std::to_string(s.faults.events.size()) + "\n";
    for (const resilience::FaultEvent& e : s.faults.events)
      body += "fe " + std::to_string(static_cast<int>(e.site)) + " " +
              std::to_string(e.draw) + " " + std::to_string(e.detail) + "\n";
  }
  body += "digest " + srv_hex64(resilience::ckpt_fnv1a(body)) + "\n";
  return body;
}

ServeState decode_serve_state(std::string_view text) {
  // Digest trailer first: reject truncation/tampering before parsing.
  const std::size_t at = text.rfind("\ndigest ");
  if (at == std::string_view::npos)
    srv_corrupt("missing digest trailer");
  const std::string_view body = text.substr(0, at + 1);
  SrvReader trailer(text.substr(at + 1));
  trailer.expect("digest");
  const std::uint64_t stored = trailer.hex();
  if (!trailer.done()) srv_corrupt("trailing data after digest");
  if (stored != resilience::ckpt_fnv1a(body))
    srv_corrupt("digest mismatch (file is truncated or tampered)");

  SrvReader r(body);
  const std::string magic = r.tok();
  if (magic != kServeMagic)
    throw CheckpointError(CheckpointError::Kind::kVersion,
                          "serve checkpoint: bad magic '" + magic + "'");
  const std::uint64_t version = r.u64();
  if (version != kServeFormatVersion)
    throw CheckpointError(
        CheckpointError::Kind::kVersion,
        "serve checkpoint: format version " + std::to_string(version) +
            " (expected " + std::to_string(kServeFormatVersion) + ")");

  ServeState s;
  r.expect("id");
  s.next_id = r.u64();
  r.expect("drain");
  s.drain_seq = r.u64();
  r.expect("log");
  s.log = r.str();
  r.expect("cache");
  s.cache.tick = r.u64();
  s.cache.evictions = r.u64();
  const std::uint64_t n_entries = r.u64();
  if (n_entries > s.cache.tick)
    srv_corrupt("more cache entries than logical ticks");
  s.cache.entries.reserve(static_cast<std::size_t>(n_entries));
  for (std::uint64_t i = 0; i < n_entries; ++i) {
    r.expect("e");
    ResultCache::Snapshot::Entry e;
    e.key.digest = r.hex();
    e.key.canonical = r.str();
    e.key.seed = r.u64();
    e.tick = r.u64();
    e.body = r.str();
    if (e.tick > s.cache.tick)
      srv_corrupt("cache entry tick beyond the logical clock");
    s.cache.entries.push_back(std::move(e));
  }
  r.expect("fau");
  s.has_faults = r.u64() != 0;
  if (s.has_faults) {
    r.expect("fst");
    for (std::size_t i = 0; i < gpusim::kNumFaultSites; ++i)
      s.faults.draws[i] = r.u64();
    for (std::size_t i = 0; i < gpusim::kNumFaultSites; ++i)
      s.faults.counts[i] = r.u64();
    for (std::size_t i = 0; i < gpusim::kNumFaultSites; ++i)
      s.faults.replay_cursor[i] = r.u64();
    const std::uint64_t n_events = r.u64();
    s.faults.events.reserve(static_cast<std::size_t>(n_events));
    for (std::uint64_t i = 0; i < n_events; ++i) {
      r.expect("fe");
      const std::uint64_t site = r.u64();
      if (site >= gpusim::kNumFaultSites)
        srv_corrupt("fault event site out of range");
      resilience::FaultEvent e;
      e.site = static_cast<gpusim::FaultSite>(site);
      e.draw = r.u64();
      e.detail = r.u64();
      s.faults.events.push_back(e);
    }
  }
  if (!r.done()) srv_corrupt("trailing data after the last section");
  return s;
}

void save_serve_state(const std::string& path, const ServeState& s) {
  resilience::write_file_atomic(path, encode_serve_state(s));
}

ServeState load_serve_state(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw CheckpointError(CheckpointError::Kind::kMissing,
                          "serve checkpoint: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return decode_serve_state(buf.str());
}

}  // namespace lgg::serve

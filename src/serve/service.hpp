// The serving session: admission, fair ordering, batching, result cache
// and backend execution over a catalog of resident graphs (DESIGN.md §15).
//
// Concurrency model: submit() is thread-safe and does nothing but append
// the request to the pending set; ALL serving decisions happen inside
// drain(), which runs on one thread and processes requests in caller-
// assigned id order — so the responses, the request log, the span tree
// and the metrics are pure functions of the request set, byte-identical
// no matter how many client threads submitted or in what arrival order.
// Parallelism lives INSIDE a pass (the simulator's ExecPolicy sharding,
// the DODG counter's ThreadPool), where the determinism contract of
// PRs 1-7 already guarantees bit-identical results.
//
// drain() pipeline, in order:
//   1. admission  — per-tenant quota applied in id order; rejected
//                   requests get a Status::kRejected response,
//   2. fair order — round-robin across tenants (sorted by name, each
//                   tenant's queue in id order): no tenant waits behind
//                   another tenant's burst,
//   3. cache      — lookup under (graph digest, canonical query, seed);
//                   hits answer WITHOUT touching any backend (zero new
//                   kernel launches),
//   4. batching   — misses grouped by (graph, pass key) in first-
//                   appearance order; one backend pass answers the whole
//                   group (all cc queries share one sweep, all triangle
//                   queries one device run),
//   5. execution  — ResilientRunner (with the catalog's prepared ALS
//                   plan, zero modelled preprocessing) when the graph's
//                   test space fits the device budget, the DODG host
//                   counter beyond it; estimates/bfs/kclique on their
//                   host backends.
//
// Response bodies are pure functions of (graph content, canonical query,
// seed): cache/batch markers appear only in the log, so cached and
// uncached runs produce identical responses.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gpusim/executor.hpp"
#include "obs/obs.hpp"
#include "resilience/fault.hpp"
#include "serve/cache.hpp"
#include "serve/catalog.hpp"
#include "serve/request.hpp"

namespace lgg::serve {

struct ServeOptions {
  /// Result-cache capacity in entries (0 disables caching).
  std::size_t cache_capacity = 64;
  /// Merge same-graph same-pass-key requests into one backend pass.
  bool batching = true;
  /// Per-tenant admission quota per drain (0 = unlimited).  Applied in
  /// request-id order, so which requests are rejected is deterministic.
  std::uint64_t tenant_quota = 0;
  /// Triangle backend resolution: the resilient device pipeline runs
  /// when the graph's ALS test space is at most this many candidate
  /// triples; larger graphs use the DODG host counter (simulating every
  /// test of a huge graph is exactly what the serving layer must not do).
  std::uint64_t device_test_budget = 1u << 22;
  /// Host-side execution policy for simulated device passes (results are
  /// bit-identical across settings).
  gpusim::ExecPolicy exec;
  /// Optional observability session: per-request + per-pass spans and
  /// lgg_serve_* counters.  Must be the catalog's session (or null).
  obs::Session* obs = nullptr;
  /// Optional profiler hook (non-owning), forwarded to every resilient
  /// backend pass the drain loop runs (DESIGN.md §17).
  gpusim::ProfilerHook* prof = nullptr;
  /// Uniform device fault rate for resilient backend passes (0 runs
  /// fault-free).  The service owns one seed-driven injector whose draw
  /// position persists across passes and drains, so the fault pattern —
  /// and every retry the runner charges — is a pure function of the
  /// request sequence: responses stay byte-identical at any thread count
  /// and any cache state, only recovery accounting varies.
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 0;
};

/// Drain-boundary serving state for durable checkpoint/restart
/// (DESIGN.md §16): everything a restarted process needs to continue a
/// script byte-identically — the drain sequence number, the request log
/// prefix, the result cache (contents + logical clock), the fault
/// injector position, and the caller's request-id cursor.
struct ServeState {
  std::uint64_t next_id = 0;  // caller-maintained request-id cursor
  std::uint64_t drain_seq = 0;
  std::string log;
  ResultCache::Snapshot cache;
  bool has_faults = false;
  resilience::FaultInjector::State faults;
};

/// Serialize / parse the serve checkpoint (same primitives and digest
/// trailer as the resilient runner's format).  decode throws
/// resilience::CheckpointError (kCorrupt / kVersion).
[[nodiscard]] std::string encode_serve_state(const ServeState& s);
[[nodiscard]] ServeState decode_serve_state(std::string_view text);

/// Durable save (write-to-temp + rename) / load (kMissing when absent).
void save_serve_state(const std::string& path, const ServeState& s);
[[nodiscard]] ServeState load_serve_state(const std::string& path);

class Service {
 public:
  Service(Catalog& catalog, const ServeOptions& opts = {});

  /// Enqueue a request (thread-safe; any client thread).  Ids must be
  /// unique within a drain — they key every serving decision.
  void submit(Request req);

  /// Serve every pending request (single caller at a time): admission,
  /// fair ordering, cache, batching, execution.  Returns responses
  /// sorted by id and appends to the request log.
  std::vector<Response> drain();

  /// Deterministic request log (one line per request and per pass, plus
  /// a summary line per drain).
  [[nodiscard]] const std::string& log() const noexcept { return log_; }

  [[nodiscard]] const ServeOptions& options() const noexcept {
    return opts_;
  }
  [[nodiscard]] const ResultCache& cache() const noexcept { return cache_; }
  /// The owned fault injector (nullptr when fault_rate is 0).
  [[nodiscard]] const resilience::FaultInjector* faults() const noexcept {
    return faults_ ? &*faults_ : nullptr;
  }

  /// Checkpointable state at a drain boundary (next_id left 0 — the
  /// request-id cursor lives with the caller who assigns ids).  Must not
  /// be called with requests pending.
  [[nodiscard]] ServeState state() const;
  /// Restore a drain-boundary state onto a freshly constructed service
  /// with the same options.  Must precede any submit/drain.
  void restore_state(const ServeState& s);

 private:
  struct Group;  // one batched backend pass

  std::string execute_group(ResidentGraph& rg, const Group& group,
                            const std::vector<Request>& reqs,
                            const std::vector<std::string>& canon,
                            std::vector<Response>& responses);

  Catalog& catalog_;
  ServeOptions opts_;
  ResultCache cache_;
  /// Owned injector for resilient passes (engaged when fault_rate > 0);
  /// only the single-threaded drain path touches it.
  std::optional<resilience::FaultInjector> faults_;
  std::mutex mutex_;
  std::vector<Request> pending_;
  std::string log_;
  std::uint64_t drain_seq_ = 0;
};

}  // namespace lgg::serve

#include "stream/edge_stream.hpp"

#include <sstream>

#include "util/error.hpp"

namespace lgg::stream {

EdgeStream::EdgeStream(std::string path) : path_(std::move(path)) {
  std::ifstream probe(path_);
  LGG_CHECK(probe.good(), "cannot open edge stream: " << path_);
}

StreamStats EdgeStream::for_each_edge(
    const std::function<void(std::uint64_t, std::uint64_t)>& fn) const {
  std::ifstream in(path_);
  LGG_CHECK(in.good(), "cannot open edge stream: " << path_);

  StreamStats stats;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    LGG_CHECK(static_cast<bool>(ls >> u >> v),
              "edge stream " << path_ << ": malformed line " << lineno);
    ++stats.lines;
    if (u == v) continue;
    ++stats.edges;
    stats.max_vertex = std::max({stats.max_vertex, u, v});
    if (fn) fn(u, v);
  }
  return stats;
}

const StreamStats& EdgeStream::stats() const {
  if (!have_stats_) {
    stats_ = for_each_edge({});
    have_stats_ = true;
  }
  return stats_;
}

}  // namespace lgg::stream

// Edge streams over on-disk graphs (the paper's Section XII future work:
// "streaming graphs that are much larger in size, and need to be stored
// externally on disks").
//
// An EdgeStream makes repeated sequential passes over a SNAP-format edge
// list without ever materialising the graph: each pass visits every edge
// once, in file order, with O(1) memory.  Vertex ids are used raw (the
// caller densifies if needed); self-loops are skipped.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>

namespace lgg::stream {

struct StreamStats {
  std::uint64_t edges = 0;      // non-loop edges seen (with duplicates)
  std::uint64_t max_vertex = 0; // largest endpoint id
  std::uint64_t lines = 0;      // data lines parsed
};

class EdgeStream {
 public:
  /// Opens the file; throws lgg::Error if it cannot be read.
  explicit EdgeStream(std::string path);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// One full sequential pass; `fn(u, v)` per non-loop edge in file order.
  /// Returns pass statistics.  Malformed lines throw lgg::Error.
  StreamStats for_each_edge(
      const std::function<void(std::uint64_t, std::uint64_t)>& fn) const;

  /// Cached statistics from a counting pass (first call scans the file).
  const StreamStats& stats() const;

 private:
  std::string path_;
  mutable StreamStats stats_;
  mutable bool have_stats_ = false;
};

}  // namespace lgg::stream

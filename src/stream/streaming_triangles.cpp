#include "stream/streaming_triangles.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "core/triangle_cpu.hpp"
#include "graph/graph.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace lgg::stream {

namespace {

/// Count triangles of `g` (local dense ids) whose raw-id-sorted vertices
/// fall into the interval triple (a, b, c).  `raw` maps local -> raw id,
/// `interval_of` classifies raw ids.  Plain neighbour-intersection walk;
/// the induced subgraphs are small by construction.
std::uint64_t count_matching_triangles(
    const graph::Graph& g, const std::vector<std::uint64_t>& raw,
    const std::function<std::uint32_t(std::uint64_t)>& interval_of,
    std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  std::uint64_t count = 0;
  for (graph::Vertex u = 0; u < g.num_vertices(); ++u) {
    const auto nu = g.neighbors(u);
    for (const graph::Vertex v : nu) {
      if (v <= u) continue;
      const auto nv = g.neighbors(v);
      auto iu = nu.begin();
      auto iv = nv.begin();
      while (iu != nu.end() && iv != nv.end()) {
        if (*iu < *iv)
          ++iu;
        else if (*iv < *iu)
          ++iv;
        else {
          const graph::Vertex w = *iu;
          if (w > v) {
            // Order by RAW id so each triangle is classified once
            // globally, independent of local-id assignment.
            std::uint64_t r[3] = {raw[u], raw[v], raw[w]};
            std::sort(r, r + 3);
            if (interval_of(r[0]) == a && interval_of(r[1]) == b &&
                interval_of(r[2]) == c)
              ++count;
          }
          ++iu;
          ++iv;
        }
      }
    }
  }
  return count;
}

}  // namespace

ExternalCountResult count_triangles_external(
    const EdgeStream& stream, std::uint64_t memory_budget_edges) {
  LGG_CHECK(memory_budget_edges >= 3,
            "external count: budget must allow at least 3 edges");

  const StreamStats& stats = stream.stats();
  ExternalCountResult result;
  result.passes = 1;  // the sizing pass behind stats()
  if (stats.edges == 0) {
    result.intervals = 1;
    return result;
  }

  // P ≈ 3*sqrt(m/B): a uniformly spread triple then induces ~m*(3/P)^2 <=
  // B edges.  Raw-id-range intervals keep the classifier O(1)/stateless.
  const double m = static_cast<double>(stats.edges);
  const double budget = static_cast<double>(memory_budget_edges);
  auto p_value = static_cast<std::uint32_t>(
      std::ceil(3.0 * std::sqrt(m / budget)));
  p_value = std::max<std::uint32_t>(p_value, 1);
  result.intervals = p_value;

  const std::uint64_t span = stats.max_vertex + 1;
  const std::uint64_t width = (span + p_value - 1) / p_value;
  const auto interval_of = [width](std::uint64_t v) {
    return static_cast<std::uint32_t>(v / width);
  };

  for (std::uint32_t a = 0; a < p_value; ++a) {
    for (std::uint32_t b = a; b < p_value; ++b) {
      for (std::uint32_t c = b; c < p_value; ++c) {
        // Stream pass: keep edges whose endpoints both classify into
        // {a, b, c}, compacting raw ids to local ones on the fly.
        std::unordered_map<std::uint64_t, graph::Vertex> compact;
        std::vector<std::uint64_t> raw;
        std::vector<graph::Edge> edges;
        const auto keep = [&](std::uint64_t iv) {
          return iv == a || iv == b || iv == c;
        };
        stream.for_each_edge([&](std::uint64_t u, std::uint64_t v) {
          if (!keep(interval_of(u)) || !keep(interval_of(v))) return;
          auto local = [&](std::uint64_t r) {
            auto [it, inserted] = compact.try_emplace(
                r, static_cast<graph::Vertex>(raw.size()));
            if (inserted) raw.push_back(r);
            return it->second;
          };
          const graph::Vertex lu = local(u);
          const graph::Vertex lv = local(v);
          edges.emplace_back(lu, lv);
        });
        ++result.passes;
        result.peak_edges =
            std::max<std::uint64_t>(result.peak_edges, edges.size());

        const graph::Graph sub =
            graph::Graph::from_edges(raw.size(), edges);
        result.triangles +=
            count_matching_triangles(sub, raw, interval_of, a, b, c);
      }
    }
  }
  return result;
}

StreamDoulionResult doulion_stream(const EdgeStream& stream, double p,
                                   std::uint64_t seed) {
  LGG_CHECK(p > 0.0 && p <= 1.0, "doulion_stream: p=" << p
                                                      << " not in (0,1]");
  Xoshiro256 rng(seed);

  std::unordered_map<std::uint64_t, graph::Vertex> compact;
  std::vector<graph::Edge> edges;
  StreamDoulionResult result;
  result.p = p;
  const StreamStats pass = stream.for_each_edge(
      [&](std::uint64_t u, std::uint64_t v) {
        if (!rng.bernoulli(p)) return;
        auto local = [&](std::uint64_t r) {
          auto [it, inserted] = compact.try_emplace(
              r, static_cast<graph::Vertex>(compact.size()));
          (void)inserted;
          return it->second;
        };
        const graph::Vertex lu = local(u);
        const graph::Vertex lv = local(v);
        edges.emplace_back(lu, lv);
      });
  result.stream_edges = pass.edges;
  result.kept_edges = edges.size();

  const graph::Graph g = graph::Graph::from_edges(compact.size(), edges);
  result.estimate =
      static_cast<double>(core::count_triangles_forward(g)) / (p * p * p);
  return result;
}

}  // namespace lgg::stream

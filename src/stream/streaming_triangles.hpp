// Triangle counting over on-disk edge streams with bounded memory — the
// paper's Section XII future work, built from two published techniques:
//
//  * External interval partitioning: split the (densified) vertex range
//    into P intervals so that the edges induced by any three intervals fit
//    the memory budget; for every interval triple (a <= b <= c), stream
//    the file, keep only the induced edges, and count the triangles whose
//    sorted vertices fall into (a, b, c).  Every triangle is counted in
//    exactly one triple, so the result is exact.  C(P+2, 3) passes.
//
//  * Single-pass DOULION streaming (paper reference [16]): keep each edge
//    with probability p as it streams by, count at end, scale by 1/p^3 —
//    memory ~ p*m, one pass, unbiased estimate.
#pragma once

#include <cstdint>
#include <string>

#include "stream/edge_stream.hpp"

namespace lgg::stream {

struct ExternalCountResult {
  std::uint64_t triangles = 0;
  std::uint32_t intervals = 0;   // P
  std::uint64_t passes = 0;      // file scans performed (incl. sizing pass)
  std::uint64_t peak_edges = 0;  // largest in-memory edge set across passes
};

/// Exact external-memory triangle count of the stream, holding at most
/// ~`memory_budget_edges` edges in memory at any time (plus O(n/P)
/// bookkeeping).  Throws lgg::Error if the budget is too small for even a
/// single vertex's incident structure to make progress (budget < 3).
ExternalCountResult count_triangles_external(
    const EdgeStream& stream, std::uint64_t memory_budget_edges);

struct StreamDoulionResult {
  double estimate = 0.0;
  std::uint64_t kept_edges = 0;
  std::uint64_t stream_edges = 0;  // distinct non-loop edges in the stream
  double p = 1.0;
};

/// One-pass DOULION over the stream: sample, then count in memory.
/// Duplicate stream edges are deduplicated by the in-memory graph build.
StreamDoulionResult doulion_stream(const EdgeStream& stream, double p,
                                   std::uint64_t seed);

}  // namespace lgg::stream

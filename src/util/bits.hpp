// Small bit-manipulation helpers used by the bit-packed adjacency
// representations (graph::BitMatrix, graph::SutMatrix) and the gpusim
// address arithmetic.
#pragma once

#include <bit>
#include <cstdint>
#include <span>

namespace lgg {

inline constexpr std::size_t kBitsPerWord = 64;

/// Number of 64-bit words needed to hold `bits` bits.
constexpr std::size_t words_for_bits(std::size_t bits) noexcept {
  return (bits + kBitsPerWord - 1) / kBitsPerWord;
}

/// Read bit `i` of a packed word array.
constexpr bool get_bit(std::span<const std::uint64_t> words,
                       std::size_t i) noexcept {
  return (words[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1u;
}

/// Set bit `i` of a packed word array to 1.
constexpr void set_bit(std::span<std::uint64_t> words, std::size_t i) noexcept {
  words[i / kBitsPerWord] |= std::uint64_t{1} << (i % kBitsPerWord);
}

/// Clear bit `i` of a packed word array.
constexpr void clear_bit(std::span<std::uint64_t> words,
                         std::size_t i) noexcept {
  words[i / kBitsPerWord] &= ~(std::uint64_t{1} << (i % kBitsPerWord));
}

/// Population count over a word array (number of set bits).
constexpr std::uint64_t popcount(std::span<const std::uint64_t> words) noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t w : words) total += static_cast<std::uint64_t>(std::popcount(w));
  return total;
}

/// Population count of the bitwise AND of two equal-length word arrays —
/// the inner loop of bit-matrix triangle counting (|N(u) ∩ N(v)|).
constexpr std::uint64_t and_popcount(std::span<const std::uint64_t> a,
                                     std::span<const std::uint64_t> b) noexcept {
  std::uint64_t total = 0;
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i)
    total += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  return total;
}

/// Round `x` up to the next multiple of `align` (align must be a power of 2).
constexpr std::uint64_t round_up_pow2(std::uint64_t x, std::uint64_t align) noexcept {
  return (x + align - 1) & ~(align - 1);
}

/// Visit the index of every set bit in `words`, lowest first.
template <typename Fn>
constexpr void for_each_set_bit(std::span<const std::uint64_t> words, Fn&& fn) {
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    std::uint64_t w = words[wi];
    while (w != 0) {
      const int b = std::countr_zero(w);
      fn(wi * kBitsPerWord + static_cast<std::size_t>(b));
      w &= w - 1;  // clear lowest set bit
    }
  }
}

}  // namespace lgg

// Error-handling helpers shared by all lgg modules.
//
// Library code throws `lgg::Error` (an std::runtime_error) on contract
// violations that depend on user input (bad file, graph too large for a
// device, ...).  Internal invariants use LGG_ASSERT, which is active in all
// build types: this is a research library and silent corruption is worse
// than an abort.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace lgg {

/// Exception type thrown by all lgg components on user-facing errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr,
                                     const std::source_location loc) {
  std::ostringstream os;
  os << "lgg internal invariant violated: (" << expr << ") at "
     << loc.file_name() << ':' << loc.line() << " in "
     << loc.function_name();
  throw std::logic_error(os.str());
}
}  // namespace detail

/// Throw lgg::Error with a streamed message: LGG_THROW("bad n: " << n);
#define LGG_THROW(msg_stream)              \
  do {                                     \
    std::ostringstream lgg_os_;            \
    lgg_os_ << msg_stream;                 \
    throw ::lgg::Error(lgg_os_.str());     \
  } while (0)

/// Check a user-input precondition; throws lgg::Error when violated.
#define LGG_CHECK(cond, msg_stream)        \
  do {                                     \
    if (!(cond)) LGG_THROW(msg_stream);    \
  } while (0)

/// Internal invariant, active in every build type.
#define LGG_ASSERT(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::lgg::detail::assert_fail(#cond, std::source_location::current()); \
  } while (0)

}  // namespace lgg

#include "util/prng.hpp"

namespace lgg {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  // Never allow the all-zero state; SplitMix64 expansion guarantees this
  // with overwhelming probability, but we guard anyway.
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9E3779B97F4A7C15ull;
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::uniform(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire rejection sampling: unbiased and usually a single multiply.
  __extension__ typedef unsigned __int128 U128;  // GNU extension under -Wpedantic
  std::uint64_t x = next();
  U128 m = static_cast<U128>(x) * static_cast<U128>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<U128>(x) * static_cast<U128>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace lgg

// Deterministic pseudo-random number generation for graph generators and
// property tests.  We provide our own small generators (SplitMix64 for
// seeding, xoshiro256** for the stream) so results are reproducible across
// standard libraries — std::mt19937 streams are portable but slow, and
// std::uniform_int_distribution output is NOT portable across vendors.
#pragma once

#include <array>
#include <cstdint>

namespace lgg {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x1234567890ABCDEFull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound) without modulo bias
  /// (Lemire's multiply-then-shift rejection method).
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace lgg

// Wall-clock stopwatch for the benchmark harnesses.  Benches report both
// real wall time on this machine ("wall_s") and modelled paper-era time
// ("model_s", from gpusim); this class provides the former.
#pragma once

#include <chrono>

namespace lgg {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_s() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_ms() const noexcept { return elapsed_s() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lgg

#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace lgg {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  LGG_CHECK(!header_.empty(), "TextTable requires at least one column");
}

TextTable& TextTable::new_row() {
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

TextTable& TextTable::add(std::string cell) {
  LGG_CHECK(!rows_.empty(), "TextTable::add before new_row");
  LGG_CHECK(rows_.back().size() < header_.size(),
            "TextTable row has more cells than header columns ("
                << header_.size() << ")");
  rows_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::add(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return add(os.str());
}

TextTable& TextTable::add(std::uint64_t value) {
  return add(std::to_string(value));
}

TextTable& TextTable::add(std::int64_t value) {
  return add(std::to_string(value));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(width[c])) << cell;
      if (c + 1 < header_.size()) os << "  ";
    }
    os << '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n") != std::string::npos) {
      os << '"';
      for (char ch : cell) {
        if (ch == '"') os << '"';
        os << ch;
      }
      os << '"';
    } else {
      os << cell;
    }
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      emit_cell(row[c]);
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(unit == 0 ? 0 : 2) << value << ' '
     << kUnits[unit];
  return os.str();
}

std::string format_seconds(double seconds) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  if (seconds >= 1.0)
    os << seconds << " s";
  else if (seconds >= 1e-3)
    os << seconds * 1e3 << " ms";
  else
    os << seconds * 1e6 << " us";
  return os.str();
}

}  // namespace lgg

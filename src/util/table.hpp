// Plain-text table and CSV emission for the benchmark harnesses.
//
// Every bench binary prints the rows/series of one paper table or figure.
// TextTable renders aligned monospace tables (like the paper's tables);
// it can also dump the same data as CSV for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lgg {

/// A simple column-aligned text table.  Cells are strings; numeric
/// convenience overloads format with sensible defaults.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Begin a new row.  Subsequent add() calls fill it left to right.
  TextTable& new_row();

  TextTable& add(std::string cell);
  TextTable& add(const char* cell) { return add(std::string(cell)); }
  TextTable& add(double value, int precision = 3);
  TextTable& add(std::uint64_t value);
  TextTable& add(std::int64_t value);
  TextTable& add(int value) { return add(static_cast<std::int64_t>(value)); }

  /// Render as an aligned monospace table with a rule under the header.
  void print(std::ostream& os) const;

  /// Render as CSV (RFC-4180-ish; cells containing commas are quoted).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a byte count with binary units ("4.00 GiB").
std::string format_bytes(std::uint64_t bytes);

/// Format seconds adaptively ("1.23 s", "4.56 ms", "789 us").
std::string format_seconds(double seconds);

}  // namespace lgg

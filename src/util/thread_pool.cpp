#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/error.hpp"

namespace lgg {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  // Chunk count: never more than one per executor (workers + the calling
  // thread), never so many that a chunk drops below `grain` elements.
  // chunks <= n / grain <= n guarantees every chunk is non-empty.
  const std::size_t max_chunks = std::max<std::size_t>(1, n / grain);
  const std::size_t chunks = std::min(workers_.size() + 1, max_chunks);
  if (chunks <= 1) {
    fn(0, n);
    return;
  }

  std::atomic<std::size_t> remaining{chunks - 1};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  // Chunk 0 runs inline on the calling thread below; chunks 1..C-1 go to
  // the queue first so workers start while the caller computes its share.
  std::size_t begin = base + (0 < extra ? 1 : 0);
  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    auto task = [&, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        const std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        const std::lock_guard lock(done_mutex);
        done_cv.notify_all();
      }
    };
    {
      const std::lock_guard lock(mutex_);
      tasks_.emplace(std::move(task));
    }
    begin = end;
  }
  cv_.notify_all();

  try {
    fn(0, base + (0 < extra ? 1 : 0));
  } catch (...) {
    const std::lock_guard lock(error_mutex);
    if (!first_error) first_error = std::current_exception();
  }

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for_dynamic(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain, std::size_t chunks_per_worker) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (chunks_per_worker == 0) chunks_per_worker = 1;
  const std::size_t executors = workers_.size() + 1;
  const std::size_t max_chunks = std::max<std::size_t>(1, n / grain);
  const std::size_t chunks = std::min(executors * chunks_per_worker, max_chunks);
  if (chunks <= 1 || workers_.empty()) {
    fn(0, n);
    return;
  }

  // Balanced fixed boundaries: chunk c covers [c*base + min(c, extra), +len).
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto run_chunks = [&] {
    for (;;) {
      const std::size_t c = next.fetch_add(1);
      if (c >= chunks) return;
      const std::size_t begin = c * base + std::min(c, extra);
      const std::size_t end = begin + base + (c < extra ? 1 : 0);
      try {
        fn(begin, end);
      } catch (...) {
        const std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  // One claiming task per worker (never more tasks than chunks); the
  // calling thread claims chunks too, so every chunk is joined before the
  // scope exits even if the queue is busy.
  const std::size_t tasks = std::min(workers_.size(), chunks - 1);
  std::atomic<std::size_t> remaining{tasks};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  {
    const std::lock_guard lock(mutex_);
    for (std::size_t t = 0; t < tasks; ++t) {
      tasks_.emplace([&] {
        run_chunks();
        if (remaining.fetch_sub(1) == 1) {
          const std::lock_guard done_lock(done_mutex);
          done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  run_chunks();

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace lgg

// Minimal fixed-size thread pool with a parallel_for helper.
//
// Used by the CPU reference implementations when the host has more than one
// core, by the gpusim executor to shard independent warp work across host
// cores, and by tests that exercise concurrent access to shared read-only
// structures.  The pool follows the structured-parallelism idiom from the
// OpenMP examples guide: work is submitted as a batch and joined before the
// submitting scope exits; no detached tasks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lgg {

class ThreadPool {
 public:
  /// Creates `threads` worker threads (default: hardware concurrency, at
  /// least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Process-wide shared pool sized to the hardware concurrency.  Lazily
  /// constructed on first use; lives until process exit.  Intended for
  /// callers that need occasional bursts of parallelism (the gpusim
  /// executor) without paying thread creation per call.
  static ThreadPool& shared();

  /// Runs fn(chunk_begin, chunk_end) over [0, n) split into roughly equal
  /// contiguous chunks and waits for completion.  At most one chunk per
  /// worker plus one executed inline on the calling thread; every chunk is
  /// non-empty, and when n >= grain every chunk holds at least `grain`
  /// elements (so tiny ranges produce few tasks instead of many empty or
  /// one-element ones).  Exceptions thrown by fn propagate to the caller
  /// (first one wins); the full range is still joined before rethrowing.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Like parallel_for, but splits [0, n) into up to `chunks_per_worker`
  /// chunks per executor and lets workers claim them from a shared atomic
  /// cursor.  Use when per-element cost is badly skewed (per-vertex
  /// adjacency sorts on power-law graphs): static chunking strands the
  /// heavy chunk on one worker, dynamic claiming rebalances.  The chunk
  /// boundaries depend only on (n, grain, chunks_per_worker, pool size),
  /// never on claim order, so callers writing to disjoint ranges stay
  /// deterministic.  Exception semantics match parallel_for.
  void parallel_for_dynamic(
      std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
      std::size_t grain = 1, std::size_t chunks_per_worker = 8);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace lgg

// Minimal fixed-size thread pool with a parallel_for helper.
//
// Used by the CPU reference implementations when the host has more than one
// core, and by tests that exercise concurrent access to shared read-only
// structures.  The pool follows the structured-parallelism idiom from the
// OpenMP examples guide: work is submitted as a batch and joined before the
// submitting scope exits; no detached tasks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lgg {

class ThreadPool {
 public:
  /// Creates `threads` worker threads (default: hardware concurrency, at
  /// least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(chunk_begin, chunk_end) over [0, n) split into roughly equal
  /// contiguous chunks, one per worker, and waits for completion.
  /// Exceptions thrown by fn propagate to the caller (first one wins).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace lgg

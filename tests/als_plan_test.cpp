#include <gtest/gtest.h>

#include <set>

#include "combi/binomial.hpp"
#include "core/als_plan.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace lgg::core {
namespace {

using combi::binomial;
using graph::Graph;

TEST(AlsCounts, ClosedFormsAgree) {
  for (std::uint32_t s = 3; s <= 40; ++s)
    for (std::uint32_t x_max = 1; x_max + 2 <= s; ++x_max) {
      std::uint64_t manual = 0;
      for (std::uint32_t x = 0; x < x_max; ++x)
        manual += als_tests_for_x(s, x);
      EXPECT_EQ(als_total_tests(s, x_max), manual)
          << "s=" << s << " x_max=" << x_max;
    }
}

TEST(AlsPlan, CompleteGraphSingleAls) {
  // K_n from any root: levels {root}, {rest} -> one ALS, last, covering
  // all C(n,3) tests.
  const Graph g = graph::complete(10);
  const AlsPlan plan = build_als_plan(g);
  ASSERT_EQ(plan.jobs.size(), 1u);
  EXPECT_EQ(plan.jobs[0].s, 10u);
  EXPECT_EQ(plan.jobs[0].a, 1u);
  EXPECT_EQ(plan.jobs[0].x_max, 8u);  // s - 2: last ALS widens the bound
  EXPECT_EQ(plan.total_tests, binomial(10, 3));
}

TEST(AlsPlan, PathPlanShape) {
  // Path 0-1-2-3-4: levels are singletons; ALS r = {r, r+1} has s=2 ->
  // zero tests each, but jobs still exist.
  const Graph g = graph::path(5);
  const AlsPlan plan = build_als_plan(g);
  EXPECT_EQ(plan.jobs.size(), 4u);
  EXPECT_EQ(plan.total_tests, 0u);
}

TEST(AlsPlan, IsolatedVerticesAreEmptyJobs) {
  const Graph g(3);
  const AlsPlan plan = build_als_plan(g);
  EXPECT_EQ(plan.num_components, 3u);
  EXPECT_EQ(plan.total_tests, 0u);
  for (const AlsJob& job : plan.jobs) EXPECT_EQ(job.tests, 0u);
}

TEST(AlsPlan, OffsetsArePrefixSums) {
  const Graph g = graph::erdos_renyi(80, 0.06, 3);
  const AlsPlan plan = build_als_plan(g);
  std::uint64_t expect = 0;
  for (const AlsJob& job : plan.jobs) {
    EXPECT_EQ(job.test_offset, expect);
    expect += job.tests;
  }
  EXPECT_EQ(plan.total_tests, expect);
}

TEST(AlsPlan, LocalVerticesAreFirstThenSecondLevel) {
  const Graph g = graph::star(6);  // root BFS: {0}, {1..5}
  const AlsPlan plan = build_als_plan(g);
  ASSERT_EQ(plan.jobs.size(), 1u);
  const AlsJob& job = plan.jobs[0];
  EXPECT_EQ(job.a, 1u);
  EXPECT_EQ(job.local_to_global[0], 0u);
  EXPECT_EQ(job.local_to_global.size(), 6u);
}

TEST(AlsDecode, RoundTripExhaustiveSmall) {
  AlsJob job;
  job.s = 9;
  job.a = 4;
  job.x_max = 4;
  job.tests = als_total_tests(job.s, job.x_max);
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  for (std::uint64_t i = 0; i < job.tests; ++i) {
    const TestTriple t = als_decode_test(job, i);
    EXPECT_LT(t.x, t.y);
    EXPECT_LT(t.y, t.z);
    EXPECT_LT(t.z, job.s);
    EXPECT_LT(t.x, job.x_max);
    EXPECT_EQ(als_test_index(job, t), i);
    seen.insert({t.x, t.y, t.z});
  }
  EXPECT_EQ(seen.size(), job.tests);
}

TEST(AlsDecode, RoundTripLargeRandom) {
  AlsJob job;
  job.s = 50000;
  job.a = 20000;
  job.x_max = 20000;
  job.tests = als_total_tests(job.s, job.x_max);
  Xoshiro256 rng(12);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t i = rng.uniform(job.tests);
    const TestTriple t = als_decode_test(job, i);
    EXPECT_EQ(als_test_index(job, t), i);
  }
}

TEST(AlsDecode, OutOfRangeThrows) {
  AlsJob job;
  job.s = 5;
  job.a = 2;
  job.x_max = 2;
  job.tests = als_total_tests(5, 2);
  EXPECT_THROW(als_decode_test(job, job.tests), lgg::Error);
}

TEST(AlsAdvance, MatchesDecodeSequence) {
  AlsJob job;
  job.s = 12;
  job.a = 5;
  job.x_max = 5;
  job.tests = als_total_tests(job.s, job.x_max);
  TestTriple t = als_decode_test(job, 0);
  for (std::uint64_t i = 1; i < job.tests; ++i) {
    ASSERT_TRUE(als_advance_test(job, t)) << "i=" << i;
    const TestTriple want = als_decode_test(job, i);
    EXPECT_EQ(t.x, want.x);
    EXPECT_EQ(t.y, want.y);
    EXPECT_EQ(t.z, want.z);
  }
  EXPECT_FALSE(als_advance_test(job, t));
}

TEST(AlsPlan, DisconnectedComponentsAllPlanned) {
  const Graph g =
      graph::disjoint_union(graph::complete(5), graph::complete(4));
  const AlsPlan plan = build_als_plan(g);
  EXPECT_EQ(plan.num_components, 2u);
  EXPECT_EQ(plan.total_tests, binomial(5, 3) + binomial(4, 3));
}

TEST(AlsPlan, BfsEdgeAccounting) {
  const Graph g = graph::cycle(10);
  const AlsPlan plan = build_als_plan(g);
  EXPECT_EQ(plan.bfs_edges_visited, 2 * g.num_edges());
}

}  // namespace
}  // namespace lgg::core

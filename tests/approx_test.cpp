#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/approx.hpp"
#include "core/triangle_cpu.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace lgg::core {
namespace {

using graph::Graph;

TEST(Doulion, PEqualsOneIsExact) {
  const Graph g = graph::erdos_renyi(120, 0.1, 3);
  const DoulionResult r = doulion_estimate(g, 1.0, 7);
  EXPECT_EQ(r.kept_edges, g.num_edges());
  EXPECT_DOUBLE_EQ(r.estimate,
                   static_cast<double>(count_triangles_forward(g)));
}

TEST(Doulion, ParameterValidation) {
  EXPECT_THROW(doulion_estimate(Graph(3), 0.0, 1), lgg::Error);
  EXPECT_THROW(doulion_estimate(Graph(3), 1.5, 1), lgg::Error);
}

TEST(Doulion, UnbiasedOverSeeds) {
  // Average over many runs converges to the true count (KDD'09 Thm. 1).
  const Graph g = graph::barabasi_albert(400, 5, 11);
  const auto truth = static_cast<double>(count_triangles_forward(g));
  ASSERT_GT(truth, 100.0);
  const double p = 0.5;
  double sum = 0.0;
  const int runs = 60;
  for (int s = 0; s < runs; ++s) sum += doulion_estimate(g, p, 100 + s).estimate;
  const double mean = sum / runs;
  EXPECT_NEAR(mean, truth, 0.25 * truth);
}

TEST(Doulion, KeepsRoughlyPFractionOfEdges) {
  const Graph g = graph::erdos_renyi(300, 0.1, 5);
  const DoulionResult r = doulion_estimate(g, 0.3, 9);
  const double expect = 0.3 * static_cast<double>(g.num_edges());
  EXPECT_NEAR(static_cast<double>(r.kept_edges), expect,
              5 * std::sqrt(expect));
}

TEST(WedgeSampling, ExactGraphsExtremes) {
  // Complete graph: every wedge closed -> exact count.
  const Graph k = graph::complete(20);
  const WedgeSampleResult r = wedge_sampling_estimate(k, 3000, 1);
  EXPECT_DOUBLE_EQ(r.closed_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.estimate,
                   static_cast<double>(count_triangles_forward(k)));
  // Triangle-free graph: no closed wedges.
  const WedgeSampleResult z =
      wedge_sampling_estimate(graph::complete_bipartite(6, 6), 2000, 2);
  EXPECT_DOUBLE_EQ(z.estimate, 0.0);
}

TEST(WedgeSampling, EmptyGraphSafe) {
  const WedgeSampleResult r = wedge_sampling_estimate(Graph(5), 100, 1);
  EXPECT_EQ(r.total_wedges, 0u);
  EXPECT_DOUBLE_EQ(r.estimate, 0.0);
  EXPECT_THROW(wedge_sampling_estimate(Graph(5), 0, 1), lgg::Error);
}

TEST(WedgeSampling, ConvergesOnRandomGraph) {
  const Graph g = graph::erdos_renyi(300, 0.08, 21);
  const auto truth = static_cast<double>(count_triangles_forward(g));
  ASSERT_GT(truth, 50.0);
  const WedgeSampleResult r = wedge_sampling_estimate(g, 200000, 3);
  EXPECT_NEAR(r.estimate, truth, 0.15 * truth);
}

TEST(WedgeSampling, WedgeCountMatchesDegreeFormula) {
  const Graph g = graph::star(10);  // C(9,2) = 36 wedges at the centre
  const WedgeSampleResult r = wedge_sampling_estimate(g, 10, 1);
  EXPECT_EQ(r.total_wedges, 36u);
}

TEST(MinHash, ParameterValidation) {
  EXPECT_THROW(local_triangles_minhash(Graph(3), 0, 1), lgg::Error);
}

TEST(MinHash, ZeroOnTriangleFreeGraphIsSmall) {
  const Graph g = graph::complete_bipartite(8, 8);
  const auto est = local_triangles_minhash(g, 48, 5);
  // Estimates are noisy but must stay far below the degree scale.
  for (const double e : est) EXPECT_LT(e, 4.0);
}

TEST(MinHash, TracksTruthOnClusteredGraph) {
  // K10: every vertex sits in C(9,2) = 36 triangles; neighbourhood
  // similarity is high and min-hash should see it.
  const Graph g = graph::complete(10);
  const auto est = local_triangles_minhash(g, 96, 7);
  const auto truth = triangles_per_vertex(g);
  for (graph::Vertex v = 0; v < 10; ++v) {
    EXPECT_GT(est[v], 0.4 * static_cast<double>(truth[v]));
    EXPECT_LT(est[v], 1.6 * static_cast<double>(truth[v]));
  }
}

TEST(MinHash, GlobalSumCorrelatesWithTriangleMass) {
  // Compare a clustered graph against an equally dense random one: the
  // clustered graph must get the (much) larger estimate mass.
  Graph clustered = graph::complete(14);
  for (int i = 0; i < 3; ++i)
    clustered = graph::disjoint_union(clustered, graph::complete(14));
  const Graph random_g = graph::gnm(clustered.num_vertices(),
                                    clustered.num_edges(), 31);
  auto mass = [](const std::vector<double>& v) {
    return std::accumulate(v.begin(), v.end(), 0.0);
  };
  const double clustered_mass =
      mass(local_triangles_minhash(clustered, 64, 3));
  const double random_mass = mass(local_triangles_minhash(random_g, 64, 3));
  EXPECT_GT(clustered_mass, 2.0 * random_mass);
}

}  // namespace
}  // namespace lgg::core

#include <gtest/gtest.h>

#include <vector>

#include "gpusim/banks.hpp"
#include "util/error.hpp"

namespace lgg::gpusim {
namespace {

TEST(BankOf, SuccessiveWordsSuccessiveBanks) {
  EXPECT_EQ(bank_of(0, 16), 0u);
  EXPECT_EQ(bank_of(4, 16), 1u);
  EXPECT_EQ(bank_of(60, 16), 15u);
  EXPECT_EQ(bank_of(64, 16), 0u);  // wraps after 16 words
  EXPECT_EQ(bank_of(3, 16), 0u);  // bytes within one word share a bank
}

TEST(BankConflict, ConflictFreeSequential) {
  std::vector<std::uint64_t> addrs;
  for (int l = 0; l < 16; ++l) addrs.push_back(4ull * l);
  EXPECT_EQ(bank_conflict_degree(addrs, 16), 1u);
}

TEST(BankConflict, BroadcastIsFree) {
  // All lanes read the same word: hardware broadcast, one step.
  std::vector<std::uint64_t> addrs(16, 128);
  EXPECT_EQ(bank_conflict_degree(addrs, 16), 1u);
}

TEST(BankConflict, StrideTwoHalvesThroughput) {
  // Stride-2 words: lanes 0 and 8 share bank 0, etc. -> 2-way conflict.
  std::vector<std::uint64_t> addrs;
  for (int l = 0; l < 16; ++l) addrs.push_back(8ull * l);
  EXPECT_EQ(bank_conflict_degree(addrs, 16), 2u);
}

TEST(BankConflict, Stride16IsWorstCase) {
  // Every lane reads a different word in bank 0: fully serialised.
  std::vector<std::uint64_t> addrs;
  for (int l = 0; l < 16; ++l) addrs.push_back(64ull * l);
  EXPECT_EQ(bank_conflict_degree(addrs, 16), 16u);
}

TEST(BankConflict, MixedBroadcastAndConflict) {
  // Two lanes share word A (broadcast), two read distinct words in the
  // same bank -> degree 2.
  std::vector<std::uint64_t> addrs{0, 0, 64, 128};
  EXPECT_EQ(bank_conflict_degree(addrs, 16), 3u);  // words 0, 16, 32 in bank 0
}

TEST(BankConflict, ThirtyTwoBanksFermi) {
  // Stride-2 on 32 banks: 2-way conflict again.
  std::vector<std::uint64_t> addrs;
  for (int l = 0; l < 32; ++l) addrs.push_back(8ull * l);
  EXPECT_EQ(bank_conflict_degree(addrs, 32), 2u);
  // But stride-2 on 16 words touching banks 0..31 distinctly is free.
  addrs.clear();
  for (int l = 0; l < 16; ++l) addrs.push_back(4ull * l);
  EXPECT_EQ(bank_conflict_degree(addrs, 32), 1u);
}

TEST(BankConflict, EmptyAccess) {
  EXPECT_EQ(bank_conflict_degree({}, 16), 0u);
}

TEST(BankConflict, ZeroBanksThrows) {
  std::vector<std::uint64_t> addrs{0};
  EXPECT_THROW(bank_conflict_degree(addrs, 0), lgg::Error);
}

}  // namespace
}  // namespace lgg::gpusim

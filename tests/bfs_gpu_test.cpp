#include <gtest/gtest.h>

#include "core/bfs_gpu.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace lgg::core {
namespace {

using graph::Graph;

void expect_levels_match(const Graph& g, graph::Vertex source) {
  const graph::BfsTree host = graph::bfs(g, source);
  const GpuBfsResult gpu = bfs_gpu(g, source);
  ASSERT_EQ(gpu.tree.level.size(), host.level.size());
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(gpu.tree.level[v], host.level[v]) << "vertex " << v;
  EXPECT_EQ(gpu.tree.depth, host.depth);
  // Parents are valid BFS parents: level(parent) == level(v) - 1.
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    if (gpu.tree.level[v] == graph::kUnreached || v == source) continue;
    const graph::Vertex p = gpu.tree.parent[v];
    ASSERT_NE(p, graph::kUnreached);
    EXPECT_TRUE(g.has_edge(p, v));
    EXPECT_EQ(gpu.tree.level[p] + 1, gpu.tree.level[v]);
  }
}

TEST(GpuBfs, MatchesHostOnStructuredGraphs) {
  expect_levels_match(graph::path(30), 0);
  expect_levels_match(graph::path(30), 15);
  expect_levels_match(graph::star(20), 3);
  expect_levels_match(graph::cycle(17), 5);
  expect_levels_match(graph::grid2d(6, 7), 0);
  expect_levels_match(graph::complete(12), 4);
}

TEST(GpuBfs, MatchesHostOnRandomGraphs) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull})
    expect_levels_match(graph::erdos_renyi(150, 0.03, seed), 0);
  expect_levels_match(graph::barabasi_albert(200, 3, 5), 7);
}

TEST(GpuBfs, DisconnectedComponentStaysUnreached) {
  const Graph g = graph::disjoint_union(graph::path(5), graph::path(5));
  const GpuBfsResult r = bfs_gpu(g, 0);
  for (graph::Vertex v = 5; v < 10; ++v)
    EXPECT_EQ(r.tree.level[v], graph::kUnreached);
}

TEST(GpuBfs, IterationsEqualDepthPlusOne) {
  const Graph g = graph::path(12);
  const GpuBfsResult r = bfs_gpu(g, 0);
  // One launch per frontier level plus the final empty-frontier pass.
  EXPECT_EQ(r.iterations, r.tree.depth + 1);
  EXPECT_GT(r.kernel_time_s, 0.0);
  EXPECT_GT(r.transactions, 0u);
}

TEST(GpuBfs, DeeperGraphsCostMoreLaunches) {
  const GpuBfsResult deep = bfs_gpu(graph::path(60), 0);
  const GpuBfsResult shallow = bfs_gpu(graph::star(60), 0);
  EXPECT_GT(deep.iterations, shallow.iterations);
  EXPECT_GT(deep.kernel_time_s, shallow.kernel_time_s);
}

TEST(GpuBfs, Validation) {
  EXPECT_THROW(bfs_gpu(Graph(3), 5), lgg::Error);
  GpuBfsOptions bad;
  bad.threads_per_block = 40;
  EXPECT_THROW(bfs_gpu(graph::path(4), 0, bad), lgg::Error);
}

}  // namespace
}  // namespace lgg::core

#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace lgg::graph {
namespace {

TEST(Bfs, PathLevels) {
  const Graph g = path(6);
  const BfsTree t = bfs(g, 0);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(t.level[v], v);
  EXPECT_EQ(t.depth, 5u);
  EXPECT_EQ(t.parent[0], 0u);
  for (Vertex v = 1; v < 6; ++v) EXPECT_EQ(t.parent[v], v - 1);
}

TEST(Bfs, StarFromCenterAndLeaf) {
  const Graph g = star(8);
  const BfsTree from_center = bfs(g, 0);
  EXPECT_EQ(from_center.depth, 1u);
  const BfsTree from_leaf = bfs(g, 3);
  EXPECT_EQ(from_leaf.depth, 2u);
  EXPECT_EQ(from_leaf.level[0], 1u);
}

TEST(Bfs, UnreachedVerticesMarked) {
  const Graph g = disjoint_union(path(3), path(3));
  const BfsTree t = bfs(g, 0);
  EXPECT_EQ(t.level[4], kUnreached);
  EXPECT_EQ(t.parent[4], kUnreached);
}

TEST(Bfs, SourceOutOfRangeThrows) {
  EXPECT_THROW(bfs(Graph(3), 3), lgg::Error);
}

// Property: every edge connects vertices at most one BFS level apart —
// the structural fact Algorithm 2 depends on.
class BfsEdgeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BfsEdgeProperty, EdgesSpanAdjacentLevels) {
  const Graph g = erdos_renyi(120, 0.03, GetParam());
  const Components comps = connected_components(g);
  for (std::uint32_t c = 0; c < comps.count; ++c) {
    const auto members = comps.vertices_of(c);
    const BfsTree t = bfs(g, members.front());
    for (const Vertex u : members)
      for (const Vertex v : g.neighbors(u)) {
        ASSERT_NE(t.level[u], kUnreached);
        ASSERT_NE(t.level[v], kUnreached);
        const auto lu = static_cast<std::int64_t>(t.level[u]);
        const auto lv = static_cast<std::int64_t>(t.level[v]);
        EXPECT_LE(std::abs(lu - lv), 1) << "edge " << u << "-" << v;
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsEdgeProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ConnectedComponents, CountsAndMembership) {
  const Graph g =
      disjoint_union(disjoint_union(complete(4), cycle(5)), Graph(3));
  const Components comps = connected_components(g);
  EXPECT_EQ(comps.count, 2u + 3u);  // K4, C5, and three isolated vertices
  EXPECT_EQ(comps.vertices_of(0).size(), 4u);
  EXPECT_EQ(comps.vertices_of(1).size(), 5u);
  EXPECT_EQ(comps.vertices_of(2).size(), 1u);
}

TEST(ConnectedComponents, IdsAssignedBySmallestVertex) {
  const Graph g = disjoint_union(Graph(1), complete(3));
  const Components comps = connected_components(g);
  EXPECT_EQ(comps.component_of[0], 0u);
  EXPECT_EQ(comps.component_of[1], 1u);
  EXPECT_EQ(comps.component_of[3], 1u);
}

TEST(LevelDecomposition, BucketsAllVertices) {
  const Graph g = erdos_renyi(100, 0.05, 42);
  const Components comps = connected_components(g);
  const auto members = comps.vertices_of(0);
  const BfsTree t = bfs(g, members.front());
  const LevelDecomposition levels(t);
  EXPECT_EQ(levels.num_levels(), t.depth + 1);
  EXPECT_EQ(levels.total_vertices(), members.size());
  for (std::size_t l = 0; l < levels.num_levels(); ++l) {
    EXPECT_FALSE(levels.level(l).empty());
    for (const Vertex v : levels.level(l)) EXPECT_EQ(t.level[v], l);
  }
}

TEST(AdjacentLevelSets, PairsWithSharedBoundary) {
  const Graph g = path(5);  // levels {0},{1},{2},{3},{4}
  const LevelDecomposition levels(bfs(g, 0));
  const auto sets = adjacent_level_sets(levels);
  ASSERT_EQ(sets.size(), 4u);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ(sets[i].first_level_index, i);
    EXPECT_EQ(sets[i].first.size(), 1u);
    EXPECT_EQ(sets[i].second.size(), 1u);
    EXPECT_EQ(sets[i].is_last, i + 1 == sets.size());
    if (i > 0) {
      EXPECT_EQ(sets[i].first, sets[i - 1].second);  // overlap
    }
  }
}

TEST(AdjacentLevelSets, SingleLevelComponent) {
  const Graph g(4);  // one isolated vertex per component
  const LevelDecomposition levels(bfs(g, 2));
  const auto sets = adjacent_level_sets(levels);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_TRUE(sets[0].second.empty());
  EXPECT_TRUE(sets[0].is_last);
  EXPECT_EQ(sets[0].first, std::vector<Vertex>{2});
}

TEST(AdjacentLevelSets, CoversEveryVertex) {
  const Graph g = erdos_renyi(90, 0.04, 5);
  const Components comps = connected_components(g);
  for (std::uint32_t c = 0; c < comps.count; ++c) {
    const auto members = comps.vertices_of(c);
    const LevelDecomposition levels(bfs(g, members.front()));
    std::vector<bool> seen(g.num_vertices(), false);
    for (const auto& als : adjacent_level_sets(levels)) {
      for (const Vertex v : als.first) seen[v] = true;
      for (const Vertex v : als.second) seen[v] = true;
    }
    for (const Vertex v : members) EXPECT_TRUE(seen[v]);
  }
}

}  // namespace
}  // namespace lgg::graph

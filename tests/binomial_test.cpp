#include <gtest/gtest.h>

#include "combi/binomial.hpp"

namespace lgg::combi {
namespace {

TEST(Binomial, SmallValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 1), 5u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(5, 3), 10u);
  EXPECT_EQ(binomial(10, 3), 120u);
  EXPECT_EQ(binomial(52, 5), 2598960u);
}

TEST(Binomial, KGreaterThanNIsZero) {
  EXPECT_EQ(binomial(3, 4), 0u);
  EXPECT_EQ(binomial(0, 1), 0u);
}

TEST(Binomial, PascalIdentityHolds) {
  for (std::uint64_t n = 1; n <= 40; ++n)
    for (std::uint64_t k = 1; k <= n; ++k)
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k))
          << n << " choose " << k;
}

TEST(Binomial, Symmetry) {
  for (std::uint64_t n = 0; n <= 60; ++n)
    for (std::uint64_t k = 0; k <= n; ++k)
      EXPECT_EQ(binomial(n, k), binomial(n, n - k));
}

TEST(Binomial, LargeExactValues) {
  // C(100000, 3) — the paper's 100k-node triangle scale.
  EXPECT_EQ(binomial(100000, 3), 166661666700000ull);
  // C(61, 30) is near the top of what fits in 64 bits.
  EXPECT_EQ(binomial(61, 30), 232714176627630544ull);
  // C(62, 28): also representable.
  EXPECT_NE(binomial(62, 28), kBinomialOverflow);
}

TEST(Binomial, OverflowDetected) {
  EXPECT_EQ(binomial(70, 35), kBinomialOverflow);
  EXPECT_EQ(binomial(1u << 20, 7), kBinomialOverflow);
  EXPECT_FALSE(binomial_checked(70, 35).has_value());
  EXPECT_EQ(binomial_checked(10, 5).value(), 252u);
}

TEST(Binomial, TriangleCountsForPaperSizes) {
  // The n=200..1200 sweep of Figs. 10/12 stays comfortably in range.
  for (std::uint64_t n = 200; n <= 1200; n += 200)
    EXPECT_EQ(binomial(n, 3), n * (n - 1) * (n - 2) / 6);
}

TEST(PrecomputedStorage, MatchesSectionVIIIFormula) {
  // n=16, k=3: C(16,3)=560 combos, 4 bits per id, 3 ids.
  EXPECT_EQ(precomputed_storage_bits(16, 3), 560u * 3 * 4);
  // n=17 -> ids need 5 bits (ceil(log2 17)).
  EXPECT_EQ(precomputed_storage_bits(17, 3), binomial(17, 3) * 3 * 5);
}

TEST(PrecomputedStorage, OverflowPropagates) {
  EXPECT_EQ(precomputed_storage_bits(1u << 21, 8), kBinomialOverflow);
}

}  // namespace
}  // namespace lgg::combi

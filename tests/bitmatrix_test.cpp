#include <gtest/gtest.h>

#include "graph/bit_matrix.hpp"
#include "graph/generators.hpp"
#include "util/prng.hpp"

namespace lgg::graph {
namespace {

TEST(BitMatrix, SetGet) {
  BitMatrix m(100);
  EXPECT_FALSE(m.get(3, 97));
  m.set(3, 97);
  EXPECT_TRUE(m.get(3, 97));
  EXPECT_FALSE(m.get(97, 3));  // full matrix is not implicitly symmetric
  m.set(3, 97, false);
  EXPECT_FALSE(m.get(3, 97));
}

TEST(BitMatrix, FromGraphIsSymmetric) {
  const Graph g = erdos_renyi(64, 0.2, 1);
  const BitMatrix m = BitMatrix::from_graph(g);
  for (Vertex u = 0; u < 64; ++u)
    for (Vertex v = 0; v < 64; ++v)
      EXPECT_EQ(m.get(u, v), g.has_edge(u, v)) << u << "," << v;
}

TEST(BitMatrix, RowPaddingIsZero) {
  BitMatrix m(70);  // 70 bits -> 2 words per row, 58 padding bits
  m.set(0, 69);
  const auto row = m.row(0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[1] >> 6, 0u);  // bits beyond column 69 stay clear
}

TEST(BitMatrix, StorageBits) {
  EXPECT_EQ(BitMatrix::storage_bits(0), 0u);
  EXPECT_EQ(BitMatrix::storage_bits(100), 10000u);
}

TEST(BitMatrix, MaxVerticesFor) {
  EXPECT_EQ(BitMatrix::max_vertices_for(100), 10u);
  EXPECT_EQ(BitMatrix::max_vertices_for(99), 9u);
  // Paper Table II: C1060 shared memory 16 KiB -> 362 vertices.
  EXPECT_EQ(BitMatrix::max_vertices_for(16ull * 1024 * 8), 362u);
}

TEST(SutMatrix, PairIndexIsDenseAndOrdered) {
  const SutMatrix m(6);
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = i + 1; j < 6; ++j)
      EXPECT_EQ(m.pair_index(i, j), expect++) << i << "," << j;
  EXPECT_EQ(expect, SutMatrix::storage_bits(6));
}

TEST(SutMatrix, SymmetricGetSet) {
  SutMatrix m(50);
  m.set(10, 40);
  EXPECT_TRUE(m.get(10, 40));
  EXPECT_TRUE(m.get(40, 10));
  EXPECT_FALSE(m.get(10, 10));
  m.set(40, 10, false);  // reversed order clears the same bit
  EXPECT_FALSE(m.get(10, 40));
}

TEST(SutMatrix, MatchesBitMatrixOnRandomGraph) {
  const Graph g = erdos_renyi(80, 0.15, 9);
  const SutMatrix s = SutMatrix::from_graph(g);
  const BitMatrix b = BitMatrix::from_graph(g);
  for (Vertex u = 0; u < 80; ++u)
    for (Vertex v = 0; v < 80; ++v)
      EXPECT_EQ(s.get(u, v), b.get(u, v)) << u << "," << v;
}

TEST(SutMatrix, StorageBitsHalvesMatrix) {
  EXPECT_EQ(SutMatrix::storage_bits(100), 4950u);
  EXPECT_EQ(SutMatrix::storage_bits(1), 0u);
}

// Paper Table II reproduction at the unit level: S-UTM columns.
struct TableIIRow {
  std::uint64_t mem_bits;
  std::uint64_t want;
};

class SutmCapacity : public ::testing::TestWithParam<TableIIRow> {};

TEST_P(SutmCapacity, MatchesPaperTableII) {
  EXPECT_EQ(SutMatrix::max_vertices_for(GetParam().mem_bits),
            GetParam().want);
}

INSTANTIATE_TEST_SUITE_P(
    PaperValues, SutmCapacity,
    ::testing::Values(
        // Shared memory: C1060 16 KiB -> 512; C2050/C2070 48 KiB -> 887.
        TableIIRow{16ull * 1024 * 8, 512},
        TableIIRow{48ull * 1024 * 8, 887},
        // Global memory: C1060 4 GiB -> 262144; C2070 6 GiB -> 321060
        // (paper values; see bench_table2_maxsize for the full table).
        TableIIRow{4ull * 1024 * 1024 * 1024 * 8, 262144},
        TableIIRow{6ull * 1024 * 1024 * 1024 * 8, 321060}));

TEST(Capacity, AdjMatVsSutmConsistency) {
  // S-UTM always admits at least as many vertices as the full matrix.
  for (const std::uint64_t bits : {100ull, 5000ull, 123456ull, 1048576ull}) {
    EXPECT_GE(SutMatrix::max_vertices_for(bits),
              BitMatrix::max_vertices_for(bits));
  }
}

}  // namespace
}  // namespace lgg::graph

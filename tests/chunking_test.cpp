#include <gtest/gtest.h>

#include <algorithm>

#include "graph/chunking.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace lgg::graph {
namespace {

ChunkingOptions opts_with_budget(std::uint64_t bits) {
  ChunkingOptions o;
  o.shared_mem_bits = bits;
  return o;
}

TEST(ChunkBits, Metrics) {
  EXPECT_EQ(chunk_bits(10, SizeMetric::kAdjacencyMatrix), 100u);
  EXPECT_EQ(chunk_bits(10, SizeMetric::kSutm), 45u);
}

TEST(Chunking, WholeComponentFitsSingleChunk) {
  const Graph g = complete(10);  // S-UTM = 45 bits
  const auto result = split_into_chunks(g, opts_with_budget(1000));
  ASSERT_EQ(result.chunks.size(), 1u);
  EXPECT_TRUE(result.chunks[0].fits_shared);
  EXPECT_EQ(result.chunks[0].vertices.size(), 10u);
  EXPECT_EQ(result.oversized_chunks, 0u);
}

TEST(Chunking, SplitsLongPathIntoFittingChunks) {
  const Graph g = path(100);
  // Budget for ~10 vertices per chunk: C(10,2)=45 bits.
  const auto result = split_into_chunks(g, opts_with_budget(45));
  EXPECT_GT(result.chunks.size(), 5u);
  for (const auto& chunk : result.chunks) {
    EXPECT_TRUE(chunk.fits_shared);
    EXPECT_LE(chunk.bits, 45u);
  }
  EXPECT_EQ(result.oversized_chunks, 0u);
}

TEST(Chunking, ConsecutiveChunksOverlapByOneLevel) {
  const Graph g = path(50);
  const auto result = split_into_chunks(g, opts_with_budget(45));
  for (std::size_t i = 1; i < result.chunks.size(); ++i) {
    EXPECT_EQ(result.chunks[i].first_level, result.chunks[i - 1].last_level)
        << "chunk " << i;
  }
}

TEST(Chunking, EveryVertexCoveredAndLevelsConsistent) {
  const Graph g = erdos_renyi(150, 0.02, 21);
  const auto result = split_into_chunks(g, opts_with_budget(50 * 49 / 2));
  std::vector<bool> seen(g.num_vertices(), false);
  for (const auto& chunk : result.chunks) {
    const BfsTree& tree = result.trees[chunk.component];
    for (const Vertex v : chunk.vertices) {
      seen[v] = true;
      ASSERT_NE(tree.level[v], kUnreached);
      EXPECT_GE(tree.level[v], chunk.first_level);
      EXPECT_LE(tree.level[v], chunk.last_level);
    }
  }
  for (Vertex v = 0; v < g.num_vertices(); ++v) EXPECT_TRUE(seen[v]) << v;
}

TEST(Chunking, EveryEdgeInsideSomeChunk) {
  // The overlap property must make every edge (and hence every triangle
  // via ALS pairs) visible within at least one chunk.
  const Graph g = erdos_renyi(120, 0.03, 8);
  const auto result = split_into_chunks(g, opts_with_budget(40 * 39 / 2));
  for (const auto& [u, v] : g.edges()) {
    bool covered = false;
    for (const auto& chunk : result.chunks) {
      const auto& vs = chunk.vertices;
      if (std::binary_search(vs.begin(), vs.end(), u) &&
          std::binary_search(vs.begin(), vs.end(), v)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "edge " << u << "-" << v;
  }
}

TEST(Chunking, StarCannotSplitReportsOversized) {
  // A star has 2 BFS levels from the centre; its only 2-level chunk is the
  // whole graph, which exceeds a tiny budget -> one oversized chunk.
  const Graph g = star(64);
  const auto result = split_into_chunks(g, opts_with_budget(10));
  EXPECT_GE(result.oversized_chunks, 1u);
  bool any_oversized = false;
  for (const auto& chunk : result.chunks)
    if (!chunk.fits_shared) any_oversized = true;
  EXPECT_TRUE(any_oversized);
}

TEST(Chunking, MultipleComponentsProcessedSeparately) {
  const Graph g = disjoint_union(path(30), complete(5));
  const auto result = split_into_chunks(g, opts_with_budget(36));  // 9 vertices
  ASSERT_EQ(result.trees.size(), 2u);
  std::vector<std::uint32_t> comps_seen;
  for (const auto& chunk : result.chunks) comps_seen.push_back(chunk.component);
  EXPECT_TRUE(std::find(comps_seen.begin(), comps_seen.end(), 0u) !=
              comps_seen.end());
  EXPECT_TRUE(std::find(comps_seen.begin(), comps_seen.end(), 1u) !=
              comps_seen.end());
}

TEST(Chunking, FragmentationAccountedOnlyForFittingChunks) {
  const Graph g = path(40);
  const ChunkingOptions opts = opts_with_budget(45);
  const auto result = split_into_chunks(g, opts);
  std::uint64_t expect = 0;
  for (const auto& chunk : result.chunks)
    if (chunk.fits_shared) expect += opts.shared_mem_bits - chunk.bits;
  EXPECT_EQ(result.fragmentation_bits, expect);
}

TEST(Chunking, InvalidOptionsThrow) {
  ChunkingOptions bad;
  bad.shared_mem_bits = 0;
  EXPECT_THROW(split_into_chunks(path(5), bad), lgg::Error);
  bad.shared_mem_bits = 100;
  bad.max_start_trials = 0;
  EXPECT_THROW(split_into_chunks(path(5), bad), lgg::Error);
}

TEST(Chunking, AdjacencyMetricUsesSquares) {
  const Graph g = path(20);
  ChunkingOptions o;
  o.shared_mem_bits = 100;  // adj-matrix metric: at most 10 vertices
  o.metric = SizeMetric::kAdjacencyMatrix;
  const auto result = split_into_chunks(g, o);
  for (const auto& chunk : result.chunks)
    EXPECT_LE(chunk.vertices.size() * chunk.vertices.size(),
              o.shared_mem_bits);
}

}  // namespace
}  // namespace lgg::graph

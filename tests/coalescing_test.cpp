#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gpusim/coalescing.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace lgg::gpusim {
namespace {

/// 32 lanes reading consecutive 4-byte words from `base`.
std::vector<std::uint64_t> sequential_warp(std::uint64_t base) {
  std::vector<std::uint64_t> addrs(32);
  for (std::uint32_t l = 0; l < 32; ++l) addrs[l] = base + 4ull * l;
  return addrs;
}

/// Same 128-byte footprint but lanes permuted within each 64-byte half.
std::vector<std::uint64_t> permuted_warp(std::uint64_t base) {
  auto addrs = sequential_warp(base);
  // Swap pairs within each half-warp: a permutation, same segments.
  for (std::uint32_t l = 0; l + 1 < 16; l += 2) std::swap(addrs[l], addrs[l + 1]);
  for (std::uint32_t l = 16; l + 1 < 32; l += 2) std::swap(addrs[l], addrs[l + 1]);
  return addrs;
}

// ---- Table III of the paper, row by row ----

struct TableIIIRow {
  ComputeCapability cc;
  bool sequential;
  std::size_t want_transactions;
};

class TableIII : public ::testing::TestWithParam<TableIIIRow> {};

TEST_P(TableIII, TransactionCountsMatchPaper) {
  const auto& row = GetParam();
  const auto addrs =
      row.sequential ? sequential_warp(0) : permuted_warp(0);
  EXPECT_EQ(warp_transaction_count(row.cc, addrs, 4), row.want_transactions);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, TableIII,
    ::testing::Values(
        TableIIIRow{ComputeCapability::k10, true, 2},
        TableIIIRow{ComputeCapability::k11, true, 2},
        TableIIIRow{ComputeCapability::k12, true, 2},
        TableIIIRow{ComputeCapability::k13, true, 2},
        TableIIIRow{ComputeCapability::k20, true, 1},
        TableIIIRow{ComputeCapability::k10, false, 32},
        TableIIIRow{ComputeCapability::k11, false, 32},
        TableIIIRow{ComputeCapability::k12, false, 2},
        TableIIIRow{ComputeCapability::k13, false, 2},
        TableIIIRow{ComputeCapability::k20, false, 1}));

// ---- rule details ----

TEST(CoalesceCc10, MisalignedBaseSerialises) {
  // Sequential but shifted by one word: CC 1.0/1.1 cannot coalesce.
  const auto addrs = sequential_warp(4);
  EXPECT_EQ(warp_transaction_count(ComputeCapability::k10, addrs, 4), 32u);
  // CC 1.2 covers each half-warp with two segments (64B span straddling
  // the 64B boundary within a 128B segment may still be 1 or 2).
  EXPECT_LE(warp_transaction_count(ComputeCapability::k12, addrs, 4), 4u);
}

TEST(CoalesceCc10, InactiveLanesAllowed) {
  // Lanes 0..15 except lane 7 read their own word: still one transaction.
  std::vector<LaneAccess> accesses;
  for (std::uint32_t l = 0; l < 16; ++l) {
    if (l == 7) continue;
    accesses.push_back({l, 4ull * l});
  }
  const auto result = coalesce_warp(ComputeCapability::k10, accesses, 4);
  EXPECT_EQ(result.count(), 1u);
  EXPECT_EQ(result.transactions[0].bytes, 64u);
}

TEST(CoalesceCc12, BroadcastSameWordIsOneNarrowTransaction) {
  std::vector<LaneAccess> accesses;
  for (std::uint32_t l = 0; l < 16; ++l) accesses.push_back({l, 256});
  const auto result = coalesce_warp(ComputeCapability::k13, accesses, 4);
  ASSERT_EQ(result.count(), 1u);
  EXPECT_EQ(result.transactions[0].bytes, 32u);  // narrowed to a quarter
}

TEST(CoalesceCc12, NarrowingTo64Bytes) {
  // Half-warp touching only the upper 64B half of a 128B segment.
  std::vector<LaneAccess> accesses;
  for (std::uint32_t l = 0; l < 16; ++l) accesses.push_back({l, 64 + 4ull * l});
  const auto result = coalesce_warp(ComputeCapability::k12, accesses, 4);
  ASSERT_EQ(result.count(), 1u);
  EXPECT_EQ(result.transactions[0].base, 64u);
  EXPECT_EQ(result.transactions[0].bytes, 64u);
}

TEST(CoalesceCc12, ScatteredLanesOneSegmentEach) {
  // 16 lanes in 16 different 128-byte segments.
  std::vector<LaneAccess> accesses;
  for (std::uint32_t l = 0; l < 16; ++l)
    accesses.push_back({l, 1024ull * l});
  const auto result = coalesce_warp(ComputeCapability::k13, accesses, 4);
  EXPECT_EQ(result.count(), 16u);
}

TEST(CoalesceCc20, DistinctLinesCounted) {
  std::vector<LaneAccess> accesses;
  for (std::uint32_t l = 0; l < 32; ++l)
    accesses.push_back({l, (l % 4) * 128ull});  // 4 distinct lines
  const auto result = coalesce_warp(ComputeCapability::k20, accesses, 4);
  EXPECT_EQ(result.count(), 4u);
  EXPECT_EQ(result.bytes(), 4u * 128);
}

TEST(CoalesceCc20, FullWarpNotSplitIntoHalves) {
  // Lanes 0..31 within one 128B line: a single transaction (CC 1.x would
  // use two half-warp transactions).
  const auto addrs = sequential_warp(1024);
  EXPECT_EQ(warp_transaction_count(ComputeCapability::k20, addrs, 4), 1u);
  EXPECT_EQ(warp_transaction_count(ComputeCapability::k13, addrs, 4), 2u);
}

TEST(Coalesce, EmptyAccessListNoTransactions) {
  const auto result =
      coalesce_warp(ComputeCapability::k13, std::vector<LaneAccess>{}, 4);
  EXPECT_EQ(result.count(), 0u);
}

TEST(Coalesce, ValidatesArguments) {
  std::vector<LaneAccess> bad_lane{{32, 0}};
  EXPECT_THROW(coalesce_warp(ComputeCapability::k13, bad_lane, 4), lgg::Error);
  std::vector<LaneAccess> misaligned{{0, 2}};
  EXPECT_THROW(coalesce_warp(ComputeCapability::k13, misaligned, 4),
               lgg::Error);
  std::vector<LaneAccess> ok{{0, 0}};
  EXPECT_THROW(coalesce_warp(ComputeCapability::k13, ok, 3), lgg::Error);
}

TEST(Coalesce, EightByteWords) {
  // 16 lanes * 8 bytes = 128B per half-warp, aligned: one 128B transaction
  // per half-warp on CC 1.0 (segment = 16 * word size).
  std::vector<LaneAccess> accesses;
  for (std::uint32_t l = 0; l < 16; ++l) accesses.push_back({l, 8ull * l});
  const auto result = coalesce_warp(ComputeCapability::k10, accesses, 8);
  ASSERT_EQ(result.count(), 1u);
  EXPECT_EQ(result.transactions[0].bytes, 128u);
}

// Monotonicity property: a permutation never helps on CC >= 1.2 and never
// hurts relative to the strict rule's worst case.
TEST(Coalesce, RandomPatternsWithinBounds) {
  Xoshiro256 rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint64_t> addrs(32);
    for (auto& a : addrs) a = rng.uniform(1 << 16) * 4;
    const std::size_t t10 =
        warp_transaction_count(ComputeCapability::k10, addrs, 4);
    const std::size_t t13 =
        warp_transaction_count(ComputeCapability::k13, addrs, 4);
    const std::size_t t20 =
        warp_transaction_count(ComputeCapability::k20, addrs, 4);
    EXPECT_LE(t13, t10);  // hardware coalescer never loses to strict rule
    EXPECT_LE(t20, t13);  // cache lines never lose to segments
    EXPECT_GE(t13, 1u);
    EXPECT_LE(t10, 32u);
  }
}

}  // namespace
}  // namespace lgg::gpusim

// Boundary property tests for combinadic unranking and work division:
// the largest C(n, k) representable in 64 bits, off-by-one ranks at every
// strategy boundary, and the overflow sentinels.  These are the edges the
// differential fuzzer cannot reach by sampling small graphs.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "lgg.hpp"

namespace lgg::combi {
namespace {

// C(67, 33) = 14,226,520,737,620,288,370 is the largest central binomial
// coefficient that fits in 64 bits; C(68, 34) = 2 * C(67, 33) does not.
constexpr std::uint64_t kC67_33 = 14226520737620288370ull;

std::vector<std::uint32_t> unrank(std::uint64_t index, std::uint32_t n,
                                  std::uint32_t k) {
  return combination_from_index(index, n, k);
}

TEST(BinomialBoundary, LargestRepresentableCentralCoefficient) {
  EXPECT_EQ(binomial(67, 33), kC67_33);
  EXPECT_EQ(binomial(67, 34), kC67_33);  // symmetry
  EXPECT_EQ(binomial(68, 34), kBinomialOverflow);
  EXPECT_EQ(binomial_checked(67, 33), std::optional<std::uint64_t>(kC67_33));
  EXPECT_EQ(binomial_checked(68, 34), std::nullopt);
}

TEST(BinomialBoundary, PrecomputedStorageSaturates) {
  // C(67, 33) combinations of 33 7-bit ids: the product alone overflows.
  EXPECT_EQ(precomputed_storage_bits(67, 33), kBinomialOverflow);
  // Sane small case stays exact: C(8, 3) = 56 combos * 3 ids * 3 bits.
  EXPECT_EQ(precomputed_storage_bits(8, 3), 56ull * 3 * 3);
}

TEST(CombinadicBoundary, RoundTripAtLargestRepresentableNK) {
  const std::uint32_t n = 67, k = 33;
  const std::uint64_t total = binomial(n, k);
  ASSERT_EQ(total, kC67_33);
  for (const std::uint64_t index :
       {std::uint64_t{0}, std::uint64_t{1}, total / 2, total - 2, total - 1}) {
    const auto combo = unrank(index, n, k);
    ASSERT_EQ(combo.size(), k);
    EXPECT_EQ(index_from_combination(combo, n), index) << "index=" << index;
  }
  // First and last combinations are the canonical extremes.
  std::vector<std::uint32_t> first(k), last(k);
  std::iota(first.begin(), first.end(), 0u);
  std::iota(last.begin(), last.end(), n - k);
  EXPECT_EQ(unrank(0, n, k), first);
  EXPECT_EQ(unrank(total - 1, n, k), last);
  EXPECT_FALSE(next_combination(std::span<std::uint32_t>(last), n));
}

TEST(CombinadicBoundary, RankJustPastTheEndThrows) {
  EXPECT_THROW(unrank(binomial(67, 33), 67, 33), lgg::Error);
  EXPECT_THROW(unrank(binomial(10, 3), 10, 3), lgg::Error);
}

TEST(CombinadicBoundary, RoundTripAtPaperScaleTriangles) {
  // The paper's regime: n ~ 100,000 vertices, k = 3.
  const std::uint32_t n = 100000, k = 3;
  const std::uint64_t total = binomial(n, k);
  ASSERT_NE(total, kBinomialOverflow);
  EXPECT_EQ(unrank(0, n, k), (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(unrank(total - 1, n, k),
            (std::vector<std::uint32_t>{n - 3, n - 2, n - 1}));
  for (const std::uint64_t index : {std::uint64_t{1}, total / 3, total - 2}) {
    EXPECT_EQ(index_from_combination(unrank(index, n, k), n), index);
  }
}

TEST(StrategyBoundary, EqualDivisionRangesAreContiguousAndSeamless) {
  const std::uint32_t n = 30, k = 4;
  const std::uint64_t total = binomial(n, k);
  for (const std::uint32_t threads : {1u, 3u, 7u, 32u, 64u}) {
    const auto ranges = divide_work(total, threads);
    ASSERT_EQ(ranges.size(), threads);
    EXPECT_EQ(ranges.front().begin, 0u);
    EXPECT_EQ(ranges.back().end, total);
    for (std::uint32_t t = 0; t + 1 < threads; ++t) {
      EXPECT_EQ(ranges[t].end, ranges[t + 1].begin);
      // The off-by-one property that makes per-thread unranking correct:
      // the successor of the last combination of thread t is exactly the
      // unranked first combination of thread t + 1.
      const std::uint64_t b = ranges[t].end;
      if (b == 0 || b >= total) continue;
      auto prev = unrank(b - 1, n, k);
      ASSERT_TRUE(next_combination(std::span<std::uint32_t>(prev), n));
      EXPECT_EQ(prev, unrank(b, n, k)) << "boundary " << b << " threads="
                                       << threads;
    }
  }
}

TEST(StrategyBoundary, EqualDivisionEmitsExactlyTheRangeEndpoints) {
  const std::uint32_t n = 18, k = 3, threads = 7;
  const std::uint64_t total = binomial(n, k);
  const auto ranges = divide_work(total, threads);

  std::vector<std::vector<std::uint32_t>> first_seen(threads), last_seen(threads);
  const auto stats = enumerate_combinations(
      Strategy::kEqualDivision, n, k, threads,
      [&](std::uint32_t t, std::span<const std::uint32_t> combo) {
        std::vector<std::uint32_t> c(combo.begin(), combo.end());
        if (first_seen[t].empty()) first_seen[t] = c;
        last_seen[t] = std::move(c);
      });

  EXPECT_EQ(stats.total_combinations, total);
  for (std::uint32_t t = 0; t < threads; ++t) {
    ASSERT_GT(ranges[t].size(), 0u);
    EXPECT_EQ(stats.per_thread[t], ranges[t].size());
    EXPECT_EQ(first_seen[t], unrank(ranges[t].begin, n, k)) << "thread " << t;
    EXPECT_EQ(last_seen[t], unrank(ranges[t].end - 1, n, k)) << "thread " << t;
  }
}

TEST(StrategyBoundary, SplitByStartPerThreadMatchesClosedForm) {
  const std::uint32_t n = 16, k = 3, threads = 5;
  const auto stats =
      enumerate_combinations(Strategy::kSplitByStart, n, k, threads);
  ASSERT_EQ(stats.per_thread.size(), threads);
  // Combinations with first element `start` number C(n - 1 - start, k - 1),
  // and thread t owns every start ≡ t (mod threads).
  for (std::uint32_t t = 0; t < threads; ++t) {
    std::uint64_t expected = 0;
    for (std::uint32_t start = t; start + k <= n; start += threads) {
      expected += binomial(n - 1 - start, k - 1);
    }
    EXPECT_EQ(stats.per_thread[t], expected) << "thread " << t;
  }
  EXPECT_EQ(std::accumulate(stats.per_thread.begin(), stats.per_thread.end(),
                            std::uint64_t{0}),
            binomial(n, k));
}

TEST(StrategyBoundary, AllStrategiesRefuseOverflowingTotals) {
  for (const Strategy s :
       {Strategy::kPrecomputed, Strategy::kSequential, Strategy::kSplitByStart,
        Strategy::kEqualDivision}) {
    EXPECT_THROW(enumerate_combinations(s, 68, 34, 4), lgg::Error)
        << strategy_name(s);
  }
}

}  // namespace
}  // namespace lgg::combi

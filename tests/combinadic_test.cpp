#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "combi/binomial.hpp"
#include "combi/combinadic.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace lgg::combi {
namespace {

TEST(Combinadic, FirstAndLastCombination) {
  EXPECT_EQ(combination_from_index(0, 5, 3),
            (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(combination_from_index(binomial(5, 3) - 1, 5, 3),
            (std::vector<std::uint32_t>{2, 3, 4}));
}

TEST(Combinadic, KnownSequenceN5K3) {
  // Full lexicographic order of C(5,3).
  const std::vector<std::vector<std::uint32_t>> want = {
      {0, 1, 2}, {0, 1, 3}, {0, 1, 4}, {0, 2, 3}, {0, 2, 4},
      {0, 3, 4}, {1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {2, 3, 4}};
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_EQ(combination_from_index(i, 5, 3), want[i]) << "index " << i;
}

TEST(Combinadic, IndexOutOfRangeThrows) {
  EXPECT_THROW(combination_from_index(binomial(5, 3), 5, 3), lgg::Error);
}

TEST(Combinadic, RankUnrankRoundTripExhaustive) {
  for (const auto& [n, k] : {std::pair{7u, 3u}, {10u, 4u}, {12u, 2u},
                            {6u, 6u}, {9u, 1u}}) {
    const std::uint64_t total = binomial(n, k);
    for (std::uint64_t i = 0; i < total; ++i) {
      const auto combo = combination_from_index(i, n, k);
      EXPECT_EQ(index_from_combination(combo, n), i)
          << "n=" << n << " k=" << k << " i=" << i;
    }
  }
}

TEST(Combinadic, RankUnrankRoundTripLargeRandom) {
  Xoshiro256 rng(77);
  const std::uint32_t n = 100000, k = 3;
  const std::uint64_t total = binomial(n, k);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t i = rng.uniform(total);
    const auto combo = combination_from_index(i, n, k);
    EXPECT_TRUE(std::is_sorted(combo.begin(), combo.end()));
    EXPECT_LT(combo.back(), n);
    EXPECT_EQ(index_from_combination(combo, n), i);
  }
}

TEST(Combinadic, RankValidatesInput) {
  const std::vector<std::uint32_t> not_increasing{3, 3, 5};
  EXPECT_THROW(index_from_combination(not_increasing, 10), lgg::Error);
  const std::vector<std::uint32_t> out_of_range{3, 4, 10};
  EXPECT_THROW(index_from_combination(out_of_range, 10), lgg::Error);
}

TEST(NextCombination, WalksFullLexOrder) {
  std::vector<std::uint32_t> combo{0, 1, 2};
  std::uint64_t steps = 1;
  std::vector<std::uint32_t> prev = combo;
  while (next_combination(combo, 8)) {
    EXPECT_TRUE(std::lexicographical_compare(prev.begin(), prev.end(),
                                             combo.begin(), combo.end()));
    EXPECT_TRUE(std::is_sorted(combo.begin(), combo.end()));
    prev = combo;
    ++steps;
  }
  EXPECT_EQ(steps, binomial(8, 3));
  EXPECT_EQ(combo, (std::vector<std::uint32_t>{5, 6, 7}));  // unchanged at end
}

TEST(NextCombination, AgreesWithUnranking) {
  const std::uint32_t n = 9, k = 4;
  std::vector<std::uint32_t> combo{0, 1, 2, 3};
  for (std::uint64_t i = 0; i + 1 < binomial(n, k); ++i) {
    ASSERT_TRUE(next_combination(combo, n));
    EXPECT_EQ(combo, combination_from_index(i + 1, n, k)) << "i=" << i;
  }
  EXPECT_FALSE(next_combination(combo, n));
}

TEST(NextCombination, EmptyAndFull) {
  std::vector<std::uint32_t> empty;
  EXPECT_FALSE(next_combination(empty, 5));
  std::vector<std::uint32_t> full{0, 1, 2, 3, 4};
  EXPECT_FALSE(next_combination(full, 5));  // single combination
}

TEST(Combinadic, InPlaceVariantMatches) {
  std::vector<std::uint32_t> buf(3);
  combination_from_index(42, 12, 3, buf);
  EXPECT_EQ(buf, combination_from_index(42, 12, 3));
  std::vector<std::uint32_t> wrong_size(2);
  EXPECT_THROW(combination_from_index(0, 12, 3, wrong_size), lgg::Error);
}

}  // namespace
}  // namespace lgg::combi

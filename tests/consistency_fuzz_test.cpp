// Randomised cross-algorithm consistency sweep, driven by the differential
// fuzzing engine in src/fuzz/: for a spread of random generators, sizes and
// densities, every counting path the engine knows about must agree with the
// forward oracle — under strict sancheck and both execution policies — and
// the structural invariants the paper's algorithms rest on must hold.  The
// path list lives in fuzz::default_paths(), not here, so new algorithms get
// swept automatically.
#include <gtest/gtest.h>

#include <sstream>

#include "lgg.hpp"

namespace lgg {
namespace {

using graph::Graph;

struct FuzzCase {
  const char* family;
  Graph graph;
};

std::vector<FuzzCase> fuzz_cases(std::uint64_t seed) {
  std::vector<FuzzCase> cases;
  cases.push_back({"gnp-sparse", graph::erdos_renyi(60, 0.05, seed)});
  cases.push_back({"gnp-dense", graph::erdos_renyi(40, 0.4, seed + 1)});
  cases.push_back({"gnm", graph::gnm(50, 120, seed + 2)});
  cases.push_back({"ba", graph::barabasi_albert(60, 3, seed + 3)});
  cases.push_back({"rmat", graph::rmat(6, 4, seed + 4)});
  cases.push_back(
      {"layered", graph::layered_random(80, 15, 0.2, 0.1, seed + 5)});
  cases.push_back(
      {"union", graph::disjoint_union(graph::erdos_renyi(25, 0.3, seed + 6),
                                      graph::complete(8))});
  return cases;
}

class ConsistencyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConsistencyFuzz, AllCountingPathsAgree) {
  // Default EngineOptions: the full differential path set (CPU oracles, GPU
  // layouts, combi strategies, hybrid, BFS invariant, estimators), serial
  // AND parallel ExecPolicy, SancheckMode::strict armed.
  fuzz::EngineOptions opts;
  opts.master_seed = GetParam();
  for (const auto& fc : fuzz_cases(GetParam() * 100)) {
    for (const auto& f : fuzz::check_graph(fc.graph, fc.family, opts)) {
      ADD_FAILURE() << fc.family << ": " << fuzz::describe(f);
    }
  }
}

TEST_P(ConsistencyFuzz, StreamRoundTripAndExternalAgree) {
  for (const auto& fc : fuzz_cases(GetParam() * 100 + 50)) {
    std::stringstream buffer;
    graph::write_snap_edge_list(buffer, fc.graph);
    const Graph reloaded = graph::read_snap_edge_list(buffer).graph;
    EXPECT_EQ(core::count_triangles_forward(reloaded),
              core::count_triangles_forward(fc.graph))
        << fc.family;
  }
}

TEST_P(ConsistencyFuzz, StructuralInvariants) {
  for (const auto& fc : fuzz_cases(GetParam() * 100 + 77)) {
    const Graph& g = fc.graph;
    // Degree sum.
    std::size_t degsum = 0;
    for (graph::Vertex v = 0; v < g.num_vertices(); ++v)
      degsum += g.degree(v);
    EXPECT_EQ(degsum, 2 * g.num_edges()) << fc.family;

    // ALS plan totals equal the sum of per-job closed forms and cover a
    // count consistent with Algorithm 2's dedup guarantee (verified by
    // the counters above); offsets are a prefix sum.
    const core::AlsPlan plan = core::build_als_plan(g);
    std::uint64_t acc = 0;
    for (const auto& job : plan.jobs) {
      EXPECT_EQ(job.test_offset, acc) << fc.family;
      acc += job.tests;
    }
    EXPECT_EQ(acc, plan.total_tests) << fc.family;

    // Chunking covers all vertices and respects level bounds.
    graph::ChunkingOptions copts;
    copts.shared_mem_bits = 2000;
    const auto chunks = graph::split_into_chunks(g, copts);
    std::vector<bool> seen(g.num_vertices(), false);
    for (const auto& chunk : chunks.chunks)
      for (const graph::Vertex v : chunk.vertices) seen[v] = true;
    for (graph::Vertex v = 0; v < g.num_vertices(); ++v)
      EXPECT_TRUE(seen[v]) << fc.family << " vertex " << v;

    // Truss numbers never below 2, never above degeneracy + 1 bound...
    // use the definitional check instead: 3-truss edges sit in triangles.
    const Graph t3 = core::ktruss_subgraph(g, 3);
    for (const auto& [u, v] : t3.edges()) {
      bool ok = false;
      for (const graph::Vertex w : t3.neighbors(u))
        if (t3.has_edge(v, w)) ok = true;
      EXPECT_TRUE(ok) << fc.family;
    }

    // Transitivity is a ratio in [0, 1].
    const double t = core::transitivity(g);
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace lgg

// The paper's central dedup claim, verified by brute force: Algorithm 2's
// adjacent-level-set test spaces enumerate every candidate vertex triple
// that could be a triangle EXACTLY once across the whole plan — no triple
// missed, no triple double-tested.  (Triples spanning more than two BFS
// levels cannot be triangles and are correctly absent.)
#include <gtest/gtest.h>

#include <map>

#include "core/als_plan.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"

namespace lgg::core {
namespace {

using graph::Graph;
using graph::Vertex;

/// Enumerate every test of every job and histogram the global triples.
std::map<std::array<Vertex, 3>, int> enumerate_plan(const AlsPlan& plan) {
  std::map<std::array<Vertex, 3>, int> seen;
  for (const AlsJob& job : plan.jobs) {
    if (job.tests == 0) continue;
    TestTriple t{0, 1, 2};
    bool more = true;
    while (more) {
      std::array<Vertex, 3> key{job.local_to_global[t.x],
                                job.local_to_global[t.y],
                                job.local_to_global[t.z]};
      std::sort(key.begin(), key.end());
      ++seen[key];
      more = als_advance_test(job, t);
    }
  }
  return seen;
}

class DedupProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DedupProperty, EveryEligibleTripleTestedExactlyOnce) {
  const Graph g = graph::erdos_renyi(40, 0.15, GetParam());
  const AlsPlan plan = build_als_plan(g);
  const auto seen = enumerate_plan(plan);

  // (1) No triple is ever tested twice.
  for (const auto& [triple, count] : seen)
    EXPECT_EQ(count, 1) << triple[0] << "," << triple[1] << "," << triple[2];

  // (2) Exactly the triples within <= 2 adjacent BFS levels of one
  // component are tested.
  const graph::Components comps = graph::connected_components(g);
  std::vector<std::uint32_t> level(g.num_vertices());
  for (std::uint32_t c = 0; c < comps.count; ++c) {
    const auto members = comps.vertices_of(c);
    const graph::BfsTree tree = graph::bfs(g, members.front());
    for (const Vertex v : members) level[v] = tree.level[v];
  }
  std::uint64_t eligible = 0;
  for (Vertex a = 0; a < g.num_vertices(); ++a)
    for (Vertex b = a + 1; b < g.num_vertices(); ++b)
      for (Vertex c = b + 1; c < g.num_vertices(); ++c) {
        if (comps.component_of[a] != comps.component_of[b] ||
            comps.component_of[b] != comps.component_of[c])
          continue;
        const auto lo = std::min({level[a], level[b], level[c]});
        const auto hi = std::max({level[a], level[b], level[c]});
        if (hi - lo <= 1) {
          ++eligible;
          EXPECT_TRUE(seen.count({a, b, c}))
              << "missed triple " << a << "," << b << "," << c;
        } else {
          EXPECT_FALSE(seen.count({a, b, c}))
              << "tested a non-adjacent-level triple " << a << "," << b
              << "," << c;
        }
      }
  EXPECT_EQ(seen.size(), eligible);
  EXPECT_EQ(plan.total_tests, eligible);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DedupProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(DedupProperty, MultiComponentGraph) {
  const Graph g = graph::disjoint_union(
      graph::erdos_renyi(20, 0.25, 9),
      graph::disjoint_union(graph::complete(6), graph::star(7)));
  const AlsPlan plan = build_als_plan(g);
  for (const auto& [triple, count] : enumerate_plan(plan))
    EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace lgg::core

#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "util/error.hpp"

namespace lgg::gpusim {
namespace {

// Table I of the paper, row by row.
TEST(Device, C1060MatchesTableI) {
  const DeviceSpec& d = tesla_c1060();
  EXPECT_EQ(d.cores, 240u);
  EXPECT_EQ(d.global_mem_bytes, 4ull * 1024 * 1024 * 1024);
  EXPECT_EQ(d.shared_mem_bytes, 16u * 1024);
  EXPECT_EQ(d.shared_banks, 16u);
  EXPECT_EQ(d.cc, ComputeCapability::k13);
  EXPECT_EQ(d.sm_count, 30u);
  EXPECT_EQ(d.cores_per_sm(), 8u);
  EXPECT_EQ(d.partitions, 8u);  // 200-series: 8 partitions of 256 B
  EXPECT_FALSE(d.has_cached_global());
}

TEST(Device, C2050MatchesTableI) {
  const DeviceSpec& d = tesla_c2050();
  EXPECT_EQ(d.cores, 448u);
  EXPECT_EQ(d.global_mem_bytes, 3ull * 1024 * 1024 * 1024);
  EXPECT_EQ(d.shared_mem_bytes, 48u * 1024);
  EXPECT_EQ(d.shared_banks, 32u);
  EXPECT_EQ(d.cc, ComputeCapability::k20);
  EXPECT_TRUE(d.has_cached_global());
}

TEST(Device, C2070MatchesTableI) {
  const DeviceSpec& d = tesla_c2070();
  EXPECT_EQ(d.cores, 448u);
  EXPECT_EQ(d.global_mem_bytes, 6ull * 1024 * 1024 * 1024);
  EXPECT_EQ(d.shared_mem_bytes, 48u * 1024);
  EXPECT_EQ(d.cc, ComputeCapability::k20);
}

TEST(Device, KnownDevicesTableIOrder) {
  const auto devices = known_devices();
  ASSERT_EQ(devices.size(), 3u);
  EXPECT_EQ(devices[0].name, "C1060");
  EXPECT_EQ(devices[1].name, "C2050");
  EXPECT_EQ(devices[2].name, "C2070");
}

TEST(Device, LookupByNameCaseInsensitive) {
  EXPECT_EQ(&device_by_name("c1060"), &tesla_c1060());
  EXPECT_EQ(&device_by_name("C2070"), &tesla_c2070());
  EXPECT_THROW(device_by_name("GTX480"), lgg::Error);
}

TEST(Device, DerivedQuantities) {
  const DeviceSpec& d = tesla_c1060();
  EXPECT_EQ(d.shared_mem_bits(), 16ull * 1024 * 8);
  EXPECT_EQ(d.global_mem_bits(), 4ull * 1024 * 1024 * 1024 * 8);
}

TEST(Device, ComputeCapabilityNames) {
  EXPECT_STREQ(to_string(ComputeCapability::k10), "1.0");
  EXPECT_STREQ(to_string(ComputeCapability::k13), "1.3");
  EXPECT_STREQ(to_string(ComputeCapability::k20), "2.0");
}

}  // namespace
}  // namespace lgg::gpusim

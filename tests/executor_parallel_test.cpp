// Determinism and correctness of the multi-threaded simulator path:
// KernelReport must be bit-identical between serial and N-thread parallel
// execution for every kernel shape and sample stride, and the functional
// outputs of the core kernels must keep matching the CPU oracles when the
// default (parallel) policy is active.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/intersect_gpu.hpp"
#include "core/subgraph_gpu.hpp"
#include "core/triangle_cpu.hpp"
#include "core/triangle_gpu.hpp"
#include "graph/generators.hpp"
#include "gpusim/executor.hpp"

namespace lgg::gpusim {
namespace {

/// Field-by-field equality, exact on doubles: the parallel path must
/// reproduce the serial report bit-for-bit, not approximately.
void expect_reports_identical(const KernelReport& a, const KernelReport& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.threads_per_block, b.threads_per_block);
  EXPECT_EQ(a.warps, b.warps);
  EXPECT_EQ(a.global_slots, b.global_slots);
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.partition_histogram.count, b.partition_histogram.count);
  EXPECT_EQ(a.partition_histogram.total, b.partition_histogram.total);
  EXPECT_EQ(a.camping_factor, b.camping_factor);
  EXPECT_EQ(a.shared_slots, b.shared_slots);
  EXPECT_EQ(a.bank_conflict_steps, b.bank_conflict_steps);
  EXPECT_EQ(a.warp_instructions, b.warp_instructions);
  EXPECT_EQ(a.compute_cycles, b.compute_cycles);
  EXPECT_EQ(a.latency_cycles, b.latency_cycles);
  EXPECT_EQ(a.dram_cycles, b.dram_cycles);
  EXPECT_EQ(a.kernel_time_s, b.kernel_time_s);
  EXPECT_EQ(a.sample_fraction, b.sample_fraction);
}

/// A kernel with non-uniform per-thread work: varying compute (so per-SM
/// floating-point sums are order-sensitive), strided global reads, and
/// shared accesses with occasional bank conflicts.
KernelFn mixed_kernel(const Buffer& buf) {
  return [&buf](const ThreadCtx& ctx, ThreadRecorder& rec) {
    const std::uint64_t salt = ctx.global_id * 2654435761u;
    rec.compute(1.0 + static_cast<double>(salt % 17) * 0.37);
    const std::uint64_t reads = 1 + ctx.global_id % 3;
    for (std::uint64_t r = 0; r < reads; ++r)
      rec.global_read(buf, (salt + r * 4096) % ((1 << 22) - 16) / 4 * 4, 4);
    if (ctx.global_id % 2 == 0)
      rec.shared_access(64ull * (ctx.lane % 8));  // some conflicts
  };
}

TEST(ExecutorParallel, BitIdenticalAcrossThreadCounts) {
  const Simulator sim(tesla_c1060());
  DeviceMemory mem(tesla_c1060());
  const Buffer buf = mem.alloc(1 << 22);
  const KernelFn kernel = mixed_kernel(buf);

  // Shapes: uneven last warp (tpb 40), partial second warp (tpb 33),
  // more blocks than SMs, fewer blocks than SMs.
  const KernelConfig shapes[] = {
      {"uneven", 4, 40},  {"tiny", 1, 33},      {"wide", 67, 128},
      {"partial", 3, 96}, {"one-warp", 1, 32},
  };
  for (const KernelConfig& cfg : shapes) {
    for (const std::uint32_t stride : {1u, 3u, 7u}) {
      const KernelReport serial =
          sim.run(kernel, cfg, stride, ExecPolicy::serial());
      for (const std::size_t threads : {1u, 2u, 5u, 13u}) {
        SCOPED_TRACE(cfg.name + "/stride" + std::to_string(stride) +
                     "/threads" + std::to_string(threads));
        const KernelReport parallel =
            sim.run(kernel, cfg, stride, ExecPolicy::parallel(threads));
        expect_reports_identical(serial, parallel);
      }
      // Default policy (shared pool) must agree too.
      const KernelReport def = sim.run(kernel, cfg, stride);
      expect_reports_identical(serial, def);
    }
  }
}

TEST(ExecutorParallel, CachedDeviceAlsoBitIdentical) {
  const Simulator sim(tesla_c2050());
  DeviceMemory mem(tesla_c2050());
  const Buffer buf = mem.alloc(1 << 22);
  const KernelFn kernel = mixed_kernel(buf);
  const KernelConfig cfg{"fermi", 29, 64};
  const KernelReport serial = sim.run(kernel, cfg, 1, ExecPolicy::serial());
  const KernelReport parallel =
      sim.run(kernel, cfg, 1, ExecPolicy::parallel(4));
  expect_reports_identical(serial, parallel);
}

TEST(ExecutorParallel, PerWarpSlotsMatchSerialFunctionalResult) {
  const Simulator sim(tesla_c1060());
  const KernelConfig cfg{"slots", 9, 64};
  const std::uint64_t warps = cfg.total_warps(32);
  auto run_once = [&](const ExecPolicy& policy) {
    std::vector<std::uint64_t> slots(warps, 0);
    sim.run(
        [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
          rec.compute(1);
          slots[ctx.global_warp] += ctx.global_id + 1;
        },
        cfg, 1, policy);
    return slots;
  };
  const auto serial = run_once(ExecPolicy::serial());
  const auto parallel = run_once(ExecPolicy::parallel(6));
  EXPECT_EQ(serial, parallel);
}

TEST(ExecutorParallel, KernelExceptionPropagates) {
  const Simulator sim(tesla_c1060());
  const KernelFn boom = [](const ThreadCtx& ctx, ThreadRecorder&) {
    if (ctx.global_id == 777) throw std::runtime_error("kernel boom");
  };
  EXPECT_THROW(
      sim.run(boom, {"boom", 30, 64}, 1, ExecPolicy::parallel(4)),
      std::runtime_error);
  EXPECT_THROW(sim.run(boom, {"boom", 30, 64}, 1, ExecPolicy::serial()),
               std::runtime_error);
}

TEST(ExecutorParallel, TriangleCountsMatchCpuOracleUnderParallelDefault) {
  const graph::Graph g = graph::layered_random(600, 60, 0.08, 0.04, 99);
  const std::uint64_t oracle = core::count_triangles_forward(g);

  for (const auto layout :
       {core::GpuLayout::kNaive, core::GpuLayout::kCoalesced,
        core::GpuLayout::kCoalescedAntiCamping}) {
    core::GpuTriangleOptions opts;
    opts.layout = layout;  // default opts.exec == parallel
    const auto r = core::count_triangles_gpu(g, opts);
    EXPECT_TRUE(r.exact);
    EXPECT_EQ(r.triangles, oracle);

    core::GpuTriangleOptions serial_opts = opts;
    serial_opts.exec = gpusim::ExecPolicy::serial();
    const auto s = core::count_triangles_gpu(g, serial_opts);
    EXPECT_EQ(s.triangles, r.triangles);
    expect_reports_identical(s.kernel, r.kernel);
  }

  core::GpuIntersectOptions iopts;  // parallel default
  const auto ir = core::count_triangles_gpu_intersect(g, iopts);
  EXPECT_TRUE(ir.exact);
  EXPECT_EQ(ir.triangles, oracle);

  core::GpuKCountOptions kopts;  // parallel default
  const auto kr = core::count_kcliques_gpu(g, 3, kopts);
  EXPECT_TRUE(kr.exact);
  EXPECT_EQ(kr.count, oracle);
}

}  // namespace
}  // namespace lgg::gpusim

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "gpusim/calibration.hpp"
#include "gpusim/executor.hpp"
#include "util/error.hpp"

namespace lgg::gpusim {
namespace {

namespace cal = calibration;

TEST(Executor, RunsEveryThreadExactlyOnce) {
  const Simulator sim(tesla_c1060());
  // The default policy replays warps on multiple host threads, so the
  // test collects contexts under a mutex and asserts afterwards.
  std::mutex mu;
  std::vector<ThreadCtx> seen;
  KernelConfig cfg{"ids", 4, 96};
  sim.run(
      [&](const ThreadCtx& ctx, ThreadRecorder&) {
        const std::lock_guard lock(mu);
        seen.push_back(ctx);
      },
      cfg);
  ASSERT_EQ(seen.size(), 4u * 96);
  std::set<std::uint64_t> ids;
  for (const ThreadCtx& ctx : seen) {
    EXPECT_TRUE(ids.insert(ctx.global_id).second);
    EXPECT_EQ(ctx.global_id,
              static_cast<std::uint64_t>(ctx.block) * 96 + ctx.thread);
    EXPECT_EQ(ctx.lane, ctx.thread % 32);
    EXPECT_EQ(ctx.warp, ctx.thread / 32);
    EXPECT_EQ(ctx.global_warp, static_cast<std::uint64_t>(ctx.block) *
                                       cfg.warps_per_block(32) +
                                   ctx.warp);
  }
  EXPECT_EQ(ids.size(), 4u * 96);
}

TEST(Executor, ReportShapeBasics) {
  const Simulator sim(tesla_c1060());
  DeviceMemory mem(tesla_c1060());
  const Buffer buf = mem.alloc(1 << 20);
  KernelConfig cfg{"seq", 2, 64};
  const KernelReport r = sim.run(
      [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
        rec.global_read(buf, 4ull * ctx.global_id, 4);
        rec.compute(10);
      },
      cfg);
  EXPECT_EQ(r.warps, 4u);
  EXPECT_EQ(r.global_slots, 4u);  // one slot per warp
  // Fully sequential aligned reads on CC 1.3: 2 transactions per warp slot.
  EXPECT_EQ(r.transactions, 8u);
  EXPECT_EQ(r.bytes, 8u * 64);
  EXPECT_GT(r.kernel_time_s, 0.0);
  EXPECT_EQ(r.sample_fraction, 1.0);
}

TEST(Executor, ScatteredReadsCostMoreTransactions) {
  const Simulator sim(tesla_c1060());
  DeviceMemory mem(tesla_c1060());
  const Buffer buf = mem.alloc(1 << 24);
  KernelConfig cfg{"scatter", 2, 64};
  const KernelReport seq = sim.run(
      [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
        rec.global_read(buf, 4ull * ctx.global_id, 4);
      },
      cfg);
  const KernelReport scat = sim.run(
      [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
        rec.global_read(buf, 4096ull * ctx.global_id, 4);
      },
      cfg);
  EXPECT_GT(scat.transactions, seq.transactions);
  EXPECT_GT(scat.transactions_per_slot(), seq.transactions_per_slot());
}

TEST(Executor, CampingShowsUpInReport) {
  const Simulator sim(tesla_c1060());
  DeviceMemory mem(tesla_c1060());
  const Buffer buf = mem.alloc(1 << 24);
  KernelConfig cfg{"camp", 8, 32};
  // Every warp reads from partition 0 (stride = full partition period).
  const KernelReport camped = sim.run(
      [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
        rec.global_read(buf, 2048ull * ctx.global_id * 32 % (1 << 24), 4);
      },
      cfg);
  EXPECT_GT(camped.camping_factor, 2.0);
  // Spread reads across partitions via 256-byte stride per warp.
  const KernelReport spread = sim.run(
      [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
        const std::uint64_t warp_id = ctx.global_id / 32;
        rec.global_read(buf, (warp_id * 256 + ctx.lane * 4) % (1 << 24), 4);
      },
      cfg);
  EXPECT_LT(spread.camping_factor, camped.camping_factor);
  EXPECT_LE(spread.dram_cycles, camped.dram_cycles);
}

TEST(Executor, CachedDeviceNeutralisesCamping) {
  DeviceMemory mem(tesla_c2050());
  const Buffer buf = mem.alloc(1 << 24);
  KernelConfig cfg{"camp20", 8, 32};
  const auto kernel = [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
    rec.global_read(buf, 2048ull * ctx.global_id * 32 % (1 << 24), 4);
  };
  const KernelReport fermi = Simulator(tesla_c2050()).run(kernel, cfg);
  // CC 2.0 prices DRAM at the ideal spread regardless of the histogram.
  EXPECT_NEAR(fermi.dram_cycles,
              static_cast<double>(fermi.partition_histogram.ideal_steps()) *
                  cal::kTransactionServiceCycles,
              1.0);
}

TEST(Executor, BankConflictsCharged) {
  const Simulator sim(tesla_c1060());
  KernelConfig cfg{"banks", 1, 32};
  const KernelReport free = sim.run(
      [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
        rec.shared_access(4ull * ctx.lane);
      },
      cfg);
  const KernelReport conflicted = sim.run(
      [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
        rec.shared_access(64ull * ctx.lane);  // 16-way conflict
      },
      cfg);
  EXPECT_EQ(free.shared_slots, 1u);
  EXPECT_EQ(free.bank_conflict_steps, 2u);  // two half-warps, one step each
  EXPECT_EQ(conflicted.bank_conflict_steps, 32u);
  EXPECT_GT(conflicted.compute_cycles, free.compute_cycles);
}

TEST(Executor, ComputeOnlyKernelTimeScalesWithWork) {
  const Simulator sim(tesla_c1060());
  KernelConfig cfg{"compute", 30, 32};
  const auto light = sim.run(
      [](const ThreadCtx&, ThreadRecorder& rec) { rec.compute(100); }, cfg);
  const auto heavy = sim.run(
      [](const ThreadCtx&, ThreadRecorder& rec) { rec.compute(1000); }, cfg);
  EXPECT_NEAR(heavy.compute_cycles / light.compute_cycles, 10.0, 0.01);
  EXPECT_GT(heavy.kernel_time_s, light.kernel_time_s);
}

TEST(Executor, SamplingScalesStatistics) {
  const Simulator sim(tesla_c1060());
  DeviceMemory mem(tesla_c1060());
  const Buffer buf = mem.alloc(1 << 20);
  KernelConfig cfg{"sampled", 8, 128};  // 32 warps
  const auto kernel = [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
    rec.global_read(buf, 4ull * ctx.global_id, 4);
    rec.compute(7);
  };
  const KernelReport exact = sim.run(kernel, cfg, 1);
  const KernelReport sampled = sim.run(kernel, cfg, 4);
  EXPECT_EQ(sampled.sample_fraction, 0.25);
  // Uniform workload: scaled statistics land close to the exact run.
  EXPECT_NEAR(static_cast<double>(sampled.global_slots),
              static_cast<double>(exact.global_slots), 1.0);
  EXPECT_NEAR(static_cast<double>(sampled.transactions),
              static_cast<double>(exact.transactions),
              0.1 * static_cast<double>(exact.transactions));
  EXPECT_NEAR(sampled.kernel_time_s, exact.kernel_time_s,
              0.5 * exact.kernel_time_s);
}

TEST(Executor, LaunchValidation) {
  const Simulator sim(tesla_c1060());
  const KernelFn noop = [](const ThreadCtx&, ThreadRecorder&) {};
  EXPECT_THROW(sim.run(noop, {"bad", 0, 32}), lgg::Error);
  EXPECT_THROW(sim.run(noop, {"bad", 1, 0}), lgg::Error);
  EXPECT_THROW(sim.run(noop, {"bad", 1, 2048}), lgg::Error);
  EXPECT_THROW(sim.run(noop, {"ok", 1, 32}, 0), lgg::Error);
}

TEST(Executor, LaunchOverheadFloor) {
  const Simulator sim(tesla_c1060());
  const KernelReport r =
      sim.run([](const ThreadCtx&, ThreadRecorder&) {}, {"noop", 1, 32});
  EXPECT_GE(r.kernel_time_s, cal::kKernelLaunchOverheadS);
}

TEST(Executor, TransferReportMatchesModel) {
  const Simulator sim(tesla_c1060());
  const TransferReport t = sim.transfer(1 << 20);
  EXPECT_EQ(t.bytes, 1u << 20);
  EXPECT_DOUBLE_EQ(t.time_s, transfer_time_s(tesla_c1060(), 1 << 20));
}

TEST(Executor, PartialWarpHandled) {
  const Simulator sim(tesla_c1060());
  std::atomic<std::uint32_t> calls{0};
  sim.run([&](const ThreadCtx&, ThreadRecorder&) { ++calls; },
          {"partial", 1, 40});  // 1 full warp + 8 lanes
  EXPECT_EQ(calls.load(), 40u);
}

}  // namespace
}  // namespace lgg::gpusim

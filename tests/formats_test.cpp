#include <gtest/gtest.h>

#include <sstream>

#include "graph/formats.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace lgg::graph {
namespace {

TEST(Dimacs, ParsesStandardFile) {
  std::istringstream in(
      "c sample clique instance\n"
      "p edge 4 4\n"
      "e 1 2\n"
      "e 2 3\n"
      "e 3 4\n"
      "e 4 1\n");
  const Graph g = read_dimacs(in);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(3, 0));
}

TEST(Dimacs, RejectsMalformedInput) {
  std::istringstream no_header("e 1 2\n");
  EXPECT_THROW(read_dimacs(no_header), lgg::Error);
  std::istringstream out_of_range("p edge 3 1\ne 1 4\n");
  EXPECT_THROW(read_dimacs(out_of_range), lgg::Error);
  std::istringstream junk("p edge 3 1\nx 1 2\n");
  EXPECT_THROW(read_dimacs(junk), lgg::Error);
  std::istringstream zero_id("p edge 3 1\ne 0 2\n");
  EXPECT_THROW(read_dimacs(zero_id), lgg::Error);
}

TEST(Dimacs, RoundTrip) {
  const Graph g = erdos_renyi(40, 0.15, 5);
  std::stringstream buffer;
  write_dimacs(buffer, g, "round trip");
  const Graph back = read_dimacs(buffer);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.edges(), g.edges());
}

TEST(Dimacs, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/lgg_fmt.dimacs";
  const Graph g = complete(5);
  write_dimacs_file(path, g, "K5");
  EXPECT_EQ(read_dimacs_file(path).num_edges(), 10u);
  EXPECT_THROW(read_dimacs_file("/nonexistent.dimacs"), lgg::Error);
}

TEST(Metis, ParsesStandardFile) {
  // Path 1-2-3 (1-based): each line lists the vertex's neighbours.
  std::istringstream in(
      "% comment\n"
      "3 2\n"
      "2\n"
      "1 3\n"
      "2\n");
  const Graph g = read_metis(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Metis, RejectsBadInput) {
  std::istringstream short_file("3 2\n2\n");
  EXPECT_THROW(read_metis(short_file), lgg::Error);
  std::istringstream bad_count("3 5\n2\n1 3\n2\n");
  EXPECT_THROW(read_metis(bad_count), lgg::Error);
  std::istringstream weighted("3 2 011\n2\n1 3\n2\n");
  EXPECT_THROW(read_metis(weighted), lgg::Error);
  std::istringstream out_of_range("2 1\n5\n\n");
  EXPECT_THROW(read_metis(out_of_range), lgg::Error);
}

TEST(Metis, RoundTrip) {
  const Graph g = barabasi_albert(60, 3, 9);
  std::stringstream buffer;
  write_metis(buffer, g);
  const Graph back = read_metis(buffer);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.edges(), g.edges());
}

TEST(Metis, IsolatedVerticesSurvive) {
  // METIS represents isolated vertices as empty lines — unlike edge lists.
  Graph g(4);
  std::stringstream buffer;
  write_metis(buffer, g);
  const Graph back = read_metis(buffer);
  EXPECT_EQ(back.num_vertices(), 4u);
  EXPECT_EQ(back.num_edges(), 0u);
}

TEST(Formats, CrossFormatConsistency) {
  const Graph g = erdos_renyi(30, 0.2, 7);
  std::stringstream dimacs, metis;
  write_dimacs(dimacs, g);
  write_metis(metis, g);
  EXPECT_EQ(read_dimacs(dimacs).edges(), read_metis(metis).edges());
}

}  // namespace
}  // namespace lgg::graph

// Regression-corpus replay: every checked-in repro under tests/corpus/
// must load, carry a correct oracle, and pass every counting path under
// strict sancheck and both execution policies.  LGG_CORPUS_DIR is injected
// by CMake.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>

#include "lgg.hpp"

namespace lgg::fuzz {
namespace {

std::vector<std::string> corpus_files() { return list_repro_files(LGG_CORPUS_DIR); }

TEST(FuzzCorpus, CorpusIsNonEmpty) {
  EXPECT_GE(corpus_files().size(), 5u)
      << "expected the seed corpus under " << LGG_CORPUS_DIR;
}

class CorpusReplay : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusReplay, OracleMatchesAndAllPathsAgree) {
  const Repro repro = read_repro_file(GetParam());
  EXPECT_EQ(repro.oracle, oracle_triangles(repro.graph))
      << "stale oracle in " << GetParam();

  EngineOptions opts;  // full path set, serial+parallel, strict sancheck
  for (const auto& f : check_graph(repro.graph, repro.spec, opts)) {
    ADD_FAILURE() << GetParam() << ": " << describe(f);
  }
}

std::string repro_test_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string stem = std::filesystem::path(info.param).stem().string();
  for (char& c : stem) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return stem;
}

INSTANTIATE_TEST_SUITE_P(SeedCorpus, CorpusReplay,
                         ::testing::ValuesIn(corpus_files()),
                         repro_test_name);

}  // namespace
}  // namespace lgg::fuzz

// The differential fuzzing engine: spec sampling, finding classification,
// the delta-debugging shrinker (including the acceptance demo: a seeded
// fault auto-shrunk to a <= 10-vertex reproducer), corpus round trips,
// and the bit-identical-findings-log determinism contract.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "lgg.hpp"

namespace lgg::fuzz {
namespace {

using graph::Graph;

// A deliberately broken exact counter: +1 whenever some vertex has degree
// >= 4.  The minimal graph exhibiting the fault is the 5-vertex star.
CountingPath broken_degree4_path() {
  CountingPath p;
  p.name = "test/degree4-broken";
  p.kind = PathKind::kExact;
  p.run = [](const Graph& g, const PathContext&) {
    std::uint64_t c = core::count_triangles_forward(g);
    if (g.max_degree() >= 4) ++c;  // the seeded fault
    return PathOutcome{static_cast<double>(c), 0.0, {}};
  };
  return p;
}

// --- spec sampling -------------------------------------------------------

TEST(SpecTest, SampledSpecsBuildAcrossAllFamilies) {
  Xoshiro256 rng(123);
  SamplerLimits limits;
  limits.max_vertices = 40;
  std::set<std::string> seen;
  for (int i = 0; i < 300; ++i) {
    const GraphSpec s = sample_spec(rng, limits);
    seen.insert(s.family);
    const Graph g = s.build();  // every sampled spec must materialise
    // max_vertices is a hard invariant: no family may overshoot it
    // (grid factors its sides, rmat fits 2^scale under the cap).
    EXPECT_LE(g.num_vertices(), limits.max_vertices) << s.to_string();
    EXPECT_FALSE(s.to_string().empty());
  }
  // 300 draws over 13 families: all of them should appear.
  EXPECT_EQ(seen.size(), spec_families().size());
}

TEST(SpecTest, MaxVerticesIsAHardInvariantAtEveryLimit) {
  // Property test: whatever the configured ceiling — including ones
  // smaller than the samplers' historical constants (grid's 8 rows,
  // bipartite's 12+1, rmat's 2^2) — no sampled spec builds a graph above
  // max(max_vertices, 2).
  for (const std::size_t max_vertices : {2u, 3u, 4u, 5u, 8u, 13u, 72u}) {
    Xoshiro256 rng(1000 + max_vertices);
    SamplerLimits limits;
    limits.max_vertices = max_vertices;
    const std::size_t cap = std::max<std::size_t>(max_vertices, 2);
    std::set<std::string> seen;
    for (int i = 0; i < 400; ++i) {
      const GraphSpec s = sample_spec(rng, limits);
      seen.insert(s.family);
      const Graph g = s.build();
      ASSERT_LE(g.num_vertices(), cap)
          << "limit " << max_vertices << ": " << s.to_string();
    }
    // Every family must still be reachable under tight limits.
    EXPECT_EQ(seen.size(), spec_families().size()) << "limit " << max_vertices;
  }
}

TEST(SpecTest, SpecBuildIsDeterministic) {
  Xoshiro256 rng(7);
  const GraphSpec s = sample_spec(rng);
  const Graph a = s.build();
  const Graph b = s.build();
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(SpecTest, UnknownFamilyThrows) {
  GraphSpec s;
  s.family = "no-such-family";
  EXPECT_THROW(s.build(), lgg::Error);
}

// --- shrinker ------------------------------------------------------------

TEST(Shrink, MinimizesTrianglePredicateToK3) {
  const auto r = shrink_graph(graph::complete(8), [](const Graph& g) {
    return core::count_triangles_forward(g) >= 1;
  });
  EXPECT_EQ(r.graph.num_vertices(), 3u);
  EXPECT_EQ(r.graph.num_edges(), 3u);
  EXPECT_TRUE(r.minimal);
}

TEST(Shrink, EdgePassStrandsThenVertexPassSweeps) {
  // Failure: "has a vertex of degree >= 3".  From K5 the minimum is the
  // 4-vertex star — reachable only by removing edges AND vertices.
  const auto r = shrink_graph(graph::complete(5), [](const Graph& g) {
    return g.max_degree() >= 3;
  });
  EXPECT_EQ(r.graph.num_vertices(), 4u);
  EXPECT_EQ(r.graph.num_edges(), 3u);
  EXPECT_TRUE(r.minimal);
}

TEST(Shrink, NonFailingInputReturnsUnchanged) {
  const Graph g = graph::cycle(6);
  const auto r = shrink_graph(g, [](const Graph&) { return false; });
  EXPECT_EQ(r.graph.num_vertices(), 6u);
  EXPECT_EQ(r.graph.num_edges(), 6u);
  EXPECT_FALSE(r.minimal);
}

TEST(Shrink, RespectsProbeBudget) {
  ShrinkOptions opts;
  opts.max_probes = 4;
  const auto r = shrink_graph(graph::complete(10), [](const Graph& g) {
    return core::count_triangles_forward(g) >= 1;
  }, opts);
  EXPECT_LE(r.probes, 4u);
  EXPECT_FALSE(r.minimal);
  // Whatever it returns must still fail.
  EXPECT_GE(core::count_triangles_forward(r.graph), 1u);
}

// --- corpus format -------------------------------------------------------

TEST(Corpus, RoundTripsGraphAndMetadata) {
  Repro r;
  r.name = "round-trip";
  r.spec = "complete 6 seed=0";
  r.note = "a note, with punctuation: [x]";
  r.oracle = 20;
  r.graph = graph::complete(6);
  std::stringstream ss;
  write_repro(ss, r);
  const Repro back = read_repro(ss);
  EXPECT_EQ(back.name, r.name);
  EXPECT_EQ(back.spec, r.spec);
  EXPECT_EQ(back.note, r.note);
  EXPECT_EQ(back.oracle, 20u);
  EXPECT_EQ(back.graph.num_vertices(), 6u);
  EXPECT_EQ(back.graph.num_edges(), 15u);
}

TEST(Corpus, PreservesIsolatedVerticesViaNodesHeader) {
  Repro r;
  r.graph = Graph::from_edges(7, std::vector<graph::Edge>{{2, 5}});
  std::stringstream ss;
  write_repro(ss, r);
  const Repro back = read_repro(ss);
  EXPECT_EQ(back.graph.num_vertices(), 7u);
  EXPECT_EQ(back.graph.num_edges(), 1u);
}

TEST(Corpus, RejectsFilesWithoutMagic) {
  std::stringstream ss;
  ss << "# just an edge list\n0 1\n";
  EXPECT_THROW(read_repro(ss), lgg::Error);
}

// --- engine classification ----------------------------------------------

TEST(FuzzEngine, CleanPathsProduceNoFindings) {
  EngineOptions opts;  // default paths, serial+parallel, strict sancheck
  const auto findings =
      check_graph(graph::erdos_renyi(40, 0.15, 99), "gnp 40 0.15 seed=99",
                  opts);
  for (const auto& f : findings) ADD_FAILURE() << describe(f);
}

TEST(FuzzEngine, ClassifiesMismatch) {
  EngineOptions opts;
  opts.paths = {broken_degree4_path()};
  opts.policies = {gpusim::ExecPolicy::serial()};
  const auto findings = check_graph(graph::star(6), "star 6", opts);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, FindingKind::kMismatch);
  EXPECT_EQ(findings[0].oracle, 0u);
  EXPECT_EQ(findings[0].got, 1.0);
  EXPECT_NE(describe(findings[0]).find("test/degree4-broken"),
            std::string::npos);
}

TEST(FuzzEngine, ClassifiesException) {
  CountingPath p;
  p.name = "test/throws";
  p.run = [](const Graph& g, const PathContext&) -> PathOutcome {
    if (g.num_edges() >= 1) LGG_THROW("injected failure");
    return {};
  };
  EngineOptions opts;
  opts.paths = {p};
  const auto findings = check_graph(graph::path(4), "path 4", opts);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, FindingKind::kException);
  EXPECT_NE(findings[0].detail.find("injected failure"), std::string::npos);
}

TEST(FuzzEngine, ClassifiesEstimatorOutsideTolerance) {
  CountingPath p;
  p.name = "test/bad-estimator";
  p.kind = PathKind::kEstimate;
  p.run = [](const Graph& g, const PathContext&) {
    return PathOutcome{
        static_cast<double>(core::count_triangles_forward(g)) + 100.0, 1.0,
        {}};
  };
  EngineOptions opts;
  opts.paths = {p};
  const auto findings = check_graph(graph::complete(6), "complete 6", opts);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, FindingKind::kMismatch);
  EXPECT_EQ(findings[0].tolerance, 1.0);
}

TEST(FuzzEngine, ClassifiesBrokenInvariant) {
  CountingPath p;
  p.name = "test/invariant";
  p.kind = PathKind::kInvariant;
  p.run = [](const Graph&, const PathContext&) {
    return PathOutcome{1.0, 0.0, "always broken"};
  };
  EngineOptions opts;
  opts.paths = {p};
  const auto findings = check_graph(Graph(3), "empty 3", opts);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, FindingKind::kInvariant);
  EXPECT_EQ(findings[0].detail, "always broken");
}

// --- the acceptance demo: detect, shrink, emit, replay -------------------

TEST(FuzzEngine, DetectsShrinksAndReproducesInjectedFault) {
  const auto corpus_dir = std::filesystem::temp_directory_path() /
                          "lgg_fuzz_engine_test_corpus";
  std::filesystem::remove_all(corpus_dir);

  EngineOptions opts;
  opts.master_seed = 2026;
  opts.max_iterations = 300;
  opts.max_findings = 1;
  opts.paths = {broken_degree4_path()};
  opts.policies = {gpusim::ExecPolicy::serial()};
  opts.corpus_dir = corpus_dir.string();

  const auto result = run_campaign(opts);
  ASSERT_EQ(result.findings.size(), 1u) << result.log;
  const Finding& f = result.findings[0];
  EXPECT_EQ(f.kind, FindingKind::kMismatch);

  // The acceptance bound is <= 10 vertices; the true minimum for a
  // degree-4 vertex is the 5-vertex star, and ddmin must reach it.
  EXPECT_LE(f.shrunk.num_vertices(), 10u);
  EXPECT_EQ(f.shrunk.num_vertices(), 5u);
  EXPECT_EQ(f.shrunk.num_edges(), 4u);
  EXPECT_EQ(f.shrunk.max_degree(), 4u);
  EXPECT_TRUE(f.shrunk_minimal);

  // The emitted repro is self-contained: reload it and the fault fires
  // again through the same engine entry point corpus replay uses.
  ASSERT_FALSE(f.repro_path.empty());
  const Repro repro = read_repro_file(f.repro_path);
  EXPECT_EQ(repro.graph.num_vertices(), 5u);
  EXPECT_EQ(repro.oracle, oracle_triangles(repro.graph));
  EXPECT_FALSE(check_graph(repro.graph, repro.spec, opts).empty());

  std::filesystem::remove_all(corpus_dir);
}

// --- determinism ---------------------------------------------------------

TEST(FuzzEngine, FindingsLogBitIdenticalAcrossHostThreadCounts) {
  EngineOptions opts;
  opts.master_seed = 31337;
  opts.max_iterations = 20;
  opts.limits.max_vertices = 48;

  opts.policies = {gpusim::ExecPolicy::serial(),
                   gpusim::ExecPolicy::parallel(1)};
  const auto one = run_campaign(opts);
  opts.policies = {gpusim::ExecPolicy::serial(),
                   gpusim::ExecPolicy::parallel(4)};
  const auto four = run_campaign(opts);

  EXPECT_EQ(one.iterations, four.iterations);
  EXPECT_EQ(one.log, four.log);
  EXPECT_TRUE(one.findings.empty()) << one.log;
}

TEST(FuzzEngine, StreamedEmissionMatchesBufferedLog) {
  // The same campaign run twice: once buffered, once fully streamed.
  // Streamed lines must concatenate to the buffered log byte for byte,
  // and the streamed run must retain nothing in memory.
  EngineOptions opts;
  opts.master_seed = 424242;
  opts.max_iterations = 25;
  opts.max_findings = 1000;  // don't truncate: the broken path fires often
  opts.limits.max_vertices = 16;
  opts.shrink = false;
  opts.policies = {gpusim::ExecPolicy::serial()};
  opts.paths = {broken_degree4_path()};

  const auto buffered = run_campaign(opts);
  ASSERT_GT(buffered.findings_count, 0u);  // the seeded fault must fire
  EXPECT_EQ(buffered.findings_count, buffered.findings.size());

  std::string streamed;
  std::uint64_t streamed_findings = 0;
  opts.buffer_log = false;
  opts.keep_findings = false;
  opts.on_log_line = [&streamed](const std::string& line) {
    streamed += line;
    streamed += '\n';
  };
  opts.on_finding = [&streamed_findings](const Finding& f) {
    EXPECT_GT(f.graph.num_vertices(), 0u);
    ++streamed_findings;
  };
  const auto live = run_campaign(opts);

  EXPECT_EQ(streamed, buffered.log);
  EXPECT_EQ(live.findings_count, buffered.findings_count);
  EXPECT_EQ(streamed_findings, buffered.findings_count);
  EXPECT_TRUE(live.findings.empty());
  EXPECT_TRUE(live.log.empty());
}

TEST(FuzzEngine, FaultCampaignModeAddsResilientPath) {
  // fault_rate > 0 appends the resilient/chunked path to the defaults;
  // it is policy-sensitive, so a broken recovery would surface per policy.
  EngineOptions opts;
  opts.master_seed = 5;
  opts.max_iterations = 10;
  opts.limits.max_vertices = 16;
  opts.shrink = false;
  opts.policies = {gpusim::ExecPolicy::serial()};
  opts.paths = {broken_degree4_path()};  // keep the run small
  opts.fault_rate = 0.1;
  opts.fault_seed = 11;
  const auto result = run_campaign(opts);
  // The resilient path recovered exactly on every iteration: the only
  // findings are the deliberately broken path's.
  for (const auto& f : result.findings)
    EXPECT_EQ(f.path.rfind("test/degree4-broken", 0), 0u) << f.path;
}

}  // namespace
}  // namespace lgg::fuzz

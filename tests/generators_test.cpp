#include <gtest/gtest.h>

#include <cmath>

#include "combi/binomial.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace lgg::graph {
namespace {

TEST(ErdosRenyi, Deterministic) {
  const Graph a = erdos_renyi(200, 0.05, 123);
  const Graph b = erdos_renyi(200, 0.05, 123);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(ErdosRenyi, SeedChangesGraph) {
  const Graph a = erdos_renyi(200, 0.05, 1);
  const Graph b = erdos_renyi(200, 0.05, 2);
  EXPECT_NE(a.edges(), b.edges());
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  const std::size_t n = 500;
  const double p = 0.1;
  const Graph g = erdos_renyi(n, p, 99);
  const double expect = p * static_cast<double>(n * (n - 1) / 2);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expect, 5 * std::sqrt(expect));
}

TEST(ErdosRenyi, ExtremeProbabilities) {
  EXPECT_EQ(erdos_renyi(50, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi(50, 1.0, 1).num_edges(), 50u * 49 / 2);
  EXPECT_THROW(erdos_renyi(10, 1.5, 1), lgg::Error);
  EXPECT_THROW(erdos_renyi(10, -0.1, 1), lgg::Error);
}

TEST(ErdosRenyi, TinyGraphs) {
  EXPECT_EQ(erdos_renyi(0, 0.5, 1).num_vertices(), 0u);
  EXPECT_EQ(erdos_renyi(1, 0.5, 1).num_edges(), 0u);
}

TEST(Gnm, ExactEdgeCount) {
  const Graph g = gnm(100, 250, 7);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 250u);
}

TEST(Gnm, FullAndOverfull) {
  EXPECT_EQ(gnm(10, 45, 3).num_edges(), 45u);
  EXPECT_THROW(gnm(10, 46, 3), lgg::Error);
}

TEST(BarabasiAlbert, DegreeStructure) {
  const Graph g = barabasi_albert(500, 3, 11);
  EXPECT_EQ(g.num_vertices(), 500u);
  // Every non-seed vertex attaches with exactly `attach` edges.
  EXPECT_GE(g.num_edges(), (500 - 4) * 3u);
  // Preferential attachment produces hubs far above the minimum degree.
  EXPECT_GT(g.max_degree(), 20u);
  // Connected by construction.
  EXPECT_EQ(connected_components(g).count, 1u);
}

TEST(BarabasiAlbert, ParameterValidation) {
  EXPECT_THROW(barabasi_albert(5, 0, 1), lgg::Error);
  EXPECT_THROW(barabasi_albert(3, 3, 1), lgg::Error);
}

TEST(Rmat, SizeAndDeterminism) {
  const Graph a = rmat(10, 8, 4);
  const Graph b = rmat(10, 8, 4);
  EXPECT_EQ(a.num_vertices(), 1024u);
  EXPECT_EQ(a.edges(), b.edges());
  // Skewed quadrants produce hubs.
  EXPECT_GT(a.max_degree(), 30u);
}

TEST(Rmat, ProbabilityValidation) {
  EXPECT_THROW(rmat(4, 2, 1, 0.5, 0.5, 0.5, 0.5), lgg::Error);
}

TEST(Complete, StructureAndTriangles) {
  const Graph g = complete(8);
  EXPECT_EQ(g.num_edges(), 28u);
  for (Vertex u = 0; u < 8; ++u) EXPECT_EQ(g.degree(u), 7u);
}

TEST(Cycle, Structure) {
  const Graph g = cycle(10);
  EXPECT_EQ(g.num_edges(), 10u);
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_THROW(cycle(2), lgg::Error);
  EXPECT_EQ(cycle(0).num_vertices(), 0u);
}

TEST(StarPathGrid, Structure) {
  EXPECT_EQ(star(10).num_edges(), 9u);
  EXPECT_EQ(path(10).num_edges(), 9u);
  const Graph g = grid2d(4, 5);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 4u * 4 + 3u * 5);
}

TEST(CompleteBipartite, Structure) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  // No edge within either side.
  for (Vertex u = 0; u < 3; ++u)
    for (Vertex v = u + 1; v < 3; ++v) EXPECT_FALSE(g.has_edge(u, v));
}

TEST(LayeredRandom, StructureAndDeterminism) {
  const Graph a = layered_random(2000, 200, 0.02, 0.01, 7);
  const Graph b = layered_random(2000, 200, 0.02, 0.01, 7);
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_EQ(a.num_vertices(), 2000u);
  // Edges only within a layer or between adjacent layers.
  for (const auto& [u, v] : a.edges()) {
    const std::size_t lu = u / 200, lv = v / 200;
    EXPECT_LE(lv - lu, 1u) << u << "-" << v;
  }
  // BFS from layer 0 reaches depth near the layer count: the deep tree
  // the Fig. 11 workload depends on.
  const BfsTree t = bfs(a, 0);
  EXPECT_GE(t.depth, 8u);
}

TEST(LayeredRandom, EdgeDensityNearExpectation) {
  const std::size_t width = 300;
  const Graph g = layered_random(3000, width, 0.01, 0.005, 3);
  const double within =
      10.0 * 0.01 * static_cast<double>(width * (width - 1) / 2);
  const double between = 9.0 * 0.005 * static_cast<double>(width * width);
  const double expect = within + between;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expect,
              6 * std::sqrt(expect));
}

TEST(LayeredRandom, Validation) {
  EXPECT_THROW(layered_random(10, 0, 0.1, 0.1, 1), lgg::Error);
  EXPECT_THROW(layered_random(10, 2, 1.5, 0.1, 1), lgg::Error);
}

TEST(DisjointUnion, OffsetsSecondGraph) {
  const Graph g = disjoint_union(complete(3), cycle(4));
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 3u + 4u);
  EXPECT_EQ(connected_components(g).count, 2u);
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_FALSE(g.has_edge(2, 3));
}

}  // namespace
}  // namespace lgg::graph

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace lgg::graph {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g(0);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, IsolatedVertices) {
  const Graph g(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Graph, BuildsSortedAdjacency) {
  const std::vector<Edge> edges{{2, 0}, {0, 1}, {2, 1}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.num_edges(), 3u);
  const auto n0 = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(n0.begin(), n0.end()));
  EXPECT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
}

TEST(Graph, DropsSelfLoopsAndDuplicates) {
  const std::vector<Edge> edges{{0, 1}, {1, 0}, {0, 1}, {2, 2}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Graph, OutOfRangeEndpointThrows) {
  const std::vector<Edge> edges{{0, 3}};
  EXPECT_THROW(Graph::from_edges(3, edges), Error);
}

TEST(Graph, HasEdgeSymmetric) {
  const Graph g = Graph::from_edges(4, std::vector<Edge>{{0, 1}, {1, 2}});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(0, 99));  // out of range is just "no"
}

TEST(Graph, EdgesRoundTrip) {
  Xoshiro256 rng(3);
  std::vector<Edge> edges;
  for (int i = 0; i < 40; ++i)
    edges.emplace_back(static_cast<Vertex>(rng.uniform(20)),
                       static_cast<Vertex>(rng.uniform(20)));
  const Graph g = Graph::from_edges(20, edges);
  const Graph g2 = Graph::from_edges(20, g.edges());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  for (const auto& [u, v] : g.edges()) {
    EXPECT_LT(u, v);
    EXPECT_TRUE(g2.has_edge(u, v));
  }
}

TEST(Graph, DegreeSumIsTwiceEdges) {
  const Graph g = erdos_renyi(100, 0.1, 5);
  std::size_t sum = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) sum += g.degree(v);
  EXPECT_EQ(sum, 2 * g.num_edges());
}

TEST(Graph, InducedSubgraphKeepsInternalEdges) {
  // Path 0-1-2-3 plus chord 0-2.
  const Graph g =
      Graph::from_edges(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  const std::vector<Vertex> pick{0, 2, 3};
  const auto sub = g.induced_subgraph(pick);
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  // Edges 0-2 and 2-3 survive; 0-1 and 1-2 do not.
  EXPECT_EQ(sub.graph.num_edges(), 2u);
  EXPECT_EQ(sub.to_original, pick);
  // Local ids follow pick order: 0->0, 2->1, 3->2.
  EXPECT_TRUE(sub.graph.has_edge(0, 1));
  EXPECT_TRUE(sub.graph.has_edge(1, 2));
  EXPECT_FALSE(sub.graph.has_edge(0, 2));
}

TEST(Graph, InducedSubgraphDuplicateThrows) {
  const Graph g(3);
  const std::vector<Vertex> pick{1, 1};
  EXPECT_THROW(g.induced_subgraph(pick), Error);
}

TEST(Graph, MaxDegree) {
  const Graph g = star(10);
  EXPECT_EQ(g.max_degree(), 9u);
  EXPECT_EQ(Graph(4).max_degree(), 0u);
}

TEST(Graph, RawCsrConsistent) {
  const Graph g = complete(5);
  const auto offsets = g.raw_offsets();
  const auto adj = g.raw_adjacency();
  ASSERT_EQ(offsets.size(), 6u);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), adj.size());
  EXPECT_EQ(adj.size(), 2 * g.num_edges());
}

}  // namespace
}  // namespace lgg::graph

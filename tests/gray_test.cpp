#include <gtest/gtest.h>

#include <set>

#include "combi/binomial.hpp"
#include "combi/gray.hpp"
#include "util/error.hpp"

namespace lgg::combi {
namespace {

using Combos = std::vector<std::vector<std::uint32_t>>;

class GrayProperty
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(GrayProperty, CoversAllOnceWithSingleSwapSteps) {
  const auto [n, k] = GetParam();
  const Combos combos = gray_combinations(n, k);
  EXPECT_EQ(combos.size(), binomial(n, k));

  std::set<std::vector<std::uint32_t>> seen;
  for (std::size_t i = 0; i < combos.size(); ++i) {
    const auto& c = combos[i];
    EXPECT_EQ(c.size(), k);
    EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
    if (k > 0) {
      EXPECT_LT(c.back(), n);
    }
    EXPECT_TRUE(seen.insert(c).second) << "duplicate at " << i;
    if (i > 0) {
      EXPECT_EQ(combination_distance(combos[i - 1], c), 1u)
          << "non-Gray step at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GrayProperty,
    ::testing::Values(std::pair{5u, 2u}, std::pair{5u, 3u}, std::pair{7u, 1u},
                      std::pair{7u, 4u}, std::pair{8u, 3u}, std::pair{9u, 5u},
                      std::pair{6u, 6u}, std::pair{10u, 2u}));

TEST(Gray, KnownSmallSequenceStartsAtIdentity) {
  const Combos combos = gray_combinations(4, 2);
  ASSERT_EQ(combos.size(), 6u);
  EXPECT_EQ(combos.front(), (std::vector<std::uint32_t>{0, 1}));
  // The construction ends at {0, .., k-2, n-1}.
  EXPECT_EQ(combos.back(), (std::vector<std::uint32_t>{0, 3}));
}

TEST(Gray, EdgeCases) {
  EXPECT_TRUE(gray_combinations(3, 4).empty());  // k > n
  EXPECT_EQ(gray_combinations(4, 0).size(), 1u);
  EXPECT_TRUE(gray_combinations(4, 0).front().empty());
  EXPECT_EQ(gray_combinations(4, 4).size(), 1u);
}

TEST(Gray, StreamingAgreesWithMaterialised) {
  Combos streamed;
  for_each_gray_combination(7, 3,
                            [&](std::span<const std::uint32_t> c) {
                              streamed.emplace_back(c.begin(), c.end());
                            });
  EXPECT_EQ(streamed, gray_combinations(7, 3));
  EXPECT_THROW(for_each_gray_combination(5, 2, {}), lgg::Error);
}

TEST(Gray, MaterialisationGuard) {
  EXPECT_THROW(gray_combinations(64, 32), lgg::Error);
}

TEST(CombinationDistance, Basics) {
  const std::vector<std::uint32_t> a{1, 2, 3}, b{1, 2, 4}, c{4, 5, 6};
  EXPECT_EQ(combination_distance(a, a), 0u);
  EXPECT_EQ(combination_distance(a, b), 1u);
  EXPECT_EQ(combination_distance(a, c), 3u);
  const std::vector<std::uint32_t> wrong{1, 2};
  EXPECT_THROW(combination_distance(a, wrong), lgg::Error);
}

}  // namespace
}  // namespace lgg::combi

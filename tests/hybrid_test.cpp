#include <gtest/gtest.h>

#include "core/hybrid.hpp"
#include "core/triangle_cpu.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace lgg::core {
namespace {

using graph::Graph;

HybridOptions exact_opts() {
  HybridOptions opts;
  opts.threads_per_block = 64;
  return opts;
}

TEST(Hybrid, MatchesOracleOnStructuredGraphs) {
  const Graph cases[] = {
      graph::complete(12),
      graph::cycle(9),
      graph::star(20),
      graph::path(40),
      graph::grid2d(5, 5),
      graph::disjoint_union(graph::complete(6), graph::cycle(7)),
  };
  for (const Graph& g : cases) {
    const HybridResult r = count_triangles_hybrid(g, exact_opts());
    EXPECT_TRUE(r.exact);
    EXPECT_EQ(r.triangles, count_triangles_edge_iterator(g));
  }
}

class HybridAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HybridAgreement, RandomGraphs) {
  const Graph g = graph::erdos_renyi(70, 0.12, GetParam());
  const HybridResult r = count_triangles_hybrid(g, exact_opts());
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.triangles, count_triangles_edge_iterator(g));
  EXPECT_EQ(r.total_tests, build_als_plan(g).total_tests);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridAgreement,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Hybrid, CommunityGraphSplitsAcrossResidency) {
  // Deep community graph with 600-vertex adjacent level sets: those
  // chunks exceed the C1060's 16 KiB S-UTM budget (max 512 vertices) and
  // must run from global memory; the narrow fringe chunks stay shared.
  Graph wide = graph::layered_random(1800, 300, 0.03, 0.015, 9);
  const Graph g = graph::disjoint_union(wide, graph::complete(20));
  HybridOptions opts = exact_opts();
  opts.max_simulated_tests_per_chunk = 20000;  // timing-sampled
  const HybridResult r = count_triangles_hybrid(g, opts);
  EXPECT_GT(r.global_chunks, 0u);
  EXPECT_GT(r.shared_chunks, 0u);  // the K20 component fits
  EXPECT_EQ(r.shared_chunks + r.global_chunks, r.chunks.size());
}

TEST(Hybrid, ChunkTestsPartitionThePlan) {
  const Graph g = graph::layered_random(400, 50, 0.08, 0.04, 4);
  const HybridResult r = count_triangles_hybrid(g, exact_opts());
  std::uint64_t sum = 0, tri = 0;
  for (const auto& chunk : r.chunks) {
    sum += chunk.tests;
    tri += chunk.triangles;
  }
  EXPECT_EQ(sum, r.total_tests);
  EXPECT_EQ(tri, r.triangles);
  EXPECT_EQ(r.total_tests, build_als_plan(g).total_tests);
}

TEST(Hybrid, ScheduleIsConsistent) {
  const Graph g = graph::layered_random(1000, 100, 0.05, 0.03, 2);
  HybridOptions sampled = exact_opts();
  sampled.max_simulated_tests_per_chunk = 10000;
  const HybridResult r = count_triangles_hybrid(g, sampled);
  ASSERT_EQ(r.schedule.machine_of.size(), r.chunks.size());
  const auto& dev = gpusim::tesla_c1060();
  for (const auto& chunk : r.chunks) {
    EXPECT_LT(chunk.sm, dev.sm_count);
    EXPECT_EQ(chunk.sm, r.schedule.machine_of[chunk.chunk]);
  }
  EXPECT_NEAR(r.makespan_s,
              static_cast<double>(r.schedule.makespan) * 1e-9, 1e-12);
  // End-to-end covers the makespan plus fixed overheads.
  EXPECT_GT(r.total_time_s, r.makespan_s);
}

TEST(Hybrid, LptNoWorseThanArrivalOrder) {
  const Graph g = graph::layered_random(1200, 100, 0.05, 0.03, 6);
  HybridOptions lpt = exact_opts();
  lpt.scheduler = SchedulerKind::kLpt;
  lpt.max_simulated_tests_per_chunk = 10000;
  HybridOptions list = lpt;
  list.scheduler = SchedulerKind::kList;
  const HybridResult rl = count_triangles_hybrid(g, lpt);
  const HybridResult rn = count_triangles_hybrid(g, list);
  EXPECT_LE(rl.makespan_s, rn.makespan_s + 1e-12);
  EXPECT_EQ(rl.triangles, rn.triangles);
}

TEST(Hybrid, Eq6TracksScheduledTime) {
  const Graph g = graph::layered_random(1500, 120, 0.05, 0.03, 8);
  HybridOptions sampled = exact_opts();
  sampled.max_simulated_tests_per_chunk = 10000;
  const HybridResult r = count_triangles_hybrid(g, sampled);
  // Eq. 6 works with MEAN chunk times, so it can sit on either side of
  // the scheduled makespan (which is dominated by the largest chunk);
  // assert it lands within a loose factor rather than a tight bound.
  EXPECT_GT(r.eq6_time_s, 0.0);
  EXPECT_GE(r.eq6_time_s, r.makespan_s * 0.1);
  EXPECT_LE(r.eq6_time_s, r.makespan_s * 100.0);
}

TEST(Hybrid, SampledRunsFlaggedInexact) {
  const Graph g = graph::layered_random(600, 80, 0.08, 0.04, 3);
  HybridOptions opts = exact_opts();
  opts.max_simulated_tests_per_chunk = 2000;
  const HybridResult r = count_triangles_hybrid(g, opts);
  EXPECT_FALSE(r.exact);
  EXPECT_GT(r.total_tests, 0u);
}

TEST(Hybrid, EmptyAndTinyGraphs) {
  EXPECT_EQ(count_triangles_hybrid(Graph(0), exact_opts()).triangles, 0u);
  EXPECT_EQ(count_triangles_hybrid(Graph(5), exact_opts()).triangles, 0u);
  EXPECT_EQ(count_triangles_hybrid(graph::complete(3), exact_opts()).triangles,
            1u);
}

TEST(Hybrid, InvalidThreadsThrow) {
  HybridOptions opts;
  opts.threads_per_block = 48;  // not a warp multiple
  EXPECT_THROW(count_triangles_hybrid(graph::complete(4), opts), lgg::Error);
}

TEST(Hybrid, SchedulerNames) {
  EXPECT_STREQ(scheduler_name(SchedulerKind::kList), "list");
  EXPECT_STREQ(scheduler_name(SchedulerKind::kLpt), "LPT");
  EXPECT_STREQ(scheduler_name(SchedulerKind::kMultifit), "MULTIFIT");
}

TEST(Hybrid, SharedChunksUseBankModelNotDram) {
  // An all-shared workload (small components) should spend shared slots,
  // not DRAM transactions.
  Graph g = graph::complete(16);
  for (int i = 0; i < 4; ++i)
    g = graph::disjoint_union(g, graph::complete(16));
  const HybridResult r = count_triangles_hybrid(g, exact_opts());
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.global_chunks, 0u);
  EXPECT_EQ(r.triangles, count_triangles_edge_iterator(g));
}

}  // namespace
}  // namespace lgg::core
